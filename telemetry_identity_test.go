package powerchop

import (
	"bytes"
	"fmt"
	"math"
	"testing"

	"powerchop/internal/arch"
	"powerchop/internal/obs"
	"powerchop/internal/obs/tsdb"
)

// dumpStore renders every series' every level for byte comparison.
func dumpStore(ts *tsdb.Store) string {
	var b bytes.Buffer
	for _, name := range ts.SeriesNames() {
		for _, l := range ts.Levels() {
			fmt.Fprintf(&b, "%s@%d: %+v\n", name, l.Bucket, ts.LevelBuckets(name, l.Bucket))
		}
	}
	return b.String()
}

// TestTelemetryRawMatchesTimeline is the telemetry reconciliation gate:
// the store's raw level, filled live during a run, must agree exactly
// with the timeline replayed from the same run's JSONL trace — the
// oracle behind `trace timeline -json` — and re-ingesting the recorded
// events must rebuild every downsampled level byte-identically.
func TestTelemetryRawMatchesTimeline(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates a benchmark; skipped with -short")
	}
	var traceBuf bytes.Buffer
	ts := tsdb.NewStore(tsdb.DefaultConfig())
	rep, err := Run("namd", Options{
		Passes:      0.25,
		TraceWriter: &traceBuf,
		Telemetry:   ts,
	})
	if err != nil {
		t.Fatal(err)
	}
	events, err := obs.ReadJSONL(&traceBuf)
	if err != nil {
		t.Fatal(err)
	}
	tl := obs.NewTimeline(events)
	if len(tl.Rows) == 0 || rep.Cycles <= 0 {
		t.Fatalf("timeline rows = %d, cycles = %v", len(tl.Rows), rep.Cycles)
	}

	// Raw-level queries reconcile point by point with the timeline rows.
	queryRaw := func(series string) []tsdb.Point {
		t.Helper()
		res, err := ts.Query(tsdb.Query{Series: series})
		if err != nil {
			t.Fatalf("query %s: %v", series, err)
		}
		return res.Points
	}
	insns := queryRaw(tsdb.SeriesInsns)
	stall := queryRaw(tsdb.SeriesStall)
	gates := queryRaw(tsdb.SeriesGates)
	cde := queryRaw(tsdb.SeriesCDE)
	if len(insns) != len(tl.Rows) {
		t.Fatalf("raw %s points = %d, timeline rows = %d", tsdb.SeriesInsns, len(insns), len(tl.Rows))
	}
	fracPoints := map[string][]tsdb.Point{}
	for _, u := range tl.Units {
		fracPoints[u] = queryRaw(tsdb.SeriesUnitFracPrefix + u)
	}
	for i, row := range tl.Rows {
		if insns[i].Window != row.Window || insns[i].Value != float64(row.Insns) {
			t.Fatalf("window %d insns: point %+v, row %+v", row.Window, insns[i], row)
		}
		if insns[i].Cycle != row.EndCycle {
			t.Errorf("window %d cycle: %v vs %v", row.Window, insns[i].Cycle, row.EndCycle)
		}
		if stall[i].Value != row.Stall {
			t.Errorf("window %d stall: %v vs %v", row.Window, stall[i].Value, row.Stall)
		}
		if gates[i].Value != float64(row.Gates) {
			t.Errorf("window %d gates: %v vs %d", row.Window, gates[i].Value, row.Gates)
		}
		if cde[i].Value != float64(row.CDEInvokes) {
			t.Errorf("window %d cde: %v vs %d", row.Window, cde[i].Value, row.CDEInvokes)
		}
		for ui, u := range tl.Units {
			if got := fracPoints[u][i].Value; got != row.Fracs[ui] {
				t.Errorf("window %d %s frac: %v vs %v", row.Window, u, got, row.Fracs[ui])
			}
		}
	}

	// IPC points (zero-width windows are skipped by the ingestor, so the
	// series is located by window ordinal) equal insns over cycle delta.
	byWindow := map[uint64]obs.TimelineRow{}
	for _, row := range tl.Rows {
		byWindow[row.Window] = row
	}
	for _, p := range queryRaw(tsdb.SeriesIPC) {
		row, ok := byWindow[p.Window]
		if !ok {
			t.Fatalf("IPC point at unknown window %d", p.Window)
		}
		var prevEnd float64
		if prev, ok := byWindow[p.Window-1]; ok {
			prevEnd = prev.EndCycle
		}
		want := float64(row.Insns) / (row.EndCycle - prevEnd)
		if math.Abs(p.Value-want) > 1e-12 {
			t.Errorf("window %d IPC: %v vs %v", p.Window, p.Value, want)
		}
	}

	// Replaying the recorded events through a fresh ingestor rebuilds the
	// store — every level of every series — byte-identically: the
	// downsampling is deterministic.
	replay := tsdb.NewStore(tsdb.DefaultConfig())
	ing := tsdb.NewIngestor(replay, tsdb.IngestorConfig{
		Units: []string{arch.UnitBPU, arch.UnitMLC, arch.UnitVPU},
	})
	for _, e := range events {
		ing.Emit(e)
	}
	ing.Flush()
	live, rebuilt := dumpStore(ts), dumpStore(replay)
	if live != rebuilt {
		t.Fatalf("replayed store diverges from live store:\nlive:\n%.2000s\nreplay:\n%.2000s", live, rebuilt)
	}
}
