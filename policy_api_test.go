package powerchop

import (
	"encoding/json"
	"strings"
	"testing"

	"powerchop/internal/arch"
	"powerchop/internal/core"
	"powerchop/internal/rescache"
	"powerchop/internal/sim"
	"powerchop/internal/workload"
)

func TestPoliciesListing(t *testing.T) {
	infos := Policies()
	if len(infos) != 7 {
		t.Fatalf("policies = %d, want 7", len(infos))
	}
	byName := map[string]PolicyInfo{}
	for i := 1; i < len(infos); i++ {
		if infos[i-1].Name > infos[i].Name {
			t.Fatal("Policies() not sorted by name")
		}
	}
	for _, p := range infos {
		byName[p.Name] = p
		if p.Description == "" {
			t.Errorf("%s: empty description", p.Name)
		}
	}
	if got := len(byName["powerchop"].Params); got != 4 {
		t.Fatalf("powerchop params = %d, want 4 (vpu,bpu,mlc1,mlc2)", got)
	}
	if got := len(byName["full-power"].Params); got != 0 {
		t.Fatalf("full-power params = %d, want 0", got)
	}
	if got := len(byName["agilewatts"].Params); got != 5 {
		t.Fatalf("agilewatts params = %d, want 5", got)
	}
	names := PolicyNames()
	if len(names) != len(infos) {
		t.Fatalf("PolicyNames() = %v", names)
	}
}

func TestPolicyFingerprint(t *testing.T) {
	fp, err := PolicyFingerprint(ManagerPowerChop, nil)
	if err != nil {
		t.Fatal(err)
	}
	if want := "powerchop{bpu=0.005,mlc1=0.005,mlc2=0.0005,vpu=0.005}"; fp != want {
		t.Fatalf("fingerprint = %q, want %q", fp, want)
	}
	// The empty manager string selects the default policy.
	def, err := PolicyFingerprint("", nil)
	if err != nil || def != fp {
		t.Fatalf("default fingerprint = %q, %v", def, err)
	}
	if _, err := PolicyFingerprint("magic", nil); err == nil {
		t.Fatal("unknown policy accepted")
	}
	if _, err := PolicyFingerprint(ManagerTimeout, map[string]float64{"vpu": 0.5}); err == nil {
		t.Fatal("unknown parameter accepted")
	}
	if _, err := PolicyFingerprint(ManagerPowerChop, map[string]float64{"vpu": 2}); err == nil {
		t.Fatal("out-of-bounds parameter accepted")
	}
}

// TestRunParamErrors pins the error paths Options.Params adds: unknown
// parameter names and out-of-bounds values fail the run before any
// simulation happens.
func TestRunParamErrors(t *testing.T) {
	if _, err := Run("namd", Options{Params: map[string]float64{"nope": 1}}); err == nil ||
		!strings.Contains(err.Error(), `unknown parameter "nope"`) {
		t.Fatalf("unknown param: %v", err)
	}
	if _, err := Run("namd", Options{Params: map[string]float64{"vpu": 1.5}}); err == nil ||
		!strings.Contains(err.Error(), "out of") {
		t.Fatalf("out-of-bounds param: %v", err)
	}
	if _, err := Run("namd", Options{Manager: ManagerTimeout,
		Params: map[string]float64{"idle-cycles": 0}}); err == nil {
		t.Fatal("below-min idle-cycles accepted")
	}
	if _, err := Run("namd", Options{Manager: ManagerDarkGates,
		Params: map[string]float64{"margin": 100}}); err == nil {
		t.Fatal("out-of-bounds margin accepted")
	}
}

// TestLegacyOptionFolding pins how the pre-registry option fields map
// onto schema parameters: Thresholds shapes only the "powerchop"
// policy, TimeoutCycles only "timeout", and explicit Params wins.
func TestLegacyOptionFolding(t *testing.T) {
	fp := func(o Options) string {
		spec, params, err := resolvePolicy(o)
		if err != nil {
			t.Fatal(err)
		}
		s, err := spec.Fingerprint(params)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	// Thresholds and the equivalent Params fingerprint identically.
	a := fp(Options{Thresholds: &Thresholds{VPU: 0.9}})
	b := fp(Options{Params: map[string]float64{"vpu": 0.9}})
	if a != b {
		t.Fatalf("thresholds %q != params %q", a, b)
	}
	// Zero threshold fields keep defaults.
	if got, want := fp(Options{Thresholds: &Thresholds{}}), fp(Options{}); got != want {
		t.Fatalf("zero thresholds changed identity: %q vs %q", got, want)
	}
	// Thresholds never leak into other policies.
	if got, want := fp(Options{Manager: ManagerEnergyMin, Thresholds: &Thresholds{VPU: 0.9}}),
		fp(Options{Manager: ManagerEnergyMin}); got != want {
		t.Fatalf("thresholds leaked into energy-min: %q vs %q", got, want)
	}
	// TimeoutCycles folds only onto the timeout policy.
	if got, want := fp(Options{Manager: ManagerTimeout, TimeoutCycles: 5000}),
		fp(Options{Manager: ManagerTimeout, Params: map[string]float64{"idle-cycles": 5000}}); got != want {
		t.Fatalf("timeout folding: %q vs %q", got, want)
	}
	if got, want := fp(Options{TimeoutCycles: 5000}), fp(Options{}); got != want {
		t.Fatalf("TimeoutCycles leaked into powerchop: %q vs %q", got, want)
	}
	// Params overlays last and wins over the legacy fields.
	if got, want := fp(Options{Thresholds: &Thresholds{VPU: 0.9},
		Params: map[string]float64{"vpu": 0.1}}),
		fp(Options{Params: map[string]float64{"vpu": 0.1}}); got != want {
		t.Fatalf("Params did not win over Thresholds: %q vs %q", got, want)
	}
}

// TestRegistryManagersByteIdentical is the refactor's contract: for each
// of the original five managers, a public Run (which now builds its
// manager through the policy registry) must produce a Report
// byte-identical to driving the simulator with a directly-constructed
// core manager, exactly as the pre-registry code did.
func TestRegistryManagersByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates five manager configurations")
	}
	bench, err := workload.ByName("bzip2")
	if err != nil {
		t.Fatal(err)
	}
	const passes = 0.3
	direct := func(m core.Manager) *Report {
		t.Helper()
		p := bench.MustBuild()
		res, err := sim.Run(p, sim.Config{
			Design:          arch.Server(),
			Manager:         m,
			MaxTranslations: uint64(passes * float64(p.TotalScheduleTranslations())),
		})
		if err != nil {
			t.Fatal(err)
		}
		return reportOf(res)
	}
	timeout, err := core.NewTimeoutVPU(core.DefaultTimeoutCycles)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		manager string
		build   core.Manager
	}{
		{ManagerFullPower, core.AlwaysOn()},
		{ManagerMinPower, core.MinPower()},
		{ManagerPowerChop, core.MustPowerChop(core.DefaultConfig())},
		{ManagerEnergyMin, core.MustPowerChop(core.EnergyMinimizerConfig())},
		{ManagerTimeout, timeout},
	}
	for _, tc := range cases {
		viaRegistry, err := Run("bzip2", Options{Manager: tc.manager, Passes: passes})
		if err != nil {
			t.Fatalf("%s: %v", tc.manager, err)
		}
		want := direct(tc.build)
		a, err := json.Marshal(viaRegistry)
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(want)
		if err != nil {
			t.Fatal(err)
		}
		if string(a) != string(b) {
			t.Errorf("%s: registry-built run differs from direct construction", tc.manager)
		}
	}
}

// TestTuneReconcilesWithCompare is the tuner's acceptance contract: a
// grid point at the default parameters shares Run's cache keys, so with
// a warm cache the tuner's (energy saved, slowdown) equal Compare's
// EnergyReduction and Slowdown exactly — no re-simulation, no drift.
func TestTuneReconcilesWithCompare(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates a benchmark under several managers")
	}
	cache := rescache.New(t.TempDir(), nil)
	opts := Options{Passes: 0.3, Cache: cache}
	c, err := Compare("libquantum", opts)
	if err != nil {
		t.Fatal(err)
	}
	if st := cache.Stats(); st.Stores != 3 {
		t.Fatalf("Compare stored %d entries, want 3", st.Stores)
	}
	// Pin every powerchop parameter to its default: a single grid point.
	res, err := Tune(TuneOptions{
		Policy:     ManagerPowerChop,
		Benchmarks: []string{"libquantum"},
		Grid: map[string][]float64{
			"vpu": {}, "bpu": {}, "mlc1": {}, "mlc2": {},
		},
		Options: opts,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 1 || len(res.Frontier) != 1 {
		t.Fatalf("points = %d, frontier = %d, want 1 and 1", len(res.Points), len(res.Frontier))
	}
	st := cache.Stats()
	if st.Hits < 2 {
		t.Fatalf("tune re-simulated instead of reusing Compare's entries: %+v", st)
	}
	if st.Stores != 3 {
		t.Fatalf("tune stored new entries: %+v", st)
	}
	pt := res.Points[0]
	if !pt.Pareto {
		t.Fatal("single point not on its own frontier")
	}
	if pt.EnergySaved != c.EnergyReduction() {
		t.Errorf("energy saved %v != Compare's %v", pt.EnergySaved, c.EnergyReduction())
	}
	if pt.Slowdown != c.Slowdown() {
		t.Errorf("slowdown %v != Compare's %v", pt.Slowdown, c.Slowdown())
	}
	wantFP, err := PolicyFingerprint(ManagerPowerChop, nil)
	if err != nil {
		t.Fatal(err)
	}
	if pt.Fingerprint != wantFP {
		t.Errorf("point fingerprint %q != default %q", pt.Fingerprint, wantFP)
	}
}
