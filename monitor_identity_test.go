package powerchop

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"powerchop/internal/arch"
	"powerchop/internal/obs"
	"powerchop/internal/obs/alert"
	"powerchop/internal/obs/runlog"
	"powerchop/internal/obs/serve"
	"powerchop/internal/obs/span"
	"powerchop/internal/obs/tsdb"
)

// lockedWriter serializes concurrent access-log writes from handler
// goroutines.
type lockedWriter struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (w *lockedWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.Write(p)
}

func (w *lockedWriter) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.String()
}

// TestMonitorAttachedByteIdentical is the live-monitoring determinism
// gate: rendering the full figure set with the whole observability layer
// attached — metrics collector, progress board, one live SSE client,
// telemetry time-series ingest with a live /api/query polling client,
// request spans, a run-history store, structured access logging, and a
// ticking alert evaluator over the default ruleset — must be
// byte-identical to an unobserved render. Observation is pure;
// it may never perturb simulation results.
func TestMonitorAttachedByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("full figure renders are slow; skipped with -short")
	}
	if raceEnabled {
		t.Skip("two full figure renders under the race detector are too slow; " +
			"monitor concurrency is race-tested in internal/obs/serve")
	}

	var silent bytes.Buffer
	if err := NewFigureRunner(0.02, WithJobs(4)).RenderAll(&silent); err != nil {
		t.Fatal(err)
	}

	collector := obs.NewCollector()
	mon := serve.NewMonitor(collector.Registry())
	access := &lockedWriter{}
	mon.SetAccessLog(slog.New(slog.NewJSONHandler(access, nil)))
	store := runlog.Memory()
	mon.SetRunLog(store)
	if err := mon.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer func() {
		// Drop the client's pooled keep-alives first: the Transport can
		// park a race-dialed connection that never carried a request, and
		// the server treats such a StateNew conn as busy for its first 5s
		// (net/http issue 22682), which would stall Shutdown right up to
		// the deadline.
		http.DefaultClient.CloseIdleConnections()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := mon.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	}()
	base := "http://" + mon.Addr()

	// A live SSE client consuming (and possibly dropping) events while
	// the figures render.
	clientCtx, stopClient := context.WithCancel(context.Background())
	defer stopClient()
	req, err := http.NewRequestWithContext(clientCtx, http.MethodGet, base+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	clientDone := make(chan struct{})
	go func() {
		defer close(clientDone)
		defer resp.Body.Close()
		io.Copy(io.Discard, resp.Body)
	}()

	progress := func(p RunProgress) {
		mon.Board().Update(serve.RunUpdate{
			Benchmark:    p.Benchmark,
			Kind:         p.Kind,
			State:        p.State,
			Cycles:       p.Cycles,
			Translations: p.Translations,
			Total:        p.Total,
			Elapsed:      p.Elapsed,
			Err:          p.Err,
		})
	}
	// Telemetry rides the same fan-out: per-window series ingest into a
	// live store queried over HTTP while the figures render.
	telemetry := tsdb.NewStore(tsdb.DefaultConfig())
	ingest := tsdb.NewIngestor(telemetry, tsdb.IngestorConfig{
		Units: []string{arch.UnitBPU, arch.UnitMLC, arch.UnitVPU},
	})
	mon.SetTelemetry(telemetry)
	pollCtx, stopPoll := context.WithCancel(context.Background())
	defer stopPoll()
	pollDone := make(chan struct{})
	go func() {
		defer close(pollDone)
		for pollCtx.Err() == nil {
			for _, path := range []string{
				"/api/series",
				"/api/query?series=" + tsdb.SeriesInsns,
			} {
				req, err := http.NewRequestWithContext(pollCtx, http.MethodGet, base+path, nil)
				if err != nil {
					return
				}
				resp, err := http.DefaultClient.Do(req)
				if err != nil {
					continue // series may not exist yet; keep polling
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
			select {
			case <-pollCtx.Done():
			case <-time.After(10 * time.Millisecond):
			}
		}
	}()

	// The alert evaluator rides along as one more pure observer: the
	// default ruleset over the live store and registry, ticking fast,
	// feeding its transitions back into the hub the SSE client drains.
	// A synthetic always-true rule guarantees transitions actually fire
	// during the render — identity must hold with alerting active, not
	// just attached.
	alertRules := append(alert.DefaultRules(), alert.Rule{
		Name: "identity-synthetic",
		Expr: alert.Expr{Series: "window.insns", Agg: "count", Window: 8, Op: ">", Threshold: 0},
	})
	alertEv, err := alert.New(alert.Config{
		Rules:    alertRules,
		Store:    telemetry,
		Metrics:  collector.Registry().Snapshot,
		Sink:     mon.Hub(),
		Registry: collector.Registry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	mon.SetAlerts(alertEv)
	stopAlerts := alertEv.Start(5 * time.Millisecond)
	defer stopAlerts()

	tracer := obs.Multi(collector, ingest, mon.Hub())
	observed := NewFigureRunner(0.02, WithJobs(4),
		WithTracer(tracer),
		WithProgress(progress))
	// The render runs under a root span, so every sweep, benchmark and
	// sim span rides the same event stream the SSE client is draining.
	reqID := span.NewRequestID()
	ctx, root := span.Root(context.Background(), tracer, "request", reqID, "route=test")
	var live bytes.Buffer
	renderErr := observed.RenderAllContext(ctx, &live)
	root.EndErr(renderErr)
	if renderErr != nil {
		t.Fatal(renderErr)
	}
	if err := store.Append(runlog.Record{
		Kind: "all", Name: "all", SpanID: root.ID(), RequestID: reqID,
	}); err != nil {
		t.Fatal(err)
	}

	if !bytes.Equal(silent.Bytes(), live.Bytes()) {
		sl, ll := bytes.Split(silent.Bytes(), []byte("\n")), bytes.Split(live.Bytes(), []byte("\n"))
		for i := 0; i < len(sl) && i < len(ll); i++ {
			if !bytes.Equal(sl[i], ll[i]) {
				t.Fatalf("outputs diverge at line %d:\n silent:    %s\n monitored: %s", i+1, sl[i], ll[i])
			}
		}
		t.Fatalf("outputs differ in length: silent %d lines, monitored %d lines", len(sl), len(ll))
	}

	// The scrape surface must hold up after a real run: /metrics passes
	// the Prometheus text-format conformance check over HTTP, and
	// /progress saw the runs complete.
	metrics := getBody(t, base+"/metrics")
	if err := serve.CheckExposition(metrics); err != nil {
		t.Fatalf("/metrics nonconformant after run: %v", err)
	}
	if !bytes.Contains(metrics, []byte("events_total")) {
		t.Error("/metrics missing events_total after a traced run")
	}
	prog := getBody(t, base+"/progress")
	if !bytes.Contains(prog, []byte(`"`+serve.StateDone+`"`)) {
		t.Errorf("/progress has no completed runs:\n%s", prog)
	}

	// The run history lists the render, correlated by span and request ID.
	var runsDoc struct {
		Runs []runlog.Record `json:"runs"`
	}
	if err := json.Unmarshal(getBody(t, base+"/api/runs"), &runsDoc); err != nil {
		t.Fatalf("/api/runs not JSON: %v", err)
	}
	if len(runsDoc.Runs) != 1 || runsDoc.Runs[0].SpanID != root.ID() || runsDoc.Runs[0].RequestID != reqID {
		t.Errorf("/api/runs after render: %+v", runsDoc.Runs)
	}

	// The telemetry surface filled from the same event stream: the series
	// catalog is non-empty and a range query answers with real windows.
	stopPoll()
	select {
	case <-pollDone:
	case <-time.After(5 * time.Second):
		t.Fatal("telemetry polling client did not terminate after cancel")
	}
	var seriesDoc struct {
		Series []tsdb.SeriesInfo `json:"series"`
	}
	if err := json.Unmarshal(getBody(t, base+"/api/series"), &seriesDoc); err != nil {
		t.Fatalf("/api/series not JSON: %v", err)
	}
	if len(seriesDoc.Series) == 0 {
		t.Fatal("/api/series empty after a telemetry-attached render")
	}
	var queryDoc tsdb.Result
	if err := json.Unmarshal(getBody(t, base+"/api/query?series="+tsdb.SeriesInsns), &queryDoc); err != nil {
		t.Fatalf("/api/query not JSON: %v", err)
	}
	if len(queryDoc.Points) == 0 {
		t.Fatalf("/api/query returned no points for %s", tsdb.SeriesInsns)
	}

	// The alert evaluator saw the run: /api/alerts serves its snapshot
	// with every rule evaluated at the final boundary, and the synthetic
	// rule actually fired mid-render — the identity above held with
	// alerting active, not merely attached.
	stopAlerts()
	var alertsDoc struct {
		Rules      []json.RawMessage `json:"rules"`
		LastWindow uint64            `json:"last_window"`
		FiredTotal uint64            `json:"fired_total"`
	}
	if err := json.Unmarshal(getBody(t, base+"/api/alerts"), &alertsDoc); err != nil {
		t.Fatalf("/api/alerts not JSON: %v", err)
	}
	if len(alertsDoc.Rules) != len(alertRules) || alertsDoc.LastWindow == 0 {
		t.Errorf("/api/alerts after render: %d rules, last_window %d",
			len(alertsDoc.Rules), alertsDoc.LastWindow)
	}
	if alertsDoc.FiredTotal == 0 {
		t.Error("synthetic rule never fired during the render")
	}

	// Every scrape above left a structured access-log line carrying its
	// request ID.
	if !strings.Contains(access.String(), `"msg":"request"`) ||
		!strings.Contains(access.String(), `"request_id"`) {
		t.Errorf("access log missing request lines:\n%s", access.String())
	}

	stopClient()
	select {
	case <-clientDone:
	case <-time.After(5 * time.Second):
		t.Fatal("SSE client did not terminate after cancel")
	}
}

// TestMonitorEventsLiveDuringRun checks the SSE stream actually carries
// simulator events while a run executes, end to end over HTTP.
func TestMonitorEventsLiveDuringRun(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates a benchmark; skipped with -short")
	}
	mon := serve.NewMonitor(nil)
	if err := mon.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		mon.Shutdown(ctx)
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		"http://"+mon.Addr()+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	type frame struct {
		line string
		err  error
	}
	frames := make(chan frame, 64)
	go func() {
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			frames <- frame{line: sc.Text()}
		}
		frames <- frame{err: sc.Err()}
	}()

	if _, err := Run("namd", Options{Passes: 0.25, Tracer: mon.Hub()}); err != nil {
		t.Fatal(err)
	}
	for {
		select {
		case f := <-frames:
			if f.err != nil {
				t.Fatalf("stream ended without a data frame: %v", f.err)
			}
			if strings.HasPrefix(f.line, "data: ") && strings.Contains(f.line, `"kind"`) {
				return // saw a live event frame
			}
		case <-ctx.Done():
			t.Fatal("no SSE data frame observed during the run")
		}
	}
}

func getBody(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d %s", url, resp.StatusCode, body)
	}
	return body
}
