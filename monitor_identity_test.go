package powerchop

import (
	"bufio"
	"bytes"
	"context"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"powerchop/internal/obs"
	"powerchop/internal/obs/serve"
)

// TestMonitorAttachedByteIdentical is the live-monitoring determinism
// gate: rendering the full figure set with a monitor attached — metrics
// collector, progress board and one live SSE client — must be
// byte-identical to an unobserved render. Observation is pure; it may
// never perturb simulation results.
func TestMonitorAttachedByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("full figure renders are slow; skipped with -short")
	}
	if raceEnabled {
		t.Skip("two full figure renders under the race detector are too slow; " +
			"monitor concurrency is race-tested in internal/obs/serve")
	}

	var silent bytes.Buffer
	if err := NewFigureRunner(0.02, WithJobs(4)).RenderAll(&silent); err != nil {
		t.Fatal(err)
	}

	collector := obs.NewCollector()
	mon := serve.NewMonitor(collector.Registry())
	if err := mon.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := mon.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	}()
	base := "http://" + mon.Addr()

	// A live SSE client consuming (and possibly dropping) events while
	// the figures render.
	clientCtx, stopClient := context.WithCancel(context.Background())
	defer stopClient()
	req, err := http.NewRequestWithContext(clientCtx, http.MethodGet, base+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	clientDone := make(chan struct{})
	go func() {
		defer close(clientDone)
		defer resp.Body.Close()
		io.Copy(io.Discard, resp.Body)
	}()

	progress := func(p RunProgress) {
		mon.Board().Update(serve.RunUpdate{
			Benchmark:    p.Benchmark,
			Kind:         p.Kind,
			State:        p.State,
			Cycles:       p.Cycles,
			Translations: p.Translations,
			Total:        p.Total,
			Elapsed:      p.Elapsed,
			Err:          p.Err,
		})
	}
	observed := NewFigureRunner(0.02, WithJobs(4),
		WithTracer(obs.Multi(collector, mon.Hub())),
		WithProgress(progress))
	var live bytes.Buffer
	if err := observed.RenderAll(&live); err != nil {
		t.Fatal(err)
	}

	if !bytes.Equal(silent.Bytes(), live.Bytes()) {
		sl, ll := bytes.Split(silent.Bytes(), []byte("\n")), bytes.Split(live.Bytes(), []byte("\n"))
		for i := 0; i < len(sl) && i < len(ll); i++ {
			if !bytes.Equal(sl[i], ll[i]) {
				t.Fatalf("outputs diverge at line %d:\n silent:    %s\n monitored: %s", i+1, sl[i], ll[i])
			}
		}
		t.Fatalf("outputs differ in length: silent %d lines, monitored %d lines", len(sl), len(ll))
	}

	// The scrape surface must hold up after a real run: /metrics passes
	// the Prometheus text-format conformance check over HTTP, and
	// /progress saw the runs complete.
	metrics := getBody(t, base+"/metrics")
	if err := serve.CheckExposition(metrics); err != nil {
		t.Fatalf("/metrics nonconformant after run: %v", err)
	}
	if !bytes.Contains(metrics, []byte("events_total")) {
		t.Error("/metrics missing events_total after a traced run")
	}
	prog := getBody(t, base+"/progress")
	if !bytes.Contains(prog, []byte(`"`+serve.StateDone+`"`)) {
		t.Errorf("/progress has no completed runs:\n%s", prog)
	}

	stopClient()
	select {
	case <-clientDone:
	case <-time.After(5 * time.Second):
		t.Fatal("SSE client did not terminate after cancel")
	}
}

// TestMonitorEventsLiveDuringRun checks the SSE stream actually carries
// simulator events while a run executes, end to end over HTTP.
func TestMonitorEventsLiveDuringRun(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates a benchmark; skipped with -short")
	}
	mon := serve.NewMonitor(nil)
	if err := mon.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		mon.Shutdown(ctx)
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		"http://"+mon.Addr()+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	type frame struct {
		line string
		err  error
	}
	frames := make(chan frame, 64)
	go func() {
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			frames <- frame{line: sc.Text()}
		}
		frames <- frame{err: sc.Err()}
	}()

	if _, err := Run("namd", Options{Passes: 0.25, Tracer: mon.Hub()}); err != nil {
		t.Fatal(err)
	}
	for {
		select {
		case f := <-frames:
			if f.err != nil {
				t.Fatalf("stream ended without a data frame: %v", f.err)
			}
			if strings.HasPrefix(f.line, "data: ") && strings.Contains(f.line, `"kind"`) {
				return // saw a live event frame
			}
		case <-ctx.Done():
			t.Fatal("no SSE data frame observed during the run")
		}
	}
}

func getBody(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d %s", url, resp.StatusCode, body)
	}
	return body
}
