package powerchop

import (
	"context"
	"fmt"

	"powerchop/internal/isa"
	"powerchop/internal/program"
	"powerchop/internal/workload"
)

// Workload describes a custom guest program for the simulator: a set of
// code regions (loop bodies with behaviour models) and a cyclic phase
// schedule over them. It is the public mirror of the internal program
// model, letting downstream users evaluate PowerChop on their own phase
// behaviours.
type Workload struct {
	// Name labels the workload in reports.
	Name string
	// Regions are the workload's code regions.
	Regions []Region
	// Phases is the cyclic schedule. Phase durations are in region
	// executions ("translations"); PowerChop's execution window is 1000.
	Phases []WorkloadPhase
	// Seed selects the deterministic random streams (0 uses a default).
	Seed uint64
}

// Region is one code region of a custom workload.
type Region struct {
	// Name labels the region.
	Name string
	// Instructions is the body length (default 32).
	Instructions int
	// VectorFrac, BranchFrac, LoadFrac, StoreFrac give the instruction
	// mix; the remainder is scalar ALU work.
	VectorFrac, BranchFrac, LoadFrac, StoreFrac float64
	// Branches are the branch behaviour models, assigned round-robin to
	// the region's branch instructions.
	Branches []Branch
	// Streams are the memory behaviours, assigned round-robin to the
	// region's loads and stores.
	Streams []Stream
}

// BranchKind selects a branch behaviour.
type BranchKind string

// Branch behaviour kinds.
const (
	// BranchBiased is taken with probability Bias — predictable by any
	// predictor, so the large BPU is non-critical.
	BranchBiased BranchKind = "biased"
	// BranchPatterned repeats Pattern ('T'/'N') — only history-based
	// predictors learn it, so the large BPU is critical.
	BranchPatterned BranchKind = "patterned"
	// BranchCorrelated follows the parity of the last Depth global
	// outcomes — only the tournament's global component tracks it.
	BranchCorrelated BranchKind = "correlated"
	// BranchRandom is unpredictable.
	BranchRandom BranchKind = "random"
)

// Branch is one branch site's behaviour.
type Branch struct {
	Kind    BranchKind
	Bias    float64 // BranchBiased: P(taken)
	Pattern string  // BranchPatterned: e.g. "TTNTNN"
	Depth   int     // BranchCorrelated: history depth
	Noise   float64 // probability of flipping the modelled outcome
}

// Stream is one memory stream's behaviour.
type Stream struct {
	// WorkingSetBytes is the footprint. Whether it fits the 32KB L1, the
	// 1-2MB MLC, or neither determines MLC criticality.
	WorkingSetBytes uint64
	// StrideBytes selects a sequential walk; zero selects uniform-random
	// reuse within the working set.
	StrideBytes uint64
}

// WorkloadPhase is one period of the schedule.
type WorkloadPhase struct {
	// Name labels the phase.
	Name string
	// Translations is the duration in region executions.
	Translations int
	// Weights maps region index → relative execution frequency.
	Weights map[int]float64
}

// compile converts the public workload into the internal program model.
func (w *Workload) compile() (*program.Program, error) {
	if w.Name == "" {
		return nil, fmt.Errorf("powerchop: workload needs a name")
	}
	seed := w.Seed
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	b := program.NewBuilder(w.Name, "custom", seed)
	for _, reg := range w.Regions {
		insns := reg.Instructions
		if insns == 0 {
			insns = 32
		}
		var branches []program.BranchModel
		for _, br := range reg.Branches {
			m, err := br.compile()
			if err != nil {
				return nil, fmt.Errorf("powerchop: region %q: %w", reg.Name, err)
			}
			branches = append(branches, m)
		}
		var streams []program.MemStream
		for _, st := range reg.Streams {
			streams = append(streams, program.MemStream{
				WorkingSet: st.WorkingSetBytes,
				Stride:     st.StrideBytes,
			})
		}
		b.Region(program.RegionSpec{
			Name:  reg.Name,
			Insns: insns,
			Mix: isa.Mix{
				VectorFrac: reg.VectorFrac,
				BranchFrac: reg.BranchFrac,
				LoadFrac:   reg.LoadFrac,
				StoreFrac:  reg.StoreFrac,
			},
			Branches: branches,
			Streams:  streams,
		})
	}
	for _, ph := range w.Phases {
		b.Phase(ph.Name, ph.Translations, ph.Weights)
	}
	return b.Build()
}

// compile converts a public branch model.
func (br Branch) compile() (program.BranchModel, error) {
	m := program.BranchModel{Noise: br.Noise}
	switch br.Kind {
	case BranchBiased, "":
		m.Kind = program.Biased
		m.Bias = br.Bias
	case BranchPatterned:
		m.Kind = program.Patterned
		for i := 0; i < len(br.Pattern); i++ {
			m.Pattern = append(m.Pattern, br.Pattern[i] == 'T')
		}
	case BranchCorrelated:
		m.Kind = program.Correlated
		m.CorrDepth = br.Depth
	case BranchRandom:
		m.Kind = program.Random
	default:
		return m, fmt.Errorf("unknown branch kind %q", br.Kind)
	}
	if err := m.Validate(); err != nil {
		return m, err
	}
	return m, nil
}

// RunWorkload simulates a custom workload under the options. Arch defaults
// to the server design point.
func RunWorkload(w *Workload, opts Options) (*Report, error) {
	p, err := w.compile()
	if err != nil {
		return nil, err
	}
	if opts.Arch == ArchAuto {
		opts.Arch = ArchServer
	}
	return runProgram(context.Background(), p, workload.Benchmark{Name: w.Name, Suite: "custom"}, opts)
}
