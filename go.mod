module powerchop

go 1.22
