//go:build !race

package powerchop

// raceEnabled reports whether the race detector is compiled in.
const raceEnabled = false
