// Package powerchop is a library reproduction of "PowerChop: Identifying
// and Managing Non-critical Units in Hybrid Processor Architectures"
// (Laurenzano, Zhang, Chen, Tang and Mars, ISCA 2016).
//
// PowerChop power-gates three large, stateful, high-activity units of a
// hybrid (binary-translation based) processor — the vector processing
// unit, the large branch predictor and the middle-level cache — at
// application-phase granularity, based on measured unit criticality
// rather than unit idleness. This package exposes:
//
//   - Run: simulate one of the paper's 29 benchmark stand-ins on the
//     server or mobile design point under a chosen power manager
//     (PowerChop, full-power, minimum-power, or the idle-timeout
//     baseline) and report performance, unit activity and power.
//   - Compare: the paper's headline three-way comparison for a benchmark.
//   - Workload: a builder for custom guest programs, so downstream users
//     can evaluate PowerChop on their own phase behaviours.
//   - RenderFigure / FigureIDs: regenerate each table and figure of the
//     paper's evaluation section.
//
// The simulator, binary-translation runtime, predictors, caches, power
// model and workloads are all implemented in this module's internal
// packages; see DESIGN.md for the system inventory and EXPERIMENTS.md for
// paper-vs-measured results.
package powerchop

import (
	"context"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"powerchop/internal/arch"
	"powerchop/internal/obs"
	"powerchop/internal/obs/audit"
	"powerchop/internal/obs/span"
	"powerchop/internal/obs/tsdb"
	"powerchop/internal/policy"
	"powerchop/internal/program"
	"powerchop/internal/rescache"
	"powerchop/internal/sim"
	"powerchop/internal/workload"
)

// Manager names accepted by Options.Manager. These are the built-in
// registrations of the policy registry (internal/policy); PolicyNames
// lists every registered policy, including any added later.
const (
	ManagerPowerChop = "powerchop"
	ManagerFullPower = "full-power"
	ManagerMinPower  = "min-power"
	ManagerTimeout   = "timeout"
	// ManagerEnergyMin is the paper's suggested aggressive variant
	// (Section V-A): higher criticality thresholds targeting energy
	// minimization at the cost of extra slowdown.
	ManagerEnergyMin = "energy-min"
	// ManagerDarkGates is the DarkGates-style break-even bypass policy:
	// PowerChop underneath, but gating decisions predicted to cost more
	// in transition stalls than they save in leakage are vetoed.
	ManagerDarkGates = "darkgates"
	// ManagerAgileWatts is the AgileWatts-style hierarchical idle-state
	// policy: consecutive idle windows promote each unit through shallow
	// and deep gated states with distinct entry/exit costs.
	ManagerAgileWatts = "agilewatts"
)

// Arch names accepted by Options.Arch.
const (
	ArchServer = "server"
	ArchMobile = "mobile"
	// ArchAuto picks the design point the paper pairs with the
	// benchmark's suite: mobile for MobileBench, server otherwise.
	ArchAuto = ""
)

// Options configures a Run.
type Options struct {
	// Arch selects the design point ("server", "mobile", or empty for
	// the benchmark's default).
	Arch string
	// Manager selects the power manager (default "powerchop").
	Manager string
	// Passes is the run length in passes over the benchmark's phase
	// schedule (default 2).
	Passes float64
	// SampleInterval, when positive, records an IPC/vector-activity
	// sample every that many instructions.
	SampleInterval uint64
	// Params assigns values to the selected policy's registered
	// parameters (see Policies for each policy's schema); unset
	// parameters keep their defaults. Unknown names and out-of-bounds
	// values fail the run. Params wins over the legacy Thresholds and
	// TimeoutCycles fields when both name the same parameter.
	Params map[string]float64
	// Thresholds optionally overrides the PowerChop criticality
	// thresholds (VPU, BPU, MLC1, MLC2); zero values keep the defaults.
	Thresholds *Thresholds
	// TimeoutCycles overrides the idle-timeout baseline's period
	// (default 20000 cycles).
	TimeoutCycles float64
	// TraceWriter, when non-nil, receives the run's event trace as JSONL
	// (one event per line; see DESIGN.md "Observability"). The stream is
	// flushed before Run returns.
	TraceWriter io.Writer
	// Metrics enables metrics collection; the snapshot lands in
	// Report.Metrics.
	Metrics bool
	// Audit enables decision-provenance collection: every CDE decision's
	// lineage (scores, thresholds, PVT path) and a per-phase attribution
	// of energy saved vs. slowdown incurred land in Report.Audit. Like
	// Metrics it is a pure observer — the simulated results are
	// bit-identical with or without it.
	Audit bool
	// Tracer, when non-nil, receives the run's event stream alongside any
	// TraceWriter — the hook live monitors attach to (see internal
	// obs/serve). It must be safe for concurrent emission if the caller
	// also sets Parallelism above one.
	Tracer obs.Tracer
	// Telemetry, when non-nil, streams the run's per-window series
	// (instruction counts, IPC, stalls, per-unit power fractions, PVT hit
	// rate, criticality scores) into the given time-series store; query
	// it live over /api/query on a monitor or afterwards in process. A
	// pure observer like Tracer: results are bit-identical with or
	// without it.
	Telemetry *tsdb.Store
	// Progress, when non-nil, is called at every window boundary and once
	// on completion. The callback is a pure observer: results are
	// bit-identical with or without it.
	Progress func(RunProgress)
	// Parallelism, when above one, lets Compare run its three
	// configurations concurrently (each simulation stays
	// single-threaded and deterministic, so the Reports are identical
	// to a serial run). It is ignored when TraceWriter is set, where
	// serial execution keeps the three event streams from interleaving.
	Parallelism int
	// Batch caps how many configurations one batched simulation group
	// (sim.RunBatch) drives from a single trace walk: 0 selects the
	// default cap, 1 disables batching entirely, larger values set the
	// cap. Batching is a pure wall-clock optimization — RunBatch, Compare
	// and Tune produce byte-identical Reports at any setting — so the
	// only reasons to change it are memory (each lane holds its own MLC
	// copy once gated) and A/B timing.
	Batch int
	// Cache, when non-nil, is a persistent content-addressed result
	// store (internal/rescache): Run consults it before simulating and
	// files the result afterwards, so repeated identical runs are
	// near-instant and byte-identical. Runs with an event-stream
	// consumer attached (TraceWriter, Tracer, Metrics, Audit or
	// Telemetry) bypass
	// the cache — a cached result cannot replay the stream. Progress
	// still works on a hit: the callback receives the final done report.
	Cache *rescache.Cache
	// CacheDir, when non-empty and Cache is nil, opens a cache rooted at
	// that directory (created on first store) with a private metrics
	// registry. The POWERCHOP_CACHE environment variable feeds this
	// through the CLI's -cache flag default.
	CacheDir string
}

// Thresholds mirrors the CDE criticality cut-offs.
type Thresholds struct {
	VPU, BPU, MLC1, MLC2 float64
}

// Run states reported through RunProgress.
const (
	StateQueued     = "queued"
	StateSimulating = "simulating"
	StateDone       = "done"
	StateError      = "error"
)

// RunProgress is one progress report about a simulation: which
// (benchmark, kind) run it concerns, where it is in its lifecycle, and
// how far along the simulated clock has advanced.
type RunProgress struct {
	Benchmark string
	// Kind is the run's configuration (a manager name for single runs, an
	// experiments kind like "full-power" for figure sweeps).
	Kind  string
	State string
	// Cycles is the current simulated cycle count.
	Cycles float64
	// Translations/Total are region executions done vs budgeted.
	Translations uint64
	Total        uint64
	// Windows is the number of closed HTB windows.
	Windows uint64
	// Elapsed is wall-clock time spent simulating.
	Elapsed time.Duration
	// Err is the failure message when State is "error".
	Err string
}

// Sample is one time-series point of a sampled run.
type Sample struct {
	Instructions uint64  // cumulative guest instructions
	IPC          float64 // over the interval
	VectorOps    uint64  // in the interval
}

// UnitReport summarizes one managed unit over a run.
type UnitReport struct {
	// GatedFrac is the fraction of cycles below full power.
	GatedFrac float64
	// OneWayFrac (MLC only) is the fraction of cycles at one active way.
	OneWayFrac float64
	// HalfFrac (MLC only) is the fraction at half the ways.
	HalfFrac float64
	// SwitchesPerMCycles is power-state changes per million cycles.
	SwitchesPerMCycles float64
	// LeakageJ is the leakage energy the unit drew given its gating
	// residency; FullLeakageJ what an always-on unit would have drawn
	// over the same run; LeakageSavedJ their difference — the quantity
	// the audit layer attributes back to individual gating decisions.
	LeakageJ      float64
	FullLeakageJ  float64
	LeakageSavedJ float64
}

// Report is a run's public result.
type Report struct {
	Benchmark string
	Suite     string
	Arch      string
	Manager   string

	Cycles       float64
	Instructions uint64
	IPC          float64
	Seconds      float64

	VPU UnitReport
	BPU UnitReport
	MLC UnitReport

	AvgPowerW    float64
	AvgLeakageW  float64
	TotalEnergyJ float64

	MispredictRate float64
	MLCHitRate     float64

	PVTHitRate     float64
	CDEInvocations uint64
	PhasesSeen     int

	Samples []Sample

	// Metrics holds the run's metrics snapshot when Options.Metrics was
	// set; nil otherwise.
	Metrics *MetricsReport

	// Audit holds the run's decision-provenance report when
	// Options.Audit was set; nil otherwise.
	Audit *AuditReport
}

// ScoreRecord is one unit's criticality measurement inside a decision:
// the value Algorithm 1 computed, the threshold(s) it was compared
// against, and the comparison's outcome.
type ScoreRecord struct {
	Unit   string
	Metric string // "simd-ratio", "mispred-delta", "l2hit-ratio"
	Value  float64
	// Threshold is the cut-off compared against (MLC1 for the MLC);
	// Threshold2 the MLC's second cut-off, zero elsewhere.
	Threshold  float64
	Threshold2 float64
	// Outcome renders the comparison, e.g. "0.00013 <= 0.005 -> off".
	Outcome string
}

// DecisionRecord is the full lineage of one gating decision.
type DecisionRecord struct {
	// Phase is the phase signature the decision covers.
	Phase string
	// Window locates the registration in the run.
	Window uint64
	// Path is "computed", "restored" or "abandoned".
	Path string
	// Policy is the decided policy vector, rendered like "V=1,B=0,M=01".
	Policy string
	// Scores are the measurements behind a computed decision.
	Scores []ScoreRecord
	// ProfileWindows, Attempts and LatencyWindows describe the
	// profiling effort: windows consumed, CDE invocations spent, and
	// windows elapsed from first PVT miss to registration.
	ProfileWindows uint64
	Attempts       uint64
	LatencyWindows uint64
}

// PhaseAttribution is one phase's share of the run: how long its
// decisions governed execution, what they saved, what they cost.
type PhaseAttribution struct {
	Phase   string
	Policy  string
	Windows uint64
	Cycles  float64
	// PVT path counts and decision count for the phase.
	Hits      uint64
	Misses    uint64
	Evictions uint64
	Decisions uint64
	// GatedCycles and EnergySavedJ attribute per-unit gating (cycles
	// weighted by depth, and the leakage energy saved) to the phase.
	GatedCycles  map[string]float64
	EnergySavedJ map[string]float64
	// EnergySavedTotalJ sums EnergySavedJ; OverheadCycles is the
	// slowdown incurred (gate stalls + CDE invocations) and OverheadJ
	// the whole-core leakage burned during it.
	EnergySavedTotalJ float64
	OverheadCycles    float64
	OverheadJ         float64
}

// AuditReport is the public mirror of a run's decision-provenance trail.
type AuditReport struct {
	// Phases is the attribution table in order of first appearance
	// ("(boot)" covers pre-decision cycles).
	Phases []PhaseAttribution
	// Decisions lists every policy registration in order.
	Decisions []DecisionRecord
	// EnergySavedJ totals attributed savings per unit; these sum to the
	// run's per-unit LeakageSavedJ (see UnitReport).
	EnergySavedJ      map[string]float64
	EnergySavedTotalJ float64
	// OverheadJ is the total slowdown cost in leakage energy.
	OverheadJ float64
	// Summary is the rendered attribution report (the top-20 view; use
	// Render for other depths).
	Summary string

	trail *audit.Trail
}

// Render formats the attribution report showing at most top phases and
// decisions (0 = all).
func (a *AuditReport) Render(top int) string { return a.trail.Render(top) }

// auditReportOf converts an internal trail.
func auditReportOf(t *audit.Trail) *AuditReport {
	r := &AuditReport{
		EnergySavedJ:      t.EnergySavedJ,
		EnergySavedTotalJ: t.EnergySavedTotalJ,
		OverheadJ:         t.OverheadJ,
		Summary:           t.Render(20),
		trail:             t,
	}
	for _, p := range t.Phases {
		r.Phases = append(r.Phases, PhaseAttribution{
			Phase:             p.Phase,
			Policy:            p.PolicyStr,
			Windows:           p.Windows,
			Cycles:            p.Cycles,
			Hits:              p.Hits,
			Misses:            p.Misses,
			Evictions:         p.Evictions,
			Decisions:         p.Decisions,
			GatedCycles:       p.GatedCycles,
			EnergySavedJ:      p.EnergySavedJ,
			EnergySavedTotalJ: p.EnergySavedTotalJ,
			OverheadCycles:    p.OverheadCycles,
			OverheadJ:         p.OverheadJ,
		})
	}
	for _, d := range t.Decisions {
		pub := DecisionRecord{
			Phase:          d.Phase,
			Window:         d.Window,
			Path:           d.Path,
			Policy:         d.PolicyStr,
			ProfileWindows: d.ProfileWindows,
			Attempts:       d.Attempts,
			LatencyWindows: d.LatencyWindows,
		}
		for _, s := range d.Scores {
			pub.Scores = append(pub.Scores, ScoreRecord{
				Unit:       s.Unit,
				Metric:     s.Metric,
				Value:      s.Value,
				Threshold:  s.Threshold,
				Threshold2: s.Threshold2,
				Outcome:    s.Comparison(),
			})
		}
		r.Decisions = append(r.Decisions, pub)
	}
	return r
}

// HistogramReport summarizes one metrics histogram.
type HistogramReport struct {
	Count uint64
	Mean  float64
	Min   float64
	Max   float64
}

// MetricsReport is the public mirror of a run's metrics snapshot.
type MetricsReport struct {
	// Counters maps counter names (e.g. "events.pvt-hit") to values.
	Counters map[string]uint64
	// Histograms maps histogram names (e.g. "window.insns") to summaries.
	Histograms map[string]HistogramReport
	// Summary is the rendered human-readable metrics table.
	Summary string
}

// metricsReportOf converts an internal snapshot.
func metricsReportOf(s *obs.Snapshot) *MetricsReport {
	m := &MetricsReport{
		Counters:   make(map[string]uint64, len(s.Counters)),
		Histograms: make(map[string]HistogramReport, len(s.Histograms)),
		Summary:    s.Render(),
	}
	for _, c := range s.Counters {
		m.Counters[c.Name] = c.Value
	}
	for _, h := range s.Histograms {
		m.Histograms[h.Name] = HistogramReport{
			Count: h.Count, Mean: h.Mean(), Min: h.Min, Max: h.Max,
		}
	}
	return m
}

// String renders a one-line summary.
func (r *Report) String() string {
	return fmt.Sprintf("%s/%s/%s: IPC %.2f, power %.3g W (leakage %.3g W), gated VPU %.0f%% BPU %.0f%% MLC %.0f%%",
		r.Benchmark, r.Arch, r.Manager, r.IPC, r.AvgPowerW, r.AvgLeakageW,
		r.VPU.GatedFrac*100, r.BPU.GatedFrac*100, r.MLC.GatedFrac*100)
}

// Benchmarks returns the names of the built-in benchmark stand-ins.
func Benchmarks() []string { return workload.Names() }

// Suites returns the benchmark suite names.
func Suites() []string { return workload.Suites() }

// SuiteOf returns the suite of a benchmark.
func SuiteOf(benchmark string) (string, error) {
	b, err := workload.ByName(benchmark)
	if err != nil {
		return "", err
	}
	return b.Suite, nil
}

// resolvePolicy maps Options onto the policy registry: the Manager
// string selects a registered Spec, the legacy Thresholds/TimeoutCycles
// fields fold onto their policies' schema parameters (preserving their
// original scoping — thresholds only shaped the default PowerChop, the
// timeout period only the timeout baseline), and Options.Params overlays
// last, so explicit parameters always win.
func resolvePolicy(o Options) (policy.Spec, policy.Params, error) {
	name := o.Manager
	if name == "" {
		name = ManagerPowerChop
	}
	spec, ok := policy.Lookup(name)
	if !ok {
		return policy.Spec{}, nil, fmt.Errorf("powerchop: unknown manager %q", o.Manager)
	}
	params := policy.Params{}
	switch name {
	case ManagerPowerChop:
		if o.Thresholds != nil {
			if o.Thresholds.VPU > 0 {
				params["vpu"] = o.Thresholds.VPU
			}
			if o.Thresholds.BPU > 0 {
				params["bpu"] = o.Thresholds.BPU
			}
			if o.Thresholds.MLC1 > 0 {
				params["mlc1"] = o.Thresholds.MLC1
			}
			if o.Thresholds.MLC2 > 0 {
				params["mlc2"] = o.Thresholds.MLC2
			}
		}
	case ManagerTimeout:
		if o.TimeoutCycles > 0 {
			params["idle-cycles"] = o.TimeoutCycles
		}
	}
	for k, v := range o.Params {
		params[k] = v
	}
	return spec, params, nil
}

// designFor resolves the design point.
func designFor(o Options, b workload.Benchmark) (arch.Design, error) {
	switch o.Arch {
	case ArchAuto:
		if b.Mobile {
			return arch.Mobile(), nil
		}
		return arch.Server(), nil
	default:
		return arch.ByName(o.Arch)
	}
}

// Run simulates the named benchmark under the options.
func Run(benchmark string, opts Options) (*Report, error) {
	return RunContext(context.Background(), benchmark, opts)
}

// RunContext is Run under a context. When ctx carries a span
// (internal/obs/span) the run executes under a "benchmark" child span
// and the simulation beneath a "sim" span — pure observation; the
// Report is byte-identical regardless of ctx.
func RunContext(ctx context.Context, benchmark string, opts Options) (*Report, error) {
	b, err := workload.ByName(benchmark)
	if err != nil {
		return nil, err
	}
	p, err := b.Build()
	if err != nil {
		return nil, err
	}
	return runProgram(ctx, p, b, opts)
}

// runProgram executes a built program and converts the result.
func runProgram(ctx context.Context, p *program.Program, b workload.Benchmark, opts Options) (rep *Report, err error) {
	manager := opts.Manager
	if manager == "" {
		manager = ManagerPowerChop
	}
	ctx, sp := span.Start(ctx, "benchmark",
		"bench="+b.Name, "manager="+manager)
	defer func() { sp.EndErr(err) }()
	lane, err := prepareRun(ctx, p, b, opts)
	if err != nil {
		return nil, err
	}
	if rep, ok := lane.cached(); ok {
		return rep, nil
	}
	res, err := sim.Run(p, lane.cfg)
	if err != nil {
		return nil, err
	}
	return lane.finish(res)
}

// laneRun is one prepared simulation lane: the assembled sim.Config plus
// the cache and trace plumbing a public Run performs around it. Both the
// solo path (runProgram) and the batched path (runProgramBatch) prepare
// lanes the same way, which is what keeps their cache keys, progress
// reports and Reports identical.
type laneRun struct {
	bench    string
	kind     string // manager name, for progress reports
	cfg      sim.Config
	trace    *obs.JSONL
	resCache *rescache.Cache
	cacheKey rescache.Key
	progress func(RunProgress)
}

// prepareRun resolves the options into a ready-to-simulate lane:
// policy and design resolution, run length, observer sinks, persistent
// cache keying (with bypass counting) and the progress adapter.
func prepareRun(ctx context.Context, p *program.Program, b workload.Benchmark, opts Options) (*laneRun, error) {
	spec, params, err := resolvePolicy(opts)
	if err != nil {
		return nil, err
	}
	// Fingerprint validates parameters (bounds, unknown names) and
	// renders the canonical policy identity for the cache key.
	fingerprint, err := spec.Fingerprint(params)
	if err != nil {
		return nil, err
	}
	m, err := spec.Manager(params)
	if err != nil {
		return nil, err
	}
	design, err := designFor(opts, b)
	if err != nil {
		return nil, err
	}
	passes := opts.Passes
	if passes <= 0 {
		passes = 2
	}
	lane := &laneRun{
		bench:    b.Name,
		kind:     m.Name(),
		progress: opts.Progress,
	}
	var sinks []obs.Tracer
	if opts.TraceWriter != nil {
		lane.trace = obs.NewJSONL(opts.TraceWriter)
		sinks = append(sinks, lane.trace)
	}
	if opts.Tracer != nil {
		sinks = append(sinks, opts.Tracer)
	}
	lane.cfg = sim.Config{
		Context:         ctx,
		Design:          design,
		Manager:         m,
		MaxTranslations: uint64(passes * float64(p.TotalScheduleTranslations())),
		SampleInterval:  opts.SampleInterval,
		Tracer:          obs.Multi(sinks...),
		Metrics:         opts.Metrics,
		Audit:           opts.Audit,
		Telemetry:       opts.Telemetry,
	}

	// Persistent result cache: consult before simulating, fill after. Any
	// run with an observer attached bypasses (a cached result cannot
	// replay the event stream or rebuild metrics/audit trails); the skip
	// is counted so /metrics shows it happening.
	resCache := opts.Cache
	if resCache == nil && opts.CacheDir != "" {
		resCache = rescache.New(opts.CacheDir, nil)
	}
	if resCache != nil {
		if opts.TraceWriter != nil || opts.Tracer != nil || opts.Metrics || opts.Audit || opts.Telemetry != nil {
			resCache.CountBypass()
		} else {
			lane.resCache = resCache
			lane.cacheKey = cacheKeyFor(p, design, fingerprint, opts, lane.cfg.MaxTranslations)
		}
	}

	if progress := opts.Progress; progress != nil {
		started := time.Now()
		name, kind := b.Name, lane.kind
		lane.cfg.Progress = func(pr sim.Progress) {
			state := StateSimulating
			if pr.Done {
				state = StateDone
			}
			progress(RunProgress{
				Benchmark:    name,
				Kind:         kind,
				State:        state,
				Cycles:       pr.Cycle,
				Translations: pr.Translations,
				Total:        pr.MaxTranslations,
				Windows:      pr.Windows,
				Elapsed:      time.Since(started),
			})
		}
	}
	return lane, nil
}

// cached consults the lane's persistent cache; on a hit it delivers the
// done progress report and returns the finished Report.
func (l *laneRun) cached() (*Report, bool) {
	if l.resCache == nil {
		return nil, false
	}
	res, ok := l.resCache.Get(l.cacheKey)
	if !ok {
		return nil, false
	}
	if l.progress != nil {
		l.progress(RunProgress{
			Benchmark:    l.bench,
			Kind:         l.kind,
			State:        StateDone,
			Cycles:       res.Cycles,
			Translations: l.cfg.MaxTranslations,
			Total:        l.cfg.MaxTranslations,
			Windows:      res.Windows,
		})
	}
	return reportOf(res), true
}

// finish flushes the lane's trace, files the result in the persistent
// cache and converts it into the public Report.
func (l *laneRun) finish(res *sim.Result) (*Report, error) {
	if l.trace != nil {
		if err := l.trace.Flush(); err != nil {
			return nil, fmt.Errorf("powerchop: flushing trace: %w", err)
		}
	}
	if l.resCache != nil {
		// Best-effort: a failed store is counted by the cache and must
		// not fail a run that produced a good result.
		_ = l.resCache.Put(l.cacheKey, res)
	}
	return reportOf(res), nil
}

// defaultBatchCap bounds the lanes one batched simulation group drives
// when Options.Batch is zero. Batching amortizes the shared front-end
// (trace walk, L1, small predictor) across lanes; past ~16 lanes the
// remaining per-lane work dominates and wider groups only cost memory.
const defaultBatchCap = 16

// batchCap resolves an Options.Batch value into a concrete group cap.
func batchCap(batch int) int {
	if batch <= 0 {
		return defaultBatchCap
	}
	return batch
}

// RunBatch simulates the benchmark once per option set and returns the
// Reports in input order. Every Report is byte-identical to what
// Run(benchmark, optsList[i]) returns; the batch exists purely to
// amortize the shared instruction-stream work across the variants (see
// DESIGN.md "Batched sweep execution"). Lanes whose results are already
// in the persistent cache are served from it without simulating; lanes
// with an event-stream consumer attached (TraceWriter, Tracer, Metrics,
// Audit, Telemetry) fall back to solo simulation transparently. The
// first option set's Batch field caps the lanes per simulation group.
func RunBatch(benchmark string, optsList []Options) ([]*Report, error) {
	return RunBatchContext(context.Background(), benchmark, optsList)
}

// RunBatchContext is RunBatch under a context. When ctx carries a span
// the batch executes under a "benchbatch" child span.
func RunBatchContext(ctx context.Context, benchmark string, optsList []Options) ([]*Report, error) {
	b, err := workload.ByName(benchmark)
	if err != nil {
		return nil, err
	}
	p, err := b.Build()
	if err != nil {
		return nil, err
	}
	var batch int
	if len(optsList) > 0 {
		batch = optsList[0].Batch
	}
	reports := make([]*Report, len(optsList))
	for lo := 0; lo < len(optsList); lo += batchCap(batch) {
		hi := lo + batchCap(batch)
		if hi > len(optsList) {
			hi = len(optsList)
		}
		chunk, err := runProgramBatch(ctx, p, b, optsList[lo:hi])
		if err != nil {
			return nil, err
		}
		copy(reports[lo:hi], chunk)
	}
	return reports, nil
}

// runProgramBatch executes one built program under several option sets
// through a single batched simulation: lanes are prepared exactly like
// solo runs (same cache keys, same progress reports), cache hits are
// served without simulating, and the cold remainder goes through
// sim.RunBatch in one group.
func runProgramBatch(ctx context.Context, p *program.Program, b workload.Benchmark, optsList []Options) (reps []*Report, err error) {
	ctx, sp := span.Start(ctx, "benchbatch",
		"bench="+b.Name, fmt.Sprintf("lanes=%d", len(optsList)))
	defer func() { sp.EndErr(err) }()
	reports := make([]*Report, len(optsList))
	lanes := make([]*laneRun, len(optsList))
	var cold []int
	for i, o := range optsList {
		lane, err := prepareRun(ctx, p, b, o)
		if err != nil {
			return nil, fmt.Errorf("powerchop: batch lane %d: %w", i, err)
		}
		lanes[i] = lane
		if rep, ok := lane.cached(); ok {
			reports[i] = rep
			continue
		}
		cold = append(cold, i)
	}
	if len(cold) > 0 {
		cfgs := make([]sim.Config, len(cold))
		for j, i := range cold {
			cfgs[j] = lanes[i].cfg
		}
		results, err := sim.RunBatch(p, cfgs)
		if err != nil {
			return nil, err
		}
		for j, i := range cold {
			rep, err := lanes[i].finish(results[j])
			if err != nil {
				return nil, err
			}
			reports[i] = rep
		}
	}
	return reports, nil
}

// cacheKeyFor derives the persistent-cache key for a public Run. The
// manager field is the policy fingerprint — the registered policy name
// plus the canonical rendering of its fully resolved parameters — so
// every input that shapes the manager is in the key, and two processes
// sweeping the same parameter grid share entries exactly.
func cacheKeyFor(p *program.Program, design arch.Design, fingerprint string, opts Options, maxTranslations uint64) rescache.Key {
	return rescache.Key{
		Program: p.Digest(),
		Design:  rescache.Fingerprint(design),
		Manager: fingerprint,
		Config: fmt.Sprintf("translations=%d sample=%d",
			maxTranslations, opts.SampleInterval),
	}
}

// reportOf flattens a simulator result into the public Report.
func reportOf(res *sim.Result) *Report {
	r := &Report{
		Benchmark:    res.Benchmark,
		Suite:        res.Suite,
		Arch:         res.Arch,
		Manager:      res.Manager,
		Cycles:       res.Cycles,
		Instructions: res.GuestInsns,
		IPC:          res.IPC,
		Seconds:      res.Seconds,
		VPU: unitReportOf(res, arch.UnitVPU, UnitReport{
			GatedFrac:          res.VPU.GatedFrac,
			SwitchesPerMCycles: res.VPU.SwitchesPerM,
		}),
		BPU: unitReportOf(res, arch.UnitBPU, UnitReport{
			GatedFrac:          res.BPU.GatedFrac,
			SwitchesPerMCycles: res.BPU.SwitchesPerM,
		}),
		MLC: unitReportOf(res, arch.UnitMLC, UnitReport{
			GatedFrac:          res.MLC.GatedFrac,
			OneWayFrac:         res.MLC.OneWayFrac,
			HalfFrac:           res.MLC.HalfFrac,
			SwitchesPerMCycles: res.MLC.SwitchesPerM,
		}),
		AvgPowerW:      res.Power.AvgPowerW(),
		AvgLeakageW:    res.Power.AvgLeakageW(),
		TotalEnergyJ:   res.Power.TotalEnergyJ(),
		MispredictRate: res.MispredictRate(),
		PVTHitRate:     res.PVT.HitRate(),
		CDEInvocations: res.CDE.Invocations,
	}
	if res.MLCAccesses > 0 {
		r.MLCHitRate = float64(res.MLCHits) / float64(res.MLCAccesses)
	}
	r.PhasesSeen = res.KnownPhases
	for _, s := range res.Samples {
		r.Samples = append(r.Samples, Sample{
			Instructions: s.Insns,
			IPC:          s.IPC,
			VectorOps:    s.VectorOps,
		})
	}
	if res.Metrics != nil {
		r.Metrics = metricsReportOf(res.Metrics)
	}
	if res.Audit != nil {
		r.Audit = auditReportOf(res.Audit)
	}
	return r
}

// unitReportOf completes a unit's public report with its leakage-energy
// triple from the power accountant.
func unitReportOf(res *sim.Result, unit string, u UnitReport) UnitReport {
	pu := res.Power.Unit(unit)
	u.LeakageJ = pu.LeakageJ
	u.FullLeakageJ = pu.FullLeakageJ
	u.LeakageSavedJ = pu.LeakSavedJ
	return u
}

// Comparison is the paper's three-way configuration study for one
// benchmark (Figure 12's per-app data plus power).
type Comparison struct {
	Benchmark string
	FullPower *Report
	PowerChop *Report
	MinPower  *Report
}

// Slowdown returns PowerChop's performance loss vs full power.
func (c *Comparison) Slowdown() float64 {
	return c.PowerChop.Cycles/c.FullPower.Cycles - 1
}

// MinPowerLoss returns the minimally-powered core's performance loss.
func (c *Comparison) MinPowerLoss() float64 {
	return 1 - c.FullPower.Cycles/c.MinPower.Cycles
}

// PowerReduction returns PowerChop's total power reduction vs full power.
func (c *Comparison) PowerReduction() float64 {
	return 1 - c.PowerChop.AvgPowerW/c.FullPower.AvgPowerW
}

// LeakageReduction returns PowerChop's leakage power reduction.
func (c *Comparison) LeakageReduction() float64 {
	return 1 - c.PowerChop.AvgLeakageW/c.FullPower.AvgLeakageW
}

// EnergyReduction returns PowerChop's total energy reduction.
func (c *Comparison) EnergyReduction() float64 {
	return 1 - c.PowerChop.TotalEnergyJ/c.FullPower.TotalEnergyJ
}

// Compare runs the benchmark under full-power, PowerChop and min-power.
// With Options.Parallelism above one (and no TraceWriter) the three runs
// execute concurrently; otherwise (unless Options.Batch is 1 or a
// TraceWriter is attached) they share one batched simulation, which is
// byte-identical to the serial runs but roughly twice as fast cold.
func Compare(benchmark string, opts Options) (*Comparison, error) {
	c := &Comparison{Benchmark: benchmark}
	configs := []struct {
		manager string
		into    **Report
	}{
		{ManagerFullPower, &c.FullPower},
		{ManagerPowerChop, &c.PowerChop},
		{ManagerMinPower, &c.MinPower},
	}
	run := func(manager string, into **Report) error {
		o := opts
		o.Manager = manager
		rep, err := Run(benchmark, o)
		if err != nil {
			return err
		}
		*into = rep
		return nil
	}
	if opts.Parallelism > 1 && opts.TraceWriter == nil {
		errs := make([]error, len(configs))
		var wg sync.WaitGroup
		for i, cfg := range configs {
			wg.Add(1)
			go func(i int, manager string, into **Report) {
				defer wg.Done()
				errs[i] = run(manager, into)
			}(i, cfg.manager, cfg.into)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
		return c, nil
	}
	if opts.Batch != 1 && opts.TraceWriter == nil {
		optsList := make([]Options, len(configs))
		for i, cfg := range configs {
			optsList[i] = opts
			optsList[i].Manager = cfg.manager
		}
		reps, err := RunBatch(benchmark, optsList)
		if err != nil {
			return nil, err
		}
		for i, cfg := range configs {
			*cfg.into = reps[i]
		}
		return c, nil
	}
	for _, cfg := range configs {
		if err := run(cfg.manager, cfg.into); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// SortedBenchmarks returns benchmark names sorted alphabetically.
func SortedBenchmarks() []string {
	names := Benchmarks()
	sort.Strings(names)
	return names
}
