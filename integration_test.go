package powerchop

// End-to-end integration tests: whole-system invariants that must hold
// across managers, design points and benchmarks.

import (
	"testing"
)

func TestGuestWorkInvariantAcrossManagers(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation runs are slow")
	}
	// The guest program's dynamic instruction stream is fixed by the
	// benchmark and run length; power management changes timing and
	// micro-ops, never the guest work.
	var insns []uint64
	for _, m := range []string{ManagerFullPower, ManagerPowerChop, ManagerMinPower, ManagerTimeout} {
		rep, err := Run("gobmk", Options{Passes: 1, Manager: m})
		if err != nil {
			t.Fatal(err)
		}
		insns = append(insns, rep.Instructions)
	}
	for i := 1; i < len(insns); i++ {
		if insns[i] != insns[0] {
			t.Fatalf("guest instructions differ across managers: %v", insns)
		}
	}
}

func TestRunsAreDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation runs are slow")
	}
	for _, bench := range []string{"hmmer", "msn"} {
		a, err := Run(bench, Options{Passes: 1})
		if err != nil {
			t.Fatal(err)
		}
		b, err := Run(bench, Options{Passes: 1})
		if err != nil {
			t.Fatal(err)
		}
		if a.Cycles != b.Cycles || a.TotalEnergyJ != b.TotalEnergyJ ||
			a.VPU.GatedFrac != b.VPU.GatedFrac {
			t.Fatalf("%s: runs diverged (%v vs %v cycles)", bench, a.Cycles, b.Cycles)
		}
	}
}

func TestEnergyMinimizerGatesDeeper(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation runs are slow")
	}
	// gobmk's board-eval phase sits between the default (0.005) and
	// aggressive (0.02) VPU thresholds, so the energy minimizer gates the
	// VPU strictly more, saving more power for more slowdown.
	def, err := Run("gobmk", Options{Passes: 1, Manager: ManagerPowerChop})
	if err != nil {
		t.Fatal(err)
	}
	agg, err := Run("gobmk", Options{Passes: 1, Manager: ManagerEnergyMin})
	if err != nil {
		t.Fatal(err)
	}
	if agg.VPU.GatedFrac <= def.VPU.GatedFrac {
		t.Fatalf("energy-min VPU gating %.3f not above default %.3f",
			agg.VPU.GatedFrac, def.VPU.GatedFrac)
	}
	if agg.AvgPowerW >= def.AvgPowerW {
		t.Fatalf("energy-min power %.3f not below default %.3f",
			agg.AvgPowerW, def.AvgPowerW)
	}
	if agg.Cycles < def.Cycles {
		t.Fatalf("energy-min should not run faster than the default policy")
	}
}

func TestMobileAndServerScalesDiffer(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation runs are slow")
	}
	// The same MobileBench workload on both design points: the mobile
	// core draws far less power and runs at lower IPC.
	mobile, err := Run("bbc", Options{Passes: 1, Manager: ManagerFullPower})
	if err != nil {
		t.Fatal(err)
	}
	server, err := Run("bbc", Options{Passes: 1, Manager: ManagerFullPower, Arch: ArchServer})
	if err != nil {
		t.Fatal(err)
	}
	if mobile.AvgPowerW >= server.AvgPowerW/5 {
		t.Fatalf("mobile power %.3f W not far below server %.3f W",
			mobile.AvgPowerW, server.AvgPowerW)
	}
	if mobile.Seconds <= server.Seconds {
		t.Fatal("the 1GHz 2-wide mobile core should take longer than the 3GHz 4-wide server")
	}
}

func TestPowerChopNeverSlowerThanMinPower(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation runs are slow")
	}
	// Criticality-directed gating must dominate criticality-blind gating
	// on performance for MLC/branch-critical workloads.
	for _, bench := range []string{"mcf", "bzip2", "soplex"} {
		cmp, err := Compare(bench, Options{Passes: 1})
		if err != nil {
			t.Fatal(err)
		}
		if cmp.PowerChop.Cycles > cmp.MinPower.Cycles {
			t.Errorf("%s: PowerChop slower than min-power", bench)
		}
		if cmp.Slowdown() > 0.06 {
			t.Errorf("%s: slowdown %.3f", bench, cmp.Slowdown())
		}
	}
}

func TestEnergyAccountingConsistent(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation runs are slow")
	}
	rep, err := Run("libquantum", Options{Passes: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Average power must equal total energy over runtime.
	if rep.Seconds <= 0 {
		t.Fatal("no runtime")
	}
	implied := rep.TotalEnergyJ / rep.Seconds
	if diff := implied/rep.AvgPowerW - 1; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("power %.6f W vs energy/time %.6f W", rep.AvgPowerW, implied)
	}
	if rep.AvgLeakageW >= rep.AvgPowerW {
		t.Fatal("leakage exceeds total power")
	}
}

func TestTimeoutManagerOnlyTouchesVPU(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation runs are slow")
	}
	rep, err := Run("libquantum", Options{Passes: 1, Manager: ManagerTimeout})
	if err != nil {
		t.Fatal(err)
	}
	if rep.BPU.GatedFrac != 0 || rep.MLC.GatedFrac != 0 {
		t.Fatalf("timeout baseline gated BPU %.3f / MLC %.3f", rep.BPU.GatedFrac, rep.MLC.GatedFrac)
	}
	if rep.VPU.GatedFrac < 0.9 {
		t.Fatalf("timeout did not gate the idle VPU: %.3f", rep.VPU.GatedFrac)
	}
}
