package powerchop

import (
	"bytes"
	"reflect"
	"testing"
)

// TestRenderAllParallelByteIdentical is the pipeline's determinism gate:
// at smoke scale, an 8-job render of every figure must be byte-identical
// to a serial render.
func TestRenderAllParallelByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("full figure renders are slow; skipped with -short")
	}
	if raceEnabled {
		t.Skip("two full figure renders under the race detector are too slow; " +
			"runner concurrency is race-tested in internal/experiments")
	}
	var serial, parallel bytes.Buffer
	if err := NewFigureRunner(0.02, WithJobs(1)).RenderAll(&serial); err != nil {
		t.Fatal(err)
	}
	if err := NewFigureRunner(0.02, WithJobs(8)).RenderAll(&parallel); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(serial.Bytes(), parallel.Bytes()) {
		sl, pl := bytes.Split(serial.Bytes(), []byte("\n")), bytes.Split(parallel.Bytes(), []byte("\n"))
		for i := 0; i < len(sl) && i < len(pl); i++ {
			if !bytes.Equal(sl[i], pl[i]) {
				t.Fatalf("outputs diverge at line %d:\n serial:   %s\n parallel: %s", i+1, sl[i], pl[i])
			}
		}
		t.Fatalf("outputs differ in length: serial %d lines, parallel %d lines", len(sl), len(pl))
	}
}

// TestCompareParallelMatchesSerial checks Options.Parallelism changes
// only wall-clock, never results.
func TestCompareParallelMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("comparison runs are slow; skipped with -short")
	}
	serial, err := Compare("namd", Options{Passes: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Compare("namd", Options{Passes: 0.25, Parallelism: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, par) {
		t.Fatalf("parallel Compare diverged from serial:\n serial:   %+v\n parallel: %+v", serial, par)
	}
}
