//go:build race

package powerchop

// raceEnabled reports whether the race detector is compiled in; the
// full-figure determinism test skips itself under race (simulations run
// ~10x slower there) — the concurrency machinery is still race-tested by
// the cheaper runner-level tests in internal/experiments.
const raceEnabled = true
