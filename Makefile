# Developer entry points. `make check` is the tier-1 gate: build, vet and
# the full test suite under the race detector.

GO ?= go

.PHONY: build vet test race check bench bench-overhead clean

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

check: build vet race

# Figure/table regeneration benchmarks (slow; full-scale runs).
bench:
	$(GO) test -run '^$$' -bench . -benchmem

# Observability hot-path overhead only.
bench-overhead:
	$(GO) test -run '^$$' -bench BenchmarkTracerOverhead -benchtime 5x -benchmem

clean:
	$(GO) clean ./...
