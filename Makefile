# Developer entry points. `make check` is the tier-1 gate: build, vet and
# the full test suite under the race detector.

GO ?= go

.PHONY: build vet lint test race check bench bench-overhead bench-json profile clean

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Formatting + vet gate. gofmt -l prints offending files; fail if any.
lint:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

check: build vet race

# Figure/table regeneration benchmarks (slow; full-scale runs).
bench:
	$(GO) test -run '^$$' -bench . -benchmem

# Observability hot-path overhead only.
bench-overhead:
	$(GO) test -run '^$$' -bench BenchmarkTracerOverhead -benchtime 5x -benchmem

# One quick pass over every benchmark, recorded as BENCH_<stamp>.json —
# the perf-trajectory artifact CI uploads (non-blocking).
bench-json:
	$(GO) run ./cmd/benchjson -benchtime 1x

# CPU and heap profiles of the simulator hot loop (the compiled-region
# execution path). See DESIGN.md "Hot path & result cache" for how to
# read them; start with:
#   go tool pprof -top cpu.out
#   go tool pprof -list 'Cache.*Access' cpu.out
profile:
	$(GO) test -run '^$$' -bench BenchmarkRunCompiled -benchtime 20x \
		-cpuprofile cpu.out -memprofile mem.out -o powerchop.test .
	@echo "profiles written: cpu.out mem.out (pair with binary powerchop.test)"

clean:
	$(GO) clean ./...
