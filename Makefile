# Developer entry points. `make check` is the tier-1 gate: build, vet and
# the full test suite under the race detector.

GO ?= go

.PHONY: build vet lint test race check bench bench-overhead bench-json clean

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Formatting + vet gate. gofmt -l prints offending files; fail if any.
lint:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

check: build vet race

# Figure/table regeneration benchmarks (slow; full-scale runs).
bench:
	$(GO) test -run '^$$' -bench . -benchmem

# Observability hot-path overhead only.
bench-overhead:
	$(GO) test -run '^$$' -bench BenchmarkTracerOverhead -benchtime 5x -benchmem

# One quick pass over every benchmark, recorded as BENCH_<stamp>.json —
# the perf-trajectory artifact CI uploads (non-blocking).
bench-json:
	$(GO) run ./cmd/benchjson -benchtime 1x

clean:
	$(GO) clean ./...
