package powerchop

import "powerchop/internal/policy"

// ParamSpec is the public view of one policy parameter's schema entry.
type ParamSpec struct {
	Name        string  `json:"name"`
	Description string  `json:"description"`
	Default     float64 `json:"default"`
	Min         float64 `json:"min"`
	Max         float64 `json:"max"`
}

// PolicyInfo is the public view of one registered gating policy.
type PolicyInfo struct {
	Name        string      `json:"name"`
	Description string      `json:"description"`
	Params      []ParamSpec `json:"params,omitempty"`
}

// Policies lists every registered gating policy with its parameter
// schema, sorted by name. The listing is the source the CLI's
// `powerchop policies` subcommand and the serve API's /api/policies
// endpoint render.
func Policies() []PolicyInfo {
	specs := policy.All()
	out := make([]PolicyInfo, 0, len(specs))
	for _, s := range specs {
		info := PolicyInfo{Name: s.Name, Description: s.Description}
		for _, p := range s.Params {
			info.Params = append(info.Params, ParamSpec{
				Name:        p.Name,
				Description: p.Description,
				Default:     p.Default,
				Min:         p.Min,
				Max:         p.Max,
			})
		}
		out = append(out, info)
	}
	return out
}

// PolicyNames returns the registered policy names, sorted.
func PolicyNames() []string { return policy.Names() }

// PolicyFingerprint returns the deterministic identity of (policy,
// params): the registered name plus the canonical rendering of the
// fully resolved parameters — the same string Run folds into persistent
// result-cache keys. It errors on an unknown policy, an unknown
// parameter or an out-of-bounds value.
func PolicyFingerprint(name string, params map[string]float64) (string, error) {
	spec, _, err := resolvePolicy(Options{Manager: name, Params: params})
	if err != nil {
		return "", err
	}
	return spec.Fingerprint(params)
}
