package powerchop

import (
	"encoding/json"
	"testing"

	"powerchop/internal/policy"
	"powerchop/internal/rescache"
)

// mustJSON renders a value for byte-level comparison.
func mustJSON(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestRunBatchMatchesRun is the public batch contract: every lane of a
// RunBatch returns a Report byte-identical to the corresponding solo
// Run, across different policies and parameter assignments sharing one
// batched simulation.
func TestRunBatchMatchesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates a benchmark under several managers")
	}
	lanes := []Options{
		{Manager: ManagerPowerChop, Passes: 0.3},
		{Manager: ManagerTimeout, Passes: 0.3},
		{Manager: ManagerFullPower, Passes: 0.3},
		{Manager: ManagerEnergyMin, Passes: 0.3},
		{Manager: ManagerPowerChop, Passes: 0.3, Params: map[string]float64{"vpu": 0.02}},
	}
	batched, err := RunBatch("bzip2", lanes)
	if err != nil {
		t.Fatal(err)
	}
	if len(batched) != len(lanes) {
		t.Fatalf("got %d reports for %d lanes", len(batched), len(lanes))
	}
	for i, o := range lanes {
		solo, err := Run("bzip2", o)
		if err != nil {
			t.Fatalf("lane %d solo: %v", i, err)
		}
		if mustJSON(t, batched[i]) != mustJSON(t, solo) {
			t.Errorf("lane %d (%s): batched report differs from solo Run", i, o.Manager)
		}
	}
}

// TestRunBatchSharesCacheWithRun checks the cache-key contract: a batch
// files exactly one entry per lane under Run's keys, so solo Runs hit
// them (and vice versa) without re-simulating.
func TestRunBatchSharesCacheWithRun(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates a benchmark under two managers")
	}
	cache := rescache.New(t.TempDir(), nil)
	lanes := []Options{
		{Manager: ManagerPowerChop, Passes: 0.3, Cache: cache},
		{Manager: ManagerMinPower, Passes: 0.3, Cache: cache},
	}
	batched, err := RunBatch("libquantum", lanes)
	if err != nil {
		t.Fatal(err)
	}
	if st := cache.Stats(); st.Stores != 2 || st.Hits != 0 {
		t.Fatalf("cold batch: stats %+v, want 2 stores and no hits", st)
	}
	for i, o := range lanes {
		solo, err := Run("libquantum", o)
		if err != nil {
			t.Fatal(err)
		}
		if mustJSON(t, batched[i]) != mustJSON(t, solo) {
			t.Errorf("lane %d: cached solo Run differs from batched report", i)
		}
	}
	if st := cache.Stats(); st.Hits != 2 || st.Stores != 2 {
		t.Fatalf("solo Runs missed the batch's entries: %+v", st)
	}
	// A warm batch serves every lane from the cache.
	again, err := RunBatch("libquantum", lanes)
	if err != nil {
		t.Fatal(err)
	}
	if st := cache.Stats(); st.Hits != 4 || st.Stores != 2 {
		t.Fatalf("warm batch re-simulated: %+v", st)
	}
	for i := range lanes {
		if mustJSON(t, again[i]) != mustJSON(t, batched[i]) {
			t.Errorf("lane %d: warm batch report differs", i)
		}
	}
}

// TestCompareBatchedMatchesSolo pins Compare's batched serial path to
// the Batch=1 solo path.
func TestCompareBatchedMatchesSolo(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates a benchmark six times")
	}
	batched, err := Compare("libquantum", Options{Passes: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	solo, err := Compare("libquantum", Options{Passes: 0.3, Batch: 1})
	if err != nil {
		t.Fatal(err)
	}
	if mustJSON(t, batched) != mustJSON(t, solo) {
		t.Error("batched Compare differs from solo Compare")
	}
}

// TestTuneBatchedMatchesSolo pins the batched sweep to the solo sweep:
// identical points, frontier and fingerprints at any Batch setting.
func TestTuneBatchedMatchesSolo(t *testing.T) {
	if testing.Short() {
		t.Skip("sweeps a small parameter grid twice")
	}
	sweep := func(batch int) *TuneResult {
		t.Helper()
		res, err := Tune(TuneOptions{
			Policy:     ManagerTimeout,
			Benchmarks: []string{"libquantum"},
			Grid:       map[string][]float64{"idle-cycles": {10000, 20000}},
			Options:    Options{Passes: 0.3, Batch: batch},
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	if mustJSON(t, sweep(0)) != mustJSON(t, sweep(1)) {
		t.Error("batched Tune differs from solo Tune")
	}
}

// TestTuneGridDedupe covers the sweep-grid deduplication: defaults
// sitting on a bound collapse their clamped neighbours, and explicit
// override lists with repeated values contribute each value once.
func TestTuneGridDedupe(t *testing.T) {
	spec := policy.Spec{
		Name: "grid-test",
		Params: []policy.Param{
			{Name: "lo-bound", Default: 1, Min: 1, Max: 8}, // half clamps onto the default
			{Name: "hi-bound", Default: 4, Min: 0, Max: 4}, // double clamps onto the default
			{Name: "zero", Default: 0, Min: 0, Max: 1},     // collapses to one point
		},
	}
	if got := defaultGrid(spec.Params[0]); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("lo-bound default grid = %v, want [1 2]", got)
	}
	if got := defaultGrid(spec.Params[1]); len(got) != 2 || got[0] != 2 || got[1] != 4 {
		t.Errorf("hi-bound default grid = %v, want [2 4]", got)
	}
	if got := defaultGrid(spec.Params[2]); len(got) != 1 || got[0] != 0 {
		t.Errorf("zero default grid = %v, want [0]", got)
	}
	points, err := tuneGrid(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 4 {
		t.Errorf("default sweep has %d points, want 4 (2x2x1)", len(points))
	}
	// Explicit overrides with repeats: each distinct value counts once,
	// first occurrence order preserved.
	points, err = tuneGrid(spec, map[string][]float64{
		"lo-bound": {5, 5, 3, 5},
		"hi-bound": {2},
		"zero":     {},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("override sweep has %d points, want 2", len(points))
	}
	if points[0]["lo-bound"] != 5 || points[1]["lo-bound"] != 3 {
		t.Errorf("override axis order not preserved: %v", points)
	}
	for i := range points {
		for j := i + 1; j < len(points); j++ {
			same := true
			for k, v := range points[i] {
				if points[j][k] != v {
					same = false
					break
				}
			}
			if same {
				t.Errorf("points %d and %d are duplicates: %v", i, j, points[i])
			}
		}
	}
}

// TestRunBatchLaneError checks that an invalid lane fails the whole
// batch with the lane identified, before any simulation runs.
func TestRunBatchLaneError(t *testing.T) {
	_, err := RunBatch("bzip2", []Options{
		{Manager: ManagerFullPower, Passes: 0.1},
		{Manager: "no-such-policy", Passes: 0.1},
	})
	if err == nil {
		t.Fatal("invalid lane accepted")
	}
}
