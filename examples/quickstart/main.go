// Quickstart: simulate one benchmark under PowerChop and see what the
// technique buys.
//
// PowerChop watches the application's execution phases through the hot
// translation buffer, characterizes how critical the VPU, large branch
// predictor and mid-level cache are to each phase, and power-gates the
// units that are not earning their keep. This example runs the gobmk
// stand-in (the paper's Figure 1 benchmark, whose vector intensity varies
// across phases) and compares the managed core against the always-on and
// minimally-powered extremes.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"powerchop"
)

func main() {
	const bench = "gobmk"
	cmp, err := powerchop.Compare(bench, powerchop.Options{Passes: 2})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("PowerChop quickstart: %s on the %s core\n\n", bench, cmp.FullPower.Arch)
	fmt.Printf("%-12s %8s %10s %10s\n", "config", "IPC", "power (W)", "energy (J)")
	for _, rep := range []*powerchop.Report{cmp.FullPower, cmp.PowerChop, cmp.MinPower} {
		fmt.Printf("%-12s %8.3f %10.3f %10.4f\n",
			rep.Manager, rep.IPC, rep.AvgPowerW, rep.TotalEnergyJ)
	}

	rep := cmp.PowerChop
	fmt.Printf("\nPowerChop gated the VPU %.0f%%, the large BPU %.0f%% and the MLC %.0f%% of cycles\n",
		rep.VPU.GatedFrac*100, rep.BPU.GatedFrac*100, rep.MLC.GatedFrac*100)
	fmt.Printf("characterizing %d phases with %d CDE invocations (PVT hit rate %.3f)\n",
		rep.PhasesSeen, rep.CDEInvocations, rep.PVTHitRate)
	fmt.Printf("\nresult: %.1f%% less power and %.1f%% less energy for %.2f%% slowdown\n",
		cmp.PowerReduction()*100, cmp.EnergyReduction()*100, cmp.Slowdown()*100)
	fmt.Printf("(the minimally-powered core loses %.0f%% performance — criticality-blind gating is not free)\n",
		cmp.MinPowerLoss()*100)
}
