// Timeout comparison: why criticality beats idleness for VPU gating
// (the paper's Section V-E / Figure 16).
//
// A hardware timeout gates the VPU after 20K idle cycles. Applications
// like namd issue a small number of vector operations spread almost
// uniformly through execution: the unit is never idle long enough for the
// timeout to fire, yet it contributes almost nothing to performance.
// PowerChop instead measures the phase's SIMD criticality, gates the unit,
// and lets the binary translator's scalar-emulation paths absorb the
// stray vector work.
//
// Run with: go run ./examples/timeoutcompare
package main

import (
	"fmt"
	"log"

	"powerchop"
)

func main() {
	fmt.Println("VPU gating: PowerChop (criticality) vs 20K-cycle idle timeout")
	fmt.Printf("%-12s %12s %12s %14s\n", "benchmark", "chop gated", "t/o gated", "chop slowdown")

	// The paper names namd, perlbench and h264 as dramatic wins; milc is
	// the counterpoint where the VPU is genuinely critical and neither
	// approach should gate it.
	for _, name := range []string{"namd", "perlbench", "h264ref", "milc"} {
		full, err := powerchop.Run(name, powerchop.Options{Manager: powerchop.ManagerFullPower})
		if err != nil {
			log.Fatal(err)
		}
		chop, err := powerchop.Run(name, powerchop.Options{Manager: powerchop.ManagerPowerChop})
		if err != nil {
			log.Fatal(err)
		}
		timeout, err := powerchop.Run(name, powerchop.Options{Manager: powerchop.ManagerTimeout})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s %11.0f%% %11.0f%% %13.2f%%\n",
			name, chop.VPU.GatedFrac*100, timeout.VPU.GatedFrac*100,
			(chop.Cycles/full.Cycles-1)*100)
	}

	fmt.Println("\nnamd/perlbench/h264ref: sparse-but-uniform vector ops keep the timeout armed")
	fmt.Println("forever while PowerChop gates the unit; milc's dense SIMD keeps it on either way.")
}
