// Mobile study: run the MobileBench R-GWB browser stand-ins on the
// Cortex-A9-class mobile core, where PowerChop shines — the paper reports
// 19% average core power reduction (up to 40%) at ~2% slowdown, with the
// VPU gated ~90% of the time and the BPU ~40%.
//
// Run with: go run ./examples/mobilestudy
package main

import (
	"fmt"
	"log"

	"powerchop"
)

func main() {
	fmt.Println("PowerChop mobile study (MobileBench R-GWB, Cortex-A9-class core)")
	fmt.Printf("%-12s %9s %8s %9s %6s %6s %6s %8s\n",
		"site", "slowdown", "power", "leakage", "VPU", "BPU", "MLC", "phases")

	var slow, pwr, leak, vpu, bpu, mlc float64
	n := 0
	for _, name := range powerchop.Benchmarks() {
		suite, err := powerchop.SuiteOf(name)
		if err != nil {
			log.Fatal(err)
		}
		if suite != "MobileBench" {
			continue
		}
		cmp, err := powerchop.Compare(name, powerchop.Options{Passes: 2})
		if err != nil {
			log.Fatal(err)
		}
		rep := cmp.PowerChop
		fmt.Printf("%-12s %8.2f%% %7.1f%% %8.1f%% %5.0f%% %5.0f%% %5.0f%% %8d\n",
			name, cmp.Slowdown()*100, cmp.PowerReduction()*100, cmp.LeakageReduction()*100,
			rep.VPU.GatedFrac*100, rep.BPU.GatedFrac*100, rep.MLC.GatedFrac*100, rep.PhasesSeen)
		slow += cmp.Slowdown()
		pwr += cmp.PowerReduction()
		leak += cmp.LeakageReduction()
		vpu += rep.VPU.GatedFrac
		bpu += rep.BPU.GatedFrac
		mlc += rep.MLC.GatedFrac
		n++
	}
	f := float64(n)
	fmt.Printf("\naverages: slowdown %.2f%%, power -%.1f%%, leakage -%.1f%%; gated VPU %.0f%% BPU %.0f%% MLC %.0f%%\n",
		slow/f*100, pwr/f*100, leak/f*100, vpu/f*100, bpu/f*100, mlc/f*100)
	fmt.Println("paper: ~19% power, ~32% leakage, VPU ~90%, BPU ~40%, MLC ~20% gated")
}
