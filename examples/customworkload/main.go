// Custom workload: evaluate PowerChop on your own phase behaviour using
// the public Workload builder.
//
// The example models a hypothetical analytics service with three phases:
// an ingest phase that streams data from memory (MLC non-critical), a
// vectorized scoring phase (VPU critical), and a branchy rule-engine phase
// whose control flow only a history-based predictor can track (large BPU
// critical). PowerChop should gate each unit exactly where it stops
// mattering.
//
// Run with: go run ./examples/customworkload
package main

import (
	"fmt"
	"log"

	"powerchop"
)

func main() {
	w := &powerchop.Workload{
		Name: "analytics-service",
		Regions: []powerchop.Region{
			{
				// Streaming ingest: word-by-word walk over a huge input;
				// no cache level retains it, branches are simple loops.
				Name: "ingest", Instructions: 32,
				BranchFrac: 0.04, LoadFrac: 0.28, StoreFrac: 0.10,
				Branches: []powerchop.Branch{{Kind: powerchop.BranchBiased, Bias: 0.98}},
				Streams:  []powerchop.Stream{{WorkingSetBytes: 64 << 20, StrideBytes: 8}},
			},
			{
				// Vector scoring over an L1-resident model.
				Name: "score", Instructions: 36,
				VectorFrac: 0.12, BranchFrac: 0.03, LoadFrac: 0.18,
				Branches: []powerchop.Branch{{Kind: powerchop.BranchBiased, Bias: 0.97}},
				Streams:  []powerchop.Stream{{WorkingSetBytes: 20 << 10}},
			},
			{
				// Rule engine: pattern-heavy dispatch over an MLC-resident
				// rule table.
				Name: "rules", Instructions: 34,
				BranchFrac: 0.12, LoadFrac: 0.20,
				Branches: []powerchop.Branch{
					{Kind: powerchop.BranchPatterned, Pattern: "TTNTNNTT"},
					{Kind: powerchop.BranchCorrelated, Depth: 5},
					{Kind: powerchop.BranchBiased, Bias: 0.9},
				},
				Streams: []powerchop.Stream{{WorkingSetBytes: 512 << 10}},
			},
		},
		Phases: []powerchop.WorkloadPhase{
			{Name: "ingest", Translations: 60000, Weights: map[int]float64{0: 1}},
			{Name: "score", Translations: 60000, Weights: map[int]float64{1: 1}},
			{Name: "rules", Translations: 60000, Weights: map[int]float64{2: 1}},
		},
	}

	full, err := powerchop.RunWorkload(w, powerchop.Options{Manager: powerchop.ManagerFullPower})
	if err != nil {
		log.Fatal(err)
	}
	chop, err := powerchop.RunWorkload(w, powerchop.Options{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("custom workload %q on the %s core\n\n", w.Name, chop.Arch)
	fmt.Printf("full power: IPC %.3f, %.3f W\n", full.IPC, full.AvgPowerW)
	fmt.Printf("powerchop:  IPC %.3f, %.3f W\n\n", chop.IPC, chop.AvgPowerW)
	fmt.Printf("unit gating: VPU %.0f%% (off outside the scoring phase)\n", chop.VPU.GatedFrac*100)
	fmt.Printf("             BPU %.0f%% (off outside the rule engine)\n", chop.BPU.GatedFrac*100)
	fmt.Printf("             MLC %.0f%% gated, %.0f%% one-way (ingest streams, scoring fits the L1)\n",
		chop.MLC.GatedFrac*100, chop.MLC.OneWayFrac*100)
	fmt.Printf("\npower -%.1f%%, energy -%.1f%%, slowdown %.2f%%\n",
		(1-chop.AvgPowerW/full.AvgPowerW)*100,
		(1-chop.TotalEnergyJ/full.TotalEnergyJ)*100,
		(chop.Cycles/full.Cycles-1)*100)
}
