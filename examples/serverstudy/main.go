// Server study: sweep the SPEC CPU2006 and PARSEC stand-ins on the
// Nehalem-class server core, reproducing the per-suite aggregates behind
// the paper's Figures 12-14 (performance, power, leakage).
//
// Run with: go run ./examples/serverstudy
package main

import (
	"fmt"
	"log"

	"powerchop"
)

func main() {
	fmt.Println("PowerChop server study (SPEC CPU2006 + PARSEC)")
	fmt.Printf("%-14s %-9s %9s %8s %9s %9s %6s %6s %6s\n",
		"benchmark", "suite", "slowdown", "power", "leakage", "energy", "VPU", "BPU", "MLC")

	type agg struct {
		slow, pwr, leak float64
		n               int
	}
	suites := map[string]*agg{}
	order := []string{}

	for _, name := range powerchop.Benchmarks() {
		suite, err := powerchop.SuiteOf(name)
		if err != nil {
			log.Fatal(err)
		}
		if suite == "MobileBench" {
			continue // see examples/mobilestudy
		}
		cmp, err := powerchop.Compare(name, powerchop.Options{Passes: 2})
		if err != nil {
			log.Fatal(err)
		}
		rep := cmp.PowerChop
		fmt.Printf("%-14s %-9s %8.2f%% %7.1f%% %8.1f%% %8.1f%% %5.0f%% %5.0f%% %5.0f%%\n",
			name, suite, cmp.Slowdown()*100,
			cmp.PowerReduction()*100, cmp.LeakageReduction()*100, cmp.EnergyReduction()*100,
			rep.VPU.GatedFrac*100, rep.BPU.GatedFrac*100, rep.MLC.GatedFrac*100)
		a := suites[suite]
		if a == nil {
			a = &agg{}
			suites[suite] = a
			order = append(order, suite)
		}
		a.slow += cmp.Slowdown()
		a.pwr += cmp.PowerReduction()
		a.leak += cmp.LeakageReduction()
		a.n++
	}

	fmt.Println()
	for _, s := range order {
		a := suites[s]
		n := float64(a.n)
		fmt.Printf("%-9s average: slowdown %.2f%%, power -%.1f%%, leakage -%.1f%%\n",
			s, a.slow/n*100, a.pwr/n*100, a.leak/n*100)
	}
	fmt.Println("\npaper (server suites): slowdown ~2%; power -10% INT / -6% FP / -8% PARSEC;")
	fmt.Println("leakage -23% INT / -10% FP / -12% PARSEC, with lbm and milc up to ~40% total power")
}
