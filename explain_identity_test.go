package powerchop

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"testing"
	"time"

	"powerchop/internal/arch"
	"powerchop/internal/cde"
	"powerchop/internal/obs"
	"powerchop/internal/obs/audit"
	"powerchop/internal/obs/serve"
	"powerchop/internal/power"
	"powerchop/internal/pvt"
)

// TestExplainAttachedByteIdentical is the decision-provenance determinism
// gate: rendering the full figure set with audit collection, histogram
// metrics and a live /decisions SSE client attached must be byte-identical
// to an unobserved render. The audit layer is a pure observer.
func TestExplainAttachedByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("full figure renders are slow; skipped with -short")
	}
	if raceEnabled {
		t.Skip("two full figure renders under the race detector are too slow; " +
			"auditor concurrency is exercised by the unit tests")
	}

	var silent bytes.Buffer
	if err := NewFigureRunner(0.02, WithJobs(4)).RenderAll(&silent); err != nil {
		t.Fatal(err)
	}

	collector := obs.NewCollector()
	d := arch.Server()
	auditor := audit.MustNew(audit.Config{
		ClockHz: d.ClockHz,
		Units: []audit.UnitPower{
			{Name: d.PowerVPU.Name, LeakageW: d.PowerVPU.LeakageW},
			{Name: d.PowerBPU.Name, LeakageW: d.PowerBPU.LeakageW},
			{Name: d.PowerMLC.Name, LeakageW: d.PowerMLC.LeakageW},
		},
		TotalLeakageW: d.TotalLeakageW() + power.HTBPowerW,
		Registry:      collector.Registry(),
	})
	mon := serve.NewMonitor(collector.Registry())
	mon.SetDecisions(auditor)
	if err := mon.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := mon.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	}()
	base := "http://" + mon.Addr()

	// A live /decisions SSE client consuming (and possibly dropping)
	// decision events while the figures render.
	clientCtx, stopClient := context.WithCancel(context.Background())
	defer stopClient()
	req, err := http.NewRequestWithContext(clientCtx, http.MethodGet, base+"/decisions", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	clientDone := make(chan struct{})
	go func() {
		defer close(clientDone)
		defer resp.Body.Close()
		io.Copy(io.Discard, resp.Body)
	}()

	observed := NewFigureRunner(0.02, WithJobs(4),
		WithTracer(obs.Multi(collector, auditor, mon.Hub())))
	var live bytes.Buffer
	if err := observed.RenderAll(&live); err != nil {
		t.Fatal(err)
	}

	if !bytes.Equal(silent.Bytes(), live.Bytes()) {
		sl, ll := bytes.Split(silent.Bytes(), []byte("\n")), bytes.Split(live.Bytes(), []byte("\n"))
		for i := 0; i < len(sl) && i < len(ll); i++ {
			if !bytes.Equal(sl[i], ll[i]) {
				t.Fatalf("outputs diverge at line %d:\n silent:  %s\n audited: %s", i+1, sl[i], ll[i])
			}
		}
		t.Fatalf("outputs differ in length: silent %d lines, audited %d lines", len(sl), len(ll))
	}

	// The provenance surfaces must hold up after the render: the
	// /decisions snapshot parses as a trail that saw decisions, and the
	// audit histograms registered alongside the collector's metrics.
	var trail audit.Trail
	if err := json.Unmarshal(getBody(t, base+"/decisions?format=json"), &trail); err != nil {
		t.Fatalf("/decisions?format=json: %v", err)
	}
	if len(trail.Decisions) == 0 {
		t.Error("/decisions snapshot has no decision records after a full render")
	}
	metrics := getBody(t, base+"/metrics")
	if !bytes.Contains(metrics, []byte("audit_decision_latency_windows")) {
		t.Error("/metrics missing audit decision-latency histogram")
	}

	stopClient()
	select {
	case <-clientDone:
	case <-time.After(5 * time.Second):
		t.Fatal("SSE client did not terminate after cancel")
	}
}

// TestExplainAlgorithm1Reproduction checks that the audit trail carries
// the exact inputs Algorithm 1 saw: re-applying each recorded score to
// its recorded thresholds must reproduce the registered policy bit for
// bit, the thresholds must be the calibrated defaults, and every phase
// that ever ran gated must have a decision record explaining why.
func TestExplainAlgorithm1Reproduction(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates a benchmark; skipped with -short")
	}
	rep, err := Run("gobmk", Options{Audit: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Audit == nil {
		t.Fatal("no audit trail on report")
	}
	trail := rep.Audit.trail
	thr := cde.DefaultThresholds()

	computed := 0
	for _, d := range trail.Decisions {
		if d.Path != "computed" {
			continue
		}
		computed++
		if len(d.Scores) != 3 {
			t.Fatalf("decision %s@%d has %d scores, want 3", d.Phase, d.Window, len(d.Scores))
		}
		want := pvt.Decode(d.Policy)
		var got pvt.Policy
		for _, s := range d.Scores {
			switch s.Metric {
			case "simd-ratio":
				if s.Threshold != thr.VPU {
					t.Errorf("%s@%d: VPU threshold %v, want %v", d.Phase, d.Window, s.Threshold, thr.VPU)
				}
				got.VPUOn = s.Value > s.Threshold
			case "mispred-delta":
				if s.Threshold != thr.BPU {
					t.Errorf("%s@%d: BPU threshold %v, want %v", d.Phase, d.Window, s.Threshold, thr.BPU)
				}
				got.BPUOn = s.Value > s.Threshold
			case "l2hit-ratio":
				if s.Threshold != thr.MLC1 || s.Threshold2 != thr.MLC2 {
					t.Errorf("%s@%d: MLC thresholds %v/%v, want %v/%v",
						d.Phase, d.Window, s.Threshold, s.Threshold2, thr.MLC1, thr.MLC2)
				}
				switch {
				case s.Value > s.Threshold:
					got.MLC = pvt.MLCAll
				case s.Value <= s.Threshold2:
					got.MLC = pvt.MLCOne
				default:
					got.MLC = pvt.MLCHalf
				}
			default:
				t.Fatalf("%s@%d: unknown score metric %q", d.Phase, d.Window, s.Metric)
			}
		}
		if got != want {
			t.Errorf("%s@%d: replaying scores gives %s, recorded policy %s",
				d.Phase, d.Window, got, want)
		}
	}
	if computed == 0 {
		t.Fatal("run produced no computed decisions to replay")
	}

	// Every phase that accrued gated cycles must be explained: either a
	// decision record registered its policy, or the phase was still being
	// profiled (PVT misses, no registration yet) and inherited residual
	// gating from the preceding policy at the miss boundary.
	recorded := make(map[string]bool)
	for _, d := range trail.Decisions {
		recorded[d.Phase] = true
	}
	for _, p := range trail.Phases {
		var gated float64
		for _, g := range p.GatedCycles {
			gated += g
		}
		if gated > 0 && p.Phase != audit.BootPhase && !recorded[p.Phase] && p.Misses == 0 {
			t.Errorf("phase %s ran %v gated cycles with no decision record or miss path", p.Phase, gated)
		}
	}
}

// TestExplainAttributionReconciles checks the attribution sums: the
// per-unit energy the trail attributes across phases must equal the
// power model's per-unit leakage savings, and through that the deltas
// the Compare report exposes.
func TestExplainAttributionReconciles(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates three configurations; skipped with -short")
	}
	c, err := Compare("gobmk", Options{Audit: true, Parallelism: 3})
	if err != nil {
		t.Fatal(err)
	}
	chop := c.PowerChop
	if chop.Audit == nil {
		t.Fatal("no audit trail on the PowerChop report")
	}

	units := []struct {
		name string
		full UnitReport
		rep  UnitReport
	}{
		{arch.UnitVPU, c.FullPower.VPU, chop.VPU},
		{arch.UnitBPU, c.FullPower.BPU, chop.BPU},
		{arch.UnitMLC, c.FullPower.MLC, chop.MLC},
	}
	for _, u := range units {
		attributed := chop.Audit.EnergySavedJ[u.name]
		// Exactness claim 1: attribution reproduces the power model's
		// per-unit leakage savings.
		if !withinRel(attributed, u.rep.LeakageSavedJ, 1e-9) {
			t.Errorf("%s: attributed %v J, power model saved %v J",
				u.name, attributed, u.rep.LeakageSavedJ)
		}
		// Exactness claim 2: the same total decomposes into the Compare
		// report's observable deltas — the raw leakage reduction plus the
		// extra full-on leakage the slowdown would have cost.
		delta := (u.full.LeakageJ - u.rep.LeakageJ) +
			u.full.LeakageJ*(chop.Seconds/c.FullPower.Seconds-1)
		if !withinRel(attributed, delta, 1e-9) {
			t.Errorf("%s: attributed %v J, Compare deltas give %v J",
				u.name, attributed, delta)
		}
	}

	// Per-phase savings sum to the trail totals.
	sums := make(map[string]float64)
	for _, p := range chop.Audit.Phases {
		for u, j := range p.EnergySavedJ {
			sums[u] += j
		}
	}
	for u, total := range chop.Audit.EnergySavedJ {
		if !withinRel(sums[u], total, 1e-9) {
			t.Errorf("%s: phase savings sum %v J, trail total %v J", u, sums[u], total)
		}
	}
}

func withinRel(a, b, tol float64) bool {
	if a == b {
		return true
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	return math.Abs(a-b) <= tol*scale
}
