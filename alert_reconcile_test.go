package powerchop

import (
	"reflect"
	"sync"
	"testing"
	"time"

	"powerchop/internal/arch"
	"powerchop/internal/obs"
	"powerchop/internal/obs/alert"
	"powerchop/internal/obs/tsdb"
)

// eventRecorder captures the full event stream of a run for offline
// replay.
type eventRecorder struct {
	mu     sync.Mutex
	events []obs.Event
}

func (r *eventRecorder) Emit(e obs.Event) {
	r.mu.Lock()
	r.events = append(r.events, e)
	r.mu.Unlock()
}

// TestAlertOfflineOnlineReconciliation is the alerting determinism
// gate: a live evaluator ticking on wall time against the run's
// telemetry ingest must produce exactly the transitions `powerchop
// alerts check` reconstructs from the recorded trace afterwards. The
// evaluation schedule is a pure function of the data (stride
// boundaries against Store.LatestWindow), so the racing ticker and the
// offline per-event replay may not differ by a single transition.
func TestAlertOfflineOnlineReconciliation(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates a benchmark; skipped with -short")
	}
	units := []string{arch.UnitBPU, arch.UnitMLC, arch.UnitVPU}
	// The default ruleset plus a rule guaranteed to transition on any
	// run, so reconciliation is never an empty-vs-empty pass. Metric
	// rules are skipped on both sides (no registry attached): they are
	// outside the offline guarantee.
	rules := append(alert.DefaultRules(), alert.Rule{
		Name: "windows-progress",
		Expr: alert.Expr{Series: tsdb.SeriesInsns, Agg: "count", Window: 8, Op: ">", Threshold: 0},
	})

	// Live: telemetry ingest plus a fast wall-clock ticker racing the
	// simulation, with a final catch-up at stop.
	store := tsdb.NewStore(tsdb.DefaultConfig())
	ingest := tsdb.NewIngestor(store, tsdb.IngestorConfig{Units: units})
	rec := &eventRecorder{}
	live, err := alert.New(alert.Config{Rules: rules, Store: store, Every: alert.DefaultEvery})
	if err != nil {
		t.Fatal(err)
	}
	stop := live.Start(time.Millisecond)
	if _, err := Run("gobmk", Options{Passes: 0.5, Tracer: obs.Multi(rec, ingest)}); err != nil {
		stop()
		t.Fatal(err)
	}
	ingest.Flush()
	stop()

	// Offline: the recorded trace replayed through a fresh store and
	// evaluator, exactly what `powerchop alerts check` runs.
	replayed, err := alert.Replay(rec.events, rules, alert.ReplayConfig{
		Every: alert.DefaultEvery,
		Units: units,
	})
	if err != nil {
		t.Fatal(err)
	}

	a, b := live.Transitions(), replayed.Transitions()
	if len(a) == 0 {
		t.Fatal("live run produced no transitions — the fixture exercises nothing")
	}
	if len(a) != len(b) {
		t.Fatalf("live %d transitions, offline %d:\nlive:    %+v\noffline: %+v", len(a), len(b), a, b)
	}
	for i := range a {
		if !reflect.DeepEqual(a[i], b[i]) {
			t.Fatalf("transition %d diverges:\nlive:    %+v\noffline: %+v", i, a[i], b[i])
		}
	}
}
