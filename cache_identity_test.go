package powerchop

import (
	"bytes"
	"testing"

	"powerchop/internal/rescache"
)

// TestWarmCacheFiguresByteIdentical is the result cache's contract test:
// rendering the full figure set uncached, cold-cached (populating the
// store) and warm-cached (serving from it) must produce byte-identical
// output. Any divergence means a cached Result fails to reconstruct
// something a live run reports.
func TestWarmCacheFiguresByteIdentical(t *testing.T) {
	if testing.Short() || raceEnabled {
		t.Skip("renders the full figure set")
	}
	const scale = 0.02
	render := func(opts ...FigureOption) string {
		var buf bytes.Buffer
		if err := NewFigureRunner(scale, opts...).RenderAll(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}

	uncached := render()
	cache := rescache.New(t.TempDir(), nil)
	cold := render(WithCache(cache))
	if st := cache.Stats(); st.Stores == 0 {
		t.Fatalf("cold render stored nothing: %+v", st)
	}
	warm := render(WithCache(cache))
	st := cache.Stats()
	if st.Hits == 0 {
		t.Fatalf("warm render hit nothing: %+v", st)
	}

	if cold != uncached {
		t.Error("cold-cache render differs from uncached render")
	}
	if warm != uncached {
		t.Error("warm-cache render differs from uncached render")
	}
}

// TestRunCacheHitMatchesLiveRun pins the public Run API's cache path: a
// cache-hit Report (including the manager-derived PhasesSeen, which must
// travel inside the cached Result) equals the live run's.
func TestRunCacheHitMatchesLiveRun(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates a benchmark twice")
	}
	opts := Options{Passes: 0.3, Cache: rescache.New(t.TempDir(), nil)}
	live, err := Run("bzip2", opts)
	if err != nil {
		t.Fatal(err)
	}
	if st := opts.Cache.Stats(); st.Stores != 1 {
		t.Fatalf("live run stored %d entries, want 1", st.Stores)
	}
	cached, err := Run("bzip2", opts)
	if err != nil {
		t.Fatal(err)
	}
	if st := opts.Cache.Stats(); st.Hits != 1 {
		t.Fatalf("second run hit %d times, want 1: %+v", st.Hits, st)
	}
	if cached.Cycles != live.Cycles || cached.TotalEnergyJ != live.TotalEnergyJ {
		t.Errorf("cached run diverges: cycles %v vs %v, energy %v vs %v",
			cached.Cycles, live.Cycles, cached.TotalEnergyJ, live.TotalEnergyJ)
	}
	if cached.PhasesSeen != live.PhasesSeen {
		t.Errorf("PhasesSeen: cached %d, live %d", cached.PhasesSeen, live.PhasesSeen)
	}
}

// TestRunCacheBypassedForObservers pins the bypass rule: any consumer of
// the live event stream or per-run instrumentation disables the cache
// (counted, not silent) because a cached Result cannot replay events.
func TestRunCacheBypassedForObservers(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates a benchmark")
	}
	cache := rescache.New(t.TempDir(), nil)
	if _, err := Run("bzip2", Options{Passes: 0.3, Cache: cache, Metrics: true}); err != nil {
		t.Fatal(err)
	}
	st := cache.Stats()
	if st.Bypass != 1 || st.Stores != 0 || st.Hits != 0 {
		t.Fatalf("stats = %+v, want exactly one bypass and no stores", st)
	}
}
