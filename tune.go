package powerchop

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"

	"powerchop/internal/obs/span"
	"powerchop/internal/policy"
	"powerchop/internal/rescache"
	"powerchop/internal/stats"
	"powerchop/internal/textplot"
)

// TuneOptions configures a parameter-grid sweep of one policy.
type TuneOptions struct {
	// Policy names the registered policy to sweep (see PolicyNames).
	Policy string
	// Benchmarks are the workloads averaged over (default: gobmk).
	Benchmarks []string
	// Grid overrides the swept values per parameter name. Parameters
	// without an entry get the default grid: {max(min, default/2),
	// default, min(max, default·2)}, deduplicated. An explicit empty
	// slice pins the parameter to its default.
	Grid map[string][]float64
	// Options are the base run options (Arch, Passes, Cache, CacheDir,
	// Parallelism...). Manager, Params, Thresholds and TimeoutCycles are
	// ignored — the sweep sets them. Runs share Run's cache keys, so a
	// warm result cache makes repeated sweeps near-instant and tuner
	// points reconcile exactly with Run and Compare at the same values.
	Options Options
}

// TunePoint is one grid point's outcome, averaged over the benchmarks.
type TunePoint struct {
	// Params is the point's full parameter assignment.
	Params map[string]float64 `json:"params"`
	// Fingerprint is the point's deterministic policy identity (the
	// persistent-cache manager key).
	Fingerprint string `json:"fingerprint"`
	// EnergySaved is the mean total-energy reduction vs full power;
	// Slowdown the mean cycle-count increase.
	EnergySaved float64 `json:"energySaved"`
	Slowdown    float64 `json:"slowdown"`
	// Pareto marks frontier membership: no other point saves at least
	// as much energy with at most the slowdown (one strictly better).
	Pareto bool `json:"pareto"`
}

// TuneResult is a completed sweep: every grid point plus the Pareto
// frontier over (maximize energy saved, minimize slowdown).
type TuneResult struct {
	Policy     string      `json:"policy"`
	Benchmarks []string    `json:"benchmarks"`
	Points     []TunePoint `json:"points"`
	// Frontier holds the Pareto-optimal points, sorted by slowdown.
	Frontier []TunePoint `json:"frontier"`
}

// paramOrder is the schema's declaration order for rendering.
func paramOrder(spec policy.Spec) []string {
	names := make([]string, len(spec.Params))
	for i, p := range spec.Params {
		names[i] = p.Name
	}
	return names
}

// Render draws the frontier table and an energy-vs-slowdown chart of
// every grid point (frontier points marked with *).
func (t *TuneResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Pareto frontier: %s over %s (%d grid points, %d on frontier)\n",
		t.Policy, strings.Join(t.Benchmarks, ","), len(t.Points), len(t.Frontier))

	var order []string
	if spec, ok := policy.Lookup(t.Policy); ok {
		order = paramOrder(spec)
	} else if len(t.Points) > 0 {
		for k := range t.Points[0].Params {
			order = append(order, k)
		}
		sort.Strings(order)
	}
	header := append(append([]string{}, order...), "energy saved", "slowdown")
	var rows [][]string
	for _, p := range t.Frontier {
		row := make([]string, 0, len(header))
		for _, k := range order {
			row = append(row, fmt.Sprintf("%g", p.Params[k]))
		}
		row = append(row,
			fmt.Sprintf("%.2f%%", p.EnergySaved*100),
			fmt.Sprintf("%.2f%%", p.Slowdown*100))
		rows = append(rows, row)
	}
	b.WriteString(textplot.RightTable(header, rows))

	sorted := append([]TunePoint{}, t.Points...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Slowdown < sorted[j].Slowdown })
	chart := make([]textplot.Row, len(sorted))
	for i, p := range sorted {
		mark := " "
		if p.Pareto {
			mark = "*"
		}
		chart[i] = textplot.Row{
			Label: fmt.Sprintf("%s slow %5.2f%%", mark, p.Slowdown*100),
			Value: p.EnergySaved * 100,
		}
	}
	b.WriteString(textplot.BarChart(
		"energy saved (%) by grid point (sorted by slowdown, * = frontier)",
		chart, 40, "%.2f%%"))
	return b.String()
}

// defaultGrid is the swept values of one parameter when no explicit
// grid is given: half, default, double, clamped to the bounds and
// deduplicated (a zero default collapses to a single point).
func defaultGrid(p policy.Param) []float64 {
	lo, hi := p.Default/2, p.Default*2
	if lo < p.Min {
		lo = p.Min
	}
	if hi > p.Max {
		hi = p.Max
	}
	var out []float64
	for _, v := range []float64{lo, p.Default, hi} {
		if len(out) == 0 || out[len(out)-1] != v {
			out = append(out, v)
		}
	}
	return out
}

// tuneGrid enumerates the sweep's parameter assignments in a
// deterministic order: an odometer over the schema's declaration order.
func tuneGrid(spec policy.Spec, overrides map[string][]float64) ([]policy.Params, error) {
	for name := range overrides {
		found := false
		for _, p := range spec.Params {
			if p.Name == name {
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("powerchop: policy %s has no parameter %q", spec.Name, name)
		}
	}
	axes := make([][]float64, len(spec.Params))
	for i, p := range spec.Params {
		if vals, ok := overrides[p.Name]; ok && len(vals) > 0 {
			axes[i] = vals
		} else if ok {
			axes[i] = []float64{p.Default}
		} else {
			axes[i] = defaultGrid(p)
		}
	}
	points := []policy.Params{{}}
	for i, p := range spec.Params {
		var next []policy.Params
		for _, base := range points {
			for _, v := range axes[i] {
				pt := base.Clone()
				if pt == nil {
					pt = policy.Params{}
				}
				pt[p.Name] = v
				next = append(next, pt)
			}
		}
		points = next
	}
	return points, nil
}

// markPareto flags the non-dominated points and returns the frontier
// sorted by slowdown.
func markPareto(points []TunePoint) []TunePoint {
	var frontier []TunePoint
	for i := range points {
		dominated := false
		for j := range points {
			if i == j {
				continue
			}
			betterOrEqual := points[j].EnergySaved >= points[i].EnergySaved &&
				points[j].Slowdown <= points[i].Slowdown
			strictly := points[j].EnergySaved > points[i].EnergySaved ||
				points[j].Slowdown < points[i].Slowdown
			if betterOrEqual && strictly {
				dominated = true
				break
			}
		}
		points[i].Pareto = !dominated
		if !dominated {
			frontier = append(frontier, points[i])
		}
	}
	sort.SliceStable(frontier, func(i, j int) bool {
		if frontier[i].Slowdown != frontier[j].Slowdown {
			return frontier[i].Slowdown < frontier[j].Slowdown
		}
		return frontier[i].Fingerprint < frontier[j].Fingerprint
	})
	return frontier
}

// Tune sweeps the policy's parameter grid and returns every point's
// (energy saved, slowdown) vs the full-power baseline, averaged over
// the benchmarks, plus the Pareto frontier. Runs go through Run, so
// with Options.Cache (or CacheDir) set the sweep fills and reuses the
// same persistent entries as Run and Compare.
func Tune(opts TuneOptions) (*TuneResult, error) {
	return TuneContext(context.Background(), opts)
}

// TuneContext is Tune under a context; when ctx carries a span the
// sweep runs under a "tune" child span.
func TuneContext(ctx context.Context, opts TuneOptions) (res *TuneResult, err error) {
	spec, ok := policy.Lookup(opts.Policy)
	if !ok {
		return nil, fmt.Errorf("powerchop: unknown policy %q (known: %v)", opts.Policy, PolicyNames())
	}
	benchmarks := opts.Benchmarks
	if len(benchmarks) == 0 {
		benchmarks = []string{"gobmk"}
	}
	grid, err := tuneGrid(spec, opts.Grid)
	if err != nil {
		return nil, err
	}
	ctx, sp := span.Start(ctx, "tune",
		"policy="+spec.Name, fmt.Sprintf("points=%d", len(grid)))
	defer func() { sp.EndErr(err) }()

	base := opts.Options
	base.Manager, base.Params, base.Thresholds, base.TimeoutCycles = "", nil, nil, 0
	// One shared cache across the sweep: opening per-run caches from
	// CacheDir would fragment the counters.
	if base.Cache == nil && base.CacheDir != "" {
		base.Cache = rescache.New(base.CacheDir, nil)
		base.CacheDir = ""
	}

	// Full-power baselines, one per benchmark.
	full := make(map[string]*Report, len(benchmarks))
	for _, bench := range benchmarks {
		o := base
		o.Manager = ManagerFullPower
		rep, err := RunContext(ctx, bench, o)
		if err != nil {
			return nil, err
		}
		full[bench] = rep
	}

	points := make([]TunePoint, len(grid))
	runPoint := func(i int) error {
		params := grid[i]
		fp, err := spec.Fingerprint(params)
		if err != nil {
			return err
		}
		var saved, slow []float64
		for _, bench := range benchmarks {
			o := base
			o.Manager = spec.Name
			o.Params = params
			rep, err := RunContext(ctx, bench, o)
			if err != nil {
				return err
			}
			f := full[bench]
			saved = append(saved, 1-rep.TotalEnergyJ/f.TotalEnergyJ)
			slow = append(slow, rep.Cycles/f.Cycles-1)
		}
		points[i] = TunePoint{
			Params:      params,
			Fingerprint: fp,
			EnergySaved: stats.Mean(saved),
			Slowdown:    stats.Mean(slow),
		}
		return nil
	}
	if jobs := opts.Options.Parallelism; jobs > 1 && opts.Options.TraceWriter == nil {
		sem := make(chan struct{}, jobs)
		errs := make([]error, len(grid))
		var wg sync.WaitGroup
		for i := range grid {
			wg.Add(1)
			sem <- struct{}{}
			go func(i int) {
				defer wg.Done()
				defer func() { <-sem }()
				errs[i] = runPoint(i)
			}(i)
		}
		wg.Wait()
		for _, e := range errs {
			if e != nil {
				return nil, e
			}
		}
	} else {
		for i := range grid {
			if err := runPoint(i); err != nil {
				return nil, err
			}
		}
	}

	res = &TuneResult{Policy: spec.Name, Benchmarks: benchmarks, Points: points}
	res.Frontier = markPareto(res.Points)
	return res, nil
}
