package powerchop

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"

	"powerchop/internal/obs/span"
	"powerchop/internal/policy"
	"powerchop/internal/rescache"
	"powerchop/internal/stats"
	"powerchop/internal/textplot"
	"powerchop/internal/workload"
)

// TuneOptions configures a parameter-grid sweep of one policy.
type TuneOptions struct {
	// Policy names the registered policy to sweep (see PolicyNames).
	Policy string
	// Benchmarks are the workloads averaged over (default: gobmk).
	Benchmarks []string
	// Grid overrides the swept values per parameter name. Parameters
	// without an entry get the default grid: {max(min, default/2),
	// default, min(max, default·2)}, deduplicated. An explicit empty
	// slice pins the parameter to its default.
	Grid map[string][]float64
	// Options are the base run options (Arch, Passes, Cache, CacheDir,
	// Parallelism...). Manager, Params, Thresholds and TimeoutCycles are
	// ignored — the sweep sets them. Runs share Run's cache keys, so a
	// warm result cache makes repeated sweeps near-instant and tuner
	// points reconcile exactly with Run and Compare at the same values.
	Options Options
}

// TunePoint is one grid point's outcome, averaged over the benchmarks.
type TunePoint struct {
	// Params is the point's full parameter assignment.
	Params map[string]float64 `json:"params"`
	// Fingerprint is the point's deterministic policy identity (the
	// persistent-cache manager key).
	Fingerprint string `json:"fingerprint"`
	// EnergySaved is the mean total-energy reduction vs full power;
	// Slowdown the mean cycle-count increase.
	EnergySaved float64 `json:"energySaved"`
	Slowdown    float64 `json:"slowdown"`
	// Pareto marks frontier membership: no other point saves at least
	// as much energy with at most the slowdown (one strictly better).
	Pareto bool `json:"pareto"`
}

// TuneResult is a completed sweep: every grid point plus the Pareto
// frontier over (maximize energy saved, minimize slowdown).
type TuneResult struct {
	Policy     string      `json:"policy"`
	Benchmarks []string    `json:"benchmarks"`
	Points     []TunePoint `json:"points"`
	// Frontier holds the Pareto-optimal points, sorted by slowdown.
	Frontier []TunePoint `json:"frontier"`
}

// paramOrder is the schema's declaration order for rendering.
func paramOrder(spec policy.Spec) []string {
	names := make([]string, len(spec.Params))
	for i, p := range spec.Params {
		names[i] = p.Name
	}
	return names
}

// Render draws the frontier table and an energy-vs-slowdown chart of
// every grid point (frontier points marked with *).
func (t *TuneResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Pareto frontier: %s over %s (%d grid points, %d on frontier)\n",
		t.Policy, strings.Join(t.Benchmarks, ","), len(t.Points), len(t.Frontier))

	var order []string
	if spec, ok := policy.Lookup(t.Policy); ok {
		order = paramOrder(spec)
	} else if len(t.Points) > 0 {
		for k := range t.Points[0].Params {
			order = append(order, k)
		}
		sort.Strings(order)
	}
	header := append(append([]string{}, order...), "energy saved", "slowdown")
	var rows [][]string
	for _, p := range t.Frontier {
		row := make([]string, 0, len(header))
		for _, k := range order {
			row = append(row, fmt.Sprintf("%g", p.Params[k]))
		}
		row = append(row,
			fmt.Sprintf("%.2f%%", p.EnergySaved*100),
			fmt.Sprintf("%.2f%%", p.Slowdown*100))
		rows = append(rows, row)
	}
	b.WriteString(textplot.RightTable(header, rows))

	sorted := append([]TunePoint{}, t.Points...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Slowdown < sorted[j].Slowdown })
	chart := make([]textplot.Row, len(sorted))
	for i, p := range sorted {
		mark := " "
		if p.Pareto {
			mark = "*"
		}
		chart[i] = textplot.Row{
			Label: fmt.Sprintf("%s slow %5.2f%%", mark, p.Slowdown*100),
			Value: p.EnergySaved * 100,
		}
	}
	b.WriteString(textplot.BarChart(
		"energy saved (%) by grid point (sorted by slowdown, * = frontier)",
		chart, 40, "%.2f%%"))
	return b.String()
}

// dedupeValues drops repeated values from a grid axis, keeping the first
// occurrence of each in order. Duplicates arise when a parameter's
// default sits on (or near) a bound — clamping half/double onto Min or
// Max collapses points — and when explicit -grid lists or degenerate
// LO:HI:STEPS ranges repeat a value; without deduplication the odometer
// would multiply every repeat into whole duplicate grid points, each
// re-running (or re-fetching) identical simulations.
func dedupeValues(vals []float64) []float64 {
	out := vals[:0:len(vals)]
	for _, v := range vals {
		seen := false
		for _, u := range out {
			if u == v {
				seen = true
				break
			}
		}
		if !seen {
			out = append(out, v)
		}
	}
	return out
}

// defaultGrid is the swept values of one parameter when no explicit
// grid is given: half, default, double, clamped to the bounds and
// deduplicated (a zero default, or one sitting on a bound, collapses
// the clamped points).
func defaultGrid(p policy.Param) []float64 {
	lo, hi := p.Default/2, p.Default*2
	if lo < p.Min {
		lo = p.Min
	}
	if hi > p.Max {
		hi = p.Max
	}
	return dedupeValues([]float64{lo, p.Default, hi})
}

// tuneGrid enumerates the sweep's parameter assignments in a
// deterministic order: an odometer over the schema's declaration order.
// Every axis is deduplicated first, so the sweep never contains two
// points with identical parameter assignments.
func tuneGrid(spec policy.Spec, overrides map[string][]float64) ([]policy.Params, error) {
	for name := range overrides {
		found := false
		for _, p := range spec.Params {
			if p.Name == name {
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("powerchop: policy %s has no parameter %q", spec.Name, name)
		}
	}
	axes := make([][]float64, len(spec.Params))
	for i, p := range spec.Params {
		if vals, ok := overrides[p.Name]; ok && len(vals) > 0 {
			axes[i] = dedupeValues(append([]float64(nil), vals...))
		} else if ok {
			axes[i] = []float64{p.Default}
		} else {
			axes[i] = defaultGrid(p)
		}
	}
	points := []policy.Params{{}}
	for i, p := range spec.Params {
		var next []policy.Params
		for _, base := range points {
			for _, v := range axes[i] {
				pt := base.Clone()
				if pt == nil {
					pt = policy.Params{}
				}
				pt[p.Name] = v
				next = append(next, pt)
			}
		}
		points = next
	}
	return points, nil
}

// markPareto flags the non-dominated points and returns the frontier
// sorted by slowdown.
func markPareto(points []TunePoint) []TunePoint {
	var frontier []TunePoint
	for i := range points {
		dominated := false
		for j := range points {
			if i == j {
				continue
			}
			betterOrEqual := points[j].EnergySaved >= points[i].EnergySaved &&
				points[j].Slowdown <= points[i].Slowdown
			strictly := points[j].EnergySaved > points[i].EnergySaved ||
				points[j].Slowdown < points[i].Slowdown
			if betterOrEqual && strictly {
				dominated = true
				break
			}
		}
		points[i].Pareto = !dominated
		if !dominated {
			frontier = append(frontier, points[i])
		}
	}
	sort.SliceStable(frontier, func(i, j int) bool {
		if frontier[i].Slowdown != frontier[j].Slowdown {
			return frontier[i].Slowdown < frontier[j].Slowdown
		}
		return frontier[i].Fingerprint < frontier[j].Fingerprint
	})
	return frontier
}

// Tune sweeps the policy's parameter grid and returns every point's
// (energy saved, slowdown) vs the full-power baseline, averaged over
// the benchmarks, plus the Pareto frontier. Cold grid points share
// batched simulations (unless Options.Batch is 1), which is a pure
// wall-clock optimization: with Options.Cache (or CacheDir) set the
// sweep fills and reuses exactly the same persistent entries as Run
// and Compare, and every point reconciles byte-for-byte with a solo
// Run at the same parameters.
func Tune(opts TuneOptions) (*TuneResult, error) {
	return TuneContext(context.Background(), opts)
}

// TuneContext is Tune under a context; when ctx carries a span the
// sweep runs under a "tune" child span.
func TuneContext(ctx context.Context, opts TuneOptions) (res *TuneResult, err error) {
	spec, ok := policy.Lookup(opts.Policy)
	if !ok {
		return nil, fmt.Errorf("powerchop: unknown policy %q (known: %v)", opts.Policy, PolicyNames())
	}
	benchmarks := opts.Benchmarks
	if len(benchmarks) == 0 {
		benchmarks = []string{"gobmk"}
	}
	grid, err := tuneGrid(spec, opts.Grid)
	if err != nil {
		return nil, err
	}
	ctx, sp := span.Start(ctx, "tune",
		"policy="+spec.Name, fmt.Sprintf("points=%d", len(grid)))
	defer func() { sp.EndErr(err) }()

	base := opts.Options
	base.Manager, base.Params, base.Thresholds, base.TimeoutCycles = "", nil, nil, 0
	// One shared cache across the sweep: opening per-run caches from
	// CacheDir would fragment the counters.
	if base.Cache == nil && base.CacheDir != "" {
		base.Cache = rescache.New(base.CacheDir, nil)
		base.CacheDir = ""
	}

	points := make([]TunePoint, len(grid))
	if opts.Options.Batch != 1 && base.TraceWriter == nil {
		if err := tuneBatched(ctx, spec, benchmarks, grid, base,
			opts.Options.Parallelism, opts.Options.Batch, points); err != nil {
			return nil, err
		}
		res = &TuneResult{Policy: spec.Name, Benchmarks: benchmarks, Points: points}
		res.Frontier = markPareto(res.Points)
		return res, nil
	}

	// Solo sweep (Batch=1 or a TraceWriter attached): every grid point
	// runs through RunContext individually.
	full := make(map[string]*Report, len(benchmarks))
	for _, bench := range benchmarks {
		o := base
		o.Manager = ManagerFullPower
		rep, err := RunContext(ctx, bench, o)
		if err != nil {
			return nil, err
		}
		full[bench] = rep
	}

	runPoint := func(i int) error {
		params := grid[i]
		fp, err := spec.Fingerprint(params)
		if err != nil {
			return err
		}
		var saved, slow []float64
		for _, bench := range benchmarks {
			o := base
			o.Manager = spec.Name
			o.Params = params
			rep, err := RunContext(ctx, bench, o)
			if err != nil {
				return err
			}
			f := full[bench]
			saved = append(saved, 1-rep.TotalEnergyJ/f.TotalEnergyJ)
			slow = append(slow, rep.Cycles/f.Cycles-1)
		}
		points[i] = TunePoint{
			Params:      params,
			Fingerprint: fp,
			EnergySaved: stats.Mean(saved),
			Slowdown:    stats.Mean(slow),
		}
		return nil
	}
	if jobs := opts.Options.Parallelism; jobs > 1 && opts.Options.TraceWriter == nil {
		sem := make(chan struct{}, jobs)
		errs := make([]error, len(grid))
		var wg sync.WaitGroup
		for i := range grid {
			wg.Add(1)
			sem <- struct{}{}
			go func(i int) {
				defer wg.Done()
				defer func() { <-sem }()
				errs[i] = runPoint(i)
			}(i)
		}
		wg.Wait()
		for _, e := range errs {
			if e != nil {
				return nil, e
			}
		}
	} else {
		for i := range grid {
			if err := runPoint(i); err != nil {
				return nil, err
			}
		}
	}

	res = &TuneResult{Policy: spec.Name, Benchmarks: benchmarks, Points: points}
	res.Frontier = markPareto(res.Points)
	return res, nil
}

// tuneBatched executes the sweep through batched simulations: each
// benchmark's full-power baseline and grid points are chunked into
// groups that share one instruction walk (sim.RunBatch). Lanes are
// prepared exactly like solo Runs — same persistent-cache keys, same
// progress reports — so the point results and the cache entries they
// fill reconcile byte-for-byte with Run, Compare and a Batch=1 sweep.
// With Parallelism above one, chunks shrink so every worker has a group
// to drive, and the groups run concurrently.
func tuneBatched(ctx context.Context, spec policy.Spec, benchmarks []string, grid []policy.Params, base Options, jobs, batch int, points []TunePoint) error {
	lanesPer := len(grid) + 1 // index 0 is the full-power baseline
	chunk := batchCap(batch)
	if jobs > 1 {
		if even := (lanesPer*len(benchmarks) + jobs - 1) / jobs; even < chunk {
			chunk = even
		}
		if chunk < 1 {
			chunk = 1
		}
	}
	type unit struct{ bench, lo, hi int }
	var units []unit
	laneOpts := make([][]Options, len(benchmarks))
	reports := make([][]*Report, len(benchmarks))
	for bi := range benchmarks {
		lanes := make([]Options, 0, lanesPer)
		o := base
		o.Manager = ManagerFullPower
		lanes = append(lanes, o)
		for _, params := range grid {
			o := base
			o.Manager = spec.Name
			o.Params = params
			lanes = append(lanes, o)
		}
		laneOpts[bi] = lanes
		reports[bi] = make([]*Report, lanesPer)
		for lo := 0; lo < lanesPer; lo += chunk {
			hi := lo + chunk
			if hi > lanesPer {
				hi = lanesPer
			}
			units = append(units, unit{bi, lo, hi})
		}
	}
	runUnit := func(u unit) error {
		b, err := workload.ByName(benchmarks[u.bench])
		if err != nil {
			return err
		}
		p, err := b.Build()
		if err != nil {
			return err
		}
		reps, err := runProgramBatch(ctx, p, b, laneOpts[u.bench][u.lo:u.hi])
		if err != nil {
			return err
		}
		copy(reports[u.bench][u.lo:u.hi], reps)
		return nil
	}
	if jobs > 1 {
		sem := make(chan struct{}, jobs)
		errs := make([]error, len(units))
		var wg sync.WaitGroup
		for i, u := range units {
			wg.Add(1)
			sem <- struct{}{}
			go func(i int, u unit) {
				defer wg.Done()
				defer func() { <-sem }()
				errs[i] = runUnit(u)
			}(i, u)
		}
		wg.Wait()
		for _, e := range errs {
			if e != nil {
				return e
			}
		}
	} else {
		for _, u := range units {
			if err := runUnit(u); err != nil {
				return err
			}
		}
	}
	for i, params := range grid {
		fp, err := spec.Fingerprint(params)
		if err != nil {
			return err
		}
		var saved, slow []float64
		for bi := range benchmarks {
			f, rep := reports[bi][0], reports[bi][i+1]
			saved = append(saved, 1-rep.TotalEnergyJ/f.TotalEnergyJ)
			slow = append(slow, rep.Cycles/f.Cycles-1)
		}
		points[i] = TunePoint{
			Params:      params,
			Fingerprint: fp,
			EnergySaved: stats.Mean(saved),
			Slowdown:    stats.Mean(slow),
		}
	}
	return nil
}
