package powerchop

import (
	"bytes"
	"strings"
	"testing"
)

func TestBenchmarksRegistry(t *testing.T) {
	if got := len(Benchmarks()); got != 29 {
		t.Fatalf("benchmarks = %d, want 29", got)
	}
	if got := len(Suites()); got != 4 {
		t.Fatalf("suites = %d", got)
	}
	sorted := SortedBenchmarks()
	for i := 1; i < len(sorted); i++ {
		if sorted[i-1] > sorted[i] {
			t.Fatal("SortedBenchmarks not sorted")
		}
	}
	suite, err := SuiteOf("gobmk")
	if err != nil || suite != "SPEC-INT" {
		t.Fatalf("SuiteOf(gobmk) = %q, %v", suite, err)
	}
	if _, err := SuiteOf("quake"); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestRunDefaults(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation runs are slow")
	}
	rep, err := Run("namd", Options{Passes: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Manager != ManagerPowerChop || rep.Arch != ArchServer {
		t.Fatalf("defaults: %q/%q", rep.Manager, rep.Arch)
	}
	if rep.IPC <= 0 || rep.Instructions == 0 || rep.AvgPowerW <= 0 {
		t.Fatalf("empty report: %+v", rep)
	}
	// namd's defining result: the VPU is gated nearly everywhere.
	if rep.VPU.GatedFrac < 0.7 {
		t.Fatalf("namd VPU gated %.2f", rep.VPU.GatedFrac)
	}
	if rep.PhasesSeen == 0 || rep.CDEInvocations == 0 {
		t.Fatal("PowerChop machinery idle")
	}
	if !strings.Contains(rep.String(), "namd") {
		t.Fatal("String() missing benchmark")
	}
}

func TestRunMobileAuto(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation runs are slow")
	}
	rep, err := Run("msn", Options{Passes: 1, Manager: ManagerFullPower})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Arch != ArchMobile {
		t.Fatalf("msn should auto-select mobile, got %q", rep.Arch)
	}
	if rep.VPU.GatedFrac != 0 {
		t.Fatal("full-power run gated the VPU")
	}
}

func TestRunErrors(t *testing.T) {
	if _, err := Run("doom", Options{}); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
	if _, err := Run("namd", Options{Manager: "magic"}); err == nil {
		t.Fatal("unknown manager accepted")
	}
	if _, err := Run("namd", Options{Arch: "laptop"}); err == nil {
		t.Fatal("unknown arch accepted")
	}
}

func TestRunSampling(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation runs are slow")
	}
	rep, err := Run("gobmk", Options{Passes: 1, Manager: ManagerFullPower, SampleInterval: 50000})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Samples) < 5 {
		t.Fatalf("samples = %d", len(rep.Samples))
	}
}

func TestThresholdOverride(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation runs are slow")
	}
	// A huge VPU threshold forces the VPU off even on vector-heavy milc.
	rep, err := Run("milc", Options{Passes: 1, Thresholds: &Thresholds{VPU: 0.9}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.VPU.GatedFrac < 0.5 {
		t.Fatalf("aggressive threshold did not gate: %.2f", rep.VPU.GatedFrac)
	}
}

func TestCompare(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation runs are slow")
	}
	c, err := Compare("libquantum", Options{Passes: 1})
	if err != nil {
		t.Fatal(err)
	}
	if c.Slowdown() > 0.05 {
		t.Fatalf("slowdown %.3f", c.Slowdown())
	}
	if c.PowerReduction() <= 0 || c.LeakageReduction() <= 0 || c.EnergyReduction() <= 0 {
		t.Fatalf("no savings: p=%.3f l=%.3f e=%.3f",
			c.PowerReduction(), c.LeakageReduction(), c.EnergyReduction())
	}
	if c.MinPowerLoss() < 0 {
		t.Fatalf("min power loss %.3f", c.MinPowerLoss())
	}
}

func TestCustomWorkload(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation runs are slow")
	}
	w := &Workload{
		Name: "phased-demo",
		Regions: []Region{
			{
				Name: "simd-loop", VectorFrac: 0.2, BranchFrac: 0.05, LoadFrac: 0.1,
				Branches: []Branch{{Kind: BranchBiased, Bias: 0.95}},
				Streams:  []Stream{{WorkingSetBytes: 16 << 10}},
			},
			{
				Name: "scalar-loop", BranchFrac: 0.05, LoadFrac: 0.1,
				Branches: []Branch{{Kind: BranchBiased, Bias: 0.95}},
				Streams:  []Stream{{WorkingSetBytes: 16 << 10}},
			},
		},
		Phases: []WorkloadPhase{
			{Name: "vector", Translations: 40000, Weights: map[int]float64{0: 1}},
			{Name: "scalar", Translations: 40000, Weights: map[int]float64{1: 1}},
		},
	}
	rep, err := RunWorkload(w, Options{Passes: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Arch != ArchServer {
		t.Fatalf("default arch = %q", rep.Arch)
	}
	// The scalar phase is half the run; PowerChop should gate the VPU
	// there and keep it on in the vector phase.
	if rep.VPU.GatedFrac < 0.25 || rep.VPU.GatedFrac > 0.75 {
		t.Fatalf("custom workload VPU gated %.2f", rep.VPU.GatedFrac)
	}
}

func TestCustomWorkloadErrors(t *testing.T) {
	if _, err := RunWorkload(&Workload{}, Options{}); err == nil {
		t.Fatal("nameless workload accepted")
	}
	bad := &Workload{
		Name: "bad",
		Regions: []Region{{
			Name: "r", BranchFrac: 0.1,
			Branches: []Branch{{Kind: "mystery"}},
		}},
		Phases: []WorkloadPhase{{Name: "p", Translations: 10, Weights: map[int]float64{0: 1}}},
	}
	if _, err := RunWorkload(bad, Options{}); err == nil {
		t.Fatal("unknown branch kind accepted")
	}
	noPhases := &Workload{
		Name:    "bad2",
		Regions: []Region{{Name: "r"}},
	}
	if _, err := RunWorkload(noPhases, Options{}); err == nil {
		t.Fatal("workload without phases accepted")
	}
}

func TestFigureIDs(t *testing.T) {
	ids := FigureIDs()
	if len(ids) < 15 {
		t.Fatalf("figure ids = %d", len(ids))
	}
	want := map[string]bool{
		"table1": true, "fig1": true, "fig8": true, "fig12": true,
		"fig13": true, "fig14": true, "fig16": true, "swcosts": true,
	}
	have := map[string]bool{}
	for _, id := range ids {
		have[id] = true
	}
	for id := range want {
		if !have[id] {
			t.Errorf("missing figure id %q", id)
		}
	}
	if _, err := FigureTitle("fig12"); err != nil {
		t.Error(err)
	}
	if _, err := FigureTitle("fig99"); err == nil {
		t.Error("unknown figure accepted")
	}
}

func TestRenderStaticFigures(t *testing.T) {
	f := NewFigureRunner(0.1)
	var buf bytes.Buffer
	if err := f.RenderFigure(&buf, "table1"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Table I") {
		t.Fatalf("table1 output: %q", buf.String())
	}
	buf.Reset()
	if err := f.RenderFigure(&buf, "hwcosts"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "HTB") {
		t.Fatal("hwcosts output missing HTB")
	}
	if err := f.RenderFigure(&buf, "fig99"); err == nil {
		t.Fatal("unknown figure accepted")
	}
}

func TestRenderSimulatedFigure(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation runs are slow")
	}
	f := NewFigureRunner(0.1)
	var buf bytes.Buffer
	if err := f.RenderFigure(&buf, "fig1"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Figure 1") {
		t.Fatal("fig1 render missing title")
	}
}
