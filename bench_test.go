package powerchop

// The benchmark harness regenerates every table and figure of the paper's
// evaluation (run with `go test -bench=. -benchmem`). Each BenchmarkFigureN
// drives the corresponding experiment and prints the paper-shaped rows or
// series once; key aggregates are also attached as custom benchmark
// metrics. The Ablation benchmarks sweep the design choices DESIGN.md
// calls out (criticality thresholds, signature geometry, HTB/PVT sizes,
// timeout periods).

import (
	"context"
	"fmt"
	"io"
	"os"
	"sync"
	"testing"
	"time"

	"powerchop/internal/arch"
	"powerchop/internal/cde"
	"powerchop/internal/core"
	"powerchop/internal/experiments"
	"powerchop/internal/obs"
	"powerchop/internal/obs/alert"
	"powerchop/internal/obs/runlog"
	"powerchop/internal/obs/span"
	"powerchop/internal/obs/tsdb"
	"powerchop/internal/phase"
	"powerchop/internal/pvt"
	"powerchop/internal/rescache"
	"powerchop/internal/sim"
	"powerchop/internal/workload"
)

// benchRunner is shared across the figure benchmarks so the underlying
// simulations run once at full scale.
var (
	benchRunnerOnce sync.Once
	benchRunner     *experiments.Runner
)

func figureRunner() *experiments.Runner {
	benchRunnerOnce.Do(func() { benchRunner = experiments.NewRunner(1) })
	return benchRunner
}

// printOnce guards each figure's one-time console rendering.
var printedFigures sync.Map

func printFigure(id, rendering string) {
	if _, done := printedFigures.LoadOrStore(id, true); !done {
		fmt.Fprintf(os.Stdout, "\n==== %s ====\n%s\n", id, rendering)
	}
}

func BenchmarkTableI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.TableI()
		printFigure("Table I", t.Render())
	}
}

func BenchmarkFigure1(b *testing.B) {
	r := figureRunner()
	for i := 0; i < b.N; i++ {
		fig, err := experiments.Figure1(context.Background(), r)
		if err != nil {
			b.Fatal(err)
		}
		printFigure("Figure 1", fig.Render())
	}
}

func BenchmarkFigure2(b *testing.B) {
	r := figureRunner()
	for i := 0; i < b.N; i++ {
		fig, err := experiments.Figure2(context.Background(), r)
		if err != nil {
			b.Fatal(err)
		}
		printFigure("Figure 2", fig.Render())
	}
}

func BenchmarkFigure3(b *testing.B) {
	r := figureRunner()
	for i := 0; i < b.N; i++ {
		fig, err := experiments.Figure3(context.Background(), r)
		if err != nil {
			b.Fatal(err)
		}
		printFigure("Figure 3", fig.Render())
	}
}

func BenchmarkFigure8(b *testing.B) {
	r := figureRunner()
	var mean float64
	for i := 0; i < b.N; i++ {
		fig, err := experiments.Figure8(context.Background(), r)
		if err != nil {
			b.Fatal(err)
		}
		mean = fig.MeanFrac
		printFigure("Figure 8", fig.Render())
	}
	b.ReportMetric(mean*100, "%sig-distance")
}

func BenchmarkFigure9(b *testing.B) {
	r := figureRunner()
	for i := 0; i < b.N; i++ {
		fig, err := experiments.Figure9(context.Background(), r)
		if err != nil {
			b.Fatal(err)
		}
		printFigure("Figure 9", fig.Render())
	}
}

func BenchmarkFigure10(b *testing.B) {
	r := figureRunner()
	for i := 0; i < b.N; i++ {
		fig, err := experiments.Figure10(context.Background(), r)
		if err != nil {
			b.Fatal(err)
		}
		printFigure("Figure 10", fig.Render())
	}
}

func BenchmarkFigure11(b *testing.B) {
	r := figureRunner()
	var vpu float64
	for i := 0; i < b.N; i++ {
		fig, err := experiments.Figure11(context.Background(), r)
		if err != nil {
			b.Fatal(err)
		}
		vpu = fig.AvgVPU
		printFigure("Figure 11", fig.Render())
	}
	b.ReportMetric(vpu, "VPU-switch/Mcyc")
}

func BenchmarkFigure12(b *testing.B) {
	r := figureRunner()
	var slow float64
	for i := 0; i < b.N; i++ {
		fig, err := experiments.Figure12(context.Background(), r)
		if err != nil {
			b.Fatal(err)
		}
		slow = fig.AvgSlowdown
		printFigure("Figure 12", fig.Render())
	}
	b.ReportMetric(slow*100, "%slowdown")
}

func BenchmarkFigure13(b *testing.B) {
	r := figureRunner()
	var pwr float64
	for i := 0; i < b.N; i++ {
		fig, err := experiments.Figure13(context.Background(), r)
		if err != nil {
			b.Fatal(err)
		}
		pwr = fig.AvgPower["all"]
		printFigure("Figure 13", fig.RenderFigure13())
	}
	b.ReportMetric(pwr*100, "%power-reduction")
}

func BenchmarkFigure14(b *testing.B) {
	r := figureRunner()
	var leak float64
	for i := 0; i < b.N; i++ {
		fig, err := experiments.Figure14(context.Background(), r)
		if err != nil {
			b.Fatal(err)
		}
		leak = fig.AvgLeakage["all"]
		printFigure("Figure 14", fig.RenderFigure14())
	}
	b.ReportMetric(leak*100, "%leakage-reduction")
}

func BenchmarkFigure15(b *testing.B) {
	r := figureRunner()
	for i := 0; i < b.N; i++ {
		fig, err := experiments.Figure15(context.Background(), r)
		if err != nil {
			b.Fatal(err)
		}
		printFigure("Figure 15", fig.Render())
	}
}

func BenchmarkFigure16(b *testing.B) {
	r := figureRunner()
	var wins float64
	for i := 0; i < b.N; i++ {
		fig, err := experiments.Figure16(context.Background(), r)
		if err != nil {
			b.Fatal(err)
		}
		wins = float64(fig.Wins)
		printFigure("Figure 16", fig.Render())
	}
	b.ReportMetric(wins, "chop-wins")
}

func BenchmarkHardwareCosts(b *testing.B) {
	for i := 0; i < b.N; i++ {
		printFigure("Hardware costs", experiments.HardwareCosts().Render())
	}
}

func BenchmarkSoftwareCosts(b *testing.B) {
	r := figureRunner()
	var miss float64
	for i := 0; i < b.N; i++ {
		costs, err := experiments.SoftwareCosts(context.Background(), r)
		if err != nil {
			b.Fatal(err)
		}
		miss = costs.AvgMissPerTranslation
		printFigure("Software costs", costs.Render())
	}
	b.ReportMetric(miss*100, "%pvt-miss")
}

func BenchmarkPerUnitStudy(b *testing.B) {
	r := figureRunner()
	for i := 0; i < b.N; i++ {
		study, err := experiments.PerUnit(context.Background(), r, workload.ServerSuite()[:4])
		if err != nil {
			b.Fatal(err)
		}
		printFigure("Per-unit study", study.Render())
	}
}

// ablationRun executes one PowerChop run for the ablation sweeps.
func ablationRun(b *testing.B, benchName string, cfg core.Config, ph phase.Config) *sim.Result {
	b.Helper()
	bench, err := workload.ByName(benchName)
	if err != nil {
		b.Fatal(err)
	}
	p := bench.MustBuild()
	design := arch.Server()
	if bench.Mobile {
		design = arch.Mobile()
	}
	m, err := core.NewPowerChop(cfg)
	if err != nil {
		b.Fatal(err)
	}
	res, err := sim.Run(p, sim.Config{
		Design:          design,
		Manager:         m,
		Phase:           ph,
		MaxTranslations: uint64(p.TotalScheduleTranslations()),
		TrackQuality:    true,
	})
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// BenchmarkAblationThresholds sweeps the criticality thresholds the paper
// leaves unspecified, exposing the savings-vs-slowdown trade-off that
// motivated the defaults (gate more aggressively → more leakage saved,
// more performance risk).
func BenchmarkAblationThresholds(b *testing.B) {
	apps := []string{"gobmk", "soplex", "msn"}
	for _, thr := range []float64{0.001, 0.005, 0.02, 0.1} {
		thr := thr
		b.Run(fmt.Sprintf("thr=%g", thr), func(b *testing.B) {
			var gated, slow float64
			for i := 0; i < b.N; i++ {
				gated, slow = 0, 0
				for _, app := range apps {
					cfg := core.DefaultConfig()
					cfg.Thresholds = cde.Thresholds{VPU: thr, BPU: thr, MLC1: thr, MLC2: thr / 10}
					res := ablationRun(b, app, cfg, phase.DefaultConfig())
					full, err := figureRunner().Result(context.Background(), mustBench(b, app), experiments.KindFullPower)
					if err != nil {
						b.Fatal(err)
					}
					gated += res.VPU.GatedFrac + res.BPU.GatedFrac + res.MLC.GatedFrac
					// The ablation run covers one schedule pass; the
					// cached baseline covers two.
					slow += res.Cycles/(full.Cycles/2) - 1
				}
			}
			n := float64(len(apps))
			b.ReportMetric(gated/n/3*100, "%gated")
			b.ReportMetric(slow/n*100, "%slowdown")
		})
	}
}

// BenchmarkAblationSignature sweeps the phase-signature length and window
// size (the paper's Section IV-B1 sensitivity analysis that settled on
// N=4, W=1000).
func BenchmarkAblationSignature(b *testing.B) {
	cases := []struct {
		sigLen int
		window int
	}{
		{1, 1000}, {2, 1000}, {4, 1000}, {8, 1000},
		{4, 200}, {4, 5000},
	}
	for _, c := range cases {
		c := c
		b.Run(fmt.Sprintf("N=%d_W=%d", c.sigLen, c.window), func(b *testing.B) {
			var quality, phases float64
			for i := 0; i < b.N; i++ {
				ph := phase.Config{Capacity: 128, WindowSize: c.window, SignatureLen: c.sigLen}
				res := ablationRun(b, "gobmk", core.DefaultConfig(), ph)
				quality = res.QualityMeanFrac
				phases = float64(res.QualityPhases)
			}
			b.ReportMetric(quality*100, "%sig-distance")
			b.ReportMetric(phases, "phases")
		})
	}
}

// BenchmarkAblationTableSizes sweeps the HTB and PVT capacities (the
// paper's 128/16 design point).
func BenchmarkAblationTableSizes(b *testing.B) {
	for _, pvtEntries := range []int{4, 16, 64} {
		pvtEntries := pvtEntries
		b.Run(fmt.Sprintf("pvt=%d", pvtEntries), func(b *testing.B) {
			var hitRate float64
			for i := 0; i < b.N; i++ {
				cfg := core.DefaultConfig()
				cfg.PVTEntries = pvtEntries
				res := ablationRun(b, "msn", cfg, phase.DefaultConfig())
				hitRate = res.PVT.HitRate()
			}
			b.ReportMetric(hitRate*100, "%pvt-hit")
		})
	}
	for _, htb := range []int{16, 128, 512} {
		htb := htb
		b.Run(fmt.Sprintf("htb=%d", htb), func(b *testing.B) {
			var quality float64
			for i := 0; i < b.N; i++ {
				ph := phase.Config{Capacity: htb, WindowSize: 1000, SignatureLen: 4}
				res := ablationRun(b, "gobmk", core.DefaultConfig(), ph)
				quality = res.QualityMeanFrac
			}
			b.ReportMetric(quality*100, "%sig-distance")
		})
	}
}

// BenchmarkAblationTimeout sweeps the idle-timeout baseline's period (the
// paper swept 100-100K cycles and picked 20K).
func BenchmarkAblationTimeout(b *testing.B) {
	bench := mustBench(b, "h264ref")
	p := bench.MustBuild()
	for _, period := range []float64{100, 1000, 20000, 100000} {
		period := period
		b.Run(fmt.Sprintf("t=%g", period), func(b *testing.B) {
			var gated, slow float64
			for i := 0; i < b.N; i++ {
				m, err := core.NewTimeoutVPU(period)
				if err != nil {
					b.Fatal(err)
				}
				res, err := sim.Run(p, sim.Config{
					Design:          arch.Server(),
					Manager:         m,
					MaxTranslations: uint64(p.TotalScheduleTranslations()),
				})
				if err != nil {
					b.Fatal(err)
				}
				full, err := figureRunner().Result(context.Background(), bench, experiments.KindFullPower)
				if err != nil {
					b.Fatal(err)
				}
				gated = res.VPU.GatedFrac
				// One-pass run vs the cached two-pass baseline.
				slow = res.Cycles/(full.Cycles/2) - 1
			}
			b.ReportMetric(gated*100, "%gated")
			b.ReportMetric(slow*100, "%slowdown")
		})
	}
}

// BenchmarkSimulatorThroughput measures raw simulation speed.
func BenchmarkSimulatorThroughput(b *testing.B) {
	bench := mustBench(b, "bzip2")
	p := bench.MustBuild()
	var insns uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := sim.Run(p, sim.Config{
			Design:          arch.Server(),
			Manager:         core.AlwaysOn(),
			MaxTranslations: 50000,
		})
		if err != nil {
			b.Fatal(err)
		}
		insns = res.GuestInsns
	}
	b.ReportMetric(float64(insns), "insns/op")
}

// BenchmarkRunCompiled measures the compiled-region execution path in
// isolation — the same run shape as BenchmarkSimulatorThroughput, kept
// under its own name so the region-compilation speedup can be tracked
// against recorded baselines (see EXPERIMENTS.md).
func BenchmarkRunCompiled(b *testing.B) {
	bench := mustBench(b, "bzip2")
	p := bench.MustBuild()
	var insns uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := sim.Run(p, sim.Config{
			Design:          arch.Server(),
			Manager:         core.AlwaysOn(),
			MaxTranslations: 50000,
		})
		if err != nil {
			b.Fatal(err)
		}
		insns = res.GuestInsns
	}
	b.ReportMetric(float64(insns), "insns/op")
}

// BenchmarkRunBatch measures the batched sweep executor against running
// the same eight manager variants serially through sim.Run. One op is one
// eight-lane sweep of bzip2; the serial baseline is timed once up front
// and the serial/batched ratio is attached as the speedup metric (the
// acceptance bar is >= 2x at batch >= 8).
func BenchmarkRunBatch(b *testing.B) {
	bench := mustBench(b, "bzip2")
	p := bench.MustBuild()
	const lanes = 8
	mkCfg := func(i int) sim.Config {
		cfg := core.DefaultConfig()
		cfg.Thresholds.VPU *= 1 + float64(i)/4
		cfg.Thresholds.BPU *= 1 + float64(i%3)/2
		return sim.Config{
			Design:          arch.Server(),
			Manager:         core.MustPowerChop(cfg),
			MaxTranslations: 20000,
		}
	}

	start := time.Now()
	for i := 0; i < lanes; i++ {
		if _, err := sim.Run(p, mkCfg(i)); err != nil {
			b.Fatal(err)
		}
	}
	serial := time.Since(start)

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfgs := make([]sim.Config, lanes)
		for j := range cfgs {
			cfgs[j] = mkCfg(j)
		}
		if _, err := sim.RunBatch(p, cfgs); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	batched := b.Elapsed() / time.Duration(b.N)
	b.ReportMetric(serial.Seconds()/batched.Seconds(), "speedup")
	b.ReportMetric(serial.Seconds(), "serial-s")
}

// BenchmarkWarmCache measures a warm-cache full figure render against the
// cold render that populated it. The warm/cold ratio is attached as a
// metric; the acceptance bar is warm < 10% of cold.
func BenchmarkWarmCache(b *testing.B) {
	const scale = 0.02
	cache := rescache.New(b.TempDir(), nil)
	start := time.Now()
	if err := NewFigureRunner(scale, WithCache(cache)).RenderAll(io.Discard); err != nil {
		b.Fatal(err)
	}
	cold := time.Since(start)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := NewFigureRunner(scale, WithCache(cache)).RenderAll(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if st := cache.Stats(); st.Hits == 0 {
		b.Fatal("warm renders hit nothing")
	}
	warm := b.Elapsed() / time.Duration(b.N)
	b.ReportMetric(cold.Seconds(), "cold-s")
	b.ReportMetric(100*warm.Seconds()/cold.Seconds(), "%of-cold")
}

func mustBench(b *testing.B, name string) workload.Benchmark {
	b.Helper()
	bench, err := workload.ByName(name)
	if err != nil {
		b.Fatal(err)
	}
	return bench
}

// BenchmarkAblationEnergyMin compares the default policy against the
// paper's suggested aggressive energy-minimization variant (Section V-A)
// across three representative apps.
func BenchmarkAblationEnergyMin(b *testing.B) {
	apps := []string{"gobmk", "msn", "soplex"}
	for _, cfgCase := range []struct {
		name string
		cfg  core.Config
	}{
		{"default", core.DefaultConfig()},
		{"energy-min", core.EnergyMinimizerConfig()},
	} {
		cfgCase := cfgCase
		b.Run(cfgCase.name, func(b *testing.B) {
			var energyRed, slow float64
			for i := 0; i < b.N; i++ {
				energyRed, slow = 0, 0
				for _, app := range apps {
					res := ablationRun(b, app, cfgCase.cfg, phase.DefaultConfig())
					full, err := figureRunner().Result(context.Background(), mustBench(b, app), experiments.KindFullPower)
					if err != nil {
						b.Fatal(err)
					}
					// Normalize the half-length ablation run against the
					// full baseline per cycle.
					energyRed += 1 - (res.Power.TotalEnergyJ()/res.Cycles)/(full.Power.TotalEnergyJ()/full.Cycles)
					slow += res.Cycles/(full.Cycles/2) - 1
				}
			}
			n := float64(len(apps))
			b.ReportMetric(energyRed/n*100, "%energy-rate-reduction")
			b.ReportMetric(slow/n*100, "%slowdown")
		})
	}
}

// BenchmarkAblationPVTReplacement compares PVT eviction policies: the
// paper's approximate LRU (tree-PLRU) against exact LRU and random, on a
// phase-rich mobile workload under a deliberately small PVT so eviction
// quality matters.
func BenchmarkAblationPVTReplacement(b *testing.B) {
	for _, repl := range []pvt.Replacement{pvt.TreePLRU, pvt.TrueLRU, pvt.Random} {
		repl := repl
		b.Run(repl.String(), func(b *testing.B) {
			var hit float64
			for i := 0; i < b.N; i++ {
				cfg := core.DefaultConfig()
				cfg.PVTEntries = 4
				cfg.Replacement = repl
				res := ablationRun(b, "msn", cfg, phase.DefaultConfig())
				hit = res.PVT.HitRate()
			}
			b.ReportMetric(hit*100, "%pvt-hit")
		})
	}
}

// BenchmarkTracerOverhead measures the observability layer's cost on the
// simulator hot path: no tracer at all (the baseline), the no-op tracer,
// an in-memory ring, and a JSONL writer to io.Discard. The no-op and nil
// cases should be within noise of each other — tracing off must not tax
// the simulation.
func BenchmarkTracerOverhead(b *testing.B) {
	bench := mustBench(b, "bzip2")
	p := bench.MustBuild()
	cases := []struct {
		name   string
		tracer func() obs.Tracer
	}{
		{"nil", func() obs.Tracer { return nil }},
		{"nop", func() obs.Tracer { return obs.Nop{} }},
		{"ring", func() obs.Tracer { return obs.NewRing(4096) }},
		{"jsonl", func() obs.Tracer { return obs.NewJSONL(io.Discard) }},
	}
	for _, c := range cases {
		c := c
		b.Run(c.name, func(b *testing.B) {
			var insns uint64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := sim.Run(p, sim.Config{
					Design:          arch.Server(),
					Manager:         core.MustPowerChop(core.DefaultConfig()),
					MaxTranslations: 50000,
					Tracer:          c.tracer(),
				})
				if err != nil {
					b.Fatal(err)
				}
				insns = res.GuestInsns
			}
			b.ReportMetric(float64(insns), "insns/op")
		})
	}
}

// BenchmarkSpanOverhead measures the service-observability layer's cost
// on a run: detached is the plain simulation, spans adds a request→sim
// span tree (emitted to a JSONL sink on io.Discard, the serve path's
// shape), and spans+runlog additionally journals a run-history record
// per run. Spans are created at run granularity — never inside the
// simulator loop — so all three cases must be within noise.
func BenchmarkSpanOverhead(b *testing.B) {
	bench := mustBench(b, "bzip2")
	p := bench.MustBuild()
	store, err := runlog.Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	cases := []struct {
		name   string
		spans  bool
		runlog bool
	}{
		{"detached", false, false},
		{"spans", true, false},
		{"spans+runlog", true, true},
	}
	for _, c := range cases {
		c := c
		b.Run(c.name, func(b *testing.B) {
			var insns uint64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cfg := sim.Config{
					Design:          arch.Server(),
					Manager:         core.MustPowerChop(core.DefaultConfig()),
					MaxTranslations: 50000,
				}
				var root *span.Span
				start := time.Now()
				if c.spans {
					ctx, r := span.Root(context.Background(), obs.NewJSONL(io.Discard),
						"request", span.NewRequestID(), "route=bench")
					cfg.Context = ctx
					root = r
				}
				res, err := sim.Run(p, cfg)
				root.End()
				if err != nil {
					b.Fatal(err)
				}
				insns = res.GuestInsns
				if c.runlog {
					if err := store.Append(runlog.Record{
						Kind: "run", Name: "bzip2", SpanID: root.ID(),
						DurationMS: float64(time.Since(start)) / float64(time.Millisecond),
					}); err != nil {
						b.Fatal(err)
					}
				}
			}
			b.ReportMetric(float64(insns), "insns/op")
		})
	}
}

// BenchmarkExplainOverhead measures what attaching the decision-
// provenance auditor costs a run: detached is the plain simulation,
// attached adds audit collection (and the metrics collector whose
// registry hosts the audit histograms), mirroring what `powerchop
// explain` and /api/explain pay over `powerchop run`.
func BenchmarkExplainOverhead(b *testing.B) {
	bench := mustBench(b, "bzip2")
	p := bench.MustBuild()
	cases := []struct {
		name    string
		audit   bool
		metrics bool
	}{
		{"detached", false, false},
		{"attached", true, true},
	}
	for _, c := range cases {
		c := c
		b.Run(c.name, func(b *testing.B) {
			var insns uint64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := sim.Run(p, sim.Config{
					Design:          arch.Server(),
					Manager:         core.MustPowerChop(core.DefaultConfig()),
					MaxTranslations: 50000,
					Audit:           c.audit,
					Metrics:         c.metrics,
				})
				if err != nil {
					b.Fatal(err)
				}
				insns = res.GuestInsns
				if c.audit && res.Audit == nil {
					b.Fatal("audit trail missing")
				}
			}
			b.ReportMetric(float64(insns), "insns/op")
		})
	}
}

// BenchmarkRenderAll compares the serial figure pipeline against the
// concurrent one (singleflight-deduplicated worker pool, GOMAXPROCS
// jobs). Each iteration builds a fresh FigureRunner so the memoization
// cache cannot carry work between iterations; output goes to io.Discard
// after a byte-identity check is covered by TestRenderAllParallelByteIdentical.
func BenchmarkRenderAllSerial(b *testing.B)   { benchmarkRenderAll(b, 1) }
func BenchmarkRenderAllParallel(b *testing.B) { benchmarkRenderAll(b, 0) }

func benchmarkRenderAll(b *testing.B, jobs int) {
	for i := 0; i < b.N; i++ {
		f := NewFigureRunner(0.05, WithJobs(jobs))
		if err := f.RenderAll(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTune measures a tuner sweep (timeout policy, 5-point grid
// over gobmk) cold — populating a fresh result cache — and then warm,
// where every grid point and the baseline serve from the cache. The
// warm/cold ratio is attached as a metric, mirroring BenchmarkWarmCache.
func BenchmarkTune(b *testing.B) {
	cache := rescache.New(b.TempDir(), nil)
	opts := TuneOptions{
		Policy:     ManagerTimeout,
		Benchmarks: []string{"gobmk"},
		Grid:       map[string][]float64{"idle-cycles": {5000, 10000, 20000, 40000, 80000}},
		Options:    Options{Passes: 0.5, Cache: cache},
	}
	start := time.Now()
	res, err := Tune(opts)
	if err != nil {
		b.Fatal(err)
	}
	cold := time.Since(start)
	if len(res.Frontier) == 0 {
		b.Fatal("empty Pareto frontier")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Tune(opts); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if st := cache.Stats(); st.Hits == 0 {
		b.Fatal("warm sweeps hit nothing")
	}
	warm := b.Elapsed() / time.Duration(b.N)
	b.ReportMetric(float64(len(res.Points)), "grid-points")
	b.ReportMetric(cold.Seconds(), "cold-s")
	b.ReportMetric(100*warm.Seconds()/cold.Seconds(), "%of-cold")
}

// BenchmarkTelemetryOverhead measures the time-series store's cost on
// the simulator hot path: no observer at all (the baseline), telemetry
// ingest into a default multi-level store, and telemetry stacked on a
// ring tracer (the serve monitor's shape). Ingest work happens only at
// window boundaries, so the overhead must stay a small fraction of the
// run.
func BenchmarkTelemetryOverhead(b *testing.B) {
	bench := mustBench(b, "bzip2")
	p := bench.MustBuild()
	cases := []struct {
		name string
		cfg  func() (*tsdb.Store, obs.Tracer)
	}{
		{"none", func() (*tsdb.Store, obs.Tracer) { return nil, nil }},
		{"tsdb", func() (*tsdb.Store, obs.Tracer) {
			return tsdb.NewStore(tsdb.DefaultConfig()), nil
		}},
		{"tsdb+ring", func() (*tsdb.Store, obs.Tracer) {
			return tsdb.NewStore(tsdb.DefaultConfig()), obs.NewRing(4096)
		}},
	}
	for _, c := range cases {
		c := c
		b.Run(c.name, func(b *testing.B) {
			var windows uint64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ts, tracer := c.cfg()
				res, err := sim.Run(p, sim.Config{
					Design:          arch.Server(),
					Manager:         core.MustPowerChop(core.DefaultConfig()),
					MaxTranslations: 50000,
					Tracer:          tracer,
					Telemetry:       ts,
				})
				if err != nil {
					b.Fatal(err)
				}
				windows = res.Windows
			}
			b.ReportMetric(float64(windows), "windows/op")
		})
	}
}

// BenchmarkAlertOverhead measures the alert evaluator's cost on top of
// telemetry: the same simulation with a bare store (baseline), with the
// default ruleset ticking on a fast wall-clock interval, and with the
// ruleset evaluated eagerly after the run. The evaluator reads window
// aggregates at stride boundaries only, so its overhead must stay
// within run-to-run noise.
func BenchmarkAlertOverhead(b *testing.B) {
	bench := mustBench(b, "bzip2")
	p := bench.MustBuild()
	cases := []struct {
		name   string
		ticker bool // start a live ticker for the run's duration
	}{
		{"tsdb", false},
		{"tsdb+alerts", true},
	}
	for _, c := range cases {
		c := c
		b.Run(c.name, func(b *testing.B) {
			var windows, fired uint64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ts := tsdb.NewStore(tsdb.DefaultConfig())
				var ev *alert.Evaluator
				var stop func()
				if c.ticker {
					var err error
					ev, err = alert.New(alert.Config{
						Rules: alert.DefaultRules(),
						Store: ts,
					})
					if err != nil {
						b.Fatal(err)
					}
					stop = ev.Start(time.Millisecond)
				}
				res, err := sim.Run(p, sim.Config{
					Design:          arch.Server(),
					Manager:         core.MustPowerChop(core.DefaultConfig()),
					MaxTranslations: 50000,
					Telemetry:       ts,
				})
				if stop != nil {
					stop()
					fired = ev.FiredTotal()
				}
				if err != nil {
					b.Fatal(err)
				}
				windows = res.Windows
			}
			b.ReportMetric(float64(windows), "windows/op")
			if c.ticker {
				b.ReportMetric(float64(fired), "fired/op")
			}
		})
	}
}
