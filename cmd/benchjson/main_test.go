package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"powerchop/internal/benchgate"
)

// writeArtifact drops an artifact to disk for report() to load.
func writeArtifact(t *testing.T, path string, art benchgate.Artifact) {
	t.Helper()
	b, err := json.Marshal(art)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestReportGate pins the -gate wiring: report-only by default, an
// error naming the regression count when the gate is exceeded, a clean
// pass message inside the gate, and graceful degradation when the
// baseline is missing or malformed.
func TestReportGate(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "BENCH_base.json")
	writeArtifact(t, base, benchgate.Artifact{
		GeneratedAt: "2026-08-01T00:00:00Z",
		Results:     []benchgate.Result{{Name: "BenchmarkA-8", NsPerOp: 1000}},
	})
	current := &benchgate.Artifact{
		Results: []benchgate.Result{{Name: "BenchmarkA-8", NsPerOp: 1500}},
	}

	// Report-only: a 50% regression with no gate passes.
	var out strings.Builder
	if err := report(current, "", base, 0, &out); err != nil {
		t.Fatalf("report-only failed: %v", err)
	}
	if !strings.Contains(out.String(), "+50.0%") {
		t.Fatalf("diff missing delta:\n%s", out.String())
	}

	// Gated: the same regression against -gate 20 fails and names it.
	out.Reset()
	err := report(current, "", base, 20, &out)
	if err == nil {
		t.Fatal("gate did not fail on a +50% regression")
	}
	if !strings.Contains(err.Error(), "1 benchmark(s) regressed more than 20.0%") {
		t.Fatalf("gate error = %v", err)
	}
	if !strings.Contains(out.String(), "gate: BenchmarkA-8 +50.0% ns/op (was 1000, now 1500) exceeds +20.0%") {
		t.Fatalf("gate report:\n%s", out.String())
	}

	// Inside the gate: passes with a confirmation line.
	out.Reset()
	if err := report(current, "", base, 60, &out); err != nil {
		t.Fatalf("within-gate report failed: %v", err)
	}
	if !strings.Contains(out.String(), "no benchmark regressed more than +60.0%") {
		t.Fatalf("pass report:\n%s", out.String())
	}

	// A missing baseline never fails, gated or not.
	out.Reset()
	if err := report(current, "", filepath.Join(dir, "nope.json"), 20, &out); err != nil {
		t.Fatalf("missing baseline failed: %v", err)
	}
	if !strings.Contains(out.String(), "baseline skipped") {
		t.Fatalf("missing-baseline report:\n%s", out.String())
	}

	// "none" disables the diff entirely.
	out.Reset()
	if err := report(current, "", "none", 20, &out); err != nil {
		t.Fatalf("baseline none failed: %v", err)
	}
	if out.String() != "" {
		t.Fatalf("baseline none wrote: %q", out.String())
	}
}
