// Command benchjson runs the repository's Go benchmarks and writes the
// results as a JSON artifact (BENCH_<stamp>.json), so CI can archive a
// perf trajectory without failing the build on noisy runners.
//
// Usage:
//
//	benchjson [-bench REGEX] [-benchtime 1x] [-pkg ./...] [-count 1] [-o FILE] [-baseline FILE]
//
// The output records one entry per benchmark line with iterations,
// ns/op, and any extra metrics (B/op, allocs/op, custom units). The new
// results are diffed against a baseline artifact and the per-benchmark
// ns/op deltas are printed — report-only, never a failure, since shared
// runners are too noisy to gate on. -baseline names the artifact
// explicitly ("none" disables the diff); when omitted, the newest
// committed BENCH_*.json in the working directory is used.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"
)

// BenchResult is one parsed benchmark line.
type BenchResult struct {
	// Name is the full benchmark name, including any -N GOMAXPROCS
	// suffix (e.g. "BenchmarkTracerOverhead/traced-8").
	Name string `json:"name"`
	// Iterations is the measured b.N.
	Iterations int64 `json:"iterations"`
	// NsPerOp is the headline ns/op figure.
	NsPerOp float64 `json:"ns_per_op"`
	// Metrics holds every reported unit, ns/op included (also B/op,
	// allocs/op and custom b.ReportMetric units when present).
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Artifact is the JSON document benchjson writes.
type Artifact struct {
	GeneratedAt string        `json:"generated_at"`
	GoVersion   string        `json:"go_version"`
	GOOS        string        `json:"goos"`
	GOARCH      string        `json:"goarch"`
	GOMAXPROCS  int           `json:"gomaxprocs,omitempty"`
	Command     string        `json:"command"`
	Results     []BenchResult `json:"results"`
}

// hostWarnings reports host-environment differences between two
// artifacts: ns/op deltas across Go versions, operating systems,
// architectures or core counts are trajectories of the host as much as
// of the code, so the diff flags them. Fields a pre-metadata baseline
// left empty are skipped rather than reported as mismatches.
func hostWarnings(baseline, current *Artifact) []string {
	var warns []string
	check := func(field, old, new string) {
		if old != "" && old != new {
			warns = append(warns, fmt.Sprintf("%s changed: %s -> %s", field, old, new))
		}
	}
	check("go version", baseline.GoVersion, current.GoVersion)
	check("GOOS", baseline.GOOS, current.GOOS)
	check("GOARCH", baseline.GOARCH, current.GOARCH)
	if baseline.GOMAXPROCS != 0 && baseline.GOMAXPROCS != current.GOMAXPROCS {
		warns = append(warns, fmt.Sprintf("GOMAXPROCS changed: %d -> %d",
			baseline.GOMAXPROCS, current.GOMAXPROCS))
	}
	return warns
}

// parseBenchLine parses one `go test -bench` output line of the form
//
//	BenchmarkName-8   100   11234567 ns/op   42 B/op   7 allocs/op
//
// returning ok=false for non-benchmark lines (headers, PASS, ok ...).
func parseBenchLine(line string) (BenchResult, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return BenchResult{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return BenchResult{}, false
	}
	r := BenchResult{
		Name:       fields[0],
		Iterations: iters,
		Metrics:    map[string]float64{},
	}
	// The remainder alternates value/unit pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return BenchResult{}, false
		}
		unit := fields[i+1]
		r.Metrics[unit] = v
		if unit == "ns/op" {
			r.NsPerOp = v
		}
	}
	if len(r.Metrics) == 0 {
		return BenchResult{}, false
	}
	return r, true
}

// parseBench collects every benchmark line from a `go test -bench` run.
func parseBench(r io.Reader) ([]BenchResult, error) {
	var out []BenchResult
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		if res, ok := parseBenchLine(sc.Text()); ok {
			out = append(out, res)
		}
	}
	return out, sc.Err()
}

func main() {
	bench := flag.String("bench", ".", "benchmark regex passed to -bench")
	benchtime := flag.String("benchtime", "1x", "passed to -benchtime")
	pkg := flag.String("pkg", "./...", "package pattern to benchmark")
	count := flag.Int("count", 1, "passed to -count")
	outPath := flag.String("o", "", "output file (default BENCH_<stamp>.json)")
	baseline := flag.String("baseline", "", "baseline artifact to diff against (default: newest BENCH_*.json; \"none\" disables)")
	flag.Parse()

	if err := run(*bench, *benchtime, *pkg, *count, *outPath, *baseline, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

// diffReport renders the ns/op trajectory of new results against a
// baseline artifact: one line per benchmark present in either set, with
// the relative delta where both sides measured it. Informational only.
func diffReport(baseline, current *Artifact) string {
	var b strings.Builder
	base := make(map[string]BenchResult, len(baseline.Results))
	for _, r := range baseline.Results {
		base[r.Name] = r
	}
	for _, warn := range hostWarnings(baseline, current) {
		fmt.Fprintf(&b, "warning: %s — deltas compare different hosts\n", warn)
	}
	fmt.Fprintf(&b, "benchmark trajectory vs baseline (%s):\n", baseline.GeneratedAt)
	seen := make(map[string]bool, len(current.Results))
	for _, r := range current.Results {
		seen[r.Name] = true
		old, ok := base[r.Name]
		switch {
		case !ok:
			fmt.Fprintf(&b, "  %-50s %14.0f ns/op  (new)\n", r.Name, r.NsPerOp)
		case old.NsPerOp > 0:
			delta := (r.NsPerOp - old.NsPerOp) / old.NsPerOp * 100
			fmt.Fprintf(&b, "  %-50s %14.0f ns/op  %+7.1f%% (was %.0f)\n",
				r.Name, r.NsPerOp, delta, old.NsPerOp)
		default:
			fmt.Fprintf(&b, "  %-50s %14.0f ns/op  (baseline had no ns/op)\n", r.Name, r.NsPerOp)
		}
	}
	for _, r := range baseline.Results {
		if !seen[r.Name] {
			fmt.Fprintf(&b, "  %-50s %14s  (removed; was %.0f ns/op)\n", r.Name, "-", r.NsPerOp)
		}
	}
	return b.String()
}

// newestBaseline finds the default baseline: the lexically newest
// BENCH_*.json in dir — the stamp format (BENCH_20060102T150405Z.json)
// sorts chronologically — excluding the artifact being written. Returns
// "" when none exists.
func newestBaseline(dir, exclude string) string {
	matches, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return ""
	}
	sort.Strings(matches)
	for i := len(matches) - 1; i >= 0; i-- {
		if filepath.Base(matches[i]) != filepath.Base(exclude) {
			return matches[i]
		}
	}
	return ""
}

// loadArtifact reads a previously written BENCH_*.json document.
func loadArtifact(path string) (*Artifact, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var art Artifact
	if err := json.NewDecoder(f).Decode(&art); err != nil {
		return nil, fmt.Errorf("parsing %s: %w", path, err)
	}
	return &art, nil
}

func run(bench, benchtime, pkg string, count int, outPath, baseline string, stderr io.Writer) error {
	args := []string{"test", "-run", "^$",
		"-bench", bench,
		"-benchtime", benchtime,
		"-benchmem",
		"-count", strconv.Itoa(count),
		pkg,
	}
	cmd := exec.Command("go", args...)
	cmd.Stderr = stderr
	raw, err := cmd.Output()
	// Benchmarks across many packages can include some with no matching
	// benchmarks; go test still exits 0. A real failure aborts here.
	if err != nil {
		return fmt.Errorf("go %s: %w", strings.Join(args, " "), err)
	}
	results, err := parseBench(strings.NewReader(string(raw)))
	if err != nil {
		return err
	}
	if len(results) == 0 {
		return fmt.Errorf("no benchmark results matched %q", bench)
	}

	now := time.Now().UTC()
	art := Artifact{
		GeneratedAt: now.Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Command:     "go " + strings.Join(args, " "),
		Results:     results,
	}
	if outPath == "" {
		outPath = "BENCH_" + now.Format("20060102T150405Z") + ".json"
	}
	f, err := os.Create(outPath)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(art); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(stderr, "wrote %d benchmark results to %s\n", len(results), outPath)
	switch baseline {
	case "none":
		return nil
	case "":
		baseline = newestBaseline(".", outPath)
		if baseline == "" {
			return nil
		}
		fmt.Fprintf(stderr, "baseline (newest committed): %s\n", baseline)
	}
	prior, err := loadArtifact(baseline)
	if err != nil {
		// The diff is a courtesy report; a missing or malformed
		// baseline must not fail the artifact run.
		fmt.Fprintf(stderr, "benchjson: baseline skipped: %v\n", err)
		return nil
	}
	fmt.Fprint(stderr, diffReport(prior, &art))
	return nil
}
