// Command benchjson runs the repository's Go benchmarks and writes the
// results as a JSON artifact (BENCH_<stamp>.json), so CI can archive a
// perf trajectory without failing the build on noisy runners.
//
// Usage:
//
//	benchjson [-bench REGEX] [-benchtime 1x] [-pkg ./...] [-count 1] [-o FILE] [-baseline FILE] [-gate PCT]
//
// The output records one entry per benchmark line with iterations,
// ns/op, and any extra metrics (B/op, allocs/op, custom units). The new
// results are diffed against a baseline artifact and the per-benchmark
// ns/op deltas are printed. -baseline names the artifact explicitly
// ("none" disables the diff); when omitted, the newest committed
// BENCH_*.json in the working directory is used.
//
// The diff is report-only by default, since shared runners are too
// noisy to gate on hard. -gate PCT turns it into a gate: the run exits
// non-zero when any benchmark's ns/op regressed more than PCT percent
// vs the baseline (CI wires this into the bench-trajectory job as a
// soft gate, and `powerchop alerts check` consumes the same comparison
// as a rule source via internal/benchgate).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"runtime"
	"strconv"
	"strings"
	"time"

	"powerchop/internal/benchgate"
)

func main() {
	bench := flag.String("bench", ".", "benchmark regex passed to -bench")
	benchtime := flag.String("benchtime", "1x", "passed to -benchtime")
	pkg := flag.String("pkg", "./...", "package pattern to benchmark")
	count := flag.Int("count", 1, "passed to -count")
	outPath := flag.String("o", "", "output file (default BENCH_<stamp>.json)")
	baseline := flag.String("baseline", "", "baseline artifact to diff against (default: newest BENCH_*.json; \"none\" disables)")
	gate := flag.Float64("gate", 0, "fail when any benchmark regresses more than PCT percent vs the baseline (0 = report only)")
	flag.Parse()

	if err := run(*bench, *benchtime, *pkg, *count, *outPath, *baseline, *gate, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

func run(bench, benchtime, pkg string, count int, outPath, baseline string, gate float64, stderr io.Writer) error {
	args := []string{"test", "-run", "^$",
		"-bench", bench,
		"-benchtime", benchtime,
		"-benchmem",
		"-count", strconv.Itoa(count),
		pkg,
	}
	cmd := exec.Command("go", args...)
	cmd.Stderr = stderr
	raw, err := cmd.Output()
	// Benchmarks across many packages can include some with no matching
	// benchmarks; go test still exits 0. A real failure aborts here.
	if err != nil {
		return fmt.Errorf("go %s: %w", strings.Join(args, " "), err)
	}
	results, err := benchgate.Parse(strings.NewReader(string(raw)))
	if err != nil {
		return err
	}
	if len(results) == 0 {
		return fmt.Errorf("no benchmark results matched %q", bench)
	}

	now := time.Now().UTC()
	art := benchgate.Artifact{
		GeneratedAt: now.Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Command:     "go " + strings.Join(args, " "),
		Results:     results,
	}
	if outPath == "" {
		outPath = "BENCH_" + now.Format("20060102T150405Z") + ".json"
	}
	f, err := os.Create(outPath)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(art); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(stderr, "wrote %d benchmark results to %s\n", len(results), outPath)
	return report(&art, outPath, baseline, gate, stderr)
}

// report diffs the new artifact against the baseline and, when gate is
// positive, fails on regressions beyond it. A missing or malformed
// baseline never fails the run — the artifact is the product, the diff
// a courtesy.
func report(art *benchgate.Artifact, outPath, baseline string, gate float64, stderr io.Writer) error {
	switch baseline {
	case "none":
		return nil
	case "":
		baseline = benchgate.NewestBaseline(".", outPath)
		if baseline == "" {
			return nil
		}
		fmt.Fprintf(stderr, "baseline (newest committed): %s\n", baseline)
	}
	prior, err := benchgate.Load(baseline)
	if err != nil {
		fmt.Fprintf(stderr, "benchjson: baseline skipped: %v\n", err)
		return nil
	}
	fmt.Fprint(stderr, benchgate.DiffReport(prior, art))
	if gate <= 0 {
		return nil
	}
	viols := benchgate.Gate(prior, art, gate)
	if len(viols) == 0 {
		fmt.Fprintf(stderr, "gate: no benchmark regressed more than %+.1f%%\n", gate)
		return nil
	}
	for _, v := range viols {
		fmt.Fprintf(stderr, "gate: %s exceeds %+.1f%%\n", v, gate)
		if os.Getenv("GITHUB_ACTIONS") != "" {
			fmt.Fprintf(stderr, "::warning::bench gate: %s exceeds %+.1f%%\n", v, gate)
		}
	}
	return fmt.Errorf("%d benchmark(s) regressed more than %.1f%% vs %s", len(viols), gate, baseline)
}
