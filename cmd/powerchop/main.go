// Command powerchop runs the PowerChop simulator from the command line:
// list benchmarks, simulate one under a chosen power manager, compare
// configurations, replay event traces, or regenerate the paper's tables
// and figures.
//
// Usage:
//
//	powerchop list
//	powerchop policies [-json]
//	powerchop run -bench gobmk [-manager NAME] [-param K=V] [-arch server|mobile] [-passes 2] [-trace out.jsonl] [-metrics] [-http :8080] [-cache DIR]
//	powerchop compare -bench namd [-passes 2] [-cache DIR]
//	powerchop tune -policy powerchop [-bench gobmk,namd] [-grid vpu=0.001:0.02:4] [-jobs N] [-json] [-cache DIR]
//	powerchop explain -bench gobmk [-manager M] [-arch A] [-top 20] [-json]
//	powerchop trace [-top 20] out.jsonl
//	powerchop trace timeline [-last 40] out.jsonl
//	powerchop trace chrome [-o out.json] out.jsonl
//	powerchop trace audit [-top 20] [-arch server] out.jsonl
//	powerchop figure -id fig12 [-scale 1] [-jobs N] [-http :8080] [-cache DIR]
//	powerchop all [-scale 1] [-jobs N] [-http :8080] [-cache DIR]
//	powerchop headline [-scale 1] [-jobs N] [-http :8080] [-cache DIR]
//	powerchop serve [-addr :8080] [-scale 1] [-jobs N] [-trace out.jsonl] [-alert-rules FILE]
//	powerchop alerts rules
//	powerchop alerts check [-rules FILE] [-bench BENCH.json -gate PCT] [trace.jsonl]
//	powerchop alerts watch -addr URL
//
// The -http flag attaches a live monitor to the run: Prometheus metrics
// at /metrics, per-run progress at /progress, the event stream at
// /events (SSE or NDJSON), and pprof at /debug/pprof. serve keeps that
// monitor up as a standing service with an /api tree for triggering
// figures and runs.
//
// The -cache flag (default $POWERCHOP_CACHE) names a persistent result
// cache: completed simulations are stored content-addressed on disk and
// reused across invocations, so a warm cache regenerates figures
// byte-identically at a fraction of the cost. Runs that record an event
// trace bypass the cache — cached results cannot replay the stream.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"powerchop"
	"powerchop/internal/arch"
	"powerchop/internal/obs"
	"powerchop/internal/obs/audit"
	"powerchop/internal/obs/tsdb"
	"powerchop/internal/power"
	"powerchop/internal/rescache"
)

// paramFlag parses repeatable -param NAME=VALUE policy parameters.
type paramFlag map[string]float64

func (p paramFlag) String() string { return "" }

func (p *paramFlag) Set(s string) error {
	name, val, ok := strings.Cut(s, "=")
	if !ok || name == "" {
		return fmt.Errorf("want NAME=VALUE, got %q", s)
	}
	v, err := strconv.ParseFloat(val, 64)
	if err != nil {
		return fmt.Errorf("bad value in %q: %v", s, err)
	}
	if *p == nil {
		*p = paramFlag{}
	}
	(*p)[name] = v
	return nil
}

// openCache validates dir — creating it if needed, so a bad path fails
// before any simulation time is spent — and opens a result cache whose
// counters register in reg (nil selects a private registry). An empty dir
// returns nil: caching stays off.
func openCache(dir string, reg *obs.Registry) (*rescache.Cache, error) {
	if dir == "" {
		return nil, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("cache: %w", err)
	}
	return rescache.New(dir, reg), nil
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// usageError is a bad invocation: run reports it with exit status 2. An
// empty message means the flag package already printed the subcommand's
// usage, so nothing further is shown.
type usageError struct{ msg string }

func (e usageError) Error() string { return e.msg }

// errParse converts a flag-parse failure: -h/-help becomes flag.ErrHelp
// (exit 0), anything else a silent usageError — the flag package has
// already printed the error and the subcommand's own flag set, so the
// global usage must not be dumped on top of it.
func errParse(err error) error {
	if errors.Is(err, flag.ErrHelp) {
		return err
	}
	return usageError{}
}

// run dispatches the subcommand and returns the process exit status:
// 0 on success (including help requests), 1 on runtime errors, 2 on usage
// errors.
func run(args []string, stdout, stderr io.Writer) int {
	if len(args) == 0 {
		usage(stderr)
		return 2
	}
	var err error
	switch args[0] {
	case "list":
		err = cmdList()
	case "run":
		err = cmdRun(args[1:])
	case "compare":
		err = cmdCompare(args[1:])
	case "explain":
		err = cmdExplain(args[1:], stdout)
	case "trace":
		err = cmdTrace(args[1:], stdout)
	case "figure":
		err = cmdFigure(args[1:])
	case "all":
		err = cmdAll(args[1:])
	case "headline":
		err = cmdHeadline(args[1:])
	case "serve":
		err = cmdServe(args[1:], stderr)
	case "top":
		err = cmdTop(args[1:], stdout)
	case "runs":
		err = cmdRuns(args[1:], stdout)
	case "alerts":
		err = cmdAlerts(args[1:], stdout)
	case "policies":
		err = cmdPolicies(args[1:], stdout)
	case "tune":
		err = cmdTune(args[1:], stdout)
	case "help", "-h", "--help":
		usage(stdout)
		return 0
	default:
		fmt.Fprintf(stderr, "powerchop: unknown command %q\n", args[0])
		usage(stderr)
		return 2
	}
	var uerr usageError
	switch {
	case err == nil:
		return 0
	case errors.Is(err, flag.ErrHelp):
		return 0
	case errors.As(err, &uerr):
		if uerr.msg != "" {
			fmt.Fprintf(stderr, "powerchop: %s\n", uerr.msg)
		}
		return 2
	default:
		fmt.Fprintf(stderr, "powerchop: %v\n", err)
		return 1
	}
}

func usage(w io.Writer) {
	fmt.Fprint(w, `powerchop - phase-based unit-level power gating for hybrid processors

commands:
  list                          list the built-in benchmarks
  run -bench NAME [flags]       simulate one benchmark
  compare -bench NAME [flags]   full-power vs PowerChop vs min-power
  explain -bench NAME [flags]   decision provenance: scores, thresholds, attribution
  trace [-top N] FILE           summarize a JSONL event trace per phase
  trace timeline [-last N] FILE per-window phase/gating timeline table
  trace chrome [-o OUT] FILE    export as Chrome trace-event JSON (chrome://tracing)
  trace audit [-arch A] FILE    replay a trace through the attribution engine
  figure -id ID [-scale F] [-jobs N]   regenerate one paper figure/table
  all [-scale F] [-jobs N]             regenerate every figure/table
  headline [-scale F] [-jobs N]        per-suite slowdown/power/energy summary
  serve [-addr :8080] [-scale F] [-trace FILE] [-cache DIR]  standing monitor + figure API
  top -addr URL [-interval D] [-frames N]  live per-window series from a serve monitor
  top -bench NAME [flags]       run in process, then show the telemetry summary
  runs [list|show|tail] [-cache DIR] [-kind K] [-name N] [-json]  browse the run history
  alerts rules                  print the built-in alert ruleset as JSON
  alerts check [-rules F] [-bench ART -gate PCT] [TRACE]  replay a trace through the alert rules; exit 1 if any fire
  alerts watch -addr URL        tail the live alert-transition stream of a serve monitor
  policies [-json]              list registered gating policies and parameter schemas
  tune -policy NAME [-bench B1,B2] [-grid P=LO:HI:N] [-jobs N] [-batch N] [-json]  Pareto sweep

compare, tune, figure, all and headline accept -batch N to cap how many
configurations one batched simulation drives from a single trace walk
(0 = default cap of 16, 1 = solo runs); results are byte-identical at
any setting, batching only changes wall-clock time. tune also accepts
-progress for per-run completion lines on stderr.

run, tune, figure, all and headline accept -http ADDR to expose a live monitor
for the duration of the command: /metrics (Prometheus), /progress (JSON),
/events and /decisions (SSE or NDJSON), /dash (live telemetry), /api/series
and /api/query (time-series range queries), /debug/pprof. run also accepts
-telemetry to print per-window sparklines after the run.

run, compare, figure, all and headline accept -cache DIR (default
$POWERCHOP_CACHE) to reuse completed simulation results across
invocations; a warm cache is byte-identical to a cold run. Commands run
with a cache directory also journal a run-history record there, readable
with 'powerchop runs' or GET /api/runs on a serve monitor.
`)
	fmt.Fprintf(w, "\nfigure ids: %v\n", powerchop.FigureIDs())
	fmt.Fprintf(w, "managers (run -manager, see 'powerchop policies'): %v\n", powerchop.PolicyNames())
}

func cmdList() error {
	for _, name := range powerchop.Benchmarks() {
		suite, err := powerchop.SuiteOf(name)
		if err != nil {
			return err
		}
		fmt.Printf("%-14s %s\n", name, suite)
	}
	return nil
}

// runArgs carries the parsed flags of run and compare.
type runArgs struct {
	bench     string
	opts      powerchop.Options
	json      bool
	trace     string
	metrics   bool
	telemetry bool
	httpAddr  string
	cacheDir  string
}

func runFlags(args []string) (runArgs, error) {
	fs := flag.NewFlagSet("run", flag.ContinueOnError)
	bench := fs.String("bench", "", "benchmark name (see 'powerchop list')")
	manager := fs.String("manager", powerchop.ManagerPowerChop,
		"power manager ("+strings.Join(powerchop.PolicyNames(), "|")+")")
	var params paramFlag
	fs.Var(&params, "param", "policy parameter NAME=VALUE (repeatable; see 'powerchop policies')")
	archName := fs.String("arch", "", "design point (server|mobile; default per suite)")
	passes := fs.Float64("passes", 2, "passes over the phase schedule")
	sample := fs.Uint64("sample", 0, "sample interval in instructions (0 = off)")
	asJSON := fs.Bool("json", false, "emit the report as JSON")
	trace := fs.String("trace", "", "write the event trace as JSONL to this file")
	metrics := fs.Bool("metrics", false, "collect and print run metrics")
	telemetry := fs.Bool("telemetry", false, "record per-window series and print a sparkline summary")
	httpAddr := fs.String("http", "", "serve a live monitor on this address for the run's duration")
	cacheDir := fs.String("cache", os.Getenv("POWERCHOP_CACHE"), "persistent result cache directory (default $POWERCHOP_CACHE)")
	batch := fs.Int("batch", 0, "max configurations per batched simulation for compare (0 = default cap, 1 = solo runs)")
	if err := fs.Parse(args); err != nil {
		return runArgs{}, errParse(err)
	}
	if *bench == "" {
		return runArgs{}, usageError{msg: "missing -bench (see 'powerchop list')"}
	}
	return runArgs{
		bench: *bench,
		opts: powerchop.Options{
			Arch:           *archName,
			Manager:        *manager,
			Params:         params,
			Passes:         *passes,
			SampleInterval: *sample,
			Metrics:        *metrics,
			Batch:          *batch,
		},
		json:      *asJSON,
		trace:     *trace,
		metrics:   *metrics,
		telemetry: *telemetry,
		httpAddr:  *httpAddr,
		cacheDir:  *cacheDir,
	}, nil
}

// params digests the flags that shaped the run for the history journal.
func (a *runArgs) params() string {
	s := fmt.Sprintf("manager=%s passes=%g", a.opts.Manager, a.opts.Passes)
	if a.opts.Arch != "" {
		s += " arch=" + a.opts.Arch
	}
	return s
}

// attachCache opens the -cache directory (when given) and plugs the cache
// into the run options. Called once up front with a nil registry, and
// again from the -http monitor hook so the cache's counters surface on
// the monitor's /metrics instead of a private registry.
func (a *runArgs) attachCache(reg *obs.Registry) error {
	c, err := openCache(a.cacheDir, reg)
	if err != nil {
		return err
	}
	a.opts.Cache = c
	return nil
}

// withTrace attaches a JSONL trace file to the options when requested and
// invokes f, closing the file afterwards.
func withTrace(a *runArgs, f func() error) error {
	if a.trace == "" {
		return f()
	}
	out, err := os.Create(a.trace)
	if err != nil {
		return err
	}
	a.opts.TraceWriter = out
	if err := f(); err != nil {
		out.Close()
		return err
	}
	return out.Close()
}

func cmdRun(args []string) error {
	a, err := runFlags(args)
	if err != nil {
		return err
	}
	if err := a.attachCache(nil); err != nil {
		return err
	}
	var ts *tsdb.Store
	if a.telemetry {
		ts = tsdb.NewStore(tsdb.DefaultConfig())
		a.opts.Telemetry = ts
	}
	start := time.Now()
	var rep *powerchop.Report
	runErr := withMonitor(a.httpAddr, os.Stderr, func(l *liveMonitor) {
		a.opts.Tracer = l.tracer
		a.opts.Progress = l.progress
		a.attachCache(l.registry())
	}, func() error {
		return withTrace(&a, func() error {
			rep, err = powerchop.Run(a.bench, a.opts)
			return err
		})
	})
	recordHistory(a.cacheDir, "run", a.bench, a.params(), start, a.opts.Cache, runErr)
	if runErr != nil {
		return runErr
	}
	if a.json {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(rep)
	}
	fmt.Println(rep)
	fmt.Printf("  cycles %.3g, instructions %d, runtime %.3g s (simulated)\n",
		rep.Cycles, rep.Instructions, rep.Seconds)
	fmt.Printf("  energy %.4g J, mispredict rate %.3f, MLC hit rate %.3f\n",
		rep.TotalEnergyJ, rep.MispredictRate, rep.MLCHitRate)
	fmt.Printf("  MLC residency: one-way %.0f%%, half %.0f%%; switches/Mcyc VPU %.2f BPU %.2f MLC %.2f\n",
		rep.MLC.OneWayFrac*100, rep.MLC.HalfFrac*100,
		rep.VPU.SwitchesPerMCycles, rep.BPU.SwitchesPerMCycles, rep.MLC.SwitchesPerMCycles)
	if rep.Manager == powerchop.ManagerPowerChop {
		fmt.Printf("  phases characterized %d, CDE invocations %d, PVT hit rate %.4f\n",
			rep.PhasesSeen, rep.CDEInvocations, rep.PVTHitRate)
	}
	if rep.Metrics != nil {
		fmt.Println()
		fmt.Print(rep.Metrics.Summary)
	}
	if ts != nil {
		fmt.Println()
		if err := renderTelemetry(os.Stdout, ts, topWidth); err != nil {
			return err
		}
	}
	if a.trace != "" {
		fmt.Printf("\ntrace written to %s (summarize with 'powerchop trace %s')\n", a.trace, a.trace)
	}
	return nil
}

func cmdCompare(args []string) error {
	a, err := runFlags(args)
	if err != nil {
		return err
	}
	if err := a.attachCache(nil); err != nil {
		return err
	}
	start := time.Now()
	var c *powerchop.Comparison
	runErr := withMonitor(a.httpAddr, os.Stderr, func(l *liveMonitor) {
		a.opts.Tracer = l.tracer
		a.opts.Progress = l.progress
		a.attachCache(l.registry())
	}, func() error {
		return withTrace(&a, func() error {
			// With -trace the three runs' events land in one file, in run
			// order: full-power, powerchop, min-power.
			c, err = powerchop.Compare(a.bench, a.opts)
			return err
		})
	})
	recordHistory(a.cacheDir, "compare", a.bench, a.params(), start, a.opts.Cache, runErr)
	if runErr != nil {
		return runErr
	}
	if a.json {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(c)
	}
	fmt.Printf("benchmark %s (%s)\n", c.Benchmark, c.FullPower.Arch)
	fmt.Printf("  full-power: IPC %.3f, power %.4g W\n", c.FullPower.IPC, c.FullPower.AvgPowerW)
	fmt.Printf("  powerchop:  IPC %.3f, power %.4g W  (slowdown %.2f%%, power -%.1f%%, leakage -%.1f%%, energy -%.1f%%)\n",
		c.PowerChop.IPC, c.PowerChop.AvgPowerW,
		c.Slowdown()*100, c.PowerReduction()*100, c.LeakageReduction()*100, c.EnergyReduction()*100)
	fmt.Printf("  min-power:  IPC %.3f, power %.4g W  (performance loss %.1f%%)\n",
		c.MinPower.IPC, c.MinPower.AvgPowerW, c.MinPowerLoss()*100)
	return nil
}

// cmdExplain runs a benchmark with the decision-provenance auditor
// attached and prints the attribution report: every gating decision with
// its criticality scores and threshold comparisons, the per-phase energy
// attribution table, and a reconciliation of attributed savings against
// the power model's per-unit leakage deltas.
func cmdExplain(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("explain", flag.ContinueOnError)
	bench := fs.String("bench", "", "benchmark name (see 'powerchop list')")
	manager := fs.String("manager", powerchop.ManagerPowerChop, "power manager")
	archName := fs.String("arch", "", "design point (server|mobile; default per suite)")
	passes := fs.Float64("passes", 2, "passes over the phase schedule")
	top := fs.Int("top", 20, "maximum phases and decisions to list (0 = all)")
	asJSON := fs.Bool("json", false, "emit the audit report as JSON")
	if err := fs.Parse(args); err != nil {
		return errParse(err)
	}
	if *bench == "" {
		return usageError{msg: "missing -bench (see 'powerchop list')"}
	}
	rep, err := powerchop.Run(*bench, powerchop.Options{
		Arch:    *archName,
		Manager: *manager,
		Passes:  *passes,
		Audit:   true,
	})
	if err != nil {
		return err
	}
	if rep.Audit == nil {
		return fmt.Errorf("explain: run produced no audit trail")
	}
	if *asJSON {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(rep.Audit)
	}
	fmt.Fprintf(stdout, "%s (%s, %s manager)\n\n", rep.Benchmark, rep.Arch, rep.Manager)
	fmt.Fprint(stdout, rep.Audit.Render(*top))
	fmt.Fprintf(stdout, "\nreconciliation vs power model (attributed = leakage saved):\n")
	for _, u := range []struct {
		name string
		rep  powerchop.UnitReport
	}{
		{arch.UnitVPU, rep.VPU},
		{arch.UnitBPU, rep.BPU},
		{arch.UnitMLC, rep.MLC},
	} {
		attributed := rep.Audit.EnergySavedJ[u.name]
		fmt.Fprintf(stdout, "  %-4s attributed %.6g J, power model %.6g J (delta %.2g)\n",
			u.name, attributed, u.rep.LeakageSavedJ, attributed-u.rep.LeakageSavedJ)
	}
	return nil
}

// cmdTraceAudit replays a recorded JSONL trace through the
// decision-provenance auditor, pricing the attribution at the chosen
// design point (a recorded trace carries no power model of its own).
func cmdTraceAudit(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("trace audit", flag.ContinueOnError)
	in := fs.String("in", "", "trace file (JSONL); also accepted as a positional argument")
	top := fs.Int("top", 20, "maximum phases and decisions to list (0 = all)")
	archName := fs.String("arch", "server", "design point pricing the attribution (server|mobile)")
	if err := fs.Parse(args); err != nil {
		return errParse(err)
	}
	d, err := arch.ByName(*archName)
	if err != nil {
		return err
	}
	events, err := readTraceEvents(fs, *in)
	if err != nil {
		return err
	}
	a, err := audit.New(audit.Config{
		ClockHz: d.ClockHz,
		Units: []audit.UnitPower{
			{Name: d.PowerVPU.Name, LeakageW: d.PowerVPU.LeakageW},
			{Name: d.PowerBPU.Name, LeakageW: d.PowerBPU.LeakageW},
			{Name: d.PowerMLC.Name, LeakageW: d.PowerMLC.LeakageW},
		},
		TotalLeakageW: d.TotalLeakageW() + power.HTBPowerW,
	})
	if err != nil {
		return err
	}
	for _, e := range events {
		a.Emit(e)
	}
	fmt.Fprint(stdout, a.Snapshot().Render(*top))
	return nil
}

// cmdTrace dispatches the trace tooling: the default per-phase summary,
// plus "timeline" (per-window table), "chrome" (trace-event export) and
// "audit" (decision-provenance attribution replay).
func cmdTrace(args []string, stdout io.Writer) error {
	if len(args) > 0 {
		switch args[0] {
		case "timeline":
			return cmdTraceTimeline(args[1:], stdout)
		case "chrome":
			return cmdTraceChrome(args[1:], stdout)
		case "audit":
			return cmdTraceAudit(args[1:], stdout)
		}
	}
	fs := flag.NewFlagSet("trace", flag.ContinueOnError)
	in := fs.String("in", "", "trace file (JSONL); also accepted as a positional argument")
	top := fs.Int("top", 20, "maximum phases to list")
	if err := fs.Parse(args); err != nil {
		return errParse(err)
	}
	events, err := readTraceEvents(fs, *in)
	if err != nil {
		return err
	}
	fmt.Fprint(stdout, obs.Summarize(events).Render(*top))
	return nil
}

// readTraceEvents loads a JSONL trace named by -in or the first
// positional argument ("-" reads stdin).
func readTraceEvents(fs *flag.FlagSet, in string) ([]obs.Event, error) {
	path := in
	if path == "" && fs.NArg() > 0 {
		path = fs.Arg(0)
	}
	if path == "" {
		return nil, usageError{msg: "missing trace file (pass FILE, or -in FILE)"}
	}
	var r io.Reader
	if path == "-" {
		r = os.Stdin
	} else {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	return obs.ReadJSONL(r)
}

func cmdTraceTimeline(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("trace timeline", flag.ContinueOnError)
	in := fs.String("in", "", "trace file (JSONL); also accepted as a positional argument")
	last := fs.Int("last", 40, "show only the newest N windows (0 = all)")
	asJSON := fs.Bool("json", false, "emit the full timeline as JSON (ignores -last)")
	if err := fs.Parse(args); err != nil {
		return errParse(err)
	}
	events, err := readTraceEvents(fs, *in)
	if err != nil {
		return err
	}
	tl := obs.NewTimeline(events)
	if *asJSON {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(tl)
	}
	fmt.Fprint(stdout, tl.Render(*last))
	return nil
}

func cmdTraceChrome(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("trace chrome", flag.ContinueOnError)
	in := fs.String("in", "", "trace file (JSONL); also accepted as a positional argument")
	out := fs.String("o", "", "output file (default stdout)")
	if err := fs.Parse(args); err != nil {
		return errParse(err)
	}
	events, err := readTraceEvents(fs, *in)
	if err != nil {
		return err
	}
	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		if err := obs.WriteChrome(f, events); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "chrome trace written to %s (open in chrome://tracing or ui.perfetto.dev)\n", *out)
		return nil
	}
	return obs.WriteChrome(w, events)
}

// figureRunnerFlags parses the shared figure/all/headline flag set and
// builds the runner, attaching a live monitor when -http is given. The
// returned cleanup stops the monitor (a no-op without -http); record
// journals the command into the run history (a no-op without -cache).
func figureRunnerFlags(name string, args []string) (runner *powerchop.FigureRunner, id string, record func(kind, figure string, runErr error), cleanup func(), err error) {
	fs := flag.NewFlagSet(name, flag.ContinueOnError)
	var idFlag *string
	if name == "figure" {
		idFlag = fs.String("id", "", "figure id")
	}
	scale := fs.Float64("scale", 1, "run-length scale")
	jobs := fs.Int("jobs", 0, "max concurrent simulations (0 = GOMAXPROCS)")
	batch := fs.Int("batch", 0, "max cold lanes per batched simulation (0 = default cap, 1 = solo runs)")
	httpAddr := fs.String("http", "", "serve a live monitor on this address for the command's duration")
	cacheDir := fs.String("cache", os.Getenv("POWERCHOP_CACHE"), "persistent result cache directory (default $POWERCHOP_CACHE)")
	if err := fs.Parse(args); err != nil {
		return nil, "", nil, nil, errParse(err)
	}
	if idFlag != nil {
		if *idFlag == "" {
			return nil, "", nil, nil, usageError{msg: fmt.Sprintf("missing -id (known: %v)", powerchop.FigureIDs())}
		}
		id = *idFlag
	}
	opts := []powerchop.FigureOption{powerchop.WithJobs(*jobs), powerchop.WithBatch(*batch)}
	cleanup = func() {}
	var reg *obs.Registry
	if *httpAddr != "" {
		l := newLiveMonitor()
		opts = append(opts,
			powerchop.WithTracer(l.tracer),
			powerchop.WithProgress(l.progress),
		)
		if err := l.start(*httpAddr, os.Stderr); err != nil {
			return nil, "", nil, nil, err
		}
		cleanup = l.stop
		reg = l.registry()
	}
	cache, err := openCache(*cacheDir, reg)
	if err != nil {
		cleanup()
		return nil, "", nil, nil, err
	}
	if cache != nil {
		opts = append(opts, powerchop.WithCache(cache))
	}
	start := time.Now()
	record = func(kind, figure string, runErr error) {
		recordHistory(*cacheDir, kind, figure, fmt.Sprintf("scale=%g", *scale), start, cache, runErr)
	}
	return powerchop.NewFigureRunner(*scale, opts...), id, record, cleanup, nil
}

func cmdFigure(args []string) error {
	runner, id, record, cleanup, err := figureRunnerFlags("figure", args)
	if err != nil {
		return err
	}
	defer cleanup()
	err = runner.RenderFigure(os.Stdout, id)
	record("figure", id, err)
	return err
}

func cmdAll(args []string) error {
	runner, _, record, cleanup, err := figureRunnerFlags("all", args)
	if err != nil {
		return err
	}
	defer cleanup()
	err = runner.RenderAll(os.Stdout)
	record("all", "all", err)
	return err
}

func cmdHeadline(args []string) error {
	runner, _, record, cleanup, err := figureRunnerFlags("headline", args)
	if err != nil {
		return err
	}
	defer cleanup()
	rows, err := runner.Headline()
	record("headline", "headline", err)
	if err != nil {
		return err
	}
	fmt.Printf("%-12s %6s %9s %9s %9s %s\n", "suite", "apps", "slowdown", "power", "leakage", "energy")
	for _, r := range rows {
		fmt.Printf("%-12s %6d %8.1f%% %8.1f%% %8.1f%% %8.1f%%\n",
			r.Suite, r.Benchmarks, r.Slowdown*100, r.PowerRed*100, r.LeakageRed*100, r.EnergyRed*100)
	}
	fmt.Println("paper: 2.2% slowdown; power 10/6/8/19%; leakage 23/10/12/32%; energy 9% avg")
	return nil
}
