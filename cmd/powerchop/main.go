// Command powerchop runs the PowerChop simulator from the command line:
// list benchmarks, simulate one under a chosen power manager, compare
// configurations, or regenerate the paper's tables and figures.
//
// Usage:
//
//	powerchop list
//	powerchop run -bench gobmk [-manager powerchop|full-power|min-power|timeout] [-arch server|mobile] [-passes 2]
//	powerchop compare -bench namd [-passes 2]
//	powerchop figure -id fig12 [-scale 1]
//	powerchop all [-scale 1]
//	powerchop headline [-scale 1]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"powerchop"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "list":
		err = cmdList()
	case "run":
		err = cmdRun(os.Args[2:])
	case "compare":
		err = cmdCompare(os.Args[2:])
	case "figure":
		err = cmdFigure(os.Args[2:])
	case "all":
		err = cmdAll(os.Args[2:])
	case "headline":
		err = cmdHeadline(os.Args[2:])
	case "help", "-h", "--help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "powerchop: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "powerchop: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `powerchop - phase-based unit-level power gating for hybrid processors

commands:
  list                          list the built-in benchmarks
  run -bench NAME [flags]       simulate one benchmark
  compare -bench NAME [flags]   full-power vs PowerChop vs min-power
  figure -id ID [-scale F]      regenerate one paper figure/table
  all [-scale F]                regenerate every figure/table
  headline [-scale F]           per-suite slowdown/power/energy summary
`)
	fmt.Fprintf(os.Stderr, "\nfigure ids: %v\n", powerchop.FigureIDs())
}

func cmdList() error {
	for _, name := range powerchop.Benchmarks() {
		suite, err := powerchop.SuiteOf(name)
		if err != nil {
			return err
		}
		fmt.Printf("%-14s %s\n", name, suite)
	}
	return nil
}

func runFlags(args []string) (string, powerchop.Options, bool, error) {
	fs := flag.NewFlagSet("run", flag.ContinueOnError)
	bench := fs.String("bench", "", "benchmark name (see 'powerchop list')")
	manager := fs.String("manager", powerchop.ManagerPowerChop, "power manager")
	archName := fs.String("arch", "", "design point (server|mobile; default per suite)")
	passes := fs.Float64("passes", 2, "passes over the phase schedule")
	sample := fs.Uint64("sample", 0, "sample interval in instructions (0 = off)")
	asJSON := fs.Bool("json", false, "emit the report as JSON")
	if err := fs.Parse(args); err != nil {
		return "", powerchop.Options{}, false, err
	}
	if *bench == "" {
		return "", powerchop.Options{}, false, fmt.Errorf("missing -bench (see 'powerchop list')")
	}
	return *bench, powerchop.Options{
		Arch:           *archName,
		Manager:        *manager,
		Passes:         *passes,
		SampleInterval: *sample,
	}, *asJSON, nil
}

func cmdRun(args []string) error {
	bench, opts, asJSON, err := runFlags(args)
	if err != nil {
		return err
	}
	rep, err := powerchop.Run(bench, opts)
	if err != nil {
		return err
	}
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(rep)
	}
	fmt.Println(rep)
	fmt.Printf("  cycles %.3g, instructions %d, runtime %.3g s (simulated)\n",
		rep.Cycles, rep.Instructions, rep.Seconds)
	fmt.Printf("  energy %.4g J, mispredict rate %.3f, MLC hit rate %.3f\n",
		rep.TotalEnergyJ, rep.MispredictRate, rep.MLCHitRate)
	fmt.Printf("  MLC residency: one-way %.0f%%, half %.0f%%; switches/Mcyc VPU %.2f BPU %.2f MLC %.2f\n",
		rep.MLC.OneWayFrac*100, rep.MLC.HalfFrac*100,
		rep.VPU.SwitchesPerMCycles, rep.BPU.SwitchesPerMCycles, rep.MLC.SwitchesPerMCycles)
	if rep.Manager == powerchop.ManagerPowerChop {
		fmt.Printf("  phases characterized %d, CDE invocations %d, PVT hit rate %.4f\n",
			rep.PhasesSeen, rep.CDEInvocations, rep.PVTHitRate)
	}
	return nil
}

func cmdCompare(args []string) error {
	bench, opts, asJSON, err := runFlags(args)
	if err != nil {
		return err
	}
	c, err := powerchop.Compare(bench, opts)
	if err != nil {
		return err
	}
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(c)
	}
	fmt.Printf("benchmark %s (%s)\n", c.Benchmark, c.FullPower.Arch)
	fmt.Printf("  full-power: IPC %.3f, power %.4g W\n", c.FullPower.IPC, c.FullPower.AvgPowerW)
	fmt.Printf("  powerchop:  IPC %.3f, power %.4g W  (slowdown %.2f%%, power -%.1f%%, leakage -%.1f%%, energy -%.1f%%)\n",
		c.PowerChop.IPC, c.PowerChop.AvgPowerW,
		c.Slowdown()*100, c.PowerReduction()*100, c.LeakageReduction()*100, c.EnergyReduction()*100)
	fmt.Printf("  min-power:  IPC %.3f, power %.4g W  (performance loss %.1f%%)\n",
		c.MinPower.IPC, c.MinPower.AvgPowerW, c.MinPowerLoss()*100)
	return nil
}

func cmdFigure(args []string) error {
	fs := flag.NewFlagSet("figure", flag.ContinueOnError)
	id := fs.String("id", "", "figure id")
	scale := fs.Float64("scale", 1, "run-length scale")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *id == "" {
		return fmt.Errorf("missing -id (known: %v)", powerchop.FigureIDs())
	}
	return powerchop.NewFigureRunner(*scale).RenderFigure(os.Stdout, *id)
}

func cmdAll(args []string) error {
	fs := flag.NewFlagSet("all", flag.ContinueOnError)
	scale := fs.Float64("scale", 1, "run-length scale")
	if err := fs.Parse(args); err != nil {
		return err
	}
	return powerchop.NewFigureRunner(*scale).RenderAll(os.Stdout)
}

func cmdHeadline(args []string) error {
	fs := flag.NewFlagSet("headline", flag.ContinueOnError)
	scale := fs.Float64("scale", 1, "run-length scale")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rows, err := powerchop.NewFigureRunner(*scale).Headline()
	if err != nil {
		return err
	}
	fmt.Printf("%-12s %6s %9s %9s %9s %s\n", "suite", "apps", "slowdown", "power", "leakage", "energy")
	for _, r := range rows {
		fmt.Printf("%-12s %6d %8.1f%% %8.1f%% %8.1f%% %8.1f%%\n",
			r.Suite, r.Benchmarks, r.Slowdown*100, r.PowerRed*100, r.LeakageRed*100, r.EnergyRed*100)
	}
	fmt.Println("paper: 2.2% slowdown; power 10/6/8/19%; leakage 23/10/12/32%; energy 9% avg")
	return nil
}
