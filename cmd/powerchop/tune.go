package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"powerchop"
)

// cmdPolicies lists the registered gating policies with their parameter
// schemas and defaults.
func cmdPolicies(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("policies", flag.ContinueOnError)
	asJSON := fs.Bool("json", false, "emit the policy list as JSON")
	if err := fs.Parse(args); err != nil {
		return errParse(err)
	}
	infos := powerchop.Policies()
	if *asJSON {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(infos)
	}
	for _, p := range infos {
		fmt.Fprintf(stdout, "%-12s %s\n", p.Name, p.Description)
		for _, prm := range p.Params {
			fmt.Fprintf(stdout, "    %-16s %s (default %g, range [%g, %g])\n",
				prm.Name, prm.Description, prm.Default, prm.Min, prm.Max)
		}
	}
	return nil
}

// gridFlag parses repeatable -grid PARAM=LO:HI:STEPS or PARAM=V1,V2,...
// entries into per-parameter value lists.
type gridFlag map[string][]float64

func (g gridFlag) String() string { return "" }

func (g *gridFlag) Set(s string) error {
	name, spec, ok := strings.Cut(s, "=")
	if !ok || name == "" {
		return fmt.Errorf("want PARAM=LO:HI:STEPS or PARAM=V1,V2,..., got %q", s)
	}
	var vals []float64
	if parts := strings.Split(spec, ":"); len(parts) == 3 {
		lo, err1 := strconv.ParseFloat(parts[0], 64)
		hi, err2 := strconv.ParseFloat(parts[1], 64)
		steps, err3 := strconv.Atoi(parts[2])
		if err1 != nil || err2 != nil || err3 != nil || steps < 1 {
			return fmt.Errorf("bad range %q (want LO:HI:STEPS)", spec)
		}
		if steps == 1 {
			vals = []float64{lo}
		} else {
			for i := 0; i < steps; i++ {
				vals = append(vals, lo+(hi-lo)*float64(i)/float64(steps-1))
			}
		}
	} else {
		for _, p := range strings.Split(spec, ",") {
			v, err := strconv.ParseFloat(p, 64)
			if err != nil {
				return fmt.Errorf("bad value %q in %q", p, s)
			}
			vals = append(vals, v)
		}
	}
	if *g == nil {
		*g = gridFlag{}
	}
	(*g)[name] = vals
	return nil
}

// cmdTune sweeps a policy's parameter grid and prints the Pareto
// frontier of energy saved vs slowdown.
func cmdTune(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("tune", flag.ContinueOnError)
	policyName := fs.String("policy", "", "policy to sweep (see 'powerchop policies')")
	bench := fs.String("bench", "gobmk", "comma-separated benchmarks averaged over")
	archName := fs.String("arch", "", "design point (server|mobile; default per suite)")
	passes := fs.Float64("passes", 2, "passes over the phase schedule")
	jobs := fs.Int("jobs", 0, "max concurrent runs (0/1 = serial)")
	batch := fs.Int("batch", 0, "max grid points per batched simulation (0 = default cap, 1 = solo runs)")
	progress := fs.Bool("progress", false, "print per-run completion lines to stderr")
	httpAddr := fs.String("http", "", "serve a live monitor (/progress, /metrics) on this address for the sweep's duration")
	asJSON := fs.Bool("json", false, "emit the sweep result as JSON")
	cacheDir := fs.String("cache", os.Getenv("POWERCHOP_CACHE"), "persistent result cache directory (default $POWERCHOP_CACHE)")
	var grid gridFlag
	fs.Var(&grid, "grid", "parameter grid PARAM=LO:HI:STEPS or PARAM=V1,V2,... (repeatable; default half/default/double per parameter)")
	if err := fs.Parse(args); err != nil {
		return errParse(err)
	}
	if *policyName == "" {
		return usageError{msg: fmt.Sprintf("missing -policy (known: %v)", powerchop.PolicyNames())}
	}
	cache, err := openCache(*cacheDir, nil)
	if err != nil {
		return err
	}
	opts := powerchop.TuneOptions{
		Policy:     *policyName,
		Benchmarks: strings.Split(*bench, ","),
		Grid:       grid,
		Options: powerchop.Options{
			Arch:        *archName,
			Passes:      *passes,
			Parallelism: *jobs,
			Batch:       *batch,
			Cache:       cache,
		},
	}
	// Per-run progress: an optional stderr line per completed run and,
	// with -http, the live monitor's /progress board. Sweep runs report
	// through the same Options.Progress hook as single runs, batched or
	// not, so both sinks see every (benchmark, fingerprint) lane.
	var sinks []func(powerchop.RunProgress)
	if *progress {
		var mu sync.Mutex
		done := 0
		sinks = append(sinks, func(p powerchop.RunProgress) {
			if p.State != powerchop.StateDone && p.State != powerchop.StateError {
				return
			}
			mu.Lock()
			done++
			n := done
			mu.Unlock()
			line := fmt.Sprintf("tune: %d runs done (%s %s", n, p.Benchmark, p.Kind)
			if p.State == powerchop.StateError {
				line += " FAILED: " + p.Err
			}
			fmt.Fprintf(os.Stderr, "%s)\n", line)
		})
	}
	start := time.Now()
	var res *powerchop.TuneResult
	runErr := withMonitor(*httpAddr, os.Stderr, func(l *liveMonitor) {
		sinks = append(sinks, l.progress)
		if c, err := openCache(*cacheDir, l.registry()); err == nil && c != nil {
			opts.Options.Cache = c
			cache = c
		}
	}, func() error {
		if len(sinks) > 0 {
			all := sinks
			opts.Options.Progress = func(p powerchop.RunProgress) {
				for _, s := range all {
					s(p)
				}
			}
		}
		var err error
		res, err = powerchop.Tune(opts)
		return err
	})
	recordHistory(*cacheDir, "tune", *policyName,
		fmt.Sprintf("bench=%s passes=%g", *bench, *passes), start, cache, runErr)
	if err := runErr; err != nil {
		return err
	}
	if *asJSON {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(res)
	}
	fmt.Fprint(stdout, res.Render())
	return nil
}
