package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"powerchop/internal/obs"
	"powerchop/internal/obs/serve"
)

// writeTestTrace writes a small two-window JSONL trace and returns its
// path.
func writeTestTrace(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "t.jsonl")
	w, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	sink := obs.NewJSONL(w)
	sig := [obs.MaxSigIDs]uint32{0xaa}
	for _, e := range []obs.Event{
		{Kind: obs.KindWindowClose, Cycle: 1000, Window: 1, SigIDs: sig, SigN: 1, Count: 900},
		{Kind: obs.KindPVTMiss, Cycle: 1000, Window: 1, SigIDs: sig, SigN: 1},
		{Kind: obs.KindGate, Cycle: 1000, Window: 1, Unit: "VPU", Prev: 1, Next: 0.05, Stall: 30},
		{Kind: obs.KindWindowClose, Cycle: 2000, Window: 2, SigIDs: sig, SigN: 1, Count: 950},
		{Kind: obs.KindPVTHit, Cycle: 2000, Window: 2, SigIDs: sig, SigN: 1, Policy: 0xF},
	} {
		sink.Emit(e)
	}
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCmdTraceTimeline(t *testing.T) {
	path := writeTestTrace(t)
	var out bytes.Buffer
	if err := cmdTrace([]string{"timeline", path}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"timeline: 2 windows", "VPU", "miss", "hit", "<taa>"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("timeline missing %q:\n%s", want, out.String())
		}
	}
	// -last trims old windows.
	out.Reset()
	if err := cmdTrace([]string{"timeline", "-last", "1", path}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "skipped") {
		t.Errorf("timeline -last 1 did not trim:\n%s", out.String())
	}
	if err := cmdTrace([]string{"timeline"}, &out); err == nil {
		t.Error("timeline without a file accepted")
	}
}

func TestCmdTraceChrome(t *testing.T) {
	path := writeTestTrace(t)
	outPath := filepath.Join(t.TempDir(), "chrome.json")
	var out bytes.Buffer
	if err := cmdTrace([]string{"chrome", "-o", outPath, path}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), outPath) {
		t.Errorf("chrome export did not report its output file: %q", out.String())
	}
	raw, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("chrome export not JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("chrome export has no events")
	}
	// Default output is stdout.
	out.Reset()
	if err := cmdTrace([]string{"chrome", path}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "traceEvents") {
		t.Errorf("chrome stdout export: %q", out.String()[:min(80, out.Len())])
	}
}

func TestRunFlagsHTTP(t *testing.T) {
	a, err := runFlags([]string{"-bench", "gobmk", "-http", "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	if a.httpAddr != "127.0.0.1:0" {
		t.Fatalf("httpAddr = %q", a.httpAddr)
	}
}

// TestServeMonitorAPI exercises the serve subcommand's wiring without a
// real listener: API metadata endpoints, a cheap figure render, error
// paths, and /metrics conformance.
func TestServeMonitorAPI(t *testing.T) {
	l, err := newServeMonitor(0.02, 2, "")
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(l.mon.Handler())
	defer srv.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(body)
	}

	code, body := get("/api/figures")
	if code != http.StatusOK || !strings.Contains(body, "fig12") {
		t.Fatalf("/api/figures: %d %q", code, body)
	}
	code, body = get("/api/benchmarks")
	if code != http.StatusOK || !strings.Contains(body, "gobmk") {
		t.Fatalf("/api/benchmarks: %d", code)
	}
	// table1 renders without simulating, so it is cheap.
	code, body = get("/api/figure?id=table1")
	if code != http.StatusOK || !strings.Contains(body, "Table I") {
		t.Fatalf("/api/figure?id=table1: %d %q", code, body)
	}
	if code, _ = get("/api/figure"); code != http.StatusBadRequest {
		t.Fatalf("missing id: %d", code)
	}
	if code, _ = get("/api/figure?id=nope"); code != http.StatusNotFound {
		t.Fatalf("unknown id: %d", code)
	}
	if code, _ = get("/api/run"); code != http.StatusBadRequest {
		t.Fatalf("missing bench: %d", code)
	}
	code, body = get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics: %d", code)
	}
	if err := serve.CheckExposition([]byte(body)); err != nil {
		t.Fatalf("/metrics nonconformant: %v\n%s", err, body)
	}
	code, body = get("/progress")
	if code != http.StatusOK || !strings.Contains(body, "runs") {
		t.Fatalf("/progress: %d %q", code, body)
	}
}

// TestServeAPIRun runs a real (tiny) benchmark through /api/run and
// checks the report comes back and the board saw the run.
func TestServeAPIRun(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates a benchmark; skipped with -short")
	}
	l, err := newServeMonitor(0.02, 2, "")
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(l.mon.Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/api/run?bench=namd")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/api/run: %d %s", resp.StatusCode, body)
	}
	var rep struct {
		Benchmark string
		Cycles    float64
	}
	if err := json.Unmarshal(body, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Benchmark != "namd" || rep.Cycles <= 0 {
		t.Fatalf("report: %+v", rep)
	}
	snap := l.mon.Board().Snapshot()
	if len(snap.Runs) == 0 || snap.Counts[serve.StateDone] == 0 {
		t.Fatalf("board after /api/run: %+v", snap)
	}
}
