package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	"powerchop/internal/obs"
	"powerchop/internal/obs/serve"
)

// TestCmdTraceTimelineJSON pins the -json round trip: the emitted JSON
// unmarshals back into exactly the timeline the text renderer shows.
func TestCmdTraceTimelineJSON(t *testing.T) {
	path := writeTestTrace(t)
	var out bytes.Buffer
	if err := cmdTrace([]string{"timeline", "-json", path}, &out); err != nil {
		t.Fatal(err)
	}
	var got obs.Timeline
	if err := json.Unmarshal(out.Bytes(), &got); err != nil {
		t.Fatalf("timeline -json not JSON: %v\n%s", err, out.String())
	}
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	fs.Parse(nil)
	events, err := readTraceEvents(fs, path)
	if err != nil {
		t.Fatal(err)
	}
	want := obs.NewTimeline(events)
	if !reflect.DeepEqual(&got, want) {
		t.Errorf("JSON round trip diverged:\ngot  %+v\nwant %+v", &got, want)
	}
	if len(got.Rows) != 2 || got.Rows[0].Window != 1 || got.Rows[0].Insns != 900 {
		t.Fatalf("rows: %+v", got.Rows)
	}
	if len(got.Units) != 1 || got.Units[0] != "VPU" || got.Rows[0].Fracs[0] != 0.05 {
		t.Errorf("units/fracs: units %v, row 1 fracs %v", got.Units, got.Rows[0].Fracs)
	}
}

func TestCmdTopUsageErrors(t *testing.T) {
	var out bytes.Buffer
	var uerr usageError
	if err := cmdTop(nil, &out); !errors.As(err, &uerr) {
		t.Errorf("top without flags: %v, want usage error", err)
	}
	if err := cmdTop([]string{"-addr", "x", "-bench", "y"}, &out); !errors.As(err, &uerr) {
		t.Errorf("top with both modes: %v, want usage error", err)
	}
}

// TestCmdTopRemote polls a live monitor whose telemetry store holds a few
// windows and checks the frame lists every series with a sparkline.
func TestCmdTopRemote(t *testing.T) {
	l, err := newServeMonitor(0.02, 2, "")
	if err != nil {
		t.Fatal(err)
	}
	for w := uint64(1); w <= 12; w++ {
		l.telemetry.Append("window.insns", w, float64(w*1000), float64(900+w))
		l.telemetry.Append("unit.frac.VPU", w, float64(w*1000), 0.05)
	}
	srv := httptest.NewServer(l.mon.Handler())
	defer srv.Close()

	var out bytes.Buffer
	if err := cmdTop([]string{"-addr", srv.URL, "-frames", "1"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"frame 1, 2 series", "window.insns", "unit.frac.VPU", "(12 pts)", "912"} {
		if !strings.Contains(got, want) {
			t.Errorf("top frame missing %q:\n%s", want, got)
		}
	}

	// A coarser step answers from the downsampled level.
	out.Reset()
	if err := cmdTop([]string{"-addr", srv.URL, "-frames", "1", "-step", "32"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "(1 pts)") {
		t.Errorf("top -step 32 did not coarsen:\n%s", out.String())
	}
}

// TestCmdTopRemoteNoTelemetry checks the 404 from a monitor without a
// store surfaces as a usable error.
func TestCmdTopRemoteNoTelemetry(t *testing.T) {
	mon := serve.NewMonitor(obs.NewCollector().Registry())
	srv := httptest.NewServer(mon.Handler())
	defer srv.Close()
	var out bytes.Buffer
	err := cmdTop([]string{"-addr", srv.URL, "-frames", "1"}, &out)
	if err == nil || !strings.Contains(err.Error(), "404") {
		t.Fatalf("top against bare monitor: %v", err)
	}
}

// TestCmdTopInProcess runs a tiny benchmark in process and renders the
// final telemetry store.
func TestCmdTopInProcess(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates a benchmark; skipped with -short")
	}
	var out bytes.Buffer
	if err := cmdTop([]string{"-bench", "namd", "-passes", "0.1"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"telemetry:", "window.insns", "window.ipc", "unit.frac.VPU"} {
		if !strings.Contains(got, want) {
			t.Errorf("in-process top missing %q:\n%s", want, got)
		}
	}
}

func TestRunFlagsTelemetry(t *testing.T) {
	a, err := runFlags([]string{"-bench", "gobmk", "-telemetry"})
	if err != nil {
		t.Fatal(err)
	}
	if !a.telemetry {
		t.Fatal("telemetry flag not parsed")
	}
}
