package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"time"

	"powerchop/internal/obs/runlog"
	"powerchop/internal/rescache"
	"powerchop/internal/textplot"
)

// cmdRuns reads the persistent run history back out of the cache
// directory:
//
//	powerchop runs [list] [-cache DIR] [-kind K] [-name N] [-outcome O] [-limit N] [-offset N] [-json]
//	powerchop runs show [flags]   full detail of the newest matching record
//	powerchop runs tail [flags]   print the newest records, then follow
//
// It is the CLI twin of GET /api/runs: same journal, same filters.
func cmdRuns(args []string, stdout io.Writer) error {
	verb := "list"
	if len(args) > 0 {
		switch args[0] {
		case "list", "show", "tail":
			verb = args[0]
			args = args[1:]
		}
	}
	fs := flag.NewFlagSet("runs "+verb, flag.ContinueOnError)
	cacheDir := fs.String("cache", os.Getenv("POWERCHOP_CACHE"), "run-history directory (default $POWERCHOP_CACHE)")
	kind := fs.String("kind", "", "filter by kind (run, compare, figure, headline, ...)")
	name := fs.String("name", "", "filter by name (benchmark or figure id)")
	outcome := fs.String("outcome", "", "filter by outcome (ok, error)")
	limit := fs.Int("limit", 20, "maximum records to show (0 = all)")
	offset := fs.Int("offset", 0, "records to skip, newest first")
	asJSON := fs.Bool("json", false, "emit records as JSON")
	if err := fs.Parse(args); err != nil {
		return errParse(err)
	}
	if *cacheDir == "" {
		return usageError{msg: "runs: no history directory (pass -cache DIR or set $POWERCHOP_CACHE)"}
	}
	store, err := runlog.Open(*cacheDir)
	if err != nil {
		return err
	}
	f := runlog.Filter{Kind: *kind, Name: *name, Outcome: *outcome, Limit: *limit, Offset: *offset}
	switch verb {
	case "show":
		return runsShow(store, f, *asJSON, stdout)
	case "tail":
		stop := make(chan os.Signal, 1)
		signal.Notify(stop, os.Interrupt)
		defer signal.Stop(stop)
		return runsTail(store, f, *asJSON, stdout, stop, 500*time.Millisecond)
	default:
		return runsList(store, f, *asJSON, stdout)
	}
}

// runsList prints matching history records newest-first as a table (or
// a JSON array with -json), mirroring the /runs board.
func runsList(store *runlog.Store, f runlog.Filter, asJSON bool, stdout io.Writer) error {
	recs, corrupt, err := store.List(f)
	if err != nil {
		return err
	}
	if asJSON {
		if recs == nil {
			recs = []runlog.Record{}
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(recs)
	}
	if len(recs) == 0 {
		fmt.Fprintf(stdout, "no runs recorded in %s\n", store.Path())
		return nil
	}
	rows := make([][]string, 0, len(recs))
	for _, rec := range recs {
		rows = append(rows, runRow(rec))
	}
	fmt.Fprint(stdout, textplot.Table(
		[]string{"time", "kind", "name", "duration", "cache", "outcome"}, rows))
	if corrupt > 0 {
		fmt.Fprintf(stdout, "(%d corrupt journal lines skipped)\n", corrupt)
	}
	return nil
}

// runRow renders one record as a history-table row.
func runRow(rec runlog.Record) []string {
	cache := ""
	if rec.CacheHits+rec.CacheMisses > 0 {
		cache = fmt.Sprintf("%d/%d", rec.CacheHits, rec.CacheHits+rec.CacheMisses)
	}
	outcome := rec.Outcome
	if rec.Error != "" {
		outcome += ": " + rec.Error
	}
	return []string{
		rec.Time.Local().Format("2006-01-02 15:04:05"),
		rec.Kind,
		rec.Name,
		fmt.Sprintf("%.0fms", rec.DurationMS),
		cache,
		outcome,
	}
}

// runsShow prints the newest matching record in full detail.
func runsShow(store *runlog.Store, f runlog.Filter, asJSON bool, stdout io.Writer) error {
	f.Limit = 1
	recs, _, err := store.List(f)
	if err != nil {
		return err
	}
	if len(recs) == 0 {
		return fmt.Errorf("runs show: no matching record in %s", store.Path())
	}
	rec := recs[0]
	if asJSON {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(rec)
	}
	fmt.Fprintf(stdout, "time:        %s\n", rec.Time.Local().Format(time.RFC3339))
	fmt.Fprintf(stdout, "kind:        %s\n", rec.Kind)
	fmt.Fprintf(stdout, "name:        %s\n", rec.Name)
	if rec.Params != "" {
		fmt.Fprintf(stdout, "params:      %s\n", rec.Params)
	}
	fmt.Fprintf(stdout, "duration:    %.1fms\n", rec.DurationMS)
	if rec.SpanID != 0 {
		fmt.Fprintf(stdout, "span:        %d\n", rec.SpanID)
	}
	if rec.RequestID != "" {
		fmt.Fprintf(stdout, "request id:  %s\n", rec.RequestID)
	}
	if rec.CacheHits+rec.CacheMisses > 0 {
		fmt.Fprintf(stdout, "cache:       %d hits, %d misses\n", rec.CacheHits, rec.CacheMisses)
	}
	fmt.Fprintf(stdout, "outcome:     %s\n", rec.Outcome)
	if rec.Error != "" {
		fmt.Fprintf(stdout, "error:       %s\n", rec.Error)
	}
	return nil
}

// runsTail prints the newest matching records and then follows the
// journal, printing records as they are appended, until stop signals or
// closes. interval is the poll period (the journal is a plain file; no
// notification channel exists across processes).
func runsTail(store *runlog.Store, f runlog.Filter, asJSON bool, stdout io.Writer, stop <-chan os.Signal, interval time.Duration) error {
	emit := func(rec runlog.Record) {
		if asJSON {
			b, err := json.Marshal(rec)
			if err != nil {
				return
			}
			fmt.Fprintf(stdout, "%s\n", b)
			return
		}
		row := runRow(rec)
		fmt.Fprintf(stdout, "%s  %-8s %-12s %10s %8s  %s\n",
			row[0], row[1], row[2], row[3], row[4], row[5])
	}
	// Seed with the newest matching records, oldest of them first so the
	// feed reads top-to-bottom chronologically.
	recs, _, err := store.List(f)
	if err != nil {
		return err
	}
	for i := len(recs) - 1; i >= 0; i-- {
		emit(recs[i])
	}
	seen, err := store.Len()
	if err != nil {
		return err
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	match := func(rec runlog.Record) bool {
		return (f.Kind == "" || rec.Kind == f.Kind) &&
			(f.Name == "" || rec.Name == f.Name) &&
			(f.Outcome == "" || rec.Outcome == f.Outcome)
	}
	for {
		select {
		case <-stop:
			return nil
		case <-ticker.C:
			n, err := store.Len()
			if err != nil || n <= seen {
				continue
			}
			fresh, _, err := store.List(runlog.Filter{Limit: n - seen})
			if err != nil {
				continue
			}
			seen = n
			for i := len(fresh) - 1; i >= 0; i-- {
				if match(fresh[i]) {
					emit(fresh[i])
				}
			}
		}
	}
}

// recordHistory journals one completed CLI command into the run history
// under the cache directory, so `powerchop runs` lists CLI work next to
// API requests. Best-effort: recording never fails the command, and
// without a cache directory nothing is written.
func recordHistory(cacheDir, kind, name, params string, start time.Time, cache *rescache.Cache, runErr error) {
	if cacheDir == "" {
		return
	}
	store, err := runlog.Open(cacheDir)
	if err != nil {
		return
	}
	rec := runlog.Record{
		Kind:       kind,
		Name:       name,
		Params:     params,
		DurationMS: float64(time.Since(start)) / float64(time.Millisecond),
	}
	if cache != nil {
		// The cache was opened for this command, so its absolute counters
		// are the command's own hit/miss deltas.
		st := cache.Stats()
		rec.CacheHits = st.Hits
		rec.CacheMisses = st.Misses
	}
	if runErr != nil {
		rec.Error = runErr.Error()
	}
	store.Append(rec)
}
