package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"powerchop/internal/obs/runlog"
)

// seedHistory journals a few records into dir as a prior process would.
func seedHistory(t *testing.T, dir string) {
	t.Helper()
	base := time.Date(2026, 8, 8, 9, 0, 0, 0, time.UTC)
	recordHistory(dir, "run", "namd", "manager=powerchop passes=2", base, nil, nil)
	recordHistory(dir, "figure", "fig12", "scale=1", base, nil, nil)
	recordHistory(dir, "run", "gobmk", "manager=timeout passes=2", base, nil, errors.New("boom"))
}

// TestCmdRunsList covers the restart-survival path: records journaled by
// one "process" (recordHistory) are listed by a fresh `powerchop runs`
// invocation reading the same cache dir.
func TestCmdRunsList(t *testing.T) {
	dir := t.TempDir()
	seedHistory(t, dir)

	var out bytes.Buffer
	if err := cmdRuns([]string{"-cache", dir}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"namd", "fig12", "gobmk", "error: boom", "ok"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("runs list missing %q:\n%s", want, out.String())
		}
	}

	// Filters narrow the listing.
	out.Reset()
	if err := cmdRuns([]string{"list", "-cache", dir, "-kind", "run", "-outcome", "ok"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "namd") || strings.Contains(out.String(), "fig12") {
		t.Errorf("filtered list wrong:\n%s", out.String())
	}

	// -json emits machine-readable records.
	out.Reset()
	if err := cmdRuns([]string{"-cache", dir, "-json"}, &out); err != nil {
		t.Fatal(err)
	}
	var recs []runlog.Record
	if err := json.Unmarshal(out.Bytes(), &recs); err != nil {
		t.Fatalf("runs -json not JSON: %v\n%s", err, out.String())
	}
	if len(recs) != 3 || recs[0].Name != "gobmk" {
		t.Fatalf("json records: %+v", recs)
	}

	// Without a cache dir the command is a usage error, not a panic.
	t.Setenv("POWERCHOP_CACHE", "")
	if err := cmdRuns(nil, &out); err == nil {
		t.Error("runs without -cache accepted")
	}
}

func TestCmdRunsShow(t *testing.T) {
	dir := t.TempDir()
	seedHistory(t, dir)

	var out bytes.Buffer
	if err := cmdRuns([]string{"show", "-cache", dir, "-name", "namd"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"kind:", "run", "params:", "manager=powerchop", "outcome:", "ok"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("runs show missing %q:\n%s", want, out.String())
		}
	}
	out.Reset()
	if err := cmdRuns([]string{"show", "-cache", dir, "-json", "-outcome", "error"}, &out); err != nil {
		t.Fatal(err)
	}
	var rec runlog.Record
	if err := json.Unmarshal(out.Bytes(), &rec); err != nil {
		t.Fatal(err)
	}
	if rec.Name != "gobmk" || rec.Error != "boom" {
		t.Fatalf("show -json record: %+v", rec)
	}
	if err := cmdRuns([]string{"show", "-cache", dir, "-name", "nonexistent"}, &out); err == nil {
		t.Error("show with no match succeeded")
	}
}

// TestRunsTailFollows checks tail prints the seeded records, picks up
// records appended while it is following, and honors its filter.
func TestRunsTailFollows(t *testing.T) {
	dir := t.TempDir()
	seedHistory(t, dir)
	store, err := runlog.Open(dir)
	if err != nil {
		t.Fatal(err)
	}

	var out syncBuffer
	stop := make(chan os.Signal, 1)
	done := make(chan error, 1)
	go func() {
		done <- runsTail(store, runlog.Filter{Kind: "run", Limit: 10}, false, &out, stop, 5*time.Millisecond)
	}()
	waitOutput(t, &out, "namd")

	// Appends made mid-follow show up when they match the filter.
	if err := store.Append(runlog.Record{Kind: "run", Name: "late-arrival"}); err != nil {
		t.Fatal(err)
	}
	if err := store.Append(runlog.Record{Kind: "figure", Name: "off-kind"}); err != nil {
		t.Fatal(err)
	}
	waitOutput(t, &out, "late-arrival")

	stop <- os.Interrupt
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if strings.Contains(s, "off-kind") || strings.Contains(s, "fig12") {
		t.Errorf("tail printed records outside its kind filter:\n%s", s)
	}
}

// syncBuffer is a mutex-guarded bytes.Buffer for cross-goroutine writes.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func waitOutput(t *testing.T, b *syncBuffer, want string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !strings.Contains(b.String(), want) {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %q in tail output:\n%s", want, b.String())
		}
		time.Sleep(time.Millisecond)
	}
}
