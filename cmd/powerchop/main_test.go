package main

import (
	"testing"

	"powerchop"
)

func TestRunFlagsDefaults(t *testing.T) {
	bench, opts, asJSON, err := runFlags([]string{"-bench", "gobmk"})
	if err != nil {
		t.Fatal(err)
	}
	if bench != "gobmk" {
		t.Fatalf("bench = %q", bench)
	}
	if opts.Manager != powerchop.ManagerPowerChop || opts.Passes != 2 {
		t.Fatalf("defaults: %+v", opts)
	}
	if opts.Arch != "" || opts.SampleInterval != 0 || asJSON {
		t.Fatalf("defaults: %+v json=%v", opts, asJSON)
	}
}

func TestRunFlagsExplicit(t *testing.T) {
	bench, opts, asJSON, err := runFlags([]string{
		"-bench", "msn", "-manager", "timeout", "-arch", "mobile",
		"-passes", "1.5", "-sample", "10000", "-json",
	})
	if err != nil {
		t.Fatal(err)
	}
	if bench != "msn" || opts.Manager != "timeout" || opts.Arch != "mobile" ||
		opts.Passes != 1.5 || opts.SampleInterval != 10000 || !asJSON {
		t.Fatalf("parsed: %q %+v", bench, opts)
	}
}

func TestRunFlagsMissingBench(t *testing.T) {
	if _, _, _, err := runFlags(nil); err == nil {
		t.Fatal("missing -bench accepted")
	}
}

func TestCmdList(t *testing.T) {
	if err := cmdList(); err != nil {
		t.Fatal(err)
	}
}
