package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"powerchop"
	"powerchop/internal/obs"
)

func TestRunFlagsDefaults(t *testing.T) {
	a, err := runFlags([]string{"-bench", "gobmk"})
	if err != nil {
		t.Fatal(err)
	}
	if a.bench != "gobmk" {
		t.Fatalf("bench = %q", a.bench)
	}
	if a.opts.Manager != powerchop.ManagerPowerChop || a.opts.Passes != 2 {
		t.Fatalf("defaults: %+v", a.opts)
	}
	if a.opts.Arch != "" || a.opts.SampleInterval != 0 || a.json || a.trace != "" || a.metrics {
		t.Fatalf("defaults: %+v", a)
	}
}

func TestRunFlagsExplicit(t *testing.T) {
	a, err := runFlags([]string{
		"-bench", "msn", "-manager", "timeout", "-arch", "mobile",
		"-passes", "1.5", "-sample", "10000", "-json",
		"-trace", "out.jsonl", "-metrics",
	})
	if err != nil {
		t.Fatal(err)
	}
	if a.bench != "msn" || a.opts.Manager != "timeout" || a.opts.Arch != "mobile" ||
		a.opts.Passes != 1.5 || a.opts.SampleInterval != 10000 || !a.json {
		t.Fatalf("parsed: %+v", a)
	}
	if a.trace != "out.jsonl" || !a.metrics || !a.opts.Metrics {
		t.Fatalf("trace flags: %+v", a)
	}
}

func TestRunFlagsMissingBench(t *testing.T) {
	_, err := runFlags(nil)
	if err == nil {
		t.Fatal("missing -bench accepted")
	}
	if _, ok := err.(usageError); !ok {
		t.Fatalf("missing -bench is %T, want usageError", err)
	}
}

func TestCmdList(t *testing.T) {
	if err := cmdList(); err != nil {
		t.Fatal(err)
	}
}

func TestRunHelpExitsZero(t *testing.T) {
	for _, cmd := range []string{"help", "-h", "--help"} {
		var out, errOut bytes.Buffer
		if code := run([]string{cmd}, &out, &errOut); code != 0 {
			t.Errorf("%s exited %d", cmd, code)
		}
		if !strings.Contains(out.String(), "commands:") {
			t.Errorf("%s: usage not on stdout", cmd)
		}
		if errOut.Len() != 0 {
			t.Errorf("%s wrote to stderr: %q", cmd, errOut.String())
		}
	}
}

func TestRunNoArgsExitsTwo(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run(nil, &out, &errOut); code != 2 {
		t.Fatalf("no args exited %d", code)
	}
	if !strings.Contains(errOut.String(), "commands:") {
		t.Error("usage not on stderr")
	}
}

func TestRunUnknownCommandExitsTwo(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"bogus"}, &out, &errOut); code != 2 {
		t.Fatalf("unknown command exited %d", code)
	}
	if !strings.Contains(errOut.String(), "unknown command") {
		t.Errorf("stderr: %q", errOut.String())
	}
}

// TestRunBadSubcommandFlag checks a bad flag on a subcommand exits 2 and
// does not dump the global usage on top of the flag package's message.
func TestRunBadSubcommandFlag(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"run", "-nonsense"}, &out, &errOut); code != 2 {
		t.Fatalf("bad flag exited %d", code)
	}
	if strings.Contains(errOut.String(), "commands:") {
		t.Error("global usage printed for a subcommand flag error")
	}
}

func TestRunSubcommandHelpExitsZero(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"run", "-h"}, &out, &errOut); code != 0 {
		t.Fatalf("run -h exited %d", code)
	}
}

func TestRunMissingBenchExitsTwo(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"run"}, &out, &errOut); code != 2 {
		t.Fatalf("missing -bench exited %d", code)
	}
	if !strings.Contains(errOut.String(), "missing -bench") {
		t.Errorf("stderr: %q", errOut.String())
	}
}

func TestCmdTrace(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.jsonl")
	w, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	sink := obs.NewJSONL(w)
	sink.Emit(obs.Event{Kind: obs.KindWindowClose, Window: 1, SigIDs: [obs.MaxSigIDs]uint32{0xaa}, SigN: 1, Count: 1000})
	sink.Emit(obs.Event{Kind: obs.KindPVTHit, Window: 1, SigIDs: [obs.MaxSigIDs]uint32{0xaa}, SigN: 1, Policy: 0xF})
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	w.Close()

	var out bytes.Buffer
	if err := cmdTrace([]string{path}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "events") || !strings.Contains(out.String(), "<taa>") {
		t.Errorf("trace summary: %q", out.String())
	}

	// -in flag form.
	out.Reset()
	if err := cmdTrace([]string{"-in", path}, &out); err != nil {
		t.Fatal(err)
	}
	if out.Len() == 0 {
		t.Error("empty summary via -in")
	}
}

func TestCmdTraceMissingFile(t *testing.T) {
	err := cmdTrace(nil, &bytes.Buffer{})
	if err == nil {
		t.Fatal("missing file accepted")
	}
	if _, ok := err.(usageError); !ok {
		t.Fatalf("missing file is %T, want usageError", err)
	}
}
