package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"powerchop"
	"powerchop/internal/arch"
	"powerchop/internal/obs"
	"powerchop/internal/obs/alert"
	"powerchop/internal/obs/audit"
	"powerchop/internal/obs/runlog"
	"powerchop/internal/obs/serve"
	"powerchop/internal/obs/span"
	"powerchop/internal/obs/tsdb"
	"powerchop/internal/power"
	"powerchop/internal/rescache"
)

// liveMonitor bundles a serve.Monitor with the tracer and progress
// callback that feed it, ready to plug into powerchop.Options or
// FigureRunner options.
type liveMonitor struct {
	mon       *serve.Monitor
	tracer    obs.Tracer
	reg       *obs.Registry
	telemetry *tsdb.Store
}

// newLiveMonitor builds a monitor over a fresh metrics collector: the
// returned tracer fans events out to the collector (backing /metrics),
// a decision-provenance auditor (backing /decisions?format=json), a
// telemetry ingestor (backing /api/series, /api/query and /dash) and
// the monitor's hub (backing /events and the /decisions stream). The
// shared auditor prices savings at the server design point; runs on
// other designs still stream correctly, their attributed joules are
// just scaled by the server leakage budget (per-run exact attribution
// comes from 'powerchop explain').
func newLiveMonitor() *liveMonitor {
	collector := obs.NewCollector()
	mon := serve.NewMonitor(collector.Registry())
	d := arch.Server()
	auditor := audit.MustNew(audit.Config{
		ClockHz: d.ClockHz,
		Units: []audit.UnitPower{
			{Name: d.PowerVPU.Name, LeakageW: d.PowerVPU.LeakageW},
			{Name: d.PowerBPU.Name, LeakageW: d.PowerBPU.LeakageW},
			{Name: d.PowerMLC.Name, LeakageW: d.PowerMLC.LeakageW},
		},
		TotalLeakageW: d.TotalLeakageW() + power.HTBPowerW,
		Registry:      collector.Registry(),
	})
	mon.SetDecisions(auditor)
	store := tsdb.NewStore(tsdb.DefaultConfig())
	ingest := tsdb.NewIngestor(store, tsdb.IngestorConfig{
		Units: []string{arch.UnitBPU, arch.UnitMLC, arch.UnitVPU},
	})
	mon.SetTelemetry(store)
	return &liveMonitor{
		mon:       mon,
		tracer:    obs.Multi(collector, auditor, ingest, mon.Hub()),
		reg:       collector.Registry(),
		telemetry: store,
	}
}

// registry exposes the monitor's metrics registry so extra instrument
// sources (the result cache's counters) can surface on /metrics.
func (l *liveMonitor) registry() *obs.Registry { return l.reg }

// progress adapts RunProgress reports onto the monitor's board.
func (l *liveMonitor) progress(p powerchop.RunProgress) {
	l.mon.Board().Update(serve.RunUpdate{
		Benchmark:    p.Benchmark,
		Kind:         p.Kind,
		State:        p.State,
		Cycles:       p.Cycles,
		Translations: p.Translations,
		Total:        p.Total,
		Elapsed:      p.Elapsed,
		Err:          p.Err,
	})
}

// start listens on addr and prints where the endpoints live.
func (l *liveMonitor) start(addr string, stderr io.Writer) error {
	if err := l.mon.Start(addr); err != nil {
		return err
	}
	fmt.Fprintf(stderr, "monitor listening on http://%s (/metrics /progress /events /decisions /dash /debug/pprof)\n", l.mon.Addr())
	return nil
}

// stop shuts the monitor down, bounding the drain.
func (l *liveMonitor) stop() {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	l.mon.Shutdown(ctx)
}

// withMonitor starts a monitor on addr (when non-empty), wires it into
// the options via hook, runs f, and shuts the monitor down afterwards.
func withMonitor(addr string, stderr io.Writer, hook func(*liveMonitor), f func() error) error {
	if addr == "" {
		return f()
	}
	l := newLiveMonitor()
	hook(l)
	if err := l.start(addr, stderr); err != nil {
		return err
	}
	defer l.stop()
	return f()
}

// apiRecorder journals completed API work into the monitor's run
// history: duration, cache hit/miss deltas over the request, and the
// request's span and request IDs, so /api/runs and `powerchop runs`
// correlate with access logs and traces.
type apiRecorder struct {
	store *runlog.Store
	cache *rescache.Cache
}

// begin snapshots the clock and cache counters; the returned func
// journals the record once the work's outcome is known.
func (a *apiRecorder) begin(r *http.Request, kind, name, params string) func(error) {
	if a == nil || a.store == nil {
		return func(error) {}
	}
	start := time.Now()
	var before rescache.Stats
	if a.cache != nil {
		before = a.cache.Stats()
	}
	return func(runErr error) {
		rec := runlog.Record{
			Kind:       kind,
			Name:       name,
			Params:     params,
			DurationMS: float64(time.Since(start)) / float64(time.Millisecond),
		}
		if sp := span.FromContext(r.Context()); sp != nil {
			rec.SpanID = sp.ID()
			rec.RequestID = sp.RequestID()
		}
		if a.cache != nil {
			after := a.cache.Stats()
			rec.CacheHits = after.Hits - before.Hits
			rec.CacheMisses = after.Misses - before.Misses
		}
		if runErr != nil {
			rec.Error = runErr.Error()
		}
		a.store.Append(rec)
	}
}

// mountAPI adds the serve subcommand's /api tree to the monitor's mux:
//
//	GET /api/benchmarks      benchmark names and suites
//	GET /api/policies        registered gating policies and parameter schemas
//	GET /api/figures         figure ids and titles
//	GET /api/figure?id=ID    render one figure (text; simulates on demand)
//	GET /api/headline        per-suite headline averages (JSON)
//	GET /api/run?bench=NAME[&manager=M]  simulate one benchmark (JSON report)
//	GET /api/explain?bench=NAME[&manager=M]  simulate with audit on, return the provenance report (JSON)
//
// Figure and run requests execute through the shared runner, so their
// simulations show up live on /progress, /metrics and /events; every
// route is mounted through the monitor's middleware (request IDs, RED
// metrics, access logs, panic recovery), carries the request context so
// spans nest under the HTTP request, and journals a run-history record.
func mountAPI(l *liveMonitor, runner *powerchop.FigureRunner, rec *apiRecorder) {
	mount := l.mon.Mount
	writeJSON := func(w http.ResponseWriter, v any) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(v)
	}
	mount("GET /api/benchmarks", func(w http.ResponseWriter, r *http.Request) {
		type bench struct {
			Name  string `json:"name"`
			Suite string `json:"suite"`
		}
		var out []bench
		for _, name := range powerchop.SortedBenchmarks() {
			suite, _ := powerchop.SuiteOf(name)
			out = append(out, bench{Name: name, Suite: suite})
		}
		writeJSON(w, out)
	})
	mount("GET /api/policies", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, powerchop.Policies())
	})
	mount("GET /api/figures", func(w http.ResponseWriter, r *http.Request) {
		type fig struct {
			ID    string `json:"id"`
			Title string `json:"title"`
		}
		var out []fig
		for _, id := range powerchop.FigureIDs() {
			title, _ := powerchop.FigureTitle(id)
			out = append(out, fig{ID: id, Title: title})
		}
		writeJSON(w, out)
	})
	mount("GET /api/figure", func(w http.ResponseWriter, r *http.Request) {
		id := r.URL.Query().Get("id")
		if id == "" {
			http.Error(w, "missing id parameter", http.StatusBadRequest)
			return
		}
		if _, err := powerchop.FigureTitle(id); err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		done := rec.begin(r, "figure", id, "")
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if err := runner.RenderFigureContext(r.Context(), w, id); err != nil {
			done(err)
			// Headers are gone; report in-band.
			fmt.Fprintf(w, "\nerror: %v\n", err)
			return
		}
		done(nil)
	})
	mount("GET /api/headline", func(w http.ResponseWriter, r *http.Request) {
		done := rec.begin(r, "headline", "headline", "")
		rows, err := runner.HeadlineContext(r.Context())
		done(err)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		writeJSON(w, rows)
	})
	mount("GET /api/run", func(w http.ResponseWriter, r *http.Request) {
		bench := r.URL.Query().Get("bench")
		if bench == "" {
			http.Error(w, "missing bench parameter", http.StatusBadRequest)
			return
		}
		manager := r.URL.Query().Get("manager")
		done := rec.begin(r, "run", bench, "manager="+manager)
		rep, err := powerchop.RunContext(r.Context(), bench, powerchop.Options{
			Manager:  manager,
			Tracer:   l.tracer,
			Progress: l.progress,
		})
		done(err)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		writeJSON(w, rep)
	})
	mount("GET /api/explain", func(w http.ResponseWriter, r *http.Request) {
		bench := r.URL.Query().Get("bench")
		if bench == "" {
			http.Error(w, "missing bench parameter", http.StatusBadRequest)
			return
		}
		manager := r.URL.Query().Get("manager")
		done := rec.begin(r, "explain", bench, "manager="+manager)
		rep, err := powerchop.RunContext(r.Context(), bench, powerchop.Options{
			Manager:  manager,
			Tracer:   l.tracer,
			Progress: l.progress,
			Audit:    true,
		})
		done(err)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		writeJSON(w, rep.Audit)
	})
}

// newServeMonitor assembles the serve subcommand's monitor and runner —
// split from cmdServe so tests can exercise the wiring without a
// listener or signal handling. Extra sinks (the -trace JSONL recorder)
// join the live tracer fan-out, so a standing monitor and an on-disk
// event record compose. cacheDir, when non-empty, backs both the
// persistent result cache and the run-history journal; without it runs
// still appear on /api/runs but the history dies with the process.
func newServeMonitor(scale float64, jobs int, cacheDir string, sinks ...obs.Tracer) (*liveMonitor, error) {
	l := newLiveMonitor()
	if len(sinks) > 0 {
		all := append([]obs.Tracer{l.tracer}, sinks...)
		l.tracer = obs.Multi(all...)
	}
	// Request spans join the same fan-out as simulation events, so the
	// -trace JSONL (and `trace chrome` on it) shows the request tree.
	l.mon.SetSpanSink(l.tracer)

	store := runlog.Memory()
	if cacheDir != "" {
		var err error
		if store, err = runlog.Open(cacheDir); err != nil {
			return nil, err
		}
	}
	l.mon.SetRunLog(store)
	cache, err := openCache(cacheDir, l.registry())
	if err != nil {
		return nil, err
	}

	opts := []powerchop.FigureOption{
		powerchop.WithJobs(jobs),
		powerchop.WithTracer(l.tracer),
		powerchop.WithProgress(l.progress),
	}
	if cache != nil {
		opts = append(opts, powerchop.WithCache(cache))
	}
	runner := powerchop.NewFigureRunner(scale, opts...)
	mountAPI(l, runner, &apiRecorder{store: store, cache: cache})
	return l, nil
}

// attachAlerts builds the serve subcommand's alert evaluator over the
// live monitor's telemetry store and registry, and installs it behind
// /api/alerts and the board badges. rulesFile "" loads the built-in
// default ruleset, "none" disables alerting entirely. The evaluator
// emits transitions into the live tracer fan-out (hub, collector,
// auditor, any -trace JSONL sink), journals them into the run history,
// and optionally delivers them to a webhook.
func attachAlerts(l *liveMonitor, rulesFile, webhookURL string, every uint64) (*alert.Evaluator, *alert.Webhook, error) {
	if rulesFile == "none" {
		return nil, nil, nil
	}
	rules := alert.DefaultRules()
	if rulesFile != "" {
		var err error
		if rules, err = alert.LoadRules(rulesFile); err != nil {
			return nil, nil, err
		}
	}
	var wh *alert.Webhook
	if webhookURL != "" {
		wh = alert.NewWebhook(webhookURL, alert.WebhookConfig{Registry: l.registry()})
	}
	ev, err := alert.New(alert.Config{
		Rules:    rules,
		Store:    l.telemetry,
		Metrics:  l.reg.Snapshot,
		Every:    every,
		Sink:     l.tracer,
		Journal:  l.mon.RunLog(),
		Webhook:  wh,
		Registry: l.reg,
	})
	if err != nil {
		if wh != nil {
			wh.Close()
		}
		return nil, nil, err
	}
	l.mon.SetAlerts(ev)
	return ev, wh, nil
}

func cmdServe(args []string, stderr io.Writer) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address")
	scale := fs.Float64("scale", 1, "run-length scale for figure requests")
	jobs := fs.Int("jobs", 0, "max concurrent simulations (0 = GOMAXPROCS)")
	trace := fs.String("trace", "", "also record every event as JSONL to this file")
	cacheDir := fs.String("cache", os.Getenv("POWERCHOP_CACHE"), "result cache + run-history directory (default $POWERCHOP_CACHE)")
	accessLog := fs.Bool("access-log", true, "write structured JSON access logs to stderr")
	alertRules := fs.String("alert-rules", "", "alert rule file (default: built-in ruleset; \"none\" disables alerting)")
	alertWebhook := fs.String("alert-webhook", "", "POST alert transitions to this URL")
	alertInterval := fs.Duration("alert-interval", 5*time.Second, "alert evaluation interval")
	alertEvery := fs.Uint64("alert-every", alert.DefaultEvery, "series-rule evaluation stride in windows")
	if err := fs.Parse(args); err != nil {
		return errParse(err)
	}
	var sinks []obs.Tracer
	var traceOut *os.File
	var traceSink *obs.JSONL
	if *trace != "" {
		f, err := os.Create(*trace)
		if err != nil {
			return err
		}
		traceOut = f
		traceSink = obs.NewJSONL(f)
		sinks = append(sinks, traceSink)
	}
	l, err := newServeMonitor(*scale, *jobs, *cacheDir, sinks...)
	if err != nil {
		if traceOut != nil {
			traceOut.Close()
		}
		return err
	}
	if *accessLog {
		l.mon.SetAccessLog(slog.New(slog.NewJSONHandler(stderr, nil)))
	}
	ev, webhook, err := attachAlerts(l, *alertRules, *alertWebhook, *alertEvery)
	if err != nil {
		if traceOut != nil {
			traceOut.Close()
		}
		return err
	}
	var stopAlerts func()
	if ev != nil {
		stopAlerts = ev.Start(*alertInterval)
		fmt.Fprintf(stderr, "alert evaluator: %d rules every %s (browse: /api/alerts, /alerts)\n",
			len(ev.Rules()), *alertInterval)
	}
	if err := l.start(*addr, stderr); err != nil {
		if stopAlerts != nil {
			stopAlerts()
		}
		if webhook != nil {
			webhook.Close()
		}
		if traceOut != nil {
			traceOut.Close()
		}
		return err
	}
	fmt.Fprintf(stderr, "figure API at http://%s/api/figures; interrupt to stop\n", l.mon.Addr())
	if *trace != "" {
		fmt.Fprintf(stderr, "recording events to %s\n", *trace)
	}
	if store := l.mon.RunLog(); store.Persistent() {
		fmt.Fprintf(stderr, "run history at %s (browse: /api/runs, /runs, 'powerchop runs')\n", store.Path())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)
	<-sig
	fmt.Fprintln(stderr, "shutting down")
	// Final alert catch-up first, so boundaries reached by the last run
	// are evaluated and their transitions land in the trace, the run
	// journal and the webhook before anything drains.
	if stopAlerts != nil {
		stopAlerts()
	}
	if webhook != nil {
		webhook.Close()
	}
	l.stop()
	if traceSink != nil {
		if err := traceSink.Flush(); err != nil {
			traceOut.Close()
			return err
		}
		if err := traceOut.Close(); err != nil {
			return err
		}
		fmt.Fprintf(stderr, "trace written to %s (%d events)\n", *trace, traceSink.Events())
	}
	return nil
}
