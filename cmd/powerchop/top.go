package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"time"

	"powerchop"
	"powerchop/internal/obs/tsdb"
	"powerchop/internal/stats"
	"powerchop/internal/textplot"
)

// topWidth is the default sparkline width of 'powerchop top' and the
// 'run -telemetry' summary.
const topWidth = 64

// cmdTop shows the per-window telemetry series as sparklines: against a
// running serve monitor (-addr, polling /api/series and /api/query), or
// by running one benchmark in process (-bench) and rendering the final
// store.
func cmdTop(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("top", flag.ContinueOnError)
	addr := fs.String("addr", "", "base URL of a running serve monitor (e.g. http://127.0.0.1:8080)")
	bench := fs.String("bench", "", "run this benchmark in process instead of polling a monitor")
	manager := fs.String("manager", powerchop.ManagerPowerChop, "power manager (in-process mode)")
	archName := fs.String("arch", "", "design point (in-process mode; server|mobile, default per suite)")
	passes := fs.Float64("passes", 2, "passes over the phase schedule (in-process mode)")
	interval := fs.Duration("interval", 2*time.Second, "refresh interval between frames (remote mode)")
	frames := fs.Int("frames", 0, "frames to draw before exiting (remote mode; 0 = forever)")
	step := fs.Uint64("step", 0, "minimum windows per point: picks a downsampled level (0 = raw)")
	width := fs.Int("width", topWidth, "sparkline width in characters")
	if err := fs.Parse(args); err != nil {
		return errParse(err)
	}
	switch {
	case *addr != "" && *bench != "":
		return usageError{msg: "top: -addr and -bench are mutually exclusive"}
	case *bench != "":
		ts := tsdb.NewStore(tsdb.DefaultConfig())
		if _, err := powerchop.Run(*bench, powerchop.Options{
			Arch:      *archName,
			Manager:   *manager,
			Passes:    *passes,
			Telemetry: ts,
		}); err != nil {
			return err
		}
		return renderTelemetry(stdout, ts, *width)
	case *addr == "":
		return usageError{msg: "top: need -addr URL or -bench NAME"}
	}
	base := strings.TrimRight(*addr, "/")
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	client := &http.Client{Timeout: 30 * time.Second}
	for frame := 1; ; frame++ {
		if err := topFrame(stdout, client, base, frame, *step, *width); err != nil {
			return err
		}
		if *frames > 0 && frame >= *frames {
			return nil
		}
		time.Sleep(*interval)
	}
}

// topFrame draws one frame from a remote monitor: the series catalog,
// then a range query per series.
func topFrame(w io.Writer, client *http.Client, base string, frame int, step uint64, width int) error {
	var catalog struct {
		Series []tsdb.SeriesInfo `json:"series"`
	}
	if err := getJSON(client, base+"/api/series", &catalog); err != nil {
		return err
	}
	fmt.Fprintf(w, "powerchop top — %s — frame %d, %d series\n", base, frame, len(catalog.Series))
	for _, si := range catalog.Series {
		var res tsdb.Result
		q := fmt.Sprintf("%s/api/query?series=%s&step=%d", base, url.QueryEscape(si.Name), step)
		if err := getJSON(client, q, &res); err != nil {
			return err
		}
		writeTopLine(w, si.Name, &res, width)
	}
	return nil
}

// getJSON fetches a JSON document, turning non-200 answers (e.g. 404
// from a monitor with no telemetry attached) into errors.
func getJSON(client *http.Client, u string, v any) error {
	resp, err := client.Get(u)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("top: GET %s: %s: %s", u, resp.Status, strings.TrimSpace(string(body)))
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// renderTelemetry renders one frame of a local store: every series as a
// sparkline over its raw retention, with its latest value and range.
func renderTelemetry(w io.Writer, ts *tsdb.Store, width int) error {
	names := ts.SeriesNames()
	fmt.Fprintf(w, "telemetry: %d series\n", len(names))
	for _, name := range names {
		res, err := ts.Query(tsdb.Query{Series: name})
		if err != nil {
			return err
		}
		writeTopLine(w, name, res, width)
	}
	return nil
}

// writeTopLine renders one series row: name, latest value, sparkline,
// range and point count.
func writeTopLine(w io.Writer, name string, res *tsdb.Result, width int) {
	if len(res.Points) == 0 {
		fmt.Fprintf(w, "  %-18s %12s  (no points)\n", name, "-")
		return
	}
	vals := make([]float64, len(res.Points))
	for i, p := range res.Points {
		vals[i] = p.Value
	}
	down := (&stats.Series{Values: vals}).Downsample(width)
	fmt.Fprintf(w, "  %-18s %12.5g  %s  [%.3g .. %.3g] (%d pts)\n",
		name, vals[len(vals)-1], textplot.Spark(down.Values),
		stats.Min(vals), stats.Max(vals), len(vals))
}
