package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"path/filepath"
	"strings"

	"powerchop/internal/benchgate"
	"powerchop/internal/obs/alert"
)

// cmdAlerts dispatches the alerting tooling: "rules" prints the
// built-in ruleset, "check" replays a recorded trace through the
// evaluator offline, "watch" tails the live transition stream of a
// running serve monitor.
func cmdAlerts(args []string, stdout io.Writer) error {
	if len(args) > 0 {
		switch args[0] {
		case "rules":
			return cmdAlertsRules(args[1:], stdout)
		case "check":
			return cmdAlertsCheck(args[1:], stdout)
		case "watch":
			return cmdAlertsWatch(args[1:], stdout)
		case "help", "-h", "-help", "--help":
			fmt.Fprintln(stdout, "usage: powerchop alerts rules|check|watch (see powerchop help)")
			return nil
		}
	}
	return usageError{msg: "alerts wants a subcommand: rules, check or watch"}
}

// cmdAlertsRules prints the built-in default ruleset as JSON in the
// exact schema -alert-rules and `alerts check -rules` load, so
// `powerchop alerts rules > rules.json` is a valid starting point for
// a customized set.
func cmdAlertsRules(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("alerts rules", flag.ContinueOnError)
	if err := fs.Parse(args); err != nil {
		return errParse(err)
	}
	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(alert.RuleFile{Rules: alert.DefaultRules()})
}

// checkReport is the -json document of `alerts check`: the replayed
// transitions (bench-gate violations appended as synthetic
// "bench.<name>" firing transitions) plus summary counts.
type checkReport struct {
	Rules      int    `json:"rules"`
	Events     int    `json:"events,omitempty"`
	LastWindow uint64 `json:"last_window,omitempty"`
	// Transitions is every state-machine edge, in evaluation order.
	Transitions []Transition `json:"transitions"`
	// Fired counts firing transitions; the command exits non-zero when
	// it is positive.
	Fired int `json:"fired"`
	// BenchViolations lists the raw bench-gate regressions when -bench
	// was given.
	BenchViolations []benchgate.Violation `json:"bench_violations,omitempty"`
}

// Transition aliases the evaluator's transition for the JSON report.
type Transition = alert.Transition

// cmdAlertsCheck replays a recorded JSONL trace through a fresh
// telemetry store and alert evaluator — the same stride, so the same
// boundaries, as a live run — and reports every rule transition.
// Registry-metric rules are skipped (a trace carries no registry);
// series and anomaly rules reconcile exactly with the live /alerts
// stream. With -bench, the benchmark artifact is additionally gated
// against a baseline and each regression fires a synthetic
// "bench.<name>" alert. Exits non-zero when anything fired.
func cmdAlertsCheck(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("alerts check", flag.ContinueOnError)
	rulesFile := fs.String("rules", "", "rule file (JSON; default: the built-in ruleset, see 'alerts rules')")
	in := fs.String("in", "", "trace file (JSONL); also accepted as a positional argument")
	every := fs.Uint64("every", alert.DefaultEvery, "series evaluation stride in windows (must match the live -alert-every)")
	units := fs.String("units", "BPU,MLC,VPU", "gated units pre-declared to the ingest (must match the live run)")
	asJSON := fs.Bool("json", false, "emit the transitions as JSON")
	benchFile := fs.String("bench", "", "current benchmark artifact (BENCH_*.json) to gate")
	benchBase := fs.String("bench-baseline", "", "baseline artifact (default: newest BENCH_*.json beside -bench)")
	gate := fs.Float64("gate", 25, "bench regression gate in percent (with -bench)")
	if err := fs.Parse(args); err != nil {
		return errParse(err)
	}
	haveTrace := *in != "" || fs.NArg() > 0
	if !haveTrace && *benchFile == "" {
		return usageError{msg: "alerts check: need a trace file and/or -bench ARTIFACT"}
	}

	rules := alert.DefaultRules()
	if *rulesFile != "" {
		var err error
		if rules, err = alert.LoadRules(*rulesFile); err != nil {
			return err
		}
	}

	rep := checkReport{Rules: len(rules)}
	if haveTrace {
		events, err := readTraceEvents(fs, *in)
		if err != nil {
			return err
		}
		ev, err := alert.Replay(events, rules, alert.ReplayConfig{
			Every: *every,
			Units: splitUnits(*units),
		})
		if err != nil {
			return err
		}
		snap := ev.Snapshot()
		rep.Events = len(events)
		rep.LastWindow = snap.LastWindow
		rep.Transitions = snap.Transitions
	}

	if *benchFile != "" {
		viols, err := benchCheck(*benchFile, *benchBase, *gate, stdout)
		if err != nil {
			return err
		}
		rep.BenchViolations = viols
		for _, v := range viols {
			rep.Transitions = append(rep.Transitions, Transition{
				Rule:      "bench." + v.Name,
				State:     alert.StateFiring,
				Value:     v.DeltaPct,
				Threshold: *gate,
			})
		}
	}
	for _, tr := range rep.Transitions {
		if tr.State == alert.StateFiring {
			rep.Fired++
		}
	}

	if *asJSON {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			return err
		}
	} else {
		for _, tr := range rep.Transitions {
			fmt.Fprintln(stdout, formatTransition(tr))
		}
		fmt.Fprintf(stdout, "%d rule(s), %d transition(s), %d firing\n",
			rep.Rules, len(rep.Transitions), rep.Fired)
	}
	if rep.Fired > 0 {
		return fmt.Errorf("alerts check: %d alert(s) fired", rep.Fired)
	}
	return nil
}

// benchCheck gates a benchmark artifact against its baseline. A
// missing baseline skips the gate with a note — the first artifact in
// a repository has nothing to regress against.
func benchCheck(current, baseline string, gate float64, stdout io.Writer) ([]benchgate.Violation, error) {
	art, err := benchgate.Load(current)
	if err != nil {
		return nil, err
	}
	if baseline == "" {
		baseline = benchgate.NewestBaseline(filepath.Dir(current), current)
		if baseline == "" {
			fmt.Fprintf(stdout, "bench gate skipped: no baseline BENCH_*.json beside %s\n", current)
			return nil, nil
		}
	}
	prior, err := benchgate.Load(baseline)
	if err != nil {
		return nil, err
	}
	return benchgate.Gate(prior, art, gate), nil
}

// splitUnits parses the -units CSV, dropping empty entries.
func splitUnits(csv string) []string {
	var out []string
	for _, u := range strings.Split(csv, ",") {
		if u = strings.TrimSpace(u); u != "" {
			out = append(out, u)
		}
	}
	return out
}

// formatTransition renders one transition for the terminal, in the
// same window=/tick= vocabulary as the run journal.
func formatTransition(tr Transition) string {
	at := fmt.Sprintf("window=%d", tr.Window)
	if tr.Window == 0 {
		at = fmt.Sprintf("tick=%d", tr.Tick)
	}
	return fmt.Sprintf("%-9s %-24s %-12s value=%g threshold=%g",
		tr.State, tr.Rule, at, tr.Value, tr.Threshold)
}

// cmdAlertsWatch tails the alert-transition stream of a running serve
// monitor (GET /alerts?format=ndjson) and prints each transition as it
// arrives. -count exits after N transitions, for scripting.
func cmdAlertsWatch(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("alerts watch", flag.ContinueOnError)
	addr := fs.String("addr", "", "base URL of a running serve monitor (e.g. http://127.0.0.1:8080)")
	count := fs.Int("count", 0, "exit after N transitions (0 = stream until interrupted)")
	if err := fs.Parse(args); err != nil {
		return errParse(err)
	}
	if *addr == "" {
		return usageError{msg: "alerts watch: need -addr URL"}
	}
	base := strings.TrimRight(*addr, "/")
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	resp, err := http.Get(base + "/alerts?format=ndjson")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("alerts watch: %s returned %s", base+"/alerts", resp.Status)
	}
	fmt.Fprintf(stdout, "watching %s/alerts\n", base)
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	seen := 0
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || !strings.HasPrefix(line, "{") {
			continue
		}
		var we struct {
			Kind   string  `json:"kind"`
			Unit   string  `json:"unit"`
			Detail string  `json:"detail"`
			Window uint64  `json:"window"`
			Count  uint64  `json:"count"`
			Value  float64 `json:"value"`
			Prev   float64 `json:"prev"`
		}
		if err := json.Unmarshal([]byte(line), &we); err != nil || we.Kind != "alert" {
			continue
		}
		fmt.Fprintln(stdout, formatTransition(Transition{
			Rule: we.Unit, State: we.Detail, Window: we.Window,
			Tick: we.Count, Value: we.Value, Threshold: we.Prev,
		}))
		if seen++; *count > 0 && seen >= *count {
			return nil
		}
	}
	return sc.Err()
}
