package workload

import "powerchop/internal/program"

// PARSEC stand-ins: the multithreaded suite's kernels reduced to their
// single-core phase behaviour.

func init() {
	register(Benchmark{Name: "blackscholes", Suite: PARSEC, build: buildBlackscholes})
	register(Benchmark{Name: "canneal", Suite: PARSEC, build: buildCanneal})
	register(Benchmark{Name: "dedup", Suite: PARSEC, build: buildDedup})
	register(Benchmark{Name: "fluidanimate", Suite: PARSEC, build: buildFluidanimate})
	register(Benchmark{Name: "streamcluster", Suite: PARSEC, build: buildStreamcluster})
}

// buildBlackscholes models option pricing: a tight, heavily vectorized,
// L1-resident kernel with trivially predictable loops — the VPU is
// critical but the MLC and large BPU are not.
func buildBlackscholes() (*program.Program, error) {
	b := program.NewBuilder("blackscholes", PARSEC, seedFor("blackscholes"))
	price := addRegion(b, regionOpts{
		name: "bs-kernel", insns: 36,
		vec: 0.12, branch: 0.03, load: 0.16, store: 0.06,
		branches: loopBranches(),
		streams:  []program.MemStream{resident(wsL1)},
	})
	setup := addRegion(b, regionOpts{
		name: "portfolio-setup", insns: 28,
		branch: 0.05, load: 0.22, store: 0.10,
		branches: easyBranches(),
		streams:  []program.MemStream{resident(wsL1Spill)},
	})
	b.Phase("price", w(44), map[int]float64{price: 1})
	b.Phase("setup", w(8), map[int]float64{setup: 1})
	return b.Build()
}

// buildCanneal models simulated-annealing placement: random accesses over
// a footprint far beyond the MLC, leaving rare-but-nonzero MLC hits (the
// half-ways band) and unpredictable swap decisions.
func buildCanneal() (*program.Program, error) {
	b := program.NewBuilder("canneal", PARSEC, seedFor("canneal"))
	anneal := addRegion(b, regionOpts{
		name: "swap-eval", insns: 32,
		branch: 0.06, load: 0.30, store: 0.06,
		branches: []program.BranchModel{correlated(4), random()},
		streams:  []program.MemStream{resident(wsHuge)},
	})
	cool := addRegion(b, regionOpts{
		name: "temperature-step", insns: 28,
		branch: specBranchFrac, load: 0.18, store: 0.05,
		branches: easyBranches(),
		streams:  []program.MemStream{resident(wsL1)},
	})
	b.Phase("anneal", w(42), map[int]float64{anneal: 1})
	b.Phase("cool", w(8), map[int]float64{cool: 1})
	return b.Build()
}

// buildDedup models the deduplication pipeline: streaming chunking, an
// L1-resident hash stage and a cache-resident compress stage, with vector
// ops so sparse that the paper reports the VPU gated above 90%.
func buildDedup() (*program.Program, error) {
	b := program.NewBuilder("dedup", PARSEC, seedFor("dedup"))
	chunk := sparseVector(b, regionOpts{
		name: "rabin-chunk", insns: 32,
		branch: 0.06, load: 0.26, store: 0.08,
		branches: []program.BranchModel{patterned("TTNTTTN"), biased(0.9)},
		streams:  []program.MemStream{streaming(wsHuge)},
	}, 0.002)
	hash := sparseVector(b, regionOpts{
		name: "sha-hash", insns: 34,
		branch: 0.03, load: 0.14, store: 0.06,
		branches: []program.BranchModel{biased(0.99)},
		streams:  []program.MemStream{resident(wsL1)},
	}, 0.001)
	compress := sparseVector(b, regionOpts{
		name: "compress", insns: 30,
		branch: 0.06, load: 0.24, store: 0.08,
		branches: mediumBranches(),
		streams:  []program.MemStream{resident(wsMLCSmall)},
	}, 0.002)
	b.Phase("chunk", w(22), chunk)
	b.Phase("hash", w(18), hash)
	b.Phase("compress", w(14), compress)
	return b.Build()
}

// buildFluidanimate models SPH fluid simulation: vectorized neighbour
// computations over an MLC-resident particle grid.
func buildFluidanimate() (*program.Program, error) {
	b := program.NewBuilder("fluidanimate", PARSEC, seedFor("fluidanimate"))
	density := addRegion(b, regionOpts{
		name: "density", insns: 34,
		vec: 0.05, branch: 0.04, load: 0.26, store: 0.08,
		branches: mediumBranches(),
		streams:  []program.MemStream{resident(wsMLC)},
	})
	advance := addRegion(b, regionOpts{
		name: "advance", insns: 30,
		vec: 0.04, branch: 0.03, load: 0.22, store: 0.12,
		branches: loopBranches(),
		streams:  []program.MemStream{resident(wsMLCSmall)},
	})
	rebin := addRegion(b, regionOpts{
		name: "cell-rebin", insns: 28,
		branch: 0.06, load: 0.20, store: 0.12,
		branches: easyBranches(),
		streams:  []program.MemStream{resident(wsL1Spill)},
	})
	b.Phase("density", w(26), map[int]float64{density: 1})
	b.Phase("advance", w(18), map[int]float64{advance: 1})
	b.Phase("rebin", w(8), map[int]float64{rebin: 1})
	return b.Build()
}

// buildStreamcluster models online clustering: a long streaming distance
// sweep (MLC one-way gated over 40% of cycles, as the paper reports) with
// a short reuse-heavy recluster step.
func buildStreamcluster() (*program.Program, error) {
	b := program.NewBuilder("streamcluster", PARSEC, seedFor("streamcluster"))
	dist := addRegion(b, regionOpts{
		name: "dist-sweep", insns: 34,
		vec: 0.04, branch: 0.03, load: 0.28, store: 0.06,
		branches: loopBranches(),
		streams:  []program.MemStream{streaming(wsHuge)},
	})
	recluster := addRegion(b, regionOpts{
		name: "recluster", insns: 30,
		branch: 0.06, load: 0.22, store: 0.08,
		branches: mediumBranches(),
		streams:  []program.MemStream{resident(wsL1Spill)},
	})
	b.Phase("dist", w(40), map[int]float64{dist: 1})
	b.Phase("recluster", w(10), map[int]float64{recluster: 1})
	return b.Build()
}
