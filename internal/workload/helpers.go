package workload

import (
	"powerchop/internal/isa"
	"powerchop/internal/program"
)

// windowTranslations is the paper's execution-window size; phase durations
// below are given in windows.
const windowTranslations = 1000

// phaseScale stretches every phase so that gating transients (profiling,
// switch stalls, cache rewarm) stay small relative to phase length, as
// they are at the paper's SimPoint scale where phases span billions of
// instructions.
const phaseScale = 3

// w converts a duration in execution windows to translations.
func w(windows int) int { return windows * phaseScale * windowTranslations }

// Working-set presets relative to the design points' 32KB L1 and 1-2MB MLC.
const (
	wsL1       = 20 << 10  // fits the L1: the MLC sees almost nothing
	wsL1Spill  = 44 << 10  // slightly exceeds the L1: rare MLC hits (half-ways band)
	wsMLC      = 640 << 10 // fits the MLC, far exceeds the L1: MLC critical
	wsMLCSmall = 360 << 10 // fits even half the server MLC
	wsHuge     = 96 << 20  // streaming footprint: no cache holds it
)

// Branch model constructors.

// biased returns a branch taken with probability p; any predictor learns
// it, so the large BPU is non-critical.
func biased(p float64) program.BranchModel {
	return program.BranchModel{Kind: program.Biased, Bias: p}
}

// noisyBiased returns a biased branch whose outcome flips with probability
// noise, bounding every predictor's accuracy.
func noisyBiased(p, noise float64) program.BranchModel {
	return program.BranchModel{Kind: program.Biased, Bias: p, Noise: noise}
}

// patterned returns a branch repeating the given outcome string
// ('T' = taken); the tournament's history-based components learn it, a
// bimodal counter cannot.
func patterned(pattern string) program.BranchModel {
	outcomes := make([]bool, len(pattern))
	for i := 0; i < len(pattern); i++ {
		outcomes[i] = pattern[i] == 'T'
	}
	return program.BranchModel{Kind: program.Patterned, Pattern: outcomes}
}

// correlated returns a branch whose outcome is the parity of the last
// depth global outcomes; only the tournament's global component tracks it.
func correlated(depth int) program.BranchModel {
	return program.BranchModel{Kind: program.Correlated, CorrDepth: depth}
}

// random returns an unpredictable branch.
func random() program.BranchModel {
	return program.BranchModel{Kind: program.Random}
}

// Memory stream constructors.

// resident returns a reuse-heavy stream over a working set of ws bytes
// (uniform random accesses).
func resident(ws uint64) program.MemStream {
	return program.MemStream{WorkingSet: ws}
}

// streaming returns a sequential word-by-word walk over a huge footprint:
// each 64-byte line is touched for eight consecutive accesses and never
// revisited, so the L1 absorbs the spatial locality and the MLC retains
// nothing useful.
func streaming(ws uint64) program.MemStream {
	return program.MemStream{WorkingSet: ws, Stride: 8}
}

// regionOpts tunes the generic region constructors.
type regionOpts struct {
	name     string
	insns    int
	vec      float64
	branch   float64
	load     float64
	store    float64
	branches []program.BranchModel
	streams  []program.MemStream
}

// addRegion declares a region on the builder from the options.
func addRegion(b *program.Builder, o regionOpts) int {
	if o.insns == 0 {
		o.insns = 32
	}
	return b.Region(program.RegionSpec{
		Name:  o.name,
		Insns: o.insns,
		Mix: isa.Mix{
			VectorFrac: o.vec,
			BranchFrac: o.branch,
			LoadFrac:   o.load,
			StoreFrac:  o.store,
		},
		Branches: o.branches,
		Streams:  o.streams,
	})
}

// sparseVector declares a region pair that issues vector operations at a
// per-instruction rate too low to represent inside a single region body
// (one op per several bodies): a scalar base region plus a variant carrying
// exactly one vector op, mixed by phase weight. The returned weight map
// realizes the requested rate while spreading the vector ops uniformly
// across translations — the "scarce but nonzero" pattern of Figure 1 that
// defeats timeout-based gating (Section V-E).
func sparseVector(b *program.Builder, o regionOpts, rate float64) map[int]float64 {
	if o.insns == 0 {
		o.insns = 32
	}
	// Both variants must touch the same data, not two disjoint copies of
	// the working set.
	shared := uint32(seedFor(o.name)>>40) | 1
	streams := append([]program.MemStream(nil), o.streams...)
	for i := range streams {
		streams[i].SharedID = shared
	}
	o.streams = streams

	base := o
	base.vec = 0
	baseIdx := addRegion(b, base)

	simd := o
	simd.name = o.name + "-simd"
	simd.vec = 1 / float64(o.insns) // exactly one vector op per body
	simdIdx := addRegion(b, simd)

	wSimd := rate * float64(o.insns)
	if wSimd > 1 {
		wSimd = 1
	}
	return map[int]float64{baseIdx: 1 - wSimd, simdIdx: wSimd}
}

// scaleWeights multiplies every weight by f (composing sparseVector pairs
// into multi-region phases).
func scaleWeights(m map[int]float64, f float64) map[int]float64 {
	out := make(map[int]float64, len(m))
	for k, v := range m {
		out[k] = v * f
	}
	return out
}

// mergeWeights sums weight maps into one phase weight map.
func mergeWeights(ms ...map[int]float64) map[int]float64 {
	out := map[int]float64{}
	for _, m := range ms {
		for k, v := range m {
			out[k] += v
		}
	}
	return out
}

// Branch-density presets: SPEC averages about 1 branch in 20 instructions,
// mobile web browsing about 1 in 7 (Section III-B / V-E).
const (
	specBranchFrac   = 0.05
	mobileBranchFrac = 0.14
)

// easyBranches is a predictable server-code mix: strongly biased loop
// branches. The small predictor matches the tournament on these.
func easyBranches() []program.BranchModel {
	return []program.BranchModel{biased(0.97), biased(0.92), biased(0.04)}
}

// hardBranches is a mix only the tournament handles: history patterns and
// global correlation.
func hardBranches() []program.BranchModel {
	return []program.BranchModel{
		patterned("TTNTNNTT"),
		correlated(5),
		biased(0.9),
	}
}

// mediumBranches mixes a patterned branch into mostly biased ones: the
// tournament helps, moderately.
func mediumBranches() []program.BranchModel {
	return []program.BranchModel{
		patterned("TTTN"),
		biased(0.95),
		biased(0.88),
	}
}

// noisyBranches is data-dependent chaos: nobody predicts it, so the large
// BPU is non-critical despite a high mispredict rate.
func noisyBranches() []program.BranchModel {
	return []program.BranchModel{random(), noisyBiased(0.7, 0.1), random()}
}

// loopBranches is a numeric-kernel mix whose first (and often only
// instantiated) site is history-patterned, keeping the tournament
// predictor clearly ahead of the bimodal fallback.
func loopBranches() []program.BranchModel {
	return []program.BranchModel{patterned("TTTTTN"), biased(0.97)}
}
