package workload

import "powerchop/internal/program"

// MobileBench Realistic General Web Browsing (R-GWB) stand-ins: eight web
// sites rendered by the same browser engine, so the benchmarks share one
// phase vocabulary — layout, JavaScript, paint, scroll and image decode —
// and differ in how long each site spends in each phase.
//
// Calibration targets from the paper: branches are dense (≈1 in 7
// instructions); the VPU is gated ~90%+ on every mobile app; the BPU is
// gated ~40% of the time on average (the biased paint/scroll phases);
// the MLC is gated in some fashion ~20% of the time.

func init() {
	for _, site := range browserSites {
		site := site
		register(Benchmark{
			Name:   site.name,
			Suite:  MobileBench,
			Mobile: true,
			build:  func() (*program.Program, error) { return buildBrowser(site) },
		})
	}
}

// siteProfile gives one site's time split across the browser's phases, in
// execution windows.
type siteProfile struct {
	name string
	// Phase durations in windows.
	layout, script, paint, scroll, decode int
	// decodeVec is the image-decode phase's vector intensity; most sites
	// keep it below the criticality threshold (the paper gates the VPU
	// 90%+ on all mobile apps).
	decodeVec float64
}

// browserSites lists the R-GWB pages. Heavier pages (amazon, espn) spend
// longer scrolling and decoding — the phases whose units all gate — which
// is why the paper's largest mobile power reductions appear there.
var browserSites = []siteProfile{
	{name: "amazon", layout: 8, script: 8, paint: 12, scroll: 16, decode: 10, decodeVec: 0.003},
	{name: "bbc", layout: 10, script: 12, paint: 10, scroll: 10, decode: 8, decodeVec: 0.002},
	{name: "cnn", layout: 12, script: 14, paint: 8, scroll: 8, decode: 8, decodeVec: 0.002},
	{name: "craigslist", layout: 8, script: 6, paint: 8, scroll: 20, decode: 4, decodeVec: 0.001},
	{name: "ebay", layout: 10, script: 10, paint: 10, scroll: 12, decode: 8, decodeVec: 0.002},
	{name: "espn", layout: 8, script: 10, paint: 12, scroll: 12, decode: 12, decodeVec: 0.003},
	{name: "google", layout: 6, script: 14, paint: 8, scroll: 14, decode: 4, decodeVec: 0.001},
	{name: "msn", layout: 12, script: 12, paint: 12, scroll: 12, decode: 6, decodeVec: 0.002},
}

// buildBrowser constructs one site's guest program.
func buildBrowser(site siteProfile) (*program.Program, error) {
	b := program.NewBuilder(site.name, MobileBench, seedFor(site.name))

	// Layout: DOM/flexbox traversal — data-dependent but history-
	// correlated branches (tournament wins), working set beyond the L1.
	layout := sparseVector(b, regionOpts{
		name: "layout", insns: 34,
		branch: mobileBranchFrac, load: 0.20, store: 0.06,
		branches: []program.BranchModel{correlated(5), patterned("TTNTNN"), noisyBiased(0.85, 0.03)},
		streams:  []program.MemStream{resident(wsMLCSmall)},
	}, 0.001)
	// JavaScript: interpreter/JIT dispatch — pattern-heavy indirect
	// control (tournament wins), object heap in the MLC.
	script := sparseVector(b, regionOpts{
		name: "script", insns: 32,
		branch: 0.15, load: 0.18, store: 0.08,
		branches: hardBranches(),
		streams:  []program.MemStream{resident(wsMLC)},
	}, 0.001)
	// Paint: rasterization — span loops with patterned control (the
	// tournament predictor stays critical) streaming into the
	// framebuffer (the MLC does not help).
	paint := sparseVector(b, regionOpts{
		name: "paint", insns: 30,
		branch: 0.12, load: 0.18, store: 0.14,
		branches: mediumBranches(),
		streams:  []program.MemStream{streaming(wsHuge)},
	}, 0.001)
	// Scroll: compositing already-rendered layers — biased branches (the
	// small predictor suffices, so the BPU gates) over a tile cache that
	// lives in the MLC (the MLC stays on).
	scroll := addRegion(b, regionOpts{
		name: "scroll", insns: 28,
		branch: mobileBranchFrac, load: 0.16, store: 0.08,
		branches: []program.BranchModel{biased(0.98), biased(0.96), biased(0.03)},
		streams:  []program.MemStream{resident(wsMLCSmall)},
	})
	// Image decode: entropy decoding with sparse SIMD color transforms,
	// streaming the compressed input.
	decode := sparseVector(b, regionOpts{
		name: "decode", insns: 30,
		branch: 0.10, load: 0.22, store: 0.10,
		branches: []program.BranchModel{biased(0.98), biased(0.96)},
		streams:  []program.MemStream{streaming(wsHuge)},
	}, site.decodeVec)

	b.Phase("layout", w(site.layout), layout)
	b.Phase("script", w(site.script), script)
	b.Phase("paint", w(site.paint), paint)
	b.Phase("scroll", w(site.scroll), map[int]float64{scroll: 1})
	b.Phase("decode", w(site.decode), decode)
	// A second scroll period models the user returning to reading; it
	// recurs with the same signature as the first.
	b.Phase("scroll2", w(site.scroll/2+1), map[int]float64{scroll: 1})
	return b.Build()
}
