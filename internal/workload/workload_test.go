package workload

import (
	"testing"

	"powerchop/internal/isa"
)

func TestRegistryComplete(t *testing.T) {
	if got := len(All()); got != 29 {
		t.Fatalf("registry holds %d benchmarks, want the paper's 29", got)
	}
	wantCounts := map[string]int{
		SPECInt:     10,
		SPECFP:      6,
		PARSEC:      5,
		MobileBench: 8,
	}
	for suite, want := range wantCounts {
		if got := len(BySuite(suite)); got != want {
			t.Errorf("%s has %d benchmarks, want %d", suite, got, want)
		}
	}
}

func TestAllBenchmarksBuildAndValidate(t *testing.T) {
	for _, b := range All() {
		p, err := b.Build()
		if err != nil {
			t.Errorf("%s: %v", b.Name, err)
			continue
		}
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", b.Name, err)
		}
		if p.Name != b.Name || p.Suite != b.Suite {
			t.Errorf("%s: program labels %q/%q", b.Name, p.Name, p.Suite)
		}
		if p.TotalScheduleTranslations() < 20*windowTranslations {
			t.Errorf("%s: schedule of %d translations is too short for phase analysis",
				b.Name, p.TotalScheduleTranslations())
		}
	}
}

func TestBuildsAreDeterministic(t *testing.T) {
	for _, b := range All()[:5] {
		p1, p2 := b.MustBuild(), b.MustBuild()
		if len(p1.Regions) != len(p2.Regions) || p1.Seed != p2.Seed {
			t.Errorf("%s: non-deterministic build", b.Name)
		}
		for i := range p1.Regions {
			if len(p1.Regions[i].Body) != len(p2.Regions[i].Body) {
				t.Errorf("%s: region %d differs", b.Name, i)
			}
		}
	}
}

func TestByName(t *testing.T) {
	b, err := ByName("gobmk")
	if err != nil || b.Name != "gobmk" || b.Suite != SPECInt {
		t.Fatalf("ByName(gobmk) = %+v, %v", b, err)
	}
	if _, err := ByName("doom"); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestSuiteSplit(t *testing.T) {
	server := ServerSuite()
	if len(server) != 21 {
		t.Fatalf("server suite has %d benchmarks, want 21", len(server))
	}
	for _, b := range server {
		if b.Mobile {
			t.Errorf("%s marked mobile in server suite", b.Name)
		}
	}
	mobile := MobileSuite()
	if len(mobile) != 8 {
		t.Fatalf("mobile suite has %d benchmarks, want 8", len(mobile))
	}
	for _, b := range mobile {
		if !b.Mobile {
			t.Errorf("%s not marked mobile", b.Name)
		}
	}
}

func TestNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, n := range Names() {
		if seen[n] {
			t.Errorf("duplicate benchmark name %q", n)
		}
		seen[n] = true
	}
}

func TestSeedsDistinct(t *testing.T) {
	seen := map[uint64]string{}
	for _, b := range All() {
		p := b.MustBuild()
		if other, dup := seen[p.Seed]; dup {
			t.Errorf("%s and %s share seed %d", b.Name, other, p.Seed)
		}
		seen[p.Seed] = b.Name
	}
}

// branchDensity computes the static branch fraction of a benchmark,
// weighted by phase durations and region weights.
func branchDensity(t *testing.T, name string) float64 {
	t.Helper()
	b, err := ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	p := b.MustBuild()
	var weighted, total float64
	for _, ph := range p.Phases {
		var wsum float64
		for _, wt := range ph.Weights {
			wsum += wt
		}
		for ri, wt := range ph.Weights {
			if wt == 0 {
				continue
			}
			r := p.Regions[ri]
			branches := 0
			for _, inst := range r.Body {
				if inst.Kind == isa.Branch {
					branches++
				}
			}
			frac := float64(branches) / float64(len(r.Body))
			weighted += frac * float64(ph.Translations) * wt / wsum
			total += float64(ph.Translations) * wt / wsum
		}
	}
	return weighted / total
}

func TestMobileBranchDensityHigherThanSPEC(t *testing.T) {
	// Section III-B: branches are ~1 in 7 instructions for mobile
	// workloads vs ~1 in 20 for SPEC.
	mobile := branchDensity(t, "msn")
	spec := branchDensity(t, "bzip2")
	if mobile < 0.10 {
		t.Errorf("msn branch density %.3f, want >= 0.10 (~1 in 7)", mobile)
	}
	if spec > 0.08 {
		t.Errorf("bzip2 branch density %.3f, want <= 0.08 (~1 in 20)", spec)
	}
	if mobile < 2*spec {
		t.Errorf("mobile density %.3f not clearly above SPEC %.3f", mobile, spec)
	}
}

func TestVectorIntensityShapes(t *testing.T) {
	// namd must issue vector ops sparsely in every phase (<= threshold),
	// while milc's main phases must be clearly vector-critical.
	vecFrac := func(name string, phaseIdx int) float64 {
		b, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		p := b.MustBuild()
		ph := p.Phases[phaseIdx]
		var vecs, insns float64
		for ri, wt := range ph.Weights {
			if wt == 0 {
				continue
			}
			for _, inst := range p.Regions[ri].Body {
				insns += wt
				if inst.Kind == isa.Vector {
					vecs += wt
				}
			}
		}
		return vecs / insns
	}
	for i := 0; i < 2; i++ {
		if f := vecFrac("namd", i); f == 0 || f > 0.005 {
			t.Errorf("namd phase %d vector fraction %.4f, want sparse nonzero <= 0.005", i, f)
		}
		if f := vecFrac("milc", i); f < 0.02 {
			t.Errorf("milc phase %d vector fraction %.4f, want >= 0.02", i, f)
		}
	}
}

func TestSortedCopyDoesNotMutate(t *testing.T) {
	all := All()
	first := all[0].Name
	sorted := sortedCopy(all)
	if all[0].Name != first {
		t.Fatal("sortedCopy mutated the registry order")
	}
	for i := 1; i < len(sorted); i++ {
		if sorted[i-1].Name > sorted[i].Name {
			t.Fatal("sortedCopy not sorted")
		}
	}
}

func TestGobmkHasVaryingVectorIntensity(t *testing.T) {
	// Figure 1's premise: gobmk's vector intensity varies across phases.
	b, err := ByName("gobmk")
	if err != nil {
		t.Fatal(err)
	}
	p := b.MustBuild()
	fracs := map[float64]bool{}
	for _, r := range p.Regions {
		vecs := 0
		for _, inst := range r.Body {
			if inst.Kind == isa.Vector {
				vecs++
			}
		}
		fracs[float64(vecs)/float64(len(r.Body))] = true
	}
	if len(fracs) < 3 {
		t.Fatalf("gobmk regions expose %d distinct vector intensities, want >= 3", len(fracs))
	}
}
