package workload

import "powerchop/internal/program"

// SPEC CPU2006 stand-ins. Each benchmark's phase structure and behaviour
// models are calibrated to the properties the paper reports or that its
// figures rely on; the comments on each builder note the targets.

func init() {
	// SPEC-INT
	register(Benchmark{Name: "perlbench", Suite: SPECInt, build: buildPerlbench})
	register(Benchmark{Name: "bzip2", Suite: SPECInt, build: buildBzip2})
	register(Benchmark{Name: "gcc", Suite: SPECInt, build: buildGCC})
	register(Benchmark{Name: "mcf", Suite: SPECInt, build: buildMCF})
	register(Benchmark{Name: "gobmk", Suite: SPECInt, build: buildGobmk})
	register(Benchmark{Name: "hmmer", Suite: SPECInt, build: buildHmmer})
	register(Benchmark{Name: "sjeng", Suite: SPECInt, build: buildSjeng})
	register(Benchmark{Name: "libquantum", Suite: SPECInt, build: buildLibquantum})
	register(Benchmark{Name: "h264ref", Suite: SPECInt, build: buildH264ref})
	register(Benchmark{Name: "astar", Suite: SPECInt, build: buildAstar})
	// SPEC-FP
	register(Benchmark{Name: "milc", Suite: SPECFP, build: buildMilc})
	register(Benchmark{Name: "namd", Suite: SPECFP, build: buildNamd})
	register(Benchmark{Name: "soplex", Suite: SPECFP, build: buildSoplex})
	register(Benchmark{Name: "GemsFDTD", Suite: SPECFP, build: buildGemsFDTD})
	register(Benchmark{Name: "lbm", Suite: SPECFP, build: buildLbm})
	register(Benchmark{Name: "sphinx3", Suite: SPECFP, build: buildSphinx3})
}

// buildPerlbench models an interpreter: indirect-control-heavy code with
// occasional, uniformly sparse vector use (one of Figure 16's examples of
// PowerChop beating the timeout) and small working sets.
func buildPerlbench() (*program.Program, error) {
	b := program.NewBuilder("perlbench", SPECInt, seedFor("perlbench"))
	interp := sparseVector(b, regionOpts{
		name: "interp-loop", insns: 36,
		branch: 0.08, load: 0.18, store: 0.06,
		branches: hardBranches(),
		streams:  []program.MemStream{resident(wsL1)},
	}, 0.001)
	regex := sparseVector(b, regionOpts{
		name: "regex-engine", insns: 30,
		branch: 0.10, load: 0.15, store: 0.04,
		branches: []program.BranchModel{patterned("TTNN"), correlated(4), biased(0.9)},
		streams:  []program.MemStream{resident(wsL1Spill)},
	}, 0.001)
	gc := sparseVector(b, regionOpts{
		name: "gc-sweep", insns: 28,
		branch: 0.05, load: 0.25, store: 0.10,
		branches: easyBranches(),
		streams:  []program.MemStream{resident(wsMLC)},
	}, 0.001)
	b.Phase("interp", w(30), interp)
	b.Phase("regex", w(20), regex)
	b.Phase("gc", w(10), gc)
	return b.Build()
}

// buildBzip2 models block compression: a cache-resident sort phase where
// the MLC is critical and an L1-resident decode phase where it is not.
func buildBzip2() (*program.Program, error) {
	b := program.NewBuilder("bzip2", SPECInt, seedFor("bzip2"))
	compress := addRegion(b, regionOpts{
		name: "block-sort", insns: 32,
		branch: specBranchFrac, load: 0.28, store: 0.08,
		branches: mediumBranches(),
		streams:  []program.MemStream{resident(wsMLC)},
	})
	decompress := addRegion(b, regionOpts{
		name: "decode", insns: 30,
		branch: 0.07, load: 0.20, store: 0.08,
		branches: easyBranches(),
		streams:  []program.MemStream{resident(wsL1)},
	})
	io := addRegion(b, regionOpts{
		name: "io-buffer", insns: 26,
		branch: 0.04, load: 0.22, store: 0.12,
		branches: easyBranches(),
		streams:  []program.MemStream{resident(wsL1Spill)},
	})
	b.Phase("compress", w(28), map[int]float64{compress: 1})
	b.Phase("decompress", w(20), map[int]float64{decompress: 1})
	b.Phase("io", w(8), map[int]float64{io: 1})
	return b.Build()
}

// buildGCC models a compiler: many small-footprint passes plus a streaming
// IR sweep, leaving the MLC non-critical most of the time (the paper
// way-gates gcc's MLC to one way over 40% of cycles).
func buildGCC() (*program.Program, error) {
	b := program.NewBuilder("gcc", SPECInt, seedFor("gcc"))
	parse := addRegion(b, regionOpts{
		name: "parse", insns: 34,
		branch: 0.09, load: 0.18, store: 0.06,
		branches: hardBranches(),
		streams:  []program.MemStream{resident(wsL1)},
	})
	irSweep := addRegion(b, regionOpts{
		name: "ir-sweep", insns: 30,
		branch: 0.05, load: 0.26, store: 0.10,
		branches: easyBranches(),
		streams:  []program.MemStream{streaming(wsHuge)},
	})
	regalloc := addRegion(b, regionOpts{
		name: "regalloc", insns: 32,
		branch: 0.07, load: 0.22, store: 0.06,
		branches: mediumBranches(),
		streams:  []program.MemStream{resident(wsMLCSmall)},
	})
	codegen := addRegion(b, regionOpts{
		name: "codegen", insns: 30,
		branch: 0.06, load: 0.16, store: 0.10,
		branches: mediumBranches(),
		streams:  []program.MemStream{resident(wsL1Spill)},
	})
	b.Phase("parse", w(18), map[int]float64{parse: 1})
	b.Phase("ir-sweep", w(24), map[int]float64{irSweep: 1})
	b.Phase("regalloc", w(10), map[int]float64{regalloc: 1})
	b.Phase("codegen", w(10), map[int]float64{codegen: 1})
	return b.Build()
}

// buildMCF models network-flow pointer chasing: a large reuse working set
// that keeps the MLC critical nearly all of the time.
func buildMCF() (*program.Program, error) {
	b := program.NewBuilder("mcf", SPECInt, seedFor("mcf"))
	chase := addRegion(b, regionOpts{
		name: "arc-chase", insns: 30,
		branch: 0.06, load: 0.34, store: 0.04,
		branches: []program.BranchModel{correlated(3), noisyBiased(0.8, 0.05), biased(0.9)},
		streams:  []program.MemStream{resident(wsMLC)},
	})
	refine := addRegion(b, regionOpts{
		name: "price-refine", insns: 28,
		branch: specBranchFrac, load: 0.20, store: 0.06,
		branches: easyBranches(),
		streams:  []program.MemStream{resident(wsL1)},
	})
	b.Phase("simplex", w(44), map[int]float64{chase: 1})
	b.Phase("refine", w(10), map[int]float64{refine: 1})
	return b.Build()
}

// buildGobmk models Go move generation, the paper's Figure 1 benchmark:
// vector-operation intensity varies across phases, including periods where
// vector ops are "scarce but nonzero", with hard-to-predict search
// branches keeping the BPU critical.
func buildGobmk() (*program.Program, error) {
	b := program.NewBuilder("gobmk", SPECInt, seedFor("gobmk"))
	search := addRegion(b, regionOpts{
		name: "tree-search", insns: 34,
		vec: 0, branch: 0.09, load: 0.16, store: 0.05,
		branches: hardBranches(),
		streams:  []program.MemStream{resident(wsL1)},
	})
	pattern := sparseVector(b, regionOpts{
		name: "pattern-match", insns: 32,
		branch: 0.07, load: 0.18, store: 0.04,
		branches: mediumBranches(),
		streams:  []program.MemStream{resident(wsL1)},
	}, 0.012)
	eval := sparseVector(b, regionOpts{
		name: "board-eval", insns: 30,
		branch: 0.08, load: 0.15, store: 0.05,
		branches: hardBranches(),
		streams:  []program.MemStream{resident(wsL1Spill)},
	}, 0.003)
	b.Phase("search", w(20), map[int]float64{search: 1})
	b.Phase("pattern", w(12), pattern)
	b.Phase("eval", w(14), eval)
	b.Phase("search2", w(16), mergeWeights(map[int]float64{search: 0.8}, scaleWeights(eval, 0.2)))
	return b.Build()
}

// buildHmmer models profile HMM search: extremely well-predicted inner
// loops, so the large BPU provides no benefit and is gated a significant
// fraction of execution (one of the paper's named exceptions).
func buildHmmer() (*program.Program, error) {
	b := program.NewBuilder("hmmer", SPECInt, seedFor("hmmer"))
	viterbi := sparseVector(b, regionOpts{
		name: "viterbi", insns: 36,
		branch: 0.04, load: 0.24, store: 0.08,
		branches: []program.BranchModel{biased(0.99), biased(0.97)},
		streams:  []program.MemStream{resident(wsMLCSmall)},
	}, 0.002)
	post := addRegion(b, regionOpts{
		name: "posterior", insns: 30,
		branch: 0.04, load: 0.20, store: 0.06,
		branches: []program.BranchModel{biased(0.98), biased(0.95)},
		streams:  []program.MemStream{resident(wsL1)},
	})
	b.Phase("viterbi", w(40), viterbi)
	b.Phase("posterior", w(14), map[int]float64{post: 1})
	return b.Build()
}

// buildSjeng models chess search: branchy, history-correlated control flow
// (BPU critical) over small working sets (MLC non-critical).
func buildSjeng() (*program.Program, error) {
	b := program.NewBuilder("sjeng", SPECInt, seedFor("sjeng"))
	search := addRegion(b, regionOpts{
		name: "alphabeta", insns: 34,
		branch: 0.10, load: 0.14, store: 0.04,
		branches: hardBranches(),
		streams:  []program.MemStream{resident(wsL1)},
	})
	quiesce := addRegion(b, regionOpts{
		name: "quiesce", insns: 30,
		branch: 0.09, load: 0.12, store: 0.04,
		branches: mediumBranches(),
		streams:  []program.MemStream{resident(wsL1)},
	})
	b.Phase("search", w(34), map[int]float64{search: 1})
	b.Phase("quiesce", w(18), map[int]float64{quiesce: 1})
	return b.Build()
}

// buildLibquantum models quantum-register simulation: a long streaming
// sweep over a huge array, so the MLC is one-way gated most of the run.
func buildLibquantum() (*program.Program, error) {
	b := program.NewBuilder("libquantum", SPECInt, seedFor("libquantum"))
	gates := addRegion(b, regionOpts{
		name: "gate-sweep", insns: 30,
		branch: 0.04, load: 0.26, store: 0.12,
		branches: []program.BranchModel{biased(0.98)},
		streams:  []program.MemStream{streaming(wsHuge)},
	})
	measure := addRegion(b, regionOpts{
		name: "measure", insns: 28,
		branch: specBranchFrac, load: 0.18, store: 0.04,
		branches: easyBranches(),
		streams:  []program.MemStream{resident(wsL1)},
	})
	b.Phase("gates", w(42), map[int]float64{gates: 1})
	b.Phase("measure", w(10), map[int]float64{measure: 1})
	return b.Build()
}

// buildH264ref models video encoding: motion estimation uses real vector
// work, while the remaining phases issue vector ops sparsely and uniformly
// — the pattern that defeats idle timeouts but not PowerChop (Figure 16
// names h264 as a dramatic win).
func buildH264ref() (*program.Program, error) {
	b := program.NewBuilder("h264ref", SPECInt, seedFor("h264ref"))
	motion := addRegion(b, regionOpts{
		name: "motion-est", insns: 34,
		vec: 0.03, branch: 0.06, load: 0.22, store: 0.06,
		branches: mediumBranches(),
		streams:  []program.MemStream{resident(wsL1Spill)},
	})
	transform := sparseVector(b, regionOpts{
		name: "transform", insns: 30,
		branch: specBranchFrac, load: 0.18, store: 0.08,
		branches: easyBranches(),
		streams:  []program.MemStream{resident(wsL1)},
	}, 0.004)
	deblock := sparseVector(b, regionOpts{
		name: "deblock", insns: 28,
		branch: 0.07, load: 0.20, store: 0.10,
		branches: mediumBranches(),
		streams:  []program.MemStream{resident(wsL1Spill)},
	}, 0.001)
	b.Phase("motion", w(13), map[int]float64{motion: 1})
	b.Phase("transform", w(25), transform)
	b.Phase("deblock", w(16), deblock)
	return b.Build()
}

// buildAstar models pathfinding: correlated branch decisions (BPU
// critical) over a medium reuse working set.
func buildAstar() (*program.Program, error) {
	b := program.NewBuilder("astar", SPECInt, seedFor("astar"))
	path := addRegion(b, regionOpts{
		name: "way-search", insns: 32,
		branch: 0.08, load: 0.24, store: 0.05,
		branches: []program.BranchModel{correlated(4), noisyBiased(0.85, 0.05), patterned("TTNTTN")},
		streams:  []program.MemStream{resident(wsMLCSmall)},
	})
	rebuild := addRegion(b, regionOpts{
		name: "heap-rebuild", insns: 28,
		branch: 0.07, load: 0.20, store: 0.08,
		branches: mediumBranches(),
		streams:  []program.MemStream{resident(wsL1Spill)},
	})
	b.Phase("search", w(36), map[int]float64{path: 1})
	b.Phase("rebuild", w(14), map[int]float64{rebuild: 1})
	return b.Build()
}

// buildMilc models lattice QCD: heavily vectorized streaming sweeps.
// The VPU stays critical while the MLC sees a pure streaming pattern
// (one-way gated over 40% of cycles) and branches are trivially
// predictable, so milc earns one of the paper's largest power reductions.
func buildMilc() (*program.Program, error) {
	b := program.NewBuilder("milc", SPECFP, seedFor("milc"))
	su3 := addRegion(b, regionOpts{
		name: "su3-mult", insns: 36,
		vec: 0.10, branch: 0.03, load: 0.26, store: 0.10,
		branches: loopBranches(),
		streams:  []program.MemStream{streaming(wsHuge)},
	})
	gauge := addRegion(b, regionOpts{
		name: "gauge-force", insns: 32,
		vec: 0.06, branch: 0.03, load: 0.24, store: 0.10,
		branches: loopBranches(),
		streams:  []program.MemStream{streaming(wsHuge)},
	})
	io := addRegion(b, regionOpts{
		name: "checkpoint", insns: 28,
		branch: 0.04, load: 0.20, store: 0.08,
		branches: easyBranches(),
		streams:  []program.MemStream{resident(wsL1)},
	})
	b.Phase("su3", w(36), map[int]float64{su3: 1})
	b.Phase("gauge", w(14), map[int]float64{gauge: 1})
	b.Phase("io", w(6), map[int]float64{io: 1})
	return b.Build()
}

// buildNamd models molecular dynamics as the paper found it: a small
// number of vector operations distributed nearly uniformly through
// execution, which keeps a timeout-gated VPU on for the whole run while
// PowerChop gates it off almost everywhere (Figures 15 and 16).
func buildNamd() (*program.Program, error) {
	b := program.NewBuilder("namd", SPECFP, seedFor("namd"))
	forces := sparseVector(b, regionOpts{
		name: "pair-forces", insns: 36,
		branch: 0.03, load: 0.22, store: 0.08,
		branches: loopBranches(),
		streams:  []program.MemStream{resident(wsL1)},
	}, 0.002)
	integrate := sparseVector(b, regionOpts{
		name: "integrate", insns: 30,
		branch: 0.03, load: 0.18, store: 0.10,
		branches: loopBranches(),
		streams:  []program.MemStream{resident(wsL1)},
	}, 0.002)
	b.Phase("forces", w(40), forces)
	b.Phase("integrate", w(14), integrate)
	return b.Build()
}

// buildSoplex models an LP solver: genuinely vector-critical numeric
// phases with a scalar presolve, so PowerChop gates the VPU only about a
// fifth of the run (the paper reports ~20% for soplex).
func buildSoplex() (*program.Program, error) {
	b := program.NewBuilder("soplex", SPECFP, seedFor("soplex"))
	factor := addRegion(b, regionOpts{
		name: "factorize", insns: 34,
		vec: 0.05, branch: 0.04, load: 0.26, store: 0.08,
		branches: mediumBranches(),
		streams:  []program.MemStream{resident(wsMLC)},
	})
	solve := addRegion(b, regionOpts{
		name: "price-solve", insns: 32,
		vec: 0.035, branch: 0.05, load: 0.24, store: 0.06,
		branches: mediumBranches(),
		streams:  []program.MemStream{resident(wsMLCSmall)},
	})
	presolve := sparseVector(b, regionOpts{
		name: "presolve", insns: 28,
		branch: 0.06, load: 0.18, store: 0.06,
		branches: easyBranches(),
		streams:  []program.MemStream{resident(wsL1Spill)},
	}, 0.0005)
	b.Phase("factor", w(24), map[int]float64{factor: 1})
	b.Phase("solve", w(20), map[int]float64{solve: 1})
	b.Phase("presolve", w(12), presolve)
	return b.Build()
}

// buildGemsFDTD models the finite-difference time-domain solver of the
// paper's Figure 3: one phase whose working set needs the full MLC, one
// that lives in the L1, and one that streams from memory — the full MLC
// only matters in the first.
func buildGemsFDTD() (*program.Program, error) {
	b := program.NewBuilder("GemsFDTD", SPECFP, seedFor("GemsFDTD"))
	updateH := addRegion(b, regionOpts{
		name: "update-H", insns: 34,
		vec: 0.05, branch: 0.03, load: 0.28, store: 0.10,
		branches: loopBranches(),
		streams:  []program.MemStream{resident(wsMLC)},
	})
	updateE := addRegion(b, regionOpts{
		name: "update-E", insns: 32,
		vec: 0.05, branch: 0.03, load: 0.26, store: 0.10,
		branches: loopBranches(),
		streams:  []program.MemStream{resident(wsL1)},
	})
	pml := addRegion(b, regionOpts{
		name: "pml-sweep", insns: 30,
		vec: 0.03, branch: 0.03, load: 0.28, store: 0.12,
		branches: loopBranches(),
		streams:  []program.MemStream{streaming(wsHuge)},
	})
	b.Phase("update-H", w(20), map[int]float64{updateH: 1})
	b.Phase("update-E", w(18), map[int]float64{updateE: 1})
	b.Phase("pml", w(24), map[int]float64{pml: 1})
	return b.Build()
}

// buildLbm models the lattice-Boltzmann kernel: one huge streaming sweep
// with near-perfectly-predicted branches — both the MLC and the large BPU
// are non-critical (the paper names lbm for significant BPU gating and up
// to 40% power reduction).
func buildLbm() (*program.Program, error) {
	b := program.NewBuilder("lbm", SPECFP, seedFor("lbm"))
	streamCollide := addRegion(b, regionOpts{
		name: "stream-collide", insns: 36,
		vec: 0.06, branch: 0.02, load: 0.28, store: 0.14,
		branches: []program.BranchModel{biased(0.995)},
		streams:  []program.MemStream{streaming(wsHuge)},
	})
	boundary := addRegion(b, regionOpts{
		name: "boundary", insns: 28,
		branch: 0.04, load: 0.20, store: 0.08,
		branches: []program.BranchModel{biased(0.97), biased(0.9)},
		streams:  []program.MemStream{resident(wsL1)},
	})
	b.Phase("stream-collide", w(46), map[int]float64{streamCollide: 1})
	b.Phase("boundary", w(8), map[int]float64{boundary: 1})
	return b.Build()
}

// buildSphinx3 models speech recognition: vector-critical acoustic scoring
// dominates, with a short scalar search phase, leaving the VPU gated only
// ~20% of the run (as the paper reports for sphinx).
func buildSphinx3() (*program.Program, error) {
	b := program.NewBuilder("sphinx3", SPECFP, seedFor("sphinx3"))
	gmm := addRegion(b, regionOpts{
		name: "gmm-score", insns: 34,
		vec: 0.05, branch: 0.04, load: 0.26, store: 0.06,
		branches: mediumBranches(),
		streams:  []program.MemStream{resident(wsMLCSmall)},
	})
	search := sparseVector(b, regionOpts{
		name: "lattice-search", insns: 30,
		branch: 0.08, load: 0.18, store: 0.05,
		branches: hardBranches(),
		streams:  []program.MemStream{resident(wsL1)},
	}, 0.0008)
	b.Phase("gmm", w(38), map[int]float64{gmm: 1})
	b.Phase("search", w(11), search)
	return b.Build()
}
