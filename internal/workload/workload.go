// Package workload defines the simulator's benchmark suites: synthetic
// stand-ins for the 29 applications of the paper's evaluation (SPEC
// CPU2006, PARSEC, and MobileBench's Realistic General Web Browsing set).
//
// The real benchmark binaries, their inputs, and the Android browser stack
// are not reproducible here, so each benchmark is a generated guest
// program calibrated to the application properties that drive PowerChop's
// results (Figures 1-3):
//
//   - vector-operation intensity and its phase structure (VPU criticality),
//   - branch predictability mix — biased/random branches that a small
//     bimodal predictor handles vs patterned/correlated branches that need
//     the tournament predictor (BPU criticality),
//   - working-set size relative to the L1 and the MLC, and streaming vs
//     reuse access patterns (MLC criticality),
//   - the mobile suite's higher branch density (≈1 branch per 7
//     instructions vs ≈1 per 20 for SPEC, Section III-B).
//
// Phase durations are expressed in execution windows of 1000 translations
// (the paper's window size) so that each phase spans tens of windows, as
// the applications' phases do at the paper's scale.
package workload

import (
	"fmt"
	"sort"

	"powerchop/internal/program"
)

// Suite names.
const (
	SPECInt     = "SPEC-INT"
	SPECFP      = "SPEC-FP"
	PARSEC      = "PARSEC"
	MobileBench = "MobileBench"
)

// Benchmark is a named, lazily-built guest program.
type Benchmark struct {
	// Name is the benchmark name as the paper uses it (e.g. "gobmk").
	Name string
	// Suite is the owning suite.
	Suite string
	// Mobile reports whether the benchmark targets the mobile design
	// point (MobileBench) rather than the server one.
	Mobile bool
	// build constructs the program.
	build func() (*program.Program, error)
}

// Build constructs the benchmark's guest program. Programs are
// deterministic: every call returns an identical program.
func (b Benchmark) Build() (*program.Program, error) {
	p, err := b.build()
	if err != nil {
		return nil, fmt.Errorf("workload %s: %w", b.Name, err)
	}
	return p, nil
}

// MustBuild is a helper for tests, examples and benchmarks.
func (b Benchmark) MustBuild() *program.Program {
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return p
}

// registry holds all benchmarks in definition order.
var registry []Benchmark

func register(b Benchmark) {
	registry = append(registry, b)
}

// All returns every benchmark, SPEC-INT first, then SPEC-FP, PARSEC and
// MobileBench, in the paper's listing order.
func All() []Benchmark {
	return append([]Benchmark(nil), registry...)
}

// BySuite returns the benchmarks of one suite.
func BySuite(suite string) []Benchmark {
	var out []Benchmark
	for _, b := range registry {
		if b.Suite == suite {
			out = append(out, b)
		}
	}
	return out
}

// ByName returns the named benchmark.
func ByName(name string) (Benchmark, error) {
	for _, b := range registry {
		if b.Name == name {
			return b, nil
		}
	}
	return Benchmark{}, fmt.Errorf("workload: unknown benchmark %q", name)
}

// Names returns all benchmark names in registry order.
func Names() []string {
	out := make([]string, len(registry))
	for i, b := range registry {
		out[i] = b.Name
	}
	return out
}

// Suites returns the suite names in canonical order.
func Suites() []string {
	return []string{SPECInt, SPECFP, PARSEC, MobileBench}
}

// ServerSuite returns the benchmarks evaluated on the server design point
// (SPEC CPU2006 and PARSEC).
func ServerSuite() []Benchmark {
	return append(BySuite(SPECInt), append(BySuite(SPECFP), BySuite(PARSEC)...)...)
}

// MobileSuite returns the benchmarks evaluated on the mobile design point.
func MobileSuite() []Benchmark { return BySuite(MobileBench) }

// seedFor derives a stable per-benchmark seed from its name.
func seedFor(name string) uint64 {
	var h uint64 = 1469598103934665603 // FNV-1a
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return h
}

// sortedCopy returns benchmarks sorted by name (reporting helpers).
func sortedCopy(bs []Benchmark) []Benchmark {
	out := append([]Benchmark(nil), bs...)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
