// Package stats provides the small statistical helpers used by the
// simulator and the experiment harness: means, geometric means, Manhattan
// distance between translation vectors, histograms and down-sampled time
// series for figure output.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// GeoMean returns the geometric mean of xs, or 0 for an empty slice.
// Non-positive entries are clamped to a tiny positive value so that a
// single zero (e.g. a 100% reduction) does not collapse the mean to zero.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	const tiny = 1e-12
	sum := 0.0
	for _, x := range xs {
		if x < tiny {
			x = tiny
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// Min returns the minimum of xs, or 0 for an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs, or 0 for an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

// Median returns the median of xs, or 0 for an empty slice.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	c := append([]float64(nil), xs...)
	sort.Float64s(c)
	n := len(c)
	if n%2 == 1 {
		return c[n/2]
	}
	return (c[n/2-1] + c[n/2]) / 2
}

// Stddev returns the population standard deviation of xs.
func Stddev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	sum := 0.0
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(xs)))
}

// Manhattan returns the Manhattan (L1) distance between two sparse count
// vectors keyed by translation ID. Keys missing from one vector count as
// zero, matching the paper's translation-vector comparison (Section V-B).
func Manhattan(a, b map[uint32]uint64) uint64 {
	var dist uint64
	for k, av := range a {
		bv := b[k]
		if av >= bv {
			dist += av - bv
		} else {
			dist += bv - av
		}
	}
	for k, bv := range b {
		if _, ok := a[k]; !ok {
			dist += bv
		}
	}
	return dist
}

// Histogram counts values into fixed-width buckets over [lo, hi). Values
// outside the range are clamped into the first/last bucket.
type Histogram struct {
	Lo, Hi  float64
	Buckets []uint64
}

// NewHistogram returns a histogram with n buckets over [lo, hi).
// It panics if n <= 0 or hi <= lo.
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n <= 0 {
		panic("stats: histogram needs at least one bucket")
	}
	if hi <= lo {
		panic("stats: histogram range is empty")
	}
	return &Histogram{Lo: lo, Hi: hi, Buckets: make([]uint64, n)}
}

// Add records a single observation.
func (h *Histogram) Add(x float64) {
	n := len(h.Buckets)
	i := int(float64(n) * (x - h.Lo) / (h.Hi - h.Lo))
	if i < 0 {
		i = 0
	}
	if i >= n {
		i = n - 1
	}
	h.Buckets[i]++
}

// Total returns the number of recorded observations.
func (h *Histogram) Total() uint64 {
	var t uint64
	for _, b := range h.Buckets {
		t += b
	}
	return t
}

// Fraction returns the fraction of observations in bucket i.
func (h *Histogram) Fraction(i int) float64 {
	t := h.Total()
	if t == 0 {
		return 0
	}
	return float64(h.Buckets[i]) / float64(t)
}

// Series is an append-only time series with a label, used to carry
// per-interval measurements (e.g. IPC per 10K instructions) to the
// figure renderers.
type Series struct {
	Label  string
	Values []float64
}

// Append adds a sample to the series.
func (s *Series) Append(v float64) { s.Values = append(s.Values, v) }

// Downsample returns a series of at most n points, each the mean of an
// equal-length chunk of the original. It returns the series unchanged if
// it already has at most n points.
func (s *Series) Downsample(n int) *Series {
	if n <= 0 || len(s.Values) <= n {
		return s
	}
	out := &Series{Label: s.Label}
	chunk := float64(len(s.Values)) / float64(n)
	for i := 0; i < n; i++ {
		lo := int(float64(i) * chunk)
		hi := int(float64(i+1) * chunk)
		if hi > len(s.Values) {
			hi = len(s.Values)
		}
		if hi <= lo {
			hi = lo + 1
		}
		out.Append(Mean(s.Values[lo:hi]))
	}
	return out
}

// Ratio formats a/b as a percentage string, guarding against b == 0.
func Ratio(a, b float64) string {
	if b == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.1f%%", 100*a/b)
}
