package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMean(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{5}, 5},
		{[]float64{1, 2, 3}, 2},
		{[]float64{-1, 1}, 0},
	}
	for _, c := range cases {
		if got := Mean(c.in); !almost(got, c.want) {
			t.Errorf("Mean(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{1, 4}); !almost(got, 2) {
		t.Errorf("GeoMean(1,4) = %v, want 2", got)
	}
	if got := GeoMean(nil); got != 0 {
		t.Errorf("GeoMean(nil) = %v, want 0", got)
	}
	// A zero entry must not collapse the mean to exactly zero.
	if got := GeoMean([]float64{0, 1, 1}); got <= 0 {
		t.Errorf("GeoMean with zero entry = %v, want > 0", got)
	}
}

func TestMinMaxSum(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	if got := Min(xs); got != -1 {
		t.Errorf("Min = %v", got)
	}
	if got := Max(xs); got != 7 {
		t.Errorf("Max = %v", got)
	}
	if got := Sum(xs); got != 11 {
		t.Errorf("Sum = %v", got)
	}
	if Min(nil) != 0 || Max(nil) != 0 || Sum(nil) != 0 {
		t.Error("empty-slice helpers should return 0")
	}
}

func TestMedian(t *testing.T) {
	if got := Median([]float64{3, 1, 2}); !almost(got, 2) {
		t.Errorf("odd Median = %v", got)
	}
	if got := Median([]float64{4, 1, 2, 3}); !almost(got, 2.5) {
		t.Errorf("even Median = %v", got)
	}
	if got := Median(nil); got != 0 {
		t.Errorf("Median(nil) = %v", got)
	}
	// Median must not reorder its input.
	in := []float64{9, 1, 5}
	Median(in)
	if in[0] != 9 || in[1] != 1 || in[2] != 5 {
		t.Error("Median mutated its input")
	}
}

func TestStddev(t *testing.T) {
	if got := Stddev([]float64{2, 2, 2}); !almost(got, 0) {
		t.Errorf("Stddev of constants = %v", got)
	}
	if got := Stddev([]float64{1, 3}); !almost(got, 1) {
		t.Errorf("Stddev(1,3) = %v, want 1", got)
	}
	if got := Stddev([]float64{5}); got != 0 {
		t.Errorf("Stddev of single value = %v", got)
	}
}

func TestManhattan(t *testing.T) {
	a := map[uint32]uint64{1: 10, 2: 5}
	b := map[uint32]uint64{1: 7, 3: 4}
	// |10-7| + |5-0| + |0-4| = 12
	if got := Manhattan(a, b); got != 12 {
		t.Errorf("Manhattan = %d, want 12", got)
	}
	if got := Manhattan(a, a); got != 0 {
		t.Errorf("Manhattan(a,a) = %d, want 0", got)
	}
	if got := Manhattan(nil, b); got != 11 {
		t.Errorf("Manhattan(nil,b) = %d, want 11", got)
	}
}

func TestManhattanSymmetric(t *testing.T) {
	f := func(ka, va, kb, vb []uint8) bool {
		a := map[uint32]uint64{}
		b := map[uint32]uint64{}
		for i := range ka {
			if i < len(va) {
				a[uint32(ka[i]%8)] += uint64(va[i])
			}
		}
		for i := range kb {
			if i < len(vb) {
				b[uint32(kb[i]%8)] += uint64(vb[i])
			}
		}
		return Manhattan(a, b) == Manhattan(b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestManhattanTriangle(t *testing.T) {
	f := func(va, vb, vc [6]uint8) bool {
		mk := func(v [6]uint8) map[uint32]uint64 {
			m := map[uint32]uint64{}
			for i, x := range v {
				if x > 0 {
					m[uint32(i)] = uint64(x)
				}
			}
			return m
		}
		a, b, c := mk(va), mk(vb), mk(vc)
		return Manhattan(a, c) <= Manhattan(a, b)+Manhattan(b, c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, v := range []float64{-1, 0, 1.9, 2, 9.9, 10, 100} {
		h.Add(v)
	}
	if got := h.Total(); got != 7 {
		t.Fatalf("Total = %d", got)
	}
	// buckets: [-1,0,1.9]→b0, [2]→b1, [9.9,10,100]→b4
	want := []uint64{3, 1, 0, 0, 3}
	for i, w := range want {
		if h.Buckets[i] != w {
			t.Errorf("bucket %d = %d, want %d", i, h.Buckets[i], w)
		}
	}
	if got := h.Fraction(0); !almost(got, 3.0/7.0) {
		t.Errorf("Fraction(0) = %v", got)
	}
}

func TestHistogramPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { NewHistogram(0, 1, 0) },
		func() { NewHistogram(1, 1, 4) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestHistogramEmptyFraction(t *testing.T) {
	h := NewHistogram(0, 1, 2)
	if got := h.Fraction(0); got != 0 {
		t.Errorf("Fraction on empty histogram = %v", got)
	}
}

func TestSeriesDownsample(t *testing.T) {
	s := &Series{Label: "x"}
	for i := 0; i < 100; i++ {
		s.Append(float64(i))
	}
	d := s.Downsample(10)
	if len(d.Values) != 10 {
		t.Fatalf("Downsample len = %d", len(d.Values))
	}
	if d.Label != "x" {
		t.Errorf("Downsample dropped label")
	}
	// Each chunk of 10 consecutive ints 10k..10k+9 has mean 10k+4.5.
	for i, v := range d.Values {
		if !almost(v, float64(10*i)+4.5) {
			t.Errorf("chunk %d mean = %v", i, v)
		}
	}
	// No-op cases.
	if got := s.Downsample(1000); got != s {
		t.Error("Downsample should return receiver when already small enough")
	}
	if got := s.Downsample(0); got != s {
		t.Error("Downsample(0) should be a no-op")
	}
}

func TestRatio(t *testing.T) {
	if got := Ratio(1, 2); got != "50.0%" {
		t.Errorf("Ratio = %q", got)
	}
	if got := Ratio(1, 0); got != "n/a" {
		t.Errorf("Ratio div-zero = %q", got)
	}
}
