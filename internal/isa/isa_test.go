package isa

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		Scalar: "scalar",
		Vector: "vector",
		Branch: "branch",
		Load:   "load",
		Store:  "store",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
	if got := Kind(99).String(); !strings.Contains(got, "99") {
		t.Errorf("unknown kind string = %q", got)
	}
}

func TestKindValid(t *testing.T) {
	for k := Kind(0); k < Kind(NumKinds); k++ {
		if !k.Valid() {
			t.Errorf("Kind %v should be valid", k)
		}
	}
	if Kind(NumKinds).Valid() {
		t.Error("out-of-range kind reported valid")
	}
}

func TestIsMemory(t *testing.T) {
	if !Load.IsMemory() || !Store.IsMemory() {
		t.Error("Load/Store should be memory kinds")
	}
	if Scalar.IsMemory() || Vector.IsMemory() || Branch.IsMemory() {
		t.Error("non-memory kind reported as memory")
	}
}

func TestMixValidate(t *testing.T) {
	valid := []Mix{
		{},
		{VectorFrac: 0.5, BranchFrac: 0.2, LoadFrac: 0.2, StoreFrac: 0.1},
		{BranchFrac: 1},
	}
	for _, m := range valid {
		if err := m.Validate(); err != nil {
			t.Errorf("Validate(%+v) = %v, want nil", m, err)
		}
	}
	invalid := []Mix{
		{VectorFrac: -0.1},
		{BranchFrac: 1.1},
		{VectorFrac: 0.6, LoadFrac: 0.6},
	}
	for _, m := range invalid {
		if err := m.Validate(); err == nil {
			t.Errorf("Validate(%+v) = nil, want error", m)
		}
	}
}

func TestScalarFrac(t *testing.T) {
	m := Mix{VectorFrac: 0.1, BranchFrac: 0.2, LoadFrac: 0.3, StoreFrac: 0.1}
	if got := m.ScalarFrac(); got < 0.299 || got > 0.301 {
		t.Errorf("ScalarFrac = %v, want 0.3", got)
	}
	over := Mix{VectorFrac: 0.7, LoadFrac: 0.7}
	if got := over.ScalarFrac(); got != 0 {
		t.Errorf("ScalarFrac of oversubscribed mix = %v, want 0", got)
	}
}

func TestCounts(t *testing.T) {
	var c Counts
	c.Add(Scalar, 60)
	c.Add(Vector, 10)
	c.Add(Branch, 20)
	c.Add(Load, 10)
	if got := c.Total(); got != 100 {
		t.Fatalf("Total = %d", got)
	}
	if got := c.Frac(Vector); got != 0.1 {
		t.Errorf("Frac(Vector) = %v", got)
	}
	if got := c.Frac(Store); got != 0 {
		t.Errorf("Frac(Store) = %v", got)
	}
	var empty Counts
	if got := empty.Frac(Scalar); got != 0 {
		t.Errorf("Frac on empty = %v", got)
	}
}

func TestCountsMerge(t *testing.T) {
	var a, b Counts
	a.Add(Scalar, 5)
	b.Add(Scalar, 7)
	b.Add(Branch, 3)
	a.Merge(b)
	if a[Scalar] != 12 || a[Branch] != 3 {
		t.Errorf("Merge result = %v", a)
	}
	// Merge must not alias: changing b afterwards must not affect a.
	b.Add(Scalar, 100)
	if a[Scalar] != 12 {
		t.Error("Merge aliased source counts")
	}
}

func TestCountsMergeProperty(t *testing.T) {
	f := func(av, bv [NumKinds]uint32) bool {
		var a, b Counts
		for i := 0; i < NumKinds; i++ {
			a[i] = uint64(av[i])
			b[i] = uint64(bv[i])
		}
		wantTotal := a.Total() + b.Total()
		a.Merge(b)
		return a.Total() == wantTotal
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestInstString(t *testing.T) {
	i := Inst{PC: 0x1000, Kind: Branch, Sel: 2}
	s := i.String()
	if !strings.Contains(s, "branch") || !strings.Contains(s, "00001000") {
		t.Errorf("Inst.String() = %q", s)
	}
}
