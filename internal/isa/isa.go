// Package isa defines the synthetic guest instruction set used by the
// simulated hybrid processor.
//
// PowerChop never depends on instruction semantics — only on instruction
// *classes* (scalar ALU work, SIMD work bound for the VPU, branches bound
// for the BPU, and memory operations that exercise the cache hierarchy).
// The guest ISA is therefore a compact classification scheme plus the
// static metadata each class needs (branch behaviour selectors, memory
// stream selectors), standing in for the ARMv8/x86 guest ISAs of the
// paper's hybrid designs.
package isa

import "fmt"

// Kind classifies a guest instruction by the core unit it exercises.
type Kind uint8

const (
	// Scalar is an integer/FP ALU operation executed by the scalar pipeline.
	Scalar Kind = iota
	// Vector is a SIMD operation bound for the VPU (SSE/AVX/NEON analog).
	Vector
	// Branch is a conditional branch resolved by the BPU.
	Branch
	// Load reads memory through the cache hierarchy.
	Load
	// Store writes memory through the cache hierarchy.
	Store
	numKinds
)

// NumKinds is the number of distinct instruction kinds.
const NumKinds = int(numKinds)

// String returns the mnemonic class name.
func (k Kind) String() string {
	switch k {
	case Scalar:
		return "scalar"
	case Vector:
		return "vector"
	case Branch:
		return "branch"
	case Load:
		return "load"
	case Store:
		return "store"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Valid reports whether k is one of the defined instruction kinds.
func (k Kind) Valid() bool { return k < numKinds }

// IsMemory reports whether the instruction kind accesses the cache
// hierarchy.
func (k Kind) IsMemory() bool { return k == Load || k == Store }

// Inst is a static guest instruction within a code region's body. The
// dynamic behaviour (branch outcome, effective address) is produced by the
// program model at execution time; Inst carries only the static selectors.
type Inst struct {
	// PC is the guest program counter of the instruction. PCs are unique
	// across a program; the PC of a region's first instruction (the
	// translation head) identifies the region's translation.
	PC uint32
	// Kind is the instruction class.
	Kind Kind
	// Sel selects the behaviour model within the owning region: for
	// Branch instructions it indexes the region's branch models, for
	// Load/Store it indexes the region's memory streams. Unused otherwise.
	Sel uint8
}

// String renders the instruction for debugging.
func (i Inst) String() string {
	return fmt.Sprintf("%08x:%s/%d", i.PC, i.Kind, i.Sel)
}

// Mix describes the class composition of a block of instructions. All
// fractions are of total instructions and must sum to at most 1; the
// remainder is scalar ALU work.
type Mix struct {
	VectorFrac float64 // fraction of Vector instructions
	BranchFrac float64 // fraction of Branch instructions
	LoadFrac   float64 // fraction of Load instructions
	StoreFrac  float64 // fraction of Store instructions
}

// Validate reports an error if the mix is not a valid composition.
func (m Mix) Validate() error {
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"VectorFrac", m.VectorFrac},
		{"BranchFrac", m.BranchFrac},
		{"LoadFrac", m.LoadFrac},
		{"StoreFrac", m.StoreFrac},
	} {
		if f.v < 0 || f.v > 1 {
			return fmt.Errorf("isa: %s = %v out of [0,1]", f.name, f.v)
		}
	}
	if s := m.VectorFrac + m.BranchFrac + m.LoadFrac + m.StoreFrac; s > 1+1e-9 {
		return fmt.Errorf("isa: mix fractions sum to %v > 1", s)
	}
	return nil
}

// ScalarFrac returns the implied scalar fraction of the mix.
func (m Mix) ScalarFrac() float64 {
	s := 1 - m.VectorFrac - m.BranchFrac - m.LoadFrac - m.StoreFrac
	if s < 0 {
		return 0
	}
	return s
}

// Counts tallies dynamic instructions by kind.
type Counts [NumKinds]uint64

// Add records n executed instructions of kind k.
func (c *Counts) Add(k Kind, n uint64) { c[k] += n }

// Total returns the total dynamic instruction count.
func (c *Counts) Total() uint64 {
	var t uint64
	for _, n := range c {
		t += n
	}
	return t
}

// Frac returns the fraction of instructions of kind k, or 0 when empty.
func (c *Counts) Frac(k Kind) float64 {
	t := c.Total()
	if t == 0 {
		return 0
	}
	return float64(c[k]) / float64(t)
}

// Merge adds other's tallies into c.
func (c *Counts) Merge(other Counts) {
	for k, n := range other {
		c[k] += n
	}
}
