package program

import "testing"

// sharedStreamProgram builds two region variants whose stream 0 carries
// the same SharedID, so they must walk one logical data stream.
func sharedStreamProgram(t *testing.T) *Program {
	t.Helper()
	b := NewBuilder("shared", "TEST", 11)
	spec := func(name string) RegionSpec {
		return RegionSpec{
			Name:  name,
			Insns: 8,
			Streams: []MemStream{
				{WorkingSet: 1 << 12, Stride: 64, SharedID: 7},
			},
		}
	}
	r0 := b.Region(spec("scalar"))
	r1 := b.Region(spec("simd"))
	b.Phase("mix", 1000, map[int]float64{r0: 1, r1: 1})
	p, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return p
}

// TestSharedStreamAdvancesOnePointer pins the SharedID contract the
// walker's precomputed state-pointer table must preserve: interleaved
// accesses from both region variants advance a single strided offset, so
// the combined address sequence is one sequential walk, not two.
func TestSharedStreamAdvancesOnePointer(t *testing.T) {
	p := sharedStreamProgram(t)
	w := MustWalker(p)
	base := p.Regions[0].Streams[0].base
	if got := p.Regions[1].Streams[0].base; got != base {
		t.Fatalf("shared stream bases differ: %#x vs %#x", base, got)
	}
	const ws = 1 << 12
	for i := 0; i < 200; i++ {
		ri := i % 2 // alternate region variants
		want := base + uint64(i)*64%ws
		if got := w.Address(ri, 0); got != want {
			t.Fatalf("access %d (region %d): address %#x, want %#x", i, ri, got, want)
		}
	}
}

// TestSharedStreamDeterminism pins that two walkers over a shared-stream
// program produce identical draw and address sequences — the pointer
// table is per-walker state, not global.
func TestSharedStreamDeterminism(t *testing.T) {
	p := sharedStreamProgram(t)
	w1, w2 := MustWalker(p), MustWalker(p)
	for i := 0; i < 500; i++ {
		r1, r2 := w1.Next(), w2.Next()
		if r1 != r2 {
			t.Fatalf("region draw diverged at %d: %d vs %d", i, r1, r2)
		}
		if a1, a2 := w1.Address(r1, 0), w2.Address(r2, 0); a1 != a2 {
			t.Fatalf("address diverged at %d: %#x vs %#x", i, a1, a2)
		}
	}
}
