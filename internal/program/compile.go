package program

import "powerchop/internal/isa"

// CompiledOp is one step of a compiled region body: Run consecutive
// scalar instructions followed by a single "interesting" instruction (a
// vector op, branch, load or store) carrying its selector. The scalar
// stretch is executed as batched bookkeeping; only Inst needs dynamic
// dispatch.
type CompiledOp struct {
	// Run is the number of scalar instructions preceding Inst.
	Run uint32
	// Inst is the interesting instruction ending the stretch; its Kind is
	// never Scalar.
	Inst isa.Inst
}

// CompiledRegion is the flat, run-length-encoded form of a Region body.
// Region bodies are static, so each region compiles exactly once per
// engine and the hot loop iterates a compact op sequence instead of
// switching on every instruction.
type CompiledRegion struct {
	// Ops is the event sequence: each op is a scalar run then one
	// interesting instruction.
	Ops []CompiledOp
	// Tail is the trailing scalar run after the last interesting
	// instruction (the whole body, for all-scalar regions).
	Tail uint32
	// Insns is the total instruction count; it always equals the source
	// body's length.
	Insns int
}

// Compile run-length-encodes the region body. The compiled form executes
// the same instruction sequence in the same order as walking Body
// directly; it only changes how the scalar stretches between interesting
// instructions are represented.
func (r *Region) Compile() CompiledRegion {
	c := CompiledRegion{Insns: len(r.Body)}
	run := uint32(0)
	for _, inst := range r.Body {
		if inst.Kind == isa.Scalar {
			run++
			continue
		}
		c.Ops = append(c.Ops, CompiledOp{Run: run, Inst: inst})
		run = 0
	}
	c.Tail = run
	return c
}

// CompileAll compiles every region of the program, indexed like
// Program.Regions.
func CompileAll(p *Program) []CompiledRegion {
	out := make([]CompiledRegion, len(p.Regions))
	for i, r := range p.Regions {
		out[i] = r.Compile()
	}
	return out
}
