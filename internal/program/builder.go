package program

import (
	"fmt"

	"powerchop/internal/isa"
)

// RegionSpec declares a code region for the Builder. The builder turns the
// declarative spec into a concrete instruction body with exact class
// fractions and deterministic layout.
type RegionSpec struct {
	// Name labels the region.
	Name string
	// Insns is the body length in instructions. Typical loop bodies are
	// 16-64 instructions.
	Insns int
	// Mix gives the instruction class composition of the body.
	Mix isa.Mix
	// Branches are the branch behaviour models; Branch instructions in
	// the body are assigned to them round-robin. Required when
	// Mix.BranchFrac > 0.
	Branches []BranchModel
	// Streams are the memory stream models; Load/Store instructions in
	// the body are assigned to them round-robin. Required when
	// Mix.LoadFrac+Mix.StoreFrac > 0.
	Streams []MemStream
}

// regionSpacing is the PC distance between consecutive region heads; it
// bounds region bodies to 1024 four-byte instructions.
const regionSpacing = 0x1000

// maxStreamFootprint bounds each memory stream's working set so that base
// addresses assigned per (region, stream) never collide.
const maxStreamFootprint = uint64(1) << 28 // 256 MiB

// buildRegion lays out a concrete region from its spec. The layout is
// deterministic: instruction kinds are distributed by error diffusion so
// the realized class fractions match the mix as closely as the body length
// allows, and behaviour models are assigned round-robin.
func buildRegion(spec RegionSpec, headPC uint32) (*Region, error) {
	if spec.Insns <= 0 {
		return nil, fmt.Errorf("program: region %q has %d instructions", spec.Name, spec.Insns)
	}
	if spec.Insns > regionSpacing/4 {
		return nil, fmt.Errorf("program: region %q body of %d exceeds %d instructions", spec.Name, spec.Insns, regionSpacing/4)
	}
	if err := spec.Mix.Validate(); err != nil {
		return nil, fmt.Errorf("program: region %q: %w", spec.Name, err)
	}
	if spec.Mix.BranchFrac > 0 && len(spec.Branches) == 0 {
		return nil, fmt.Errorf("program: region %q has branches but no branch models", spec.Name)
	}
	if spec.Mix.LoadFrac+spec.Mix.StoreFrac > 0 && len(spec.Streams) == 0 {
		return nil, fmt.Errorf("program: region %q has memory ops but no streams", spec.Name)
	}
	for i := range spec.Streams {
		if spec.Streams[i].WorkingSet > maxStreamFootprint {
			return nil, fmt.Errorf("program: region %q stream %d working set %d exceeds %d",
				spec.Name, i, spec.Streams[i].WorkingSet, maxStreamFootprint)
		}
	}
	if len(spec.Streams) > 16 {
		return nil, fmt.Errorf("program: region %q has %d streams; max 16", spec.Name, len(spec.Streams))
	}

	r := &Region{
		Name:     spec.Name,
		HeadPC:   headPC,
		Branches: append([]BranchModel(nil), spec.Branches...),
		Streams:  append([]MemStream(nil), spec.Streams...),
	}
	// Assign non-overlapping base addresses: the region head and stream
	// index form the high address bits. Streams with a SharedID instead
	// derive their base from it (in a disjoint half of the address
	// space), letting region variants share a working set.
	for i := range r.Streams {
		if id := r.Streams[i].SharedID; id != 0 {
			r.Streams[i].base = 1<<62 | uint64(id)<<33 | uint64(i)<<28
		} else {
			r.Streams[i].base = uint64(headPC)<<32 | uint64(i)<<28
		}
	}

	// Error-diffusion layout: walk the body accumulating each class's
	// ideal count and emit the class that is furthest behind its target.
	type classAcc struct {
		kind isa.Kind
		frac float64
		emit int
	}
	classes := []classAcc{
		{isa.Vector, spec.Mix.VectorFrac, 0},
		{isa.Branch, spec.Mix.BranchFrac, 0},
		{isa.Load, spec.Mix.LoadFrac, 0},
		{isa.Store, spec.Mix.StoreFrac, 0},
		{isa.Scalar, spec.Mix.ScalarFrac(), 0},
	}
	var branchSel, memSel int
	r.Body = make([]isa.Inst, spec.Insns)
	for i := 0; i < spec.Insns; i++ {
		// Pick the class with the largest deficit vs. its target count.
		best := -1
		bestDeficit := 0.0
		for c := range classes {
			target := classes[c].frac * float64(i+1)
			deficit := target - float64(classes[c].emit)
			if deficit > bestDeficit || best == -1 && deficit > 0 {
				best = c
				bestDeficit = deficit
			}
		}
		if best == -1 {
			best = len(classes) - 1 // degenerate all-zero mix: scalar
		}
		classes[best].emit++
		inst := isa.Inst{PC: headPC + uint32(4*i), Kind: classes[best].kind}
		switch inst.Kind {
		case isa.Branch:
			inst.Sel = uint8(branchSel % len(spec.Branches))
			branchSel++
		case isa.Load, isa.Store:
			inst.Sel = uint8(memSel % len(spec.Streams))
			memSel++
		}
		r.Body[i] = inst
	}
	return r, nil
}

// Builder assembles a Program from region specs and phase declarations.
type Builder struct {
	name       string
	suite      string
	seed       uint64
	specs      []RegionSpec
	phase      []Phase
	weightMaps map[int]map[int]float64
	err        error
}

// NewBuilder starts a program definition.
func NewBuilder(name, suite string, seed uint64) *Builder {
	return &Builder{name: name, suite: suite, seed: seed}
}

// Region declares a code region and returns its index for use in Phase
// weight maps.
func (b *Builder) Region(spec RegionSpec) int {
	b.specs = append(b.specs, spec)
	return len(b.specs) - 1
}

// Phase appends a phase executing for the given number of translations with
// the given region-index→weight map. Regions absent from the map have zero
// weight in the phase.
func (b *Builder) Phase(name string, translations int, weights map[int]float64) *Builder {
	ph := Phase{Name: name, Translations: translations}
	b.phase = append(b.phase, ph)
	idx := len(b.phase) - 1
	// Weights are resolved at Build time when the region count is known;
	// stash the map until then.
	if b.weightMaps == nil {
		b.weightMaps = map[int]map[int]float64{}
	}
	b.weightMaps[idx] = weights
	return b
}

// Build lays out all regions, resolves phase weights and validates the
// resulting program.
func (b *Builder) Build() (*Program, error) {
	if b.err != nil {
		return nil, b.err
	}
	if len(b.specs) == 0 {
		return nil, fmt.Errorf("program %q: no regions declared", b.name)
	}
	p := &Program{Name: b.name, Suite: b.suite, Seed: b.seed}
	for i, spec := range b.specs {
		headPC := uint32(regionSpacing * (i + 1))
		r, err := buildRegion(spec, headPC)
		if err != nil {
			return nil, err
		}
		p.Regions = append(p.Regions, r)
	}
	for i, ph := range b.phase {
		ph.Weights = make([]float64, len(p.Regions))
		for ri, wt := range b.weightMaps[i] {
			if ri < 0 || ri >= len(p.Regions) {
				return nil, fmt.Errorf("program %q phase %q: region index %d out of range", b.name, ph.Name, ri)
			}
			ph.Weights[ri] = wt
		}
		p.Phases = append(p.Phases, ph)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}
