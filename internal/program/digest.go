package program

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"hash"
	"math"
)

// Digest returns a canonical content hash over the program's complete
// static definition: name, suite, seed, every region body with its
// branch and memory behaviour models, and the phase schedule. Execution
// is deterministic given this content, so two programs with equal
// digests produce identical simulation results — the property the
// persistent result cache (internal/rescache) keys on.
func (p *Program) Digest() string {
	h := sha256.New()
	hashString(h, p.Name)
	hashString(h, p.Suite)
	hashU64(h, p.Seed)
	hashU64(h, uint64(len(p.Regions)))
	for _, r := range p.Regions {
		hashString(h, r.Name)
		hashU64(h, uint64(r.HeadPC))
		hashU64(h, uint64(len(r.Body)))
		for _, inst := range r.Body {
			hashU64(h, uint64(inst.PC))
			h.Write([]byte{byte(inst.Kind), inst.Sel})
		}
		hashU64(h, uint64(len(r.Branches)))
		for i := range r.Branches {
			m := &r.Branches[i]
			h.Write([]byte{byte(m.Kind)})
			hashF64(h, m.Bias)
			hashU64(h, uint64(len(m.Pattern)))
			for _, taken := range m.Pattern {
				hashBool(h, taken)
			}
			hashU64(h, uint64(m.CorrDepth))
			hashF64(h, m.Noise)
		}
		hashU64(h, uint64(len(r.Streams)))
		for i := range r.Streams {
			s := &r.Streams[i]
			hashU64(h, s.WorkingSet)
			hashU64(h, s.Stride)
			hashU64(h, uint64(s.SharedID))
			hashU64(h, s.base)
		}
	}
	hashU64(h, uint64(len(p.Phases)))
	for _, ph := range p.Phases {
		hashString(h, ph.Name)
		hashU64(h, uint64(len(ph.Weights)))
		for _, w := range ph.Weights {
			hashF64(h, w)
		}
		hashU64(h, uint64(ph.Translations))
	}
	return hex.EncodeToString(h.Sum(nil))
}

// hashString writes a length-prefixed string so adjacent fields cannot
// alias each other.
func hashString(h hash.Hash, s string) {
	hashU64(h, uint64(len(s)))
	h.Write([]byte(s))
}

func hashU64(h hash.Hash, v uint64) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	h.Write(buf[:])
}

func hashF64(h hash.Hash, v float64) { hashU64(h, math.Float64bits(v)) }

func hashBool(h hash.Hash, v bool) {
	if v {
		h.Write([]byte{1})
	} else {
		h.Write([]byte{0})
	}
}
