package program

import (
	"math"
	"testing"

	"powerchop/internal/isa"
	"powerchop/internal/rng"
)

// twoPhaseProgram builds a small program with two regions and two phases
// used across the tests.
func twoPhaseProgram(t *testing.T) *Program {
	t.Helper()
	b := NewBuilder("test", "TEST", 1)
	r0 := b.Region(RegionSpec{
		Name:  "vec-loop",
		Insns: 20,
		Mix:   isa.Mix{VectorFrac: 0.25, BranchFrac: 0.1, LoadFrac: 0.1},
		Branches: []BranchModel{
			{Kind: Biased, Bias: 0.9},
		},
		Streams: []MemStream{
			{WorkingSet: 1 << 14, Stride: 0},
		},
	})
	r1 := b.Region(RegionSpec{
		Name:  "scalar-loop",
		Insns: 16,
		Mix:   isa.Mix{BranchFrac: 0.2},
		Branches: []BranchModel{
			{Kind: Patterned, Pattern: []bool{true, true, false}},
		},
	})
	b.Phase("A", 100, map[int]float64{r0: 1})
	b.Phase("B", 50, map[int]float64{r1: 1})
	p, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return p
}

func TestBuilderBodyComposition(t *testing.T) {
	p := twoPhaseProgram(t)
	r := p.Regions[0]
	var counts isa.Counts
	for _, inst := range r.Body {
		counts.Add(inst.Kind, 1)
	}
	if got := counts[isa.Vector]; got != 5 {
		t.Errorf("vector count = %d, want 5 (25%% of 20)", got)
	}
	if got := counts[isa.Branch]; got != 2 {
		t.Errorf("branch count = %d, want 2", got)
	}
	if got := counts[isa.Load]; got != 2 {
		t.Errorf("load count = %d, want 2", got)
	}
	if got := counts[isa.Scalar]; got != 11 {
		t.Errorf("scalar count = %d, want 11", got)
	}
}

func TestBuilderPCsUniqueAndOrdered(t *testing.T) {
	p := twoPhaseProgram(t)
	seen := map[uint32]bool{}
	for _, r := range p.Regions {
		for i, inst := range r.Body {
			if seen[inst.PC] {
				t.Fatalf("duplicate PC %#x", inst.PC)
			}
			seen[inst.PC] = true
			if want := r.HeadPC + uint32(4*i); inst.PC != want {
				t.Fatalf("PC = %#x, want %#x", inst.PC, want)
			}
		}
	}
	if p.Regions[0].HeadPC == p.Regions[1].HeadPC {
		t.Fatal("region heads collide")
	}
}

func TestBuilderErrors(t *testing.T) {
	cases := []struct {
		name string
		spec RegionSpec
	}{
		{"zero-insns", RegionSpec{Name: "r", Insns: 0}},
		{"oversize", RegionSpec{Name: "r", Insns: 5000}},
		{"bad-mix", RegionSpec{Name: "r", Insns: 8, Mix: isa.Mix{VectorFrac: 2}}},
		{"branch-no-model", RegionSpec{Name: "r", Insns: 8, Mix: isa.Mix{BranchFrac: 0.5}}},
		{"mem-no-stream", RegionSpec{Name: "r", Insns: 8, Mix: isa.Mix{LoadFrac: 0.5}}},
		{"huge-stream", RegionSpec{Name: "r", Insns: 8, Mix: isa.Mix{LoadFrac: 0.5},
			Streams: []MemStream{{WorkingSet: 1 << 40}}}},
	}
	for _, c := range cases {
		b := NewBuilder("bad", "TEST", 1)
		ri := b.Region(c.spec)
		b.Phase("p", 10, map[int]float64{ri: 1})
		if _, err := b.Build(); err == nil {
			t.Errorf("%s: Build succeeded, want error", c.name)
		}
	}
}

func TestBuilderNoRegions(t *testing.T) {
	b := NewBuilder("empty", "TEST", 1)
	if _, err := b.Build(); err == nil {
		t.Fatal("Build with no regions succeeded")
	}
}

func TestBuilderBadPhaseIndex(t *testing.T) {
	b := NewBuilder("bad", "TEST", 1)
	b.Region(RegionSpec{Name: "r", Insns: 8})
	b.Phase("p", 10, map[int]float64{5: 1})
	if _, err := b.Build(); err == nil {
		t.Fatal("Build with out-of-range phase weight succeeded")
	}
}

func TestValidateCatchesBadPrograms(t *testing.T) {
	good := twoPhaseProgram(t)
	if err := good.Validate(); err != nil {
		t.Fatalf("valid program rejected: %v", err)
	}

	mutations := []struct {
		name   string
		mutate func(*Program)
	}{
		{"no-phases", func(p *Program) { p.Phases = nil }},
		{"no-regions", func(p *Program) { p.Regions = nil }},
		{"zero-duration", func(p *Program) { p.Phases[0].Translations = 0 }},
		{"negative-weight", func(p *Program) { p.Phases[0].Weights[0] = -1 }},
		{"all-zero-weights", func(p *Program) {
			for i := range p.Phases[0].Weights {
				p.Phases[0].Weights[i] = 0
			}
		}},
		{"weight-len-mismatch", func(p *Program) { p.Phases[0].Weights = p.Phases[0].Weights[:1] }},
		{"dup-head", func(p *Program) { p.Regions[1].HeadPC = p.Regions[0].HeadPC }},
	}
	for _, m := range mutations {
		p := twoPhaseProgram(t)
		m.mutate(p)
		if err := p.Validate(); err == nil {
			t.Errorf("%s: Validate passed, want error", m.name)
		}
	}
}

func TestWalkerPhaseSchedule(t *testing.T) {
	p := twoPhaseProgram(t)
	w, err := NewWalker(p)
	if err != nil {
		t.Fatal(err)
	}
	// Phase A: 100 translations of region 0.
	for i := 0; i < 100; i++ {
		if ri := w.Next(); ri != 0 {
			t.Fatalf("translation %d: region %d, want 0 (phase A)", i, ri)
		}
		if w.PhaseName() != "A" {
			t.Fatalf("translation %d in phase %q", i, w.PhaseName())
		}
	}
	// Phase B: 50 translations of region 1.
	for i := 0; i < 50; i++ {
		if ri := w.Next(); ri != 1 {
			t.Fatalf("phase B translation %d: region %d, want 1", i, ri)
		}
	}
	// Schedule wraps back to phase A.
	if ri := w.Next(); ri != 0 {
		t.Fatalf("after wrap: region %d, want 0", ri)
	}
	if got := w.Executed(); got != 151 {
		t.Fatalf("Executed = %d, want 151", got)
	}
}

func TestWalkerDeterminism(t *testing.T) {
	p := twoPhaseProgram(t)
	w1 := MustWalker(p)
	w2 := MustWalker(p)
	for i := 0; i < 500; i++ {
		r1, r2 := w1.Next(), w2.Next()
		if r1 != r2 {
			t.Fatalf("region draw diverged at %d", i)
		}
		b1 := w1.BranchOutcome(r1, 0)
		b2 := w2.BranchOutcome(r2, 0)
		if b1 != b2 {
			t.Fatalf("branch outcome diverged at %d", i)
		}
		if len(p.Regions[r1].Streams) > 0 {
			if w1.Address(r1, 0) != w2.Address(r2, 0) {
				t.Fatalf("address diverged at %d", i)
			}
		}
	}
}

func TestWalkerWeightedDraw(t *testing.T) {
	b := NewBuilder("weighted", "TEST", 7)
	r0 := b.Region(RegionSpec{Name: "hot", Insns: 8})
	r1 := b.Region(RegionSpec{Name: "cold", Insns: 8})
	b.Phase("mix", 100000, map[int]float64{r0: 3, r1: 1})
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	w := MustWalker(p)
	counts := map[int]int{}
	const n = 20000
	for i := 0; i < n; i++ {
		counts[w.Next()]++
	}
	frac := float64(counts[r0]) / n
	if math.Abs(frac-0.75) > 0.02 {
		t.Fatalf("hot region drawn %.3f of the time, want ~0.75", frac)
	}
}

func TestBiasedBranchOutcomeRate(t *testing.T) {
	m := BranchModel{Kind: Biased, Bias: 0.8}
	rnd := rng.New(5)
	var st branchState
	taken := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if m.outcome(&st, 0, rnd) {
			taken++
		}
	}
	rate := float64(taken) / n
	if math.Abs(rate-0.8) > 0.02 {
		t.Fatalf("biased branch taken rate = %.3f, want ~0.8", rate)
	}
}

func TestPatternedBranchCycles(t *testing.T) {
	m := BranchModel{Kind: Patterned, Pattern: []bool{true, false, false}}
	rnd := rng.New(5)
	var st branchState
	want := []bool{true, false, false, true, false, false, true}
	for i, wv := range want {
		if got := m.outcome(&st, 0, rnd); got != wv {
			t.Fatalf("pattern step %d = %v, want %v", i, got, wv)
		}
	}
}

func TestCorrelatedBranchFollowsHistory(t *testing.T) {
	m := BranchModel{Kind: Correlated, CorrDepth: 2}
	rnd := rng.New(5)
	var st branchState
	cases := []struct {
		hist uint64
		want bool
	}{
		{0b00, false}, {0b01, true}, {0b10, true}, {0b11, false},
		{0b111, false}, {0b101, true}, // only the low 2 bits matter
	}
	for _, c := range cases {
		if got := m.outcome(&st, c.hist, rnd); got != c.want {
			t.Errorf("hist %b: outcome %v, want %v", c.hist, got, c.want)
		}
	}
}

func TestNoiseBoundsPredictability(t *testing.T) {
	m := BranchModel{Kind: Patterned, Pattern: []bool{true}, Noise: 0.3}
	rnd := rng.New(5)
	var st branchState
	taken := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if m.outcome(&st, 0, rnd) {
			taken++
		}
	}
	rate := float64(taken) / n
	if math.Abs(rate-0.7) > 0.02 {
		t.Fatalf("noisy always-taken branch rate = %.3f, want ~0.7", rate)
	}
}

func TestBranchModelValidate(t *testing.T) {
	bad := []BranchModel{
		{Kind: Biased, Bias: -1},
		{Kind: Patterned},
		{Kind: Correlated, CorrDepth: 0},
		{Kind: Correlated, CorrDepth: 64},
		{Kind: Random, Noise: 2},
		{Kind: BranchKind(9)},
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("case %d (%+v): Validate passed, want error", i, m)
		}
	}
	good := []BranchModel{
		{Kind: Biased, Bias: 0.5},
		{Kind: Patterned, Pattern: []bool{true}},
		{Kind: Correlated, CorrDepth: 8},
		{Kind: Random},
	}
	for i, m := range good {
		if err := m.Validate(); err != nil {
			t.Errorf("case %d: Validate = %v, want nil", i, err)
		}
	}
}

func TestBranchKindString(t *testing.T) {
	for k, want := range map[BranchKind]string{
		Biased: "biased", Patterned: "patterned", Correlated: "correlated", Random: "random",
	} {
		if got := k.String(); got != want {
			t.Errorf("String(%d) = %q, want %q", k, got, want)
		}
	}
	if got := BranchKind(42).String(); got == "" {
		t.Error("unknown kind produced empty string")
	}
}

func TestStridedStreamWalksSequentially(t *testing.T) {
	s := MemStream{WorkingSet: 256, Stride: 64, base: 0x1000}
	rnd := rng.New(5)
	var st streamState
	want := []uint64{0x1000, 0x1040, 0x1080, 0x10c0, 0x1000}
	for i, wv := range want {
		if got := s.next(&st, rnd); got != wv {
			t.Fatalf("access %d = %#x, want %#x", i, got, wv)
		}
	}
}

func TestRandomStreamStaysInWorkingSet(t *testing.T) {
	s := MemStream{WorkingSet: 4096, base: 0x10000}
	rnd := rng.New(5)
	var st streamState
	for i := 0; i < 1000; i++ {
		a := s.next(&st, rnd)
		if a < s.base || a >= s.base+s.WorkingSet {
			t.Fatalf("address %#x outside working set", a)
		}
	}
}

func TestStreamValidate(t *testing.T) {
	if err := (&MemStream{}).Validate(); err == nil {
		t.Error("zero working set accepted")
	}
	if err := (&MemStream{WorkingSet: 64, Stride: 128}).Validate(); err == nil {
		t.Error("stride beyond working set accepted")
	}
	if err := (&MemStream{WorkingSet: 1024, Stride: 64}).Validate(); err != nil {
		t.Errorf("valid stream rejected: %v", err)
	}
}

func TestStreamBasesDisjoint(t *testing.T) {
	b := NewBuilder("addrs", "TEST", 3)
	ri := b.Region(RegionSpec{
		Name:  "two-streams",
		Insns: 8,
		Mix:   isa.Mix{LoadFrac: 0.5},
		Streams: []MemStream{
			{WorkingSet: maxStreamFootprint},
			{WorkingSet: maxStreamFootprint},
		},
	})
	b.Phase("p", 10, map[int]float64{ri: 1})
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	s := p.Regions[0].Streams
	lo0, hi0 := s[0].base, s[0].base+s[0].WorkingSet
	lo1, hi1 := s[1].base, s[1].base+s[1].WorkingSet
	if lo0 < hi1 && lo1 < hi0 {
		t.Fatalf("stream ranges overlap: [%#x,%#x) and [%#x,%#x)", lo0, hi0, lo1, hi1)
	}
}

func TestTotalScheduleTranslations(t *testing.T) {
	p := twoPhaseProgram(t)
	if got := p.TotalScheduleTranslations(); got != 150 {
		t.Fatalf("TotalScheduleTranslations = %d, want 150", got)
	}
}

func TestGlobalHistoryTracksOutcomes(t *testing.T) {
	p := twoPhaseProgram(t)
	w := MustWalker(p)
	ri := w.Next()
	h0 := w.GlobalHistory()
	taken := w.BranchOutcome(ri, 0)
	h1 := w.GlobalHistory()
	if want := h0<<1 | boolBit(taken); h1 != want {
		t.Fatalf("global history = %b, want %b", h1, want)
	}
}

func TestMustWalkerPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustWalker on invalid program did not panic")
		}
	}()
	MustWalker(&Program{Name: "bad"})
}
