// Package program models synthetic guest programs for the hybrid
// processor simulator.
//
// A Program is a set of static code Regions plus a Phase schedule. Each
// region is a short straight-line body of guest instructions (a loop body,
// in effect) with attached behaviour models: generative branch-outcome
// models and memory-stream models. A phase names the set of regions that
// are hot during a period of execution and how long the period lasts.
// Executing a program means repeatedly drawing a region from the current
// phase's weighted set and executing its body once — exactly the view a
// binary-translation layer has of guest execution (a stream of region
// executions), and exactly the granularity at which PowerChop identifies
// phases.
//
// The behaviour models are the levers that reproduce the application
// properties the paper's Figures 1-3 identify as driving unit criticality:
// vector-operation intensity (VPU), local-vs-global branch predictability
// (BPU), and working-set size relative to the cache hierarchy (MLC).
package program

import (
	"fmt"

	"powerchop/internal/isa"
	"powerchop/internal/rng"
)

// BranchKind selects a generative branch-outcome model.
type BranchKind uint8

const (
	// Biased branches are taken with a fixed probability. Any predictor
	// quickly learns the majority direction, so the large BPU provides no
	// benefit over the small one.
	Biased BranchKind = iota
	// Patterned branches repeat a fixed taken/not-taken sequence. The
	// tournament predictor's local-history component learns the pattern;
	// a small bimodal predictor cannot, so the large BPU is critical.
	Patterned
	// Correlated branches compute their outcome from recent global
	// branch history. Only the tournament predictor's global component
	// can track them.
	Correlated
	// Random branches are unpredictable by construction; no predictor
	// helps, so the large BPU is non-critical.
	Random
)

// String returns the model name.
func (k BranchKind) String() string {
	switch k {
	case Biased:
		return "biased"
	case Patterned:
		return "patterned"
	case Correlated:
		return "correlated"
	case Random:
		return "random"
	default:
		return fmt.Sprintf("branchkind(%d)", uint8(k))
	}
}

// BranchModel is the static description of one branch site's behaviour.
type BranchModel struct {
	Kind BranchKind
	// Bias is P(taken) for Biased branches.
	Bias float64
	// Pattern is the repeating outcome sequence for Patterned branches.
	Pattern []bool
	// CorrDepth is the number of recent global outcomes whose parity
	// determines a Correlated branch's outcome.
	CorrDepth int
	// Noise flips the model's outcome with this probability, bounding
	// the best achievable prediction accuracy.
	Noise float64
}

// Validate reports an error for an inconsistent model.
func (m *BranchModel) Validate() error {
	switch m.Kind {
	case Biased:
		if m.Bias < 0 || m.Bias > 1 {
			return fmt.Errorf("program: biased branch with bias %v", m.Bias)
		}
	case Patterned:
		if len(m.Pattern) == 0 {
			return fmt.Errorf("program: patterned branch with empty pattern")
		}
	case Correlated:
		if m.CorrDepth <= 0 || m.CorrDepth > 32 {
			return fmt.Errorf("program: correlated branch with depth %d", m.CorrDepth)
		}
	case Random:
		// nothing to check
	default:
		return fmt.Errorf("program: unknown branch kind %d", m.Kind)
	}
	if m.Noise < 0 || m.Noise > 1 {
		return fmt.Errorf("program: branch noise %v out of [0,1]", m.Noise)
	}
	return nil
}

// branchState is the per-walker dynamic state of one branch site.
type branchState struct {
	patternPos int
}

// Outcome produces the next dynamic outcome for the branch. globalHist is
// the walker's global outcome shift register (most recent outcome in bit 0).
func (m *BranchModel) outcome(st *branchState, globalHist uint64, rnd *rng.Source) bool {
	var taken bool
	switch m.Kind {
	case Biased:
		taken = rnd.Bool(m.Bias)
	case Patterned:
		taken = m.Pattern[st.patternPos]
		st.patternPos++
		if st.patternPos >= len(m.Pattern) {
			st.patternPos = 0
		}
	case Correlated:
		mask := uint64(1)<<uint(m.CorrDepth) - 1
		h := globalHist & mask
		// Parity of the masked history.
		h ^= h >> 32
		h ^= h >> 16
		h ^= h >> 8
		h ^= h >> 4
		h ^= h >> 2
		h ^= h >> 1
		taken = h&1 == 1
	case Random:
		taken = rnd.Bool(0.5)
	}
	if m.Noise > 0 && rnd.Bool(m.Noise) {
		taken = !taken
	}
	return taken
}

// MemStream is the static description of one memory reference stream.
type MemStream struct {
	// WorkingSet is the stream's footprint in bytes. Whether it fits in
	// the L1, the MLC, or neither determines MLC criticality.
	WorkingSet uint64
	// Stride is the byte distance between consecutive accesses. Zero
	// selects uniform-random accesses within the working set (reuse-heavy);
	// a non-zero stride produces a sequential walk (streaming when the
	// working set exceeds the MLC).
	Stride uint64
	// SharedID, when nonzero, makes streams in different regions with the
	// same SharedID and stream index reference the same address range, so
	// region variants (e.g. a scalar region and its SIMD twin) share one
	// working set instead of doubling the footprint.
	SharedID uint32
	// base is the stream's starting address, assigned by Build so that
	// distinct streams never overlap.
	base uint64
}

// Validate reports an error for an inconsistent stream.
func (s *MemStream) Validate() error {
	if s.WorkingSet == 0 {
		return fmt.Errorf("program: memory stream with zero working set")
	}
	if s.Stride > s.WorkingSet {
		return fmt.Errorf("program: stride %d exceeds working set %d", s.Stride, s.WorkingSet)
	}
	return nil
}

// streamState is the per-walker dynamic state of one memory stream.
type streamState struct {
	offset uint64
}

// next produces the stream's next effective address.
func (s *MemStream) next(st *streamState, rnd *rng.Source) uint64 {
	if s.Stride == 0 {
		return s.base + rnd.Uint64n(s.WorkingSet)
	}
	addr := s.base + st.offset
	st.offset += s.Stride
	if st.offset >= s.WorkingSet {
		st.offset = 0
	}
	return addr
}

// Region is a static code region: the unit of translation in the BT layer
// and the unit of phase composition here.
type Region struct {
	// Name is a human-readable label (e.g. "inner-loop").
	Name string
	// HeadPC is the guest PC of the region's first instruction; it
	// uniquely identifies the region's translation.
	HeadPC uint32
	// Body is the region's static instruction sequence.
	Body []isa.Inst
	// Branches are the behaviour models indexed by Inst.Sel of Branch
	// instructions in Body.
	Branches []BranchModel
	// Streams are the behaviour models indexed by Inst.Sel of Load/Store
	// instructions in Body.
	Streams []MemStream
}

// Len returns the number of instructions in the region body.
func (r *Region) Len() int { return len(r.Body) }

// Phase is one period of the program's phase schedule.
type Phase struct {
	// Name labels the phase for diagnostics.
	Name string
	// Weights gives the relative execution frequency of each region
	// (indexed like Program.Regions) while the phase is active. Regions
	// with zero weight do not execute in the phase.
	Weights []float64
	// Translations is the phase duration in region executions.
	Translations int
}

// Program is a complete synthetic guest program.
type Program struct {
	// Name is the benchmark name (e.g. "gobmk").
	Name string
	// Suite is the benchmark suite label (e.g. "SPEC-INT").
	Suite string
	// Regions are the program's static code regions.
	Regions []*Region
	// Phases is the cyclic phase schedule.
	Phases []Phase
	// Seed selects the program's deterministic random streams.
	Seed uint64
}

// Validate checks the program's internal consistency.
func (p *Program) Validate() error {
	if len(p.Regions) == 0 {
		return fmt.Errorf("program %q: no regions", p.Name)
	}
	if len(p.Phases) == 0 {
		return fmt.Errorf("program %q: no phases", p.Name)
	}
	seen := make(map[uint32]bool, len(p.Regions))
	for i, r := range p.Regions {
		if len(r.Body) == 0 {
			return fmt.Errorf("program %q region %d: empty body", p.Name, i)
		}
		if seen[r.HeadPC] {
			return fmt.Errorf("program %q region %d: duplicate head PC %#x", p.Name, i, r.HeadPC)
		}
		seen[r.HeadPC] = true
		for _, inst := range r.Body {
			switch inst.Kind {
			case isa.Branch:
				if int(inst.Sel) >= len(r.Branches) {
					return fmt.Errorf("program %q region %d: branch sel %d out of range", p.Name, i, inst.Sel)
				}
			case isa.Load, isa.Store:
				if int(inst.Sel) >= len(r.Streams) {
					return fmt.Errorf("program %q region %d: stream sel %d out of range", p.Name, i, inst.Sel)
				}
			}
		}
		for j := range r.Branches {
			if err := r.Branches[j].Validate(); err != nil {
				return fmt.Errorf("program %q region %d branch %d: %w", p.Name, i, j, err)
			}
		}
		for j := range r.Streams {
			if err := r.Streams[j].Validate(); err != nil {
				return fmt.Errorf("program %q region %d stream %d: %w", p.Name, i, j, err)
			}
		}
	}
	for i, ph := range p.Phases {
		if len(ph.Weights) != len(p.Regions) {
			return fmt.Errorf("program %q phase %d: %d weights for %d regions", p.Name, i, len(ph.Weights), len(p.Regions))
		}
		if ph.Translations <= 0 {
			return fmt.Errorf("program %q phase %d: non-positive duration", p.Name, i)
		}
		total := 0.0
		for _, w := range ph.Weights {
			if w < 0 {
				return fmt.Errorf("program %q phase %d: negative weight", p.Name, i)
			}
			total += w
		}
		if total == 0 {
			return fmt.Errorf("program %q phase %d: all weights zero", p.Name, i)
		}
	}
	return nil
}

// TotalScheduleTranslations returns the length of one full pass through the
// phase schedule, in region executions.
func (p *Program) TotalScheduleTranslations() int {
	t := 0
	for _, ph := range p.Phases {
		t += ph.Translations
	}
	return t
}
