package program

import (
	"fmt"

	"powerchop/internal/rng"
)

// Walker executes a Program deterministically: it advances the phase
// schedule, draws regions according to the active phase's weights, and
// produces the dynamic behaviour (branch outcomes, effective addresses) of
// each instruction. A Walker owns all mutable execution state, so a single
// Program can back many concurrent runs.
type Walker struct {
	prog       *Program
	rnd        *rng.Source
	phaseIdx   int
	phaseLeft  int
	globalHist uint64
	branchSt   [][]branchState
	streamSt   [][]streamState
	streamPtr  [][]*streamState // resolved state per region×sel; shared streams alias one entry
	cum        [][]float64      // per phase: cumulative region weights
	executed   uint64           // region executions so far
}

// NewWalker validates p and returns a walker positioned at the start of the
// first phase.
func NewWalker(p *Program) (*Walker, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	w := &Walker{
		prog:      p,
		rnd:       rng.New(p.Seed),
		branchSt:  make([][]branchState, len(p.Regions)),
		streamSt:  make([][]streamState, len(p.Regions)),
		streamPtr: make([][]*streamState, len(p.Regions)),
		cum:       make([][]float64, len(p.Phases)),
	}
	// Resolve each stream's state pointer up front: streams carrying a
	// SharedID alias one state per (SharedID, sel) pair across regions,
	// the rest get private per-region state. Address then indexes the
	// table instead of consulting a map per access.
	shared := make(map[uint64]*streamState)
	for i, r := range p.Regions {
		w.branchSt[i] = make([]branchState, len(r.Branches))
		w.streamSt[i] = make([]streamState, len(r.Streams))
		w.streamPtr[i] = make([]*streamState, len(r.Streams))
		for j := range r.Streams {
			if id := r.Streams[j].SharedID; id != 0 {
				key := uint64(id)<<8 | uint64(j)
				st := shared[key]
				if st == nil {
					st = &streamState{}
					shared[key] = st
				}
				w.streamPtr[i][j] = st
			} else {
				w.streamPtr[i][j] = &w.streamSt[i][j]
			}
		}
	}
	for i, ph := range p.Phases {
		cum := make([]float64, len(ph.Weights))
		total := 0.0
		for j, wt := range ph.Weights {
			total += wt
			cum[j] = total
		}
		w.cum[i] = cum
	}
	w.phaseLeft = p.Phases[0].Translations
	return w, nil
}

// Program returns the walked program.
func (w *Walker) Program() *Program { return w.prog }

// PhaseIndex returns the index of the currently active phase.
func (w *Walker) PhaseIndex() int { return w.phaseIdx }

// PhaseName returns the name of the currently active phase.
func (w *Walker) PhaseName() string { return w.prog.Phases[w.phaseIdx].Name }

// Executed returns the number of region executions performed so far.
func (w *Walker) Executed() uint64 { return w.executed }

// Next draws the next region to execute and advances the phase schedule,
// returning the region's index within Program.Regions. The schedule is
// cyclic: after the last phase the walker returns to the first.
func (w *Walker) Next() int {
	if w.phaseLeft == 0 {
		w.phaseIdx++
		if w.phaseIdx >= len(w.prog.Phases) {
			w.phaseIdx = 0
		}
		w.phaseLeft = w.prog.Phases[w.phaseIdx].Translations
	}
	w.phaseLeft--
	w.executed++

	cum := w.cum[w.phaseIdx]
	total := cum[len(cum)-1]
	x := w.rnd.Float64() * total
	// Linear scan: phases activate only a handful of regions, and the
	// cumulative array is short (tens of entries at most).
	for i, c := range cum {
		if x < c {
			return i
		}
	}
	return len(cum) - 1
}

// Region returns the region at index ri.
func (w *Walker) Region(ri int) *Region { return w.prog.Regions[ri] }

// BranchOutcome produces the dynamic outcome of the branch site sel within
// region ri and records it in the global history register.
func (w *Walker) BranchOutcome(ri int, sel uint8) bool {
	r := w.prog.Regions[ri]
	taken := r.Branches[sel].outcome(&w.branchSt[ri][sel], w.globalHist, w.rnd)
	w.globalHist = w.globalHist<<1 | boolBit(taken)
	return taken
}

// GlobalHistory exposes the walker's global branch-outcome shift register
// (most recent outcome in bit 0). Predictor models use it only in tests;
// real predictors maintain their own history.
func (w *Walker) GlobalHistory() uint64 { return w.globalHist }

// Address produces the next effective address of memory stream sel within
// region ri. Streams carrying a SharedID advance a single shared pointer
// across all regions referencing them, so region variants walk one logical
// data stream.
func (w *Walker) Address(ri int, sel uint8) uint64 {
	return w.prog.Regions[ri].Streams[sel].next(w.streamPtr[ri][sel], w.rnd)
}

func boolBit(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// MustWalker is a test/CLI helper that panics if the program is invalid.
func MustWalker(p *Program) *Walker {
	w, err := NewWalker(p)
	if err != nil {
		panic(fmt.Sprintf("program: %v", err))
	}
	return w
}
