// Package bt models the binary translation software layer of the hybrid
// processor (Section II-A): the interpreter, the translator/optimizer, the
// region cache and the nucleus.
//
// The BT layer runs all guest software. The interpreter decodes and
// executes guest instructions sequentially (slowly) while collecting
// hotness statistics; when a code region crosses the hotness threshold,
// the translator produces an optimized host-ISA trace — a translation —
// and installs it in the region cache, paying a one-time translation cost.
// Subsequent executions run out of the region cache at full pipeline
// speed. The nucleus handles interrupts, including the PVT-miss interrupts
// PowerChop adds for CDE invocation.
//
// PowerChop-specific detail: the translator emits scalar-emulation
// alternate code paths alongside vector code, so gating the VPU switches
// translations onto the scalar path without retranslation (Section IV-C2).
package bt

import (
	"fmt"

	"powerchop/internal/program"
)

// Translation is one region-cache entry: an optimized host-ISA trace of a
// guest code region.
type Translation struct {
	// ID is the translation's unique identifier: the lower 32 bits of
	// the guest head PC (Section IV-B2).
	ID uint32
	// RegionIdx is the guest region this translation covers.
	RegionIdx int
	// Insns is the guest instruction count of one execution of the
	// translation.
	Insns int
	// Executions counts how many times the translation has run.
	Executions uint64
}

// Stats summarizes BT activity.
type Stats struct {
	InterpretedExecs  uint64 // region executions run by the interpreter
	InterpretedInsns  uint64
	TranslatedExecs   uint64 // region executions run from the region cache
	Translations      uint64 // regions translated
	TranslationCycles float64
	InterpreterCycles float64
}

// Config parameterizes the BT runtime.
type Config struct {
	// HotThreshold is the interpreted-execution count at which the
	// translator takes over a region.
	HotThreshold int
	// InterpCPI is the interpreter's cost per guest instruction, charged
	// on top of normal execution.
	InterpCPI float64
	// TranslateCyclesPerInsn is the translator's one-time cost per
	// region instruction.
	TranslateCyclesPerInsn float64
}

// Validate reports an error for inconsistent configurations.
func (c Config) Validate() error {
	if c.HotThreshold <= 0 {
		return fmt.Errorf("bt: hot threshold %d", c.HotThreshold)
	}
	if c.InterpCPI < 1 {
		return fmt.Errorf("bt: interpreter CPI %v < 1", c.InterpCPI)
	}
	if c.TranslateCyclesPerInsn < 0 {
		return fmt.Errorf("bt: negative translation cost")
	}
	return nil
}

// System is the BT runtime for one program execution.
type System struct {
	cfg         Config
	prog        *program.Program
	execCounts  []uint64
	regionCache []*Translation // indexed by region; nil until translated
	nucleus     *Nucleus
	stats       Stats
}

// New builds a BT runtime for the program. It returns an error on invalid
// configuration.
func New(cfg Config, p *program.Program) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(p.Regions) == 0 {
		return nil, fmt.Errorf("bt: program %q has no regions", p.Name)
	}
	return &System{
		cfg:         cfg,
		prog:        p,
		execCounts:  make([]uint64, len(p.Regions)),
		regionCache: make([]*Translation, len(p.Regions)),
		nucleus:     NewNucleus(),
	}, nil
}

// Nucleus returns the runtime's interrupt handler.
func (s *System) Nucleus() *Nucleus { return s.nucleus }

// Stats returns the runtime's activity counters.
func (s *System) Stats() Stats { return s.stats }

// Translations returns the number of regions translated so far — a cheap
// accessor the simulator polls to detect fresh region-cache installs
// without copying the whole Stats struct on the hot path.
func (s *System) Translations() uint64 { return s.stats.Translations }

// Translation returns the region-cache entry for a region, or nil if the
// region has not been translated.
func (s *System) Translation(regionIdx int) *Translation {
	return s.regionCache[regionIdx]
}

// RegionCacheSize returns the number of installed translations.
func (s *System) RegionCacheSize() int {
	n := 0
	for _, t := range s.regionCache {
		if t != nil {
			n++
		}
	}
	return n
}

// Execute runs one dynamic execution of the region. It returns the
// translation the execution ran from (nil when interpreted) and the extra
// cycles the BT layer charged: interpreter overhead for cold regions and
// the one-time translation cost when the region crosses the hotness
// threshold.
func (s *System) Execute(regionIdx int) (tr *Translation, extraCycles float64) {
	region := s.prog.Regions[regionIdx]
	if tr = s.regionCache[regionIdx]; tr != nil {
		tr.Executions++
		s.stats.TranslatedExecs++
		return tr, 0
	}

	// Interpreted execution: charge the interpreter's per-instruction
	// overhead beyond normal pipeline execution.
	n := uint64(region.Len())
	s.execCounts[regionIdx]++
	s.stats.InterpretedExecs++
	s.stats.InterpretedInsns += n
	extraCycles = (s.cfg.InterpCPI - 1) * float64(n)
	s.stats.InterpreterCycles += extraCycles

	if s.execCounts[regionIdx] >= uint64(s.cfg.HotThreshold) {
		// The translator produces the optimized trace, including the
		// scalar-emulation alternate paths for vector instructions.
		cost := s.cfg.TranslateCyclesPerInsn * float64(n)
		extraCycles += cost
		s.stats.TranslationCycles += cost
		s.stats.Translations++
		s.regionCache[regionIdx] = &Translation{
			ID:        region.HeadPC,
			RegionIdx: regionIdx,
			Insns:     region.Len(),
		}
	}
	return nil, extraCycles
}

// InterruptKind classifies nucleus interrupts.
type InterruptKind uint8

const (
	// IntPVTMiss is the PowerChop-added interrupt invoking the CDE.
	IntPVTMiss InterruptKind = iota
	// IntGateSwitch covers power-state transitions the nucleus oversees.
	IntGateSwitch
	// IntOther covers the conventional BT nucleus work (exceptions,
	// mis-speculation recovery).
	IntOther
	numInterruptKinds
)

// String names the interrupt kind.
func (k InterruptKind) String() string {
	switch k {
	case IntPVTMiss:
		return "pvt-miss"
	case IntGateSwitch:
		return "gate-switch"
	case IntOther:
		return "other"
	default:
		return fmt.Sprintf("interrupt(%d)", uint8(k))
	}
}

// Nucleus is the BT component that fields interrupts and exceptions at the
// host-ISA and microarchitecture levels.
type Nucleus struct {
	counts [numInterruptKinds]uint64
	cycles [numInterruptKinds]float64
}

// NewNucleus returns an empty interrupt accountant.
func NewNucleus() *Nucleus { return &Nucleus{} }

// Raise records an interrupt of the given kind costing the given cycles
// and returns the cost for the caller to charge.
func (n *Nucleus) Raise(kind InterruptKind, cycles float64) float64 {
	if kind >= numInterruptKinds {
		panic(fmt.Sprintf("bt: unknown interrupt kind %d", kind))
	}
	n.counts[kind]++
	n.cycles[kind] += cycles
	return cycles
}

// Count returns the number of interrupts of the kind.
func (n *Nucleus) Count(kind InterruptKind) uint64 { return n.counts[kind] }

// Cycles returns the cycles spent in interrupts of the kind.
func (n *Nucleus) Cycles(kind InterruptKind) float64 { return n.cycles[kind] }

// TotalCycles returns all interrupt handling cycles.
func (n *Nucleus) TotalCycles() float64 {
	t := 0.0
	for _, c := range n.cycles {
		t += c
	}
	return t
}
