package bt

import (
	"testing"

	"powerchop/internal/isa"
	"powerchop/internal/program"
)

func testProgram(t *testing.T) *program.Program {
	t.Helper()
	b := program.NewBuilder("bt-test", "TEST", 1)
	r0 := b.Region(program.RegionSpec{Name: "hot", Insns: 10})
	r1 := b.Region(program.RegionSpec{Name: "cold", Insns: 20, Mix: isa.Mix{VectorFrac: 0.2}})
	b.Phase("p", 1000, map[int]float64{r0: 1, r1: 1})
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func cfg() Config {
	return Config{HotThreshold: 4, InterpCPI: 10, TranslateCyclesPerInsn: 100}
}

func TestConfigValidate(t *testing.T) {
	if err := cfg().Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []Config{
		{HotThreshold: 0, InterpCPI: 10},
		{HotThreshold: 4, InterpCPI: 0.5},
		{HotThreshold: 4, InterpCPI: 10, TranslateCyclesPerInsn: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestNewErrors(t *testing.T) {
	p := testProgram(t)
	if _, err := New(Config{}, p); err == nil {
		t.Fatal("bad config accepted")
	}
	if _, err := New(cfg(), &program.Program{Name: "empty"}); err == nil {
		t.Fatal("empty program accepted")
	}
}

func TestInterpretThenTranslate(t *testing.T) {
	s, err := New(cfg(), testProgram(t))
	if err != nil {
		t.Fatal(err)
	}
	// First three executions are interpreted.
	for i := 0; i < 3; i++ {
		tr, extra := s.Execute(0)
		if tr != nil {
			t.Fatalf("execution %d already translated", i)
		}
		// Interpreter overhead: (CPI-1) * 10 insns = 90 cycles.
		if extra != 90 {
			t.Fatalf("execution %d extra = %v, want 90", i, extra)
		}
	}
	// Fourth crosses the threshold: interpreter overhead plus the
	// one-time translation cost (100 * 10 insns).
	tr, extra := s.Execute(0)
	if tr != nil {
		t.Fatal("threshold execution should still be interpreted")
	}
	if extra != 90+1000 {
		t.Fatalf("threshold extra = %v, want 1090", extra)
	}
	// Fifth runs from the region cache.
	tr, extra = s.Execute(0)
	if tr == nil || extra != 0 {
		t.Fatalf("post-translation execution: tr=%v extra=%v", tr, extra)
	}
	if tr.ID != s.Translation(0).ID {
		t.Fatal("region cache entry mismatch")
	}
	if tr.Executions != 1 {
		t.Fatalf("executions = %d", tr.Executions)
	}
}

func TestTranslationIDIsHeadPC(t *testing.T) {
	p := testProgram(t)
	s, _ := New(cfg(), p)
	for i := 0; i < 5; i++ {
		s.Execute(1)
	}
	tr := s.Translation(1)
	if tr == nil {
		t.Fatal("region 1 not translated")
	}
	if tr.ID != p.Regions[1].HeadPC {
		t.Fatalf("translation ID %#x, want head PC %#x", tr.ID, p.Regions[1].HeadPC)
	}
	if tr.Insns != 20 {
		t.Fatalf("translation insns = %d", tr.Insns)
	}
}

func TestStatsAccumulate(t *testing.T) {
	s, _ := New(cfg(), testProgram(t))
	for i := 0; i < 10; i++ {
		s.Execute(0)
	}
	st := s.Stats()
	if st.InterpretedExecs != 4 || st.TranslatedExecs != 6 {
		t.Fatalf("execs = %d/%d", st.InterpretedExecs, st.TranslatedExecs)
	}
	if st.InterpretedInsns != 40 {
		t.Fatalf("interpreted insns = %d", st.InterpretedInsns)
	}
	if st.Translations != 1 {
		t.Fatalf("translations = %d", st.Translations)
	}
	if st.TranslationCycles != 1000 {
		t.Fatalf("translation cycles = %v", st.TranslationCycles)
	}
	if st.InterpreterCycles != 4*90 {
		t.Fatalf("interpreter cycles = %v", st.InterpreterCycles)
	}
	if s.RegionCacheSize() != 1 {
		t.Fatalf("region cache size = %d", s.RegionCacheSize())
	}
}

func TestNucleusAccounting(t *testing.T) {
	n := NewNucleus()
	if got := n.Raise(IntPVTMiss, 4000); got != 4000 {
		t.Fatalf("Raise returned %v", got)
	}
	n.Raise(IntPVTMiss, 4000)
	n.Raise(IntGateSwitch, 50)
	if n.Count(IntPVTMiss) != 2 || n.Cycles(IntPVTMiss) != 8000 {
		t.Fatalf("pvt-miss = %d/%v", n.Count(IntPVTMiss), n.Cycles(IntPVTMiss))
	}
	if n.TotalCycles() != 8050 {
		t.Fatalf("total = %v", n.TotalCycles())
	}
	if IntPVTMiss.String() != "pvt-miss" || IntGateSwitch.String() != "gate-switch" || IntOther.String() != "other" {
		t.Error("interrupt kind names")
	}
}

func TestNucleusPanicsOnUnknownKind(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown interrupt kind accepted")
		}
	}()
	NewNucleus().Raise(InterruptKind(99), 1)
}
