// Package rng provides small, fast, deterministic pseudo-random number
// generators used throughout the simulator.
//
// Determinism matters more than statistical strength here: every workload,
// experiment and test must produce identical instruction streams on every
// run and platform so that paper figures regenerate reproducibly. The
// package therefore implements its own xoshiro256** generator (seeded via
// splitmix64) instead of depending on the evolving behaviour of math/rand.
package rng

// Source is a deterministic xoshiro256** pseudo-random number generator.
// The zero value is not usable; construct with New.
type Source struct {
	s0, s1, s2, s3 uint64
}

// splitmix64 advances the seed and returns the next splitmix64 output.
// It is used only to expand a single 64-bit seed into generator state.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a Source seeded from seed. Distinct seeds yield independent
// streams; the same seed always yields the same stream.
func New(seed uint64) *Source {
	var s Source
	s.Reseed(seed)
	return &s
}

// Reseed resets the generator state as if it had been created by New(seed).
func (s *Source) Reseed(seed uint64) {
	x := seed
	s.s0 = splitmix64(&x)
	s.s1 = splitmix64(&x)
	s.s2 = splitmix64(&x)
	s.s3 = splitmix64(&x)
	// xoshiro must not start from the all-zero state.
	if s.s0|s.s1|s.s2|s.s3 == 0 {
		s.s0 = 0x9e3779b97f4a7c15
	}
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Uint64 returns the next value in the stream.
func (s *Source) Uint64() uint64 {
	result := rotl(s.s1*5, 7) * 9
	t := s.s1 << 17
	s.s2 ^= s.s0
	s.s3 ^= s.s1
	s.s1 ^= s.s2
	s.s0 ^= s.s3
	s.s2 ^= t
	s.s3 = rotl(s.s3, 45)
	return result
}

// Uint32 returns the next 32-bit value in the stream.
func (s *Source) Uint32() uint32 { return uint32(s.Uint64() >> 32) }

// Intn returns a value uniformly distributed in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with n <= 0")
	}
	return int(s.Uint64() % uint64(n))
}

// Uint64n returns a value uniformly distributed in [0, n). It panics if n == 0.
func (s *Source) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n called with n == 0")
	}
	if n&(n-1) == 0 {
		// Power-of-two range: the mask selects exactly the bits the
		// modulo would keep, skipping a 64-bit division on the hot
		// address-generation path. The result is bit-identical.
		return s.Uint64() & (n - 1)
	}
	return s.Uint64() % n
}

// Float64 returns a value uniformly distributed in [0, 1).
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p (clamped to [0,1]).
func (s *Source) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return s.Float64() < p
}

// Fork derives an independent child stream from the current state. The
// child is deterministic given the parent's state, so forking at fixed
// points yields reproducible component streams (e.g. one per code region).
func (s *Source) Fork() *Source {
	return New(s.Uint64() ^ 0xd1342543de82ef95)
}

// Perm returns a pseudo-random permutation of [0, n).
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}
