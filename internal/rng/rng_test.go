package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams with identical seeds diverged at step %d", i)
		}
	}
}

func TestDistinctSeedsDiverge(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams with distinct seeds coincided %d/1000 times", same)
	}
}

func TestReseedRestartsStream(t *testing.T) {
	s := New(7)
	first := make([]uint64, 16)
	for i := range first {
		first[i] = s.Uint64()
	}
	s.Reseed(7)
	for i := range first {
		if got := s.Uint64(); got != first[i] {
			t.Fatalf("after Reseed, value %d = %d, want %d", i, got, first[i])
		}
	}
}

func TestZeroSeedUsable(t *testing.T) {
	s := New(0)
	var zeroes int
	for i := 0; i < 100; i++ {
		if s.Uint64() == 0 {
			zeroes++
		}
	}
	if zeroes > 1 {
		t.Fatalf("zero-seeded generator emitted %d zeroes in 100 draws", zeroes)
	}
}

func TestIntnRange(t *testing.T) {
	s := New(3)
	for _, n := range []int{1, 2, 3, 10, 1000} {
		for i := 0; i < 200; i++ {
			v := s.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestUint64nPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Uint64n(0) did not panic")
		}
	}()
	New(1).Uint64n(0)
}

func TestFloat64Range(t *testing.T) {
	s := New(9)
	for i := 0; i < 10000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	s := New(11)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestBoolProbability(t *testing.T) {
	s := New(13)
	cases := []struct {
		p    float64
		want float64
	}{
		{-0.5, 0}, {0, 0}, {0.25, 0.25}, {0.75, 0.75}, {1, 1}, {1.5, 1},
	}
	const n = 50000
	for _, c := range cases {
		hits := 0
		for i := 0; i < n; i++ {
			if s.Bool(c.p) {
				hits++
			}
		}
		got := float64(hits) / n
		if math.Abs(got-c.want) > 0.02 {
			t.Fatalf("Bool(%v) hit rate = %v, want ~%v", c.p, got, c.want)
		}
	}
}

func TestForkIndependence(t *testing.T) {
	parent := New(21)
	child := parent.Fork()
	// The child must not replay the parent's stream.
	a := parent.Uint64()
	b := child.Uint64()
	if a == b {
		t.Fatal("fork replays parent stream")
	}
	// Forking at the same parent state must be reproducible.
	p1 := New(21)
	p2 := New(21)
	c1 := p1.Fork()
	c2 := p2.Fork()
	for i := 0; i < 100; i++ {
		if c1.Uint64() != c2.Uint64() {
			t.Fatalf("forks from identical parent states diverged at %d", i)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(31)
	for _, n := range []int{0, 1, 2, 5, 64} {
		p := s.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has len %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestPermProperty(t *testing.T) {
	s := New(37)
	f := func(nRaw uint8) bool {
		n := int(nRaw % 50)
		p := s.Perm(n)
		sum := 0
		for _, v := range p {
			sum += v
		}
		return sum == n*(n-1)/2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUint32Coverage(t *testing.T) {
	s := New(41)
	var hi, lo bool
	for i := 0; i < 1000; i++ {
		v := s.Uint32()
		if v > math.MaxUint32/2 {
			hi = true
		} else {
			lo = true
		}
	}
	if !hi || !lo {
		t.Fatal("Uint32 values do not cover both halves of the range")
	}
}

func BenchmarkUint64(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		_ = s.Uint64()
	}
}

func BenchmarkFloat64(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		_ = s.Float64()
	}
}
