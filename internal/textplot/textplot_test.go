package textplot

import (
	"strings"
	"testing"
)

func TestSpark(t *testing.T) {
	if got := Spark(nil); got != "" {
		t.Fatalf("empty spark = %q", got)
	}
	s := Spark([]float64{0, 1, 2, 3})
	if len([]rune(s)) != 4 {
		t.Fatalf("spark length = %d", len([]rune(s)))
	}
	runes := []rune(s)
	if runes[0] != '▁' || runes[3] != '█' {
		t.Fatalf("spark extremes = %q", s)
	}
	// Constant input renders at the low level everywhere.
	flat := []rune(Spark([]float64{5, 5, 5}))
	for _, r := range flat {
		if r != '▁' {
			t.Fatalf("flat spark = %q", string(flat))
		}
	}
}

func TestSeries(t *testing.T) {
	out := Series("ipc", []float64{1, 2, 3, 4}, 2)
	if !strings.Contains(out, "ipc") || !strings.Contains(out, "..") {
		t.Fatalf("Series = %q", out)
	}
}

func TestBar(t *testing.T) {
	if got := Bar(0.5, 10); strings.Count(got, "█") != 5 {
		t.Fatalf("Bar(0.5) = %q", got)
	}
	if got := Bar(-1, 4); strings.Count(got, "█") != 0 {
		t.Fatalf("Bar(-1) = %q", got)
	}
	if got := Bar(2, 4); strings.Count(got, "█") != 4 {
		t.Fatalf("Bar(2) = %q", got)
	}
	if len([]rune(Bar(0.3, 10))) != 10 {
		t.Fatal("bar width wrong")
	}
}

func TestBarChart(t *testing.T) {
	out := BarChart("Fig X", []Row{{"a", 10}, {"b", 5}}, 10, "%.0f")
	if !strings.Contains(out, "Fig X") || !strings.Contains(out, "a") || !strings.Contains(out, "10") {
		t.Fatalf("chart = %q", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("chart lines = %d", len(lines))
	}
	// b's bar should be half of a's.
	if strings.Count(lines[1], "█") != 2*strings.Count(lines[2], "█") {
		t.Fatalf("bars not proportional:\n%s", out)
	}
	// All-zero rows must not divide by zero.
	if out := BarChart("z", []Row{{"a", 0}}, 10, "%.0f"); !strings.Contains(out, "a") {
		t.Fatal("zero chart broken")
	}
}

func TestGroupedChart(t *testing.T) {
	out := GroupedChart("units", []string{"VPU", "BPU"}, []GroupedRow{
		{Label: "app", Values: []float64{1, 0.5}},
	}, 10, "%.1f")
	if !strings.Contains(out, "VPU") || !strings.Contains(out, "BPU") {
		t.Fatalf("grouped chart = %q", out)
	}
}

func TestTable(t *testing.T) {
	out := Table([]string{"name", "value"}, [][]string{
		{"alpha", "1"},
		{"b", "22"},
	})
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("table lines = %d", len(lines))
	}
	if !strings.HasPrefix(lines[1], "-") {
		t.Fatalf("missing separator: %q", lines[1])
	}
	if !strings.Contains(lines[2], "alpha") {
		t.Fatalf("row content: %q", lines[2])
	}
}
