// Package textplot renders the experiment harness's figures as plain-text
// charts: horizontal bar charts for per-benchmark comparisons and
// sparkline strips for time-series figures, mirroring the paper's figure
// formats in a terminal.
package textplot

import (
	"fmt"
	"strings"

	"powerchop/internal/stats"
)

// sparkLevels are the eight block characters used for sparklines.
var sparkLevels = []rune("▁▂▃▄▅▆▇█")

// Spark renders values as a one-line sparkline scaled to [min,max] of the
// data. An empty input yields an empty string.
func Spark(values []float64) string {
	if len(values) == 0 {
		return ""
	}
	lo, hi := stats.Min(values), stats.Max(values)
	span := hi - lo
	var b strings.Builder
	for _, v := range values {
		idx := 0
		if span > 0 {
			idx = int((v - lo) / span * float64(len(sparkLevels)-1))
		}
		if idx < 0 {
			idx = 0
		}
		if idx >= len(sparkLevels) {
			idx = len(sparkLevels) - 1
		}
		b.WriteRune(sparkLevels[idx])
	}
	return b.String()
}

// Series renders a labelled, downsampled sparkline with its range.
func Series(label string, values []float64, width int) string {
	s := (&stats.Series{Label: label, Values: values}).Downsample(width)
	return fmt.Sprintf("%-14s %s  [%.3g .. %.3g]",
		label, Spark(s.Values), stats.Min(values), stats.Max(values))
}

// Bar renders a single horizontal bar of the given fraction of width.
func Bar(frac float64, width int) string {
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	n := int(frac*float64(width) + 0.5)
	return strings.Repeat("█", n) + strings.Repeat("·", width-n)
}

// Row is one entry of a bar chart.
type Row struct {
	Label string
	Value float64
}

// BarChart renders rows as horizontal bars scaled so the maximum value
// fills the width. Values render with the given format (e.g. "%.1f%%").
func BarChart(title string, rows []Row, width int, format string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	max := 0.0
	for _, r := range rows {
		if r.Value > max {
			max = r.Value
		}
	}
	for _, r := range rows {
		frac := 0.0
		if max > 0 {
			frac = r.Value / max
		}
		fmt.Fprintf(&b, "  %-14s %s "+format+"\n", r.Label, Bar(frac, width), r.Value)
	}
	return b.String()
}

// GroupedChart renders rows with several series per label (e.g. VPU/BPU/MLC
// activity per benchmark).
type GroupedRow struct {
	Label  string
	Values []float64
}

// GroupedChart renders one line per row and series, all scaled to a shared
// maximum.
func GroupedChart(title string, seriesNames []string, rows []GroupedRow, width int, format string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	max := 0.0
	for _, r := range rows {
		for _, v := range r.Values {
			if v > max {
				max = v
			}
		}
	}
	for _, r := range rows {
		for i, v := range r.Values {
			name := ""
			if i < len(seriesNames) {
				name = seriesNames[i]
			}
			frac := 0.0
			if max > 0 {
				frac = v / max
			}
			fmt.Fprintf(&b, "  %-14s %-5s %s "+format+"\n", r.Label, name, Bar(frac, width), v)
		}
	}
	return b.String()
}

// Table renders an aligned text table.
func Table(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[min(i, len(widths)-1)], c)
		}
		b.WriteString("\n")
	}
	writeRow(header)
	sep := make([]string, len(header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range rows {
		writeRow(r)
	}
	return b.String()
}

// RightTable renders an aligned text table like Table, but right-aligns
// every column after the first — the natural layout for a label column
// followed by numeric columns (the attribution tables use it).
func RightTable(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			w := widths[min(i, len(widths)-1)]
			if i == 0 {
				fmt.Fprintf(&b, "%-*s", w, c)
			} else {
				fmt.Fprintf(&b, "%*s", w, c)
			}
		}
		b.WriteString("\n")
	}
	writeRow(header)
	sep := make([]string, len(header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range rows {
		writeRow(r)
	}
	return b.String()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
