// Package phase implements PowerChop's application-phase identification:
// execution windows, the hot translation buffer (HTB), and phase
// signatures (Section IV-B).
//
// As translations execute out of the region cache, the HTB — a small fully
// associative hardware buffer — tracks each translation's dynamic
// instruction count for the current execution window (1000 translations in
// the paper's configuration). At the window boundary the HTB forms the
// window's phase signature from the IDs of its N hottest translations
// (N = 4 in the paper) and flushes. Identical signatures identify
// recurrences of the same application phase.
package phase

import (
	"fmt"
	"slices"

	"powerchop/internal/obs"
)

// The obs event format must be able to carry a full-width signature.
var _ [obs.MaxSigIDs]uint32 = Signature{}.IDs

// Paper parameter defaults (Section IV-B1/B2).
const (
	// DefaultSignatureLen is the number of hottest translations in a
	// signature.
	DefaultSignatureLen = 4
	// DefaultWindowSize is the execution window length in translations.
	DefaultWindowSize = 1000
	// DefaultHTBCapacity is the HTB entry count.
	DefaultHTBCapacity = 128
	// MaxSignatureLen bounds the signature length for the sensitivity
	// ablation.
	MaxSignatureLen = 8
)

// Signature identifies an application phase: the IDs of the window's
// hottest translations, stored sorted ascending so that equality is
// independent of hotness ordering. Unused slots (when a window executed
// fewer distinct translations than the signature length) are zero.
// Signature is comparable and usable as a map key.
type Signature struct {
	IDs [MaxSignatureLen]uint32
	N   uint8
}

// String renders the signature for diagnostics.
func (s Signature) String() string {
	out := "<"
	for i := 0; i < int(s.N); i++ {
		if i > 0 {
			out += ","
		}
		out += fmt.Sprintf("t%x", s.IDs[i])
	}
	return out + ">"
}

// Zero reports whether the signature is empty (no translations observed).
func (s Signature) Zero() bool { return s.N == 0 }

// Config parameterizes the HTB.
type Config struct {
	// Capacity is the HTB entry count; translations beyond it within a
	// window are ignored (paper behaviour).
	Capacity int
	// WindowSize is the execution window length in translations.
	WindowSize int
	// SignatureLen is the number of hottest translations per signature.
	SignatureLen int
}

// DefaultConfig returns the paper's parameters.
func DefaultConfig() Config {
	return Config{
		Capacity:     DefaultHTBCapacity,
		WindowSize:   DefaultWindowSize,
		SignatureLen: DefaultSignatureLen,
	}
}

// Validate reports an error for inconsistent configurations.
func (c Config) Validate() error {
	if c.Capacity <= 0 {
		return fmt.Errorf("phase: HTB capacity %d", c.Capacity)
	}
	if c.WindowSize <= 0 {
		return fmt.Errorf("phase: window size %d", c.WindowSize)
	}
	if c.SignatureLen <= 0 || c.SignatureLen > MaxSignatureLen {
		return fmt.Errorf("phase: signature length %d out of [1,%d]", c.SignatureLen, MaxSignatureLen)
	}
	if c.SignatureLen > c.Capacity {
		return fmt.Errorf("phase: signature length %d exceeds HTB capacity %d", c.SignatureLen, c.Capacity)
	}
	return nil
}

// HTB is the hot translation buffer. Within a window it accumulates the
// dynamic instruction count of each executing translation; at the window
// boundary it produces the phase signature and flushes.
type HTB struct {
	cfg     Config
	counts  map[uint32]uint64
	execs   int
	ignored uint64 // translations dropped because the buffer was full
	windows uint64 // windows completed
	sigBuf  []htbEntry
	tracer  obs.Tracer
}

type htbEntry struct {
	id    uint32
	insns uint64
}

// NewHTB builds an HTB. It panics on invalid configuration; use
// Config.Validate to check first.
func NewHTB(cfg Config) *HTB {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &HTB{
		cfg:    cfg,
		counts: make(map[uint32]uint64, cfg.Capacity),
		sigBuf: make([]htbEntry, 0, cfg.Capacity),
	}
}

// Config returns the HTB configuration.
func (h *HTB) Config() Config { return h.cfg }

// SetTracer attaches an event tracer; each EndWindow then emits a
// KindWindowClose event. A nil tracer (the default) disables emission.
func (h *HTB) SetTracer(t obs.Tracer) { h.tracer = t }

// Record notes the execution of one translation with the given dynamic
// instruction count. It returns true when this execution completes the
// current window; the caller must then call EndWindow.
func (h *HTB) Record(id uint32, insns uint64) (windowEnded bool) {
	if _, present := h.counts[id]; present {
		h.counts[id] += insns
	} else if len(h.counts) < h.cfg.Capacity {
		h.counts[id] = insns
	} else {
		// Buffer full: the translation is simply ignored (Section IV-B2).
		h.ignored++
	}
	h.execs++
	return h.execs >= h.cfg.WindowSize
}

// EndWindow closes the current window, returning its phase signature and
// translation vector (translation ID → dynamic instructions), then flushes
// the buffer for the next window. The returned map is a copy owned by the
// caller; callers that don't consume the vector should use EndWindowNoVec,
// which skips the per-window allocation.
func (h *HTB) EndWindow() (Signature, map[uint32]uint64) {
	vec := make(map[uint32]uint64, len(h.counts))
	for id, c := range h.counts {
		vec[id] = c
	}
	return h.EndWindowNoVec(), vec
}

// EndWindowNoVec is EndWindow without the translation-vector copy: the
// simulator closes a window every thousand translations and usually has
// no vector consumer, so the steady-state loop stays allocation-free.
func (h *HTB) EndWindowNoVec() Signature {
	h.sigBuf = h.sigBuf[:0]
	for id, n := range h.counts {
		h.sigBuf = append(h.sigBuf, htbEntry{id, n})
	}
	// Hottest first; ties broken by ID so signatures are deterministic.
	// The comparator captures nothing, so sorting does not allocate.
	slices.SortFunc(h.sigBuf, func(a, b htbEntry) int {
		if a.insns != b.insns {
			if a.insns > b.insns {
				return -1
			}
			return 1
		}
		if a.id != b.id {
			if a.id < b.id {
				return -1
			}
			return 1
		}
		return 0
	})
	var sig Signature
	n := h.cfg.SignatureLen
	if n > len(h.sigBuf) {
		n = len(h.sigBuf)
	}
	for i := 0; i < n; i++ {
		sig.IDs[i] = h.sigBuf[i].id
	}
	sig.N = uint8(n)
	slices.Sort(sig.IDs[:n])

	// Signature coverage: the share of the window's dynamic instructions
	// executed by the signature's hot translations — provenance for how
	// representative the HTB-derived signature is of the window it labels.
	// Computed from the live counts before the flush below.
	var insns, covered uint64
	for _, c := range h.counts {
		insns += c
	}
	for i := 0; i < n; i++ {
		covered += h.counts[sig.IDs[i]]
	}
	for id := range h.counts {
		delete(h.counts, id)
	}
	h.execs = 0
	h.windows++
	if h.tracer != nil {
		coverage := 0.0
		if insns > 0 {
			coverage = float64(covered) / float64(insns)
		}
		h.tracer.Emit(obs.Event{
			Kind:   obs.KindWindowClose,
			Window: h.windows,
			SigIDs: sig.IDs,
			SigN:   sig.N,
			Count:  insns,
			Value:  float64(h.ignored),
			Prev:   coverage,
		})
	}
	return sig
}

// WindowProgress returns how many translations of the current window have
// executed.
func (h *HTB) WindowProgress() int { return h.execs }

// Windows returns the number of completed windows.
func (h *HTB) Windows() uint64 { return h.windows }

// Ignored returns the number of translation executions dropped because the
// buffer was full.
func (h *HTB) Ignored() uint64 { return h.ignored }
