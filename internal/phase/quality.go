package phase

import "powerchop/internal/stats"

// QualityTracker measures how well phase signatures capture recurring code,
// the paper's Figure 8 metric: the Manhattan distance between the
// translation vectors of execution windows that share a signature.
//
// The paper averages the distance over every pair of same-signature
// windows. Storing every window's translation vector for exact pairwise
// comparison is quadratic in run length, so the tracker compares each
// window against the previous window that carried the same signature — a
// consecutive-pair approximation that preserves the metric's shape
// (identical windows score 0; disjoint windows score the maximum) at
// O(windows) cost and is robust to a single atypical window.
type QualityTracker struct {
	window int
	refs   map[Signature]map[uint32]uint64

	comparisons uint64
	sumDist     float64
	maxDist     float64
}

// NewQualityTracker creates a tracker for windows of the given size (in
// translations).
func NewQualityTracker(windowSize int) *QualityTracker {
	return &QualityTracker{
		window: windowSize,
		refs:   make(map[Signature]map[uint32]uint64),
	}
}

// Observe records a completed window's signature and translation vector.
// The tracker takes ownership of vec.
func (q *QualityTracker) Observe(sig Signature, vec map[uint32]uint64) {
	if sig.Zero() {
		return
	}
	ref, seen := q.refs[sig]
	q.refs[sig] = vec // subsequent windows compare against this one
	if !seen {
		return
	}
	// The HTB's translation vectors carry dynamic *instruction* counts,
	// so the raw L1 distance scales with window instruction volume.
	// Normalize by the vectors' combined magnitude: identical windows
	// score 0, fully disjoint windows score 1, matching the paper's
	// scale where a worst-case pair of 1000-translation windows has
	// distance 1000 (i.e. fraction 1).
	raw := float64(stats.Manhattan(ref, vec))
	mag := float64(sum(ref) + sum(vec))
	if mag == 0 {
		return
	}
	frac := raw / mag
	d := frac * float64(q.window)
	q.comparisons++
	q.sumDist += d
	if d > q.maxDist {
		q.maxDist = d
	}
}

func sum(m map[uint32]uint64) uint64 {
	var t uint64
	for _, v := range m {
		t += v
	}
	return t
}

// Comparisons returns the number of same-signature window comparisons.
func (q *QualityTracker) Comparisons() uint64 { return q.comparisons }

// DistinctSignatures returns the number of distinct signatures observed.
func (q *QualityTracker) DistinctSignatures() int { return len(q.refs) }

// MeanDistance returns the average per-window translation distance, in
// translations (0 = identical code, windowSize = disjoint code).
func (q *QualityTracker) MeanDistance() float64 {
	if q.comparisons == 0 {
		return 0
	}
	return q.sumDist / float64(q.comparisons)
}

// MaxDistance returns the worst observed distance in translations.
func (q *QualityTracker) MaxDistance() float64 { return q.maxDist }

// MeanDistanceFrac returns MeanDistance normalized by the window size —
// the paper's "2.8% average" number.
func (q *QualityTracker) MeanDistanceFrac() float64 {
	if q.window == 0 {
		return 0
	}
	return q.MeanDistance() / float64(q.window)
}

// MaxDistanceFrac returns MaxDistance normalized by the window size.
func (q *QualityTracker) MaxDistanceFrac() float64 {
	if q.window == 0 {
		return 0
	}
	return q.MaxDistance() / float64(q.window)
}
