package phase

import (
	"testing"
	"testing/quick"
)

func tinyConfig() Config {
	return Config{Capacity: 8, WindowSize: 10, SignatureLen: 4}
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config rejected: %v", err)
	}
	bad := []Config{
		{Capacity: 0, WindowSize: 10, SignatureLen: 4},
		{Capacity: 8, WindowSize: 0, SignatureLen: 4},
		{Capacity: 8, WindowSize: 10, SignatureLen: 0},
		{Capacity: 8, WindowSize: 10, SignatureLen: MaxSignatureLen + 1},
		{Capacity: 2, WindowSize: 10, SignatureLen: 4},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestDefaultsMatchPaper(t *testing.T) {
	c := DefaultConfig()
	if c.Capacity != 128 || c.WindowSize != 1000 || c.SignatureLen != 4 {
		t.Fatalf("defaults %+v drifted from the paper", c)
	}
}

func TestWindowBoundary(t *testing.T) {
	h := NewHTB(tinyConfig())
	for i := 0; i < 9; i++ {
		if ended := h.Record(uint32(i), 10); ended {
			t.Fatalf("window ended early at %d", i)
		}
	}
	if ended := h.Record(99, 10); !ended {
		t.Fatal("window did not end at the boundary")
	}
	if got := h.WindowProgress(); got != 10 {
		t.Fatalf("progress = %d", got)
	}
	h.EndWindow()
	if got := h.WindowProgress(); got != 0 {
		t.Fatalf("progress after flush = %d", got)
	}
	if h.Windows() != 1 {
		t.Fatalf("windows = %d", h.Windows())
	}
}

func TestSignatureHottestN(t *testing.T) {
	h := NewHTB(tinyConfig())
	// Six translations with distinct weights; hottest four are 5,6,7,8.
	weights := map[uint32]uint64{3: 1, 4: 2, 5: 30, 6: 40, 7: 50, 8: 60}
	i := 0
	for id, w := range weights {
		h.Record(id, w)
		i++
	}
	for ; i < 10; i++ {
		h.Record(8, 1) // pad the window; adds weight to id 8
	}
	sig, vec := h.EndWindow()
	if sig.N != 4 {
		t.Fatalf("signature len = %d", sig.N)
	}
	want := []uint32{5, 6, 7, 8}
	for i, id := range want {
		if sig.IDs[i] != id {
			t.Fatalf("signature = %v, want %v", sig.IDs[:4], want)
		}
	}
	if vec[8] != 64 {
		t.Fatalf("vector[8] = %d, want 64", vec[8])
	}
}

func TestSignatureCanonicalOrder(t *testing.T) {
	// The same set of hot translations must give the same signature no
	// matter the order or relative hotness ranking.
	mk := func(order []uint32, weights []uint64) Signature {
		h := NewHTB(Config{Capacity: 8, WindowSize: len(order), SignatureLen: 4})
		for i, id := range order {
			h.Record(id, weights[i])
		}
		sig, _ := h.EndWindow()
		return sig
	}
	a := mk([]uint32{10, 20, 30, 40}, []uint64{100, 90, 80, 70})
	b := mk([]uint32{40, 30, 20, 10}, []uint64{100, 90, 80, 70})
	if a != b {
		t.Fatalf("signatures differ: %v vs %v", a, b)
	}
}

func TestShortWindowSignature(t *testing.T) {
	h := NewHTB(tinyConfig())
	for i := 0; i < 10; i++ {
		h.Record(7, 5) // a single translation dominates
	}
	sig, _ := h.EndWindow()
	if sig.N != 1 || sig.IDs[0] != 7 {
		t.Fatalf("signature = %v", sig)
	}
	if sig.Zero() {
		t.Fatal("non-empty signature reported zero")
	}
}

func TestCapacityIgnoresOverflow(t *testing.T) {
	h := NewHTB(Config{Capacity: 4, WindowSize: 10, SignatureLen: 2})
	for i := 0; i < 10; i++ {
		h.Record(uint32(i), 1) // 10 distinct translations, capacity 4
	}
	if got := h.Ignored(); got != 6 {
		t.Fatalf("ignored = %d, want 6", got)
	}
	_, vec := h.EndWindow()
	if len(vec) != 4 {
		t.Fatalf("vector size = %d, want 4", len(vec))
	}
}

func TestRepeatedExecutionAccumulates(t *testing.T) {
	h := NewHTB(tinyConfig())
	for i := 0; i < 10; i++ {
		h.Record(1, 7)
	}
	_, vec := h.EndWindow()
	if vec[1] != 70 {
		t.Fatalf("accumulated insns = %d, want 70", vec[1])
	}
}

func TestFlushBetweenWindows(t *testing.T) {
	h := NewHTB(tinyConfig())
	for i := 0; i < 10; i++ {
		h.Record(1, 1)
	}
	h.EndWindow()
	for i := 0; i < 10; i++ {
		h.Record(2, 1)
	}
	sig, vec := h.EndWindow()
	if _, stale := vec[1]; stale {
		t.Fatal("previous window leaked into the next")
	}
	if sig.IDs[0] != 2 {
		t.Fatalf("signature = %v", sig)
	}
}

func TestSignatureString(t *testing.T) {
	h := NewHTB(tinyConfig())
	for i := 0; i < 10; i++ {
		h.Record(0xab, 1)
	}
	sig, _ := h.EndWindow()
	if got := sig.String(); got != "<tab>" {
		t.Fatalf("String = %q", got)
	}
	var empty Signature
	if got := empty.String(); got != "<>" {
		t.Fatalf("empty String = %q", got)
	}
	if !empty.Zero() {
		t.Fatal("empty signature not zero")
	}
}

func TestNewHTBPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewHTB with invalid config did not panic")
		}
	}()
	NewHTB(Config{})
}

func TestSignatureDeterministicProperty(t *testing.T) {
	// Identical windows always yield identical signatures.
	f := func(ids []uint16) bool {
		if len(ids) == 0 {
			return true
		}
		run := func() Signature {
			h := NewHTB(Config{Capacity: 128, WindowSize: len(ids), SignatureLen: 4})
			for _, id := range ids {
				h.Record(uint32(id), uint64(id%7)+1)
			}
			sig, _ := h.EndWindow()
			return sig
		}
		return run() == run()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQualityIdenticalWindows(t *testing.T) {
	q := NewQualityTracker(10)
	sig := Signature{N: 1}
	sig.IDs[0] = 1
	vec := func() map[uint32]uint64 { return map[uint32]uint64{1: 10} }
	q.Observe(sig, vec())
	q.Observe(sig, vec())
	q.Observe(sig, vec())
	if got := q.Comparisons(); got != 2 {
		t.Fatalf("comparisons = %d", got)
	}
	if got := q.MeanDistance(); got != 0 {
		t.Fatalf("mean distance of identical windows = %v", got)
	}
	if got := q.DistinctSignatures(); got != 1 {
		t.Fatalf("distinct signatures = %d", got)
	}
}

func TestQualityDisjointWindows(t *testing.T) {
	q := NewQualityTracker(10)
	sig := Signature{N: 1}
	sig.IDs[0] = 1
	q.Observe(sig, map[uint32]uint64{1: 10})
	q.Observe(sig, map[uint32]uint64{2: 10}) // fully disjoint
	if got := q.MeanDistance(); got != 10 {
		t.Fatalf("disjoint distance = %v, want 10 (the window size)", got)
	}
	if got := q.MeanDistanceFrac(); got != 1 {
		t.Fatalf("disjoint distance frac = %v, want 1", got)
	}
	if got := q.MaxDistanceFrac(); got != 1 {
		t.Fatalf("max distance frac = %v", got)
	}
}

func TestQualityIgnoresEmptySignatures(t *testing.T) {
	q := NewQualityTracker(10)
	q.Observe(Signature{}, map[uint32]uint64{1: 10})
	q.Observe(Signature{}, map[uint32]uint64{2: 10})
	if q.Comparisons() != 0 || q.DistinctSignatures() != 0 {
		t.Fatal("empty signatures were tracked")
	}
}

func TestQualityPartialOverlap(t *testing.T) {
	q := NewQualityTracker(10)
	sig := Signature{N: 2}
	sig.IDs[0], sig.IDs[1] = 1, 2
	q.Observe(sig, map[uint32]uint64{1: 5, 2: 5})
	q.Observe(sig, map[uint32]uint64{1: 5, 3: 5})
	// L1 distance = |5-5| + |5-0| + |0-5| = 10, normalized /2 = 5.
	if got := q.MeanDistance(); got != 5 {
		t.Fatalf("partial overlap distance = %v, want 5", got)
	}
}

func TestQualityZeroWindowSize(t *testing.T) {
	q := NewQualityTracker(0)
	if q.MeanDistanceFrac() != 0 || q.MaxDistanceFrac() != 0 {
		t.Fatal("zero window size should report zero fractions")
	}
}
