package phase

// Supplementary QualityTracker tests; the basic identical/disjoint/
// partial-overlap cases live in phase_test.go.

import (
	"math"
	"testing"
)

func sigOf(ids ...uint32) Signature {
	var s Signature
	copy(s.IDs[:], ids)
	s.N = uint8(len(ids))
	return s
}

func TestQualityComparesLatestWindow(t *testing.T) {
	// The tracker compares consecutive same-signature windows, so a
	// changed middle window is charged twice (once against each side)
	// rather than averaged away against a stale first reference.
	q := NewQualityTracker(1000)
	sig := sigOf(9)
	q.Observe(sig, map[uint32]uint64{1: 1000})
	q.Observe(sig, map[uint32]uint64{2: 1000})
	q.Observe(sig, map[uint32]uint64{1: 1000})
	if q.Comparisons() != 2 {
		t.Fatalf("comparisons = %d", q.Comparisons())
	}
	if d := q.MeanDistance(); d != 1000 {
		t.Errorf("mean distance %v, want 1000 (both consecutive pairs disjoint)", d)
	}
}

func TestQualityDistinctSignatures(t *testing.T) {
	q := NewQualityTracker(1000)
	q.Observe(sigOf(1), map[uint32]uint64{1: 10})
	q.Observe(sigOf(2), map[uint32]uint64{2: 10})
	q.Observe(sigOf(1, 2), map[uint32]uint64{1: 5, 2: 5})
	q.Observe(sigOf(1), map[uint32]uint64{1: 10})
	if n := q.DistinctSignatures(); n != 3 {
		t.Errorf("distinct signatures = %d, want 3", n)
	}
	// Only the repeated sigOf(1) produced a comparison.
	if q.Comparisons() != 1 {
		t.Errorf("comparisons = %d, want 1", q.Comparisons())
	}
}

func TestQualityEmptyTracker(t *testing.T) {
	q := NewQualityTracker(1000)
	if q.MeanDistance() != 0 || q.MaxDistance() != 0 ||
		q.MeanDistanceFrac() != 0 || q.MaxDistanceFrac() != 0 {
		t.Error("empty tracker reports nonzero distances")
	}
}

func TestQualityZeroMagnitudePair(t *testing.T) {
	// Two same-signature windows with empty vectors must not divide by
	// zero or count as a comparison.
	q := NewQualityTracker(1000)
	sig := sigOf(3)
	q.Observe(sig, map[uint32]uint64{})
	q.Observe(sig, map[uint32]uint64{})
	if q.Comparisons() != 0 {
		t.Errorf("zero-magnitude pair compared: %d", q.Comparisons())
	}
	if d := q.MeanDistance(); d != 0 || math.IsNaN(d) {
		t.Errorf("zero-magnitude pair: distance %v", d)
	}
}

func TestQualityMaxTracksWorstPair(t *testing.T) {
	q := NewQualityTracker(1000)
	sig := sigOf(4)
	q.Observe(sig, map[uint32]uint64{1: 1000})
	q.Observe(sig, map[uint32]uint64{1: 500, 2: 500}) // frac 0.5
	q.Observe(sig, map[uint32]uint64{3: 1000})        // frac 1 vs previous
	if f := q.MaxDistanceFrac(); f != 1 {
		t.Errorf("max fraction %v, want 1", f)
	}
	if m := q.MeanDistanceFrac(); math.Abs(m-0.75) > 1e-9 {
		t.Errorf("mean fraction %v, want 0.75", m)
	}
}
