// Package benchgate holds the benchmark-artifact model shared by
// cmd/benchjson (which writes BENCH_*.json artifacts and diffs them)
// and the alerting CLI (`powerchop alerts check`, which treats
// regressions against a baseline as a rule source): parsing `go test
// -bench` output, loading artifacts, the trajectory diff, and the
// regression gate.
package benchgate

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	// Name is the full benchmark name, including any -N GOMAXPROCS
	// suffix (e.g. "BenchmarkTracerOverhead/traced-8").
	Name string `json:"name"`
	// Iterations is the measured b.N.
	Iterations int64 `json:"iterations"`
	// NsPerOp is the headline ns/op figure.
	NsPerOp float64 `json:"ns_per_op"`
	// Metrics holds every reported unit, ns/op included (also B/op,
	// allocs/op and custom b.ReportMetric units when present).
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Artifact is the JSON document benchjson writes.
type Artifact struct {
	GeneratedAt string   `json:"generated_at"`
	GoVersion   string   `json:"go_version"`
	GOOS        string   `json:"goos"`
	GOARCH      string   `json:"goarch"`
	GOMAXPROCS  int      `json:"gomaxprocs,omitempty"`
	Command     string   `json:"command"`
	Results     []Result `json:"results"`
}

// HostWarnings reports host-environment differences between two
// artifacts: ns/op deltas across Go versions, operating systems,
// architectures or core counts are trajectories of the host as much as
// of the code, so the diff flags them. Fields a pre-metadata baseline
// left empty are skipped rather than reported as mismatches.
func HostWarnings(baseline, current *Artifact) []string {
	var warns []string
	check := func(field, old, new string) {
		if old != "" && old != new {
			warns = append(warns, fmt.Sprintf("%s changed: %s -> %s", field, old, new))
		}
	}
	check("go version", baseline.GoVersion, current.GoVersion)
	check("GOOS", baseline.GOOS, current.GOOS)
	check("GOARCH", baseline.GOARCH, current.GOARCH)
	if baseline.GOMAXPROCS != 0 && baseline.GOMAXPROCS != current.GOMAXPROCS {
		warns = append(warns, fmt.Sprintf("GOMAXPROCS changed: %d -> %d",
			baseline.GOMAXPROCS, current.GOMAXPROCS))
	}
	return warns
}

// ParseLine parses one `go test -bench` output line of the form
//
//	BenchmarkName-8   100   11234567 ns/op   42 B/op   7 allocs/op
//
// returning ok=false for non-benchmark lines (headers, PASS, ok ...).
func ParseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{
		Name:       fields[0],
		Iterations: iters,
		Metrics:    map[string]float64{},
	}
	// The remainder alternates value/unit pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		unit := fields[i+1]
		r.Metrics[unit] = v
		if unit == "ns/op" {
			r.NsPerOp = v
		}
	}
	if len(r.Metrics) == 0 {
		return Result{}, false
	}
	return r, true
}

// Parse collects every benchmark line from a `go test -bench` run.
func Parse(r io.Reader) ([]Result, error) {
	var out []Result
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		if res, ok := ParseLine(sc.Text()); ok {
			out = append(out, res)
		}
	}
	return out, sc.Err()
}

// DiffReport renders the ns/op trajectory of new results against a
// baseline artifact: one line per benchmark present in either set, with
// the relative delta where both sides measured it. Informational only;
// Gate is the enforcing form.
func DiffReport(baseline, current *Artifact) string {
	var b strings.Builder
	base := make(map[string]Result, len(baseline.Results))
	for _, r := range baseline.Results {
		base[r.Name] = r
	}
	for _, warn := range HostWarnings(baseline, current) {
		fmt.Fprintf(&b, "warning: %s — deltas compare different hosts\n", warn)
	}
	fmt.Fprintf(&b, "benchmark trajectory vs baseline (%s):\n", baseline.GeneratedAt)
	seen := make(map[string]bool, len(current.Results))
	for _, r := range current.Results {
		seen[r.Name] = true
		old, ok := base[r.Name]
		switch {
		case !ok:
			fmt.Fprintf(&b, "  %-50s %14.0f ns/op  (new)\n", r.Name, r.NsPerOp)
		case old.NsPerOp > 0:
			delta := (r.NsPerOp - old.NsPerOp) / old.NsPerOp * 100
			fmt.Fprintf(&b, "  %-50s %14.0f ns/op  %+7.1f%% (was %.0f)\n",
				r.Name, r.NsPerOp, delta, old.NsPerOp)
		default:
			fmt.Fprintf(&b, "  %-50s %14.0f ns/op  (baseline had no ns/op)\n", r.Name, r.NsPerOp)
		}
	}
	for _, r := range baseline.Results {
		if !seen[r.Name] {
			fmt.Fprintf(&b, "  %-50s %14s  (removed; was %.0f ns/op)\n", r.Name, "-", r.NsPerOp)
		}
	}
	return b.String()
}

// Violation is one benchmark whose ns/op regressed past the gate.
type Violation struct {
	// Name is the benchmark, Old and New the baseline and current
	// ns/op, DeltaPct the relative regression in percent.
	Name     string  `json:"name"`
	Old      float64 `json:"old_ns_per_op"`
	New      float64 `json:"new_ns_per_op"`
	DeltaPct float64 `json:"delta_pct"`
}

func (v Violation) String() string {
	return fmt.Sprintf("%s +%.1f%% ns/op (was %.0f, now %.0f)",
		v.Name, v.DeltaPct, v.Old, v.New)
}

// Gate compares current against baseline and returns every benchmark
// whose ns/op regressed by more than pct percent, in current-result
// order (deterministic). Benchmarks present on only one side are not
// violations — additions and removals are trajectory, not regression.
func Gate(baseline, current *Artifact, pct float64) []Violation {
	base := make(map[string]Result, len(baseline.Results))
	for _, r := range baseline.Results {
		base[r.Name] = r
	}
	var out []Violation
	for _, r := range current.Results {
		old, ok := base[r.Name]
		if !ok || old.NsPerOp <= 0 {
			continue
		}
		delta := (r.NsPerOp - old.NsPerOp) / old.NsPerOp * 100
		if delta > pct {
			out = append(out, Violation{
				Name: r.Name, Old: old.NsPerOp, New: r.NsPerOp, DeltaPct: delta,
			})
		}
	}
	return out
}

// NewestBaseline finds the default baseline: the lexically newest
// BENCH_*.json in dir — the stamp format (BENCH_20060102T150405Z.json)
// sorts chronologically — excluding the artifact being written. Returns
// "" when none exists.
func NewestBaseline(dir, exclude string) string {
	matches, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return ""
	}
	sort.Strings(matches)
	for i := len(matches) - 1; i >= 0; i-- {
		if filepath.Base(matches[i]) != filepath.Base(exclude) {
			return matches[i]
		}
	}
	return ""
}

// Load reads a previously written BENCH_*.json document.
func Load(path string) (*Artifact, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var art Artifact
	if err := json.NewDecoder(f).Decode(&art); err != nil {
		return nil, fmt.Errorf("parsing %s: %w", path, err)
	}
	return &art, nil
}
