package benchgate

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseLine(t *testing.T) {
	r, ok := ParseLine("BenchmarkTracerOverhead/traced-8   \t     100\t  11234567 ns/op\t  42 B/op\t       7 allocs/op")
	if !ok {
		t.Fatal("benchmark line rejected")
	}
	if r.Name != "BenchmarkTracerOverhead/traced-8" || r.Iterations != 100 {
		t.Fatalf("parsed: %+v", r)
	}
	if r.NsPerOp != 11234567 || r.Metrics["B/op"] != 42 || r.Metrics["allocs/op"] != 7 {
		t.Fatalf("metrics: %+v", r.Metrics)
	}

	// Custom metric units pass through.
	r, ok = ParseLine("BenchmarkX-4 200 5000 ns/op 1.5 windows/op")
	if !ok || r.Metrics["windows/op"] != 1.5 {
		t.Fatalf("custom metric: %+v ok=%v", r, ok)
	}

	for _, bad := range []string{
		"",
		"goos: linux",
		"PASS",
		"ok  \tpowerchop\t1.2s",
		"BenchmarkBroken-8 notanumber 5 ns/op",
		"BenchmarkNoMetrics-8 100",
	} {
		if _, ok := ParseLine(bad); ok {
			t.Errorf("accepted non-benchmark line %q", bad)
		}
	}
}

func TestDiffReport(t *testing.T) {
	baseline := &Artifact{
		GeneratedAt: "2026-08-01T00:00:00Z",
		Results: []Result{
			{Name: "BenchmarkA-8", NsPerOp: 1000},
			{Name: "BenchmarkGone-8", NsPerOp: 500},
		},
	}
	current := &Artifact{
		Results: []Result{
			{Name: "BenchmarkA-8", NsPerOp: 1100},
			{Name: "BenchmarkNew-8", NsPerOp: 200},
		},
	}
	out := DiffReport(baseline, current)
	for _, want := range []string{
		"2026-08-01T00:00:00Z",
		"BenchmarkA-8",
		"+10.0%",
		"(was 1000)",
		"BenchmarkNew-8",
		"(new)",
		"BenchmarkGone-8",
		"(removed; was 500 ns/op)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("diff report missing %q:\n%s", want, out)
		}
	}
}

// TestGate pins the regression gate: regressions beyond the percentage
// violate, improvements and within-noise deltas pass, and benchmarks
// present on only one side are trajectory, not violations.
func TestGate(t *testing.T) {
	baseline := &Artifact{Results: []Result{
		{Name: "BenchmarkA-8", NsPerOp: 1000},
		{Name: "BenchmarkB-8", NsPerOp: 1000},
		{Name: "BenchmarkC-8", NsPerOp: 1000},
		{Name: "BenchmarkGone-8", NsPerOp: 1000},
		{Name: "BenchmarkZeroBase-8", NsPerOp: 0},
	}}
	current := &Artifact{Results: []Result{
		{Name: "BenchmarkA-8", NsPerOp: 1400},  // +40%: violation at 20
		{Name: "BenchmarkB-8", NsPerOp: 1100},  // +10%: within gate
		{Name: "BenchmarkC-8", NsPerOp: 600},   // improvement
		{Name: "BenchmarkNew-8", NsPerOp: 900}, // no baseline
		{Name: "BenchmarkZeroBase-8", NsPerOp: 900},
	}}
	viols := Gate(baseline, current, 20)
	if len(viols) != 1 {
		t.Fatalf("violations = %+v, want exactly BenchmarkA-8", viols)
	}
	v := viols[0]
	if v.Name != "BenchmarkA-8" || v.Old != 1000 || v.New != 1400 {
		t.Fatalf("violation = %+v", v)
	}
	if v.DeltaPct < 39.9 || v.DeltaPct > 40.1 {
		t.Fatalf("delta = %v, want ~40", v.DeltaPct)
	}
	if got := v.String(); !strings.Contains(got, "BenchmarkA-8 +40.0% ns/op (was 1000, now 1400)") {
		t.Fatalf("violation string = %q", got)
	}

	// A gate wide enough passes everything.
	if viols := Gate(baseline, current, 50); len(viols) != 0 {
		t.Fatalf("wide gate violations = %+v", viols)
	}
}

// TestNewestBaseline checks the default-baseline search: newest stamp
// wins, the artifact being written is excluded, empty directories give
// no baseline.
func TestNewestBaseline(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{
		"BENCH_20260801T000000Z.json",
		"BENCH_20260805T140627Z.json",
		"BENCH_20260803T120000Z.json",
	} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("{}"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	got := NewestBaseline(dir, "")
	if filepath.Base(got) != "BENCH_20260805T140627Z.json" {
		t.Fatalf("newest baseline = %q", got)
	}
	// The artifact just written must not be its own baseline.
	got = NewestBaseline(dir, "BENCH_20260805T140627Z.json")
	if filepath.Base(got) != "BENCH_20260803T120000Z.json" {
		t.Fatalf("baseline with exclusion = %q", got)
	}
	if got := NewestBaseline(t.TempDir(), ""); got != "" {
		t.Fatalf("empty dir baseline = %q", got)
	}
}

func TestParse(t *testing.T) {
	out := `goos: linux
goarch: amd64
pkg: powerchop
BenchmarkA-8   	     100	  1000 ns/op	  16 B/op	  1 allocs/op
BenchmarkB/sub-8 	      50	  2000 ns/op
PASS
ok  	powerchop	2.0s
`
	results, err := Parse(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("parsed %d results", len(results))
	}
	if results[0].Name != "BenchmarkA-8" || results[1].NsPerOp != 2000 {
		t.Fatalf("results: %+v", results)
	}
}

// TestHostWarnings pins the cross-host diff warnings: mismatched host
// metadata is flagged, while fields an old baseline never recorded stay
// silent.
func TestHostWarnings(t *testing.T) {
	current := &Artifact{GoVersion: "go1.24", GOOS: "linux", GOARCH: "arm64", GOMAXPROCS: 8}

	same := &Artifact{GoVersion: "go1.24", GOOS: "linux", GOARCH: "arm64", GOMAXPROCS: 8}
	if warns := HostWarnings(same, current); len(warns) != 0 {
		t.Errorf("identical hosts warned: %v", warns)
	}

	other := &Artifact{GoVersion: "go1.23", GOOS: "darwin", GOARCH: "amd64", GOMAXPROCS: 4}
	warns := HostWarnings(other, current)
	if len(warns) != 4 {
		t.Fatalf("warnings = %v, want 4", warns)
	}
	for _, want := range []string{
		"go version changed: go1.23 -> go1.24",
		"GOOS changed: darwin -> linux",
		"GOARCH changed: amd64 -> arm64",
		"GOMAXPROCS changed: 4 -> 8",
	} {
		found := false
		for _, w := range warns {
			if w == want {
				found = true
			}
		}
		if !found {
			t.Errorf("missing warning %q in %v", want, warns)
		}
	}

	// A pre-metadata baseline (zero values everywhere) stays quiet.
	if warns := HostWarnings(&Artifact{}, current); len(warns) != 0 {
		t.Errorf("empty baseline warned: %v", warns)
	}

	// And the warnings surface in the diff report itself.
	out := DiffReport(other, current)
	if !strings.Contains(out, "warning: GOOS changed: darwin -> linux") ||
		!strings.Contains(out, "deltas compare different hosts") {
		t.Errorf("diff report missing host warnings:\n%s", out)
	}
}
