package sim

import (
	"testing"

	"powerchop/internal/arch"
	"powerchop/internal/cde"
	"powerchop/internal/core"
	"powerchop/internal/isa"
	"powerchop/internal/phase"
	"powerchop/internal/program"
)

// smallPhaseConfig shrinks windows so short test runs cross many window
// boundaries.
func smallPhaseConfig() phase.Config {
	return phase.Config{Capacity: 64, WindowSize: 50, SignatureLen: 4}
}

// vectorPhasedProgram alternates a vector-heavy phase with a scalar phase.
func vectorPhasedProgram(t testing.TB) *program.Program {
	b := program.NewBuilder("vec-phased", "TEST", 42)
	vec := b.Region(program.RegionSpec{
		Name:     "vec",
		Insns:    32,
		Mix:      isa.Mix{VectorFrac: 0.25, BranchFrac: 0.1, LoadFrac: 0.1},
		Branches: []program.BranchModel{{Kind: program.Biased, Bias: 0.9}},
		Streams:  []program.MemStream{{WorkingSet: 16 << 10}},
	})
	scalar := b.Region(program.RegionSpec{
		Name:     "scalar",
		Insns:    32,
		Mix:      isa.Mix{BranchFrac: 0.1, LoadFrac: 0.1},
		Branches: []program.BranchModel{{Kind: program.Biased, Bias: 0.9}},
		Streams:  []program.MemStream{{WorkingSet: 16 << 10}},
	})
	b.Phase("vector", 2000, map[int]float64{vec: 1})
	b.Phase("scalar", 2000, map[int]float64{scalar: 1})
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func runWith(t testing.TB, p *program.Program, m core.Manager, translations uint64) *Result {
	r, err := Run(p, Config{
		Design:          arch.Server(),
		Manager:         m,
		Phase:           smallPhaseConfig(),
		MaxTranslations: translations,
	})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestConfigValidation(t *testing.T) {
	p := vectorPhasedProgram(t)
	if _, err := Run(p, Config{}); err == nil {
		t.Fatal("empty config accepted")
	}
	if _, err := Run(p, Config{Design: arch.Server(), Manager: core.AlwaysOn()}); err == nil {
		t.Fatal("zero run length accepted")
	}
	bad := arch.Server()
	bad.ClockHz = 0
	if _, err := Run(p, Config{Design: bad, Manager: core.AlwaysOn(), MaxTranslations: 10}); err == nil {
		t.Fatal("invalid design accepted")
	}
}

func TestFullPowerRunBasics(t *testing.T) {
	p := vectorPhasedProgram(t)
	r := runWith(t, p, core.AlwaysOn(), 4000)
	if r.GuestInsns == 0 || r.Cycles <= 0 {
		t.Fatalf("empty run: %+v", r)
	}
	if r.IPC <= 0 || r.IPC > arch.Server().IssueWidth {
		t.Fatalf("IPC = %v out of range", r.IPC)
	}
	if r.VPU.GatedFrac != 0 || r.BPU.GatedFrac != 0 || r.MLC.GatedFrac != 0 {
		t.Fatal("full-power run gated units")
	}
	if r.VectorOps == 0 || r.Branches == 0 || r.MemOps == 0 {
		t.Fatal("instruction classes not exercised")
	}
	if r.Windows == 0 {
		t.Fatal("no windows completed")
	}
	if r.Manager != "full-power" || r.Arch != "server" || r.Benchmark != "vec-phased" {
		t.Fatalf("labels: %q %q %q", r.Manager, r.Arch, r.Benchmark)
	}
}

func TestDeterminism(t *testing.T) {
	p := vectorPhasedProgram(t)
	a := runWith(t, p, core.AlwaysOn(), 2000)
	b := runWith(t, p, core.AlwaysOn(), 2000)
	if a.Cycles != b.Cycles || a.GuestInsns != b.GuestInsns || a.Mispredicts != b.Mispredicts {
		t.Fatalf("runs diverged: %v/%v vs %v/%v", a.Cycles, a.GuestInsns, b.Cycles, b.GuestInsns)
	}
}

func TestMinPowerSlower(t *testing.T) {
	p := vectorPhasedProgram(t)
	full := runWith(t, p, core.AlwaysOn(), 4000)
	min := runWith(t, p, core.MinPower(), 4000)
	if min.IPC >= full.IPC {
		t.Fatalf("min-power IPC %v not below full-power %v", min.IPC, full.IPC)
	}
	if min.VPU.GatedFrac < 0.95 {
		t.Fatalf("min-power VPU gated %v", min.VPU.GatedFrac)
	}
	if min.MLC.OneWayFrac < 0.95 {
		t.Fatalf("min-power MLC one-way %v", min.MLC.OneWayFrac)
	}
	// Scalar emulation expands uops.
	if min.Uops <= min.GuestInsns {
		t.Fatal("emulation did not expand uops")
	}
	// Gated units leak less.
	if min.Power.Unit(arch.UnitVPU).LeakageJ >= full.Power.Unit(arch.UnitVPU).LeakageJ {
		t.Fatal("gating did not reduce VPU leakage energy")
	}
}

func TestPowerChopGatesVPUInScalarPhases(t *testing.T) {
	p := vectorPhasedProgram(t)
	pc := core.MustPowerChop(core.DefaultConfig())
	r := runWith(t, p, pc, 48000)
	// Half the run is the scalar phase; the VPU should be gated a large
	// fraction of the time but not always.
	if r.VPU.GatedFrac < 0.3 {
		t.Fatalf("PowerChop VPU gated only %v", r.VPU.GatedFrac)
	}
	if r.VPU.GatedFrac > 0.75 {
		t.Fatalf("PowerChop VPU gated %v — the vector phase was wrongly gated", r.VPU.GatedFrac)
	}
	if r.PVT.Lookups == 0 || r.CDE.Invocations == 0 {
		t.Fatal("PowerChop machinery idle")
	}
	if r.PVTMissInts != r.CDE.Invocations {
		t.Fatalf("nucleus interrupts %d != CDE invocations %d", r.PVTMissInts, r.CDE.Invocations)
	}
}

func TestPowerChopNearFullPerformance(t *testing.T) {
	p := vectorPhasedProgram(t)
	full := runWith(t, p, core.AlwaysOn(), 150000)
	pc := core.MustPowerChop(core.DefaultConfig())
	chop := runWith(t, p, pc, 150000)
	slowdown := chop.Cycles/full.Cycles - 1
	if slowdown > 0.08 {
		t.Fatalf("PowerChop slowdown %v too high", slowdown)
	}
	if chop.Power.TotalEnergyJ() >= full.Power.TotalEnergyJ() {
		t.Fatal("PowerChop did not save energy on a phased workload")
	}
}

func TestTimeoutVPUGatesIdleUnit(t *testing.T) {
	// A purely scalar program: the VPU is idle throughout, so a timeout
	// manager should gate it off almost immediately and for nearly the
	// whole run.
	b := program.NewBuilder("scalar-only", "TEST", 7)
	r0 := b.Region(program.RegionSpec{Name: "s", Insns: 32})
	b.Phase("p", 1000, map[int]float64{r0: 1})
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.NewTimeoutVPU(20000)
	if err != nil {
		t.Fatal(err)
	}
	r := runWith(t, p, m, 40000)
	if r.VPU.GatedFrac < 0.85 {
		t.Fatalf("timeout gated idle VPU only %v", r.VPU.GatedFrac)
	}
	if r.VPU.Switches != 1 {
		t.Fatalf("idle VPU switched %d times, want 1", r.VPU.Switches)
	}
}

func TestTimeoutVPUWakesOnDemand(t *testing.T) {
	// Sparse-but-recurring vector ops: the timeout gates off during gaps
	// and wakes on each vector op, paying penalties.
	b := program.NewBuilder("sparse-vec", "TEST", 9)
	r0 := b.Region(program.RegionSpec{
		Name:  "sparse",
		Insns: 500,
		Mix:   isa.Mix{VectorFrac: 0.002}, // 1 vector op per execution
	})
	b.Phase("p", 1000, map[int]float64{r0: 1})
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	m, _ := core.NewTimeoutVPU(100) // tiny timeout: always expires between ops
	r := runWith(t, p, m, 2000)
	if r.VPU.Switches < 100 {
		t.Fatalf("timeout VPU switches = %d, want many", r.VPU.Switches)
	}
	if r.VPU.GatedFrac < 0.3 {
		t.Fatalf("timeout VPU gated %v", r.VPU.GatedFrac)
	}
	if r.GateStalls == 0 {
		t.Fatal("wake penalties not charged")
	}
}

func TestPowerChopBeatsTimeoutOnSparseUniformVectors(t *testing.T) {
	// The namd scenario (Figure 16): sparse vector ops uniformly spread
	// prevent the timeout from ever firing, while PowerChop's criticality
	// analysis gates the unit for nearly the whole run.
	b := program.NewBuilder("namd-like", "TEST", 11)
	r0 := b.Region(program.RegionSpec{
		Name:  "sparse-uniform",
		Insns: 400,
		Mix:   isa.Mix{VectorFrac: 0.0025}, // 1 vector op / 400 insns
	})
	b.Phase("p", 1000, map[int]float64{r0: 1})
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	tm, _ := core.NewTimeoutVPU(20000)
	timeout := runWith(t, p, tm, 4000)
	pc := core.MustPowerChop(core.DefaultConfig())
	chop := runWith(t, p, pc, 4000)
	if chop.VPU.GatedFrac < timeout.VPU.GatedFrac+0.5 {
		t.Fatalf("PowerChop gated %v, timeout %v — expected a dramatic win",
			chop.VPU.GatedFrac, timeout.VPU.GatedFrac)
	}
}

func TestSampling(t *testing.T) {
	p := vectorPhasedProgram(t)
	r, err := Run(p, Config{
		Design:          arch.Server(),
		Manager:         core.AlwaysOn(),
		Phase:           smallPhaseConfig(),
		MaxTranslations: 4000,
		SampleInterval:  10000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Samples) < 5 {
		t.Fatalf("samples = %d", len(r.Samples))
	}
	var sawVec, sawNoVec bool
	for _, s := range r.Samples {
		if s.IPC <= 0 {
			t.Fatalf("sample IPC = %v", s.IPC)
		}
		if s.VectorOps > 0 {
			sawVec = true
		} else {
			sawNoVec = true
		}
	}
	if !sawVec || !sawNoVec {
		t.Fatal("samples do not reflect the program's vector phases")
	}
}

func TestShardsHistogram(t *testing.T) {
	p := vectorPhasedProgram(t)
	r := runWith(t, p, core.AlwaysOn(), 4000)
	if r.Shards.Total() == 0 {
		t.Fatal("no shards recorded")
	}
	// The vector phase has 25% vector ops: shards there land in Above;
	// the scalar phase lands in Zero.
	if r.Shards.Zero == 0 || r.Shards.Above == 0 {
		t.Fatalf("shards = %+v", r.Shards)
	}
}

func TestQualityTracking(t *testing.T) {
	p := vectorPhasedProgram(t)
	r, err := Run(p, Config{
		Design:          arch.Server(),
		Manager:         core.AlwaysOn(),
		Phase:           smallPhaseConfig(),
		MaxTranslations: 8000,
		TrackQuality:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.QualityPhases == 0 || r.QualityCompared == 0 {
		t.Fatal("quality tracker idle")
	}
	// Each phase executes a single region, so same-signature windows run
	// identical code.
	if r.QualityMeanFrac > 0.05 {
		t.Fatalf("quality mean distance %v too high for single-region phases", r.QualityMeanFrac)
	}
}

func TestEnergyConservation(t *testing.T) {
	p := vectorPhasedProgram(t)
	r := runWith(t, p, core.AlwaysOn(), 2000)
	total := r.Power.TotalEnergyJ()
	sum := r.Power.LeakageEnergyJ() + r.Power.DynamicEnergyJ()
	if diff := total - sum; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("energy does not add up: %v vs %v", total, sum)
	}
	// Residency must cover the whole run for every gated unit.
	for _, name := range []string{arch.UnitVPU, arch.UnitBPU, arch.UnitMLC} {
		u := r.Power.Unit(name)
		if u.ResidencyCyc < r.Cycles*0.999 || u.ResidencyCyc > r.Cycles*1.001 {
			t.Fatalf("%s residency %v != run cycles %v", name, u.ResidencyCyc, r.Cycles)
		}
	}
}

func TestBPUManagementSwitchesPredictor(t *testing.T) {
	// Phase A: correlated branches (large BPU critical); phase B: biased
	// branches (small suffices). PowerChop should gate the BPU only in B.
	b := program.NewBuilder("bpu-phased", "TEST", 21)
	hard := b.Region(program.RegionSpec{
		Name:  "hard",
		Insns: 32,
		Mix:   isa.Mix{BranchFrac: 0.25},
		Branches: []program.BranchModel{
			{Kind: program.Patterned, Pattern: []bool{true, false, true, true, false, false}},
			{Kind: program.Correlated, CorrDepth: 4},
		},
	})
	easy := b.Region(program.RegionSpec{
		Name:     "easy",
		Insns:    32,
		Mix:      isa.Mix{BranchFrac: 0.25},
		Branches: []program.BranchModel{{Kind: program.Biased, Bias: 0.98}},
	})
	b.Phase("hard", 2000, map[int]float64{hard: 1})
	b.Phase("easy", 2000, map[int]float64{easy: 1})
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.Managed = cde.Managed{BPU: true}
	pc := core.MustPowerChop(cfg)
	r := runWith(t, p, pc, 24000)
	if r.BPU.GatedFrac < 0.2 || r.BPU.GatedFrac > 0.8 {
		t.Fatalf("BPU gated %v; expected partial gating on a half-easy workload", r.BPU.GatedFrac)
	}
}

func TestMLCManagementTracksWorkingSet(t *testing.T) {
	// Phase A: working set fits the MLC (criticality high); phase B:
	// streaming working set far beyond the MLC (criticality ~0).
	b := program.NewBuilder("mlc-phased", "TEST", 23)
	fits := b.Region(program.RegionSpec{
		Name:    "fits",
		Insns:   32,
		Mix:     isa.Mix{LoadFrac: 0.3, StoreFrac: 0.1},
		Streams: []program.MemStream{{WorkingSet: 512 << 10}}, // fits 1MB MLC, not 32KB L1
	})
	stream := b.Region(program.RegionSpec{
		Name:    "stream",
		Insns:   32,
		Mix:     isa.Mix{LoadFrac: 0.3},
		Streams: []program.MemStream{{WorkingSet: 128 << 20, Stride: 64}},
	})
	b.Phase("fits", 2000, map[int]float64{fits: 1})
	b.Phase("stream", 2000, map[int]float64{stream: 1})
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.Managed = cde.Managed{MLC: true}
	pc := core.MustPowerChop(cfg)
	r := runWith(t, p, pc, 24000)
	if r.MLC.GatedFrac < 0.2 {
		t.Fatalf("MLC never gated (%v) despite streaming phase", r.MLC.GatedFrac)
	}
	if r.MLC.GatedFrac > 0.8 {
		t.Fatalf("MLC gated %v; the cache-friendly phase was wrongly gated", r.MLC.GatedFrac)
	}
}

func TestMispredictRate(t *testing.T) {
	r := &Result{Branches: 100, Mispredicts: 10}
	if r.MispredictRate() != 0.1 {
		t.Fatal("rate")
	}
	if (&Result{}).MispredictRate() != 0 {
		t.Fatal("empty rate")
	}
}

func TestGateSwitchesAreCharged(t *testing.T) {
	p := vectorPhasedProgram(t)
	pc := core.MustPowerChop(core.DefaultConfig())
	r := runWith(t, p, pc, 12000)
	if r.VPU.Switches == 0 {
		t.Fatal("no VPU transitions on a phased workload")
	}
	if r.GateStalls == 0 {
		t.Fatal("gating stalls not charged")
	}
	if r.Power.Unit(arch.UnitVPU).Transitions == 0 {
		t.Fatal("switch energy not accounted")
	}
}
