package sim

import (
	"reflect"
	"testing"

	"powerchop/internal/arch"
	"powerchop/internal/core"
	"powerchop/internal/obs"
)

// TestCompiledMatchesNaiveWalk pins the compiled-region fast path to the
// original per-instruction walk: the same program under the same manager
// must produce an identical Result and an identical event sequence
// whichever execution strategy runs. The naive walk survives only as this
// oracle, so any divergence is a bug in the compiler or the batched loop.
func TestCompiledMatchesNaiveWalk(t *testing.T) {
	managers := []struct {
		name string
		mk   func() core.Manager
	}{
		{"powerchop", func() core.Manager { return core.MustPowerChop(core.DefaultConfig()) }},
		{"timeout", func() core.Manager {
			m, err := core.NewTimeoutVPU(20000)
			if err != nil {
				t.Fatal(err)
			}
			return m
		}},
		{"full-power", func() core.Manager { return core.AlwaysOn() }},
	}
	for _, mc := range managers {
		t.Run(mc.name, func(t *testing.T) {
			run := func(naive bool) (*Result, []obs.Event) {
				p := vectorPhasedProgram(t)
				ring := obs.NewRing(1 << 16)
				r, err := Run(p, Config{
					Design:          arch.Server(),
					Manager:         mc.mk(),
					Phase:           smallPhaseConfig(),
					MaxTranslations: 4000,
					SampleInterval:  2000,
					Tracer:          ring,
					naiveWalk:       naive,
				})
				if err != nil {
					t.Fatal(err)
				}
				return r, ring.Events()
			}
			compiled, compiledEvents := run(false)
			naive, naiveEvents := run(true)

			if compiled.Cycles != naive.Cycles {
				t.Errorf("cycles: compiled %v, naive %v", compiled.Cycles, naive.Cycles)
			}
			if !reflect.DeepEqual(compiled, naive) {
				t.Errorf("results diverge:\ncompiled %+v\nnaive    %+v", compiled, naive)
			}
			if len(compiledEvents) != len(naiveEvents) {
				t.Fatalf("event counts diverge: compiled %d, naive %d",
					len(compiledEvents), len(naiveEvents))
			}
			for i := range compiledEvents {
				if compiledEvents[i] != naiveEvents[i] {
					t.Fatalf("event %d diverges:\ncompiled %+v\nnaive    %+v",
						i, compiledEvents[i], naiveEvents[i])
				}
			}
		})
	}
}
