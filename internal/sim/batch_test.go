package sim

import (
	"fmt"
	"reflect"
	"testing"

	"powerchop/internal/arch"
	"powerchop/internal/core"
	"powerchop/internal/obs"
)

// batchManagers is the manager mix exercised by the batch identity tests:
// phase-directed gating, the timeout baseline, and both static extremes,
// so lanes diverge in gating decisions, stall cycles and window content.
func batchManagers(t testing.TB) []func() core.Manager {
	return []func() core.Manager{
		func() core.Manager { return core.MustPowerChop(core.DefaultConfig()) },
		func() core.Manager {
			m, err := core.NewTimeoutVPU(20000)
			if err != nil {
				t.Fatal(err)
			}
			return m
		},
		func() core.Manager { return core.AlwaysOn() },
		func() core.Manager { return core.MinPower() },
	}
}

// requireIdentical fails the test when a batched lane's Result is not
// byte-identical to the solo Run it must reproduce.
func requireIdentical(t *testing.T, label string, batched, solo *Result) {
	t.Helper()
	if batched == nil {
		t.Fatalf("%s: nil batched result", label)
	}
	if batched.Cycles != solo.Cycles {
		t.Errorf("%s: cycles diverge: batched %v, solo %v", label, batched.Cycles, solo.Cycles)
	}
	if !reflect.DeepEqual(batched, solo) {
		t.Errorf("%s: results diverge:\nbatched %+v\nsolo    %+v", label, batched, solo)
	}
}

// TestRunBatchMatchesSolo drives a mixed-manager batch — different gating
// behaviour, different run budgets, sampling on — and pins every lane to
// its solo Run.
func TestRunBatchMatchesSolo(t *testing.T) {
	p := vectorPhasedProgram(t)
	mks := batchManagers(t)
	mkCfg := func(mk func() core.Manager, translations uint64) Config {
		return Config{
			Design:          arch.Server(),
			Manager:         mk(),
			Phase:           smallPhaseConfig(),
			MaxTranslations: translations,
			SampleInterval:  2000,
		}
	}
	var cfgs []Config
	budgets := []uint64{4000, 4000, 2500, 4000}
	for i, mk := range mks {
		cfgs = append(cfgs, mkCfg(mk, budgets[i]))
	}
	batched, err := RunBatch(p, cfgs)
	if err != nil {
		t.Fatal(err)
	}
	for i, mk := range mks {
		solo := MustRun(vectorPhasedProgram(t), mkCfg(mk, budgets[i]))
		requireIdentical(t, fmt.Sprintf("lane %d (%s)", i, solo.Manager), batched[i], solo)
	}
}

// TestRunBatchLaneCounts sweeps the lane count — including the
// single-lane batch, which must take the solo path and still agree — with
// per-lane parameter perturbations so no two lanes behave identically.
func TestRunBatchLaneCounts(t *testing.T) {
	for _, n := range []int{1, 2, 7, 16} {
		t.Run(fmt.Sprintf("lanes=%d", n), func(t *testing.T) {
			mkCfg := func(i int) Config {
				cfg := core.DefaultConfig()
				cfg.Thresholds.VPU *= 1 + float64(i)/4
				cfg.Thresholds.BPU *= 1 + float64(i%3)/2
				return Config{
					Design:          arch.Server(),
					Manager:         core.MustPowerChop(cfg),
					Phase:           smallPhaseConfig(),
					MaxTranslations: 3000,
					SampleInterval:  1500,
				}
			}
			cfgs := make([]Config, n)
			for i := range cfgs {
				cfgs[i] = mkCfg(i)
			}
			batched, err := RunBatch(vectorPhasedProgram(t), cfgs)
			if err != nil {
				t.Fatal(err)
			}
			for i := range cfgs {
				solo := MustRun(vectorPhasedProgram(t), mkCfg(i))
				requireIdentical(t, fmt.Sprintf("lane %d", i), batched[i], solo)
			}
		})
	}
}

// TestRunBatchMixedDesigns puts server and mobile design points in one
// call: their L1/small-predictor shapes differ, so they must land in
// separate front-end groups and still each match solo.
func TestRunBatchMixedDesigns(t *testing.T) {
	mkCfg := func(d arch.Design) Config {
		return Config{
			Design:          d,
			Manager:         core.MustPowerChop(core.DefaultConfig()),
			Phase:           smallPhaseConfig(),
			MaxTranslations: 3000,
		}
	}
	designs := []arch.Design{arch.Server(), arch.Mobile(), arch.Server(), arch.Mobile()}
	cfgs := make([]Config, len(designs))
	for i, d := range designs {
		cfgs[i] = mkCfg(d)
	}
	batched, err := RunBatch(vectorPhasedProgram(t), cfgs)
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range designs {
		solo := MustRun(vectorPhasedProgram(t), mkCfg(d))
		requireIdentical(t, fmt.Sprintf("lane %d (%s)", i, d.Name), batched[i], solo)
	}
}

// TestRunBatchObserversForceSolo pins the documented fallback: lanes with
// a tracer, metrics, audit or telemetry attachment run solo inside
// RunBatch, producing the identical Result — and the identical event
// stream — as a direct Run with the same observers.
func TestRunBatchObserversForceSolo(t *testing.T) {
	p := vectorPhasedProgram(t)
	plain := func() Config {
		return Config{
			Design:          arch.Server(),
			Manager:         core.MustPowerChop(core.DefaultConfig()),
			Phase:           smallPhaseConfig(),
			MaxTranslations: 3000,
		}
	}

	ring := obs.NewRing(1 << 16)
	traced := plain()
	traced.Tracer = ring
	metered := plain()
	metered.Metrics = true
	audited := plain()
	audited.Audit = true

	batched, err := RunBatch(p, []Config{plain(), traced, metered, audited, plain()})
	if err != nil {
		t.Fatal(err)
	}

	soloRing := obs.NewRing(1 << 16)
	soloTraced := plain()
	soloTraced.Tracer = soloRing
	soloT := MustRun(vectorPhasedProgram(t), soloTraced)
	requireIdentical(t, "traced lane", batched[1], soloT)
	batchEvents, soloEvents := ring.Events(), soloRing.Events()
	if len(batchEvents) != len(soloEvents) {
		t.Fatalf("event counts diverge: batched %d, solo %d", len(batchEvents), len(soloEvents))
	}
	for i := range batchEvents {
		if batchEvents[i] != soloEvents[i] {
			t.Fatalf("event %d diverges:\nbatched %+v\nsolo    %+v", i, batchEvents[i], soloEvents[i])
		}
	}

	soloM := MustRun(vectorPhasedProgram(t), func() Config { c := plain(); c.Metrics = true; return c }())
	if batched[2].Metrics == nil || soloM.Metrics == nil {
		t.Fatal("metrics snapshot missing")
	}
	soloA := MustRun(vectorPhasedProgram(t), func() Config { c := plain(); c.Audit = true; return c }())
	if batched[3].Audit == nil || soloA.Audit == nil {
		t.Fatal("audit trail missing")
	}

	soloPlain := MustRun(vectorPhasedProgram(t), plain())
	requireIdentical(t, "plain lane 0", batched[0], soloPlain)
	requireIdentical(t, "plain lane 4", batched[4], soloPlain)
}

// TestRunBatchValidation checks the error paths: an invalid lane rejects
// the whole batch with the lane's index in the error, and an empty batch
// is a no-op.
func TestRunBatchValidation(t *testing.T) {
	p := vectorPhasedProgram(t)
	good := Config{
		Design:          arch.Server(),
		Manager:         core.AlwaysOn(),
		Phase:           smallPhaseConfig(),
		MaxTranslations: 100,
	}
	bad := good
	bad.Manager = nil
	if _, err := RunBatch(p, []Config{good, bad}); err == nil {
		t.Fatal("invalid lane accepted")
	}
	res, err := RunBatch(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 0 {
		t.Fatalf("empty batch returned %d results", len(res))
	}
}

// TestRunBatchProgress checks that batched lanes still drive their
// per-lane Progress callbacks: counts advance monotonically and finish
// with a Done report at the lane's own budget.
func TestRunBatchProgress(t *testing.T) {
	var got []Progress
	cfgA := Config{
		Design:          arch.Server(),
		Manager:         core.MustPowerChop(core.DefaultConfig()),
		Phase:           smallPhaseConfig(),
		MaxTranslations: 3000,
		Progress:        func(pr Progress) { got = append(got, pr) },
	}
	cfgB := Config{
		Design:          arch.Server(),
		Manager:         core.AlwaysOn(),
		Phase:           smallPhaseConfig(),
		MaxTranslations: 3000,
	}
	if _, err := RunBatch(vectorPhasedProgram(t), []Config{cfgA, cfgB}); err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 {
		t.Fatal("no progress reports")
	}
	last := got[len(got)-1]
	if !last.Done || last.Translations != 3000 {
		t.Fatalf("final report %+v", last)
	}
	for i := 1; i < len(got); i++ {
		if got[i].Translations < got[i-1].Translations {
			t.Fatalf("translations regressed at %d: %+v -> %+v", i, got[i-1], got[i])
		}
	}
}
