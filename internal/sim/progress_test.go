package sim

import (
	"testing"

	"powerchop/internal/arch"
	"powerchop/internal/core"
)

// TestProgressReports checks the callback fires once per window plus a
// final done report, with monotonic counters capped by the budget.
func TestProgressReports(t *testing.T) {
	p := vectorPhasedProgram(t)
	var reports []Progress
	r, err := Run(p, Config{
		Design:          arch.Server(),
		Manager:         core.MustPowerChop(core.DefaultConfig()),
		Phase:           smallPhaseConfig(),
		MaxTranslations: 3000,
		Progress:        func(pr Progress) { reports = append(reports, pr) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) == 0 {
		t.Fatal("no progress reports")
	}
	// One report per closed window, plus the final done report (the last
	// window may close exactly at the end, so allow windows or windows+1).
	n := uint64(len(reports))
	if n != r.Windows && n != r.Windows+1 {
		t.Errorf("%d reports for %d windows", n, r.Windows)
	}
	final := reports[len(reports)-1]
	if !final.Done {
		t.Errorf("final report not marked done: %+v", final)
	}
	if final.Cycle != r.Cycles || final.GuestInsns != r.GuestInsns || final.Windows != r.Windows {
		t.Errorf("final report %+v does not match result (cycles %v insns %d windows %d)",
			final, r.Cycles, r.GuestInsns, r.Windows)
	}
	var prev Progress
	for i, pr := range reports {
		if pr.MaxTranslations != 3000 {
			t.Fatalf("report %d: budget %d", i, pr.MaxTranslations)
		}
		if pr.Translations > pr.MaxTranslations {
			t.Fatalf("report %d: translations %d over budget", i, pr.Translations)
		}
		if pr.Cycle < prev.Cycle || pr.GuestInsns < prev.GuestInsns || pr.Windows < prev.Windows {
			t.Fatalf("report %d regressed: %+v after %+v", i, pr, prev)
		}
		prev = pr
	}
}

// TestProgressMatchesUnobserved checks the progress hook is passive: a
// run with a callback is bit-identical to one without.
func TestProgressMatchesUnobserved(t *testing.T) {
	plain := runWith(t, vectorPhasedProgram(t), core.MustPowerChop(core.DefaultConfig()), 3000)
	observed, err := Run(vectorPhasedProgram(t), Config{
		Design:          arch.Server(),
		Manager:         core.MustPowerChop(core.DefaultConfig()),
		Phase:           smallPhaseConfig(),
		MaxTranslations: 3000,
		Progress:        func(Progress) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Cycles != observed.Cycles || plain.GuestInsns != observed.GuestInsns ||
		plain.Power.AvgPowerW() != observed.Power.AvgPowerW() {
		t.Errorf("progress callback perturbed the run: cycles %v vs %v, insns %d vs %d, power %v vs %v",
			plain.Cycles, observed.Cycles, plain.GuestInsns, observed.GuestInsns,
			plain.Power.AvgPowerW(), observed.Power.AvgPowerW())
	}
}
