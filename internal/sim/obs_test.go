package sim

import (
	"testing"

	"powerchop/internal/arch"
	"powerchop/internal/core"
	"powerchop/internal/obs"
	"powerchop/internal/obs/tsdb"
)

// runTraced runs the vector-phased program under PowerChop with a ring
// tracer and metrics collection enabled.
func runTraced(t *testing.T, translations uint64) (*Result, *obs.Ring) {
	t.Helper()
	p := vectorPhasedProgram(t)
	ring := obs.NewRing(1 << 16)
	r, err := Run(p, Config{
		Design:          arch.Server(),
		Manager:         core.MustPowerChop(core.DefaultConfig()),
		Phase:           smallPhaseConfig(),
		MaxTranslations: translations,
		Tracer:          ring,
		Metrics:         true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return r, ring
}

func TestTracerEventFlow(t *testing.T) {
	r, ring := runTraced(t, 3000)
	events := ring.Events()
	if len(events) == 0 {
		t.Fatal("no events traced")
	}

	var byKind [16]int
	for _, e := range events {
		byKind[e.Kind]++
	}
	if got := byKind[obs.KindWindowClose]; uint64(got) != r.Windows {
		t.Errorf("window-close events = %d, result windows = %d", got, r.Windows)
	}
	hits := byKind[obs.KindPVTHit]
	misses := byKind[obs.KindPVTMiss]
	if uint64(hits) != r.PVT.Hits || uint64(misses) != r.PVT.Misses {
		t.Errorf("pvt events hit=%d miss=%d, stats hit=%d miss=%d",
			hits, misses, r.PVT.Hits, r.PVT.Misses)
	}
	if got := byKind[obs.KindTranslate]; uint64(got) != r.BT.Translations {
		t.Errorf("translate events = %d, BT translations = %d", got, r.BT.Translations)
	}
	if got := byKind[obs.KindCDEInvoke]; uint64(got) != r.PVTMissInts {
		t.Errorf("cde-invoke events = %d, PVT-miss interrupts = %d", got, r.PVTMissInts)
	}
	if byKind[obs.KindGate] == 0 {
		t.Error("no gate transitions traced")
	}
	if byKind[obs.KindCDERegister] == 0 {
		t.Error("no CDE registrations traced")
	}
}

// TestTracerStamping checks that events emitted by clockless components are
// stamped with the simulation clock and window counter.
func TestTracerStamping(t *testing.T) {
	_, ring := runTraced(t, 3000)
	var lastCycle float64
	sawStampedWindow := false
	for _, e := range ring.Events() {
		if e.Kind == obs.KindGate {
			continue // gate events carry their own (possibly retroactive) cycle
		}
		if e.Cycle < lastCycle {
			t.Fatalf("%s event at cycle %.0f after cycle %.0f", e.Kind, e.Cycle, lastCycle)
		}
		lastCycle = e.Cycle
		if e.Window > 0 {
			sawStampedWindow = true
		}
	}
	if lastCycle == 0 {
		t.Error("no stamped cycles observed")
	}
	if !sawStampedWindow {
		t.Error("no stamped window indices observed")
	}
}

func TestMetricsSnapshot(t *testing.T) {
	r, _ := runTraced(t, 3000)
	if r.Metrics == nil {
		t.Fatal("Metrics=true produced no snapshot")
	}
	if got := r.Metrics.Counter("events.window-close"); got != r.Windows {
		t.Errorf("metrics window-close = %d, result windows = %d", got, r.Windows)
	}
	h, ok := r.Metrics.Histogram("window.insns")
	if !ok {
		t.Fatal("missing window.insns histogram")
	}
	if h.Count != r.Windows {
		t.Errorf("window.insns observations = %d, windows = %d", h.Count, r.Windows)
	}
	if r.Metrics.Counter("events.total") == 0 {
		t.Error("events.total is zero")
	}
	if out := r.Metrics.Render(); out == "" {
		t.Error("empty metrics render")
	}
}

// TestMetricsWithoutTracer checks metrics collection works with no trace sink.
func TestMetricsWithoutTracer(t *testing.T) {
	p := vectorPhasedProgram(t)
	r, err := Run(p, Config{
		Design:          arch.Server(),
		Manager:         core.MustPowerChop(core.DefaultConfig()),
		Phase:           smallPhaseConfig(),
		MaxTranslations: 1000,
		Metrics:         true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Metrics == nil || r.Metrics.Counter("events.total") == 0 {
		t.Fatal("metrics-only run produced no snapshot")
	}
}

// TestTracingMatchesUntraced checks observability is passive: the same run
// with and without tracing produces identical timing results.
func TestTracingMatchesUntraced(t *testing.T) {
	plain := runWith(t, vectorPhasedProgram(t), core.MustPowerChop(core.DefaultConfig()), 3000)
	traced, _ := runTraced(t, 3000)
	if plain.Cycles != traced.Cycles || plain.GuestInsns != traced.GuestInsns {
		t.Errorf("tracing perturbed the run: cycles %v vs %v, insns %d vs %d",
			plain.Cycles, traced.Cycles, plain.GuestInsns, traced.GuestInsns)
	}
	if plain.Power.AvgPowerW() != traced.Power.AvgPowerW() {
		t.Errorf("tracing perturbed power: %v vs %v", plain.Power.AvgPowerW(), traced.Power.AvgPowerW())
	}
}

// TestTelemetryMatchesPlain checks the telemetry store is a pure observer:
// a run with a tsdb store attached is bit-identical to one without, and the
// store ends up holding one raw sample per closed window.
func TestTelemetryMatchesPlain(t *testing.T) {
	plain := runWith(t, vectorPhasedProgram(t), core.MustPowerChop(core.DefaultConfig()), 3000)

	ts := tsdb.NewStore(tsdb.DefaultConfig())
	teled, err := Run(vectorPhasedProgram(t), Config{
		Design:          arch.Server(),
		Manager:         core.MustPowerChop(core.DefaultConfig()),
		Phase:           smallPhaseConfig(),
		MaxTranslations: 3000,
		Telemetry:       ts,
	})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Cycles != teled.Cycles || plain.GuestInsns != teled.GuestInsns {
		t.Errorf("telemetry perturbed the run: cycles %v vs %v, insns %d vs %d",
			plain.Cycles, teled.Cycles, plain.GuestInsns, teled.GuestInsns)
	}
	if plain.Power.AvgPowerW() != teled.Power.AvgPowerW() {
		t.Errorf("telemetry perturbed power: %v vs %v", plain.Power.AvgPowerW(), teled.Power.AvgPowerW())
	}

	names := ts.SeriesNames()
	if len(names) == 0 {
		t.Fatal("telemetry run filled no series")
	}
	for _, want := range []string{
		tsdb.SeriesInsns, tsdb.SeriesIPC, tsdb.SeriesStall,
		tsdb.SeriesUnitFracPrefix + arch.UnitVPU,
	} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("series %q missing from %v", want, names)
		}
	}
	res, err := ts.Query(tsdb.Query{Series: tsdb.SeriesInsns})
	if err != nil {
		t.Fatal(err)
	}
	if uint64(len(res.Points)) != teled.Windows {
		t.Errorf("window.insns raw points = %d, result windows = %d", len(res.Points), teled.Windows)
	}
}
