package sim

// Whole-simulator invariants checked across seeds, managers and mixes.

import (
	"testing"

	"powerchop/internal/arch"
	"powerchop/internal/core"
	"powerchop/internal/isa"
	"powerchop/internal/program"
)

// randomishProgram builds a small program whose behaviour varies with seed.
func randomishProgram(t *testing.T, seed uint64) *program.Program {
	t.Helper()
	b := program.NewBuilder("inv", "TEST", seed)
	r0 := b.Region(program.RegionSpec{
		Name:  "mixed",
		Insns: 24 + int(seed%16),
		Mix:   isa.Mix{VectorFrac: 0.1, BranchFrac: 0.1, LoadFrac: 0.2, StoreFrac: 0.05},
		Branches: []program.BranchModel{
			{Kind: program.Biased, Bias: 0.9},
			{Kind: program.Patterned, Pattern: []bool{true, false, true}},
		},
		Streams: []program.MemStream{{WorkingSet: 64 << 10}},
	})
	r1 := b.Region(program.RegionSpec{
		Name:     "branchy",
		Insns:    30,
		Mix:      isa.Mix{BranchFrac: 0.2, LoadFrac: 0.1},
		Branches: []program.BranchModel{{Kind: program.Correlated, CorrDepth: 3}},
		Streams:  []program.MemStream{{WorkingSet: 1 << 20, Stride: 8}},
	})
	b.Phase("a", 500, map[int]float64{r0: 1})
	b.Phase("b", 500, map[int]float64{r0: 0.3, r1: 0.7})
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func invariantManagers(t *testing.T) []core.Manager {
	t.Helper()
	timeout, err := core.NewTimeoutVPU(5000)
	if err != nil {
		t.Fatal(err)
	}
	return []core.Manager{
		core.AlwaysOn(),
		core.MinPower(),
		core.MustPowerChop(core.DefaultConfig()),
		core.MustPowerChop(core.EnergyMinimizerConfig()),
		timeout,
	}
}

func TestSimulatorInvariants(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		p := randomishProgram(t, seed)
		for _, m := range invariantManagers(t) {
			res, err := Run(p, Config{
				Design:          arch.Server(),
				Manager:         m,
				Phase:           smallPhaseConfig(),
				MaxTranslations: 3000,
			})
			if err != nil {
				t.Fatalf("seed %d %s: %v", seed, m.Name(), err)
			}
			name := res.Manager

			// Micro-ops can only expand guest instructions.
			if res.Uops < res.GuestInsns {
				t.Errorf("seed %d %s: uops %d < guest insns %d", seed, name, res.Uops, res.GuestInsns)
			}
			// Cycles bound: at least insns/issueWidth.
			if res.Cycles < float64(res.GuestInsns)/arch.Server().IssueWidth {
				t.Errorf("seed %d %s: cycles below issue bound", seed, name)
			}
			// Every gated unit's residency covers the whole run.
			for _, u := range []string{arch.UnitVPU, arch.UnitBPU, arch.UnitMLC} {
				r := res.Power.Unit(u)
				if r.ResidencyCyc < res.Cycles*0.999 || r.ResidencyCyc > res.Cycles*1.001 {
					t.Errorf("seed %d %s: %s residency %v vs cycles %v", seed, name, u, r.ResidencyCyc, res.Cycles)
				}
				// Leakage saved can never exceed the 95% gating bound.
				if r.LeakSavedJ > r.FullLeakageJ*0.951 {
					t.Errorf("seed %d %s: %s saved more leakage than gating allows", seed, name, u)
				}
			}
			// Instruction-class counters are consistent.
			if res.Branches+res.VectorOps+res.MemOps > res.GuestInsns {
				t.Errorf("seed %d %s: class counters exceed instructions", seed, name)
			}
			if res.Mispredicts > res.Branches {
				t.Errorf("seed %d %s: more mispredicts than branches", seed, name)
			}
			if res.MLCHits > res.MLCAccesses {
				t.Errorf("seed %d %s: more MLC hits than accesses", seed, name)
			}
			// Shard accounting covers the instruction stream.
			if got, want := res.Shards.Total(), res.GuestInsns/1000; got+1 < want {
				t.Errorf("seed %d %s: shards %d for %d insns", seed, name, got, res.GuestInsns)
			}
			// Window count matches translated executions.
			wantWindows := res.BT.TranslatedExecs / uint64(smallPhaseConfig().WindowSize)
			if res.Windows > wantWindows {
				t.Errorf("seed %d %s: %d windows for %d translated execs", seed, name, res.Windows, res.BT.TranslatedExecs)
			}
			// Energy is positive and decomposes exactly.
			total := res.Power.TotalEnergyJ()
			if total <= 0 {
				t.Errorf("seed %d %s: energy %v", seed, name, total)
			}
			if diff := total - res.Power.LeakageEnergyJ() - res.Power.DynamicEnergyJ(); diff > 1e-12 || diff < -1e-12 {
				t.Errorf("seed %d %s: energy decomposition off by %v", seed, name, diff)
			}
		}
	}
}

func TestFullPowerDrawsMostLeakage(t *testing.T) {
	p := randomishProgram(t, 9)
	run := func(m core.Manager) *Result {
		return MustRun(p, Config{
			Design:          arch.Server(),
			Manager:         m,
			Phase:           smallPhaseConfig(),
			MaxTranslations: 3000,
		})
	}
	full := run(core.AlwaysOn())
	min := run(core.MinPower())
	if full.Power.AvgLeakageW() <= min.Power.AvgLeakageW() {
		t.Fatalf("full-power leakage %.4f not above min-power %.4f",
			full.Power.AvgLeakageW(), min.Power.AvgLeakageW())
	}
}

func TestSamplesMonotonic(t *testing.T) {
	p := randomishProgram(t, 3)
	res := MustRun(p, Config{
		Design:          arch.Server(),
		Manager:         core.AlwaysOn(),
		Phase:           smallPhaseConfig(),
		MaxTranslations: 3000,
		SampleInterval:  5000,
	})
	var prev uint64
	for i, s := range res.Samples {
		if s.Insns <= prev {
			t.Fatalf("sample %d not monotonic: %d after %d", i, s.Insns, prev)
		}
		prev = s.Insns
	}
}

func TestEnergyMinimizerConfigGatesMoreAggressively(t *testing.T) {
	// On a program whose vector intensity sits between the default and
	// aggressive thresholds, the energy minimizer gates the VPU and the
	// default keeps it on.
	b := program.NewBuilder("between", "TEST", 7)
	// One vector op per 100 instructions: criticality 0.01.
	weights := map[int]float64{}
	base := b.Region(program.RegionSpec{Name: "base", Insns: 25})
	simd := b.Region(program.RegionSpec{Name: "simd", Insns: 25, Mix: isa.Mix{VectorFrac: 0.04}})
	weights[base] = 0.75
	weights[simd] = 0.25
	b.Phase("p", 4000, weights)
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	run := func(cfg core.Config) *Result {
		return MustRun(p, Config{
			Design:          arch.Server(),
			Manager:         core.MustPowerChop(cfg),
			Phase:           smallPhaseConfig(),
			MaxTranslations: 60000,
		})
	}
	def := run(core.DefaultConfig())
	agg := run(core.EnergyMinimizerConfig())
	if def.VPU.GatedFrac > 0.2 {
		t.Fatalf("default policy gated a 1%%-criticality VPU: %.3f", def.VPU.GatedFrac)
	}
	if agg.VPU.GatedFrac < 0.8 {
		t.Fatalf("energy minimizer kept a 1%%-criticality VPU on: %.3f", agg.VPU.GatedFrac)
	}
}
