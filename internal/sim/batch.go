package sim

import (
	"context"
	"fmt"
	"strconv"

	"powerchop/internal/bpu"
	"powerchop/internal/cache"
	"powerchop/internal/isa"
	"powerchop/internal/obs/span"
	"powerchop/internal/phase"
	"powerchop/internal/program"
)

// Batched sweep execution: RunBatch drives N manager variants ("lanes")
// from a single pass over the shared compiled op stream. Lanes diverge in
// simulated time — different stall and gating cycles — so the walk is
// instruction-synchronous, not cycle-synchronous: each lane keeps its own
// cycle clock, window counters and phase state, and only the immutable
// program, its compiled form, and the lane-independent instruction
// dynamics are shared.
//
// The shared front-end owns everything whose evolution cannot depend on a
// lane's gating decisions:
//
//   - the Walker (region draws, branch outcomes, addresses): managers
//     never influence the draw sequence;
//   - the L1 cache: it sits above the gateable MLC, so its
//     hit/writeback/victim stream is a pure function of the address
//     stream;
//   - the small always-on branch predictor: it trains on every branch
//     whatever the gating state, so its verdicts are lane-independent.
//
// Everything else — the MLC (contents diverge under way gating), the
// large predictor (reset on gate-off), the BT runtime and its interrupt
// counts, HTB windows, the manager, the power accountant — is
// instantiated per lane, which is what makes every lane's Result
// byte-identical to a solo Run with the same Config (test-enforced for
// every registered policy; see batch_test.go and the policy conformance
// suite).

// Record-entry flag bits. One branch entry and one memory entry is
// appended per corresponding instruction, in op order. The recMLC* bits
// describe the shared never-gated reference MLC; a lane consumes them
// directly while "pristine" (it has never gated its MLC, so its contents
// are the reference's) and ignores them once diverged.
const (
	recTaken        = 1 << 0 // branch: outcome taken
	recSmallCorrect = 1 << 1 // branch: small predictor was correct
	recLargeCorrect = 1 << 2 // branch: never-gated reference large predictor was correct

	recL1Hit  = 1 << 0 // mem: L1 hit
	recL1WB   = 1 << 1 // mem: L1 evicted a dirty line (victim recorded)
	recWB2    = 1 << 2 // mem: the L1 victim's writeback displaced a dirty reference-MLC line
	recMLCHit = 1 << 3 // mem: the L1 miss hit in the reference MLC
	recMLCWB  = 1 << 4 // mem: the reference MLC's miss fill evicted a dirty line
)

// execRecord carries one region execution's lane-independent dynamics
// from the front-end to the lanes. The slices are reused across
// executions; lanes consume them through cursors (engine.replay*).
type execRecord struct {
	ri      int
	branch  []uint8  // per branch op: recTaken | recSmallCorrect | recLargeCorrect
	addrs   []uint64 // per memory op: effective address
	mem     []uint8  // per memory op: recL1Hit | recL1WB | recWB2 | recMLCHit | recMLCWB
	victims []uint64 // per recL1WB entry: the dirty L1 victim's address
}

// frontEnd is the shared first half of the pipeline: one walker, one L1,
// one never-gated reference MLC and one small predictor serving every
// lane in a batch group.
type frontEnd struct {
	walker   *program.Walker
	l1       *cache.Cache
	mlc      *cache.Cache    // full-power reference; lanes clone it on first gate
	small    *bpu.Bimodal    // always-on, so always lane-independent
	large    *bpu.Tournament // never-gated reference; gating off resets a lane's own
	compiled []program.CompiledRegion
	rec      execRecord
}

// newFrontEnd builds the shared front-end for a group of lanes whose
// cache geometry and small-predictor sizing agree (see batchKey).
func newFrontEnd(p *program.Program, key batchKey, compiled []program.CompiledRegion) (*frontEnd, error) {
	walker, err := program.NewWalker(p)
	if err != nil {
		return nil, err
	}
	return &frontEnd{
		walker:   walker,
		l1:       cache.New(key.l1),
		mlc:      cache.New(key.mlc),
		small:    bpu.NewBimodal(key.smallEntries, key.smallBTB),
		large:    bpu.NewTournament(key.large),
		compiled: compiled,
	}, nil
}

// record advances the walk by one region execution and captures its
// dynamics: the drawn region, each branch's outcome and small-predictor
// verdict, each memory op's address and L1 outcome. The draws happen in
// exactly the order a solo engine performs them (op order within the
// compiled body), so the master walker's state after execution k matches
// a solo walker's.
func (f *frontEnd) record() *execRecord {
	ri := f.walker.Next()
	r := &f.rec
	r.ri = ri
	r.branch = r.branch[:0]
	r.addrs = r.addrs[:0]
	r.mem = r.mem[:0]
	r.victims = r.victims[:0]
	cr := &f.compiled[ri]
	for i := range cr.Ops {
		op := &cr.Ops[i]
		switch op.Inst.Kind {
		case isa.Branch:
			taken := f.walker.BranchOutcome(ri, op.Inst.Sel)
			var bits uint8
			if taken {
				bits |= recTaken
			}
			if f.small.Access(op.Inst.PC, taken) {
				bits |= recSmallCorrect
			}
			if f.large.Access(op.Inst.PC, taken) {
				bits |= recLargeCorrect
			}
			r.branch = append(r.branch, bits)
		case isa.Load, isa.Store:
			addr := f.walker.Address(ri, op.Inst.Sel)
			hit, wb, victim := f.l1.Access(addr, op.Inst.Kind == isa.Store)
			var bits uint8
			if hit {
				bits |= recL1Hit
			}
			if wb {
				bits |= recL1WB
				r.victims = append(r.victims, victim)
				// Drive the reference MLC exactly as Hierarchy.Access
				// would a never-gated lane's: victim writeback first,
				// then the miss lookup.
				if _, wb2, _ := f.mlc.Access(victim, true); wb2 {
					bits |= recWB2
				}
			}
			if !hit {
				mlcHit, mlcWB, _ := f.mlc.Access(addr, false)
				if mlcHit {
					bits |= recMLCHit
				}
				if mlcWB {
					bits |= recMLCWB
				}
			}
			r.addrs = append(r.addrs, addr)
			r.mem = append(r.mem, bits)
		}
	}
	return r
}

// batchKey groups lanes that can share one front-end: the front-end's
// L1, reference MLC and small predictor are built from the design, so
// lanes must agree on that slice of it. (The program and its compiled
// stream are shared across the whole call. Latencies stay per-lane: the
// record carries outcomes, each lane prices them from its own design.)
type batchKey struct {
	l1           cache.Config
	mlc          cache.Config
	smallEntries int
	smallBTB     int
	large        bpu.TournamentConfig
}

func keyOf(cfg *Config) batchKey {
	return batchKey{
		l1:           cfg.Design.Mem.L1,
		mlc:          cfg.Design.Mem.MLC,
		smallEntries: cfg.Design.BPU.SmallEntries,
		smallBTB:     cfg.Design.BPU.SmallBTB,
		large:        cfg.Design.BPU.Large,
	}
}

// soloOnly reports whether a lane must take the solo Run path: observer
// attachments (tracer, metrics, audit, telemetry) and the naive-walk
// oracle are defined in terms of a single run's event stream and walker,
// so they are never batched.
func soloOnly(cfg *Config) bool {
	return cfg.Tracer != nil || cfg.Metrics || cfg.Audit || cfg.Telemetry != nil || cfg.naiveWalk
}

// RunBatch executes one program under each configuration and returns the
// measurements in input order. Each lane's Result is byte-identical to
// what Run(p, cfgs[i]) returns; the batch exists purely to amortize the
// shared front-end work (walking, L1 simulation, small-predictor
// training, region-stream decode) across lanes.
//
// Every configuration needs its own Manager instance, exactly as with
// separate Run calls — managers are stateful. Lanes that attach an
// observer (Tracer, Metrics, Audit, Telemetry) fall back to a solo Run
// transparently, as does a batch of one.
func RunBatch(p *program.Program, cfgs []Config) ([]*Result, error) {
	local := make([]Config, len(cfgs))
	copy(local, cfgs)
	for i := range local {
		if local[i].Phase == (phase.Config{}) {
			local[i].Phase = phase.DefaultConfig()
		}
		if err := local[i].Validate(); err != nil {
			return nil, fmt.Errorf("sim: batch lane %d: %w", i, err)
		}
	}
	results := make([]*Result, len(local))

	// Partition: solo-forced lanes run through Run; the rest group by
	// front-end shape. Groups of one also take the solo path — the batch
	// machinery has nothing to amortize there.
	groups := make(map[batchKey][]int)
	order := make([]batchKey, 0, 4)
	var solo []int
	for i := range local {
		if soloOnly(&local[i]) {
			solo = append(solo, i)
			continue
		}
		k := keyOf(&local[i])
		if _, seen := groups[k]; !seen {
			order = append(order, k)
		}
		groups[k] = append(groups[k], i)
	}
	for _, k := range order {
		if len(groups[k]) == 1 {
			solo = append(solo, groups[k][0])
			delete(groups, k)
		}
	}

	var compiled []program.CompiledRegion
	if len(groups) > 0 {
		if err := p.Validate(); err != nil {
			return nil, err
		}
		compiled = program.CompileAll(p)
	}
	for _, k := range order {
		lanes, ok := groups[k]
		if !ok {
			continue
		}
		if err := runGroup(p, k, compiled, local, lanes, results); err != nil {
			return nil, err
		}
	}
	for _, i := range solo {
		r, err := Run(p, local[i])
		if err != nil {
			return nil, fmt.Errorf("sim: batch lane %d: %w", i, err)
		}
		results[i] = r
	}
	return results, nil
}

// runGroup drives one front-end group: build a lane engine per config,
// boot its manager, then walk the program once, handing each recorded
// region execution to every lane still inside its translation budget.
func runGroup(p *program.Program, key batchKey, compiled []program.CompiledRegion, cfgs []Config, lanes []int, results []*Result) (err error) {
	if ctx := groupContext(cfgs, lanes); ctx != nil {
		_, sp := span.Start(ctx, "simbatch",
			"bench="+p.Name, "lanes="+strconv.Itoa(len(lanes)))
		defer func() { sp.EndErr(err) }()
	}
	fe, err := newFrontEnd(p, key, compiled)
	if err != nil {
		return err
	}
	engines := make([]*engine, len(lanes))
	issue := make([]float64, len(lanes))
	var maxT uint64
	for j, i := range lanes {
		s, err := newEngineWith(p, cfgs[i], nil, compiled)
		if err != nil {
			return fmt.Errorf("sim: batch lane %d: %w", i, err)
		}
		// The lane starts pristine: its MLC contents and large-predictor
		// state are the shared references' until its first gating
		// transition (set before the boot directive, so a boot-time gate
		// diverges from the empty references, exactly the solo starting
		// state).
		s.mlc.sharedMLC = fe.mlc
		s.bpu.pristineLarge = true
		boot := cfgs[i].Manager.Boot()
		s.absorbDirective(boot)
		s.applyPolicy(boot.Policy)
		engines[j] = s
		issue[j] = 1 / cfgs[i].Design.IssueWidth
		if cfgs[i].MaxTranslations > maxT {
			maxT = cfgs[i].MaxTranslations
		}
	}
	for fe.walker.Executed() < maxT {
		rec := fe.record()
		for j, s := range engines {
			if s.laneExec >= s.cfg.MaxTranslations {
				continue
			}
			s.laneExec++
			s.replay = rec
			s.replayB, s.replayM, s.replayV = 0, 0, 0
			s.executeRegion(rec.ri, issue[j])
		}
	}
	for j, i := range lanes {
		results[i] = engines[j].finish()
	}
	return nil
}

// groupContext picks the first lane context carrying a span, so a batched
// group records one "simbatch" span where solo runs record per-run "sim"
// spans.
func groupContext(cfgs []Config, lanes []int) context.Context {
	for _, i := range lanes {
		if cfgs[i].Context != nil {
			return cfgs[i].Context
		}
	}
	return nil
}
