// Package sim is the trace-driven timing simulator for the hybrid core:
// the stand-in for the paper's gem5 environment.
//
// A run executes a synthetic guest program through the BT layer
// (interpreter → translator → region cache), models each instruction's
// cost against the core's units (issue bandwidth, BPU mispredicts, cache
// hierarchy stalls, VPU issue or scalar emulation), drives PowerChop's
// phase machinery (HTB windows → manager directives → gating transitions
// with their stall/state costs), and accounts energy per unit. The
// simulator is cycle-accounting rather than cycle-accurate: it captures
// the relative costs that determine unit criticality — mispredict
// penalties, MLC/memory latencies, emulation expansion, gating overheads —
// which is the fidelity the paper's results depend on.
//
// Structurally the simulator is an engine (engine.go) orchestrating one
// managedUnit component per gateable unit (unit.go): the engine owns the
// clock, the issue pipeline and the window machinery (window.go), while
// each unit owns its gating tracker, policy enactment, per-window and
// whole-run counters, dynamic-access tallies and its slice of the Result.
// Adding a fourth managed unit means writing one component, not editing
// the engine loop.
package sim

import (
	"context"
	"fmt"
	"strconv"

	"powerchop/internal/arch"
	"powerchop/internal/bt"
	"powerchop/internal/cde"
	"powerchop/internal/core"
	"powerchop/internal/obs"
	"powerchop/internal/obs/audit"
	"powerchop/internal/obs/span"
	"powerchop/internal/obs/tsdb"
	"powerchop/internal/phase"
	"powerchop/internal/power"
	"powerchop/internal/program"
	"powerchop/internal/pvt"
)

// Config parameterizes one simulation run.
type Config struct {
	// Context, when non-nil, carries request-scoped observability: if it
	// holds a span (internal/obs/span), Run executes under a "sim" child
	// span recording the run's wall-clock duration. The simulation itself
	// never consults the context — runs are not cancellable mid-flight
	// and their results never depend on it.
	Context context.Context
	// Design is the processor design point.
	Design arch.Design
	// Manager is the power manager under test.
	Manager core.Manager
	// Phase is the HTB configuration (defaults to the paper's).
	Phase phase.Config
	// MaxTranslations is the run length in region executions.
	MaxTranslations uint64
	// SampleInterval, when positive, records a Sample every that many
	// guest instructions (for the time-series figures).
	SampleInterval uint64
	// TrackQuality enables the Figure 8 signature-quality tracker.
	TrackQuality bool
	// Tracer, when non-nil, receives the run's event stream: window
	// closes, PVT and CDE activity, gating transitions and translation
	// installs, each stamped with the simulated cycle and window count.
	// A nil Tracer keeps the hot path free of observability work.
	Tracer obs.Tracer
	// Metrics, when true, distills the event stream into the standard
	// metrics registry (counters and histograms) and attaches the
	// snapshot to Result.Metrics.
	Metrics bool
	// Audit, when true, attaches a decision-provenance auditor to the
	// event stream and attaches its Trail — per-decision records and the
	// per-phase energy attribution table — to Result.Audit. Like Tracer
	// and Metrics it is a pure observer: the simulated results are
	// bit-identical with or without it. When Metrics is also set the
	// audit histograms register in the collector's registry.
	Audit bool
	// Telemetry, when non-nil, streams per-window series — instruction
	// counts, IPC, stall cycles, gating activity, per-unit power
	// fractions, PVT hit rate, criticality scores — into the given
	// time-series store via a tsdb.Ingestor attached alongside the other
	// sinks. A pure observer like Tracer/Metrics/Audit: results are
	// bit-identical with or without it.
	Telemetry *tsdb.Store
	// Progress, when non-nil, is called at every window boundary and once
	// at the end of the run. It is a pure observer: it sees the engine's
	// counters but charges no cycles, so a run with a Progress callback is
	// bit-identical to one without.
	Progress func(Progress)

	// naiveWalk selects the original per-instruction walk over
	// Region.Body instead of the compiled-region hot loop. The two are
	// required to produce byte-identical results; the flag exists only so
	// in-package tests can hold the naive walk up as the oracle.
	naiveWalk bool
}

// Progress is a point-in-time view of a running simulation, delivered to
// Config.Progress at window boundaries.
type Progress struct {
	// Cycle is the current simulated cycle.
	Cycle float64
	// GuestInsns is the cumulative guest instruction count.
	GuestInsns uint64
	// Translations is the number of region executions so far.
	Translations uint64
	// MaxTranslations is the run's translation budget.
	MaxTranslations uint64
	// Windows is the number of closed HTB windows.
	Windows uint64
	// Done is true on the final report, after the run completes.
	Done bool
}

// Validate reports an error for inconsistent configurations.
func (c Config) Validate() error {
	if err := c.Design.Validate(); err != nil {
		return err
	}
	if c.Manager == nil {
		return fmt.Errorf("sim: nil manager")
	}
	if err := c.Phase.Validate(); err != nil {
		return err
	}
	if c.MaxTranslations == 0 {
		return fmt.Errorf("sim: zero run length")
	}
	return nil
}

// Sample is one time-series point.
type Sample struct {
	// Insns is the cumulative guest instruction count at the sample.
	Insns uint64
	// IPC is guest instructions per cycle over the sample interval.
	IPC float64
	// VectorOps is the number of vector instructions in the interval.
	VectorOps uint64
	// MLCHits is the number of MLC hits in the interval.
	MLCHits uint64
}

// VectorShards buckets 1000-instruction execution shards by vector-op
// count, the paper's Figure 15 histogram.
type VectorShards struct {
	Zero       uint64 // V = 0
	OneToFour  uint64 // 0 < V <= 4
	UpToTwenty uint64 // 4 < V <= 20
	Above      uint64 // V > 20
}

// Total returns the shard count.
func (v VectorShards) Total() uint64 {
	return v.Zero + v.OneToFour + v.UpToTwenty + v.Above
}

// UnitActivity summarizes one gated unit's run.
type UnitActivity struct {
	// GatedFrac is the fraction of cycles spent below full power.
	GatedFrac float64
	// OneWayFrac is the fraction of cycles at the deepest state (MLC
	// one-way; for VPU/BPU it equals GatedFrac).
	OneWayFrac float64
	// HalfFrac is the fraction of cycles at the MLC half-ways state.
	HalfFrac float64
	// SwitchesPerM is gating transitions per million cycles (Figure 11).
	SwitchesPerM float64
	// Switches is the absolute transition count.
	Switches uint64
}

// Result is a completed run's measurements.
type Result struct {
	Benchmark string
	Suite     string
	Arch      string
	Manager   string

	Cycles     float64
	GuestInsns uint64
	Uops       uint64
	IPC        float64
	Seconds    float64

	VPU UnitActivity
	BPU UnitActivity
	MLC UnitActivity

	Power power.Report

	Branches    uint64
	Mispredicts uint64
	VectorOps   uint64 // guest vector instructions
	MemOps      uint64
	MLCHits     uint64
	MLCAccesses uint64

	BT          bt.Stats
	PVT         pvt.Stats
	CDE         cde.Stats
	KnownPhases int // phases with computed CDE policies (PowerChop only)
	PVTMissInts uint64
	CDECycles   float64
	GateStalls  float64 // total cycles stalled on gating transitions
	Windows     uint64

	Samples []Sample
	Shards  VectorShards

	QualityMeanFrac float64
	QualityMaxFrac  float64
	QualityPhases   int
	QualityCompared uint64

	// Metrics is the observability snapshot, present when
	// Config.Metrics was set.
	Metrics *obs.Snapshot

	// Audit is the decision-provenance trail, present when Config.Audit
	// was set.
	Audit *audit.Trail
}

// MispredictRate returns mispredicts per branch.
func (r *Result) MispredictRate() float64 {
	if r.Branches == 0 {
		return 0
	}
	return float64(r.Mispredicts) / float64(r.Branches)
}

// Run executes the program under the configuration and returns the
// measurements.
func Run(p *program.Program, cfg Config) (res *Result, err error) {
	if cfg.Phase == (phase.Config{}) {
		cfg.Phase = phase.DefaultConfig()
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Context != nil {
		// The span observes the run; it charges no simulated cycles.
		_, sp := span.Start(cfg.Context, "sim",
			"bench="+p.Name, "translations="+strconv.FormatUint(cfg.MaxTranslations, 10))
		defer func() { sp.EndErr(err) }()
	}
	s, err := newEngine(p, cfg)
	if err != nil {
		return nil, err
	}

	boot := cfg.Manager.Boot()
	s.absorbDirective(boot)
	s.applyPolicy(boot.Policy)

	s.run()
	return s.finish(), nil
}

// MustRun is a helper for tests, examples and benchmarks.
func MustRun(p *program.Program, cfg Config) *Result {
	r, err := Run(p, cfg)
	if err != nil {
		panic(err)
	}
	return r
}
