// Package sim is the trace-driven timing simulator for the hybrid core:
// the stand-in for the paper's gem5 environment.
//
// A run executes a synthetic guest program through the BT layer
// (interpreter → translator → region cache), models each instruction's
// cost against the core's units (issue bandwidth, BPU mispredicts, cache
// hierarchy stalls, VPU issue or scalar emulation), drives PowerChop's
// phase machinery (HTB windows → manager directives → gating transitions
// with their stall/state costs), and accounts energy per unit. The
// simulator is cycle-accounting rather than cycle-accurate: it captures
// the relative costs that determine unit criticality — mispredict
// penalties, MLC/memory latencies, emulation expansion, gating overheads —
// which is the fidelity the paper's results depend on.
package sim

import (
	"fmt"

	"powerchop/internal/arch"
	"powerchop/internal/bpu"
	"powerchop/internal/bt"
	"powerchop/internal/cache"
	"powerchop/internal/cde"
	"powerchop/internal/core"
	"powerchop/internal/gating"
	"powerchop/internal/isa"
	"powerchop/internal/obs"
	"powerchop/internal/phase"
	"powerchop/internal/power"
	"powerchop/internal/program"
	"powerchop/internal/pvt"
	"powerchop/internal/vpu"
)

// Config parameterizes one simulation run.
type Config struct {
	// Design is the processor design point.
	Design arch.Design
	// Manager is the power manager under test.
	Manager core.Manager
	// Phase is the HTB configuration (defaults to the paper's).
	Phase phase.Config
	// MaxTranslations is the run length in region executions.
	MaxTranslations uint64
	// SampleInterval, when positive, records a Sample every that many
	// guest instructions (for the time-series figures).
	SampleInterval uint64
	// TrackQuality enables the Figure 8 signature-quality tracker.
	TrackQuality bool
	// Tracer, when non-nil, receives the run's event stream: window
	// closes, PVT and CDE activity, gating transitions and translation
	// installs, each stamped with the simulated cycle and window count.
	// A nil Tracer keeps the hot path free of observability work.
	Tracer obs.Tracer
	// Metrics, when true, distills the event stream into the standard
	// metrics registry (counters and histograms) and attaches the
	// snapshot to Result.Metrics.
	Metrics bool
}

// Validate reports an error for inconsistent configurations.
func (c Config) Validate() error {
	if err := c.Design.Validate(); err != nil {
		return err
	}
	if c.Manager == nil {
		return fmt.Errorf("sim: nil manager")
	}
	if err := c.Phase.Validate(); err != nil {
		return err
	}
	if c.MaxTranslations == 0 {
		return fmt.Errorf("sim: zero run length")
	}
	return nil
}

// Sample is one time-series point.
type Sample struct {
	// Insns is the cumulative guest instruction count at the sample.
	Insns uint64
	// IPC is guest instructions per cycle over the sample interval.
	IPC float64
	// VectorOps is the number of vector instructions in the interval.
	VectorOps uint64
	// MLCHits is the number of MLC hits in the interval.
	MLCHits uint64
}

// VectorShards buckets 1000-instruction execution shards by vector-op
// count, the paper's Figure 15 histogram.
type VectorShards struct {
	Zero       uint64 // V = 0
	OneToFour  uint64 // 0 < V <= 4
	UpToTwenty uint64 // 4 < V <= 20
	Above      uint64 // V > 20
}

// Total returns the shard count.
func (v VectorShards) Total() uint64 {
	return v.Zero + v.OneToFour + v.UpToTwenty + v.Above
}

// UnitActivity summarizes one gated unit's run.
type UnitActivity struct {
	// GatedFrac is the fraction of cycles spent below full power.
	GatedFrac float64
	// OneWayFrac is the fraction of cycles at the deepest state (MLC
	// one-way; for VPU/BPU it equals GatedFrac).
	OneWayFrac float64
	// HalfFrac is the fraction of cycles at the MLC half-ways state.
	HalfFrac float64
	// SwitchesPerM is gating transitions per million cycles (Figure 11).
	SwitchesPerM float64
	// Switches is the absolute transition count.
	Switches uint64
}

// Result is a completed run's measurements.
type Result struct {
	Benchmark string
	Suite     string
	Arch      string
	Manager   string

	Cycles     float64
	GuestInsns uint64
	Uops       uint64
	IPC        float64
	Seconds    float64

	VPU UnitActivity
	BPU UnitActivity
	MLC UnitActivity

	Power power.Report

	Branches    uint64
	Mispredicts uint64
	VectorOps   uint64 // guest vector instructions
	MemOps      uint64
	MLCHits     uint64
	MLCAccesses uint64

	BT          bt.Stats
	PVT         pvt.Stats
	CDE         cde.Stats
	PVTMissInts uint64
	CDECycles   float64
	GateStalls  float64 // total cycles stalled on gating transitions
	Windows     uint64

	Samples []Sample
	Shards  VectorShards

	QualityMeanFrac float64
	QualityMaxFrac  float64
	QualityPhases   int
	QualityCompared uint64

	// Metrics is the observability snapshot, present when
	// Config.Metrics was set.
	Metrics *obs.Snapshot
}

// MispredictRate returns mispredicts per branch.
func (r *Result) MispredictRate() float64 {
	if r.Branches == 0 {
		return 0
	}
	return float64(r.Mispredicts) / float64(r.Branches)
}

// state bundles the live simulation.
type state struct {
	cfg    Config
	design arch.Design
	prog   *program.Program

	walker  *program.Walker
	btSys   *bt.System
	bpuUnit *bpu.Unit
	hier    *cache.Hierarchy
	vpuUnit *vpu.Unit
	htb     *phase.HTB
	acct    *power.Accountant
	quality *phase.QualityTracker

	gateVPU *gating.Unit
	gateBPU *gating.Unit
	gateMLC *gating.Unit

	// Observability: tracer is the stamped event sink (nil when off);
	// collector feeds Result.Metrics; lastXl8 detects fresh translations.
	tracer    obs.Tracer
	collector *obs.Collector
	lastXl8   uint64

	cycles     float64
	guestInsns uint64
	uops       uint64
	gateStalls float64
	cdeCycles  float64

	// Current directive state.
	policy     pvt.Policy
	vpuTimeout float64
	// Timeout-mode VPU bookkeeping.
	lastVectorCycle float64
	vpuIdleGated    bool
	// fullWindowStreak counts consecutive completed windows that ran
	// entirely at the full measurement configuration (large BPU, all MLC
	// ways); measurements are warm after two such windows.
	fullWindowStreak int

	// Window performance counters (reset at each boundary).
	winInsns    uint64
	winSIMD     uint64
	winL2Hits   uint64
	winBranches uint64
	winMispred  uint64

	// Whole-run counters.
	branches    uint64
	mispredicts uint64
	vectorOps   uint64
	memOps      uint64
	mlcHits     uint64

	// Dynamic-energy access tallies, flushed to the accountant at the end.
	coreAccesses uint64
	vpuAccesses  uint64
	bpuLargeAcc  uint64
	bpuSmallAcc  uint64
	mlcAccByFrac map[float64]uint64

	// Sampling.
	sampleAt    uint64
	lastSampleI uint64
	lastSampleC float64
	intVecOps   uint64
	intMLCHits  uint64
	samples     []Sample

	// Figure 15 shards.
	shardInsns uint64
	shardVec   uint64
	shards     VectorShards
}

// bpuOffPowerFrac models the gated-off BPU: the small local predictor and
// its small BTB stay powered, roughly a tenth of the BPU's area.
const bpuOffPowerFrac = 0.1

// Run executes the program under the configuration and returns the
// measurements.
func Run(p *program.Program, cfg Config) (*Result, error) {
	if cfg.Phase == (phase.Config{}) {
		cfg.Phase = phase.DefaultConfig()
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	walker, err := program.NewWalker(p)
	if err != nil {
		return nil, err
	}
	d := cfg.Design
	btSys, err := bt.New(bt.Config{
		HotThreshold:           d.HotThreshold,
		InterpCPI:              d.InterpCPI,
		TranslateCyclesPerInsn: d.TranslateCyclesPerInsn,
	}, p)
	if err != nil {
		return nil, err
	}

	s := &state{
		cfg:     cfg,
		design:  d,
		prog:    p,
		walker:  walker,
		btSys:   btSys,
		bpuUnit: bpu.NewUnit(d.BPU),
		hier:    cache.NewHierarchy(d.Mem),
		vpuUnit: vpu.New(d.VPU),
		htb:     phase.NewHTB(cfg.Phase),
		acct:    power.NewAccountant(d.ClockHz),

		gateVPU: gating.NewUnit(arch.UnitVPU, 1),
		gateBPU: gating.NewUnit(arch.UnitBPU, 1),
		gateMLC: gating.NewUnit(arch.UnitMLC, 1),

		policy:       pvt.FullOn,
		mlcAccByFrac: map[float64]uint64{},
		sampleAt:     cfg.SampleInterval,
	}
	for _, spec := range d.UnitSpecs() {
		s.acct.AddUnit(spec)
	}
	// PowerChop's own hardware: the HTB and PVT draw constant power.
	s.acct.AddUnit(power.UnitSpec{Name: arch.UnitHTB, LeakageW: power.HTBPowerW})
	if cfg.TrackQuality {
		s.quality = phase.NewQualityTracker(cfg.Phase.WindowSize)
	}
	s.wireObservability()

	boot := cfg.Manager.Boot()
	s.vpuTimeout = boot.VPUTimeout
	s.applyPolicy(boot.Policy)

	s.run()
	return s.finish(), nil
}

// wireObservability assembles the run's event sink — the configured
// tracer plus, when metrics are on, the standard collector — wraps it so
// every event is stamped with the simulation clock, and hands it to each
// instrumented component. With no tracer and no metrics everything stays
// nil and the hot path pays only dead nil-checks.
func (s *state) wireObservability() {
	var sinks []obs.Tracer
	if s.cfg.Tracer != nil {
		sinks = append(sinks, s.cfg.Tracer)
	}
	if s.cfg.Metrics {
		s.collector = obs.NewCollector()
		sinks = append(sinks, s.collector)
	}
	t := obs.Multi(sinks...)
	if t == nil {
		return
	}
	t = obs.Stamped(t, func() (float64, uint64) { return s.cycles, s.htb.Windows() })
	s.tracer = t
	s.htb.SetTracer(t)
	s.gateVPU.SetTracer(t)
	s.gateBPU.SetTracer(t)
	s.gateMLC.SetTracer(t)
	if m, ok := s.cfg.Manager.(interface{ SetTracer(obs.Tracer) }); ok {
		m.SetTracer(t)
	}
}

// MustRun is a helper for tests, examples and benchmarks.
func MustRun(p *program.Program, cfg Config) *Result {
	r, err := Run(p, cfg)
	if err != nil {
		panic(err)
	}
	return r
}

// applyPolicy enacts a gating policy, charging transition stalls, state
// management costs and switch energies.
func (s *state) applyPolicy(policy pvt.Policy) {
	d := s.design
	// VPU — skipped in timeout mode, where idleness machinery owns it.
	if s.vpuTimeout == 0 && policy.VPUOn != s.vpuUnit.On() {
		stall := d.GateStallVPU + s.vpuUnit.SetOn(policy.VPUOn)
		s.stallFor(stall)
		s.gateVPU.Transition(boolFrac(policy.VPUOn), s.cycles, stall)
		s.acct.AddSwitch(arch.UnitVPU)
		s.btSys.Nucleus().Raise(bt.IntGateSwitch, 0)
	}
	// BPU.
	if policy.BPUOn != s.bpuUnit.LargeOn() {
		s.stallFor(d.GateStallBPU)
		s.bpuUnit.SetLargeOn(policy.BPUOn)
		frac := 1.0
		if !policy.BPUOn {
			frac = bpuOffPowerFrac
		}
		s.gateBPU.Transition(frac, s.cycles, d.GateStallBPU)
		s.acct.AddSwitch(arch.UnitBPU)
		s.btSys.Nucleus().Raise(bt.IntGateSwitch, 0)
	}
	// MLC.
	totalWays := d.Mem.MLC.Ways
	wantWays := policy.MLC.Ways(totalWays)
	if wantWays != s.hier.MLC().ActiveWays() {
		dirty := s.hier.GateMLC(wantWays)
		stall := d.GateStallMLC + float64(dirty)*d.WritebackCyclesPerLine
		s.stallFor(stall)
		s.gateMLC.Transition(policy.MLC.PowerFrac(totalWays), s.cycles, stall)
		s.acct.AddSwitch(arch.UnitMLC)
		s.btSys.Nucleus().Raise(bt.IntGateSwitch, 0)
	}
	s.policy = policy
}

// currentPolicy reconstructs the policy currently in effect from unit
// state.
func (s *state) currentPolicy() pvt.Policy {
	p := pvt.Policy{VPUOn: s.vpuUnit.On(), BPUOn: s.bpuUnit.LargeOn()}
	switch w := s.hier.MLC().ActiveWays(); {
	case w == s.design.Mem.MLC.Ways:
		p.MLC = pvt.MLCAll
	case w == 1:
		p.MLC = pvt.MLCOne
	default:
		p.MLC = pvt.MLCHalf
	}
	return p
}

func boolFrac(on bool) float64 {
	if on {
		return 1
	}
	return 0
}

// stallFor charges stall cycles attributable to gating transitions.
func (s *state) stallFor(cycles float64) {
	s.cycles += cycles
	s.gateStalls += cycles
}

// run is the main simulation loop.
func (s *state) run() {
	issueCycle := 1 / s.design.IssueWidth
	for s.walker.Executed() < s.cfg.MaxTranslations {
		ri := s.walker.Next()
		tr, extra := s.btSys.Execute(ri)
		s.cycles += extra
		if s.tracer != nil {
			// Execute returns nil on the install execution, so fresh
			// translations are detected by a counter delta.
			if n := s.btSys.Translations(); n > s.lastXl8 {
				s.lastXl8 = n
				if nt := s.btSys.Translation(ri); nt != nil {
					s.tracer.Emit(obs.Event{
						Kind:   obs.KindTranslate,
						Detail: "install",
						Count:  uint64(nt.ID),
						Value:  float64(nt.Insns),
					})
				}
			}
		}
		region := s.walker.Region(ri)

		for _, inst := range region.Body {
			s.guestInsns++
			s.winInsns++
			s.shardInsns++
			switch inst.Kind {
			case isa.Scalar:
				s.uops++
				s.coreAccesses++
				s.cycles += issueCycle
			case isa.Vector:
				s.execVector(issueCycle)
			case isa.Branch:
				taken := s.walker.BranchOutcome(ri, inst.Sel)
				correct := s.bpuUnit.Access(inst.PC, taken)
				s.uops++
				s.coreAccesses++
				s.cycles += issueCycle
				s.branches++
				s.winBranches++
				if s.bpuUnit.LargeOn() {
					s.bpuLargeAcc++
				} else {
					s.bpuSmallAcc++
				}
				if !correct {
					s.mispredicts++
					s.winMispred++
					s.cycles += s.design.MispredictPenalty
				}
			case isa.Load, isa.Store:
				addr := s.walker.Address(ri, inst.Sel)
				res := s.hier.Access(addr, inst.Kind == isa.Store)
				s.uops++
				s.coreAccesses++
				s.cycles += issueCycle + res.StallCycles
				s.memOps++
				if res.MLCAccessed {
					s.mlcAccByFrac[s.gateMLC.PowerFrac()]++
				}
				if res.MLCHit {
					s.mlcHits++
					s.winL2Hits++
					s.intMLCHits++
				}
			}
			if s.shardInsns >= 1000 {
				s.closeShard()
			}
			if s.cfg.SampleInterval > 0 && s.guestInsns >= s.sampleAt {
				s.takeSample()
			}
		}

		if tr != nil {
			if s.htb.Record(tr.ID, uint64(tr.Insns)) {
				s.endWindow()
			}
		}
	}
}

// execVector models one guest vector instruction under the current VPU
// state and manager semantics.
func (s *state) execVector(issueCycle float64) {
	s.vectorOps++
	s.winSIMD++
	s.intVecOps++
	s.shardVec++

	if s.vpuTimeout > 0 {
		s.timeoutVectorOp()
	}
	slots := s.vpuUnit.Execute()
	if slots == 1 {
		s.vpuAccesses++
	} else {
		// Scalar emulation: the expansion uops run on the core pipeline.
		s.coreAccesses += uint64(slots)
	}
	s.uops += uint64(slots)
	s.cycles += float64(slots) * issueCycle
}

// timeoutVectorOp implements the hardware-timeout baseline's wake path: if
// the VPU was (or should have been) gated off for idleness, it is woken
// with full gating penalties before the vector op can execute.
func (s *state) timeoutVectorOp() {
	idleStart := s.lastVectorCycle + s.vpuTimeout
	if !s.vpuIdleGated && s.cycles > idleStart {
		// The unit crossed the idle threshold since the last vector op:
		// it was gated off at idleStart (retroactively; saving the
		// register file paused execution then, charged now).
		offStall := s.design.GateStallVPU + s.design.VPU.SaveRestoreCycles
		s.gateVPU.Transition(0, idleStart, offStall)
		s.acct.AddSwitch(arch.UnitVPU)
		s.vpuUnit.SetOn(false)
		s.stallFor(offStall)
		s.vpuIdleGated = true
	}
	if s.vpuIdleGated {
		// Wake on demand.
		wakeStall := s.design.GateStallVPU + s.vpuUnit.SetOn(true)
		s.gateVPU.Transition(1, s.cycles, wakeStall)
		s.acct.AddSwitch(arch.UnitVPU)
		s.stallFor(wakeStall)
		s.vpuIdleGated = false
	}
	s.lastVectorCycle = s.cycles
}

// timeoutWindowCheck gates the VPU off at window boundaries when the idle
// threshold has been crossed without an intervening vector op.
func (s *state) timeoutWindowCheck() {
	if s.vpuTimeout == 0 || s.vpuIdleGated {
		return
	}
	idleStart := s.lastVectorCycle + s.vpuTimeout
	if s.cycles > idleStart {
		offStall := s.design.GateStallVPU + s.design.VPU.SaveRestoreCycles
		s.gateVPU.Transition(0, idleStart, offStall)
		s.acct.AddSwitch(arch.UnitVPU)
		s.vpuUnit.SetOn(false)
		s.stallFor(offStall)
		s.vpuIdleGated = true
	}
}

// endWindow closes an execution window: form the signature, consult the
// manager, charge any CDE invocation, and enact the directive.
func (s *state) endWindow() {
	sig, vec := s.htb.EndWindow()
	if s.quality != nil {
		s.quality.Observe(sig, vec)
	}
	mlcFullyOn := s.hier.MLC().ActiveWays() == s.design.Mem.MLC.Ways
	wasFull := s.bpuUnit.LargeOn() && mlcFullyOn
	prof := cde.WindowProfile{
		TotalInsns:     s.winInsns,
		SIMDInsns:      s.winSIMD,
		L2Hits:         s.winL2Hits,
		Branches:       s.winBranches,
		Mispredicts:    s.winMispred,
		LargeBPUActive: s.bpuUnit.LargeOn(),
		MLCFullyOn:     mlcFullyOn,
		VPUOn:          s.vpuUnit.On(),
		Warm:           wasFull && s.fullWindowStreak >= 2,
		Current:        s.currentPolicy(),
	}
	if wasFull {
		s.fullWindowStreak++
	} else {
		s.fullWindowStreak = 0
	}
	s.winInsns, s.winSIMD, s.winL2Hits, s.winBranches, s.winMispred = 0, 0, 0, 0, 0

	s.timeoutWindowCheck()

	d := s.cfg.Manager.WindowEnd(core.WindowReport{Signature: sig, Profile: prof, Cycle: s.cycles})
	if d.CDEInvoked {
		cost := s.btSys.Nucleus().Raise(bt.IntPVTMiss, s.design.CDEInvokeCycles)
		s.cycles += cost
		s.cdeCycles += cost
		if s.tracer != nil {
			s.tracer.Emit(obs.Event{
				Kind:   obs.KindCDEInvoke,
				SigIDs: sig.IDs,
				SigN:   sig.N,
				Value:  cost,
			})
		}
	}
	s.vpuTimeout = d.VPUTimeout
	s.applyPolicy(d.Policy)
}

func (s *state) closeShard() {
	switch {
	case s.shardVec == 0:
		s.shards.Zero++
	case s.shardVec <= 4:
		s.shards.OneToFour++
	case s.shardVec <= 20:
		s.shards.UpToTwenty++
	default:
		s.shards.Above++
	}
	s.shardInsns, s.shardVec = 0, 0
}

func (s *state) takeSample() {
	dI := s.guestInsns - s.lastSampleI
	dC := s.cycles - s.lastSampleC
	ipc := 0.0
	if dC > 0 {
		ipc = float64(dI) / dC
	}
	s.samples = append(s.samples, Sample{
		Insns:     s.guestInsns,
		IPC:       ipc,
		VectorOps: s.intVecOps,
		MLCHits:   s.intMLCHits,
	})
	s.lastSampleI = s.guestInsns
	s.lastSampleC = s.cycles
	s.intVecOps, s.intMLCHits = 0, 0
	s.sampleAt += s.cfg.SampleInterval
}

// finish closes out accounting and assembles the Result.
func (s *state) finish() *Result {
	// Close residency tracking.
	s.gateVPU.CloseOut(s.cycles)
	s.gateBPU.CloseOut(s.cycles)
	s.gateMLC.CloseOut(s.cycles)
	for _, g := range []*gating.Unit{s.gateVPU, s.gateBPU, s.gateMLC} {
		for _, level := range g.Levels() {
			s.acct.AddResidency(g.Name(), level, g.Residency(level))
		}
	}
	s.acct.AddResidency(arch.UnitCore, 1, s.cycles)
	s.acct.AddResidency(arch.UnitHTB, 1, s.cycles)

	// Flush dynamic access tallies.
	s.acct.AddAccesses(arch.UnitCore, s.coreAccesses, 1)
	s.acct.AddAccesses(arch.UnitVPU, s.vpuAccesses, 1)
	s.acct.AddAccesses(arch.UnitBPU, s.bpuLargeAcc, 1)
	s.acct.AddAccesses(arch.UnitBPU, s.bpuSmallAcc, bpuOffPowerFrac)
	var mlcAccesses uint64
	for frac, n := range s.mlcAccByFrac {
		s.acct.AddAccesses(arch.UnitMLC, n, frac)
		mlcAccesses += n
	}

	rep := s.acct.Report(s.cycles)
	totalWays := s.design.Mem.MLC.Ways
	oneFrac := 1.0 / float64(totalWays)

	r := &Result{
		Benchmark: s.prog.Name,
		Suite:     s.prog.Suite,
		Arch:      s.design.Name,
		Manager:   s.cfg.Manager.Name(),

		Cycles:     s.cycles,
		GuestInsns: s.guestInsns,
		Uops:       s.uops,
		Seconds:    rep.Seconds,

		VPU: unitActivity(s.gateVPU, 0, 0),
		BPU: unitActivity(s.gateBPU, bpuOffPowerFrac, 0),
		MLC: unitActivity(s.gateMLC, oneFrac, 0.5),

		Power: rep,

		Branches:    s.branches,
		Mispredicts: s.mispredicts,
		VectorOps:   s.vectorOps,
		MemOps:      s.memOps,
		MLCHits:     s.mlcHits,
		MLCAccesses: mlcAccesses,

		BT:          s.btSys.Stats(),
		PVTMissInts: s.btSys.Nucleus().Count(bt.IntPVTMiss),
		CDECycles:   s.cdeCycles,
		GateStalls:  s.gateStalls,
		Windows:     s.htb.Windows(),

		Samples: s.samples,
		Shards:  s.shards,
	}
	if s.cycles > 0 {
		r.IPC = float64(s.guestInsns) / s.cycles
	}
	if pc, ok := s.cfg.Manager.(*core.PowerChop); ok {
		r.PVT = pc.PVT().Stats()
		r.CDE = pc.Engine().Stats()
	}
	if s.quality != nil {
		r.QualityMeanFrac = s.quality.MeanDistanceFrac()
		r.QualityMaxFrac = s.quality.MaxDistanceFrac()
		r.QualityPhases = s.quality.DistinctSignatures()
		r.QualityCompared = s.quality.Comparisons()
	}
	if s.collector != nil {
		r.Metrics = s.collector.Snapshot()
	}
	return r
}

// unitActivity converts a gating tracker into the reported summary.
func unitActivity(g *gating.Unit, deepLevel, halfLevel float64) UnitActivity {
	a := UnitActivity{
		GatedFrac:    g.GatedFrac(),
		SwitchesPerM: g.SwitchesPerMillionCycles(),
		Switches:     g.Switches(),
	}
	t := g.TotalCycles()
	if t > 0 {
		a.OneWayFrac = g.Residency(deepLevel) / t
		if halfLevel > 0 {
			a.HalfFrac = g.Residency(halfLevel) / t
		}
	}
	return a
}
