package sim

import (
	"testing"

	"powerchop/internal/arch"
	"powerchop/internal/core"
	"powerchop/internal/isa"
	"powerchop/internal/program"
)

// scalarOnlyProgram exercises the window-boundary off-gate path: with no
// vector ops the idle timeout can only fire at window closes.
func scalarOnlyProgram(t testing.TB) *program.Program {
	b := program.NewBuilder("scalar-only", "TEST", 7)
	r0 := b.Region(program.RegionSpec{Name: "s", Insns: 32})
	b.Phase("p", 1000, map[int]float64{r0: 1})
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// sparseVecProgram exercises the wake-path off-gate: recurring sparse
// vector ops retroactively gate off and wake on demand.
func sparseVecProgram(t testing.TB) *program.Program {
	b := program.NewBuilder("sparse-vec", "TEST", 9)
	r0 := b.Region(program.RegionSpec{
		Name:  "sparse",
		Insns: 500,
		Mix:   isa.Mix{VectorFrac: 0.002},
	})
	b.Phase("p", 1000, map[int]float64{r0: 1})
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestTimeoutOffGateStallInvariant pins the consolidated retroactive
// off-gate (vpuUnit.idleGateOff, shared by the on-demand wake path and
// the window-boundary check): under the timeout-only manager, every VPU
// transition — off-gate or wake — charges exactly GateStallVPU +
// SaveRestoreCycles, no other unit ever switches, and so the run's total
// gate stalls are VPU.Switches times that cost.
func TestTimeoutOffGateStallInvariant(t *testing.T) {
	cases := []struct {
		name    string
		prog    *program.Program
		timeout float64
		transl  uint64
	}{
		{"window-check-path", scalarOnlyProgram(t), 20000, 40000},
		{"wake-path", sparseVecProgram(t), 100, 2000},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m, err := core.NewTimeoutVPU(tc.timeout)
			if err != nil {
				t.Fatal(err)
			}
			r := runWith(t, tc.prog, m, tc.transl)
			if r.BPU.Switches != 0 || r.MLC.Switches != 0 {
				t.Fatalf("timeout manager switched BPU %d / MLC %d times",
					r.BPU.Switches, r.MLC.Switches)
			}
			if r.VPU.Switches == 0 {
				t.Fatal("timeout never gated the VPU")
			}
			d := arch.Server()
			perSwitch := d.GateStallVPU + d.VPU.SaveRestoreCycles
			want := float64(r.VPU.Switches) * perSwitch
			if r.GateStalls != want {
				t.Fatalf("GateStalls = %v, want %d switches x %v = %v",
					r.GateStalls, r.VPU.Switches, perSwitch, want)
			}
		})
	}
}

// TestTimeoutBaselinePinned pins the timeout baseline's exact results on
// both off-gate paths, guarding the consolidation of the formerly
// duplicated retroactive off-gate blocks: these literals were captured
// from the pre-refactor simulator and must never drift.
func TestTimeoutBaselinePinned(t *testing.T) {
	cases := []struct {
		name       string
		prog       *program.Program
		timeout    float64
		transl     uint64
		cycles     float64
		switches   uint64
		gateStalls float64
		gatedFrac  float64
	}{
		{"window-check-path", scalarOnlyProgram(t), 20000, 40000,
			334098, 1, 530, 0.94013732497650393},
		{"wake-path", sparseVecProgram(t), 100, 2000,
			2582000, 4000, 2120000, 0.51198189388071258},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m, err := core.NewTimeoutVPU(tc.timeout)
			if err != nil {
				t.Fatal(err)
			}
			r := runWith(t, tc.prog, m, tc.transl)
			if r.Cycles != tc.cycles || r.VPU.Switches != tc.switches ||
				r.GateStalls != tc.gateStalls || r.VPU.GatedFrac != tc.gatedFrac {
				t.Fatalf("timeout baseline drifted:\n got  cycles=%v switches=%d stalls=%v gated=%v\n want cycles=%v switches=%d stalls=%v gated=%v",
					r.Cycles, r.VPU.Switches, r.GateStalls, r.VPU.GatedFrac,
					tc.cycles, tc.switches, tc.gateStalls, tc.gatedFrac)
			}
		})
	}
}
