package sim

import (
	"sort"

	"powerchop/internal/arch"
	"powerchop/internal/bpu"
	"powerchop/internal/bt"
	"powerchop/internal/cache"
	"powerchop/internal/cde"
	"powerchop/internal/core"
	"powerchop/internal/gating"
	"powerchop/internal/isa"
	"powerchop/internal/power"
	"powerchop/internal/pvt"
	"powerchop/internal/vpu"
)

// managedUnit is one gateable unit under the engine's management. Each
// component owns the unit's model, its gating tracker, the enactment of
// policy directives (transition stalls, state-management costs, switch
// energy, gate-switch interrupts), its per-window profiling counters,
// its dynamic-energy access tallies, and its contribution to the
// WindowProfile handed to the manager and to the final Result. The
// engine never branches on a unit's identity: adding a managed unit
// means implementing this interface and appending it to engine.units.
type managedUnit interface {
	// gate returns the unit's gating tracker, used by the engine to wire
	// tracing and close out residency.
	gate() *gating.Unit
	// enact applies the unit's slice of a gating policy, charging
	// transition stalls, state costs and switch energy through the
	// engine, and raising the gate-switch interrupt.
	enact(policy pvt.Policy)
	// absorbDirective takes the unit's non-policy directive state (the
	// VPU's timeout period) from a manager directive.
	absorbDirective(d core.Directive)
	// fillPolicy writes the unit's current power state into a policy.
	fillPolicy(p *pvt.Policy)
	// windowProfile contributes the unit's counters and power state to a
	// closing window's profile and resets the per-window counters.
	windowProfile(prof *cde.WindowProfile)
	// windowBoundary runs the unit's own boundary machinery (the VPU's
	// idle-timeout check) before the manager is consulted.
	windowBoundary()
	// sampleInterval contributes the unit's per-interval counters to a
	// time-series sample and resets them.
	sampleInterval(smp *Sample)
	// flushAccesses flushes the unit's dynamic-energy access tallies
	// into the power accountant at the end of the run.
	flushAccesses(acct *power.Accountant)
	// report writes the unit's activity summary and whole-run counters
	// into the Result.
	report(r *Result)
}

// bpuOffPowerFrac models the gated-off BPU: the small local predictor and
// its small BTB stay powered, roughly a tenth of the BPU's area.
const bpuOffPowerFrac = 0.1

func boolFrac(on bool) float64 {
	if on {
		return 1
	}
	return 0
}

// chargeSwitch performs the common policy-enactment tail: record the
// gating transition, account its switch energy, and raise the BT
// nucleus's gate-switch interrupt. The caller has already charged the
// stall (unit enactment sequences differ in when the stall lands
// relative to the state change).
func (s *engine) chargeSwitch(g *gating.Unit, frac, cycle, stallCycles float64) {
	g.Transition(frac, cycle, stallCycles)
	s.acct.AddSwitch(g.Name())
	s.btSys.Nucleus().Raise(bt.IntGateSwitch, 0)
}

// vpuUnit manages the vector processing unit: phase-directed on/off
// gating with register-file save/restore, plus the hardware idle-timeout
// semantics of the Section V-E baseline.
type vpuUnit struct {
	e    *engine
	unit *vpu.Unit
	g    *gating.Unit

	// timeout, when positive, selects idle-timeout semantics: the unit is
	// retroactively gated off once it has sat idle that many cycles and
	// woken on demand by the next vector op.
	timeout         float64
	lastVectorCycle float64
	idleGated       bool

	// idle is the manager's hierarchical idle-state descriptor for the
	// next gated window (nil for classic single-level gating); curIdle is
	// the state the unit currently resides in. Both nil means the classic
	// enactment path runs untouched.
	idle    *core.IdleState
	curIdle *core.IdleState

	// Whole-run, per-window, per-sample-interval and per-shard counters.
	vectorOps uint64
	winSIMD   uint64
	intVecOps uint64
	shardVec  uint64

	// Dynamic-energy access tally.
	accesses uint64
}

func newVPUUnit(e *engine) *vpuUnit {
	return &vpuUnit{
		e:    e,
		unit: vpu.New(e.design.VPU),
		g:    gating.NewUnit(arch.UnitVPU, 1),
	}
}

func (v *vpuUnit) gate() *gating.Unit { return v.g }

func (v *vpuUnit) enact(policy pvt.Policy) {
	// Skipped in timeout mode, where the idleness machinery owns the unit.
	if v.timeout != 0 {
		return
	}
	// Hierarchical idle-state semantics take over while the manager is
	// supplying descriptors or the unit still resides in one.
	if v.idle != nil || v.curIdle != nil {
		v.enactIdle(policy)
		return
	}
	if policy.VPUOn == v.unit.On() {
		return
	}
	stall := v.e.design.GateStallVPU + v.unit.SetOn(policy.VPUOn)
	v.e.stallFor(stall)
	v.e.chargeSwitch(v.g, boolFrac(policy.VPUOn), v.e.cycles, stall)
}

// enactIdle applies the hierarchical idle-state semantics: the policy's
// off bit sends the unit to the descriptor's state; transition stalls
// are the base gate stall plus the descriptor's entry/exit extras (the
// descriptors, not the VPU's save/restore machinery, price state
// management here).
func (v *vpuUnit) enactIdle(policy pvt.Policy) {
	if policy.VPUOn || v.idle == nil {
		// Wake to full power.
		if v.curIdle == nil {
			return
		}
		stall := v.e.design.GateStallVPU + v.curIdle.ExitCycles
		v.unit.SetOn(true)
		v.curIdle = nil
		v.e.stallFor(stall)
		v.e.chargeSwitch(v.g, 1, v.e.cycles, stall)
		return
	}
	// Descend to (or hold) the requested rung.
	if v.curIdle != nil && v.curIdle.PowerFrac == v.idle.PowerFrac {
		return
	}
	stall := v.e.design.GateStallVPU + v.idle.EntryCycles
	v.unit.SetOn(false)
	v.curIdle = v.idle
	v.e.stallFor(stall)
	v.e.chargeSwitch(v.g, v.idle.PowerFrac, v.e.cycles, stall)
}

func (v *vpuUnit) absorbDirective(d core.Directive) {
	v.timeout = d.VPUTimeout
	v.idle = d.VPUIdle
}

func (v *vpuUnit) fillPolicy(p *pvt.Policy) { p.VPUOn = v.unit.On() }

func (v *vpuUnit) windowProfile(prof *cde.WindowProfile) {
	prof.SIMDInsns = v.winSIMD
	prof.VPUOn = v.unit.On()
	v.winSIMD = 0
}

func (v *vpuUnit) windowBoundary() { v.idleGateOff() }

func (v *vpuUnit) sampleInterval(smp *Sample) {
	smp.VectorOps = v.intVecOps
	v.intVecOps = 0
}

func (v *vpuUnit) flushAccesses(acct *power.Accountant) {
	acct.AddAccesses(arch.UnitVPU, v.accesses, 1)
}

func (v *vpuUnit) report(r *Result) {
	r.VPU = unitActivity(v.g, 0, 0)
	r.VectorOps = v.vectorOps
}

// execVector models one guest vector instruction under the current VPU
// state and manager semantics.
func (v *vpuUnit) execVector(issueCycle float64) {
	v.vectorOps++
	v.winSIMD++
	v.intVecOps++
	v.shardVec++

	if v.timeout > 0 {
		v.timeoutVectorOp()
	}
	slots := v.unit.Execute()
	if slots == 1 {
		v.accesses++
	} else {
		// Scalar emulation: the expansion uops run on the core pipeline.
		v.e.coreAccesses += uint64(slots)
	}
	v.e.uops += uint64(slots)
	v.e.cycles += float64(slots) * issueCycle
}

// takeShardVec returns and resets the vector-op count of the closing
// 1000-instruction shard.
func (v *vpuUnit) takeShardVec() uint64 {
	n := v.shardVec
	v.shardVec = 0
	return n
}

// idleGateOff is the timeout baseline's single off-gate path, shared by
// the on-demand wake sequence and the window-boundary check: if the unit
// has crossed the idle threshold, it is gated off retroactively at the
// crossing (saving the register file paused execution then; the stall is
// charged now).
func (v *vpuUnit) idleGateOff() {
	if v.timeout == 0 || v.idleGated {
		return
	}
	idleStart := v.lastVectorCycle + v.timeout
	if v.e.cycles <= idleStart {
		return
	}
	offStall := v.e.design.GateStallVPU + v.e.design.VPU.SaveRestoreCycles
	v.g.Transition(0, idleStart, offStall)
	v.e.acct.AddSwitch(arch.UnitVPU)
	v.unit.SetOn(false)
	v.e.stallFor(offStall)
	v.idleGated = true
}

// timeoutVectorOp implements the hardware-timeout baseline's wake path: if
// the VPU was (or should have been) gated off for idleness, it is woken
// with full gating penalties before the vector op can execute.
func (v *vpuUnit) timeoutVectorOp() {
	v.idleGateOff()
	if v.idleGated {
		// Wake on demand.
		wakeStall := v.e.design.GateStallVPU + v.unit.SetOn(true)
		v.g.Transition(1, v.e.cycles, wakeStall)
		v.e.acct.AddSwitch(arch.UnitVPU)
		v.e.stallFor(wakeStall)
		v.idleGated = false
	}
	v.lastVectorCycle = v.e.cycles
}

// bpuUnit manages the branch prediction unit: the large tournament
// predictor is gated to the always-on small local predictor.
type bpuUnit struct {
	e    *engine
	unit *bpu.Unit
	g    *gating.Unit

	branches    uint64
	mispredicts uint64
	winBranches uint64
	winMispred  uint64

	// Hierarchical idle-state descriptor and residency (see vpuUnit).
	idle    *core.IdleState
	curIdle *core.IdleState

	// Dynamic-energy access tallies at the two power levels.
	largeAcc uint64
	smallAcc uint64

	// pristineLarge marks a batched lane whose large predictor has never
	// been gated off: its state equals the batch group's never-gated
	// reference, so branches consume the recorded reference verdict
	// instead of training a private copy. The first gate-off clears the
	// flag — gating resets the large predictor, so from that point the
	// lane's own (reset-state) Tournament is exactly what a solo run
	// would hold. Always false on the solo path.
	pristineLarge bool
}

func newBPUUnit(e *engine) *bpuUnit {
	return &bpuUnit{
		e:    e,
		unit: bpu.NewUnit(e.design.BPU),
		g:    gating.NewUnit(arch.UnitBPU, 1),
	}
}

func (b *bpuUnit) gate() *gating.Unit { return b.g }

func (b *bpuUnit) enact(policy pvt.Policy) {
	if b.idle != nil || b.curIdle != nil {
		b.enactIdle(policy)
		return
	}
	if policy.BPUOn == b.unit.LargeOn() {
		return
	}
	stall := b.e.design.GateStallBPU
	b.e.stallFor(stall)
	if !policy.BPUOn {
		b.pristineLarge = false
	}
	b.unit.SetLargeOn(policy.BPUOn)
	frac := 1.0
	if !policy.BPUOn {
		frac = bpuOffPowerFrac
	}
	b.e.chargeSwitch(b.g, frac, b.e.cycles, stall)
}

// enactIdle is the BPU's hierarchical idle-state path: the large
// predictor descends the descriptor ladder while gated (the small local
// predictor stays on throughout, as in classic gating).
func (b *bpuUnit) enactIdle(policy pvt.Policy) {
	if policy.BPUOn || b.idle == nil {
		if b.curIdle == nil {
			return
		}
		stall := b.e.design.GateStallBPU + b.curIdle.ExitCycles
		b.unit.SetLargeOn(true)
		b.curIdle = nil
		b.e.stallFor(stall)
		b.e.chargeSwitch(b.g, 1, b.e.cycles, stall)
		return
	}
	if b.curIdle != nil && b.curIdle.PowerFrac == b.idle.PowerFrac {
		return
	}
	stall := b.e.design.GateStallBPU + b.idle.EntryCycles
	b.pristineLarge = false
	b.unit.SetLargeOn(false)
	b.curIdle = b.idle
	b.e.stallFor(stall)
	b.e.chargeSwitch(b.g, b.idle.PowerFrac, b.e.cycles, stall)
}

func (b *bpuUnit) absorbDirective(d core.Directive) { b.idle = d.BPUIdle }

func (b *bpuUnit) fillPolicy(p *pvt.Policy) { p.BPUOn = b.unit.LargeOn() }

func (b *bpuUnit) windowProfile(prof *cde.WindowProfile) {
	prof.Branches = b.winBranches
	prof.Mispredicts = b.winMispred
	prof.LargeBPUActive = b.unit.LargeOn()
	b.winBranches, b.winMispred = 0, 0
}

func (b *bpuUnit) windowBoundary() {}

func (b *bpuUnit) sampleInterval(*Sample) {}

func (b *bpuUnit) flushAccesses(acct *power.Accountant) {
	acct.AddAccesses(arch.UnitBPU, b.largeAcc, 1)
	acct.AddAccesses(arch.UnitBPU, b.smallAcc, bpuOffPowerFrac)
}

func (b *bpuUnit) report(r *Result) {
	r.BPU = unitActivity(b.g, bpuOffPowerFrac, 0)
	r.Branches = b.branches
	r.Mispredicts = b.mispredicts
}

// execBranch models one guest branch through the active predictor. On the
// batched path the outcome and the small predictor's verdict come from the
// shared front-end record: the always-on small predictor sees the same
// (PC, outcome) stream whatever this lane's gating history, so its state —
// and hence its verdict — is lane-independent; only the gateable large
// predictor (reset on every gate-off) is consulted per lane.
func (b *bpuUnit) execBranch(ri int, inst isa.Inst, issueCycle float64) {
	var taken, correct bool
	if rec := b.e.replay; rec != nil {
		bits := rec.branch[b.e.replayB]
		b.e.replayB++
		taken = bits&recTaken != 0
		switch {
		case !b.unit.LargeOn():
			correct = bits&recSmallCorrect != 0
		case b.pristineLarge:
			correct = bits&recLargeCorrect != 0
		default:
			correct = b.unit.Large.Access(inst.PC, taken)
		}
	} else {
		taken = b.e.walker.BranchOutcome(ri, inst.Sel)
		correct = b.unit.Access(inst.PC, taken)
	}
	b.e.uops++
	b.e.coreAccesses++
	b.e.cycles += issueCycle
	b.branches++
	b.winBranches++
	if b.unit.LargeOn() {
		b.largeAcc++
	} else {
		b.smallAcc++
	}
	if !correct {
		b.mispredicts++
		b.winMispred++
		b.e.cycles += b.e.design.MispredictPenalty
	}
}

// mlcUnit manages the middle-level cache: three-state way gating with
// dirty-line writeback on downsizing.
type mlcUnit struct {
	e    *engine
	hier *cache.Hierarchy
	g    *gating.Unit

	memOps     uint64
	mlcHits    uint64
	winL2Hits  uint64
	intMLCHits uint64

	// Dynamic-energy access tallies per power level. Only a handful of
	// distinct fractions ever occur (full, half-ways, one-way), so a
	// linearly scanned slice beats a map lookup in the hot path and
	// allocates nothing once the levels have been seen.
	accByFrac []fracCount
	// accesses is the whole-run MLC access count, filled at flush time.
	accesses uint64

	// Batched-lane pristine state. While sharedMLC is non-nil the lane
	// has never gated its MLC, so its contents equal the batch group's
	// never-gated reference: memory ops consume the recorded reference
	// outcomes without touching any cache arrays, with the lane's memory
	// traffic tracked in prReads/prWrites. The first gating transition
	// clones the reference into the lane's hierarchy and clears
	// sharedMLC (see diverge). Cached latencies keep the pristine hot
	// path free of config-struct copies.
	sharedMLC *cache.Cache
	prReads   uint64
	prWrites  uint64
	mlcLat    float64
	memLat    float64
}

// fracCount tallies accesses at one power fraction.
type fracCount struct {
	frac float64
	n    uint64
}

func newMLCUnit(e *engine) *mlcUnit {
	return &mlcUnit{
		e:         e,
		hier:      cache.NewHierarchy(e.design.Mem),
		g:         gating.NewUnit(arch.UnitMLC, 1),
		accByFrac: make([]fracCount, 0, 4),
		mlcLat:    e.design.Mem.MLCLatency,
		memLat:    e.design.Mem.MemLatency,
	}
}

// addAccess records one MLC access at the given power fraction.
func (m *mlcUnit) addAccess(frac float64) {
	for i := range m.accByFrac {
		if m.accByFrac[i].frac == frac {
			m.accByFrac[i].n++
			return
		}
	}
	m.accByFrac = append(m.accByFrac, fracCount{frac: frac, n: 1})
}

func (m *mlcUnit) gate() *gating.Unit { return m.g }

func (m *mlcUnit) enact(policy pvt.Policy) {
	totalWays := m.e.design.Mem.MLC.Ways
	wantWays := policy.MLC.Ways(totalWays)
	if wantWays == m.hier.MLC().ActiveWays() {
		return
	}
	m.diverge()
	dirty := m.hier.GateMLC(wantWays)
	stall := m.e.design.GateStallMLC + float64(dirty)*m.e.design.WritebackCyclesPerLine
	m.e.stallFor(stall)
	m.e.chargeSwitch(m.g, policy.MLC.PowerFrac(totalWays), m.e.cycles, stall)
}

func (m *mlcUnit) absorbDirective(core.Directive) {}

func (m *mlcUnit) fillPolicy(p *pvt.Policy) {
	switch w := m.hier.MLC().ActiveWays(); {
	case w == m.e.design.Mem.MLC.Ways:
		p.MLC = pvt.MLCAll
	case w == 1:
		p.MLC = pvt.MLCOne
	default:
		p.MLC = pvt.MLCHalf
	}
}

func (m *mlcUnit) windowProfile(prof *cde.WindowProfile) {
	prof.L2Hits = m.winL2Hits
	prof.MLCFullyOn = m.hier.MLC().ActiveWays() == m.e.design.Mem.MLC.Ways
	m.winL2Hits = 0
}

func (m *mlcUnit) windowBoundary() {}

func (m *mlcUnit) sampleInterval(smp *Sample) {
	smp.MLCHits = m.intMLCHits
	m.intMLCHits = 0
}

func (m *mlcUnit) flushAccesses(acct *power.Accountant) {
	// Flush levels in ascending order so the floating-point accumulation
	// over power fractions is reproducible run to run.
	sort.Slice(m.accByFrac, func(i, j int) bool {
		return m.accByFrac[i].frac < m.accByFrac[j].frac
	})
	for _, fc := range m.accByFrac {
		acct.AddAccesses(arch.UnitMLC, fc.n, fc.frac)
		m.accesses += fc.n
	}
}

func (m *mlcUnit) report(r *Result) {
	oneFrac := 1.0 / float64(m.e.design.Mem.MLC.Ways)
	r.MLC = unitActivity(m.g, oneFrac, 0.5)
	r.MemOps = m.memOps
	r.MLCHits = m.mlcHits
	r.MLCAccesses = m.accesses
}

// execMem models one guest load or store through the cache hierarchy. On
// the batched path the address and the L1's hit/writeback/victim outcome
// come from the shared front-end record — the L1 sits above the gateable
// MLC, so its behaviour is lane-independent — and only this lane's MLC
// (whose contents diverge under way gating) is consulted, via ReplayAccess.
func (m *mlcUnit) execMem(ri int, inst isa.Inst, issueCycle float64) {
	var res cache.AccessResult
	if rec := m.e.replay; rec != nil {
		bits := rec.mem[m.e.replayM]
		addr := rec.addrs[m.e.replayM]
		m.e.replayM++
		var victim uint64
		if bits&recL1WB != 0 {
			victim = rec.victims[m.e.replayV]
			m.e.replayV++
		}
		if m.sharedMLC != nil {
			res = m.replayPristine(bits)
		} else {
			res = m.hier.ReplayAccess(addr, bits&recL1Hit != 0, bits&recL1WB != 0, victim)
		}
	} else {
		addr := m.e.walker.Address(ri, inst.Sel)
		res = m.hier.Access(addr, inst.Kind == isa.Store)
	}
	m.e.uops++
	m.e.coreAccesses++
	m.e.cycles += issueCycle + res.StallCycles
	m.memOps++
	if res.MLCAccessed {
		m.addAccess(m.g.PowerFrac())
	}
	if res.MLCHit {
		m.mlcHits++
		m.winL2Hits++
		m.intMLCHits++
	}
}

// replayPristine reconstructs a memory op's AccessResult for a lane that
// has never gated its MLC, purely from the recorded reference-MLC
// outcome bits — no cache arrays are touched, which is where batching's
// memory-path amortization comes from. The lane's main-memory traffic is
// tracked so diverge can seed the hierarchy's counters.
func (m *mlcUnit) replayPristine(bits uint8) cache.AccessResult {
	var res cache.AccessResult
	res.L1Hit = bits&recL1Hit != 0
	if bits&recL1WB != 0 {
		res.Writebacks++
		res.MLCAccessed = true
		if bits&recWB2 != 0 {
			res.Writebacks++
			m.prWrites++
		}
	}
	if res.L1Hit {
		return res
	}
	res.MLCAccessed = true
	if bits&recMLCWB != 0 {
		res.Writebacks++
		m.prWrites++
	}
	if bits&recMLCHit != 0 {
		res.MLCHit = true
		res.StallCycles = m.mlcLat
	} else {
		res.MemAccessed = true
		m.prReads++
		res.StallCycles = m.memLat
	}
	return res
}

// diverge forks the lane-private MLC off the batch group's never-gated
// reference just before the lane's first gating transition mutates it.
// Gating is enacted between region executions (at boot or a window
// boundary), and the front-end records execution k before any lane
// processes it, so the reference's contents at that instant are exactly
// what this lane's own MLC would hold. Solo runs and already-diverged
// lanes are no-ops.
func (m *mlcUnit) diverge() {
	if m.sharedMLC == nil {
		return
	}
	m.hier.AdoptMLC(m.sharedMLC.Clone(), m.prReads, m.prWrites)
	m.sharedMLC = nil
}

// unitActivity converts a gating tracker into the reported summary.
func unitActivity(g *gating.Unit, deepLevel, halfLevel float64) UnitActivity {
	a := UnitActivity{
		GatedFrac:    g.GatedFrac(),
		SwitchesPerM: g.SwitchesPerMillionCycles(),
		Switches:     g.Switches(),
	}
	t := g.TotalCycles()
	if t > 0 {
		a.OneWayFrac = g.Residency(deepLevel) / t
		if halfLevel > 0 {
			a.HalfFrac = g.Residency(halfLevel) / t
		}
	}
	return a
}
