package sim

import (
	"powerchop/internal/bt"
	"powerchop/internal/cde"
	"powerchop/internal/core"
	"powerchop/internal/obs"
	"powerchop/internal/phase"
)

// endWindow closes an HTB execution window: build the window's profile
// from the units, run unit boundary machinery, consult the manager, and
// enact the resulting directive.
func (s *engine) endWindow() {
	var sig phase.Signature
	if s.quality != nil {
		// The quality tracker takes ownership of the translation vector,
		// so only Figure 8 runs pay for the per-window copy.
		var vec map[uint32]uint64
		sig, vec = s.htb.EndWindow()
		s.quality.Observe(sig, vec)
	} else {
		sig = s.htb.EndWindowNoVec()
	}

	s.profBuf = cde.WindowProfile{TotalInsns: s.winInsns}
	prof := &s.profBuf
	for _, u := range s.units {
		u.windowProfile(prof)
	}
	// A window is warm for measurement when it ran entirely at the full
	// configuration and at least two such windows precede it.
	wasFull := prof.LargeBPUActive && prof.MLCFullyOn
	prof.Warm = wasFull && s.fullWindowStreak >= 2
	if wasFull {
		s.fullWindowStreak++
	} else {
		s.fullWindowStreak = 0
	}
	prof.Current = s.currentPolicy()
	s.winInsns = 0

	// Unit-owned boundary machinery (the VPU idle-timeout check) runs
	// against the outgoing directive before the manager issues a new one.
	for _, u := range s.units {
		u.windowBoundary()
	}

	d := s.cfg.Manager.WindowEnd(core.WindowReport{
		Signature: sig,
		Profile:   *prof,
		Cycle:     s.cycles,
	})
	if d.CDEInvoked {
		cost := s.btSys.Nucleus().Raise(bt.IntPVTMiss, s.design.CDEInvokeCycles)
		s.cycles += cost
		s.cdeCycles += cost
		if s.tracer != nil {
			s.tracer.Emit(obs.Event{
				Kind:   obs.KindCDEInvoke,
				SigIDs: sig.IDs,
				SigN:   sig.N,
				Value:  cost,
			})
		}
	}
	s.absorbDirective(d)
	s.applyPolicy(d.Policy)
}

// closeShard buckets the finished 1000-instruction shard by vector-op
// count (Figure 15).
func (s *engine) closeShard() {
	v := s.vpu.takeShardVec()
	switch {
	case v == 0:
		s.shards.Zero++
	case v <= 4:
		s.shards.OneToFour++
	case v <= 20:
		s.shards.UpToTwenty++
	default:
		s.shards.Above++
	}
	s.shardInsns = 0
}

// takeSample records one time-series point and schedules the next.
func (s *engine) takeSample() {
	smp := Sample{Insns: s.guestInsns}
	dI := s.guestInsns - s.lastSampleI
	dC := s.cycles - s.lastSampleC
	if dC > 0 {
		smp.IPC = float64(dI) / dC
	}
	for _, u := range s.units {
		u.sampleInterval(&smp)
	}
	s.samples = append(s.samples, smp)
	s.lastSampleI = s.guestInsns
	s.lastSampleC = s.cycles
	s.sampleAt += s.cfg.SampleInterval
}
