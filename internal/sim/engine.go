package sim

import (
	"powerchop/internal/arch"
	"powerchop/internal/bt"
	"powerchop/internal/cde"
	"powerchop/internal/core"
	"powerchop/internal/isa"
	"powerchop/internal/obs"
	"powerchop/internal/obs/audit"
	"powerchop/internal/obs/tsdb"
	"powerchop/internal/phase"
	"powerchop/internal/power"
	"powerchop/internal/program"
	"powerchop/internal/pvt"
)

// engine is the live simulation: the clock, the issue pipeline, the BT
// runtime and the window machinery. Everything unit-specific — gating,
// timeout bookkeeping, per-window profiling counters, dynamic-access
// tallies — lives in the managedUnit components (unit.go); the engine
// only dispatches instruction events to them and closes windows.
type engine struct {
	cfg    Config
	design arch.Design
	prog   *program.Program

	walker  *program.Walker
	btSys   *bt.System
	htb     *phase.HTB
	acct    *power.Accountant
	quality *phase.QualityTracker

	// compiled holds the run-length-encoded form of each region body,
	// indexed like prog.Regions; built once at engine setup.
	compiled []program.CompiledRegion

	// The managed units in enactment order (VPU, BPU, MLC). The typed
	// fields alias the same components for instruction dispatch.
	units []managedUnit
	vpu   *vpuUnit
	bpu   *bpuUnit
	mlc   *mlcUnit

	// Observability: tracer is the stamped event sink (nil when off);
	// collector feeds Result.Metrics; auditor feeds Result.Audit;
	// lastXl8 detects fresh translations.
	tracer    obs.Tracer
	collector *obs.Collector
	auditor   *audit.Auditor
	lastXl8   uint64

	cycles     float64
	guestInsns uint64
	uops       uint64
	gateStalls float64
	cdeCycles  float64

	// Current directive state.
	policy pvt.Policy
	// fullWindowStreak counts consecutive completed windows that ran
	// entirely at the full measurement configuration (large BPU, all MLC
	// ways); measurements are warm after two such windows.
	fullWindowStreak int

	// Window instruction counter (unit-specific window counters live in
	// the unit components).
	winInsns uint64

	// Per-window scratch, kept on the engine because passing their
	// addresses through the managedUnit interface would otherwise heap-
	// allocate a fresh copy every window boundary.
	profBuf   cde.WindowProfile
	policyBuf pvt.Policy

	// Core-pipeline dynamic-energy access tally, flushed at the end.
	coreAccesses uint64

	// Sampling.
	sampleAt    uint64
	lastSampleI uint64
	lastSampleC float64
	samples     []Sample

	// Figure 15 shards.
	shardInsns uint64
	shards     VectorShards

	// Batched-lane state (batch.go). A lane engine has a nil walker: the
	// batch front-end walks the program once and hands each execution's
	// dynamics to the lanes through replay, whose cursors index the
	// record's per-op slices. laneExec mirrors walker.Executed() so the
	// run-budget and progress arithmetic is identical on both paths.
	replay   *execRecord
	replayB  int // next branch entry
	replayM  int // next memory entry
	replayV  int // next L1-victim entry
	laneExec uint64
}

// newEngine assembles the engine and its managed units for a validated
// configuration, with a private walker and freshly compiled regions.
func newEngine(p *program.Program, cfg Config) (*engine, error) {
	walker, err := program.NewWalker(p)
	if err != nil {
		return nil, err
	}
	return newEngineWith(p, cfg, walker, program.CompileAll(p))
}

// newEngineWith assembles the engine around an externally supplied walker
// and compiled-region stream. Batched lanes pass a nil walker — the shared
// front-end draws the dynamics — and share one immutable compiled slice.
func newEngineWith(p *program.Program, cfg Config, walker *program.Walker, compiled []program.CompiledRegion) (*engine, error) {
	d := cfg.Design
	btSys, err := bt.New(bt.Config{
		HotThreshold:           d.HotThreshold,
		InterpCPI:              d.InterpCPI,
		TranslateCyclesPerInsn: d.TranslateCyclesPerInsn,
	}, p)
	if err != nil {
		return nil, err
	}

	s := &engine{
		cfg:      cfg,
		design:   d,
		prog:     p,
		walker:   walker,
		btSys:    btSys,
		htb:      phase.NewHTB(cfg.Phase),
		acct:     power.NewAccountant(d.ClockHz),
		compiled: compiled,

		policy:   pvt.FullOn,
		sampleAt: cfg.SampleInterval,
	}
	if cfg.SampleInterval > 0 {
		// Preallocate the sample series from the run budget: at most
		// MaxTranslations executions of the longest body, one sample per
		// interval. Clamped so a pathological budget cannot balloon the
		// allocation; append still grows past the estimate if needed.
		maxLen := 0
		for _, r := range p.Regions {
			if r.Len() > maxLen {
				maxLen = r.Len()
			}
		}
		est := cfg.MaxTranslations*uint64(maxLen)/cfg.SampleInterval + 1
		if est > 1<<16 {
			est = 1 << 16
		}
		s.samples = make([]Sample, 0, est)
	}
	s.vpu = newVPUUnit(s)
	s.bpu = newBPUUnit(s)
	s.mlc = newMLCUnit(s)
	s.units = []managedUnit{s.vpu, s.bpu, s.mlc}

	for _, spec := range d.UnitSpecs() {
		s.acct.AddUnit(spec)
	}
	// PowerChop's own hardware: the HTB and PVT draw constant power.
	s.acct.AddUnit(power.UnitSpec{Name: arch.UnitHTB, LeakageW: power.HTBPowerW})
	if cfg.TrackQuality {
		s.quality = phase.NewQualityTracker(cfg.Phase.WindowSize)
	}
	s.wireObservability()
	return s, nil
}

// wireObservability assembles the run's event sink — the configured
// tracer plus, when metrics are on, the standard collector — wraps it so
// every event is stamped with the simulation clock, and hands it to each
// instrumented component. With no tracer and no metrics everything stays
// nil and the hot path pays only dead nil-checks.
func (s *engine) wireObservability() {
	var sinks []obs.Tracer
	if s.cfg.Tracer != nil {
		sinks = append(sinks, s.cfg.Tracer)
	}
	if s.cfg.Metrics {
		s.collector = obs.NewCollector()
		sinks = append(sinks, s.collector)
	}
	if s.cfg.Audit {
		s.auditor = audit.MustNew(s.auditConfig())
		sinks = append(sinks, s.auditor)
	}
	if s.cfg.Telemetry != nil {
		sinks = append(sinks, tsdb.NewIngestor(s.cfg.Telemetry, tsdb.IngestorConfig{
			Units: []string{arch.UnitBPU, arch.UnitMLC, arch.UnitVPU},
		}))
	}
	t := obs.Multi(sinks...)
	if t == nil {
		return
	}
	t = obs.Stamped(t, func() (float64, uint64) { return s.cycles, s.htb.Windows() })
	s.tracer = t
	s.htb.SetTracer(t)
	for _, u := range s.units {
		u.gate().SetTracer(t)
	}
	if m, ok := s.cfg.Manager.(interface{ SetTracer(obs.Tracer) }); ok {
		m.SetTracer(t)
	}
}

// auditConfig derives the decision-provenance auditor's parameters from
// the design point: the gateable units' leakage budgets for attributed
// savings, and the whole-core leakage (including PowerChop's own HTB/PVT
// hardware) for costing the slowdown cycles decisions incur. When
// metrics are on the audit histograms share the collector's registry so
// one snapshot carries both.
func (s *engine) auditConfig() audit.Config {
	d := s.design
	cfg := audit.Config{
		ClockHz: d.ClockHz,
		Units: []audit.UnitPower{
			{Name: d.PowerVPU.Name, LeakageW: d.PowerVPU.LeakageW},
			{Name: d.PowerBPU.Name, LeakageW: d.PowerBPU.LeakageW},
			{Name: d.PowerMLC.Name, LeakageW: d.PowerMLC.LeakageW},
		},
		TotalLeakageW: d.TotalLeakageW() + power.HTBPowerW,
	}
	if s.collector != nil {
		cfg.Registry = s.collector.Registry()
	}
	return cfg
}

// applyPolicy enacts a gating policy by delegating to each managed unit,
// which charges its own transition stalls, state management costs and
// switch energies.
func (s *engine) applyPolicy(policy pvt.Policy) {
	for _, u := range s.units {
		u.enact(policy)
	}
	s.policy = policy
}

// absorbDirective hands each unit its slice of a manager directive's
// non-policy state (the VPU's timeout semantics) before the policy is
// enacted.
func (s *engine) absorbDirective(d core.Directive) {
	for _, u := range s.units {
		u.absorbDirective(d)
	}
}

// currentPolicy reconstructs the policy currently in effect from unit
// state.
func (s *engine) currentPolicy() pvt.Policy {
	s.policyBuf = pvt.Policy{}
	for _, u := range s.units {
		u.fillPolicy(&s.policyBuf)
	}
	return s.policyBuf
}

// stallFor charges stall cycles attributable to gating transitions.
func (s *engine) stallFor(cycles float64) {
	s.cycles += cycles
	s.gateStalls += cycles
}

// run is the main simulation loop: walk region executions through the BT
// system, dispatch each instruction event to the issue pipeline and the
// owning unit, and close windows at HTB boundaries. The default path
// executes precompiled region bodies; the naive per-instruction walk is
// kept behind Config.naiveWalk as the equivalence oracle.
func (s *engine) run() {
	if s.cfg.naiveWalk {
		s.runNaive()
		return
	}
	issueCycle := 1 / s.design.IssueWidth
	for s.walker.Executed() < s.cfg.MaxTranslations {
		ri := s.walker.Next()
		s.executeRegion(ri, issueCycle)
	}
}

// executeRegion runs one execution of region ri through the BT system,
// the compiled op stream and the window machinery. It is the per-execution
// kernel shared by the solo run loop and the batched lane driver; on the
// batched path the instruction dynamics come from s.replay instead of the
// walker (see unit.go).
func (s *engine) executeRegion(ri int, issueCycle float64) {
	tr, extra := s.btSys.Execute(ri)
	s.cycles += extra
	if s.tracer != nil {
		s.traceInstall(ri)
	}
	cr := &s.compiled[ri]

	for i := range cr.Ops {
		op := &cr.Ops[i]
		if op.Run > 0 {
			s.execScalarRun(uint64(op.Run), issueCycle)
		}
		s.guestInsns++
		s.winInsns++
		s.shardInsns++
		switch op.Inst.Kind {
		case isa.Vector:
			s.vpu.execVector(issueCycle)
		case isa.Branch:
			s.bpu.execBranch(ri, op.Inst, issueCycle)
		default: // isa.Load, isa.Store
			s.mlc.execMem(ri, op.Inst, issueCycle)
		}
		s.postInst()
	}
	if cr.Tail > 0 {
		s.execScalarRun(uint64(cr.Tail), issueCycle)
	}

	if tr != nil {
		if s.htb.Record(tr.ID, uint64(tr.Insns)) {
			s.endWindow()
			s.reportProgress(false)
		}
	}
}

// executed returns the number of region executions performed so far: the
// walker's count on the solo path, the lane's own on the batched path.
func (s *engine) executed() uint64 {
	if s.walker != nil {
		return s.walker.Executed()
	}
	return s.laneExec
}

// execScalarRun executes n consecutive scalar instructions. All
// exact-integer bookkeeping is batched per stretch, with shard and
// sample boundaries hoisted out of the loop as arithmetic on the run
// length, so the per-instruction work reduces to the cycle accumulation.
// That accumulation must stay one issue slot at a time: adding
// n*issueCycle in one step would round differently, and results are
// required to be byte-identical to the naive walk.
func (s *engine) execScalarRun(n uint64, issueCycle float64) {
	sampling := s.cfg.SampleInterval > 0
	for n > 0 {
		// The boundary checks fire exactly when the naive walk's would:
		// shardInsns stays below 1000 and guestInsns below sampleAt
		// between instructions, so both deltas are positive and step >= 1.
		step := n
		if until := 1000 - s.shardInsns; until < step {
			step = until
		}
		if sampling {
			if until := s.sampleAt - s.guestInsns; until < step {
				step = until
			}
		}
		s.guestInsns += step
		s.winInsns += step
		s.shardInsns += step
		s.uops += step
		s.coreAccesses += step
		c := s.cycles
		for i := uint64(0); i < step; i++ {
			c += issueCycle
		}
		s.cycles = c
		n -= step
		if s.shardInsns >= 1000 {
			s.closeShard()
		}
		if sampling && s.guestInsns >= s.sampleAt {
			s.takeSample()
		}
	}
}

// runNaive is the original per-instruction walk over Region.Body. It is
// the semantic reference for the compiled path: the two must produce
// byte-identical results and event streams (see the equivalence tests).
func (s *engine) runNaive() {
	issueCycle := 1 / s.design.IssueWidth
	for s.walker.Executed() < s.cfg.MaxTranslations {
		ri := s.walker.Next()
		tr, extra := s.btSys.Execute(ri)
		s.cycles += extra
		if s.tracer != nil {
			s.traceInstall(ri)
		}
		region := s.walker.Region(ri)

		for _, inst := range region.Body {
			s.guestInsns++
			s.winInsns++
			s.shardInsns++
			switch inst.Kind {
			case isa.Scalar:
				s.uops++
				s.coreAccesses++
				s.cycles += issueCycle
			case isa.Vector:
				s.vpu.execVector(issueCycle)
			case isa.Branch:
				s.bpu.execBranch(ri, inst, issueCycle)
			case isa.Load, isa.Store:
				s.mlc.execMem(ri, inst, issueCycle)
			}
			s.postInst()
		}

		if tr != nil {
			if s.htb.Record(tr.ID, uint64(tr.Insns)) {
				s.endWindow()
				s.reportProgress(false)
			}
		}
	}
}

// postInst runs the per-instruction boundary checks shared by both
// walks: close the 1000-instruction shard, then take a due sample — in
// that order, since both can trigger on the same instruction.
func (s *engine) postInst() {
	if s.shardInsns >= 1000 {
		s.closeShard()
	}
	if s.cfg.SampleInterval > 0 && s.guestInsns >= s.sampleAt {
		s.takeSample()
	}
}

// traceInstall emits a translation-install event when the preceding
// Execute compiled a fresh translation. Execute returns nil on the
// install execution, so fresh translations are detected by a counter
// delta.
func (s *engine) traceInstall(ri int) {
	if n := s.btSys.Translations(); n > s.lastXl8 {
		s.lastXl8 = n
		if nt := s.btSys.Translation(ri); nt != nil {
			s.tracer.Emit(obs.Event{
				Kind:   obs.KindTranslate,
				Detail: "install",
				Count:  uint64(nt.ID),
				Value:  float64(nt.Insns),
			})
		}
	}
}

// reportProgress delivers a read-only snapshot to the configured
// progress callback. It must stay free of simulation side effects.
func (s *engine) reportProgress(done bool) {
	if s.cfg.Progress == nil {
		return
	}
	s.cfg.Progress(Progress{
		Cycle:           s.cycles,
		GuestInsns:      s.guestInsns,
		Translations:    s.executed(),
		MaxTranslations: s.cfg.MaxTranslations,
		Windows:         s.htb.Windows(),
		Done:            done,
	})
}

// finish closes out accounting and assembles the Result.
func (s *engine) finish() *Result {
	s.reportProgress(true)
	if s.tracer != nil {
		// Mark the end of the run at the exact cycle residency tracking
		// closes out below, so trace consumers (the auditor, recorded
		// JSONL replays) can close their own interval accounting at the
		// same instant.
		s.tracer.Emit(obs.Event{Kind: obs.KindRunEnd})
	}
	// Close residency tracking.
	for _, u := range s.units {
		u.gate().CloseOut(s.cycles)
	}
	for _, u := range s.units {
		g := u.gate()
		for _, level := range g.Levels() {
			s.acct.AddResidency(g.Name(), level, g.Residency(level))
		}
	}
	s.acct.AddResidency(arch.UnitCore, 1, s.cycles)
	s.acct.AddResidency(arch.UnitHTB, 1, s.cycles)

	// Flush dynamic access tallies: the core pipeline's, then each unit's.
	s.acct.AddAccesses(arch.UnitCore, s.coreAccesses, 1)
	for _, u := range s.units {
		u.flushAccesses(s.acct)
	}

	rep := s.acct.Report(s.cycles)

	r := &Result{
		Benchmark: s.prog.Name,
		Suite:     s.prog.Suite,
		Arch:      s.design.Name,
		Manager:   s.cfg.Manager.Name(),

		Cycles:     s.cycles,
		GuestInsns: s.guestInsns,
		Uops:       s.uops,
		Seconds:    rep.Seconds,

		Power: rep,

		BT:          s.btSys.Stats(),
		PVTMissInts: s.btSys.Nucleus().Count(bt.IntPVTMiss),
		CDECycles:   s.cdeCycles,
		GateStalls:  s.gateStalls,
		Windows:     s.htb.Windows(),

		Samples: s.samples,
		Shards:  s.shards,
	}
	for _, u := range s.units {
		u.report(r)
	}
	if s.cycles > 0 {
		r.IPC = float64(s.guestInsns) / s.cycles
	}
	pc, ok := s.cfg.Manager.(*core.PowerChop)
	if !ok {
		// Wrapping managers (e.g. DarkGates) expose their inner
		// PowerChop for PVT/CDE reporting.
		if w, okw := s.cfg.Manager.(interface{ Unwrap() *core.PowerChop }); okw {
			pc, ok = w.Unwrap(), true
		}
	}
	if ok {
		r.PVT = pc.PVT().Stats()
		r.CDE = pc.Engine().Stats()
		r.KnownPhases = pc.Engine().KnownPhases()
	}
	if s.quality != nil {
		r.QualityMeanFrac = s.quality.MeanDistanceFrac()
		r.QualityMaxFrac = s.quality.MaxDistanceFrac()
		r.QualityPhases = s.quality.DistinctSignatures()
		r.QualityCompared = s.quality.Comparisons()
	}
	if s.collector != nil {
		r.Metrics = s.collector.Snapshot()
	}
	if s.auditor != nil {
		r.Audit = s.auditor.Snapshot()
	}
	return r
}
