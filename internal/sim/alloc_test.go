package sim

import (
	"testing"

	"powerchop/internal/arch"
	"powerchop/internal/core"
)

// TestSteadyStateAllocationsPinned asserts that the simulation loop does
// not allocate per translation or per window: growing the run 16× must
// leave the per-run allocation count nearly unchanged (setup dominates;
// the small slack absorbs saturating growth such as the CDE's phase
// table). One allocation per window would cost ~300 extra allocations at
// the long length and trip the bound immediately.
func TestSteadyStateAllocationsPinned(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation changes allocation counts")
	}
	p := vectorPhasedProgram(t)
	measure := func(mk func() core.Manager, n uint64) float64 {
		return testing.AllocsPerRun(5, func() {
			if _, err := Run(p, Config{
				Design:          arch.Server(),
				Manager:         mk(),
				Phase:           smallPhaseConfig(),
				MaxTranslations: n,
			}); err != nil {
				t.Fatal(err)
			}
		})
	}
	managers := []struct {
		name string
		mk   func() core.Manager
	}{
		{"full-power", func() core.Manager { return core.AlwaysOn() }},
		{"powerchop", func() core.Manager { return core.MustPowerChop(core.DefaultConfig()) }},
	}
	for _, mc := range managers {
		short := measure(mc.mk, 1000)
		long := measure(mc.mk, 16000)
		if grew := long - short; grew > 16 {
			t.Errorf("%s: allocations grew by %.0f (%.0f -> %.0f) over a 16x longer run; the hot loop allocates",
				mc.name, grew, short, long)
		}
	}
}
