//go:build race

package sim

// raceEnabled reports whether the race detector is compiled in; the
// allocation-pinning test skips itself under race because the detector's
// instrumentation allocates on its own schedule.
const raceEnabled = true
