package arch

import (
	"math"
	"testing"
)

func TestPresetsValidate(t *testing.T) {
	for _, d := range []Design{Server(), Mobile()} {
		if err := d.Validate(); err != nil {
			t.Errorf("%s: %v", d.Name, err)
		}
	}
}

func TestTableIGeometries(t *testing.T) {
	s := Server()
	if s.Mem.MLC.SizeBytes != 1024<<10 || s.Mem.MLC.Ways != 8 {
		t.Error("server MLC drifted from Table I (1024KB 8-way)")
	}
	if s.VPU.Width != 4 {
		t.Error("server VPU drifted from Table I (4-wide SIMD)")
	}
	if s.BPU.Large.BTBEntries != 4096 || s.BPU.Large.ChooserSize != 16384 {
		t.Error("server BPU drifted from Table I (4K BTB, 16K chooser)")
	}
	if s.BPU.SmallBTB != 1024 {
		t.Error("server gated-off BPU drifted from Table I (1K BTB)")
	}

	m := Mobile()
	if m.Mem.MLC.SizeBytes != 2048<<10 || m.Mem.MLC.Ways != 8 {
		t.Error("mobile MLC drifted from Table I (2048KB 8-way)")
	}
	if m.VPU.Width != 2 {
		t.Error("mobile VPU drifted from Table I (2-wide SIMD)")
	}
	if m.BPU.Large.BTBEntries != 2048 || m.BPU.Large.ChooserSize != 8192 {
		t.Error("mobile BPU drifted from Table I (2K BTB, 8K chooser)")
	}
	if m.BPU.SmallBTB != 512 {
		t.Error("mobile gated-off BPU drifted from Table I (512-entry BTB)")
	}
}

func TestGatingOverheadsMatchPaper(t *testing.T) {
	for _, d := range []Design{Server(), Mobile()} {
		if d.GateStallVPU != 30 || d.GateStallBPU != 20 || d.GateStallMLC != 50 {
			t.Errorf("%s: gate stalls drifted from Section IV-D", d.Name)
		}
		if d.VPU.SaveRestoreCycles != 500 {
			t.Errorf("%s: VPU save/restore drifted from Section IV-D", d.Name)
		}
	}
}

func TestAreaSharesMatchTableI(t *testing.T) {
	s := Server()
	if s.PowerMLC.AreaFrac != 0.35 || s.PowerVPU.AreaFrac != 0.20 || s.PowerBPU.AreaFrac != 0.04 {
		t.Error("server area shares drifted from Table I")
	}
	m := Mobile()
	if m.PowerMLC.AreaFrac != 0.60 || m.PowerVPU.AreaFrac != 0.18 || m.PowerBPU.AreaFrac != 0.03 {
		t.Error("mobile area shares drifted from Table I")
	}
}

func TestLeakageTracksArea(t *testing.T) {
	// Leakage budgets must be proportional to area shares within each
	// design (leakage tracks area at a fixed node).
	for _, d := range []Design{Server(), Mobile()} {
		total := d.TotalLeakageW()
		for _, u := range []struct {
			leak, area float64
		}{
			{d.PowerMLC.LeakageW, d.PowerMLC.AreaFrac},
			{d.PowerVPU.LeakageW, d.PowerVPU.AreaFrac},
			{d.PowerBPU.LeakageW, d.PowerBPU.AreaFrac},
		} {
			if math.Abs(u.leak/total-u.area) > 0.005 {
				t.Errorf("%s: leakage share %v vs area share %v", d.Name, u.leak/total, u.area)
			}
		}
	}
}

func TestUnitSpecsOrder(t *testing.T) {
	specs := Server().UnitSpecs()
	want := []string{UnitVPU, UnitBPU, UnitMLC, UnitCore}
	if len(specs) != len(want) {
		t.Fatalf("specs = %d", len(specs))
	}
	for i, s := range specs {
		if s.Name != want[i] {
			t.Errorf("spec %d = %q, want %q", i, s.Name, want[i])
		}
	}
}

func TestByName(t *testing.T) {
	s, err := ByName("server")
	if err != nil || s.Name != "server" {
		t.Fatalf("ByName(server) = %v, %v", s.Name, err)
	}
	m, err := ByName("mobile")
	if err != nil || m.Name != "mobile" {
		t.Fatalf("ByName(mobile) = %v, %v", m.Name, err)
	}
	if _, err := ByName("laptop"); err == nil {
		t.Fatal("unknown design accepted")
	}
}

func TestValidateCatchesMutations(t *testing.T) {
	mutations := []func(*Design){
		func(d *Design) { d.Name = "" },
		func(d *Design) { d.ClockHz = 0 },
		func(d *Design) { d.IssueWidth = -1 },
		func(d *Design) { d.InterpCPI = 0.5 },
		func(d *Design) { d.HotThreshold = 0 },
		func(d *Design) { d.GateStallMLC = -1 },
		func(d *Design) { d.VPU.Width = 0 },
		func(d *Design) { d.BPU.Large.BTBEntries = 3 },
		func(d *Design) { d.Mem.MLC.Ways = 3 },
		func(d *Design) { d.PowerVPU.LeakageW = -1 },
	}
	for i, mutate := range mutations {
		d := Server()
		mutate(&d)
		if err := d.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestServerFasterThanMobile(t *testing.T) {
	s, m := Server(), Mobile()
	if s.ClockHz <= m.ClockHz || s.IssueWidth <= m.IssueWidth {
		t.Error("server should be faster and wider than mobile")
	}
	if s.TotalLeakageW() <= m.TotalLeakageW() {
		t.Error("server should leak more than mobile")
	}
}
