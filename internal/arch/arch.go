// Package arch defines the two processor design points of the paper's
// evaluation (Table I and Figure 7): a server-class hybrid core modelled
// on Intel Nehalem and a mobile-class hybrid core modelled on ARM
// Cortex-A9, both at the 32 nm node.
//
// A Design bundles everything the simulator needs: pipeline timing
// parameters, the BT runtime's cost model, the managed units' geometries
// (BPU, MLC, VPU), gating overheads (Section IV-D) and the per-unit power
// budgets that stand in for the paper's McPAT model. Leakage budgets
// follow Table I's area shares (server: MLC 35%, VPU 20%, BPU 4% of core;
// mobile: 60%/18%/3%) — leakage tracks area at a fixed process node.
package arch

import (
	"fmt"

	"powerchop/internal/bpu"
	"powerchop/internal/cache"
	"powerchop/internal/power"
	"powerchop/internal/vpu"
)

// Unit names used consistently across gating, power accounting and
// reporting.
const (
	UnitVPU  = "VPU"
	UnitBPU  = "BPU"
	UnitMLC  = "MLC"
	UnitCore = "core" // everything not managed by PowerChop
	UnitHTB  = "HTB"  // PowerChop's added hardware (HTB + PVT)
)

// Design is a complete processor design point.
type Design struct {
	// Name labels the design ("server" or "mobile").
	Name string
	// ClockHz is the core clock.
	ClockHz float64
	// IssueWidth is the sustained micro-op issue rate of the translated-
	// code pipeline.
	IssueWidth float64
	// MispredictPenalty is the branch misprediction redirect cost in
	// cycles.
	MispredictPenalty float64

	// InterpCPI is the BT interpreter's cost in cycles per guest
	// instruction before a region is translated.
	InterpCPI float64
	// TranslateCyclesPerInsn is the translator/optimizer's one-time cost
	// per instruction of a region.
	TranslateCyclesPerInsn float64
	// HotThreshold is the interpreted-execution count at which a region
	// is translated.
	HotThreshold int
	// CDEInvokeCycles is the software cost of one CDE invocation (the
	// nucleus interrupt plus Algorithm 1).
	CDEInvokeCycles float64

	// Gate-switch stall cycles (Section IV-D).
	GateStallVPU float64
	GateStallBPU float64
	GateStallMLC float64
	// WritebackCyclesPerLine is the stall per dirty MLC line flushed on a
	// way-gating downsize.
	WritebackCyclesPerLine float64

	// VPU, BPU and memory-system geometries.
	VPU vpu.Config
	BPU bpu.Config
	Mem cache.HierarchyConfig

	// Power budgets for the managed units plus the rest of the core.
	PowerVPU  power.UnitSpec
	PowerBPU  power.UnitSpec
	PowerMLC  power.UnitSpec
	PowerCore power.UnitSpec
}

// Validate checks the design's internal consistency.
func (d Design) Validate() error {
	if d.Name == "" {
		return fmt.Errorf("arch: unnamed design")
	}
	if d.ClockHz <= 0 || d.IssueWidth <= 0 {
		return fmt.Errorf("arch: %s: non-positive clock or issue width", d.Name)
	}
	if d.MispredictPenalty < 0 || d.InterpCPI < 1 || d.TranslateCyclesPerInsn < 0 {
		return fmt.Errorf("arch: %s: inconsistent BT costs", d.Name)
	}
	if d.HotThreshold <= 0 {
		return fmt.Errorf("arch: %s: hot threshold %d", d.Name, d.HotThreshold)
	}
	if d.CDEInvokeCycles < 0 || d.GateStallVPU < 0 || d.GateStallBPU < 0 || d.GateStallMLC < 0 || d.WritebackCyclesPerLine < 0 {
		return fmt.Errorf("arch: %s: negative overhead cost", d.Name)
	}
	if err := d.VPU.Validate(); err != nil {
		return fmt.Errorf("arch: %s: %w", d.Name, err)
	}
	if err := d.BPU.Large.Validate(); err != nil {
		return fmt.Errorf("arch: %s: %w", d.Name, err)
	}
	if err := d.Mem.Validate(); err != nil {
		return fmt.Errorf("arch: %s: %w", d.Name, err)
	}
	for _, spec := range []power.UnitSpec{d.PowerVPU, d.PowerBPU, d.PowerMLC, d.PowerCore} {
		if err := spec.Validate(); err != nil {
			return fmt.Errorf("arch: %s: %w", d.Name, err)
		}
	}
	return nil
}

// UnitSpecs returns the power specs in registration order.
func (d Design) UnitSpecs() []power.UnitSpec {
	return []power.UnitSpec{d.PowerVPU, d.PowerBPU, d.PowerMLC, d.PowerCore}
}

// TotalLeakageW returns the design's full-power leakage budget.
func (d Design) TotalLeakageW() float64 {
	return d.PowerVPU.LeakageW + d.PowerBPU.LeakageW + d.PowerMLC.LeakageW + d.PowerCore.LeakageW
}

// Server returns the server design point: a Nehalem-class hybrid core.
// Table I: 1024KB 8-way MLC (35% of core area), 4-wide SIMD VPU (20%),
// loc/glob tournament BPU with 4K-entry BTB and 16K-entry chooser (4%).
func Server() Design {
	return Design{
		Name:              "server",
		ClockHz:           3.0e9,
		IssueWidth:        4,
		MispredictPenalty: 14,

		InterpCPI:              15,
		TranslateCyclesPerInsn: 200,
		HotThreshold:           16,
		CDEInvokeCycles:        4000,

		GateStallVPU:           30,
		GateStallBPU:           20,
		GateStallMLC:           50,
		WritebackCyclesPerLine: 4,

		VPU: vpu.Config{Width: 4, SaveRestoreCycles: 500},
		BPU: bpu.ServerConfig(),
		Mem: cache.HierarchyConfig{
			L1:  cache.Config{SizeBytes: 32 << 10, Ways: 8, LineBytes: 64},
			MLC: cache.Config{SizeBytes: 1024 << 10, Ways: 8, LineBytes: 64},
			// Effective (overlapped) stalls: the out-of-order core
			// sustains ~4 outstanding misses, so the per-miss stall is
			// DRAM latency (~190 cycles) divided by the achieved MLP.
			MLCLatency: 12,
			MemLatency: 48,
		},

		// 6 W core leakage split by Table I area shares; dynamic
		// per-access energies sized so leakage is ~35-40% of total power
		// under load, as at 32 nm.
		PowerVPU:  power.UnitSpec{Name: UnitVPU, LeakageW: 1.20, DynPerAccessJ: 2.5e-9, PeakDynW: 3.0, AreaFrac: 0.20},
		PowerBPU:  power.UnitSpec{Name: UnitBPU, LeakageW: 0.24, DynPerAccessJ: 0.8e-9, PeakDynW: 1.0, AreaFrac: 0.04},
		PowerMLC:  power.UnitSpec{Name: UnitMLC, LeakageW: 2.10, DynPerAccessJ: 3.0e-9, PeakDynW: 2.0, AreaFrac: 0.35},
		PowerCore: power.UnitSpec{Name: UnitCore, LeakageW: 2.46, DynPerAccessJ: 2.5e-9, PeakDynW: 8.0, AreaFrac: 0.41},
	}
}

// Mobile returns the mobile design point: a Cortex-A9-class hybrid core.
// Table I: 2048KB 8-way MLC (60% of core area), 2-wide SIMD VPU (18%),
// loc/glob tournament BPU with 2K-entry BTB and 8K-entry chooser (3%).
func Mobile() Design {
	return Design{
		Name:              "mobile",
		ClockHz:           1.0e9,
		IssueWidth:        2,
		MispredictPenalty: 8,

		InterpCPI:              12,
		TranslateCyclesPerInsn: 150,
		HotThreshold:           16,
		CDEInvokeCycles:        3000,

		GateStallVPU:           30,
		GateStallBPU:           20,
		GateStallMLC:           50,
		WritebackCyclesPerLine: 6,

		VPU: vpu.Config{Width: 2, SaveRestoreCycles: 500},
		BPU: bpu.MobileConfig(),
		Mem: cache.HierarchyConfig{
			L1:  cache.Config{SizeBytes: 32 << 10, Ways: 4, LineBytes: 64},
			MLC: cache.Config{SizeBytes: 2048 << 10, Ways: 8, LineBytes: 64},
			// Effective stalls with ~3 outstanding misses on the
			// narrower mobile core.
			MLCLatency: 10,
			MemLatency: 36,
		},

		// 0.30 W core leakage split by Table I area shares; dynamic
		// per-access energies sized so leakage is ~40% of total power
		// under load.
		PowerVPU:  power.UnitSpec{Name: UnitVPU, LeakageW: 0.054, DynPerAccessJ: 0.45e-9, PeakDynW: 0.12, AreaFrac: 0.18},
		PowerBPU:  power.UnitSpec{Name: UnitBPU, LeakageW: 0.009, DynPerAccessJ: 0.12e-9, PeakDynW: 0.04, AreaFrac: 0.03},
		PowerMLC:  power.UnitSpec{Name: UnitMLC, LeakageW: 0.180, DynPerAccessJ: 0.60e-9, PeakDynW: 0.10, AreaFrac: 0.60},
		PowerCore: power.UnitSpec{Name: UnitCore, LeakageW: 0.057, DynPerAccessJ: 0.30e-9, PeakDynW: 0.30, AreaFrac: 0.19},
	}
}

// ByName returns the named design point ("server" or "mobile").
func ByName(name string) (Design, error) {
	switch name {
	case "server":
		return Server(), nil
	case "mobile":
		return Mobile(), nil
	default:
		return Design{}, fmt.Errorf("arch: unknown design %q (want server or mobile)", name)
	}
}
