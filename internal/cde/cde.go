// Package cde implements PowerChop's Criticality Decision Engine: the
// software component (an extension of the BT runtime) that characterizes
// unit criticality per phase and assigns power gating policies
// (Section IV-C, Algorithm 1).
//
// The engine is invoked on PVT misses. It distinguishes:
//
//   - New phase — never seen before: the phase enters profiling mode.
//     Profiling information comes from hardware performance monitors over
//     the next execution window(s). VPU and MLC criticality need one
//     window measured at full power with the large BPU active; BPU
//     criticality needs a second window with the small predictor active
//     (the two misprediction rates are differenced). When enough
//     information has been gathered, the policy is computed and registered
//     with the PVT.
//   - Continued phase profiling — the phase is mid-profile: consume the
//     window's counters and either finish or keep collecting.
//   - Evicted phase — previously characterized but evicted from the PVT:
//     re-register the stored policy from the engine's in-memory backing
//     store.
//
// Criticality scores (Section IV-C2):
//
//	Criticality_VPU = Phase_SIMD  / Phase_TotInsn
//	Criticality_BPU = MisPred_Small − MisPred_Large   (per-branch rates)
//	Criticality_MLC = Phase_L2Hit / Phase_TotInsn
package cde

import (
	"fmt"

	"powerchop/internal/obs"
	"powerchop/internal/phase"
	"powerchop/internal/pvt"
)

// Thresholds are the criticality cut-offs for gating decisions. The
// paper's text elides the numeric values; these defaults were selected by
// the same sweep procedure the paper describes (maximize savings at ≈2%
// average slowdown) — see BenchmarkAblationThresholds.
type Thresholds struct {
	VPU  float64 // gate VPU off when Criticality_VPU  <= VPU
	BPU  float64 // gate BPU off when Criticality_BPU  <= BPU
	MLC1 float64 // all ways when Criticality_MLC >  MLC1
	MLC2 float64 // one way  when Criticality_MLC <= MLC2, else half
}

// DefaultThresholds returns the repository's calibrated defaults.
func DefaultThresholds() Thresholds {
	return Thresholds{VPU: 0.005, BPU: 0.005, MLC1: 0.005, MLC2: 0.0005}
}

// AggressiveThresholds returns the paper's suggested alternative policy
// (Section V-A): higher thresholds that target energy minimization, gating
// units unless they are strongly critical and accepting more slowdown in
// exchange.
func AggressiveThresholds() Thresholds {
	return Thresholds{VPU: 0.02, BPU: 0.04, MLC1: 0.02, MLC2: 0.002}
}

// Validate reports an error for inconsistent thresholds.
func (t Thresholds) Validate() error {
	for _, f := range []struct {
		name string
		v    float64
	}{{"VPU", t.VPU}, {"BPU", t.BPU}, {"MLC1", t.MLC1}, {"MLC2", t.MLC2}} {
		if f.v < 0 || f.v > 1 {
			return fmt.Errorf("cde: threshold %s = %v out of [0,1]", f.name, f.v)
		}
	}
	if t.MLC2 > t.MLC1 {
		return fmt.Errorf("cde: MLC2 (%v) exceeds MLC1 (%v)", t.MLC2, t.MLC1)
	}
	return nil
}

// Managed selects which units the engine controls; unmanaged units stay
// fully powered (used for the paper's per-unit isolation studies).
type Managed struct {
	VPU bool
	BPU bool
	MLC bool
}

// ManageAll enables all three units.
func ManageAll() Managed { return Managed{VPU: true, BPU: true, MLC: true} }

// WindowProfile carries one execution window's performance-monitor
// readings into the engine.
type WindowProfile struct {
	TotalInsns  uint64
	SIMDInsns   uint64
	L2Hits      uint64
	Branches    uint64
	Mispredicts uint64
	// LargeBPUActive records which predictor steered the window.
	LargeBPUActive bool
	// MLCFullyOn records whether every MLC way was powered, a
	// precondition for a valid L2-hit criticality measurement.
	MLCFullyOn bool
	// VPUOn records whether vector instructions executed on the VPU; the
	// SIMD ratio is architectural and valid either way.
	VPUOn bool
	// Warm records that the full measurement configuration (large BPU,
	// all MLC ways) was already in effect for at least two preceding
	// windows, so the window's rates are not polluted by rewarming a
	// just-ungated predictor or cache.
	Warm bool
	// Current is the gating policy in effect during the window. Used as
	// the fallback registration for phases that never become measurable.
	Current pvt.Policy
}

// mispredRate returns the per-branch misprediction rate.
func (p WindowProfile) mispredRate() float64 {
	if p.Branches == 0 {
		return 0
	}
	return float64(p.Mispredicts) / float64(p.Branches)
}

// MaxProfileAttempts bounds how many CDE invocations a phase may spend in
// profiling mode before the engine gives up and registers a conservative
// full-power policy. Transition phases (windows straddling a phase edge)
// recur only at phase boundaries and always execute under the outgoing
// phase's gated policy, so their measurement preconditions may never be
// met; without a bound they would pay the PVT-miss interrupt cost at every
// boundary forever.
const MaxProfileAttempts = 8

// profState tracks an in-flight profile of one phase.
type profState struct {
	haveMain     bool // window A consumed (full power, large BPU)
	simdRatio    float64
	l2HitRatio   float64
	misPredLarge float64
	haveSmall    bool // window B consumed (small BPU)
	misPredSmall float64
	windows      int
	attempts     int
}

// Action is the engine's response to a PVT miss.
type Action struct {
	// Policy to apply for the next window: either the registered policy
	// (hit in backing store or profiling complete) or the profiling
	// configuration still needed.
	Policy pvt.Policy
	// Profiling is true while the phase is still being measured; the
	// Policy then encodes the measurement configuration.
	Profiling bool
	// Registered is true when this invocation registered a policy with
	// the PVT (newly computed or re-registered after eviction).
	Registered bool
	// NewPhase is true when the miss was compulsory (first sighting).
	NewPhase bool
}

// Stats counts engine activity.
type Stats struct {
	Invocations      uint64
	CompulsoryMisses uint64
	CapacityMisses   uint64
	ProfileWindows   uint64
	Registrations    uint64
	PhasesProfiled   uint64
	ProfileAbandons  uint64
}

// Engine is the Criticality Decision Engine.
type Engine struct {
	table   *pvt.Table
	backing map[phase.Signature]pvt.Policy
	inprog  map[phase.Signature]*profState
	thr     Thresholds
	managed Managed
	stats   Stats
	tracer  obs.Tracer
}

// New builds an engine around the given PVT.
func New(table *pvt.Table, thr Thresholds, managed Managed) (*Engine, error) {
	if table == nil {
		return nil, fmt.Errorf("cde: nil PVT")
	}
	if err := thr.Validate(); err != nil {
		return nil, err
	}
	return &Engine{
		table:   table,
		backing: make(map[phase.Signature]pvt.Policy),
		inprog:  make(map[phase.Signature]*profState),
		thr:     thr,
		managed: managed,
	}, nil
}

// Stats returns the engine's activity counters.
func (e *Engine) Stats() Stats { return e.stats }

// SetTracer attaches an event tracer; completed profiles then emit
// KindCDEScore events (one per managed unit) and registrations emit
// KindCDERegister. A nil tracer (the default) disables emission.
func (e *Engine) SetTracer(t obs.Tracer) { e.tracer = t }

// Thresholds returns the engine's criticality thresholds.
func (e *Engine) Thresholds() Thresholds { return e.thr }

// KnownPhases returns the number of phases with computed policies (in the
// PVT or its backing store).
func (e *Engine) KnownPhases() int { return len(e.backing) }

// profilingPolicy returns the measurement configuration for the next
// window: full power, with the large BPU only when window A is still
// needed.
func (e *Engine) profilingPolicy(st *profState) pvt.Policy {
	p := pvt.FullOn
	if st.haveMain && e.managed.BPU && !st.haveSmall {
		p.BPUOn = false // window B: measure the small predictor
	}
	return p
}

// complete reports whether the profile has every measurement the managed
// units require.
func (e *Engine) complete(st *profState) bool {
	if (e.managed.VPU || e.managed.MLC || e.managed.BPU) && !st.haveMain {
		return false
	}
	if e.managed.BPU && !st.haveSmall {
		return false
	}
	return true
}

// decide computes the gating policy from a completed profile of sig,
// emitting one fully-provenanced score event per managed unit.
func (e *Engine) decide(sig phase.Signature, st *profState) pvt.Policy {
	p := pvt.FullOn
	if e.managed.VPU {
		p.VPUOn = st.simdRatio > e.thr.VPU
		e.score(sig, st, "VPU", "simd-ratio", st.simdRatio, e.thr.VPU, 0, boolBit(p.VPUOn))
	}
	if e.managed.BPU {
		critBPU := st.misPredSmall - st.misPredLarge
		p.BPUOn = critBPU > e.thr.BPU
		e.score(sig, st, "BPU", "mispred-delta", critBPU, e.thr.BPU, 0, boolBit(p.BPUOn))
	}
	if e.managed.MLC {
		switch {
		case st.l2HitRatio > e.thr.MLC1:
			p.MLC = pvt.MLCAll
		case st.l2HitRatio <= e.thr.MLC2:
			p.MLC = pvt.MLCOne
		default:
			p.MLC = pvt.MLCHalf
		}
		e.score(sig, st, "MLC", "l2hit-ratio", st.l2HitRatio, e.thr.MLC1, e.thr.MLC2, uint8(p.MLC))
	}
	return p
}

// boolBit encodes an on/off outcome for the score event's Policy field.
func boolBit(on bool) uint8 {
	if on {
		return 1
	}
	return 0
}

// score emits one unit's criticality measurement with its full decision
// provenance: the phase, the threshold(s) the value was compared against
// (thr2 is the MLC's second cut-off, zero elsewhere), the outcome and the
// number of profile windows behind the measurement.
func (e *Engine) score(sig phase.Signature, st *profState, unit, metric string, value, thr, thr2 float64, outcome uint8) {
	if e.tracer == nil {
		return
	}
	e.tracer.Emit(obs.Event{
		Kind:   obs.KindCDEScore,
		Unit:   unit,
		Detail: metric,
		Value:  value,
		SigIDs: sig.IDs,
		SigN:   sig.N,
		Prev:   thr,
		Next:   thr2,
		Policy: outcome,
		Count:  uint64(st.windows),
	})
}

// register installs the policy in the PVT and spills any evicted entry to
// the backing store. how records the registration path for the event
// stream: "computed", "restored" or "abandoned"; st is the profile behind
// the registration (nil on the restored path).
func (e *Engine) register(sig phase.Signature, p pvt.Policy, how string, st *profState) {
	e.backing[sig] = p
	if evSig, evPol, ev := e.table.Register(sig, p); ev {
		e.backing[evSig] = evPol
	}
	e.stats.Registrations++
	if e.tracer != nil {
		ev := obs.Event{
			Kind:   obs.KindCDERegister,
			SigIDs: sig.IDs,
			SigN:   sig.N,
			Policy: p.Encode(),
			Detail: how,
		}
		if st != nil {
			ev.Value = float64(st.windows)
			ev.Count = uint64(st.attempts)
		}
		e.tracer.Emit(ev)
	}
}

// HandleMiss implements Algorithm 1. It is invoked when the window that
// just ended produced signature sig and the PVT lookup missed; prof is
// that window's performance-monitor profile.
func (e *Engine) HandleMiss(sig phase.Signature, prof WindowProfile) Action {
	e.stats.Invocations++

	// Evicted phase: already characterized, fetch from memory and
	// re-register with the PVT.
	if policy, known := e.backing[sig]; known {
		e.stats.CapacityMisses++
		e.register(sig, policy, "restored", nil)
		return Action{Policy: policy, Registered: true}
	}

	st, profiling := e.inprog[sig]
	newPhase := !profiling
	if newPhase {
		// Compulsory miss: enter profiling mode. The window that just
		// ended is NOT consumed — it straddles the phase edge and its
		// counters are contaminated by the previous phase; profiling
		// information is collected over the next execution window(s)
		// (Section IV-C1).
		e.stats.CompulsoryMisses++
		e.stats.PhasesProfiled++
		st = &profState{}
		e.inprog[sig] = st
	} else {
		// Continued profiling: the window that just ended ran under a
		// measurement configuration; consume its counters.
		disposition := e.consume(st, prof)
		if e.tracer != nil {
			e.tracer.Emit(obs.Event{
				Kind:   obs.KindCDEProfile,
				SigIDs: sig.IDs,
				SigN:   sig.N,
				Detail: disposition,
				Count:  uint64(st.windows),
				Value:  float64(st.attempts),
			})
		}
	}

	if e.complete(st) {
		policy := e.decide(sig, st)
		delete(e.inprog, sig)
		e.register(sig, policy, "computed", st)
		return Action{Policy: policy, Registered: true, NewPhase: newPhase}
	}
	st.attempts++
	if st.attempts >= MaxProfileAttempts {
		// The phase never recurs under a measurable configuration
		// (typically a phase-transition signature that only executes
		// while the outgoing phase's gated policy is in effect). Stop
		// paying the PVT-miss interrupt on every recurrence: register
		// the policy the phase has been running under, which by
		// construction has shown acceptable behaviour across the failed
		// measurement attempts.
		delete(e.inprog, sig)
		e.stats.ProfileAbandons++
		e.register(sig, prof.Current, "abandoned", st)
		return Action{Policy: prof.Current, Registered: true, NewPhase: newPhase}
	}
	return Action{Policy: e.profilingPolicy(st), Profiling: true, NewPhase: newPhase}
}

// consume folds one window's counters into the profile when the window ran
// under a valid measurement configuration, returning the window's
// disposition for the event stream: "main" (full-power measurement
// taken), "small" (small-BPU rate taken), "skipped" (preconditions
// unmet) or "empty" (no instructions executed).
func (e *Engine) consume(st *profState, prof WindowProfile) string {
	if prof.TotalInsns == 0 {
		return "empty"
	}
	st.windows++
	e.stats.ProfileWindows++
	if !st.haveMain && prof.MLCFullyOn && prof.LargeBPUActive && prof.Warm {
		st.haveMain = true
		st.simdRatio = float64(prof.SIMDInsns) / float64(prof.TotalInsns)
		st.l2HitRatio = float64(prof.L2Hits) / float64(prof.TotalInsns)
		st.misPredLarge = prof.mispredRate()
		return "main"
	}
	if st.haveMain && !st.haveSmall && !prof.LargeBPUActive {
		st.haveSmall = true
		st.misPredSmall = prof.mispredRate()
		return "small"
	}
	return "skipped"
}

// PoliciesInFlight returns the number of phases currently being profiled.
func (e *Engine) PoliciesInFlight() int { return len(e.inprog) }
