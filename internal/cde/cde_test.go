package cde

import (
	"testing"

	"powerchop/internal/phase"
	"powerchop/internal/pvt"
)

func sig(id uint32) phase.Signature {
	var s phase.Signature
	s.IDs[0] = id
	s.N = 1
	return s
}

// fullProfile is a window measured at full power with the large BPU.
func fullProfile(simd, l2hits, mispred uint64) WindowProfile {
	return WindowProfile{
		TotalInsns:     10000,
		SIMDInsns:      simd,
		L2Hits:         l2hits,
		Branches:       1000,
		Mispredicts:    mispred,
		LargeBPUActive: true,
		MLCFullyOn:     true,
		VPUOn:          true,
		Warm:           true,
	}
}

// smallProfile is a window measured with the small BPU active.
func smallProfile(mispred uint64) WindowProfile {
	p := fullProfile(0, 0, mispred)
	p.LargeBPUActive = false
	return p
}

func newEngine(t *testing.T, managed Managed) *Engine {
	t.Helper()
	e, err := New(pvt.New(16), DefaultThresholds(), managed)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestThresholdsValidate(t *testing.T) {
	if err := DefaultThresholds().Validate(); err != nil {
		t.Fatalf("defaults rejected: %v", err)
	}
	bad := []Thresholds{
		{VPU: -1},
		{BPU: 2},
		{MLC1: 0.001, MLC2: 0.01},
	}
	for i, thr := range bad {
		if err := thr.Validate(); err == nil {
			t.Errorf("bad thresholds %d accepted", i)
		}
	}
}

func TestNewRejectsBadInputs(t *testing.T) {
	if _, err := New(nil, DefaultThresholds(), ManageAll()); err == nil {
		t.Fatal("nil PVT accepted")
	}
	if _, err := New(pvt.New(16), Thresholds{VPU: -1}, ManageAll()); err == nil {
		t.Fatal("bad thresholds accepted")
	}
}

func TestVPUOnlySingleWindowProfile(t *testing.T) {
	e := newEngine(t, Managed{VPU: true})
	// Discovery window: the phase enters profiling mode; its own
	// (phase-edge-contaminated) counters are discarded and a full-power
	// measurement window is requested.
	a := e.HandleMiss(sig(1), fullProfile(0, 0, 0))
	if !a.NewPhase || a.Registered || !a.Profiling {
		t.Fatalf("discovery action = %+v", a)
	}
	if a.Policy != pvt.FullOn {
		t.Fatalf("profiling config = %v, want full power", a.Policy)
	}
	// One valid measurement window suffices for a VPU-only engine; the
	// vector-free phase gates the VPU.
	a = e.HandleMiss(sig(1), fullProfile(0, 0, 0))
	if !a.Registered || a.Profiling {
		t.Fatalf("action = %+v", a)
	}
	if a.Policy.VPUOn {
		t.Fatal("vector-free phase kept the VPU on")
	}
	if !a.Policy.BPUOn || a.Policy.MLC != pvt.MLCAll {
		t.Fatal("unmanaged units were gated")
	}
}

func TestVPUKeptOnWhenCritical(t *testing.T) {
	e := newEngine(t, Managed{VPU: true})
	// 10% SIMD is far above the threshold.
	e.HandleMiss(sig(1), fullProfile(1000, 0, 0)) // discovery
	a := e.HandleMiss(sig(1), fullProfile(1000, 0, 0))
	if !a.Policy.VPUOn {
		t.Fatal("vector-heavy phase gated the VPU")
	}
}

func TestBPUNeedsTwoWindows(t *testing.T) {
	e := newEngine(t, ManageAll())
	// Discovery: request measurement window A (full power, large BPU).
	a := e.HandleMiss(sig(1), fullProfile(0, 0, 10))
	if !a.Profiling || !a.Policy.BPUOn {
		t.Fatalf("discovery should request window A, got %+v", a)
	}
	// Window A consumed (large BPU active, 1% mispredict); window B
	// requested with the small predictor.
	a = e.HandleMiss(sig(1), fullProfile(0, 0, 10))
	if !a.Profiling {
		t.Fatalf("second invocation should keep profiling, got %+v", a)
	}
	if a.Policy.BPUOn {
		t.Fatal("profiling window B must run with the small predictor")
	}
	if !a.Policy.VPUOn || a.Policy.MLC != pvt.MLCAll {
		t.Fatal("profiling window B should keep other units fully powered")
	}
	// Window B: small predictor mispredicts 20% — the large BPU is
	// critical.
	a = e.HandleMiss(sig(1), smallProfile(200))
	if a.Profiling || !a.Registered {
		t.Fatalf("profiling did not complete: %+v", a)
	}
	if !a.Policy.BPUOn {
		t.Fatal("large BPU should stay on when it clearly wins")
	}
}

func TestBPUGatedWhenSmallSuffices(t *testing.T) {
	e := newEngine(t, ManageAll())
	e.HandleMiss(sig(1), fullProfile(0, 0, 10)) // discovery
	e.HandleMiss(sig(1), fullProfile(0, 0, 10)) // window A
	a := e.HandleMiss(sig(1), smallProfile(11)) // nearly identical rates
	if a.Policy.BPUOn {
		t.Fatal("large BPU kept on despite no benefit")
	}
}

func TestMLCThreeStatePolicy(t *testing.T) {
	e := newEngine(t, Managed{MLC: true})
	profileMLC := func(s phase.Signature, hits uint64) Action {
		e.HandleMiss(s, fullProfile(0, hits, 0)) // discovery
		return e.HandleMiss(s, fullProfile(0, hits, 0))
	}
	// High L2 hit ratio: all ways.
	if a := profileMLC(sig(1), 1000); a.Policy.MLC != pvt.MLCAll {
		t.Fatalf("hot MLC policy = %v", a.Policy.MLC)
	}
	// Zero hits: one way.
	if a := profileMLC(sig(2), 0); a.Policy.MLC != pvt.MLCOne {
		t.Fatalf("cold MLC policy = %v", a.Policy.MLC)
	}
	// Middling: half the ways. 10000 insns, 20 hits = 0.002.
	if a := profileMLC(sig(3), 20); a.Policy.MLC != pvt.MLCHalf {
		t.Fatalf("middling MLC policy = %v", a.Policy.MLC)
	}
}

func TestEvictedPhaseReRegisters(t *testing.T) {
	e := newEngine(t, Managed{VPU: true})
	// Characterize 17 phases through a 16-entry PVT: at least one early
	// phase is evicted to the backing store.
	for i := uint32(0); i < 17; i++ {
		e.HandleMiss(sig(i), fullProfile(0, 0, 0)) // discovery
		e.HandleMiss(sig(i), fullProfile(0, 0, 0)) // measurement
	}
	// Find an evicted phase.
	table := pvtOf(e)
	var victim phase.Signature
	found := false
	for i := uint32(0); i < 17; i++ {
		if !table.Contains(sig(i)) {
			victim, found = sig(i), true
			break
		}
	}
	if !found {
		t.Fatal("no phase was evicted from a 16-entry PVT after 17 registrations")
	}
	before := e.Stats()
	a := e.HandleMiss(victim, fullProfile(0, 0, 0))
	if !a.Registered || a.Profiling || a.NewPhase {
		t.Fatalf("capacity miss action = %+v", a)
	}
	after := e.Stats()
	if after.CapacityMisses != before.CapacityMisses+1 {
		t.Fatal("capacity miss not classified")
	}
	if after.PhasesProfiled != before.PhasesProfiled {
		t.Fatal("capacity miss re-profiled the phase")
	}
	if !table.Contains(victim) {
		t.Fatal("capacity miss did not re-register the phase")
	}
}

func pvtOf(e *Engine) *pvt.Table { return e.table }

func TestProfilingWindowMismatchKeepsCollecting(t *testing.T) {
	e := newEngine(t, ManageAll())
	e.HandleMiss(sig(1), fullProfile(0, 0, 0)) // discovery
	// Window arrives with MLC not fully on (e.g. the gating transition
	// lagged): unusable for window A.
	prof := fullProfile(0, 0, 0)
	prof.MLCFullyOn = false
	a := e.HandleMiss(sig(1), prof)
	if !a.Profiling {
		t.Fatalf("action = %+v", a)
	}
	// The requested profiling config must be full power with large BPU
	// (window A still needed).
	if !a.Policy.BPUOn || a.Policy.MLC != pvt.MLCAll || !a.Policy.VPUOn {
		t.Fatalf("profiling policy = %v", a.Policy)
	}
	if e.PoliciesInFlight() != 1 {
		t.Fatalf("in-flight = %d", e.PoliciesInFlight())
	}
	// Now a valid window A, then window B completes the profile.
	a = e.HandleMiss(sig(1), fullProfile(0, 0, 10))
	if !a.Profiling || a.Policy.BPUOn {
		t.Fatalf("after window A: %+v", a)
	}
	a = e.HandleMiss(sig(1), smallProfile(10))
	if a.Profiling {
		t.Fatalf("after window B: %+v", a)
	}
	if e.PoliciesInFlight() != 0 {
		t.Fatal("profile not retired")
	}
}

func TestEmptyWindowIgnored(t *testing.T) {
	e := newEngine(t, Managed{VPU: true})
	a := e.HandleMiss(sig(1), WindowProfile{})
	if !a.Profiling {
		t.Fatal("empty window should not complete a profile")
	}
}

func TestStatsProgression(t *testing.T) {
	e := newEngine(t, ManageAll())
	e.HandleMiss(sig(1), fullProfile(0, 0, 10)) // discovery
	e.HandleMiss(sig(1), fullProfile(0, 0, 10)) // window A
	e.HandleMiss(sig(1), smallProfile(10))      // window B
	s := e.Stats()
	if s.Invocations != 3 || s.CompulsoryMisses != 1 || s.Registrations != 1 {
		t.Fatalf("stats = %+v", s)
	}
	if s.ProfileWindows != 2 {
		t.Fatalf("profile windows = %d", s.ProfileWindows)
	}
	if e.KnownPhases() != 1 {
		t.Fatalf("known phases = %d", e.KnownPhases())
	}
}

func TestThresholdBoundaryBehaviour(t *testing.T) {
	thr := DefaultThresholds()
	e, err := New(pvt.New(16), thr, Managed{VPU: true})
	if err != nil {
		t.Fatal(err)
	}
	profileVPU := func(s phase.Signature, simd uint64) Action {
		e.HandleMiss(s, fullProfile(simd, 0, 0)) // discovery
		return e.HandleMiss(s, fullProfile(simd, 0, 0))
	}
	// Exactly at the threshold: not strictly greater, so gate off.
	atThr := uint64(thr.VPU * 10000)
	if a := profileVPU(sig(1), atThr); a.Policy.VPUOn {
		t.Fatal("criticality equal to threshold should gate off")
	}
	// One instruction above: keep on.
	if a := profileVPU(sig(2), atThr+1); !a.Policy.VPUOn {
		t.Fatal("criticality above threshold should keep on")
	}
}
