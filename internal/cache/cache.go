// Package cache implements the simulated core's cache hierarchy: a private
// L1 data cache and the middle-level cache (MLC) that PowerChop way-gates.
//
// The MLC supports three power states matching the paper's policy encoding
// (all ways / half the ways / a single way). Way-gating shrinks both
// associativity and capacity — the server's 1024KB 8-way MLC becomes 512KB
// 4-way or 128KB 1-way — and deactivated ways lose their contents: dirty
// lines are written back to the next level, clean lines are dropped, and
// the surviving cache must re-warm, exactly the state management the paper
// charges to MLC gating transitions.
package cache

import "fmt"

// Config sizes a single cache.
type Config struct {
	SizeBytes int // total capacity with all ways active
	Ways      int // associativity (power of two)
	LineBytes int // line size (power of two)
}

// Validate reports an error for inconsistent geometry.
func (c Config) Validate() error {
	if c.Ways <= 0 || c.Ways&(c.Ways-1) != 0 {
		return fmt.Errorf("cache: ways = %d is not a positive power of two", c.Ways)
	}
	if c.LineBytes <= 0 || c.LineBytes&(c.LineBytes-1) != 0 {
		return fmt.Errorf("cache: line size = %d is not a positive power of two", c.LineBytes)
	}
	if c.SizeBytes <= 0 || c.SizeBytes%(c.Ways*c.LineBytes) != 0 {
		return fmt.Errorf("cache: size %d is not a multiple of ways*line (%d)", c.SizeBytes, c.Ways*c.LineBytes)
	}
	sets := c.Sets()
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cache: set count %d is not a power of two", sets)
	}
	return nil
}

// Sets returns the number of sets implied by the geometry.
func (c Config) Sets() int { return c.SizeBytes / (c.Ways * c.LineBytes) }

type line struct {
	tag     uint64
	valid   bool
	dirty   bool
	lastUse uint64
}

// Stats counts cache events since construction.
type Stats struct {
	Accesses   uint64
	Hits       uint64
	Misses     uint64
	Writebacks uint64 // dirty lines evicted (by replacement or gating)
}

// HitRate returns hits/accesses, or 0 when idle.
func (s Stats) HitRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Accesses)
}

// Cache is a set-associative, write-back, write-allocate cache with LRU
// replacement and support for way gating.
type Cache struct {
	cfg        Config
	sets       [][]line
	activeWays int
	clock      uint64
	stats      Stats
}

// New builds a cache with all ways active. It panics on invalid geometry;
// use Config.Validate to check first.
func New(cfg Config) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	sets := make([][]line, cfg.Sets())
	backing := make([]line, cfg.Sets()*cfg.Ways)
	for i := range sets {
		sets[i], backing = backing[:cfg.Ways], backing[cfg.Ways:]
	}
	return &Cache{cfg: cfg, sets: sets, activeWays: cfg.Ways}
}

// Config returns the cache geometry.
func (c *Cache) Config() Config { return c.cfg }

// ActiveWays returns the number of currently powered ways.
func (c *Cache) ActiveWays() int { return c.activeWays }

// Stats returns a snapshot of the event counters.
func (c *Cache) Stats() Stats { return c.stats }

// ResetStats zeroes the event counters (contents are untouched).
func (c *Cache) ResetStats() { c.stats = Stats{} }

func (c *Cache) split(addr uint64) (set int, tag uint64) {
	lineAddr := addr / uint64(c.cfg.LineBytes)
	set = int(lineAddr & uint64(len(c.sets)-1))
	tag = lineAddr / uint64(len(c.sets))
	return
}

// lineAddr reconstructs a line's base address from its set and tag.
func (c *Cache) lineAddr(set int, tag uint64) uint64 {
	return (tag*uint64(len(c.sets)) + uint64(set)) * uint64(c.cfg.LineBytes)
}

// Access performs a read (write=false) or write (write=true) of addr.
// It returns whether the access hit; on a miss that evicts a dirty victim,
// wroteBack is true and victimAddr is the victim line's base address,
// which the caller must write back to the next level.
func (c *Cache) Access(addr uint64, write bool) (hit, wroteBack bool, victimAddr uint64) {
	c.clock++
	c.stats.Accesses++
	set, tag := c.split(addr)
	ways := c.sets[set][:c.activeWays]

	for i := range ways {
		if ways[i].valid && ways[i].tag == tag {
			c.stats.Hits++
			ways[i].lastUse = c.clock
			if write {
				ways[i].dirty = true
			}
			return true, false, 0
		}
	}
	c.stats.Misses++

	// Allocate: prefer an invalid way, else evict LRU.
	victim := 0
	for i := range ways {
		if !ways[i].valid {
			victim = i
			break
		}
		if ways[i].lastUse < ways[victim].lastUse {
			victim = i
		}
	}
	if ways[victim].valid && ways[victim].dirty {
		wroteBack = true
		victimAddr = c.lineAddr(set, ways[victim].tag)
		c.stats.Writebacks++
	}
	ways[victim] = line{tag: tag, valid: true, dirty: write, lastUse: c.clock}
	return false, wroteBack, victimAddr
}

// SetActiveWays gates the cache down (or up) to n ways. Downsizing
// invalidates every line in the deactivated ways; dirty lines are counted
// as writebacks and the count of dirty lines flushed is returned so the
// caller can charge writeback time and energy. Upsizing simply powers cold
// ways back on. n must be a power of two in [1, Ways].
func (c *Cache) SetActiveWays(n int) (dirtyFlushed int) {
	if n <= 0 || n > c.cfg.Ways || n&(n-1) != 0 {
		panic(fmt.Sprintf("cache: SetActiveWays(%d) with %d ways", n, c.cfg.Ways))
	}
	if n < c.activeWays {
		for s := range c.sets {
			for w := n; w < c.activeWays; w++ {
				l := &c.sets[s][w]
				if l.valid && l.dirty {
					dirtyFlushed++
					c.stats.Writebacks++
				}
				*l = line{}
			}
		}
	}
	c.activeWays = n
	return dirtyFlushed
}

// FlushAll invalidates the entire cache, returning the number of dirty
// lines flushed. Used when a full power-off (rather than way gating) is
// modelled.
func (c *Cache) FlushAll() (dirtyFlushed int) {
	for s := range c.sets {
		for w := range c.sets[s] {
			l := &c.sets[s][w]
			if l.valid && l.dirty {
				dirtyFlushed++
				c.stats.Writebacks++
			}
			*l = line{}
		}
	}
	return dirtyFlushed
}

// ValidLines counts currently valid lines (diagnostics and tests).
func (c *Cache) ValidLines() int {
	n := 0
	for s := range c.sets {
		for w := range c.sets[s] {
			if c.sets[s][w].valid {
				n++
			}
		}
	}
	return n
}
