// Package cache implements the simulated core's cache hierarchy: a private
// L1 data cache and the middle-level cache (MLC) that PowerChop way-gates.
//
// The MLC supports three power states matching the paper's policy encoding
// (all ways / half the ways / a single way). Way-gating shrinks both
// associativity and capacity — the server's 1024KB 8-way MLC becomes 512KB
// 4-way or 128KB 1-way — and deactivated ways lose their contents: dirty
// lines are written back to the next level, clean lines are dropped, and
// the surviving cache must re-warm, exactly the state management the paper
// charges to MLC gating transitions.
package cache

import (
	"fmt"
	"math/bits"
)

// Config sizes a single cache.
type Config struct {
	SizeBytes int // total capacity with all ways active
	Ways      int // associativity (power of two)
	LineBytes int // line size (power of two)
}

// Validate reports an error for inconsistent geometry.
func (c Config) Validate() error {
	if c.Ways <= 0 || c.Ways&(c.Ways-1) != 0 {
		return fmt.Errorf("cache: ways = %d is not a positive power of two", c.Ways)
	}
	if c.Ways > 8 {
		// The per-set recency stack packs 3-bit way indices into one
		// word; 8 ways also matches the highest associativity of any
		// modelled design.
		return fmt.Errorf("cache: ways = %d exceeds the supported maximum of 8", c.Ways)
	}
	if c.LineBytes <= 0 || c.LineBytes&(c.LineBytes-1) != 0 {
		return fmt.Errorf("cache: line size = %d is not a positive power of two", c.LineBytes)
	}
	if c.SizeBytes <= 0 || c.SizeBytes%(c.Ways*c.LineBytes) != 0 {
		return fmt.Errorf("cache: size %d is not a multiple of ways*line (%d)", c.SizeBytes, c.Ways*c.LineBytes)
	}
	sets := c.Sets()
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cache: set count %d is not a power of two", sets)
	}
	return nil
}

// Sets returns the number of sets implied by the geometry.
func (c Config) Sets() int { return c.SizeBytes / (c.Ways * c.LineBytes) }

// Each line is a single packed word — tag<<lineTagShift | dirty | valid —
// so a whole 8-way set occupies one 64-byte host cache line and the tag
// scan on the per-instruction hot path touches exactly one. Builder
// addresses stay below 2^62, so a tag (address sans line-offset and
// set-index bits) always fits the 62 bits above the flag pair.
//
// Recency does not live with the line: each set has a side word in
// Cache.lru holding an 8-entry × 3-bit stack of way indices ordered
// most- to least-recently used (bits 0..23) plus a per-way valid bitmask
// (bits 24..31). The side array is a few KB even for a megabyte-scale
// modelled cache, so it stays host-cache resident while the line array
// does not.
const (
	lineValid    = 1 << 0
	lineDirty    = 1 << 1
	lineTagShift = 2

	lruStackMask = 0x00ffffff // 8 × 3-bit way indices, MRU at bits 0-2
	lruValidBit  = 24         // valid mask occupies bits 24-31
	// lruInitStack encodes the identity permutation 0,1,...,7 from MRU
	// to LRU. Any permutation would do — invalid ways are filled in
	// index order via the valid mask before the stack is ever consulted,
	// and each fill promotes the way to MRU — but a fixed seed keeps the
	// state reproducible.
	lruInitStack = 0o76543210
)

// lruPromote moves way w to the MRU position of the packed stack,
// preserving the relative order of the other ways and the valid-mask
// byte. w must be present in the stack (it always is: the stack is a
// permutation of the way indices).
func lruPromote(st, w uint32) uint32 {
	stack := st & lruStackMask
	p := uint32(0)
	for ; p < 24; p += 3 {
		if stack>>p&7 == w {
			break
		}
	}
	low := stack & (1<<p - 1)
	high := stack &^ (1<<(p+3) - 1)
	return st&^lruStackMask | high | low<<3 | w
}

// Stats counts cache events since construction.
type Stats struct {
	Accesses   uint64
	Hits       uint64
	Misses     uint64
	Writebacks uint64 // dirty lines evicted (by replacement or gating)
}

// HitRate returns hits/accesses, or 0 when idle.
func (s Stats) HitRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Accesses)
}

// Cache is a set-associative, write-back, write-allocate cache with LRU
// replacement and support for way gating.
//
// Storage is one flat set-major array and the geometry (all powers of
// two, enforced by Validate) is precomputed as shifts and masks: the
// model sits on the simulator's per-instruction hot path, where an extra
// pointer chase or a 64-bit division per access is measurable.
type Cache struct {
	cfg        Config
	lines      []uint64 // sets * ways, set-major: tag<<lineTagShift | flags
	lru        []uint32 // per set: recency stack | valid mask (see above)
	ways       int      // row stride (cfg.Ways)
	activeWays int
	lineShift  uint   // log2(LineBytes)
	tagShift   uint   // log2(set count)
	setMask    uint64 // set count - 1
	clock      uint64

	// Event counters. Only the rare events are counted directly: the
	// clock ticks once per access, so Accesses (clock - resetClock) and
	// Hits (Accesses - Misses) are derived in Stats rather than paying
	// two more counter stores on the hit path.
	resetClock uint64 // clock value at the last ResetStats
	misses     uint64
	writebacks uint64
}

// New builds a cache with all ways active. It panics on invalid geometry;
// use Config.Validate to check first.
func New(cfg Config) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	sets := cfg.Sets()
	c := &Cache{
		cfg:        cfg,
		lines:      make([]uint64, sets*cfg.Ways),
		lru:        make([]uint32, sets),
		ways:       cfg.Ways,
		activeWays: cfg.Ways,
		lineShift:  log2(cfg.LineBytes),
		tagShift:   log2(sets),
		setMask:    uint64(sets - 1),
	}
	for i := range c.lru {
		c.lru[i] = lruInitStack
	}
	return c
}

// log2 of a positive power of two.
func log2(n int) uint {
	s := uint(0)
	for n > 1 {
		n >>= 1
		s++
	}
	return s
}

// Config returns the cache geometry.
func (c *Cache) Config() Config { return c.cfg }

// ActiveWays returns the number of currently powered ways.
func (c *Cache) ActiveWays() int { return c.activeWays }

// Stats returns a snapshot of the event counters.
func (c *Cache) Stats() Stats {
	acc := c.clock - c.resetClock
	return Stats{
		Accesses:   acc,
		Hits:       acc - c.misses,
		Misses:     c.misses,
		Writebacks: c.writebacks,
	}
}

// Clone returns a deep copy of the cache: contents, recency state, gating
// state and event counters. Batched sweeps fork a lane-private MLC from
// the shared never-gated reference the moment the lane first gates.
func (c *Cache) Clone() *Cache {
	d := *c
	d.lines = append([]uint64(nil), c.lines...)
	d.lru = append([]uint32(nil), c.lru...)
	return &d
}

// ResetStats zeroes the event counters (contents are untouched).
func (c *Cache) ResetStats() {
	c.resetClock = c.clock
	c.misses = 0
	c.writebacks = 0
}

func (c *Cache) split(addr uint64) (set int, tag uint64) {
	lineAddr := addr >> c.lineShift
	set = int(lineAddr & c.setMask)
	tag = lineAddr >> c.tagShift
	return
}

// lineAddr reconstructs a line's base address from its set and tag.
func (c *Cache) lineAddr(set int, tag uint64) uint64 {
	return (tag<<c.tagShift | uint64(set)) << c.lineShift
}

// Access performs a read (write=false) or write (write=true) of addr.
// It returns whether the access hit; on a miss that evicts a dirty victim,
// wroteBack is true and victimAddr is the victim line's base address,
// which the caller must write back to the next level.
func (c *Cache) Access(addr uint64, write bool) (hit, wroteBack bool, victimAddr uint64) {
	c.clock++
	set, tag := c.split(addr)
	base := set * c.ways
	ways := c.lines[base : base+c.activeWays]

	// wbit is the dirty bit this access contributes, hoisted so the hit
	// and allocate paths below stay branch-free. want is the packed word
	// a hit must match once its dirty bit is masked off.
	wbit := uint64(0)
	if write {
		wbit = lineDirty
	}
	want := tag<<lineTagShift | lineValid

	for i := range ways {
		if ways[i]&^uint64(lineDirty) == want {
			ways[i] |= wbit
			c.lru[set] = lruPromote(c.lru[set], uint32(i))
			return true, false, 0
		}
	}
	c.misses++

	// Allocate: prefer the lowest-indexed invalid way, else evict the
	// least-recently-used active way (deactivated ways linger in the
	// stack, so the tail scan skips indices beyond the active window).
	st := c.lru[set]
	activeMask := uint32(1)<<uint(c.activeWays) - 1
	victim := uint32(0)
	if inv := ^(st >> lruValidBit) & activeMask; inv != 0 {
		victim = uint32(bits.TrailingZeros32(inv))
	} else {
		for p := uint(21); ; p -= 3 {
			if w := st >> p & 7; w < uint32(c.activeWays) {
				victim = w
				break
			}
		}
	}
	old := ways[victim]
	if old&(lineValid|lineDirty) == lineValid|lineDirty {
		wroteBack = true
		victimAddr = c.lineAddr(set, old>>lineTagShift)
		c.writebacks++
	}
	ways[victim] = want | wbit
	c.lru[set] = lruPromote(st, victim) | 1<<(lruValidBit+victim)
	return false, wroteBack, victimAddr
}

// SetActiveWays gates the cache down (or up) to n ways. Downsizing
// invalidates every line in the deactivated ways; dirty lines are counted
// as writebacks and the count of dirty lines flushed is returned so the
// caller can charge writeback time and energy. Upsizing simply powers cold
// ways back on. n must be a power of two in [1, Ways].
func (c *Cache) SetActiveWays(n int) (dirtyFlushed int) {
	if n <= 0 || n > c.cfg.Ways || n&(n-1) != 0 {
		panic(fmt.Sprintf("cache: SetActiveWays(%d) with %d ways", n, c.cfg.Ways))
	}
	if n < c.activeWays {
		gone := (uint32(1)<<uint(c.activeWays) - 1) &^ (uint32(1)<<uint(n) - 1)
		for s := range c.lru {
			base := s * c.ways
			for w := n; w < c.activeWays; w++ {
				if c.lines[base+w]&(lineValid|lineDirty) == lineValid|lineDirty {
					dirtyFlushed++
					c.writebacks++
				}
				c.lines[base+w] = 0
			}
			c.lru[s] &^= gone << lruValidBit
		}
	}
	c.activeWays = n
	return dirtyFlushed
}

// FlushAll invalidates the entire cache, returning the number of dirty
// lines flushed. Used when a full power-off (rather than way gating) is
// modelled.
func (c *Cache) FlushAll() (dirtyFlushed int) {
	for i := range c.lines {
		if c.lines[i]&(lineValid|lineDirty) == lineValid|lineDirty {
			dirtyFlushed++
			c.writebacks++
		}
		c.lines[i] = 0
	}
	// Validity clears; the recency stacks survive (they must remain
	// permutations of the way indices) and are rebuilt by refills.
	for s := range c.lru {
		c.lru[s] &= lruStackMask
	}
	return dirtyFlushed
}

// ValidLines counts currently valid lines (diagnostics and tests).
func (c *Cache) ValidLines() int {
	n := 0
	for i := range c.lines {
		if c.lines[i]&lineValid != 0 {
			n++
		}
	}
	return n
}
