package cache

import "fmt"

// HierarchyConfig describes the modelled memory system: L1, MLC and the
// flat latencies to each level. L1 hits are fully pipelined (no stall);
// an L1 miss that hits the MLC stalls for MLCLatency cycles; an MLC miss
// stalls for MemLatency cycles.
type HierarchyConfig struct {
	L1         Config
	MLC        Config
	MLCLatency float64 // cycles of stall for an L1-miss/MLC-hit
	MemLatency float64 // cycles of stall for an MLC miss
}

// Validate reports an error for inconsistent configurations.
func (c HierarchyConfig) Validate() error {
	if err := c.L1.Validate(); err != nil {
		return fmt.Errorf("L1: %w", err)
	}
	if err := c.MLC.Validate(); err != nil {
		return fmt.Errorf("MLC: %w", err)
	}
	if c.MLCLatency < 0 || c.MemLatency < c.MLCLatency {
		return fmt.Errorf("cache: latencies MLC=%v mem=%v are inconsistent", c.MLCLatency, c.MemLatency)
	}
	return nil
}

// AccessResult describes one memory operation's journey through the
// hierarchy.
type AccessResult struct {
	StallCycles float64
	L1Hit       bool
	MLCAccessed bool
	MLCHit      bool
	MemAccessed bool
	Writebacks  int // dirty evictions triggered anywhere in the hierarchy
}

// Hierarchy is the two-level cache model in front of main memory.
type Hierarchy struct {
	cfg HierarchyConfig
	l1  *Cache
	mlc *Cache

	memReads  uint64
	memWrites uint64
}

// NewHierarchy builds the hierarchy. It panics on invalid configuration;
// use HierarchyConfig.Validate to check first.
func NewHierarchy(cfg HierarchyConfig) *Hierarchy {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Hierarchy{cfg: cfg, l1: New(cfg.L1), mlc: New(cfg.MLC)}
}

// L1 returns the level-1 cache.
func (h *Hierarchy) L1() *Cache { return h.l1 }

// MLC returns the middle-level cache.
func (h *Hierarchy) MLC() *Cache { return h.mlc }

// Config returns the hierarchy configuration.
func (h *Hierarchy) Config() HierarchyConfig { return h.cfg }

// MemReads and MemWrites expose main-memory traffic counters.
func (h *Hierarchy) MemReads() uint64  { return h.memReads }
func (h *Hierarchy) MemWrites() uint64 { return h.memWrites }

// Access performs one load (write=false) or store (write=true).
func (h *Hierarchy) Access(addr uint64, write bool) AccessResult {
	var r AccessResult
	hit, wb, victim := h.l1.Access(addr, write)
	r.L1Hit = hit
	if wb {
		// The L1 victim's dirty data is written back into the MLC.
		// Writeback bandwidth is off the critical path; we count the
		// event (for energy) without stalling execution.
		r.Writebacks++
		if _, wb2, _ := h.mlc.Access(victim, true); wb2 {
			// A displaced dirty MLC line goes to memory.
			r.Writebacks++
			h.memWrites++
		}
		r.MLCAccessed = true
	}
	if hit {
		return r
	}
	// L1 miss: look up the MLC (it services every L1 miss, whatever its
	// gating state — way gating leaves at least one way powered).
	mlcHit, mlcWB, _ := h.mlc.Access(addr, false)
	r.MLCAccessed = true
	r.MLCHit = mlcHit
	if mlcWB {
		r.Writebacks++
		h.memWrites++
	}
	if mlcHit {
		r.StallCycles = h.cfg.MLCLatency
		return r
	}
	r.MemAccessed = true
	h.memReads++
	r.StallCycles = h.cfg.MemLatency
	return r
}

// ReplayAccess performs one memory operation whose L1 outcome was resolved
// elsewhere. The L1 is a write-back cache in front of the gateable MLC, so
// its hit/writeback/victim sequence for a given address stream is the same
// whatever the MLC's gating state; a batched sweep resolves that sequence
// once on a shared L1 and replays it into each lane's hierarchy here. Only
// the MLC (whose contents diverge under way gating) and the memory-traffic
// counters are touched, in exactly the order Access would touch them, so a
// replayed hierarchy is byte-identical to one driven through Access.
func (h *Hierarchy) ReplayAccess(addr uint64, l1Hit, l1WB bool, victim uint64) AccessResult {
	var r AccessResult
	r.L1Hit = l1Hit
	if l1WB {
		r.Writebacks++
		if _, wb2, _ := h.mlc.Access(victim, true); wb2 {
			r.Writebacks++
			h.memWrites++
		}
		r.MLCAccessed = true
	}
	if l1Hit {
		return r
	}
	mlcHit, mlcWB, _ := h.mlc.Access(addr, false)
	r.MLCAccessed = true
	r.MLCHit = mlcHit
	if mlcWB {
		r.Writebacks++
		h.memWrites++
	}
	if mlcHit {
		r.StallCycles = h.cfg.MLCLatency
		return r
	}
	r.MemAccessed = true
	h.memReads++
	r.StallCycles = h.cfg.MemLatency
	return r
}

// AdoptMLC replaces the hierarchy's MLC with a pre-warmed copy and sets
// the main-memory traffic counters to the values accumulated while the
// MLC was simulated elsewhere. Batched sweeps call it when a lane first
// gates: until then the lane's MLC contents are those of the shared
// never-gated reference, so the lane adopts a clone of that reference and
// continues through ReplayAccess on its own copy. The adopted cache must
// have the configured MLC geometry.
func (h *Hierarchy) AdoptMLC(mlc *Cache, memReads, memWrites uint64) {
	if mlc.Config() != h.cfg.MLC {
		panic(fmt.Sprintf("cache: adopted MLC geometry %+v does not match configured %+v", mlc.Config(), h.cfg.MLC))
	}
	h.mlc = mlc
	h.memReads = memReads
	h.memWrites = memWrites
}

// GateMLC applies a way-gating state to the MLC and returns the number of
// dirty lines flushed (to be charged by the caller as writeback time and
// energy) — the "WB dirty lines, lose clean lines, rewarm" cost of Table I.
func (h *Hierarchy) GateMLC(ways int) (dirtyFlushed int) {
	n := h.mlc.SetActiveWays(ways)
	h.memWrites += uint64(n)
	return n
}
