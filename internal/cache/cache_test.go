package cache

import (
	"testing"
	"testing/quick"

	"powerchop/internal/rng"
)

func smallConfig() Config {
	return Config{SizeBytes: 4096, Ways: 4, LineBytes: 64} // 16 sets
}

func TestConfigValidate(t *testing.T) {
	if err := smallConfig().Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []Config{
		{SizeBytes: 4096, Ways: 3, LineBytes: 64},
		{SizeBytes: 4096, Ways: 4, LineBytes: 48},
		{SizeBytes: 4000, Ways: 4, LineBytes: 64},
		{SizeBytes: 0, Ways: 4, LineBytes: 64},
		{SizeBytes: 4096 * 3, Ways: 4, LineBytes: 64}, // 48 sets: not a power of two
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted: %+v", i, c)
		}
	}
}

func TestSets(t *testing.T) {
	if got := smallConfig().Sets(); got != 16 {
		t.Fatalf("Sets = %d, want 16", got)
	}
}

func TestHitAfterMiss(t *testing.T) {
	c := New(smallConfig())
	if hit, _, _ := c.Access(0x1000, false); hit {
		t.Fatal("cold access hit")
	}
	if hit, _, _ := c.Access(0x1000, false); !hit {
		t.Fatal("second access missed")
	}
	// Same line, different offset.
	if hit, _, _ := c.Access(0x103f, false); !hit {
		t.Fatal("same-line access missed")
	}
	// Next line misses.
	if hit, _, _ := c.Access(0x1040, false); hit {
		t.Fatal("next-line access hit")
	}
}

func TestLRUReplacement(t *testing.T) {
	c := New(smallConfig()) // 4 ways
	// Fill one set with 4 lines: addresses mapping to set 0.
	setStride := uint64(16 * 64) // sets * line
	for i := uint64(0); i < 4; i++ {
		c.Access(i*setStride, false)
	}
	// Touch line 0 to make line 1 the LRU.
	c.Access(0, false)
	// Insert a 5th line; line 1 must be evicted.
	c.Access(4*setStride, false)
	if hit, _, _ := c.Access(0, false); !hit {
		t.Fatal("MRU line was evicted")
	}
	if hit, _, _ := c.Access(1*setStride, false); hit {
		t.Fatal("LRU line was not evicted")
	}
}

func TestDirtyEvictionSignalsWriteback(t *testing.T) {
	c := New(smallConfig())
	setStride := uint64(16 * 64)
	c.Access(0, true) // dirty line
	for i := uint64(1); i < 4; i++ {
		c.Access(i*setStride, false)
	}
	_, wb, victim := c.Access(4*setStride, false) // evicts the dirty line
	if !wb {
		t.Fatal("dirty eviction did not signal writeback")
	}
	if victim != 0 {
		t.Fatalf("victim address = %#x, want 0 (the dirty line's base)", victim)
	}
	if got := c.Stats().Writebacks; got != 1 {
		t.Fatalf("writeback count = %d", got)
	}
}

func TestCleanEvictionNoWriteback(t *testing.T) {
	c := New(smallConfig())
	setStride := uint64(16 * 64)
	for i := uint64(0); i < 5; i++ {
		if _, wb, _ := c.Access(i*setStride, false); wb {
			t.Fatal("clean eviction signalled writeback")
		}
	}
}

func TestWayGatingShrinksCapacity(t *testing.T) {
	c := New(smallConfig())
	setStride := uint64(16 * 64)
	// Warm 4 lines in set 0.
	for i := uint64(0); i < 4; i++ {
		c.Access(i*setStride, false)
	}
	if got := c.ValidLines(); got != 4 {
		t.Fatalf("valid lines = %d", got)
	}
	c.SetActiveWays(1)
	if got := c.ActiveWays(); got != 1 {
		t.Fatalf("ActiveWays = %d", got)
	}
	if got := c.ValidLines(); got != 1 {
		t.Fatalf("after gating, valid lines = %d, want 1", got)
	}
	// With 1 way, two alternating lines always conflict.
	c.ResetStats()
	for i := 0; i < 10; i++ {
		c.Access(0, false)
		c.Access(setStride, false)
	}
	if hr := c.Stats().HitRate(); hr > 0.05 {
		t.Fatalf("1-way alternating hit rate = %v, want ~0", hr)
	}
}

func TestWayGatingFlushesDirtyLines(t *testing.T) {
	c := New(smallConfig())
	setStride := uint64(16 * 64)
	for i := uint64(0); i < 4; i++ {
		c.Access(i*setStride, true) // all dirty
	}
	dirty := c.SetActiveWays(2)
	if dirty != 2 {
		t.Fatalf("dirty flushed = %d, want 2", dirty)
	}
	// Upsizing powers ways back on cold, flushing nothing.
	if dirty := c.SetActiveWays(4); dirty != 0 {
		t.Fatalf("upsize flushed %d lines", dirty)
	}
}

func TestSetActiveWaysPanics(t *testing.T) {
	c := New(smallConfig())
	for _, n := range []int{0, 3, 8, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("SetActiveWays(%d) did not panic", n)
				}
			}()
			c.SetActiveWays(n)
		}()
	}
}

func TestFlushAll(t *testing.T) {
	c := New(smallConfig())
	c.Access(0, true)
	c.Access(64, false)
	if got := c.FlushAll(); got != 1 {
		t.Fatalf("FlushAll dirty = %d, want 1", got)
	}
	if got := c.ValidLines(); got != 0 {
		t.Fatalf("lines after flush = %d", got)
	}
}

func TestWorkingSetFitBehaviour(t *testing.T) {
	// A working set within capacity converges to ~100% hits; one far
	// beyond capacity stays near 0% under random access.
	c := New(Config{SizeBytes: 1 << 16, Ways: 8, LineBytes: 64})
	rnd := rng.New(17)
	fit := uint64(1 << 14) // 16KB in a 64KB cache
	for i := 0; i < 20000; i++ {
		c.Access(rnd.Uint64n(fit), false)
	}
	c.ResetStats()
	for i := 0; i < 20000; i++ {
		c.Access(rnd.Uint64n(fit), false)
	}
	if hr := c.Stats().HitRate(); hr < 0.99 {
		t.Fatalf("fitting working set hit rate = %v", hr)
	}

	big := uint64(1 << 26) // 64MB in a 64KB cache
	c.ResetStats()
	for i := 0; i < 20000; i++ {
		c.Access(rnd.Uint64n(big)+1<<32, false)
	}
	if hr := c.Stats().HitRate(); hr > 0.05 {
		t.Fatalf("oversized working set hit rate = %v", hr)
	}
}

func TestStatsHitRateEmpty(t *testing.T) {
	var s Stats
	if s.HitRate() != 0 {
		t.Fatal("empty stats hit rate should be 0")
	}
}

func TestAccessesInvariant(t *testing.T) {
	f := func(addrs []uint32, writes []bool) bool {
		c := New(smallConfig())
		for i, a := range addrs {
			w := i < len(writes) && writes[i]
			c.Access(uint64(a), w)
		}
		s := c.Stats()
		return s.Accesses == s.Hits+s.Misses && s.Accesses == uint64(len(addrs))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestValidLinesNeverExceedCapacity(t *testing.T) {
	f := func(addrs []uint16) bool {
		c := New(smallConfig())
		c.SetActiveWays(2)
		for _, a := range addrs {
			c.Access(uint64(a), false)
		}
		return c.ValidLines() <= 2*16
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
