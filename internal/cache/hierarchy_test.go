package cache

import (
	"testing"

	"powerchop/internal/rng"
)

func testHierarchyConfig() HierarchyConfig {
	return HierarchyConfig{
		L1:         Config{SizeBytes: 1 << 12, Ways: 4, LineBytes: 64}, // 4KB
		MLC:        Config{SizeBytes: 1 << 16, Ways: 8, LineBytes: 64}, // 64KB
		MLCLatency: 12,
		MemLatency: 180,
	}
}

func TestHierarchyConfigValidate(t *testing.T) {
	if err := testHierarchyConfig().Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	c := testHierarchyConfig()
	c.MemLatency = 1 // below MLC latency
	if err := c.Validate(); err == nil {
		t.Fatal("inconsistent latencies accepted")
	}
	c = testHierarchyConfig()
	c.L1.Ways = 3
	if err := c.Validate(); err == nil {
		t.Fatal("bad L1 accepted")
	}
	c = testHierarchyConfig()
	c.MLC.Ways = 3
	if err := c.Validate(); err == nil {
		t.Fatal("bad MLC accepted")
	}
}

func TestColdAccessGoesToMemory(t *testing.T) {
	h := NewHierarchy(testHierarchyConfig())
	r := h.Access(0x123456, false)
	if r.L1Hit || r.MLCHit || !r.MLCAccessed || !r.MemAccessed {
		t.Fatalf("cold access result = %+v", r)
	}
	if r.StallCycles != 180 {
		t.Fatalf("cold stall = %v", r.StallCycles)
	}
	if h.MemReads() != 1 {
		t.Fatalf("mem reads = %d", h.MemReads())
	}
}

func TestL1HitIsFree(t *testing.T) {
	h := NewHierarchy(testHierarchyConfig())
	h.Access(0x1000, false)
	r := h.Access(0x1000, false)
	if !r.L1Hit || r.StallCycles != 0 || r.MLCAccessed {
		t.Fatalf("L1 hit result = %+v", r)
	}
}

func TestMLCHitAfterL1Eviction(t *testing.T) {
	h := NewHierarchy(testHierarchyConfig())
	// Fill one L1 set (4 ways) past capacity so the first line falls to
	// MLC-only residence.
	l1SetStride := uint64(h.L1().Config().Sets() * 64)
	for i := uint64(0); i < 5; i++ {
		h.Access(i*l1SetStride, false)
	}
	r := h.Access(0, false)
	if r.L1Hit {
		t.Fatal("expected L1 miss after eviction")
	}
	if !r.MLCHit {
		t.Fatal("expected MLC hit for recently evicted line")
	}
	if r.StallCycles != 12 {
		t.Fatalf("MLC stall = %v", r.StallCycles)
	}
}

func TestDirtyL1EvictionWritesToMLC(t *testing.T) {
	h := NewHierarchy(testHierarchyConfig())
	l1SetStride := uint64(h.L1().Config().Sets() * 64)
	h.Access(0, true) // dirty in L1
	var sawWB bool
	for i := uint64(1); i < 6; i++ {
		r := h.Access(i*l1SetStride, false)
		if r.Writebacks > 0 {
			sawWB = true
		}
	}
	if !sawWB {
		t.Fatal("dirty L1 eviction did not produce a writeback")
	}
}

func TestGateMLCFlushesAndShrinks(t *testing.T) {
	h := NewHierarchy(testHierarchyConfig())
	rnd := rng.New(3)
	// Build up dirty MLC state via dirty L1 evictions.
	for i := 0; i < 5000; i++ {
		h.Access(rnd.Uint64n(1<<15), true)
	}
	flushed := h.GateMLC(1)
	if h.MLC().ActiveWays() != 1 {
		t.Fatalf("MLC active ways = %d", h.MLC().ActiveWays())
	}
	if flushed == 0 {
		t.Fatal("gating a dirty MLC flushed nothing")
	}
	if h.MemWrites() == 0 {
		t.Fatal("flushed lines were not counted as memory writes")
	}
}

func TestGatedMLCStillServices(t *testing.T) {
	h := NewHierarchy(testHierarchyConfig())
	h.GateMLC(1)
	h.Access(0x9000, false)
	// Evict from L1 and re-access: the 1-way MLC can still hold the line.
	l1SetStride := uint64(h.L1().Config().Sets() * 64)
	for i := uint64(1); i < 6; i++ {
		h.Access(0x9000+i*l1SetStride, false)
	}
	r := h.Access(0x9000, false)
	if !r.MLCHit {
		t.Fatal("1-way MLC failed to service a resident line")
	}
}

func TestHitRateDropsWhenGated(t *testing.T) {
	cfg := testHierarchyConfig()
	h := NewHierarchy(cfg)
	rnd := rng.New(9)
	ws := uint64(48 << 10) // fits the 64KB MLC, not its 8KB single way
	warm := func() {
		for i := 0; i < 30000; i++ {
			h.Access(rnd.Uint64n(ws), false)
		}
	}
	warm()
	h.MLC().ResetStats()
	warm()
	full := h.MLC().Stats().HitRate()
	h.GateMLC(1)
	warm()
	h.MLC().ResetStats()
	warm()
	gated := h.MLC().Stats().HitRate()
	if full < 0.95 {
		t.Fatalf("full MLC hit rate = %v, want high", full)
	}
	if gated > full-0.3 {
		t.Fatalf("gated hit rate %v not clearly below full %v", gated, full)
	}
}

func TestNewHierarchyPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewHierarchy with invalid config did not panic")
		}
	}()
	NewHierarchy(HierarchyConfig{})
}
