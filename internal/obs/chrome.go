package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// chromeEvent is one entry of the Chrome trace-event format
// (chrome://tracing and Perfetto both load it). Only the fields this
// exporter uses are modelled.
type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"`
	Dur   float64        `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	ID    string         `json:"id,omitempty"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// chromeTrace is the exported JSON object.
type chromeTrace struct {
	TraceEvents     []chromeEvent  `json:"traceEvents"`
	DisplayTimeUnit string         `json:"displayTimeUnit"`
	OtherData       map[string]any `json:"otherData,omitempty"`
}

// chromePID is the process id of the simulation tracks; spanPID holds
// the service-layer span tree (wall-clock timeline, normalized so its
// first span begins at 0).
const (
	chromePID = 1
	spanPID   = 2
)

// WriteChrome exports a single-run, time-ordered event stream as Chrome
// trace-event JSON: one track (thread) per gated unit carrying a
// duration event for every gating state interval (named by the
// interval's power fraction), one track of instant events for PVT hits
// and misses, and one for CDE invocations. Simulated cycles map 1:1 to
// trace microseconds. Events are written in non-decreasing timestamp
// order.
//
// Service-layer span events (KindSpanBegin/KindSpanEnd), when present,
// land in a second process ("service") as async-nestable begin/end
// pairs keyed by span ID, so the request → sweep → benchmark → sim tree
// renders alongside the simulation tracks. Their wall-clock timestamps
// are normalized so the first span begins at 0.
//
// Traces holding several concatenated runs (e.g. `compare -trace`)
// restart their clocks mid-stream; export those one run at a time.
func WriteChrome(w io.Writer, events []Event) error {
	// Track layout: units (sorted) first, then PVT and CDE. Span events
	// run on the wall clock, so they are excluded from the simulated
	// timeline's extent and normalized to their own origin.
	unitSet := map[string]bool{}
	end := 0.0
	spanOrigin := 0.0
	for _, e := range events {
		if IsSpanKind(e.Kind) {
			if spanOrigin == 0 || e.Cycle < spanOrigin {
				spanOrigin = e.Cycle
			}
			continue
		}
		if e.Kind == KindGate && e.Unit != "" {
			unitSet[e.Unit] = true
		}
		if e.Cycle > end {
			end = e.Cycle
		}
	}
	units := make([]string, 0, len(unitSet))
	for u := range unitSet {
		units = append(units, u)
	}
	sort.Strings(units)
	tid := make(map[string]int, len(units))
	var out []chromeEvent
	meta := func(id int, name string) {
		out = append(out, chromeEvent{
			Name: "thread_name", Phase: "M", PID: chromePID, TID: id,
			Args: map[string]any{"name": name},
		})
	}
	out = append(out, chromeEvent{
		Name: "process_name", Phase: "M", PID: chromePID,
		Args: map[string]any{"name": "powerchop"},
	})
	for i, u := range units {
		tid[u] = i + 1
		meta(i+1, "gate:"+u)
	}
	pvtTID := len(units) + 1
	cdeTID := len(units) + 2
	meta(pvtTID, "pvt")
	meta(cdeTID, "cde")
	if spanOrigin != 0 {
		out = append(out, chromeEvent{
			Name: "process_name", Phase: "M", PID: spanPID,
			Args: map[string]any{"name": "service"},
		}, chromeEvent{
			Name: "thread_name", Phase: "M", PID: spanPID, TID: 1,
			Args: map[string]any{"name": "spans"},
		})
	}

	// Per-unit gating intervals: every unit boots at full power; each
	// gate event closes the current interval and opens the next.
	type state struct {
		since float64
		frac  float64
	}
	cur := make(map[string]state, len(units))
	for _, u := range units {
		cur[u] = state{since: 0, frac: 1}
	}
	interval := func(u string, s state, until float64) {
		if until < s.since {
			until = s.since
		}
		out = append(out, chromeEvent{
			Name:  fmt.Sprintf("p=%.2f", s.frac),
			Phase: "X", TS: s.since, Dur: until - s.since,
			PID: chromePID, TID: tid[u],
			Args: map[string]any{"unit": u, "power_frac": s.frac},
		})
	}
	for _, e := range events {
		switch e.Kind {
		case KindGate:
			s, ok := cur[e.Unit]
			if !ok {
				continue
			}
			interval(e.Unit, s, e.Cycle)
			cur[e.Unit] = state{since: e.Cycle, frac: e.Next}
		case KindPVTHit, KindPVTMiss:
			name := "hit"
			if e.Kind == KindPVTMiss {
				name = "miss"
			}
			out = append(out, chromeEvent{
				Name: name, Phase: "i", TS: e.Cycle, Scope: "t",
				PID: chromePID, TID: pvtTID,
				Args: map[string]any{"sig": e.SigString(), "occupancy": e.Count},
			})
		case KindCDEInvoke:
			out = append(out, chromeEvent{
				Name: "invoke", Phase: "i", TS: e.Cycle, Scope: "t",
				PID: chromePID, TID: cdeTID,
				Args: map[string]any{"sig": e.SigString(), "cost_cycles": e.Value},
			})
		case KindSpanBegin:
			out = append(out, chromeEvent{
				Name: e.Unit, Cat: "span", Phase: "b",
				TS: e.Cycle - spanOrigin, PID: spanPID, TID: 1,
				ID: fmt.Sprintf("%d", e.Count),
				Args: map[string]any{
					"span_id": e.Count, "parent": e.Value, "attrs": e.Detail,
				},
			})
		case KindSpanEnd:
			out = append(out, chromeEvent{
				Name: e.Unit, Cat: "span", Phase: "e",
				TS: e.Cycle - spanOrigin, PID: spanPID, TID: 1,
				ID: fmt.Sprintf("%d", e.Count),
				Args: map[string]any{
					"span_id": e.Count, "duration_us": e.Value, "outcome": e.Detail,
				},
			})
		}
	}
	// Close the final interval of every unit at the trace's end.
	for _, u := range units {
		interval(u, cur[u], end)
	}

	// Viewers tolerate any order, but a monotonic stream is both easier
	// to diff and required by our round-trip tests. Stable keeps equal
	// timestamps (metadata, simultaneous boundary events) in track order.
	sort.SliceStable(out, func(i, j int) bool { return out[i].TS < out[j].TS })

	enc := json.NewEncoder(w)
	return enc.Encode(chromeTrace{
		TraceEvents:     out,
		DisplayTimeUnit: "ms",
		OtherData:       map[string]any{"generator": "powerchop", "time_unit": "1 cycle = 1us"},
	})
}
