package obs

import (
	"fmt"
	"sort"

	"powerchop/internal/textplot"
)

// TimelineRow is one execution window of a trace: the window's identity
// and contents (from its window-close event) plus the phase-boundary
// machinery that ran at its close — the PVT lookup outcome, CDE
// invocations, gating transitions — and each unit's power fraction once
// the boundary settled.
type TimelineRow struct {
	// Window is the window's ordinal (1-based).
	Window uint64 `json:"window"`
	// EndCycle is the simulated cycle at the window's close.
	EndCycle float64 `json:"end_cycle"`
	// Sig is the rendered phase signature ("<t1a,t2b>").
	Sig string `json:"sig"`
	// Insns is the window's translated dynamic instruction count.
	Insns uint64 `json:"insns"`
	// Lookup is the PVT outcome at the boundary: "hit", "miss" or "-"
	// (no lookup observed, e.g. a non-PowerChop manager).
	Lookup string `json:"lookup"`
	// Policy is the policy vector applied at the boundary ("0110"), or
	// "-" when none was observed.
	Policy string `json:"policy"`
	// CDEInvokes counts CDE invocations at the boundary.
	CDEInvokes uint64 `json:"cde_invokes"`
	// Gates counts gating transitions at the boundary and Stall their
	// total stall-cycle cost.
	Gates uint64  `json:"gates"`
	Stall float64 `json:"stall"`
	// Fracs holds each unit's power fraction after the boundary, aligned
	// with Timeline.Units. Units never seen gating yet report 1 (full
	// power, the simulator's boot state).
	Fracs []float64 `json:"fracs"`
}

// Timeline is a per-window replay of a single-run trace: one row per
// execution window, in close order, tracking unit power state across the
// run. Built by NewTimeline from a time-ordered event stream.
type Timeline struct {
	// Units lists the gated units observed, sorted; every row's Fracs
	// aligns with it.
	Units []string      `json:"units"`
	Rows  []TimelineRow `json:"rows"`
}

// NewTimeline replays a time-ordered event stream (one run, as written
// by a JSONL trace) into a per-window timeline. Events between two
// window closes — the boundary machinery runs right after the close —
// are attributed to the earlier window.
func NewTimeline(events []Event) *Timeline {
	// Discover the gated units first so every row's Fracs has one slot
	// per unit regardless of when the unit first switches.
	unitSet := map[string]bool{}
	for _, e := range events {
		if e.Kind == KindGate && e.Unit != "" {
			unitSet[e.Unit] = true
		}
	}
	units := make([]string, 0, len(unitSet))
	for u := range unitSet {
		units = append(units, u)
	}
	sort.Strings(units)
	slot := make(map[string]int, len(units))
	for i, u := range units {
		slot[u] = i
	}

	tl := &Timeline{Units: units}
	// All units boot at full power.
	fracs := make([]float64, len(units))
	for i := range fracs {
		fracs[i] = 1
	}
	var cur *TimelineRow
	flush := func() {
		if cur == nil {
			return
		}
		cur.Fracs = append([]float64(nil), fracs...)
		tl.Rows = append(tl.Rows, *cur)
		cur = nil
	}
	for _, e := range events {
		switch e.Kind {
		case KindWindowClose:
			flush()
			cur = &TimelineRow{
				Window:   e.Window,
				EndCycle: e.Cycle,
				Sig:      e.SigString(),
				Insns:    e.Count,
				Lookup:   "-",
				Policy:   "-",
			}
		case KindPVTHit:
			if cur != nil {
				cur.Lookup = "hit"
				cur.Policy = e.PolicyString()
			}
		case KindPVTMiss:
			if cur != nil {
				cur.Lookup = "miss"
			}
		case KindCDEInvoke:
			if cur != nil {
				cur.CDEInvokes++
			}
		case KindCDERegister:
			if cur != nil {
				cur.Policy = e.PolicyString()
			}
		case KindGate:
			if i, ok := slot[e.Unit]; ok {
				fracs[i] = e.Next
			}
			if cur != nil {
				cur.Gates++
				cur.Stall += e.Stall
			}
		}
	}
	flush()
	return tl
}

// Render formats the timeline as a text table. last bounds the output to
// the most recent rows (<= 0 shows every window); skipped leading rows
// are counted in a heading note.
func (tl *Timeline) Render(last int) string {
	rows := tl.Rows
	skipped := 0
	if last > 0 && len(rows) > last {
		skipped = len(rows) - last
		rows = rows[skipped:]
	}
	header := []string{"win", "cycle", "phase", "insns", "lookup", "policy", "cde", "gates", "stall"}
	for _, u := range tl.Units {
		header = append(header, u)
	}
	table := make([][]string, 0, len(rows))
	for _, r := range rows {
		cells := []string{
			fmt.Sprintf("%d", r.Window),
			fmt.Sprintf("%.6g", r.EndCycle),
			r.Sig,
			fmt.Sprintf("%d", r.Insns),
			r.Lookup,
			r.Policy,
			fmt.Sprintf("%d", r.CDEInvokes),
			fmt.Sprintf("%d", r.Gates),
			fmt.Sprintf("%.4g", r.Stall),
		}
		for _, f := range r.Fracs {
			cells = append(cells, fmt.Sprintf("%.2f", f))
		}
		table = append(table, cells)
	}
	out := fmt.Sprintf("timeline: %d windows, %d gated units\n", len(tl.Rows), len(tl.Units))
	if skipped > 0 {
		out += fmt.Sprintf("(%d earlier windows skipped)\n", skipped)
	}
	return out + textplot.Table(header, table)
}
