package obs

import (
	"fmt"
	"sort"

	"powerchop/internal/textplot"
)

// PhaseRow aggregates a trace's events for one phase signature.
type PhaseRow struct {
	// Sig is the rendered signature ("<t1a,t2b>").
	Sig string
	// Windows is how many execution windows closed with this signature.
	Windows uint64
	// Insns is the total translated dynamic instructions of those windows.
	Insns uint64
	// PVTHits / PVTMisses count table lookups for the signature.
	PVTHits   uint64
	PVTMisses uint64
	// CDEInvokes counts software invocations attributed to the signature.
	CDEInvokes uint64
	// Registrations counts CDE policy registrations for the signature.
	Registrations uint64
	// Evictions counts PVT evictions of the signature.
	Evictions uint64
	// LastPolicy is the most recent policy vector seen for the signature
	// (from a hit or registration), rendered by PolicyString.
	LastPolicy uint8
	// HasPolicy reports whether LastPolicy was ever observed.
	HasPolicy bool
}

// TraceSummary is a whole trace digested into per-phase rows plus global
// tallies.
type TraceSummary struct {
	Events  uint64
	Windows uint64
	// EndCycle is the largest cycle stamp observed.
	EndCycle float64
	// Translations counts region-cache installs.
	Translations uint64
	// GateSwitches counts gating transitions per unit.
	GateSwitches map[string]uint64
	// GateStalls is the total stall cycles charged on transitions.
	GateStalls float64
	// CDECycles is the total CDE invocation cost.
	CDECycles float64
	// Phases holds one row per distinct signature, most windows first.
	Phases []PhaseRow
}

// sigKey is a comparable aggregation key for signatures.
type sigKey struct {
	ids [MaxSigIDs]uint32
	n   uint8
}

// Summarize replays an event stream into a per-phase summary.
func Summarize(events []Event) *TraceSummary {
	s := &TraceSummary{GateSwitches: make(map[string]uint64)}
	phases := make(map[sigKey]*PhaseRow)
	row := func(e Event) *PhaseRow {
		k := sigKey{ids: e.SigIDs, n: e.SigN}
		r := phases[k]
		if r == nil {
			r = &PhaseRow{Sig: e.SigString()}
			phases[k] = r
		}
		return r
	}
	for _, e := range events {
		s.Events++
		if e.Cycle > s.EndCycle {
			s.EndCycle = e.Cycle
		}
		switch e.Kind {
		case KindWindowClose:
			s.Windows++
			if e.SigN > 0 {
				r := row(e)
				r.Windows++
				r.Insns += e.Count
			}
		case KindPVTHit:
			r := row(e)
			r.PVTHits++
			r.LastPolicy, r.HasPolicy = e.Policy, true
		case KindPVTMiss:
			row(e).PVTMisses++
		case KindPVTEvict:
			row(e).Evictions++
		case KindCDEInvoke:
			row(e).CDEInvokes++
			s.CDECycles += e.Value
		case KindCDERegister:
			r := row(e)
			r.Registrations++
			r.LastPolicy, r.HasPolicy = e.Policy, true
		case KindGate:
			s.GateSwitches[e.Unit]++
			s.GateStalls += e.Stall
		case KindTranslate:
			s.Translations++
		}
	}
	for _, r := range phases {
		s.Phases = append(s.Phases, *r)
	}
	sort.Slice(s.Phases, func(i, j int) bool {
		if s.Phases[i].Windows != s.Phases[j].Windows {
			return s.Phases[i].Windows > s.Phases[j].Windows
		}
		return s.Phases[i].Sig < s.Phases[j].Sig
	})
	return s
}

// Render formats the summary. maxPhases bounds the per-phase table (<= 0
// shows every phase); dropped rows are counted in a trailing note.
func (s *TraceSummary) Render(maxPhases int) string {
	units := make([]string, 0, len(s.GateSwitches))
	for u := range s.GateSwitches {
		units = append(units, u)
	}
	sort.Strings(units)
	gates := ""
	for _, u := range units {
		gates += fmt.Sprintf(" %s=%d", u, s.GateSwitches[u])
	}
	out := fmt.Sprintf("trace: %d events, %d windows, %d phases, %d translations, end cycle %.4g\n",
		s.Events, s.Windows, len(s.Phases), s.Translations, s.EndCycle)
	out += fmt.Sprintf("gating: transitions%s, stall cycles %.4g; CDE cycles %.4g\n\n",
		gates, s.GateStalls, s.CDECycles)

	rows := s.Phases
	dropped := 0
	if maxPhases > 0 && len(rows) > maxPhases {
		dropped = len(rows) - maxPhases
		rows = rows[:maxPhases]
	}
	table := make([][]string, 0, len(rows))
	for _, r := range rows {
		policy := "-"
		if r.HasPolicy {
			policy = Event{Policy: r.LastPolicy}.PolicyString()
		}
		hitRate := 0.0
		if lookups := r.PVTHits + r.PVTMisses; lookups > 0 {
			hitRate = float64(r.PVTHits) / float64(lookups)
		}
		table = append(table, []string{
			r.Sig,
			fmt.Sprintf("%d", r.Windows),
			fmt.Sprintf("%d", r.Insns),
			fmt.Sprintf("%d", r.PVTHits),
			fmt.Sprintf("%d", r.PVTMisses),
			fmt.Sprintf("%.3f", hitRate),
			fmt.Sprintf("%d", r.CDEInvokes),
			fmt.Sprintf("%d", r.Registrations),
			fmt.Sprintf("%d", r.Evictions),
			policy,
		})
	}
	out += textplot.Table(
		[]string{"phase", "windows", "insns", "hits", "misses", "hit-rate", "cde", "reg", "evict", "policy"},
		table)
	if dropped > 0 {
		out += fmt.Sprintf("(+%d more phases)\n", dropped)
	}
	return out
}
