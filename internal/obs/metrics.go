package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"powerchop/internal/textplot"
)

// Counter is a monotonically increasing named count. Safe for concurrent
// use.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a settable instantaneous value (an occupancy, a level, a
// temperature — anything that can go down as well as up). Safe for
// concurrent use.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores the gauge's current value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the gauge by d (negative to decrease).
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Value returns the gauge's current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram accumulates observations into fixed buckets. Bucket i counts
// observations <= Bounds[i]; one extra bucket counts the overflow. Safe
// for concurrent use.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64
	counts []uint64
	count  uint64
	sum    float64
	min    float64
	max    float64
}

// NewHistogram builds a histogram with the given ascending upper bounds.
func NewHistogram(bounds ...float64) *Histogram {
	if len(bounds) == 0 {
		panic("obs: histogram needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram bounds not ascending at %v", bounds[i]))
		}
	}
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]uint64, len(bounds)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i]++
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// CheckName validates a registry metric name. Names follow the dotted
// style of this package ("events.pvt-hit") but must remain mechanically
// convertible to legal Prometheus exposition names (see PromName): the
// first character must be a letter or '_', the rest letters, digits or
// one of "_:.-". An illegal name is reported here, at registration, so
// it can never surface later as an unscrapable /metrics page.
func CheckName(name string) error {
	if name == "" {
		return fmt.Errorf("obs: empty metric name")
	}
	for i, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		case i > 0 && (c >= '0' && c <= '9' || c == ':' || c == '.' || c == '-'):
		default:
			return fmt.Errorf("obs: metric name %q: illegal character %q at %d (want [a-zA-Z_][a-zA-Z0-9_:.-]*)", name, c, i)
		}
	}
	return nil
}

// PromName converts a registry name to its Prometheus exposition form:
// '.' and '-' become '_'. The mapping is total over names accepted by
// CheckName.
func PromName(name string) string {
	return strings.Map(func(c rune) rune {
		if c == '.' || c == '-' {
			return '_'
		}
		return c
	}, name)
}

// Registry is a namespace of counters and histograms. Names are
// lazily created on first use; looking a name up twice returns the same
// instrument. Safe for concurrent use.
//
// Registration is where names fail fast: a name rejected by CheckName
// panics, as does a name whose Prometheus form (PromName) collides with
// a different already-registered name — both would otherwise surface
// only later, as an unscrapable or ambiguous /metrics exposition.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	gaugeFns map[string]func() float64
	hists    map[string]*Histogram
	byProm   map[string]string // PromName(name) → name, across all maps
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		gaugeFns: make(map[string]func() float64),
		hists:    make(map[string]*Histogram),
		byProm:   make(map[string]string),
	}
}

// register validates a new instrument's name (under r.mu).
func (r *Registry) register(name string) {
	if err := CheckName(name); err != nil {
		panic(err.Error())
	}
	prom := PromName(name)
	if prior, ok := r.byProm[prom]; ok {
		panic(fmt.Sprintf("obs: metric name %q collides with %q (both expose as %q)", name, prior, prom))
	}
	r.byProm[prom] = name
}

// Counter returns the named counter, creating it on first use. An
// invalid or colliding name panics (see Registry).
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		r.register(name)
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. An invalid
// or colliding name panics (see Registry).
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		r.register(name)
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// GaugeFunc registers a gauge whose value is sampled by calling fn at
// every Snapshot — the natural shape for values the runtime already
// tracks (goroutine counts, heap sizes). Registering the same name again
// replaces the function; fn must be safe to call from any goroutine. An
// invalid or colliding name panics (see Registry).
func (r *Registry) GaugeFunc(name string, fn func() float64) {
	if fn == nil {
		panic("obs: GaugeFunc needs a non-nil function")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.gaugeFns[name]; !ok {
		r.register(name)
	}
	r.gaugeFns[name] = fn
}

// Histogram returns the named histogram, creating it with the given
// bounds on first use. Later calls ignore bounds and return the existing
// histogram. An invalid or colliding name panics (see Registry).
func (r *Registry) Histogram(name string, bounds ...float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		r.register(name)
		h = NewHistogram(bounds...)
		r.hists[name] = h
	}
	return h
}

// CounterSnap is one counter's snapshot.
type CounterSnap struct {
	Name  string
	Value uint64
}

// GaugeSnap is one gauge's snapshot.
type GaugeSnap struct {
	Name  string
	Value float64
}

// HistogramSnap is one histogram's snapshot.
type HistogramSnap struct {
	Name   string
	Count  uint64
	Sum    float64
	Min    float64
	Max    float64
	Bounds []float64 // bucket upper bounds
	Counts []uint64  // len(Bounds)+1; last is overflow
}

// Mean returns the average observation, or 0 when empty.
func (h HistogramSnap) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return h.Sum / float64(h.Count)
}

// Quantile estimates the q-th quantile (q in [0,1]) by linear
// interpolation within the bucket that contains the target rank. The
// first bucket interpolates from the observed minimum, the overflow
// bucket from its lower bound to the observed maximum. Returns 0 when
// the histogram is empty.
func (h HistogramSnap) Quantile(q float64) float64 {
	if h.Count == 0 {
		return 0
	}
	if q <= 0 {
		return h.Min
	}
	if q >= 1 {
		return h.Max
	}
	rank := q * float64(h.Count)
	var seen float64
	for i, c := range h.Counts {
		if c == 0 {
			continue
		}
		if seen+float64(c) < rank {
			seen += float64(c)
			continue
		}
		// The target rank falls in bucket i spanning (lo, hi].
		lo := h.Min
		if i > 0 {
			lo = h.Bounds[i-1]
		}
		hi := h.Max
		if i < len(h.Bounds) && h.Bounds[i] < hi {
			hi = h.Bounds[i]
		}
		if lo < h.Min {
			lo = h.Min
		}
		if hi < lo {
			hi = lo
		}
		frac := (rank - seen) / float64(c)
		return lo + (hi-lo)*frac
	}
	return h.Max
}

// Snapshot is a point-in-time copy of a registry, ordered by name.
type Snapshot struct {
	Counters   []CounterSnap
	Gauges     []GaugeSnap
	Histograms []HistogramSnap
}

// Snapshot copies the registry's current state. Function gauges are
// sampled here (outside the registry lock order they were registered
// under, but under r.mu — registered functions must not call back into
// the registry).
func (r *Registry) Snapshot() *Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := &Snapshot{}
	for name, c := range r.counters {
		s.Counters = append(s.Counters, CounterSnap{Name: name, Value: c.Value()})
	}
	for name, g := range r.gauges {
		s.Gauges = append(s.Gauges, GaugeSnap{Name: name, Value: g.Value()})
	}
	for name, fn := range r.gaugeFns {
		s.Gauges = append(s.Gauges, GaugeSnap{Name: name, Value: fn()})
	}
	for name, h := range r.hists {
		h.mu.Lock()
		s.Histograms = append(s.Histograms, HistogramSnap{
			Name:   name,
			Count:  h.count,
			Sum:    h.sum,
			Min:    h.min,
			Max:    h.max,
			Bounds: append([]float64(nil), h.bounds...),
			Counts: append([]uint64(nil), h.counts...),
		})
		h.mu.Unlock()
	}
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	sort.Slice(s.Gauges, func(i, j int) bool { return s.Gauges[i].Name < s.Gauges[j].Name })
	sort.Slice(s.Histograms, func(i, j int) bool { return s.Histograms[i].Name < s.Histograms[j].Name })
	return s
}

// Counter returns the snapshotted value of the named counter (0 when
// absent).
func (s *Snapshot) Counter(name string) uint64 {
	for _, c := range s.Counters {
		if c.Name == name {
			return c.Value
		}
	}
	return 0
}

// Gauge returns the snapshotted value of the named gauge and whether it
// was present.
func (s *Snapshot) Gauge(name string) (float64, bool) {
	for _, g := range s.Gauges {
		if g.Name == name {
			return g.Value, true
		}
	}
	return 0, false
}

// Histogram returns the snapshotted histogram by name.
func (s *Snapshot) Histogram(name string) (HistogramSnap, bool) {
	for _, h := range s.Histograms {
		if h.Name == name {
			return h, true
		}
	}
	return HistogramSnap{}, false
}

// Render formats the snapshot as a human-readable summary: a counter
// table and a histogram table with a sparkline of each bucket
// distribution.
func (s *Snapshot) Render() string {
	out := ""
	if len(s.Counters) > 0 {
		rows := make([][]string, 0, len(s.Counters))
		for _, c := range s.Counters {
			rows = append(rows, []string{c.Name, fmt.Sprintf("%d", c.Value)})
		}
		out += "counters:\n" + textplot.Table([]string{"name", "value"}, rows)
	}
	if len(s.Gauges) > 0 {
		rows := make([][]string, 0, len(s.Gauges))
		for _, g := range s.Gauges {
			rows = append(rows, []string{g.Name, fmt.Sprintf("%.6g", g.Value)})
		}
		if out != "" {
			out += "\n"
		}
		out += "gauges:\n" + textplot.Table([]string{"name", "value"}, rows)
	}
	if len(s.Histograms) > 0 {
		rows := make([][]string, 0, len(s.Histograms))
		for _, h := range s.Histograms {
			dist := make([]float64, len(h.Counts))
			for i, c := range h.Counts {
				dist[i] = float64(c)
			}
			rows = append(rows, []string{
				h.Name,
				fmt.Sprintf("%d", h.Count),
				fmt.Sprintf("%.4g", h.Mean()),
				fmt.Sprintf("%.4g", h.Min),
				fmt.Sprintf("%.4g", h.Max),
				textplot.Spark(dist),
			})
		}
		if out != "" {
			out += "\n"
		}
		out += "histograms:\n" + textplot.Table([]string{"name", "count", "mean", "min", "max", "buckets"}, rows)
	}
	if out == "" {
		out = "(no metrics recorded)\n"
	}
	return out
}

// Collector is a Tracer that distills the event stream into the standard
// PowerChop metrics: per-kind event counts, window-length and
// PVT-occupancy histograms, gating residency (cycles between a unit's
// transitions), transition stalls and CDE invocation latency. The
// simulator attaches one per run when metrics are requested and
// snapshots it into the Result.
type Collector struct {
	reg     *Registry
	byKind  [numKinds]*Counter
	total   *Counter
	winLen  *Histogram
	pvtOcc  *Histogram
	stalls  *Histogram
	cdeCost *Histogram

	mu       sync.Mutex
	lastGate map[string]float64 // unit → cycle of previous transition
}

// NewCollector returns an empty collector.
func NewCollector() *Collector {
	reg := NewRegistry()
	c := &Collector{
		reg:   reg,
		total: reg.Counter("events.total"),
		// Window length in translated guest instructions.
		winLen: reg.Histogram("window.insns", 1e3, 2e3, 5e3, 1e4, 2e4, 5e4, 1e5, 2e5),
		// PVT occupancy observed at each lookup (paper table: 16 entries).
		pvtOcc: reg.Histogram("pvt.occupancy", 1, 2, 4, 8, 12, 16),
		// Stall cycles charged per gating transition.
		stalls: reg.Histogram("gate.stall.cycles", 10, 20, 50, 100, 200, 500, 1000, 5000),
		// CDE invocation cost in cycles.
		cdeCost:  reg.Histogram("cde.invoke.cycles", 1e3, 2e3, 5e3, 1e4, 2e4, 5e4),
		lastGate: make(map[string]float64),
	}
	for k := Kind(0); k < numKinds; k++ {
		c.byKind[k] = reg.Counter("events." + k.String())
	}
	return c
}

// Registry exposes the collector's registry so callers can add their own
// instruments alongside the standard set.
func (c *Collector) Registry() *Registry { return c.reg }

// Emit implements Tracer.
func (c *Collector) Emit(e Event) {
	c.total.Inc()
	if e.Kind < numKinds {
		c.byKind[e.Kind].Inc()
	}
	switch e.Kind {
	case KindWindowClose:
		c.winLen.Observe(float64(e.Count))
	case KindPVTHit, KindPVTMiss:
		c.pvtOcc.Observe(float64(e.Count))
	case KindCDEInvoke:
		c.cdeCost.Observe(e.Value)
	case KindGate:
		c.stalls.Observe(e.Stall)
		c.mu.Lock()
		last, seen := c.lastGate[e.Unit]
		c.lastGate[e.Unit] = e.Cycle
		c.mu.Unlock()
		if seen {
			// Residency: how long the unit held its previous state.
			c.reg.Histogram("gate.residency."+e.Unit,
				1e3, 1e4, 1e5, 1e6, 1e7, 1e8).Observe(e.Cycle - last)
		}
	}
}

// Snapshot returns the collector's current metrics.
func (c *Collector) Snapshot() *Snapshot { return c.reg.Snapshot() }
