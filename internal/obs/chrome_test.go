package obs

import (
	"bytes"
	"encoding/json"
	"testing"
)

// TestWriteChromeRoundTrip exports a synthetic trace and re-parses it,
// asserting the output is well-formed trace-event JSON: every entry has
// a phase and name, samples sit on declared tracks, and timestamps are
// monotonically non-decreasing.
func TestWriteChromeRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChrome(&buf, timelineEvents()); err != nil {
		t.Fatal(err)
	}
	var trace struct {
		TraceEvents []struct {
			Name  string         `json:"name"`
			Phase string         `json:"ph"`
			TS    *float64       `json:"ts"`
			Dur   float64        `json:"dur"`
			PID   int            `json:"pid"`
			TID   int            `json:"tid"`
			Scope string         `json:"s"`
			Args  map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &trace); err != nil {
		t.Fatalf("exported JSON does not parse: %v", err)
	}
	if trace.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", trace.DisplayTimeUnit)
	}
	if len(trace.TraceEvents) == 0 {
		t.Fatal("no trace events exported")
	}

	last := -1.0
	counts := map[string]int{}
	var durSum float64
	for i, e := range trace.TraceEvents {
		if e.Name == "" || e.Phase == "" || e.TS == nil {
			t.Fatalf("event %d missing required fields: %+v", i, e)
		}
		switch e.Phase {
		case "M", "X", "i":
		default:
			t.Fatalf("event %d: unexpected phase %q", i, e.Phase)
		}
		if e.Phase == "i" && e.Scope != "t" {
			t.Errorf("instant event %d missing thread scope: %+v", i, e)
		}
		if *e.TS < last {
			t.Fatalf("event %d: timestamp %v < previous %v (not monotonic)", i, *e.TS, last)
		}
		last = *e.TS
		counts[e.Phase]++
		if e.Phase == "X" {
			if e.Dur < 0 {
				t.Errorf("event %d: negative duration %v", i, e.Dur)
			}
			durSum += e.Dur
		}
	}
	// One process_name + three thread_name records (VPU, pvt, cde).
	if counts["M"] != 4 {
		t.Errorf("metadata events = %d, want 4", counts["M"])
	}
	// VPU: full-power, gated, full-power again = 3 intervals.
	if counts["X"] != 3 {
		t.Errorf("gate intervals = %d, want 3", counts["X"])
	}
	// 1 pvt miss + 1 pvt hit + 1 cde invoke.
	if counts["i"] != 3 {
		t.Errorf("instant events = %d, want 3", counts["i"])
	}
	// The VPU intervals tile the whole [0, end] range exactly.
	if durSum != 2500 {
		t.Errorf("summed interval duration = %v, want 2500", durSum)
	}
}

// TestWriteChromeEmpty checks an empty trace still produces a loadable
// document (just process metadata).
func TestWriteChromeEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChrome(&buf, nil); err != nil {
		t.Fatal(err)
	}
	var trace map[string]any
	if err := json.Unmarshal(buf.Bytes(), &trace); err != nil {
		t.Fatal(err)
	}
	if _, ok := trace["traceEvents"]; !ok {
		t.Fatal("missing traceEvents")
	}
}

// TestWriteChromeSpans checks service-layer span events export as
// async-nestable begin/end pairs in their own process, with wall-clock
// timestamps normalized to the first span's begin, and that the span
// stream never perturbs the simulated timeline's extent.
func TestWriteChromeSpans(t *testing.T) {
	events := append(timelineEvents(),
		Event{Kind: KindSpanBegin, Cycle: 1e15 + 100, Unit: "request", Detail: "req=abc", Count: 7},
		Event{Kind: KindSpanBegin, Cycle: 1e15 + 200, Unit: "sim", Count: 8, Value: 7},
		Event{Kind: KindSpanEnd, Cycle: 1e15 + 800, Unit: "sim", Count: 8, Value: 600},
		Event{Kind: KindSpanEnd, Cycle: 1e15 + 900, Unit: "request", Count: 7, Value: 800},
	)
	var buf bytes.Buffer
	if err := WriteChrome(&buf, events); err != nil {
		t.Fatal(err)
	}
	var trace struct {
		TraceEvents []struct {
			Name  string         `json:"name"`
			Cat   string         `json:"cat"`
			Phase string         `json:"ph"`
			TS    float64        `json:"ts"`
			Dur   float64        `json:"dur"`
			PID   int            `json:"pid"`
			ID    string         `json:"id"`
			Args  map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &trace); err != nil {
		t.Fatal(err)
	}
	spans := map[string][]int{} // id -> indices
	simEnd := 0.0
	for i, e := range trace.TraceEvents {
		switch e.Phase {
		case "b", "e":
			if e.PID != 2 || e.Cat != "span" {
				t.Errorf("span event %d not in service process: %+v", i, e)
			}
			spans[e.ID] = append(spans[e.ID], i)
		case "X":
			if end := e.TS + e.Dur; end > simEnd {
				simEnd = end
			}
		}
	}
	if len(spans) != 2 {
		t.Fatalf("span IDs exported = %d, want 2", len(spans))
	}
	for id, idx := range spans {
		if len(idx) != 2 {
			t.Errorf("span %s has %d events, want begin+end", id, len(idx))
		}
	}
	// Normalization: the first span begins at 0, the last ends at 800.
	reqEvents := spans["7"]
	if got := trace.TraceEvents[reqEvents[0]].TS; got != 0 {
		t.Errorf("first span begin TS = %v, want 0 (normalized)", got)
	}
	if got := trace.TraceEvents[reqEvents[1]].TS; got != 800 {
		t.Errorf("request span end TS = %v, want 800", got)
	}
	// The simulated tracks still end at the sim trace's own extent, not
	// anywhere near the spans' wall-clock magnitude.
	if simEnd != 2500 {
		t.Errorf("sim interval extent = %v, want 2500 (spans must not stretch it)", simEnd)
	}
}
