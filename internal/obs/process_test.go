package obs

import (
	"strings"
	"testing"
)

func TestGauge(t *testing.T) {
	reg := NewRegistry()
	g := reg.Gauge("pool.occupancy")
	if reg.Gauge("pool.occupancy") != g {
		t.Fatal("same name should return the same gauge")
	}
	g.Set(4)
	g.Add(2)
	g.Add(-5)
	if v := g.Value(); v != 1 {
		t.Fatalf("gauge value %g, want 1", v)
	}
	snap := reg.Snapshot()
	if v, ok := snap.Gauge("pool.occupancy"); !ok || v != 1 {
		t.Fatalf("snapshot gauge: %v %v", v, ok)
	}
	if _, ok := snap.Gauge("missing"); ok {
		t.Fatal("missing gauge should not be found")
	}
}

func TestGaugeFunc(t *testing.T) {
	reg := NewRegistry()
	v := 3.5
	reg.GaugeFunc("sampled", func() float64 { return v })
	if got, _ := reg.Snapshot().Gauge("sampled"); got != 3.5 {
		t.Fatalf("sampled gauge: %g", got)
	}
	v = 7
	if got, _ := reg.Snapshot().Gauge("sampled"); got != 7 {
		t.Fatalf("sampled gauge after change: %g", got)
	}
	// Re-registering replaces the function without panicking.
	reg.GaugeFunc("sampled", func() float64 { return -1 })
	if got, _ := reg.Snapshot().Gauge("sampled"); got != -1 {
		t.Fatalf("replaced gauge: %g", got)
	}
}

func TestGaugeNameCollision(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("events.total")
	defer func() {
		if recover() == nil {
			t.Fatal("colliding gauge name should panic")
		}
	}()
	reg.Gauge("events_total") // same Prometheus form as events.total
}

func TestGaugesInRender(t *testing.T) {
	reg := NewRegistry()
	reg.Gauge("depth").Set(2.5)
	out := reg.Snapshot().Render()
	if !strings.Contains(out, "gauges:") || !strings.Contains(out, "depth") {
		t.Fatalf("render missing gauges section:\n%s", out)
	}
}

func TestRegisterProcessMetrics(t *testing.T) {
	reg := NewRegistry()
	RegisterProcessMetrics(reg)
	RegisterProcessMetrics(reg) // idempotent
	snap := reg.Snapshot()
	for _, name := range []string{MetricGoroutines, MetricGOMAXPROCS, MetricHeapAlloc, MetricGCPauseSecond} {
		v, ok := snap.Gauge(name)
		if !ok {
			t.Fatalf("process metric %s missing", name)
		}
		if name != MetricGCPauseSecond && v <= 0 {
			t.Fatalf("process metric %s = %g, want positive", name, v)
		}
		if err := CheckName(name); err != nil {
			t.Fatal(err)
		}
	}
	// The conventional Prometheus names come out of the conversion.
	wantProm := map[string]string{
		MetricGoroutines:    "go_goroutines",
		MetricGOMAXPROCS:    "go_gomaxprocs",
		MetricHeapAlloc:     "go_memstats_heap_alloc_bytes",
		MetricGCPauseSecond: "go_gc_pause_total_seconds",
	}
	for name, prom := range wantProm {
		if got := PromName(name); got != prom {
			t.Fatalf("PromName(%s) = %s, want %s", name, got, prom)
		}
	}
}
