package obs

import (
	"strings"
	"testing"
)

// timelineEvents is a small two-window trace: window 1 misses the PVT,
// invokes the CDE and gates the VPU off; window 2 hits and gates it back
// on.
func timelineEvents() []Event {
	sig := [MaxSigIDs]uint32{0x10}
	return []Event{
		{Kind: KindTranslate, Cycle: 50, Count: 0x10, Value: 40},
		{Kind: KindWindowClose, Cycle: 1000, Window: 1, SigIDs: sig, SigN: 1, Count: 4000},
		{Kind: KindPVTMiss, Cycle: 1000, Window: 1, SigIDs: sig, SigN: 1, Count: 3},
		{Kind: KindCDEInvoke, Cycle: 1000, Window: 1, SigIDs: sig, SigN: 1, Value: 5000},
		{Kind: KindCDERegister, Cycle: 1000, Window: 1, SigIDs: sig, SigN: 1, Policy: 0x7, Detail: "computed"},
		{Kind: KindGate, Cycle: 1000, Window: 1, Unit: "VPU", Prev: 1, Next: 0.05, Stall: 30, Count: 1},
		{Kind: KindWindowClose, Cycle: 2500, Window: 2, SigIDs: sig, SigN: 1, Count: 4100},
		{Kind: KindPVTHit, Cycle: 2500, Window: 2, SigIDs: sig, SigN: 1, Policy: 0xF, Count: 4},
		{Kind: KindGate, Cycle: 2500, Window: 2, Unit: "VPU", Prev: 0.05, Next: 1, Stall: 30, Count: 2},
	}
}

func TestTimelineRows(t *testing.T) {
	tl := NewTimeline(timelineEvents())
	if len(tl.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(tl.Rows))
	}
	if got := tl.Units; len(got) != 1 || got[0] != "VPU" {
		t.Fatalf("units = %v", got)
	}
	w1, w2 := tl.Rows[0], tl.Rows[1]
	if w1.Window != 1 || w1.Lookup != "miss" || w1.CDEInvokes != 1 || w1.Gates != 1 {
		t.Errorf("window 1 = %+v", w1)
	}
	if w1.Policy != "0111" {
		t.Errorf("window 1 policy = %q (from register), want 0111", w1.Policy)
	}
	if w1.Fracs[0] != 0.05 {
		t.Errorf("window 1 VPU frac = %v, want 0.05 (gated at its boundary)", w1.Fracs[0])
	}
	if w2.Lookup != "hit" || w2.Policy != "1111" || w2.Fracs[0] != 1 {
		t.Errorf("window 2 = %+v", w2)
	}
	if w2.Stall != 30 {
		t.Errorf("window 2 stall = %v", w2.Stall)
	}
}

func TestTimelineRender(t *testing.T) {
	tl := NewTimeline(timelineEvents())
	out := tl.Render(0)
	for _, want := range []string{"timeline: 2 windows", "VPU", "<t10>", "miss", "hit", "0.05", "1.00"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	// last=1 keeps only the newest window and notes the skip.
	out = tl.Render(1)
	if !strings.Contains(out, "(1 earlier windows skipped)") || strings.Contains(out, "miss") {
		t.Errorf("render(1):\n%s", out)
	}
}

func TestTimelineEmpty(t *testing.T) {
	tl := NewTimeline(nil)
	if len(tl.Rows) != 0 || len(tl.Units) != 0 {
		t.Fatalf("empty timeline = %+v", tl)
	}
	if out := tl.Render(10); !strings.Contains(out, "0 windows") {
		t.Errorf("empty render: %q", out)
	}
}
