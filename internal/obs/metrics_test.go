package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d", c.Value())
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram(10, 100, 1000)
	for _, v := range []float64{5, 10, 11, 100, 5000} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d", h.Count())
	}
	reg := NewRegistry()
	rh := reg.Histogram("h", 10, 100, 1000)
	for _, v := range []float64{5, 10, 11, 100, 5000} {
		rh.Observe(v)
	}
	s, ok := reg.Snapshot().Histogram("h")
	if !ok {
		t.Fatal("histogram missing from snapshot")
	}
	// <=10: {5,10}; <=100: {11,100}; <=1000: {}; overflow: {5000}.
	wantCounts := []uint64{2, 2, 0, 1}
	for i, w := range wantCounts {
		if s.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (all %v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if s.Min != 5 || s.Max != 5000 || s.Mean() != (5+10+11+100+5000)/5.0 {
		t.Fatalf("min/max/mean = %v/%v/%v", s.Min, s.Max, s.Mean())
	}
}

func TestHistogramValidation(t *testing.T) {
	for _, bounds := range [][]float64{{}, {10, 10}, {10, 5}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("bounds %v accepted", bounds)
				}
			}()
			NewHistogram(bounds...)
		}()
	}
}

func TestRegistryReuse(t *testing.T) {
	reg := NewRegistry()
	if reg.Counter("a") != reg.Counter("a") {
		t.Fatal("counter not reused")
	}
	if reg.Histogram("h", 1, 2) != reg.Histogram("h", 5, 6) {
		t.Fatal("histogram not reused")
	}
	reg.Counter("a").Inc()
	snap := reg.Snapshot()
	if snap.Counter("a") != 1 || snap.Counter("absent") != 0 {
		t.Fatalf("snapshot counters: %+v", snap.Counters)
	}
}

func TestRegistryConcurrent(t *testing.T) {
	reg := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				reg.Counter("shared").Inc()
				reg.Histogram("h", 1, 10, 100).Observe(float64(i))
			}
		}()
	}
	wg.Wait()
	if got := reg.Snapshot().Counter("shared"); got != 4000 {
		t.Fatalf("shared counter = %d", got)
	}
}

func TestCollector(t *testing.T) {
	c := NewCollector()
	events := []Event{
		{Kind: KindWindowClose, Window: 1, Count: 30000},
		{Kind: KindPVTMiss, Count: 0},
		{Kind: KindCDEInvoke, Value: 10000},
		{Kind: KindGate, Unit: "VPU", Cycle: 1000, Prev: 1, Next: 0, Stall: 530},
		{Kind: KindGate, Unit: "VPU", Cycle: 51000, Prev: 0, Next: 1, Stall: 530},
		{Kind: KindPVTHit, Count: 1},
		{Kind: KindWindowClose, Window: 2, Count: 28000},
	}
	for _, e := range events {
		c.Emit(e)
	}
	s := c.Snapshot()
	if got := s.Counter("events.total"); got != uint64(len(events)) {
		t.Fatalf("events.total = %d", got)
	}
	if s.Counter("events.gate") != 2 || s.Counter("events.window-close") != 2 {
		t.Fatalf("per-kind counters: %+v", s.Counters)
	}
	if h, ok := s.Histogram("window.insns"); !ok || h.Count != 2 {
		t.Fatalf("window.insns: %+v ok=%v", h, ok)
	}
	res, ok := s.Histogram("gate.residency.VPU")
	if !ok || res.Count != 1 || res.Sum != 50000 {
		t.Fatalf("gate.residency.VPU: %+v ok=%v", res, ok)
	}
	if h, ok := s.Histogram("cde.invoke.cycles"); !ok || h.Count != 1 || h.Sum != 10000 {
		t.Fatalf("cde.invoke.cycles: %+v", h)
	}
	rendered := s.Render()
	for _, want := range []string{"counters:", "histograms:", "events.total", "window.insns"} {
		if !strings.Contains(rendered, want) {
			t.Fatalf("render missing %q:\n%s", want, rendered)
		}
	}
}

func TestCheckName(t *testing.T) {
	for _, ok := range []string{"a", "events.total", "events.pvt-hit", "gate.residency.VPU", "_x", "ns:metric", "x9"} {
		if err := CheckName(ok); err != nil {
			t.Errorf("CheckName(%q) = %v, want nil", ok, err)
		}
	}
	for _, bad := range []string{"", "9lives", ".dot", "-dash", "has space", "quo\"te", "new\nline", "héllo", "curly{}"} {
		if err := CheckName(bad); err == nil {
			t.Errorf("CheckName(%q) accepted", bad)
		}
	}
}

func TestPromName(t *testing.T) {
	for name, want := range map[string]string{
		"events.pvt-hit":     "events_pvt_hit",
		"gate.residency.VPU": "gate_residency_VPU",
		"plain":              "plain",
	} {
		if got := PromName(name); got != want {
			t.Errorf("PromName(%q) = %q, want %q", name, got, want)
		}
	}
}

// TestRegistryRejectsBadNames is the fail-fast contract: an illegal or
// colliding name must panic at registration, not surface later as an
// unscrapable /metrics page.
func TestRegistryRejectsBadNames(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s registered without panic", name)
			}
		}()
		f()
	}
	reg := NewRegistry()
	mustPanic("counter with space", func() { reg.Counter("has space") })
	mustPanic("empty histogram name", func() { reg.Histogram("", 1) })
	// Distinct names whose Prometheus forms collide.
	reg.Counter("gate.stalls")
	mustPanic("prom-form collision", func() { reg.Counter("gate-stalls") })
	// Same name as both counter and histogram would expose duplicate
	// families.
	reg.Counter("dual")
	mustPanic("counter/histogram name reuse", func() { reg.Histogram("dual", 1) })
	// The originals are still intact and reusable.
	if reg.Counter("gate.stalls") == nil || reg.Counter("dual") == nil {
		t.Fatal("valid instruments lost after rejected registrations")
	}
}

func TestSnapshotRenderEmpty(t *testing.T) {
	if got := (&Snapshot{}).Render(); !strings.Contains(got, "no metrics") {
		t.Fatalf("empty render = %q", got)
	}
}
