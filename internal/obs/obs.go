// Package obs is the simulator's observability layer: a typed event
// stream describing PowerChop's runtime behaviour (execution-window
// closes, PVT hits and evictions, CDE profiling activity, gating
// transitions, translation installs) plus a metrics registry of named
// counters and fixed-bucket histograms.
//
// The layer is designed to cost nothing when unused. Instrumented
// components hold a Tracer that defaults to nil and guard every emission
// with a nil check, so the hot path pays one predictable branch and no
// allocations when tracing is off. Event is a flat value type — no
// pointers, no heap — so constructing and passing one never allocates;
// sinks that need to retain events copy them.
//
// obs sits at the bottom of the dependency graph: every mechanism package
// (phase, pvt, cde, gating, sim) may import it, so it must not import any
// of them. Signatures and policies therefore appear in events as raw
// values (a fixed ID array, the encoded 4-bit policy vector) rather than
// as the packages' own types.
package obs

import (
	"fmt"
	"strings"
)

// Kind classifies an event.
type Kind uint8

const (
	// KindWindowClose marks an execution-window boundary: the HTB formed
	// the window's phase signature and flushed. Window is the completed
	// window's ordinal (1-based), Sig the signature, Count the window's
	// translated dynamic instruction count, Value the cumulative number
	// of translation executions dropped because the HTB was full, Prev
	// the signature's coverage (the fraction of the window's instructions
	// executed by the signature's hot translations).
	KindWindowClose Kind = iota
	// KindPVTHit is a policy vector table lookup that hit. Sig is the
	// looked-up signature, Policy the stored 4-bit policy vector, Count
	// the table occupancy at the lookup.
	KindPVTHit
	// KindPVTMiss is a PVT lookup that missed. Sig is the signature,
	// Count the table occupancy.
	KindPVTMiss
	// KindPVTEvict is a PVT capacity eviction. Sig is the evicted
	// signature, Policy its policy vector, Count the victim way index.
	KindPVTEvict
	// KindCDEInvoke is a software CDE invocation (PVT-miss interrupt).
	// Sig is the missing signature, Value the interrupt's cycle cost.
	KindCDEInvoke
	// KindCDEScore is one unit's criticality score from a completed
	// profile (Algorithm 1). Unit names the unit, Value the score, Detail
	// the metric ("simd-ratio", "mispred-delta", "l2hit-ratio"). For
	// decision provenance the event also carries Sig (the phase being
	// decided), Prev (the threshold compared against; MLC1 for the MLC),
	// Next (the MLC2 threshold, MLC only), Policy (the outcome: 1/0 for
	// VPU/BPU on/off, the MLCState value for the MLC) and Count (profile
	// windows consumed when the score was computed).
	KindCDEScore
	// KindCDERegister is a policy registration with the PVT. Sig is the
	// phase, Policy the registered vector, Detail the path: "computed"
	// (fresh profile), "restored" (re-registered after eviction) or
	// "abandoned" (profiling gave up, current policy kept). Value is the
	// profile windows consumed and Count the profiling attempts spent
	// (both zero on the "restored" path, which needs no profile).
	KindCDERegister
	// KindGate is a gating transition. Unit names the unit, Prev and
	// Next are the power fractions before and after, Stall the stall
	// cycles charged for the transition, Count the unit's cumulative
	// switch count, Cycle the transition time.
	KindGate
	// KindTranslate is a region-cache install: the translator produced a
	// new translation. Count is the translation ID (head PC), Value the
	// region's guest instruction count.
	KindTranslate
	// KindCDEProfile records the CDE consuming (or rejecting) one
	// execution window while profiling a phase. Sig is the phase under
	// profile, Detail the window's disposition ("main" — full-power
	// measurement taken, "small" — small-BPU mispredict rate taken,
	// "skipped" — preconditions unmet, "empty" — no instructions), Count
	// the profile windows consumed so far, Value the profiling attempts
	// spent so far.
	KindCDEProfile
	// KindRunEnd marks the end of a simulation run, stamped with the
	// final cycle and window count. It lets trace consumers close out
	// interval accounting (residency, attribution) at exactly the cycle
	// the simulator itself closes out gating residency.
	KindRunEnd
	// KindSpanBegin opens a service-layer span (request → sweep →
	// benchmark → sim; see internal/obs/span). Unlike every other kind
	// its clock is the wall clock, not the simulated one: Cycle carries
	// microseconds since the Unix epoch. Unit is the span name, Detail
	// its attributes ("req=<id> k=v ..."), Count the span ID and Value
	// the parent span ID (0 for a root).
	KindSpanBegin
	// KindSpanEnd closes a span. Cycle is the wall-clock end time in
	// Unix microseconds, Count the span ID, Value the span duration in
	// microseconds, Unit the span name and Detail the outcome
	// ("error=..." on failure, empty on success).
	KindSpanEnd
	// KindAlert is an alert-rule state transition from the alert
	// evaluator (internal/obs/alert). Unit names the rule, Detail the new
	// state ("pending", "firing", "resolved"), Value the observed value,
	// Prev the rule's threshold, Window the evaluation boundary for
	// series rules (0 for registry-metric rules, which instead carry the
	// evaluation tick in Count) and Cycle the simulated cycle of the
	// boundary's last sample. Alert events ride the ordinary stream so
	// traces, SSE clients and Chrome exports see them; every simulation
	// consumer ignores them.
	KindAlert
	numKinds
)

// kindNames maps kinds to their wire names; KindFromString inverts it.
var kindNames = [numKinds]string{
	KindWindowClose: "window-close",
	KindPVTHit:      "pvt-hit",
	KindPVTMiss:     "pvt-miss",
	KindPVTEvict:    "pvt-evict",
	KindCDEInvoke:   "cde-invoke",
	KindCDEScore:    "cde-score",
	KindCDERegister: "cde-register",
	KindGate:        "gate",
	KindTranslate:   "translate",
	KindCDEProfile:  "cde-profile",
	KindRunEnd:      "run-end",
	KindSpanBegin:   "span-begin",
	KindSpanEnd:     "span-end",
	KindAlert:       "alert",
}

// IsSpanKind reports whether the kind belongs to the service-layer span
// stream (wall-clock timestamps) rather than the simulation stream.
func IsSpanKind(k Kind) bool {
	return k == KindSpanBegin || k == KindSpanEnd
}

// IsDecisionKind reports whether the kind is part of a gating decision's
// lineage — the PVT lookup path and the CDE's profiling, scoring and
// registration activity. The serve layer's /decisions stream and the
// audit package filter on it.
func IsDecisionKind(k Kind) bool {
	switch k {
	case KindPVTHit, KindPVTMiss, KindPVTEvict,
		KindCDEInvoke, KindCDEScore, KindCDERegister, KindCDEProfile:
		return true
	}
	return false
}

// String returns the kind's wire name.
func (k Kind) String() string {
	if k < numKinds {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// KindFromString parses a wire name back into a Kind.
func KindFromString(s string) (Kind, error) {
	for k, name := range kindNames {
		if name == s {
			return Kind(k), nil
		}
	}
	return 0, fmt.Errorf("obs: unknown event kind %q", s)
}

// Kinds returns every defined kind, in declaration order.
func Kinds() []Kind {
	out := make([]Kind, numKinds)
	for i := range out {
		out[i] = Kind(i)
	}
	return out
}

// MaxSigIDs is the widest phase signature an event can carry; it matches
// phase.MaxSignatureLen (asserted at compile time where phase emits).
const MaxSigIDs = 8

// Event is one observation. It is a flat value type: constructing and
// passing an Event never allocates, so emission is safe on hot paths.
// Which fields are meaningful depends on Kind (see the Kind constants);
// unused fields are zero.
type Event struct {
	// Kind classifies the event.
	Kind Kind
	// Cycle is the simulated cycle of the event. Events emitted by
	// components without a clock carry 0 and are stamped by the Stamped
	// wrapper.
	Cycle float64
	// Window is the completed-window count when the event fired (the
	// window-close event's own ordinal; stamped elsewhere).
	Window uint64
	// Unit names the hardware unit for gating and scoring events.
	Unit string
	// Detail is a kind-specific tag (registration path, score metric).
	Detail string
	// SigIDs / SigN carry a phase signature: the first SigN entries of
	// SigIDs are the sorted translation IDs.
	SigIDs [MaxSigIDs]uint32
	SigN   uint8
	// Policy is the encoded 4-bit gating policy vector where relevant.
	Policy uint8
	// Prev and Next are gating power fractions before/after a transition.
	Prev float64
	Next float64
	// Stall is the stall-cycle cost charged with the event.
	Stall float64
	// Value and Count are kind-specific scalars (see Kind docs).
	Value float64
	Count uint64
}

// SigString renders the event's signature like phase.Signature.String
// ("<t1a,t2b>"), or "" when the event carries none.
func (e Event) SigString() string {
	if e.SigN == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('<')
	for i := 0; i < int(e.SigN) && i < MaxSigIDs; i++ {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "t%x", e.SigIDs[i])
	}
	b.WriteByte('>')
	return b.String()
}

// PolicyString renders the encoded policy vector as a 4-bit string
// ("VBMM" bit order: bit 3 = VPU on, bit 2 = BPU on, bits 1..0 = MLC
// state; see pvt.Policy.Encode).
func (e Event) PolicyString() string {
	return fmt.Sprintf("%04b", e.Policy&0xF)
}

// Tracer receives the event stream. Implementations must tolerate being
// called from the simulator's hot path: Emit should be cheap and must not
// retain references derived from the event beyond the call (Event is a
// value, so copying it is always safe). Tracers wired into a single
// simulation are called from one goroutine; the sinks in this package are
// additionally safe for concurrent use so one sink can serve several
// simulations at once.
type Tracer interface {
	Emit(e Event)
}

// Nop is the no-op Tracer: every event is discarded. It exists so callers
// can unconditionally emit through a non-nil Tracer; components in this
// repository instead keep a nil Tracer and skip emission entirely.
type Nop struct{}

// Emit implements Tracer by doing nothing.
func (Nop) Emit(Event) {}

// multi fans events out to several tracers in order.
type multi []Tracer

// Emit implements Tracer.
func (m multi) Emit(e Event) {
	for _, t := range m {
		t.Emit(e)
	}
}

// Multi combines tracers into one. Nil entries are dropped; the result is
// nil when nothing remains, the tracer itself when one remains. Callers
// must pass untyped nils only (a typed-nil concrete sink wrapped in the
// interface is kept and will be called).
func Multi(ts ...Tracer) Tracer {
	var live []Tracer
	for _, t := range ts {
		if t != nil {
			live = append(live, t)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	default:
		return multi(live)
	}
}

// stamped decorates events with the simulation clock.
type stamped struct {
	t   Tracer
	now func() (cycle float64, window uint64)
}

// Emit implements Tracer: events that carry no cycle or window of their
// own (zero fields) are stamped from the clock before forwarding. Events
// that already carry a cycle — gating transitions, which may be
// retroactive — pass through unchanged.
func (s stamped) Emit(e Event) {
	if IsSpanKind(e.Kind) {
		// Span events run on the wall clock; stamping them with the
		// simulated clock would corrupt their timeline.
		s.t.Emit(e)
		return
	}
	cycle, window := s.now()
	if e.Cycle == 0 {
		e.Cycle = cycle
	}
	if e.Window == 0 {
		e.Window = window
	}
	s.t.Emit(e)
}

// Stamped wraps a tracer so every event is stamped with the current
// simulated cycle and completed-window count from now. The simulator
// installs one Stamped wrapper and hands it to every component, giving
// clockless components (PVT, CDE, HTB) time-ordered events for free.
func Stamped(t Tracer, now func() (cycle float64, window uint64)) Tracer {
	if t == nil || now == nil {
		return t
	}
	return stamped{t: t, now: now}
}
