package obs

import "runtime"

// Process metric names. Their Prometheus forms (go_goroutines,
// go_gomaxprocs, go_memstats_heap_alloc_bytes,
// go_gc_pause_total_seconds) follow the conventional Go client names so
// standard dashboards work unchanged.
const (
	MetricGoroutines    = "go.goroutines"
	MetricGOMAXPROCS    = "go.gomaxprocs"
	MetricHeapAlloc     = "go.memstats.heap-alloc-bytes"
	MetricGCPauseSecond = "go.gc.pause-total-seconds"
)

// RegisterProcessMetrics registers Go runtime health gauges — live
// goroutines, heap bytes in use, cumulative GC pause time and
// GOMAXPROCS — as function gauges sampled at every Snapshot. The serve
// monitor calls it once so /metrics exposes process health next to the
// simulation counters; registering twice on one registry is harmless
// (GaugeFunc replaces).
func RegisterProcessMetrics(r *Registry) {
	r.GaugeFunc(MetricGoroutines, func() float64 {
		return float64(runtime.NumGoroutine())
	})
	r.GaugeFunc(MetricGOMAXPROCS, func() float64 {
		return float64(runtime.GOMAXPROCS(0))
	})
	r.GaugeFunc(MetricHeapAlloc, func() float64 {
		var m runtime.MemStats
		runtime.ReadMemStats(&m)
		return float64(m.HeapAlloc)
	})
	r.GaugeFunc(MetricGCPauseSecond, func() float64 {
		var m runtime.MemStats
		runtime.ReadMemStats(&m)
		return float64(m.PauseTotalNs) / 1e9
	})
}
