package obs

import (
	"bytes"
	"strings"
	"testing"
)

func TestKindStrings(t *testing.T) {
	for _, k := range Kinds() {
		name := k.String()
		if strings.Contains(name, "kind(") {
			t.Fatalf("kind %d has no name", k)
		}
		back, err := KindFromString(name)
		if err != nil || back != k {
			t.Fatalf("KindFromString(%q) = %v, %v", name, back, err)
		}
	}
	if _, err := KindFromString("bogus"); err == nil {
		t.Fatal("bogus kind accepted")
	}
	if !strings.Contains(Kind(200).String(), "kind(200)") {
		t.Fatalf("out-of-range kind: %q", Kind(200).String())
	}
}

func TestSigString(t *testing.T) {
	e := Event{SigIDs: [MaxSigIDs]uint32{0x1a, 0x2b}, SigN: 2}
	if got := e.SigString(); got != "<t1a,t2b>" {
		t.Fatalf("SigString = %q", got)
	}
	if got := (Event{}).SigString(); got != "" {
		t.Fatalf("empty SigString = %q", got)
	}
}

func TestPolicyString(t *testing.T) {
	if got := (Event{Policy: 0xF}).PolicyString(); got != "1111" {
		t.Fatalf("PolicyString(0xF) = %q", got)
	}
	if got := (Event{Policy: 0b1100}).PolicyString(); got != "1100" {
		t.Fatalf("PolicyString(0b1100) = %q", got)
	}
}

func TestMulti(t *testing.T) {
	if Multi() != nil || Multi(nil, nil) != nil {
		t.Fatal("empty Multi should be nil")
	}
	r := NewRing(4)
	if got := Multi(nil, r); got != Tracer(r) {
		t.Fatal("single live tracer should be returned unwrapped")
	}
	r2 := NewRing(4)
	m := Multi(r, r2)
	m.Emit(Event{Kind: KindGate})
	if r.Total() != 1 || r2.Total() != 1 {
		t.Fatalf("fan-out totals %d, %d", r.Total(), r2.Total())
	}
}

func TestStamped(t *testing.T) {
	r := NewRing(8)
	cycle, window := 123.5, uint64(7)
	st := Stamped(r, func() (float64, uint64) { return cycle, window })
	st.Emit(Event{Kind: KindPVTHit})
	st.Emit(Event{Kind: KindGate, Cycle: 50, Window: 3}) // keeps its own stamps
	ev := r.Events()
	if ev[0].Cycle != 123.5 || ev[0].Window != 7 {
		t.Fatalf("stamped event = %+v", ev[0])
	}
	if ev[1].Cycle != 50 || ev[1].Window != 3 {
		t.Fatalf("pre-stamped event overwritten: %+v", ev[1])
	}
	if Stamped(nil, nil) != nil {
		t.Fatal("Stamped(nil) should stay nil")
	}
}

func TestNop(t *testing.T) {
	var n Nop
	n.Emit(Event{Kind: KindWindowClose}) // must not panic
}

func TestJSONLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	j := NewJSONL(&buf)
	want := []Event{
		{Kind: KindWindowClose, Cycle: 10.5, Window: 1, SigIDs: [MaxSigIDs]uint32{9, 11}, SigN: 2, Count: 32000, Value: 3},
		{Kind: KindPVTHit, Cycle: 11, Window: 2, SigIDs: [MaxSigIDs]uint32{9, 11}, SigN: 2, Policy: 0xF, Count: 5},
		{Kind: KindGate, Cycle: 12, Unit: "VPU", Prev: 1, Next: 0, Stall: 530, Count: 4},
		{Kind: KindCDERegister, Cycle: 13, Detail: "computed", Policy: 0b1010},
		{Kind: KindTranslate, Count: 0xdeadbeef, Value: 64},
	}
	for _, e := range want {
		j.Emit(e)
	}
	if err := j.Flush(); err != nil {
		t.Fatal(err)
	}
	if j.Events() != uint64(len(want)) {
		t.Fatalf("Events() = %d", j.Events())
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != len(want) {
		t.Fatalf("%d lines for %d events", len(lines), len(want))
	}
	got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("read %d events", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event %d: got %+v want %+v", i, got[i], want[i])
		}
	}
}

// TestMarshalEvent checks the one-object encoder matches the JSONL wire
// format exactly: its output parses back with ReadJSONL to the original
// event.
func TestMarshalEvent(t *testing.T) {
	want := Event{Kind: KindPVTHit, Cycle: 11, Window: 2, SigIDs: [MaxSigIDs]uint32{9, 11}, SigN: 2, Policy: 0xF, Count: 5}
	b, err := MarshalEvent(want)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.ContainsRune(b, '\n') {
		t.Fatalf("MarshalEvent output contains a newline: %q", b)
	}
	got, err := ReadJSONL(bytes.NewReader(append(b, '\n')))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != want {
		t.Fatalf("round trip: got %+v want %+v", got, want)
	}
}

func TestReadJSONLErrors(t *testing.T) {
	if _, err := ReadJSONL(strings.NewReader("{not json}\n")); err == nil {
		t.Fatal("malformed line accepted")
	}
	if _, err := ReadJSONL(strings.NewReader(`{"kind":"nope"}` + "\n")); err == nil {
		t.Fatal("unknown kind accepted")
	}
	if _, err := ReadJSONL(strings.NewReader(`{"kind":"pvt-hit","sig":[1,2,3,4,5,6,7,8,9]}` + "\n")); err == nil {
		t.Fatal("overwide signature accepted")
	}
	ev, err := ReadJSONL(strings.NewReader("\n\n"))
	if err != nil || len(ev) != 0 {
		t.Fatalf("blank-line trace: %v, %d events", err, len(ev))
	}
}
