// Package runlog is the persistent run-history store: an append-only
// JSONL journal (one Record per line) kept under the result cache
// directory, so every run, figure render and sweep the process executes
// leaves a durable row that survives restarts. The serve layer exposes
// it as GET /api/runs and the /runs board; the CLI reads it back with
// `powerchop runs`.
//
// The store is deliberately boring: appends are O(1) writes behind a
// mutex, reads scan the whole journal (history is small — one line per
// run, not per event), corrupt or truncated lines are counted and
// skipped rather than failing the read, and concurrent processes
// appending to the same file interleave safely because every record is
// a single buffered write.
package runlog

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// FileName is the journal's name under the store directory.
const FileName = "runlog.jsonl"

// Record is one completed unit of work.
type Record struct {
	// Time is when the work finished.
	Time time.Time `json:"time"`
	// Kind classifies the work: "run", "compare", "figure", "all",
	// "headline" — mirroring the CLI subcommand or API endpoint.
	Kind string `json:"kind"`
	// Name identifies the work's subject: a benchmark name, a figure id,
	// "all" for full renders.
	Name string `json:"name"`
	// SpanID is the root span of the work's trace (0 when untraced) and
	// RequestID the correlating HTTP request id ("" for CLI work).
	SpanID    uint64 `json:"span_id,omitempty"`
	RequestID string `json:"request_id,omitempty"`
	// Params digests the parameters that shaped the work (manager,
	// arch, scale, passes — whatever the caller deems identifying).
	Params string `json:"params,omitempty"`
	// DurationMS is the work's wall-clock duration in milliseconds.
	DurationMS float64 `json:"duration_ms"`
	// CacheHits/CacheMisses count persistent result-cache activity
	// attributable to the work (deltas over its execution).
	CacheHits   uint64 `json:"cache_hits,omitempty"`
	CacheMisses uint64 `json:"cache_misses,omitempty"`
	// Outcome is "ok" or "error"; Error carries the message.
	Outcome string `json:"outcome"`
	Error   string `json:"error,omitempty"`
}

// Filter selects records from a List scan. Zero fields match anything.
type Filter struct {
	// Kind/Name/Outcome match the records' fields exactly.
	Kind, Name, Outcome string
	// Offset skips that many matching records (newest first); Limit
	// caps the result (0 = unlimited).
	Offset, Limit int
}

// Store is the journal. Open one per process; it is safe for
// concurrent use.
type Store struct {
	mu   sync.Mutex
	path string // "" for in-memory stores
	mem  []Record
}

// Open returns a store journaling to dir/runlog.jsonl, creating dir as
// needed. The file itself is created lazily on first Append, so opening
// a store never dirties an empty cache directory.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("runlog: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("runlog: %w", err)
	}
	return &Store{path: filepath.Join(dir, FileName)}, nil
}

// Memory returns an in-memory store: same semantics, nothing on disk.
// The serve layer falls back to it when no cache directory is
// configured, so /api/runs always works (just without persistence).
func Memory() *Store { return &Store{} }

// Persistent reports whether the store survives process exit.
func (s *Store) Persistent() bool { return s != nil && s.path != "" }

// Path returns the journal file path ("" for in-memory stores).
func (s *Store) Path() string {
	if s == nil {
		return ""
	}
	return s.path
}

// Append journals one record. Records with a zero Outcome are
// normalized to "ok"/"error" from the Error field.
func (s *Store) Append(r Record) error {
	if s == nil {
		return nil
	}
	if r.Outcome == "" {
		if r.Error != "" {
			r.Outcome = "error"
		} else {
			r.Outcome = "ok"
		}
	}
	if r.Time.IsZero() {
		r.Time = time.Now()
	}
	line, err := json.Marshal(r)
	if err != nil {
		return fmt.Errorf("runlog: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.path == "" {
		s.mem = append(s.mem, r)
		return nil
	}
	f, err := os.OpenFile(s.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("runlog: %w", err)
	}
	defer f.Close()
	// One Write call per record: O_APPEND keeps concurrent appenders
	// from interleaving within a line.
	if _, err := f.Write(append(line, '\n')); err != nil {
		return fmt.Errorf("runlog: %w", err)
	}
	return nil
}

// List returns matching records newest-first. Corrupt journal lines are
// skipped; their count is returned alongside. A missing journal file is
// an empty history, not an error.
func (s *Store) List(f Filter) (recs []Record, corrupt int, err error) {
	if s == nil {
		return nil, 0, nil
	}
	all, corrupt, err := s.load()
	if err != nil {
		return nil, corrupt, err
	}
	// Newest first: the journal appends chronologically.
	skipped := 0
	for i := len(all) - 1; i >= 0; i-- {
		r := all[i]
		if f.Kind != "" && r.Kind != f.Kind {
			continue
		}
		if f.Name != "" && r.Name != f.Name {
			continue
		}
		if f.Outcome != "" && r.Outcome != f.Outcome {
			continue
		}
		if skipped < f.Offset {
			skipped++
			continue
		}
		recs = append(recs, r)
		if f.Limit > 0 && len(recs) >= f.Limit {
			break
		}
	}
	return recs, corrupt, nil
}

// Len returns the total record count (corrupt lines excluded).
func (s *Store) Len() (int, error) {
	all, _, err := s.load()
	return len(all), err
}

// load reads the journal oldest-first.
func (s *Store) load() ([]Record, int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.path == "" {
		return append([]Record(nil), s.mem...), 0, nil
	}
	f, err := os.Open(s.path)
	if os.IsNotExist(err) {
		return nil, 0, nil
	}
	if err != nil {
		return nil, 0, fmt.Errorf("runlog: %w", err)
	}
	defer f.Close()
	var (
		recs    []Record
		corrupt int
	)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var r Record
		if json.Unmarshal(line, &r) != nil || r.Kind == "" {
			corrupt++
			continue
		}
		recs = append(recs, r)
	}
	if err := sc.Err(); err != nil {
		return recs, corrupt, fmt.Errorf("runlog: %w", err)
	}
	return recs, corrupt, nil
}
