package runlog

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestAppendListRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Persistent() {
		t.Fatal("Open store should be persistent")
	}
	base := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	for i, r := range []Record{
		{Kind: "run", Name: "namd", Params: "manager=powerchop", DurationMS: 120, SpanID: 1},
		{Kind: "figure", Name: "fig12", DurationMS: 4000, CacheHits: 3, CacheMisses: 1},
		{Kind: "run", Name: "gobmk", Error: "boom"},
	} {
		r.Time = base.Add(time.Duration(i) * time.Minute)
		if err := s.Append(r); err != nil {
			t.Fatal(err)
		}
	}

	recs, corrupt, err := s.List(Filter{})
	if err != nil || corrupt != 0 {
		t.Fatalf("List: err=%v corrupt=%d", err, corrupt)
	}
	if len(recs) != 3 {
		t.Fatalf("got %d records, want 3", len(recs))
	}
	// Newest first.
	if recs[0].Name != "gobmk" || recs[2].Name != "namd" {
		t.Fatalf("order wrong: %q ... %q", recs[0].Name, recs[2].Name)
	}
	// Outcome normalization.
	if recs[0].Outcome != "error" || recs[1].Outcome != "ok" {
		t.Fatalf("outcomes: %q / %q", recs[0].Outcome, recs[1].Outcome)
	}
	if recs[2].SpanID != 1 || recs[1].CacheHits != 3 {
		t.Fatal("fields did not round-trip")
	}

	// Filters.
	runs, _, _ := s.List(Filter{Kind: "run"})
	if len(runs) != 2 {
		t.Fatalf("Kind filter: %d, want 2", len(runs))
	}
	errs, _, _ := s.List(Filter{Outcome: "error"})
	if len(errs) != 1 || errs[0].Name != "gobmk" {
		t.Fatalf("Outcome filter wrong: %+v", errs)
	}
	paged, _, _ := s.List(Filter{Offset: 1, Limit: 1})
	if len(paged) != 1 || paged[0].Name != "fig12" {
		t.Fatalf("pagination wrong: %+v", paged)
	}

	// Persistence across reopen — the restart-survival property.
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	again, _, err := s2.List(Filter{})
	if err != nil || len(again) != 3 {
		t.Fatalf("reopened store: %d records, err=%v", len(again), err)
	}
}

func TestCorruptLinesSkipped(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Append(Record{Kind: "run", Name: "a"}); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(s.Path(), os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString("{not json\n\n{\"no_kind\":true}\n")
	f.Close()
	if err := s.Append(Record{Kind: "run", Name: "b"}); err != nil {
		t.Fatal(err)
	}

	recs, corrupt, err := s.List(Filter{})
	if err != nil {
		t.Fatal(err)
	}
	if corrupt != 2 {
		t.Errorf("corrupt = %d, want 2 (bad JSON + missing kind; blank line ignored)", corrupt)
	}
	if len(recs) != 2 || recs[0].Name != "b" || recs[1].Name != "a" {
		t.Fatalf("good records wrong: %+v", recs)
	}
}

func TestMemoryStore(t *testing.T) {
	s := Memory()
	if s.Persistent() || s.Path() != "" {
		t.Fatal("memory store claims persistence")
	}
	for i := 0; i < 5; i++ {
		if err := s.Append(Record{Kind: "run", Name: "x"}); err != nil {
			t.Fatal(err)
		}
	}
	n, err := s.Len()
	if err != nil || n != 5 {
		t.Fatalf("Len = %d, err=%v", n, err)
	}
	recs, _, _ := s.List(Filter{Limit: 2})
	if len(recs) != 2 {
		t.Fatalf("Limit ignored: %d", len(recs))
	}
}

func TestOpenLazyFileCreation(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "sub")
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(s.Path()); !os.IsNotExist(err) {
		t.Fatal("journal file should not exist before first Append")
	}
	recs, corrupt, err := s.List(Filter{})
	if err != nil || corrupt != 0 || len(recs) != 0 {
		t.Fatal("empty store should List cleanly")
	}
	if err := s.Append(Record{Kind: "run", Name: "n"}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(s.Path())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(string(data), "\n") {
		t.Fatal("journal lines must be newline-terminated")
	}
}

func TestNilStoreIsNoOp(t *testing.T) {
	var s *Store
	if err := s.Append(Record{Kind: "run"}); err != nil {
		t.Fatal(err)
	}
	recs, corrupt, err := s.List(Filter{})
	if err != nil || corrupt != 0 || recs != nil {
		t.Fatal("nil store should List empty")
	}
}
