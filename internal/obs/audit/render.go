package audit

import (
	"fmt"
	"sort"
	"strings"

	"powerchop/internal/textplot"
)

// Render formats the trail as a human-readable attribution report: a
// headline, the per-phase attribution table (largest saver first, at
// most top rows; 0 = all) and the decision records with their score and
// threshold lineage.
func (t *Trail) Render(top int) string {
	var b strings.Builder

	fmt.Fprintf(&b, "decision provenance: %d phases, %d decisions\n",
		len(t.Phases), len(t.Decisions))
	fmt.Fprintf(&b, "energy saved by gating %.4g J (", t.EnergySavedTotalJ)
	for i, u := range t.Units {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s %.4g", u, t.EnergySavedJ[u])
	}
	fmt.Fprintf(&b, "); slowdown overhead %.4g J\n", t.OverheadJ)
	if t.Metrics != nil {
		if h, ok := t.Metrics.Histogram("audit.decision.latency.windows"); ok && h.Count > 0 {
			fmt.Fprintf(&b, "decision latency (windows): p50 %.3g, p95 %.3g, max %.3g over %d decisions\n",
				h.Quantile(0.5), h.Quantile(0.95), h.Max, h.Count)
		}
	}
	b.WriteString("\n")

	// Per-phase table, largest attributed savings first (boot and
	// never-gated phases sort to the bottom by cycles).
	phases := append([]PhaseAttribution(nil), t.Phases...)
	sort.SliceStable(phases, func(i, j int) bool {
		if phases[i].EnergySavedTotalJ != phases[j].EnergySavedTotalJ {
			return phases[i].EnergySavedTotalJ > phases[j].EnergySavedTotalJ
		}
		return phases[i].Cycles > phases[j].Cycles
	})
	shown := phases
	if top > 0 && len(shown) > top {
		shown = shown[:top]
	}
	var totalCycles float64
	for _, p := range t.Phases {
		totalCycles += p.Cycles
	}
	header := []string{"phase", "policy", "windows", "cyc%", "hit", "miss", "dec"}
	for _, u := range t.Units {
		header = append(header, u+"-gated%")
	}
	header = append(header, "savedJ", "stall-cyc", "cde-cyc", "overheadJ")
	rows := make([][]string, 0, len(shown))
	for _, p := range shown {
		cycPct := 0.0
		if totalCycles > 0 {
			cycPct = p.Cycles / totalCycles * 100
		}
		row := []string{
			p.Phase, p.PolicyStr,
			fmt.Sprintf("%d", p.Windows),
			fmt.Sprintf("%.1f", cycPct),
			fmt.Sprintf("%d", p.Hits),
			fmt.Sprintf("%d", p.Misses),
			fmt.Sprintf("%d", p.Decisions),
		}
		for _, u := range t.Units {
			g := 0.0
			if p.Cycles > 0 {
				g = p.GatedCycles[u] / p.Cycles * 100
			}
			row = append(row, fmt.Sprintf("%.1f", g))
		}
		row = append(row,
			fmt.Sprintf("%.3g", p.EnergySavedTotalJ),
			fmt.Sprintf("%.4g", p.GateStallCycles),
			fmt.Sprintf("%.4g", p.CDECycles),
			fmt.Sprintf("%.3g", p.OverheadJ),
		)
		rows = append(rows, row)
	}
	fmt.Fprintf(&b, "per-phase attribution (top %d of %d by energy saved):\n",
		len(shown), len(phases))
	b.WriteString(textplot.RightTable(header, rows))
	if len(shown) < len(phases) {
		var restSaved float64
		for _, p := range phases[len(shown):] {
			restSaved += p.EnergySavedTotalJ
		}
		fmt.Fprintf(&b, "(+ %d more phases, %.3g J)\n", len(phases)-len(shown), restSaved)
	}
	b.WriteString("\n")

	// Decision records, in registration order.
	decs := t.Decisions
	if top > 0 && len(decs) > top {
		decs = decs[:top]
	}
	fmt.Fprintf(&b, "decisions (first %d of %d):\n", len(decs), len(t.Decisions))
	for _, d := range decs {
		fmt.Fprintf(&b, "  window %-6d %-22s %-9s -> %s (policy %04b)", d.Window, d.Phase, d.Path, d.PolicyStr, d.Policy)
		if d.Path != "restored" {
			fmt.Fprintf(&b, "  [%d profile windows, %d attempts, latency %d windows]",
				d.ProfileWindows, d.Attempts, d.LatencyWindows)
		}
		b.WriteString("\n")
		for _, s := range d.Scores {
			fmt.Fprintf(&b, "    %-4s %-13s %s\n", s.Unit, s.Metric, s.Comparison())
		}
	}
	if len(decs) < len(t.Decisions) {
		fmt.Fprintf(&b, "  (+ %d more decisions)\n", len(t.Decisions)-len(decs))
	}
	return b.String()
}
