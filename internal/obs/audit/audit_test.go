package audit

import (
	"encoding/json"
	"math"
	"strings"
	"testing"

	"powerchop/internal/obs"
	"powerchop/internal/power"
	"powerchop/internal/pvt"
)

// testConfig is a small synthetic design: 1 GHz clock, two units.
func testConfig() Config {
	return Config{
		ClockHz: 1e9,
		Units: []UnitPower{
			{Name: "VPU", LeakageW: 1.0},
			{Name: "MLC", LeakageW: 2.0},
		},
		TotalLeakageW: 10.0,
	}
}

func sigEvent(kind obs.Kind, id uint32) obs.Event {
	e := obs.Event{Kind: kind, SigN: 1}
	e.SigIDs[0] = id
	return e
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{ClockHz: 0, Units: []UnitPower{{Name: "X"}}}); err == nil {
		t.Error("zero clock accepted")
	}
	if _, err := New(Config{ClockHz: 1e9}); err == nil {
		t.Error("no units accepted")
	}
	if _, err := New(Config{ClockHz: 1e9, Units: []UnitPower{{Name: "", LeakageW: 1}}}); err == nil {
		t.Error("unnamed unit accepted")
	}
	if _, err := New(Config{ClockHz: 1e9, Units: []UnitPower{{Name: "X", LeakageW: -1}}}); err == nil {
		t.Error("negative leakage accepted")
	}
	if a, err := New(testConfig()); err != nil || a == nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}

func TestBootAttribution(t *testing.T) {
	a := MustNew(testConfig())
	// 100 cycles with nothing decided: all wall cycles land on (boot),
	// nothing is gated.
	a.Emit(obs.Event{Kind: obs.KindRunEnd, Cycle: 100})
	tr := a.Snapshot()
	if len(tr.Phases) != 1 || tr.Phases[0].Phase != BootPhase {
		t.Fatalf("phases = %+v, want only %s", tr.Phases, BootPhase)
	}
	if got := tr.Phases[0].Cycles; got != 100 {
		t.Errorf("boot cycles = %v, want 100", got)
	}
	if tr.EnergySavedTotalJ != 0 {
		t.Errorf("energy saved = %v, want 0", tr.EnergySavedTotalJ)
	}
}

func TestGatedSpanAttribution(t *testing.T) {
	a := MustNew(testConfig())
	// A decision at cycle 100 registers phase <t1> with the VPU off;
	// the gate-off lands at the same cycle; the run ends at 1100.
	reg := sigEvent(obs.KindCDERegister, 1)
	reg.Cycle = 100
	reg.Window = 4
	reg.Detail = "computed"
	reg.Policy = pvt.Policy{VPUOn: false, BPUOn: true, MLC: pvt.MLCAll}.Encode()
	a.Emit(reg)
	a.Emit(obs.Event{Kind: obs.KindGate, Cycle: 100, Unit: "VPU", Prev: 1, Next: power.GatedLeakageFrac})
	a.Emit(obs.Event{Kind: obs.KindRunEnd, Cycle: 1100})

	tr := a.Snapshot()
	p := findPhase(t, tr, "<t1>")
	// 1000 cycles with the VPU at the gated fraction.
	wantGated := (1 - power.GatedLeakageFrac) * 1000
	if got := p.GatedCycles["VPU"]; !close(got, wantGated) {
		t.Errorf("VPU gated cycles = %v, want %v", got, wantGated)
	}
	if got := p.GatedCycles["MLC"]; got != 0 {
		t.Errorf("MLC gated cycles = %v, want 0", got)
	}
	// savedJ = leakW * (1-GLF) * gatedCycles / clockHz.
	wantJ := 1.0 * (1 - power.GatedLeakageFrac) * wantGated / 1e9
	if got := p.EnergySavedJ["VPU"]; !close(got, wantJ) {
		t.Errorf("VPU saved = %v, want %v", got, wantJ)
	}
	if !close(tr.EnergySavedTotalJ, wantJ) {
		t.Errorf("total saved = %v, want %v", tr.EnergySavedTotalJ, wantJ)
	}
	// Boot took the first 100 cycles.
	if got := findPhase(t, tr, BootPhase).Cycles; got != 100 {
		t.Errorf("boot cycles = %v, want 100", got)
	}
}

func TestDecisionRecordLineage(t *testing.T) {
	a := MustNew(testConfig())
	miss := sigEvent(obs.KindPVTMiss, 7)
	miss.Cycle = 10
	miss.Window = 2
	a.Emit(miss)
	score := sigEvent(obs.KindCDEScore, 7)
	score.Cycle = 50
	score.Window = 5
	score.Unit = "VPU"
	score.Detail = "simd-ratio"
	score.Value = 0.001
	score.Prev = 0.005
	score.Count = 3
	a.Emit(score)
	reg := sigEvent(obs.KindCDERegister, 7)
	reg.Cycle = 50
	reg.Window = 5
	reg.Detail = "computed"
	reg.Policy = pvt.Policy{BPUOn: true, MLC: pvt.MLCAll}.Encode()
	reg.Value = 3 // profile windows
	reg.Count = 1 // attempts
	a.Emit(reg)

	tr := a.Snapshot()
	if len(tr.Decisions) != 1 {
		t.Fatalf("decisions = %d, want 1", len(tr.Decisions))
	}
	d := tr.Decisions[0]
	if d.Phase != "<t7>" || d.Path != "computed" || d.Window != 5 {
		t.Errorf("decision = %+v", d)
	}
	if d.LatencyWindows != 3 {
		t.Errorf("latency = %d windows, want 3", d.LatencyWindows)
	}
	if d.ProfileWindows != 3 || d.Attempts != 1 {
		t.Errorf("profile windows/attempts = %d/%d, want 3/1", d.ProfileWindows, d.Attempts)
	}
	if len(d.Scores) != 1 {
		t.Fatalf("scores = %d, want 1", len(d.Scores))
	}
	s := d.Scores[0]
	if s.Unit != "VPU" || s.Metric != "simd-ratio" || s.Value != 0.001 || s.Threshold != 0.005 {
		t.Errorf("score = %+v", s)
	}
	if got := s.Comparison(); !strings.Contains(got, "-> off") {
		t.Errorf("comparison = %q, want off outcome", got)
	}
	// Latency histogram recorded the decision.
	if tr.Metrics == nil {
		t.Fatal("private registry snapshot missing")
	}
	h, ok := tr.Metrics.Histogram("audit.decision.latency.windows")
	if !ok || h.Count != 1 {
		t.Errorf("latency histogram = %+v, ok=%v", h, ok)
	}
}

func TestScoreComparisonMLC(t *testing.T) {
	all := ScoreRecord{Metric: "l2hit-ratio", Value: 0.02, Threshold: 0.005, Threshold2: 0.0005}
	if got := all.Comparison(); !strings.Contains(got, pvt.MLCAll.String()) {
		t.Errorf("all-ways comparison = %q", got)
	}
	one := ScoreRecord{Metric: "l2hit-ratio", Value: 0.0001, Threshold: 0.005, Threshold2: 0.0005}
	if got := one.Comparison(); !strings.Contains(got, pvt.MLCOne.String()) {
		t.Errorf("one-way comparison = %q", got)
	}
	half := ScoreRecord{Metric: "l2hit-ratio", Value: 0.001, Threshold: 0.005, Threshold2: 0.0005}
	if got := half.Comparison(); !strings.Contains(got, pvt.MLCHalf.String()) {
		t.Errorf("half comparison = %q", got)
	}
}

func TestHitSwitchesGoverning(t *testing.T) {
	a := MustNew(testConfig())
	hit := sigEvent(obs.KindPVTHit, 3)
	hit.Cycle = 10
	hit.Policy = pvt.FullOn.Encode()
	a.Emit(hit)
	a.Emit(obs.Event{Kind: obs.KindWindowClose, Cycle: 20, Count: 500})
	a.Emit(obs.Event{Kind: obs.KindRunEnd, Cycle: 30})
	tr := a.Snapshot()
	p := findPhase(t, tr, "<t3>")
	if p.Hits != 1 || p.Cycles != 20 || p.Windows != 1 || p.Insns != 500 {
		t.Errorf("phase = %+v", p)
	}
	if got := findPhase(t, tr, BootPhase).Cycles; got != 10 {
		t.Errorf("boot cycles = %v, want 10", got)
	}
}

func TestEvictionResidency(t *testing.T) {
	a := MustNew(testConfig())
	reg := sigEvent(obs.KindCDERegister, 9)
	reg.Cycle = 10
	reg.Window = 5
	reg.Detail = "computed"
	a.Emit(reg)
	ev := sigEvent(obs.KindPVTEvict, 9)
	ev.Cycle = 100
	ev.Window = 55
	a.Emit(ev)
	tr := a.Snapshot()
	if got := findPhase(t, tr, "<t9>").Evictions; got != 1 {
		t.Errorf("evictions = %d, want 1", got)
	}
	h, ok := tr.Metrics.Histogram("audit.pvt.residency.windows")
	if !ok || h.Count != 1 || h.Max != 50 {
		t.Errorf("residency histogram = %+v, ok=%v", h, ok)
	}
}

func TestRetroactiveClamp(t *testing.T) {
	a := MustNew(testConfig())
	a.Emit(obs.Event{Kind: obs.KindWindowClose, Cycle: 100})
	// A retroactive gate event stamped before the audit clock must not
	// rewind attribution or produce negative spans.
	a.Emit(obs.Event{Kind: obs.KindGate, Cycle: 50, Unit: "VPU", Next: 0.05})
	a.Emit(obs.Event{Kind: obs.KindRunEnd, Cycle: 200})
	tr := a.Snapshot()
	var total float64
	for _, p := range tr.Phases {
		if p.Cycles < 0 {
			t.Errorf("negative cycles in %+v", p)
		}
		total += p.Cycles
	}
	if total != 200 {
		t.Errorf("total cycles = %v, want 200", total)
	}
}

func TestOverheadCosting(t *testing.T) {
	a := MustNew(testConfig())
	a.Emit(obs.Event{Kind: obs.KindCDEInvoke, Cycle: 100, Value: 4000})
	gate := obs.Event{Kind: obs.KindGate, Cycle: 120, Unit: "MLC", Next: 0.5, Stall: 30}
	a.Emit(gate)
	a.Emit(obs.Event{Kind: obs.KindRunEnd, Cycle: 200})
	tr := a.Snapshot()
	p := findPhase(t, tr, BootPhase)
	if p.CDECycles != 4000 || p.GateStallCycles != 30 {
		t.Errorf("overhead cycles = %v cde, %v stall", p.CDECycles, p.GateStallCycles)
	}
	wantJ := 10.0 * 4030 / 1e9
	if !close(p.OverheadJ, wantJ) {
		t.Errorf("overhead J = %v, want %v", p.OverheadJ, wantJ)
	}
	if !close(tr.OverheadJ, wantJ) {
		t.Errorf("trail overhead J = %v, want %v", tr.OverheadJ, wantJ)
	}
}

func TestSharedRegistrySkipsTrailMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	cfg := testConfig()
	cfg.Registry = reg
	a := MustNew(cfg)
	a.Emit(obs.Event{Kind: obs.KindRunEnd, Cycle: 10})
	if tr := a.Snapshot(); tr.Metrics != nil {
		t.Error("trail carries metrics despite shared registry")
	}
	if _, ok := reg.Snapshot().Histogram("audit.decision.latency.windows"); !ok {
		t.Error("shared registry missing audit histogram")
	}
}

func TestDecisionsJSONWellFormed(t *testing.T) {
	a := MustNew(testConfig())
	reg := sigEvent(obs.KindCDERegister, 2)
	reg.Cycle = 10
	reg.Detail = "restored"
	a.Emit(reg)
	a.Emit(obs.Event{Kind: obs.KindRunEnd, Cycle: 20})
	b, err := a.DecisionsJSON()
	if err != nil {
		t.Fatal(err)
	}
	var tr Trail
	if err := json.Unmarshal(b, &tr); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if len(tr.Decisions) != 1 || tr.Decisions[0].Path != "restored" {
		t.Errorf("round-tripped trail = %+v", tr)
	}
}

func TestRenderSmoke(t *testing.T) {
	a := MustNew(testConfig())
	reg := sigEvent(obs.KindCDERegister, 1)
	reg.Cycle = 100
	reg.Window = 4
	reg.Detail = "computed"
	a.Emit(reg)
	a.Emit(obs.Event{Kind: obs.KindGate, Cycle: 100, Unit: "VPU", Next: 0.05, Stall: 10})
	a.Emit(obs.Event{Kind: obs.KindRunEnd, Cycle: 1100})
	out := a.Snapshot().Render(0)
	for _, want := range []string{"decision provenance", "per-phase attribution", "<t1>", "decisions (first"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func findPhase(t *testing.T, tr *Trail, name string) PhaseAttribution {
	t.Helper()
	for _, p := range tr.Phases {
		if p.Phase == name {
			return p
		}
	}
	t.Fatalf("phase %q not in trail (have %d phases)", name, len(tr.Phases))
	return PhaseAttribution{}
}

func close(a, b float64) bool {
	if a == b {
		return true
	}
	d := math.Abs(a - b)
	return d <= 1e-12*math.Max(math.Abs(a), math.Abs(b))
}
