// Package audit reconstructs decision provenance from the obs event
// stream: it joins the CDE's scoring and registration events, the PVT's
// hit/miss/eviction path and the gating transitions into per-decision
// records and a per-phase attribution table — which phase ran under
// which policy, for how many cycles, how much leakage energy each gating
// decision saved, and what slowdown (transition stalls plus CDE
// invocation cycles) it cost.
//
// The Auditor is a pure observer: it implements obs.Tracer, derives
// everything from the events it is handed, and feeds nothing back into
// the simulation. Attaching one to a run leaves the run's results
// byte-identical.
//
// Attribution semantics: the policy decided at a window boundary governs
// the cycles that follow until the next decision, so the auditor charges
// each inter-event span to the phase whose PVT hit or CDE registration
// most recently set the policy (cycles before the first decision land in
// the "(boot)" pseudo-phase). Per-unit gated cycles integrate
// (1 − powerFrac) over those spans — exactly the quantity the power
// model's AddResidency turns into leakage savings — so a phase's
// attributed EnergySavedJ sums across phases to the run's per-unit
// LeakSavedJ (up to float summation order). Retroactive transitions (the
// idle-timeout baseline's backdated VPU gate-offs) are clamped to the
// audit clock, so exact reconciliation holds for the managers that only
// gate at window boundaries — PowerChop itself.
package audit

import (
	"encoding/json"
	"fmt"
	"sync"

	"powerchop/internal/obs"
	"powerchop/internal/power"
	"powerchop/internal/pvt"
)

// BootPhase is the pseudo-phase that absorbs cycles before the first
// gating decision.
const BootPhase = "(boot)"

// UnitPower names one gateable unit and its full-on leakage power, the
// inputs attribution needs from the design point.
type UnitPower struct {
	Name     string
	LeakageW float64
}

// Config parameterizes an Auditor.
type Config struct {
	// ClockHz converts attributed cycles to seconds and joules.
	ClockHz float64
	// Units are the gateable units whose savings are attributed, with
	// their leakage budgets.
	Units []UnitPower
	// TotalLeakageW is the whole-core leakage draw, used to cost the
	// slowdown a decision incurs (stall and CDE cycles burn leakage
	// across the entire core, not just the gated unit).
	TotalLeakageW float64
	// Registry, when non-nil, receives the audit histograms (decision
	// latency, per-unit score distributions, PVT residency) alongside
	// whatever else it holds — typically a Collector's registry so the
	// distributions appear on /metrics. Nil creates a private registry
	// whose snapshot is attached to the Trail.
	Registry *obs.Registry
}

// ScoreRecord is one unit's criticality measurement inside a decision:
// the raw counter-derived value, the threshold(s) Algorithm 1 compared it
// against, and the outcome.
type ScoreRecord struct {
	Unit   string  `json:"unit"`
	Metric string  `json:"metric"` // "simd-ratio", "mispred-delta", "l2hit-ratio"
	Value  float64 `json:"value"`
	// Threshold is the cut-off compared against (MLC1 for the MLC).
	Threshold float64 `json:"threshold"`
	// Threshold2 is the MLC's second cut-off (MLC2); zero elsewhere.
	Threshold2 float64 `json:"threshold2,omitempty"`
	// Outcome encodes the resulting policy slice: 1/0 for VPU/BPU
	// on/off, the pvt.MLCState value for the MLC.
	Outcome uint8 `json:"outcome"`
	// ProfileWindows is how many windows the profile had consumed when
	// the score was computed.
	ProfileWindows uint64 `json:"profile_windows"`
}

// Comparison renders the threshold comparison the score decided, e.g.
// "0.00013 <= 0.005 -> off" or "0.012 > 0.005 -> all-ways".
func (s ScoreRecord) Comparison() string {
	if s.Metric == "l2hit-ratio" {
		switch {
		case s.Value > s.Threshold:
			return fmt.Sprintf("%.4g > %.4g -> %s", s.Value, s.Threshold, pvt.MLCAll)
		case s.Value <= s.Threshold2:
			return fmt.Sprintf("%.4g <= %.4g -> %s", s.Value, s.Threshold2, pvt.MLCOne)
		default:
			return fmt.Sprintf("%.4g in (%.4g, %.4g] -> %s", s.Value, s.Threshold2, s.Threshold, pvt.MLCHalf)
		}
	}
	if s.Value > s.Threshold {
		return fmt.Sprintf("%.4g > %.4g -> on", s.Value, s.Threshold)
	}
	return fmt.Sprintf("%.4g <= %.4g -> off", s.Value, s.Threshold)
}

// DecisionRecord is the full lineage of one policy registration: which
// phase, along which path, after how much profiling, with which scores
// against which thresholds, yielding which policy.
type DecisionRecord struct {
	// Phase is the phase signature ("<t1,t2,...>").
	Phase string `json:"phase"`
	// Window and Cycle locate the registration in simulated time.
	Window uint64  `json:"window"`
	Cycle  float64 `json:"cycle"`
	// Path is the registration path: "computed" (fresh profile),
	// "restored" (re-registered after eviction) or "abandoned"
	// (profiling gave up; the phase keeps its current policy).
	Path string `json:"path"`
	// Policy is the registered 4-bit vector; PolicyStr its decoded form.
	Policy    uint8  `json:"policy"`
	PolicyStr string `json:"policy_str"`
	// Scores are the criticality measurements behind a "computed"
	// decision, in unit order (empty for restored/abandoned).
	Scores []ScoreRecord `json:"scores,omitempty"`
	// ProfileWindows / Attempts are the windows consumed and CDE
	// invocations spent profiling (zero on the restored path).
	ProfileWindows uint64 `json:"profile_windows"`
	Attempts       uint64 `json:"attempts"`
	// LatencyWindows is the window distance from the phase's first PVT
	// miss to this registration — the decision latency.
	LatencyWindows uint64 `json:"latency_windows"`
}

// PhaseAttribution is one phase's share of the run: how long its
// decisions governed, what they saved and what they cost.
type PhaseAttribution struct {
	Phase string `json:"phase"`
	// Policy is the phase's most recent policy vector.
	Policy    uint8  `json:"policy"`
	PolicyStr string `json:"policy_str"`
	// Windows / Insns / Cycles measure the spans this phase's decision
	// governed.
	Windows uint64  `json:"windows"`
	Insns   uint64  `json:"insns"`
	Cycles  float64 `json:"cycles"`
	// PVT path counts for the phase's signature.
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	// Decisions counts this phase's registration records.
	Decisions uint64 `json:"decisions"`
	// Transitions and GateStallCycles are the gating transitions (and
	// their stalls) enacted while this phase governed.
	Transitions     uint64  `json:"transitions"`
	GateStallCycles float64 `json:"gate_stall_cycles"`
	// CDECycles is the CDE invocation cost charged while this phase
	// governed (its own misses' interrupts).
	CDECycles float64 `json:"cde_cycles"`
	// GatedCycles integrates (1 − powerFrac) per unit over the phase's
	// spans; EnergySavedJ converts it to leakage energy saved.
	GatedCycles  map[string]float64 `json:"gated_cycles"`
	EnergySavedJ map[string]float64 `json:"energy_saved_j"`
	// EnergySavedTotalJ sums EnergySavedJ across units.
	EnergySavedTotalJ float64 `json:"energy_saved_total_j"`
	// OverheadCycles is the slowdown the phase's decisions incurred
	// (gate stalls plus CDE invocations); OverheadJ is the whole-core
	// leakage burned during those cycles.
	OverheadCycles float64 `json:"overhead_cycles"`
	OverheadJ      float64 `json:"overhead_j"`
}

// Trail is the auditor's snapshot: the attribution table, every decision
// record, and the per-unit totals.
type Trail struct {
	ClockHz float64  `json:"clock_hz"`
	Units   []string `json:"units"`
	// Phases in order of first appearance ("(boot)" first when present).
	Phases []PhaseAttribution `json:"phases"`
	// Decisions in registration order.
	Decisions []DecisionRecord `json:"decisions"`
	// EnergySavedJ sums attributed savings per unit across phases;
	// EnergySavedTotalJ across units; OverheadJ the total slowdown cost.
	EnergySavedJ      map[string]float64 `json:"energy_saved_j"`
	EnergySavedTotalJ float64            `json:"energy_saved_total_j"`
	OverheadJ         float64            `json:"overhead_j"`
	// Metrics is the audit histograms' snapshot when the auditor owns a
	// private registry; nil when Config.Registry was supplied (the
	// histograms then live in that registry).
	Metrics *obs.Snapshot `json:"metrics,omitempty"`
}

// phaseAgg is the mutable accumulator behind one PhaseAttribution.
type phaseAgg struct {
	att PhaseAttribution
}

// Auditor consumes the event stream and accumulates decision provenance.
// It is safe for concurrent emission (one mutex around all state), so a
// single auditor can observe several simulations at once — though
// attribution is only meaningful for a single run's ordered stream.
type Auditor struct {
	mu  sync.Mutex
	cfg Config

	unitNames []string
	leakW     map[string]float64

	reg    *obs.Registry
	ownReg bool

	hLatency   *obs.Histogram
	hResidency *obs.Histogram
	hScore     map[string]*obs.Histogram

	fracs     map[string]float64
	lastCycle float64
	governing *phaseAgg
	phases    map[string]*phaseAgg
	order     []*phaseAgg

	pending   []ScoreRecord
	decisions []DecisionRecord
	firstMiss map[string]uint64
	regWindow map[string]uint64
}

// New builds an auditor for the given design parameters.
func New(cfg Config) (*Auditor, error) {
	if cfg.ClockHz <= 0 {
		return nil, fmt.Errorf("audit: clock %v Hz", cfg.ClockHz)
	}
	if len(cfg.Units) == 0 {
		return nil, fmt.Errorf("audit: no units to attribute")
	}
	a := &Auditor{
		cfg:       cfg,
		leakW:     make(map[string]float64, len(cfg.Units)),
		fracs:     make(map[string]float64, len(cfg.Units)),
		phases:    make(map[string]*phaseAgg),
		hScore:    make(map[string]*obs.Histogram, len(cfg.Units)),
		firstMiss: make(map[string]uint64),
		regWindow: make(map[string]uint64),
	}
	for _, u := range cfg.Units {
		if u.Name == "" || u.LeakageW < 0 {
			return nil, fmt.Errorf("audit: bad unit spec %+v", u)
		}
		a.unitNames = append(a.unitNames, u.Name)
		a.leakW[u.Name] = u.LeakageW
		// Every unit starts fully powered at cycle 0 (gating.NewUnit).
		a.fracs[u.Name] = 1
	}
	a.reg = cfg.Registry
	if a.reg == nil {
		a.reg = obs.NewRegistry()
		a.ownReg = true
	}
	a.hLatency = a.reg.Histogram("audit.decision.latency.windows",
		1, 2, 3, 4, 6, 8, 12, 16, 32)
	a.hResidency = a.reg.Histogram("audit.pvt.residency.windows",
		1, 10, 100, 1e3, 1e4, 1e5)
	for _, u := range a.unitNames {
		a.hScore[u] = a.reg.Histogram("audit.score."+u,
			1e-4, 5e-4, 1e-3, 5e-3, 1e-2, 5e-2, 0.1, 0.5)
	}
	a.governing = a.phase(BootPhase)
	return a, nil
}

// MustNew is New for callers with static configs.
func MustNew(cfg Config) *Auditor {
	a, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return a
}

// phase returns the accumulator for key, creating it on first sight
// (under a.mu, except during New).
func (a *Auditor) phase(key string) *phaseAgg {
	p := a.phases[key]
	if p == nil {
		p = &phaseAgg{att: PhaseAttribution{
			Phase:        key,
			Policy:       pvt.FullOn.Encode(),
			PolicyStr:    pvt.FullOn.String(),
			GatedCycles:  make(map[string]float64, len(a.unitNames)),
			EnergySavedJ: make(map[string]float64, len(a.unitNames)),
		}}
		a.phases[key] = p
		a.order = append(a.order, p)
	}
	return p
}

// advance charges the span since the last audited cycle to the governing
// phase: wall cycles, plus per-unit gated cycles weighted by how far
// below full power each unit sat. Out-of-order cycles (retroactive
// timeout transitions, interleaved concurrent runs) are clamped.
func (a *Auditor) advance(cycle float64) {
	if cycle <= a.lastCycle {
		return
	}
	dt := cycle - a.lastCycle
	a.lastCycle = cycle
	a.governing.att.Cycles += dt
	for _, u := range a.unitNames {
		if f := a.fracs[u]; f < 1 {
			a.governing.att.GatedCycles[u] += (1 - f) * dt
		}
	}
}

// sigKey renders the event's phase signature as the attribution key.
func sigKey(e obs.Event) string {
	if s := e.SigString(); s != "" {
		return s
	}
	return "(none)"
}

// Emit implements obs.Tracer.
func (a *Auditor) Emit(e obs.Event) {
	a.mu.Lock()
	defer a.mu.Unlock()
	switch e.Kind {
	case obs.KindWindowClose:
		a.advance(e.Cycle)
		a.governing.att.Windows++
		a.governing.att.Insns += e.Count
	case obs.KindPVTHit:
		a.advance(e.Cycle)
		p := a.phase(sigKey(e))
		p.att.Hits++
		p.att.Policy = e.Policy
		p.att.PolicyStr = pvt.Decode(e.Policy).String()
		a.governing = p
	case obs.KindPVTMiss:
		a.advance(e.Cycle)
		key := sigKey(e)
		p := a.phase(key)
		p.att.Misses++
		if _, seen := a.firstMiss[key]; !seen {
			a.firstMiss[key] = e.Window
		}
		// The miss's outcome (profiling config or registered policy)
		// governs the next span either way; the registration events that
		// follow refine the policy.
		a.governing = p
	case obs.KindPVTEvict:
		key := sigKey(e)
		if p, ok := a.phases[key]; ok {
			p.att.Evictions++
		}
		if rw, ok := a.regWindow[key]; ok && e.Window >= rw {
			a.hResidency.Observe(float64(e.Window - rw))
		}
	case obs.KindCDEInvoke:
		// Stamped after the interrupt cost was charged, so the advance
		// attributes the CDE cycles to the phase that missed.
		a.advance(e.Cycle)
		a.governing.att.CDECycles += e.Value
	case obs.KindCDEScore:
		a.pending = append(a.pending, ScoreRecord{
			Unit:           e.Unit,
			Metric:         e.Detail,
			Value:          e.Value,
			Threshold:      e.Prev,
			Threshold2:     e.Next,
			Outcome:        e.Policy,
			ProfileWindows: e.Count,
		})
		if h, ok := a.hScore[e.Unit]; ok {
			h.Observe(e.Value)
		}
	case obs.KindCDERegister:
		a.advance(e.Cycle)
		key := sigKey(e)
		p := a.phase(key)
		rec := DecisionRecord{
			Phase:          key,
			Window:         e.Window,
			Cycle:          e.Cycle,
			Path:           e.Detail,
			Policy:         e.Policy,
			PolicyStr:      pvt.Decode(e.Policy).String(),
			Scores:         a.pending,
			ProfileWindows: uint64(e.Value),
			Attempts:       e.Count,
		}
		a.pending = nil
		if fm, ok := a.firstMiss[key]; ok && e.Window >= fm {
			rec.LatencyWindows = e.Window - fm
			delete(a.firstMiss, key)
		}
		a.hLatency.Observe(float64(rec.LatencyWindows))
		a.decisions = append(a.decisions, rec)
		p.att.Decisions++
		p.att.Policy = e.Policy
		p.att.PolicyStr = rec.PolicyStr
		a.regWindow[key] = e.Window
		a.governing = p
	case obs.KindGate:
		a.advance(e.Cycle)
		if _, known := a.fracs[e.Unit]; known {
			a.fracs[e.Unit] = e.Next
		}
		a.governing.att.Transitions++
		a.governing.att.GateStallCycles += e.Stall
	case obs.KindRunEnd:
		// Close the final span at exactly the simulator's close-out cycle.
		a.advance(e.Cycle)
	}
}

// Snapshot derives the Trail from the state accumulated so far. The
// auditor remains usable afterwards.
func (a *Auditor) Snapshot() *Trail {
	a.mu.Lock()
	defer a.mu.Unlock()
	t := &Trail{
		ClockHz:      a.cfg.ClockHz,
		Units:        append([]string(nil), a.unitNames...),
		EnergySavedJ: make(map[string]float64, len(a.unitNames)),
		Decisions:    append([]DecisionRecord(nil), a.decisions...),
	}
	savedFrac := 1 - power.GatedLeakageFrac
	for _, p := range a.order {
		att := p.att
		att.GatedCycles = make(map[string]float64, len(a.unitNames))
		att.EnergySavedJ = make(map[string]float64, len(a.unitNames))
		att.EnergySavedTotalJ = 0
		for _, u := range a.unitNames {
			gc := p.att.GatedCycles[u]
			att.GatedCycles[u] = gc
			saved := a.leakW[u] * savedFrac * gc / a.cfg.ClockHz
			att.EnergySavedJ[u] = saved
			att.EnergySavedTotalJ += saved
			t.EnergySavedJ[u] += saved
		}
		att.OverheadCycles = att.GateStallCycles + att.CDECycles
		att.OverheadJ = a.cfg.TotalLeakageW * att.OverheadCycles / a.cfg.ClockHz
		t.EnergySavedTotalJ += att.EnergySavedTotalJ
		t.OverheadJ += att.OverheadJ
		t.Phases = append(t.Phases, att)
	}
	if a.ownReg {
		t.Metrics = a.reg.Snapshot()
	}
	return t
}

// DecisionsJSON marshals the current Trail, implementing the serve
// layer's DecisionSource so /decisions?format=json can snapshot the
// auditor without importing this package.
func (a *Auditor) DecisionsJSON() ([]byte, error) {
	return json.MarshalIndent(a.Snapshot(), "", "  ")
}
