// Package span gives the service layer lightweight hierarchical spans:
// request → sweep → benchmark → sim. A span records who started what,
// under which parent, when, and for how long; begin/end pairs ride the
// ordinary obs event stream (KindSpanBegin / KindSpanEnd), so every
// existing sink — the JSONL recorder, the live fan-out hub, the Chrome
// trace exporter — sees the request tree without new plumbing.
//
// Spans are pure observers. They are propagated through context.Context,
// created only at request/run granularity (never inside the simulator's
// hot loop), and a nil *Span is a valid no-op receiver, so call sites
// need no branching. When no tracer is reachable — no monitor attached,
// no -trace sink — Start returns a nil span and the whole layer costs a
// context lookup.
//
// Unlike the rest of the event stream, span events are stamped with the
// wall clock (Unix microseconds in Event.Cycle), because they describe
// service time, not simulated time. obs.Stamped leaves them alone.
package span

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"strings"
	"sync/atomic"
	"time"

	"powerchop/internal/obs"
)

// ids allocates span IDs. Sequential IDs stay exact inside the float64
// Event.Value field that carries the parent link on the wire.
var ids atomic.Uint64

// now is the span clock (a seam for tests).
var now = time.Now

// Span is one node of a request tree. Create roots with Root, children
// with Start, and close every span with End or EndErr. All methods are
// safe on a nil receiver.
type Span struct {
	id     uint64
	parent uint64
	name   string
	reqID  string
	start  time.Time
	tracer obs.Tracer
	ended  atomic.Bool
}

type ctxKey struct{}

// NewContext returns a context carrying the span.
func NewContext(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, s)
}

// FromContext returns the span carried by ctx, or nil.
func FromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	s, _ := ctx.Value(ctxKey{}).(*Span)
	return s
}

// NewRequestID returns a fresh 16-hex-digit request identifier.
func NewRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// Fall back to a time+sequence stamp; uniqueness within the
		// process is all correlation needs.
		binary.BigEndian.PutUint64(b[:], uint64(now().UnixNano())^ids.Add(1)<<32)
	}
	return hex.EncodeToString(b[:])
}

// wallMicros renders a wall-clock instant as Unix microseconds, the
// timestamp unit span events carry in Event.Cycle.
func wallMicros(t time.Time) float64 { return float64(t.UnixMicro()) }

// Root opens a root span emitting to tracer and returns a context
// carrying it. requestID (optionally empty) correlates the span tree
// with HTTP access logs and the X-Request-Id response header; it is
// recorded as a "req=" attribute on the begin event and inherited by
// every descendant. A nil tracer returns (ctx, nil): spans only exist
// where something can observe them.
func Root(ctx context.Context, tracer obs.Tracer, name, requestID string, attrs ...string) (context.Context, *Span) {
	if tracer == nil {
		return ctx, nil
	}
	s := begin(tracer, 0, name, requestID, attrs)
	return NewContext(ctx, s), s
}

// Start opens a child of the span carried by ctx, inheriting its tracer
// and request ID, and returns a context carrying the child. When ctx
// carries no span it returns (ctx, nil) — the caller's End becomes a
// no-op and nothing is emitted.
func Start(ctx context.Context, name string, attrs ...string) (context.Context, *Span) {
	parent := FromContext(ctx)
	if parent == nil {
		return ctx, nil
	}
	s := begin(parent.tracer, parent.id, name, parent.reqID, attrs)
	return NewContext(ctx, s), s
}

// begin allocates a span and emits its begin event.
func begin(tracer obs.Tracer, parent uint64, name, reqID string, attrs []string) *Span {
	s := &Span{
		id:     ids.Add(1),
		parent: parent,
		name:   name,
		reqID:  reqID,
		start:  now(),
		tracer: tracer,
	}
	detail := renderAttrs(reqID, attrs)
	s.tracer.Emit(obs.Event{
		Kind:   obs.KindSpanBegin,
		Cycle:  wallMicros(s.start),
		Unit:   name,
		Detail: detail,
		Count:  s.id,
		Value:  float64(parent),
	})
	return s
}

// renderAttrs joins the request id and "k=v" attribute strings into the
// begin event's Detail field.
func renderAttrs(reqID string, attrs []string) string {
	parts := make([]string, 0, len(attrs)+1)
	if reqID != "" {
		parts = append(parts, "req="+reqID)
	}
	parts = append(parts, attrs...)
	return strings.Join(parts, " ")
}

// ID returns the span's identifier (0 for nil).
func (s *Span) ID() uint64 {
	if s == nil {
		return 0
	}
	return s.id
}

// RequestID returns the request identifier the span tree was rooted
// with ("" for nil or untagged roots).
func (s *Span) RequestID() string {
	if s == nil {
		return ""
	}
	return s.reqID
}

// Name returns the span's name ("" for nil).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// End closes the span, emitting its end event. Safe on nil and
// idempotent: only the first End/EndErr emits.
func (s *Span) End() { s.end("") }

// EndErr closes the span recording the outcome: a non-nil err lands in
// the end event's Detail as "error=<msg>".
func (s *Span) EndErr(err error) {
	if err != nil {
		s.end("error=" + err.Error())
		return
	}
	s.end("")
}

func (s *Span) end(detail string) {
	if s == nil || s.ended.Swap(true) {
		return
	}
	t := now()
	s.tracer.Emit(obs.Event{
		Kind:   obs.KindSpanEnd,
		Cycle:  wallMicros(t),
		Unit:   s.name,
		Detail: detail,
		Count:  s.id,
		Value:  float64(t.Sub(s.start)) / float64(time.Microsecond),
	})
}
