package span

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"powerchop/internal/obs"
)

// capture is a tracer that retains every event.
type capture struct {
	mu     sync.Mutex
	events []obs.Event
}

func (c *capture) Emit(e obs.Event) {
	c.mu.Lock()
	c.events = append(c.events, e)
	c.mu.Unlock()
}

func (c *capture) all() []obs.Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]obs.Event(nil), c.events...)
}

// fixClock pins the span clock to a deterministic sequence advancing by
// step per call, restoring the real clock on cleanup.
func fixClock(t *testing.T, start time.Time, step time.Duration) {
	t.Helper()
	var mu sync.Mutex
	cur := start
	now = func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		v := cur
		cur = cur.Add(step)
		return v
	}
	t.Cleanup(func() { now = time.Now })
}

func TestRootAndChildLifecycle(t *testing.T) {
	fixClock(t, time.UnixMicro(1_000_000), 250*time.Microsecond)
	var c capture

	ctx, root := Root(context.Background(), &c, "request", "abc123", "method=GET")
	if root == nil {
		t.Fatal("Root with live tracer returned nil span")
	}
	childCtx, child := Start(ctx, "benchmark", "bench=namd")
	if child == nil {
		t.Fatal("Start under a root returned nil span")
	}
	_, grand := Start(childCtx, "sim")
	grand.End()
	child.End()
	root.End()

	ev := c.all()
	if len(ev) != 6 {
		t.Fatalf("expected 6 events (3 begin + 3 end), got %d: %+v", len(ev), ev)
	}

	// Begin events, in creation order.
	begins := map[string]obs.Event{}
	ends := map[string]obs.Event{}
	for _, e := range ev {
		switch e.Kind {
		case obs.KindSpanBegin:
			begins[e.Unit] = e
		case obs.KindSpanEnd:
			ends[e.Unit] = e
		default:
			t.Fatalf("unexpected kind %v", e.Kind)
		}
	}

	rb, bb, sb := begins["request"], begins["benchmark"], begins["sim"]
	if rb.Value != 0 {
		t.Errorf("root parent = %v, want 0", rb.Value)
	}
	if bb.Value != float64(rb.Count) {
		t.Errorf("benchmark parent = %v, want root id %d", bb.Value, rb.Count)
	}
	if sb.Value != float64(bb.Count) {
		t.Errorf("sim parent = %v, want benchmark id %d", sb.Value, bb.Count)
	}
	if !strings.Contains(rb.Detail, "req=abc123") || !strings.Contains(rb.Detail, "method=GET") {
		t.Errorf("root detail %q missing request id or attrs", rb.Detail)
	}
	if !strings.Contains(bb.Detail, "req=abc123") {
		t.Errorf("child detail %q did not inherit request id", bb.Detail)
	}
	if child.RequestID() != "abc123" || grand.RequestID() != "abc123" {
		t.Error("descendants did not inherit request ID")
	}

	// Timestamps are wall-clock Unix microseconds from the pinned clock.
	if rb.Cycle != 1_000_000 {
		t.Errorf("root begin cycle = %v, want 1000000", rb.Cycle)
	}
	// Ends carry matching IDs and positive durations.
	for name, b := range begins {
		e, ok := ends[name]
		if !ok {
			t.Fatalf("span %q never ended", name)
		}
		if e.Count != b.Count {
			t.Errorf("span %q end id %d != begin id %d", name, e.Count, b.Count)
		}
		if e.Value <= 0 {
			t.Errorf("span %q duration %v, want > 0", name, e.Value)
		}
		if e.Cycle <= b.Cycle {
			t.Errorf("span %q end cycle %v not after begin %v", name, e.Cycle, b.Cycle)
		}
	}
}

func TestNilTracerAndNilSpanAreNoOps(t *testing.T) {
	ctx, s := Root(context.Background(), nil, "request", "id")
	if s != nil {
		t.Fatal("Root with nil tracer should return nil span")
	}
	if FromContext(ctx) != nil {
		t.Fatal("nil span must not be stored in context")
	}
	// Children of nothing are nothing; all methods tolerate nil.
	ctx2, child := Start(ctx, "benchmark")
	if child != nil {
		t.Fatal("Start without a parent should return nil span")
	}
	if ctx2 != ctx {
		t.Fatal("Start without a parent should return ctx unchanged")
	}
	child.End()
	child.EndErr(errors.New("x"))
	if child.ID() != 0 || child.RequestID() != "" || child.Name() != "" {
		t.Fatal("nil span accessors must return zero values")
	}
	s.End() // nil root
}

func TestEndIdempotentAndErrorDetail(t *testing.T) {
	var c capture
	_, s := Root(context.Background(), &c, "request", "")
	s.EndErr(errors.New("boom"))
	s.End()
	s.EndErr(errors.New("again"))

	ev := c.all()
	if len(ev) != 2 {
		t.Fatalf("expected exactly begin+end, got %d events", len(ev))
	}
	end := ev[1]
	if end.Kind != obs.KindSpanEnd {
		t.Fatalf("second event kind = %v, want span-end", end.Kind)
	}
	if end.Detail != "error=boom" {
		t.Errorf("end detail = %q, want error=boom", end.Detail)
	}
	// Empty request ID leaves Detail on begin bare.
	if ev[0].Detail != "" {
		t.Errorf("begin detail = %q, want empty for untagged root", ev[0].Detail)
	}
}

func TestStampedPassesSpansThrough(t *testing.T) {
	// Span events routed through the simulator's Stamped wrapper must
	// keep their wall-clock timestamps.
	var c capture
	tr := obs.Stamped(&c, func() (float64, uint64) { return 42, 7 })
	_, s := Root(context.Background(), tr, "sim", "")
	s.End()
	for _, e := range c.all() {
		if e.Cycle == 42 || e.Window == 7 {
			t.Fatalf("span event got sim-clock stamped: %+v", e)
		}
		if e.Cycle < 1e12 {
			t.Fatalf("span event cycle %v is not wall-clock microseconds", e.Cycle)
		}
	}
}

func TestNewRequestID(t *testing.T) {
	a, b := NewRequestID(), NewRequestID()
	if len(a) != 16 || len(b) != 16 {
		t.Fatalf("request IDs %q/%q are not 16 hex chars", a, b)
	}
	if a == b {
		t.Fatal("consecutive request IDs collided")
	}
}
