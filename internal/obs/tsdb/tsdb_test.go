package tsdb

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
)

func testConfig() Config {
	return Config{Levels: []LevelSpec{
		{Bucket: 1, Retain: 4},
		{Bucket: 2, Retain: 3},
		{Bucket: 4, Retain: 2},
	}}
}

func TestStoreEmpty(t *testing.T) {
	s := NewStore(DefaultConfig())
	if names := s.SeriesNames(); len(names) != 0 {
		t.Fatalf("empty store lists series: %v", names)
	}
	if info := s.Info(); len(info) != 0 {
		t.Fatalf("empty store has info: %v", info)
	}
	if _, err := s.Query(Query{Series: "nope"}); err == nil {
		t.Fatal("query of unknown series should error")
	}
}

func TestStoreSingleSample(t *testing.T) {
	s := NewStore(testConfig())
	s.Append("x", 1, 100, 2.5)
	res, err := s.Query(Query{Series: "x"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 1 || res.Bucket != 1 {
		t.Fatalf("want one raw point, got %+v", res)
	}
	p := res.Points[0]
	if p.Window != 1 || p.End != 1 || p.Cycle != 100 || p.Value != 2.5 ||
		p.Min != 2.5 || p.Max != 2.5 || p.Mean != 2.5 || p.Last != 2.5 || p.Count != 1 {
		t.Fatalf("bad point: %+v", p)
	}
	// Every level holds the sample.
	for _, b := range []uint64{1, 2, 4} {
		if got := s.LevelBuckets("x", b); len(got) != 1 || got[0].Count != 1 {
			t.Fatalf("level %d: %+v", b, got)
		}
	}
}

func TestStoreBucketBoundariesAndAggregates(t *testing.T) {
	s := NewStore(testConfig())
	// Windows 1..4, values 10,20,30,40.
	for w := uint64(1); w <= 4; w++ {
		s.Append("x", w, float64(w*100), float64(w*10))
	}
	// Level 2 keeps [1,2] and [3,4].
	bs := s.LevelBuckets("x", 2)
	want := []Bucket{
		{Start: 1, End: 2, Count: 2, Min: 10, Max: 20, Sum: 30, Last: 20, Cycle: 200},
		{Start: 3, End: 4, Count: 2, Min: 30, Max: 40, Sum: 70, Last: 40, Cycle: 400},
	}
	if !reflect.DeepEqual(bs, want) {
		t.Fatalf("level-2 buckets:\n got %+v\nwant %+v", bs, want)
	}
	// Aggregators over the level-2 buckets.
	for agg, wantVals := range map[string][]float64{
		AggMean:  {15, 35},
		AggMin:   {10, 30},
		AggMax:   {20, 40},
		AggLast:  {20, 40},
		AggSum:   {30, 70},
		AggCount: {2, 2},
	} {
		res, err := s.Query(Query{Series: "x", Step: 2, Agg: agg})
		if err != nil {
			t.Fatal(err)
		}
		if res.Bucket != 2 {
			t.Fatalf("%s: answered from level %d, want 2", agg, res.Bucket)
		}
		var got []float64
		for _, p := range res.Points {
			got = append(got, p.Value)
		}
		if !reflect.DeepEqual(got, wantVals) {
			t.Fatalf("%s: got %v want %v", agg, got, wantVals)
		}
	}
	if _, err := s.Query(Query{Series: "x", Agg: "median"}); err == nil {
		t.Fatal("unknown aggregator should error")
	}
}

func TestStoreLevelSelection(t *testing.T) {
	s := NewStore(testConfig())
	s.Append("x", 1, 1, 1)
	for step, wantBucket := range map[uint64]uint64{0: 1, 1: 1, 2: 2, 3: 2, 4: 4, 100: 4} {
		res, err := s.Query(Query{Series: "x", Step: step})
		if err != nil {
			t.Fatal(err)
		}
		if res.Bucket != wantBucket {
			t.Fatalf("step %d: answered from level %d, want %d", step, res.Bucket, wantBucket)
		}
	}
}

func TestStoreRangeBounds(t *testing.T) {
	s := NewStore(testConfig())
	// Raw retention is 4: windows 5..8 survive, cycles 500..800.
	for w := uint64(1); w <= 8; w++ {
		s.Append("x", w, float64(w*100), float64(w))
	}
	cases := []struct {
		q    Query
		want []uint64 // surviving window ordinals
	}{
		{Query{Series: "x"}, []uint64{5, 6, 7, 8}},
		{Query{Series: "x", From: 6}, []uint64{6, 7, 8}},
		{Query{Series: "x", To: 6}, []uint64{5, 6}},
		{Query{Series: "x", From: 6, To: 7}, []uint64{6, 7}},
		{Query{Series: "x", From: 100}, nil},
		{Query{Series: "x", FromCycle: 650}, []uint64{7, 8}},
		{Query{Series: "x", ToCycle: 650}, []uint64{5, 6}},
		{Query{Series: "x", FromCycle: 550, ToCycle: 750, From: 7}, []uint64{7}},
	}
	for _, c := range cases {
		res, err := s.Query(c.q)
		if err != nil {
			t.Fatal(err)
		}
		var got []uint64
		for _, p := range res.Points {
			got = append(got, p.Window)
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Fatalf("query %+v: got windows %v want %v", c.q, got, c.want)
		}
	}
}

// TestStoreRetentionEviction drives enough windows through a small store
// that every level wraps its ring, and checks each level keeps exactly
// its newest Retain buckets with deterministic boundaries.
func TestStoreRetentionEviction(t *testing.T) {
	s := NewStore(testConfig())
	const windows = 20
	for w := uint64(1); w <= windows; w++ {
		s.Append("x", w, float64(w), float64(w))
	}
	wantRanges := map[uint64][][2]uint64{
		1: {{17, 17}, {18, 18}, {19, 19}, {20, 20}},
		2: {{15, 16}, {17, 18}, {19, 20}},
		4: {{13, 16}, {17, 20}},
	}
	for bucket, ranges := range wantRanges {
		bs := s.LevelBuckets("x", bucket)
		if len(bs) != len(ranges) {
			t.Fatalf("level %d holds %d buckets, want %d: %+v", bucket, len(bs), len(ranges), bs)
		}
		for i, r := range ranges {
			if bs[i].Start != r[0] || bs[i].End != r[1] {
				t.Fatalf("level %d bucket %d covers [%d,%d], want [%d,%d]",
					bucket, i, bs[i].Start, bs[i].End, r[0], r[1])
			}
			if bs[i].Count != bucket {
				t.Fatalf("level %d bucket %d folded %d samples, want %d", bucket, i, bs[i].Count, bucket)
			}
		}
	}
	info := s.Info()
	if len(info) != 1 || info[0].Samples != windows {
		t.Fatalf("info: %+v", info)
	}
	if lv := info[0].Levels[0]; lv.Start != 17 || lv.End != 20 || lv.Buckets != 4 {
		t.Fatalf("raw level info: %+v", lv)
	}
}

// TestStoreDeterministicReplay replays the same sample stream into two
// stores and requires byte-identical level contents at every level.
func TestStoreDeterministicReplay(t *testing.T) {
	build := func() *Store {
		s := NewStore(testConfig())
		for w := uint64(1); w <= 37; w++ {
			s.Append("a", w, float64(w)*1.5, float64((w*7)%13))
			if w%3 == 0 {
				s.Append("b", w, float64(w)*1.5, float64(w))
			}
		}
		return s
	}
	s1, s2 := build(), build()
	for _, name := range s1.SeriesNames() {
		for _, spec := range testConfig().Levels {
			b1 := s1.LevelBuckets(name, spec.Bucket)
			b2 := s2.LevelBuckets(name, spec.Bucket)
			if fmt.Sprintf("%+v", b1) != fmt.Sprintf("%+v", b2) {
				t.Fatalf("series %s level %d diverged:\n%+v\n%+v", name, spec.Bucket, b1, b2)
			}
		}
	}
	if !reflect.DeepEqual(s1.Info(), s2.Info()) {
		t.Fatal("replayed stores report different info")
	}
}

// TestStoreConcurrentIngestQuery hammers one store with concurrent
// appends and queries; run under -race this is the data-race check.
func TestStoreConcurrentIngestQuery(t *testing.T) {
	s := NewStore(testConfig())
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for w := uint64(1); w <= 5000; w++ {
			s.Append("x", w, float64(w), float64(w%17))
		}
		close(stop)
	}()
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if res, err := s.Query(Query{Series: "x", Step: 2, Agg: AggMax}); err == nil {
					for _, p := range res.Points {
						if p.Max > 16 {
							panic("impossible max")
						}
					}
				}
				s.Info()
				s.SeriesNames()
			}
		}()
	}
	wg.Wait()
	if got := s.LevelBuckets("x", 1); len(got) != 4 {
		t.Fatalf("raw level after concurrent ingest: %+v", got)
	}
}

func TestNewStorePanics(t *testing.T) {
	for _, cfg := range []Config{
		{},
		{Levels: []LevelSpec{{Bucket: 0, Retain: 1}}},
		{Levels: []LevelSpec{{Bucket: 1, Retain: 0}}},
		{Levels: []LevelSpec{{Bucket: 2, Retain: 1}, {Bucket: 2, Retain: 1}}},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewStore(%+v) did not panic", cfg)
				}
			}()
			NewStore(cfg)
		}()
	}
}

// TestLatestWindow pins the boundary-finality watermark the alert
// evaluator keys on: it tracks the highest window appended to any
// series and never runs backwards on out-of-order appends.
func TestLatestWindow(t *testing.T) {
	s := NewStore(testConfig())
	if got := s.LatestWindow(); got != 0 {
		t.Fatalf("empty store LatestWindow = %d", got)
	}
	s.Append("x", 3, 300, 1)
	s.Append("y", 7, 700, 2)
	if got := s.LatestWindow(); got != 7 {
		t.Fatalf("LatestWindow = %d, want 7", got)
	}
	// An out-of-order append (interleaved runs) must not rewind it.
	s.Append("x", 5, 500, 3)
	if got := s.LatestWindow(); got != 7 {
		t.Fatalf("LatestWindow after out-of-order append = %d, want 7", got)
	}
}

// TestAppendBatch checks the batch commit lands every sample and
// advances the watermark exactly like the equivalent Append sequence.
func TestAppendBatch(t *testing.T) {
	s := NewStore(testConfig())
	s.AppendBatch([]Sample{
		{Series: "a", Window: 2, Cycle: 200, Value: 1},
		{Series: "b", Window: 2, Cycle: 200, Value: 5},
		{Series: "a", Window: 3, Cycle: 300, Value: 2},
	})
	if got := s.LatestWindow(); got != 3 {
		t.Fatalf("LatestWindow = %d, want 3", got)
	}
	res, err := s.Query(Query{Series: "a"})
	if err != nil || len(res.Points) != 2 {
		t.Fatalf("series a: %v %+v", err, res)
	}
	if res.Points[1].Value != 2 {
		t.Fatalf("series a points: %+v", res.Points)
	}
	if res, err := s.Query(Query{Series: "b"}); err != nil || len(res.Points) != 1 || res.Points[0].Value != 5 {
		t.Fatalf("series b: %v %+v", err, res)
	}
}
