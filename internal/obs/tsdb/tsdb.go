// Package tsdb is an embedded, bounded-memory time-series store for
// per-window telemetry. It ingests scalar samples keyed by series name
// and window ordinal into multi-resolution levels: the raw level keeps
// one bucket per window, coarser levels fold a fixed number of windows
// into one bucket, and every bucket keeps count/min/max/sum/last so any
// aggregate a query asks for is answerable at any resolution. Each level
// is a ring with its own retention, so memory is bounded no matter how
// long a run (or a sequence of runs) streams.
//
// Bucket boundaries are deterministic functions of the window ordinal —
// bucket i of a level with width w covers windows [i*w+1, (i+1)*w] —
// so replaying the same event stream reproduces byte-identical level
// contents. The store is safe for concurrent ingest and query.
//
// Like every obs sink, the store is a pure observer: it is fed from the
// simulator's event stream (see Ingestor) and never feeds back, so
// attaching one cannot change simulation output.
package tsdb

import (
	"fmt"
	"sort"
	"sync"
)

// LevelSpec configures one resolution level.
type LevelSpec struct {
	// Bucket is the level's bucket width in windows (1 = raw).
	Bucket uint64
	// Retain is the number of buckets the level keeps; older buckets are
	// evicted ring-style.
	Retain int
}

// Config configures a Store.
type Config struct {
	// Levels lists the resolution levels, finest first. Bucket widths
	// must be positive and strictly increasing.
	Levels []LevelSpec
}

// DefaultConfig returns the standard three-level layout: 4096 raw
// windows, 2048 buckets of 32 windows, and 1024 buckets of 1024 windows
// (per series roughly 0.5 MiB; coarse history spans ~1M windows).
func DefaultConfig() Config {
	return Config{Levels: []LevelSpec{
		{Bucket: 1, Retain: 4096},
		{Bucket: 32, Retain: 2048},
		{Bucket: 1024, Retain: 1024},
	}}
}

// Bucket is one aggregated bucket of a level: the windows it covers and
// the running aggregates of every sample that landed in it.
type Bucket struct {
	// Start and End are the first and last window ordinals the bucket
	// covers (inclusive; equal on the raw level).
	Start uint64 `json:"start"`
	End   uint64 `json:"end"`
	// Count is the number of samples folded into the bucket.
	Count uint64 `json:"count"`
	// Min, Max, Sum and Last aggregate the folded samples.
	Min  float64 `json:"min"`
	Max  float64 `json:"max"`
	Sum  float64 `json:"sum"`
	Last float64 `json:"last"`
	// Cycle is the simulated cycle of the bucket's last sample.
	Cycle float64 `json:"cycle"`
}

// Mean returns the bucket's mean sample value.
func (b Bucket) Mean() float64 {
	if b.Count == 0 {
		return 0
	}
	return b.Sum / float64(b.Count)
}

// level is one ring of buckets.
type level struct {
	spec LevelSpec
	// ring holds the buckets oldest-first once unwrapped; head indexes
	// the oldest occupied slot and n counts occupied slots.
	ring []Bucket
	head int
	n    int
}

func (l *level) last() *Bucket {
	if l.n == 0 {
		return nil
	}
	return &l.ring[(l.head+l.n-1)%len(l.ring)]
}

func (l *level) push(b Bucket) {
	if l.n < len(l.ring) {
		l.ring[(l.head+l.n)%len(l.ring)] = b
		l.n++
		return
	}
	// Full: overwrite the oldest slot and advance.
	l.ring[l.head] = b
	l.head = (l.head + 1) % len(l.ring)
}

// append folds one sample into the level, opening a new bucket when the
// window crosses a bucket boundary. Windows never move backwards: a
// sample older than the current bucket is clamped into it, so interleaved
// streams cannot corrupt boundary determinism (single-run streams are
// monotonic and never clamp).
func (l *level) append(window uint64, cycle, v float64) {
	idx := (window - 1) / l.spec.Bucket
	if cur := l.last(); cur != nil {
		curIdx := (cur.Start - 1) / l.spec.Bucket
		if idx <= curIdx {
			cur.Count++
			if v < cur.Min {
				cur.Min = v
			}
			if v > cur.Max {
				cur.Max = v
			}
			cur.Sum += v
			cur.Last = v
			cur.Cycle = cycle
			return
		}
	}
	l.push(Bucket{
		Start: idx*l.spec.Bucket + 1,
		End:   (idx + 1) * l.spec.Bucket,
		Count: 1,
		Min:   v, Max: v, Sum: v, Last: v,
		Cycle: cycle,
	})
}

// buckets returns the level's occupied buckets oldest-first.
func (l *level) buckets() []Bucket {
	out := make([]Bucket, 0, l.n)
	for i := 0; i < l.n; i++ {
		out = append(out, l.ring[(l.head+i)%len(l.ring)])
	}
	return out
}

// series is one named series: the same samples at every level.
type series struct {
	name    string
	samples uint64
	levels  []*level
}

// Store is the time-series store. The zero value is not usable; use
// NewStore.
type Store struct {
	cfg Config

	mu     sync.RWMutex
	series map[string]*series
	latest uint64
}

// NewStore builds a store with the given level layout. It panics on an
// invalid layout (no levels, non-positive widths or retention, widths
// not strictly increasing) — level layout is a programming decision, not
// an input.
func NewStore(cfg Config) *Store {
	if len(cfg.Levels) == 0 {
		panic("tsdb: config needs at least one level")
	}
	prev := uint64(0)
	for _, l := range cfg.Levels {
		if l.Bucket == 0 || l.Retain <= 0 {
			panic(fmt.Sprintf("tsdb: invalid level %+v", l))
		}
		if l.Bucket <= prev {
			panic("tsdb: level bucket widths must be strictly increasing")
		}
		prev = l.Bucket
	}
	return &Store{cfg: cfg, series: map[string]*series{}}
}

// Append folds one sample — series name, window ordinal (1-based),
// simulated cycle, value — into every level. Unknown series are created
// on first append.
func (s *Store) Append(name string, window uint64, cycle, v float64) {
	s.mu.Lock()
	s.appendLocked(name, window, cycle, v)
	s.mu.Unlock()
}

// Sample is one batch entry for AppendBatch.
type Sample struct {
	Series string
	Window uint64
	Cycle  float64
	Value  float64
}

// AppendBatch appends a set of samples atomically with respect to
// readers: a query or LatestWindow call never observes part of a
// batch. The telemetry ingestor commits each window's row through it,
// so the alert evaluator's boundary watermark only ever advances over
// complete rows — the invariant behind live/offline transition
// identity.
func (s *Store) AppendBatch(batch []Sample) {
	s.mu.Lock()
	for _, sm := range batch {
		s.appendLocked(sm.Series, sm.Window, sm.Cycle, sm.Value)
	}
	s.mu.Unlock()
}

// appendLocked folds one sample in. Caller holds mu.
func (s *Store) appendLocked(name string, window uint64, cycle, v float64) {
	if window == 0 {
		window = 1
	}
	if window > s.latest {
		s.latest = window
	}
	sr := s.series[name]
	if sr == nil {
		sr = &series{name: name, levels: make([]*level, len(s.cfg.Levels))}
		for i, spec := range s.cfg.Levels {
			sr.levels[i] = &level{spec: spec, ring: make([]Bucket, spec.Retain)}
		}
		s.series[name] = sr
	}
	sr.samples++
	for _, l := range sr.levels {
		l.append(window, cycle, v)
	}
}

// LatestWindow returns the highest window ordinal ever appended, across
// all series (0 when the store is empty). The alert evaluator keys its
// deterministic evaluation boundaries on it: a raw-level bucket for
// window w is final once LatestWindow reaches w, because ingestion is
// ordered by window, so any evaluation at a boundary ≤ LatestWindow
// reads data that will never change (until it ages out of retention).
func (s *Store) LatestWindow() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.latest
}

// SeriesNames returns every series name, sorted.
func (s *Store) SeriesNames() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.series))
	for name := range s.series {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// LevelInfo describes one level of one series for discovery.
type LevelInfo struct {
	// Bucket is the level's bucket width in windows, Retain its
	// capacity and Buckets its current occupancy.
	Bucket  uint64 `json:"bucket"`
	Retain  int    `json:"retain"`
	Buckets int    `json:"buckets"`
	// Start and End are the window range currently held (0 when empty).
	Start uint64 `json:"start"`
	End   uint64 `json:"end"`
}

// SeriesInfo describes one series for discovery (/api/series).
type SeriesInfo struct {
	Name string `json:"name"`
	// Samples is the total number of samples ever appended.
	Samples uint64      `json:"samples"`
	Levels  []LevelInfo `json:"levels"`
}

// Info describes every series, sorted by name.
func (s *Store) Info() []SeriesInfo {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]SeriesInfo, 0, len(s.series))
	for _, sr := range s.series {
		info := SeriesInfo{Name: sr.name, Samples: sr.samples}
		for _, l := range sr.levels {
			li := LevelInfo{Bucket: l.spec.Bucket, Retain: l.spec.Retain, Buckets: l.n}
			if l.n > 0 {
				bs := l.buckets()
				li.Start = bs[0].Start
				li.End = bs[len(bs)-1].End
			}
			info.Levels = append(info.Levels, li)
		}
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// LevelBuckets returns a copy of the occupied buckets of the level with
// the given bucket width for a series, oldest-first (nil when the series
// or level does not exist). Tests use it to assert level contents
// reproduce deterministically.
func (s *Store) LevelBuckets(name string, bucket uint64) []Bucket {
	s.mu.RLock()
	defer s.mu.RUnlock()
	sr := s.series[name]
	if sr == nil {
		return nil
	}
	for _, l := range sr.levels {
		if l.spec.Bucket == bucket {
			return l.buckets()
		}
	}
	return nil
}

// Levels returns the store's level layout.
func (s *Store) Levels() []LevelSpec {
	return append([]LevelSpec(nil), s.cfg.Levels...)
}

// Aggregators, in the order /api/query documents them.
const (
	AggMean  = "mean"
	AggMin   = "min"
	AggMax   = "max"
	AggLast  = "last"
	AggSum   = "sum"
	AggCount = "count"
)

// Query selects a window range of one series at a resolution.
type Query struct {
	// Series is the series name (required).
	Series string
	// From and To bound the window range, inclusive; zero means
	// unbounded on that side.
	From, To uint64
	// FromCycle and ToCycle bound the range by simulated cycle instead
	// (matched against each bucket's last-sample cycle); zero means
	// unbounded. Window and cycle bounds compose (intersection).
	FromCycle, ToCycle float64
	// Step is the desired resolution in windows per point. The query
	// answers from the coarsest level whose bucket width does not exceed
	// Step (0 picks the raw level).
	Step uint64
	// Agg picks the per-bucket aggregate reported as each point's Value:
	// mean (default), min, max, last, sum or count.
	Agg string
}

// Point is one query result point: a bucket's window range and its
// aggregates, with Value carrying the requested aggregate.
type Point struct {
	// Window and End are the bucket's window range (inclusive).
	Window uint64 `json:"window"`
	End    uint64 `json:"end"`
	// Cycle is the simulated cycle of the bucket's last sample.
	Cycle float64 `json:"cycle"`
	// Value is the requested aggregate; the raw aggregates ride along.
	Value float64 `json:"value"`
	Count uint64  `json:"samples"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	Mean  float64 `json:"mean"`
	Last  float64 `json:"last"`
}

// Result is a query's answer.
type Result struct {
	// Series and Agg echo the query; Bucket is the width of the level
	// that answered.
	Series string  `json:"series"`
	Agg    string  `json:"agg"`
	Bucket uint64  `json:"bucket"`
	Points []Point `json:"points"`
}

// Query answers a range query. It returns an error for an unknown
// series or aggregator; an empty range is an empty result, not an error.
func (s *Store) Query(q Query) (*Result, error) {
	agg := q.Agg
	if agg == "" {
		agg = AggMean
	}
	switch agg {
	case AggMean, AggMin, AggMax, AggLast, AggSum, AggCount:
	default:
		return nil, fmt.Errorf("tsdb: unknown aggregator %q", q.Agg)
	}

	s.mu.RLock()
	defer s.mu.RUnlock()
	sr := s.series[q.Series]
	if sr == nil {
		return nil, fmt.Errorf("tsdb: unknown series %q", q.Series)
	}

	// Coarsest level that still meets the requested step. Levels are
	// finest-first, so keep upgrading while the next level fits.
	lvl := sr.levels[0]
	for _, l := range sr.levels[1:] {
		if q.Step >= l.spec.Bucket {
			lvl = l
		}
	}

	res := &Result{Series: q.Series, Agg: agg, Bucket: lvl.spec.Bucket}
	for _, b := range lvl.buckets() {
		if q.From != 0 && b.End < q.From {
			continue
		}
		if q.To != 0 && b.Start > q.To {
			continue
		}
		if q.FromCycle != 0 && b.Cycle < q.FromCycle {
			continue
		}
		if q.ToCycle != 0 && b.Cycle > q.ToCycle {
			continue
		}
		p := Point{
			Window: b.Start, End: b.End, Cycle: b.Cycle,
			Count: b.Count, Min: b.Min, Max: b.Max, Mean: b.Mean(), Last: b.Last,
		}
		switch agg {
		case AggMean:
			p.Value = p.Mean
		case AggMin:
			p.Value = b.Min
		case AggMax:
			p.Value = b.Max
		case AggLast:
			p.Value = b.Last
		case AggSum:
			p.Value = b.Sum
		case AggCount:
			p.Value = float64(b.Count)
		}
		res.Points = append(res.Points, p)
	}
	return res, nil
}
