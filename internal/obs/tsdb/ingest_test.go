package tsdb

import (
	"fmt"
	"reflect"
	"testing"

	"powerchop/internal/obs"
)

// syntheticRun emits a small but fully featured run: three windows with
// PVT lookups, CDE activity, gating transitions and criticality scores.
func syntheticRun(t obs.Tracer) {
	emit := func(e obs.Event) { t.Emit(e) }
	emit(obs.Event{Kind: obs.KindWindowClose, Window: 1, Cycle: 1000, Count: 500})
	emit(obs.Event{Kind: obs.KindPVTMiss, Window: 1, Cycle: 1000})
	emit(obs.Event{Kind: obs.KindCDEInvoke, Window: 1, Cycle: 1000, Value: 300})
	emit(obs.Event{Kind: obs.KindWindowClose, Window: 2, Cycle: 2200, Count: 640})
	emit(obs.Event{Kind: obs.KindPVTHit, Window: 2, Cycle: 2200, Policy: 0b0110})
	emit(obs.Event{Kind: obs.KindCDEScore, Window: 2, Cycle: 2200, Unit: "VPU", Value: 0.03})
	emit(obs.Event{Kind: obs.KindCDEScore, Window: 2, Cycle: 2200, Unit: "BPU", Value: 0.4})
	emit(obs.Event{Kind: obs.KindGate, Window: 2, Cycle: 2200, Unit: "VPU", Prev: 1, Next: 0.05, Stall: 40})
	emit(obs.Event{Kind: obs.KindWindowClose, Window: 3, Cycle: 3100, Count: 720})
	emit(obs.Event{Kind: obs.KindGate, Window: 3, Cycle: 3100, Unit: "VPU", Prev: 0.05, Next: 1, Stall: 25})
	emit(obs.Event{Kind: obs.KindGate, Window: 3, Cycle: 3100, Unit: "BPU", Prev: 1, Next: 0.1, Stall: 10})
	emit(obs.Event{Kind: obs.KindRunEnd, Window: 3, Cycle: 3500})
}

func TestIngestorEmptyRun(t *testing.T) {
	s := NewStore(testConfig())
	in := NewIngestor(s, IngestorConfig{Units: []string{"VPU", "BPU"}})
	in.Emit(obs.Event{Kind: obs.KindRunEnd, Cycle: 10})
	in.Flush()
	if names := s.SeriesNames(); len(names) != 0 {
		t.Fatalf("empty run produced series: %v", names)
	}
}

func TestIngestorSingleWindow(t *testing.T) {
	s := NewStore(testConfig())
	in := NewIngestor(s, IngestorConfig{Units: []string{"VPU"}})
	in.Emit(obs.Event{Kind: obs.KindWindowClose, Window: 1, Cycle: 900, Count: 450})
	in.Emit(obs.Event{Kind: obs.KindRunEnd, Window: 1, Cycle: 950})
	want := map[string]float64{
		SeriesInsns:                  450,
		SeriesIPC:                    0.5,
		SeriesStall:                  0,
		SeriesGates:                  0,
		SeriesCDE:                    0,
		SeriesUnitFracPrefix + "VPU": 1,
	}
	for name, v := range want {
		res, err := s.Query(Query{Series: name})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(res.Points) != 1 || res.Points[0].Value != v || res.Points[0].Window != 1 {
			t.Fatalf("%s: %+v, want one point of %g", name, res.Points, v)
		}
	}
	// No lookup happened, so no pvt.hit series.
	if _, err := s.Query(Query{Series: SeriesPVTHit}); err == nil {
		t.Fatal("pvt.hit should not exist without a lookup")
	}
}

func TestIngestorMirrorsTimeline(t *testing.T) {
	var events []obs.Event
	rec := obs.Tracer(tracerFunc(func(e obs.Event) { events = append(events, e) }))
	syntheticRun(rec)

	s := NewStore(testConfig())
	in := NewIngestor(s, IngestorConfig{Units: []string{"VPU", "BPU"}})
	for _, e := range events {
		in.Emit(e)
	}

	tl := obs.NewTimeline(events)
	if len(tl.Rows) != 3 {
		t.Fatalf("timeline rows: %d", len(tl.Rows))
	}
	check := func(series string, pick func(r obs.TimelineRow) float64) {
		t.Helper()
		res, err := s.Query(Query{Series: series})
		if err != nil {
			t.Fatalf("%s: %v", series, err)
		}
		if len(res.Points) != len(tl.Rows) {
			t.Fatalf("%s: %d points, timeline has %d rows", series, len(res.Points), len(tl.Rows))
		}
		for i, p := range res.Points {
			r := tl.Rows[i]
			if p.Window != r.Window || p.Cycle != r.EndCycle || p.Value != pick(r) {
				t.Fatalf("%s window %d: point %+v, timeline row %+v", series, r.Window, p, r)
			}
		}
	}
	check(SeriesInsns, func(r obs.TimelineRow) float64 { return float64(r.Insns) })
	check(SeriesCDE, func(r obs.TimelineRow) float64 { return float64(r.CDEInvokes) })
	check(SeriesGates, func(r obs.TimelineRow) float64 { return float64(r.Gates) })
	check(SeriesStall, func(r obs.TimelineRow) float64 { return r.Stall })
	for ui, u := range tl.Units {
		ui := ui
		check(SeriesUnitFracPrefix+u, func(r obs.TimelineRow) float64 { return r.Fracs[ui] })
	}

	// PVT outcomes: window 1 missed, window 2 hit, window 3 no lookup.
	res, err := s.Query(Query{Series: SeriesPVTHit})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 || res.Points[0].Value != 0 || res.Points[1].Value != 1 {
		t.Fatalf("pvt.hit points: %+v", res.Points)
	}
	// Criticality scores landed on window 2.
	res, err = s.Query(Query{Series: SeriesCritPrefix + "BPU"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 1 || res.Points[0].Window != 2 || res.Points[0].Value != 0.4 {
		t.Fatalf("crit.BPU points: %+v", res.Points)
	}
}

// TestIngestorDeterministicReplay feeds the same stream through two
// ingestor+store pairs and requires byte-identical level contents.
func TestIngestorDeterministicReplay(t *testing.T) {
	build := func() *Store {
		s := NewStore(testConfig())
		in := NewIngestor(s, IngestorConfig{Units: []string{"VPU", "BPU", "MLC"}})
		syntheticRun(in)
		syntheticRun(in) // a second run concatenates after the first
		return s
	}
	s1, s2 := build(), build()
	names := s1.SeriesNames()
	if !reflect.DeepEqual(names, s2.SeriesNames()) {
		t.Fatalf("series diverged: %v vs %v", names, s2.SeriesNames())
	}
	for _, name := range names {
		for _, spec := range testConfig().Levels {
			b1 := fmt.Sprintf("%+v", s1.LevelBuckets(name, spec.Bucket))
			b2 := fmt.Sprintf("%+v", s2.LevelBuckets(name, spec.Bucket))
			if b1 != b2 {
				t.Fatalf("series %s level %d diverged:\n%s\n%s", name, spec.Bucket, b1, b2)
			}
		}
	}
}

// TestIngestorRunConcatenation checks a second run's windows continue
// after the first run's, with cycles offset past the first run's end.
func TestIngestorRunConcatenation(t *testing.T) {
	s := NewStore(testConfig())
	in := NewIngestor(s, IngestorConfig{Units: []string{"VPU", "BPU"}})
	syntheticRun(in)
	syntheticRun(in)
	res, err := s.Query(Query{Series: SeriesInsns})
	if err != nil {
		t.Fatal(err)
	}
	var wins []uint64
	for _, p := range res.Points {
		wins = append(wins, p.Window)
	}
	// Raw retention is 4: run 1 had windows 1..3, run 2 maps to 4..6.
	if !reflect.DeepEqual(wins, []uint64{3, 4, 5, 6}) {
		t.Fatalf("concatenated windows: %v", wins)
	}
	// Run 2's first window closes at base 3500 + 1000.
	if res.Points[1].Cycle != 4500 {
		t.Fatalf("run-2 first window cycle: %g", res.Points[1].Cycle)
	}
	// Fracs reset to full power at the run boundary: run 2's window 1
	// (global 4) sees VPU back at 1 even though run 1 left it gated.
	fr, err := s.Query(Query{Series: SeriesUnitFracPrefix + "VPU"})
	if err != nil {
		t.Fatal(err)
	}
	byWin := map[uint64]float64{}
	for _, p := range fr.Points {
		byWin[p.Window] = p.Value
	}
	if byWin[4] != 1 {
		t.Fatalf("run-2 window 1 VPU frac: %g, want boot state 1", byWin[4])
	}
}

func TestIngestorIgnoresSpans(t *testing.T) {
	s := NewStore(testConfig())
	in := NewIngestor(s, IngestorConfig{})
	in.Emit(obs.Event{Kind: obs.KindSpanBegin, Unit: "request", Count: 1})
	in.Emit(obs.Event{Kind: obs.KindSpanEnd, Unit: "request", Count: 1})
	if names := s.SeriesNames(); len(names) != 0 {
		t.Fatalf("span events produced series: %v", names)
	}
}

type tracerFunc func(obs.Event)

func (f tracerFunc) Emit(e obs.Event) { f(e) }
