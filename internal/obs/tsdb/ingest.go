package tsdb

import (
	"sort"
	"sync"

	"powerchop/internal/obs"
)

// Series names the Ingestor emits. Per-unit series append "." plus the
// unit name (e.g. "unit.frac.VPU", "crit.MLC").
const (
	// SeriesInsns is the window's translated dynamic instruction count.
	SeriesInsns = "window.insns"
	// SeriesIPC is the window's instructions per cycle (instruction
	// count over the cycles since the previous window's close).
	SeriesIPC = "window.ipc"
	// SeriesStall is the stall-cycle cost charged at the window's
	// boundary and SeriesGates the gating-transition count.
	SeriesStall = "window.stall"
	SeriesGates = "window.gates"
	// SeriesCDE counts CDE invocations at the boundary.
	SeriesCDE = "window.cde"
	// SeriesPVTHit is the PVT lookup outcome at the boundary: 1 for a
	// hit, 0 for a miss; windows without a lookup emit nothing, so its
	// mean over a range is the hit rate.
	SeriesPVTHit = "pvt.hit"
	// SeriesUnitFracPrefix prefixes each unit's power fraction after the
	// boundary settled (1 = full power, the boot state).
	SeriesUnitFracPrefix = "unit.frac."
	// SeriesCritPrefix prefixes each unit's criticality score; emitted
	// only for windows where the CDE scored the unit.
	SeriesCritPrefix = "crit."
)

// IngestorConfig configures an Ingestor.
type IngestorConfig struct {
	// Units pre-declares the gated units so every window carries one
	// power-fraction sample per unit even before a unit's first gating
	// transition. Units first seen in gate events are added on the fly.
	Units []string
}

// Ingestor adapts the obs event stream into Store samples. It replays
// windows exactly like obs.Timeline: a window's row opens at its
// window-close event, collects the boundary machinery that fires before
// the next close (PVT lookup, CDE invocations, gating transitions,
// criticality scores), and flushes when the next window closes or the
// run ends. Window ordinals and cycles from consecutive runs are offset
// so sequential runs through one ingestor concatenate into monotonic
// series; concurrently interleaved runs are merged best-effort (the
// store clamps out-of-order windows into the current bucket).
//
// Ingestor implements obs.Tracer and is safe for concurrent use.
type Ingestor struct {
	store *Store

	mu    sync.Mutex
	units []string
	slot  map[string]int
	fracs []float64

	// Current row, mirroring obs.Timeline's replay.
	open     bool
	window   uint64
	endCycle float64
	insns    uint64
	cde      uint64
	gates    uint64
	stall    float64
	lookup   int8 // -1 none, 0 miss, 1 hit
	scores   []unitScore
	row      []Sample // scratch for the per-window batch commit

	prevEnd    float64 // previous window's close cycle (current run)
	lastWindow uint64  // highest window ordinal seen (current run)
	baseWindow uint64  // ordinal offset from completed prior runs
	baseCycle  float64 // cycle offset from completed prior runs
}

type unitScore struct {
	unit  string
	score float64
}

// NewIngestor builds an ingestor feeding the store.
func NewIngestor(store *Store, cfg IngestorConfig) *Ingestor {
	in := &Ingestor{store: store, slot: map[string]int{}, lookup: -1}
	units := append([]string(nil), cfg.Units...)
	sort.Strings(units)
	for _, u := range units {
		in.addUnit(u)
	}
	return in
}

// addUnit registers a unit slot booted at full power. Caller holds mu
// (or is the constructor).
func (in *Ingestor) addUnit(u string) {
	if _, ok := in.slot[u]; ok {
		return
	}
	in.slot[u] = len(in.units)
	in.units = append(in.units, u)
	in.fracs = append(in.fracs, 1)
}

// Emit implements obs.Tracer.
func (in *Ingestor) Emit(e obs.Event) {
	if obs.IsSpanKind(e.Kind) {
		return
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	switch e.Kind {
	case obs.KindWindowClose:
		in.flush()
		in.open = true
		in.window = e.Window
		in.endCycle = e.Cycle
		in.insns = e.Count
		in.cde, in.gates, in.stall = 0, 0, 0
		in.lookup = -1
		in.scores = in.scores[:0]
	case obs.KindPVTHit:
		if in.open {
			in.lookup = 1
		}
	case obs.KindPVTMiss:
		if in.open {
			in.lookup = 0
		}
	case obs.KindCDEInvoke:
		if in.open {
			in.cde++
		}
	case obs.KindCDEScore:
		if in.open && e.Unit != "" {
			in.scores = append(in.scores, unitScore{unit: e.Unit, score: e.Value})
		}
	case obs.KindGate:
		if e.Unit != "" {
			in.addUnit(e.Unit)
			in.fracs[in.slot[e.Unit]] = e.Next
		}
		if in.open {
			in.gates++
			in.stall += e.Stall
		}
	case obs.KindRunEnd:
		in.flush()
		// Offset the next run past this one so concatenated series stay
		// monotonic, and reset per-run state to boot.
		in.baseWindow += in.lastWindow
		if e.Cycle > 0 {
			in.baseCycle += e.Cycle
		} else {
			in.baseCycle += in.prevEnd
		}
		in.lastWindow = 0
		in.prevEnd = 0
		for i := range in.fracs {
			in.fracs[i] = 1
		}
	}
}

// flush commits the open row to the store as one atomic batch, so a
// concurrent reader (the alert evaluator's boundary watermark in
// particular) never observes a window with only part of its series
// appended. Caller holds mu.
func (in *Ingestor) flush() {
	if !in.open {
		return
	}
	in.open = false
	w := in.baseWindow + in.window
	c := in.baseCycle + in.endCycle
	if in.window > in.lastWindow {
		in.lastWindow = in.window
	}

	row := in.row[:0]
	add := func(series string, v float64) {
		row = append(row, Sample{Series: series, Window: w, Cycle: c, Value: v})
	}
	add(SeriesInsns, float64(in.insns))
	if dt := in.endCycle - in.prevEnd; dt > 0 {
		add(SeriesIPC, float64(in.insns)/dt)
	}
	in.prevEnd = in.endCycle
	add(SeriesStall, in.stall)
	add(SeriesGates, float64(in.gates))
	add(SeriesCDE, float64(in.cde))
	if in.lookup >= 0 {
		add(SeriesPVTHit, float64(in.lookup))
	}
	for i, u := range in.units {
		add(SeriesUnitFracPrefix+u, in.fracs[i])
	}
	for _, sc := range in.scores {
		add(SeriesCritPrefix+sc.unit, sc.score)
	}
	in.row = row
	in.store.AppendBatch(row)
}

// Flush commits any open row without waiting for the next window close
// or run end. Callers use it to publish the final window of a stream
// that ends without a run-end event.
func (in *Ingestor) Flush() {
	in.mu.Lock()
	in.flush()
	in.mu.Unlock()
}
