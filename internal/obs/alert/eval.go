package alert

import (
	"encoding/json"
	"fmt"
	"math"
	"sync"
	"time"

	"powerchop/internal/obs"
	"powerchop/internal/obs/runlog"
	"powerchop/internal/obs/tsdb"
)

// DefaultEvery is the evaluation stride for series rules, in windows.
const DefaultEvery = 16

// DefaultMaxTransitions bounds the in-memory transition history kept
// for /api/alerts.
const DefaultMaxTransitions = 512

// Config wires an Evaluator to its sources and sinks. Every field but
// Rules is optional: a nil Store skips series rules, a nil Metrics
// function skips registry rules, and nil sinks are simply not fed.
type Config struct {
	// Rules is the rule set (validated by New).
	Rules []Rule
	// Store is the telemetry store series rules query.
	Store *tsdb.Store
	// Metrics snapshots the registry for metric rules (typically
	// Registry.Snapshot).
	Metrics func() *obs.Snapshot
	// Every is the series evaluation stride in windows (default
	// DefaultEvery). Series rules are evaluated exactly at window
	// ordinals that are multiples of Every, making the evaluation
	// schedule a pure function of the data.
	Every uint64
	// Sink receives each transition as an obs.KindAlert event.
	Sink obs.Tracer
	// Journal records each transition as a runlog record
	// (kind "alert", outcome = the new state).
	Journal *runlog.Store
	// Webhook receives each transition for delivery (see Webhook).
	Webhook *Webhook
	// Registry, when set, hosts the evaluator's own instruments:
	// alerts.evals, alerts.transitions, alerts.firing.
	Registry *obs.Registry
	// MaxTransitions bounds the retained transition history (default
	// DefaultMaxTransitions). Older transitions are dropped and counted.
	MaxTransitions int
}

// Transition is one state-machine edge of one rule. It is fully
// determined by the evaluated data — no wall-clock field — so live and
// offline evaluations of the same stream produce identical transitions.
type Transition struct {
	Rule  string `json:"rule"`
	State string `json:"state"` // pending | firing | resolved
	// Window is the evaluation boundary for series rules (0 for metric
	// rules); Tick the evaluation tick for metric rules (0 for series
	// rules); Cycle the simulated cycle of the boundary's last sample.
	Window uint64  `json:"window,omitempty"`
	Tick   uint64  `json:"tick,omitempty"`
	Cycle  float64 `json:"cycle,omitempty"`
	// Value is the observed value (z-score for anomaly rules) and
	// Threshold the rule's threshold (sigma for anomaly rules).
	Value     float64           `json:"value"`
	Threshold float64           `json:"threshold"`
	Labels    map[string]string `json:"labels,omitempty"`
}

// ruleState is one rule plus its state machine.
type ruleState struct {
	rule  Rule
	state string // inactive | pending | firing
	holds int    // consecutive true evaluation points
	// pendingSent dedupes the pending transition: it is emitted at most
	// once per episode, however often the rule flaps below its For span.
	pendingSent bool
	lastValue   float64
	evaluated   bool
	sinceAt     uint64 // window (series) or tick (metric) of state entry
	// increase-aggregator memory.
	prevVal, prevPer float64
	primed           bool
}

// Evaluator runs the rule set. Use New; the zero value is not usable.
type Evaluator struct {
	mu           sync.Mutex
	store        *tsdb.Store
	snap         func() *obs.Snapshot
	every        uint64
	sink         obs.Tracer
	journal      *runlog.Store
	webhook      *Webhook
	rules        []*ruleState
	lastBoundary uint64
	tick         uint64
	firedTotal   uint64
	history      []Transition
	maxHist      int
	dropped      uint64

	evals       *obs.Counter
	transitions *obs.Counter
	firing      *obs.Gauge
}

// New builds an evaluator. The rule set is validated; series-rule
// defaults (agg mean, window 1) are normalized in.
func New(cfg Config) (*Evaluator, error) {
	if err := Validate(cfg.Rules); err != nil {
		return nil, err
	}
	ev := &Evaluator{
		store:   cfg.Store,
		snap:    cfg.Metrics,
		every:   cfg.Every,
		sink:    cfg.Sink,
		journal: cfg.Journal,
		webhook: cfg.Webhook,
		maxHist: cfg.MaxTransitions,
	}
	if ev.every == 0 {
		ev.every = DefaultEvery
	}
	if ev.maxHist == 0 {
		ev.maxHist = DefaultMaxTransitions
	}
	for _, r := range cfg.Rules {
		r := r
		if r.Expr.Series != "" && r.Expr.Kind != KindAnomaly {
			if r.Expr.Agg == "" {
				r.Expr.Agg = "mean"
			}
			if r.Expr.Window == 0 {
				r.Expr.Window = 1
			}
		}
		if r.Expr.Metric != "" && r.Expr.Agg == "" {
			r.Expr.Agg = "value"
		}
		ev.rules = append(ev.rules, &ruleState{rule: r, state: StateInactive})
	}
	if reg := cfg.Registry; reg != nil {
		ev.evals = reg.Counter("alerts.evals")
		ev.transitions = reg.Counter("alerts.transitions")
		ev.firing = reg.Gauge("alerts.firing")
	}
	return ev, nil
}

// Rules returns the normalized rule set, in declaration order.
func (ev *Evaluator) Rules() []Rule {
	ev.mu.Lock()
	defer ev.mu.Unlock()
	out := make([]Rule, len(ev.rules))
	for i, rs := range ev.rules {
		out[i] = rs.rule
	}
	return out
}

// Eval runs one evaluation pass: it catches up every series boundary
// the store has reached since the last pass (multiples of Every up to
// Store.LatestWindow) and evaluates metric rules once against a fresh
// registry snapshot. Safe for concurrent use; transitions are emitted
// to the sinks outside the lock.
func (ev *Evaluator) Eval() {
	ev.mu.Lock()
	var out []Transition
	if ev.store != nil {
		latest := ev.store.LatestWindow()
		for b := ev.lastBoundary + ev.every; b <= latest; b += ev.every {
			for _, rs := range ev.rules {
				if rs.rule.Expr.Series == "" {
					continue
				}
				val, thr, cycle, cond, ok := ev.evalSeries(rs, b)
				if tr := rs.step(ok && cond, val, thr, b, 0, cycle); tr != nil {
					out = append(out, *tr)
				}
			}
			ev.lastBoundary = b
		}
	}
	ev.tick++
	if ev.snap != nil {
		s := ev.snap()
		for _, rs := range ev.rules {
			if rs.rule.Expr.Metric == "" {
				continue
			}
			val, ok := rs.evalMetric(s)
			cond := ok && compare(rs.rule.Expr.Op, val, rs.rule.Expr.Threshold)
			if tr := rs.step(cond, val, rs.rule.Expr.Threshold, 0, ev.tick, 0); tr != nil {
				out = append(out, *tr)
			}
		}
	}
	for _, tr := range out {
		if tr.State == StateFiring {
			ev.firedTotal++
		}
		if len(ev.history) >= ev.maxHist {
			n := copy(ev.history, ev.history[1:])
			ev.history = ev.history[:n]
			ev.dropped++
		}
		ev.history = append(ev.history, tr)
	}
	firing := 0
	for _, rs := range ev.rules {
		if rs.state == StateFiring {
			firing++
		}
	}
	ev.mu.Unlock()

	if ev.evals != nil {
		ev.evals.Add(1)
	}
	if ev.firing != nil {
		ev.firing.Set(float64(firing))
	}
	for _, tr := range out {
		ev.emit(tr)
	}
}

// emit fans one transition out to the configured sinks.
func (ev *Evaluator) emit(tr Transition) {
	if ev.transitions != nil {
		ev.transitions.Add(1)
	}
	if ev.sink != nil {
		ev.sink.Emit(obs.Event{
			Kind:   obs.KindAlert,
			Unit:   tr.Rule,
			Detail: tr.State,
			Window: tr.Window,
			Cycle:  tr.Cycle,
			Count:  tr.Tick,
			Value:  tr.Value,
			Prev:   tr.Threshold,
		})
	}
	if ev.journal != nil {
		at := fmt.Sprintf("window=%d", tr.Window)
		if tr.Window == 0 {
			at = fmt.Sprintf("tick=%d", tr.Tick)
		}
		_ = ev.journal.Append(runlog.Record{
			Kind:    "alert",
			Name:    tr.Rule,
			Params:  fmt.Sprintf("%s value=%g threshold=%g", at, tr.Value, tr.Threshold),
			Outcome: tr.State,
		})
	}
	if ev.webhook != nil {
		ev.webhook.Enqueue(tr)
	}
}

// evalSeries evaluates one series rule at boundary b. ok is false when
// the range holds no data (missing series, empty range) — the condition
// is then treated as false without consuming the rule's damping state.
func (ev *Evaluator) evalSeries(rs *ruleState, b uint64) (val, thr, cycle float64, cond, ok bool) {
	e := rs.rule.Expr
	if e.Kind == KindAnomaly {
		return ev.evalAnomaly(rs, b)
	}
	from := uint64(1)
	if b > e.Window {
		from = b - e.Window + 1
	}
	res, err := ev.store.Query(tsdb.Query{Series: e.Series, From: from, To: b, Agg: e.Agg})
	if err != nil || len(res.Points) == 0 {
		return 0, e.Threshold, 0, false, false
	}
	pts := res.Points
	cycle = pts[len(pts)-1].Cycle
	var samples uint64
	for _, p := range pts {
		samples += p.Count
	}
	switch e.Agg {
	case "mean":
		if samples == 0 {
			return 0, e.Threshold, cycle, false, false
		}
		var sum float64
		for _, p := range pts {
			sum += p.Mean * float64(p.Count)
		}
		val = sum / float64(samples)
	case "min":
		val = math.Inf(1)
		for _, p := range pts {
			val = math.Min(val, p.Min)
		}
	case "max":
		val = math.Inf(-1)
		for _, p := range pts {
			val = math.Max(val, p.Max)
		}
	case "last":
		val = pts[len(pts)-1].Last
	case "sum":
		for _, p := range pts {
			val += p.Mean * float64(p.Count)
		}
	case "count":
		val = float64(samples)
	}
	return val, e.Threshold, cycle, compare(e.Op, val, e.Threshold), true
}

// evalAnomaly computes the z-score of window b's value against the
// prior BaselineWindows raw points. The reported value is the z-score
// and the threshold is sigma. A zero-variance baseline scores 0 when
// the value matches the baseline mean and sigma+1 (anomalous) when it
// does not — both finite and reproducible offline.
func (ev *Evaluator) evalAnomaly(rs *ruleState, b uint64) (val, thr, cycle float64, cond, ok bool) {
	e := rs.rule.Expr
	cur, err := ev.store.Query(tsdb.Query{Series: e.Series, From: b, To: b})
	if err != nil || len(cur.Points) == 0 {
		return 0, e.Sigma, 0, false, false
	}
	x := cur.Points[0].Mean
	cycle = cur.Points[0].Cycle
	from := uint64(1)
	if b > e.BaselineWindows {
		from = b - e.BaselineWindows
	}
	base, err := ev.store.Query(tsdb.Query{Series: e.Series, From: from, To: b - 1})
	if err != nil || len(base.Points) < 2 {
		return 0, e.Sigma, cycle, false, false
	}
	var mu float64
	for _, p := range base.Points {
		mu += p.Mean
	}
	mu /= float64(len(base.Points))
	var varsum float64
	for _, p := range base.Points {
		d := p.Mean - mu
		varsum += d * d
	}
	sigma := math.Sqrt(varsum / float64(len(base.Points)))
	var z float64
	switch {
	case sigma > 0:
		z = math.Abs(x-mu) / sigma
	case x != mu:
		z = e.Sigma + 1
	}
	return z, e.Sigma, cycle, z > e.Sigma, true
}

// evalMetric evaluates one metric rule against a registry snapshot.
func (rs *ruleState) evalMetric(s *obs.Snapshot) (float64, bool) {
	e := rs.rule.Expr
	if e.When != nil {
		gv, ok := snapValue(s, e.When.Metric)
		if !ok || !compare(e.When.Op, gv, e.When.Threshold) {
			return 0, false
		}
	}
	switch e.Agg {
	case "value":
		return snapValue(s, e.Metric)
	case "increase":
		cur, ok := snapValue(s, e.Metric)
		if !ok {
			return 0, false
		}
		curPer := 0.0
		if e.Per != "" {
			if curPer, ok = snapValue(s, e.Per); !ok {
				return 0, false
			}
		}
		if !rs.primed {
			rs.primed = true
			rs.prevVal, rs.prevPer = cur, curPer
			return 0, false
		}
		d, dp := cur-rs.prevVal, curPer-rs.prevPer
		rs.prevVal, rs.prevPer = cur, curPer
		if e.Per != "" {
			if dp <= 0 {
				return 0, false
			}
			return d / dp, true
		}
		return d, true
	default: // histogram aggregators
		h, ok := s.Histogram(e.Metric)
		if !ok || h.Count == 0 {
			return 0, false
		}
		switch e.Agg {
		case "p50":
			return h.Quantile(0.50), true
		case "p90":
			return h.Quantile(0.90), true
		case "p99":
			return h.Quantile(0.99), true
		case "mean":
			return h.Mean(), true
		case "min":
			return h.Min, true
		case "max":
			return h.Max, true
		case "count":
			return float64(h.Count), true
		}
	}
	return 0, false
}

// snapValue resolves a metric name against a snapshot: counter value,
// gauge value, or histogram observation count.
func snapValue(s *obs.Snapshot, name string) (float64, bool) {
	for _, c := range s.Counters {
		if c.Name == name {
			return float64(c.Value), true
		}
	}
	if v, ok := s.Gauge(name); ok {
		return v, true
	}
	if h, ok := s.Histogram(name); ok {
		return float64(h.Count), true
	}
	return 0, false
}

// compare applies a threshold operator.
func compare(op string, v, thr float64) bool {
	switch op {
	case "<":
		return v < thr
	case "<=":
		return v <= thr
	case ">":
		return v > thr
	case ">=":
		return v >= thr
	case "==":
		return v == thr
	case "!=":
		return v != thr
	}
	return false
}

// step advances the rule's state machine by one evaluation point and
// returns the transition to emit, if any. at is the point's identity:
// window for series rules, tick for metric rules.
func (rs *ruleState) step(cond bool, val, thr float64, window, tick uint64, cycle float64) *Transition {
	rs.lastValue = val
	rs.evaluated = true
	at := window
	if at == 0 {
		at = tick
	}
	make := func(state string) *Transition {
		return &Transition{
			Rule: rs.rule.Name, State: state,
			Window: window, Tick: tick, Cycle: cycle,
			Value: val, Threshold: thr, Labels: rs.rule.Labels,
		}
	}
	switch rs.state {
	case StateInactive:
		if !cond {
			return nil
		}
		rs.holds = 1
		if rs.rule.For > 1 {
			rs.state = StatePending
			rs.sinceAt = at
			if rs.pendingSent {
				return nil
			}
			rs.pendingSent = true
			return make(StatePending)
		}
		rs.state = StateFiring
		rs.sinceAt = at
		rs.pendingSent = false
		return make(StateFiring)
	case StatePending:
		if !cond {
			// Condition lapsed before the damping span elapsed: cancel
			// silently. pendingSent stays set, so a flapping rule emits
			// its pending transition once, not per flap.
			rs.state = StateInactive
			rs.holds = 0
			return nil
		}
		rs.holds++
		if rs.holds >= rs.rule.For {
			rs.state = StateFiring
			rs.sinceAt = at
			rs.pendingSent = false
			return make(StateFiring)
		}
		return nil
	case StateFiring:
		if cond {
			return nil
		}
		rs.state = StateInactive
		rs.holds = 0
		rs.pendingSent = false
		return make(StateResolved)
	}
	return nil
}

// RuleStatus is one rule's current state for /api/alerts.
type RuleStatus struct {
	Name   string `json:"name"`
	State  string `json:"state"`
	Source string `json:"source"`
	// Value is the rule's last evaluated value (z-score for anomaly
	// rules); meaningful once Evaluated is true.
	Value     float64 `json:"value"`
	Threshold float64 `json:"threshold"`
	Evaluated bool    `json:"evaluated"`
	// Since is the window (series) or tick (metric) at which the rule
	// entered its current non-inactive state.
	Since  uint64            `json:"since,omitempty"`
	For    int               `json:"for,omitempty"`
	Labels map[string]string `json:"labels,omitempty"`
}

// Snapshot is the full evaluator state for /api/alerts.
type Snapshot struct {
	Rules  []RuleStatus `json:"rules"`
	Firing int          `json:"firing"`
	// Evals counts evaluation passes, LastWindow the newest series
	// boundary evaluated.
	Evals      uint64 `json:"evals"`
	LastWindow uint64 `json:"last_window"`
	// Transitions is the retained history, oldest first; Dropped counts
	// older transitions evicted from it.
	Transitions []Transition `json:"transitions"`
	Dropped     uint64       `json:"dropped_transitions,omitempty"`
	// FiredTotal counts firing transitions ever emitted.
	FiredTotal uint64 `json:"fired_total"`
}

// Snapshot returns the evaluator's current state.
func (ev *Evaluator) Snapshot() Snapshot {
	ev.mu.Lock()
	defer ev.mu.Unlock()
	snap := Snapshot{
		Evals:       ev.tick,
		LastWindow:  ev.lastBoundary,
		Dropped:     ev.dropped,
		FiredTotal:  ev.firedTotal,
		Transitions: append([]Transition(nil), ev.history...),
	}
	for _, rs := range ev.rules {
		src := rs.rule.Expr.Series
		if src == "" {
			src = rs.rule.Expr.Metric
		}
		thr := rs.rule.Expr.Threshold
		if rs.rule.Expr.Kind == KindAnomaly {
			thr = rs.rule.Expr.Sigma
		}
		st := RuleStatus{
			Name: rs.rule.Name, State: rs.state, Source: src,
			Value: rs.lastValue, Threshold: thr, Evaluated: rs.evaluated,
			For: rs.rule.For, Labels: rs.rule.Labels,
		}
		if rs.state != StateInactive {
			st.Since = rs.sinceAt
		}
		if rs.state == StateFiring {
			snap.Firing++
		}
		snap.Rules = append(snap.Rules, st)
	}
	return snap
}

// Transitions returns a copy of the retained transition history,
// oldest first.
func (ev *Evaluator) Transitions() []Transition {
	ev.mu.Lock()
	defer ev.mu.Unlock()
	return append([]Transition(nil), ev.history...)
}

// FiredTotal counts firing transitions ever emitted.
func (ev *Evaluator) FiredTotal() uint64 {
	ev.mu.Lock()
	defer ev.mu.Unlock()
	return ev.firedTotal
}

// FiringCount reports how many rules are currently firing. It
// implements the serve layer's AlertSource.
func (ev *Evaluator) FiringCount() int {
	ev.mu.Lock()
	defer ev.mu.Unlock()
	n := 0
	for _, rs := range ev.rules {
		if rs.state == StateFiring {
			n++
		}
	}
	return n
}

// AlertsJSON renders the snapshot as indented JSON for /api/alerts. It
// implements the serve layer's AlertSource.
func (ev *Evaluator) AlertsJSON() ([]byte, error) {
	return json.MarshalIndent(ev.Snapshot(), "", "  ")
}

// Start runs Eval on a ticker until the returned stop function is
// called. Stop performs one final catch-up pass so boundaries reached
// just before shutdown are still evaluated; it is idempotent.
func (ev *Evaluator) Start(interval time.Duration) (stop func()) {
	if interval <= 0 {
		interval = 5 * time.Second
	}
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				ev.Eval()
			case <-done:
				return
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			close(done)
			wg.Wait()
			ev.Eval()
		})
	}
}
