package alert

import (
	"powerchop/internal/obs"
	"powerchop/internal/obs/tsdb"
)

// ReplayConfig parameterizes an offline replay.
type ReplayConfig struct {
	// Every is the evaluation stride (default DefaultEvery). It must
	// match the live evaluator's stride for transitions to reconcile.
	Every uint64
	// Units pre-declares gated units for the ingest, matching the live
	// ingestor's configuration (serve pre-declares the architecture's
	// units) so unit.frac series are identical.
	Units []string
	// MaxTransitions bounds the retained history (default 1<<16 —
	// offline runs keep everything within reason).
	MaxTransitions int
}

// Replay feeds a recorded event stream through a fresh tsdb ingest and
// a fresh evaluator, evaluating after every event exactly as a live
// ticker would have (the evaluation schedule is a pure function of the
// data, so per-event evaluation and batched catch-up produce identical
// transitions). Registry-metric rules are skipped — a recorded trace
// carries no registry — which is the documented scope of the offline
// guarantee. The returned evaluator holds the transitions and final
// rule states.
func Replay(events []obs.Event, rules []Rule, cfg ReplayConfig) (*Evaluator, error) {
	if cfg.MaxTransitions == 0 {
		cfg.MaxTransitions = 1 << 16
	}
	store := tsdb.NewStore(tsdb.DefaultConfig())
	in := tsdb.NewIngestor(store, tsdb.IngestorConfig{Units: cfg.Units})
	ev, err := New(Config{
		Rules:          rules,
		Store:          store,
		Every:          cfg.Every,
		MaxTransitions: cfg.MaxTransitions,
	})
	if err != nil {
		return nil, err
	}
	for _, e := range events {
		in.Emit(e)
		ev.Eval()
	}
	in.Flush()
	ev.Eval()
	return ev, nil
}
