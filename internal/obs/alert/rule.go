// Package alert is the rule-driven alerting layer over the
// observability stack: it watches the per-window telemetry store
// (internal/obs/tsdb) and the metrics registry (obs.Registry) and runs a
// pending→firing→resolved state machine per rule.
//
// The evaluator is a pure observer. It reads surfaces the simulator
// already populates and emits its own transitions as obs events
// (obs.KindAlert) back into the ordinary sink fan-out; nothing it does
// feeds back into a simulation, so figure output is byte-identical with
// the evaluator attached (enforced by TestMonitorAttachedByteIdentical).
//
// Determinism: series rules are evaluated at window boundaries that are
// multiples of a fixed stride (Config.Every), never on wall time. A
// ticker merely triggers Eval, which catches up every boundary the store
// has reached; because the store's raw buckets for windows ≤
// Store.LatestWindow are final, a lagging ticker produces exactly the
// transitions an eager one would. That is what lets `powerchop alerts
// check` replay a recorded trace offline and reproduce the live
// transitions bit for bit. Registry-metric rules (service SLOs) are
// evaluated once per tick against a registry snapshot and are excluded
// from that offline guarantee — a recorded trace carries no registry.
package alert

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// Rule states.
const (
	StateInactive = "inactive"
	StatePending  = "pending"
	StateFiring   = "firing"
	StateResolved = "resolved" // transition-only: the state machine rests at inactive
)

// Expr kinds.
const (
	KindThreshold = "threshold"
	KindAnomaly   = "anomaly"
)

// Guard is an optional precondition on a rule: the rule's own condition
// is only evaluated while the guard holds (e.g. "only alert on stalled
// window progress while runs are actually simulating").
type Guard struct {
	// Metric names a registry metric (counter or gauge value, histogram
	// count).
	Metric string `json:"metric"`
	// Op and Threshold form the comparison, as in Expr.
	Op        string  `json:"op"`
	Threshold float64 `json:"threshold"`
}

// Expr is a rule's condition. Exactly one of Series (a tsdb series) or
// Metric (a registry metric) names the source.
type Expr struct {
	// Kind selects the expression form: "threshold" (default) compares
	// an aggregate against Threshold with Op; "anomaly" compares the
	// z-score of the boundary window's value against Sigma over a
	// rolling baseline (series sources only).
	Kind string `json:"kind,omitempty"`
	// Series names a tsdb series (e.g. "pvt.hit", "window.ipc").
	Series string `json:"series,omitempty"`
	// Metric names a registry metric (e.g. "http.seconds.api.run").
	Metric string `json:"metric,omitempty"`
	// Agg is the aggregator. Series sources take the tsdb aggregators
	// (mean — the default — min, max, last, sum, count) applied over the
	// trailing Window raw points. Metric sources take: value (counter or
	// gauge level, the default), increase (delta since the previous
	// evaluation; with Per set, a ratio of deltas), p50/p90/p99/mean/
	// min/max (histograms) and count (histogram observation count).
	Agg string `json:"agg,omitempty"`
	// Window is the trailing window span for series rules (default 1).
	Window uint64 `json:"window,omitempty"`
	// Op compares the aggregate to Threshold: <, <=, >, >=, ==, !=.
	Op        string  `json:"op,omitempty"`
	Threshold float64 `json:"threshold"`
	// Per divides an increase by another metric's increase over the
	// same interval — the error-rate shape
	// (errors-per-interval / requests-per-interval).
	Per string `json:"per,omitempty"`
	// Sigma and BaselineWindows parameterize anomaly rules: the
	// boundary window's value is anomalous when its z-score against the
	// mean/stddev of the prior BaselineWindows raw points exceeds Sigma.
	Sigma           float64 `json:"sigma,omitempty"`
	BaselineWindows uint64  `json:"baseline_windows,omitempty"`
	// When guards the rule (see Guard). Registry-backed, so it only
	// applies where a registry is attached.
	When *Guard `json:"when,omitempty"`
}

// Rule is one alert rule.
type Rule struct {
	Name string `json:"name"`
	Expr Expr   `json:"expr"`
	// For is the damping span: the number of consecutive true
	// evaluation points required before the rule fires. 0 and 1 both
	// fire immediately; larger values pass through a pending state.
	For int `json:"for,omitempty"`
	// Labels ride along on every transition (severity, owner, ...).
	Labels map[string]string `json:"labels,omitempty"`
}

// RuleFile is the on-disk rule document: {"rules": [...]}.
type RuleFile struct {
	Rules []Rule `json:"rules"`
}

var validOps = map[string]bool{
	"<": true, "<=": true, ">": true, ">=": true, "==": true, "!=": true,
}

var seriesAggs = map[string]bool{
	"mean": true, "min": true, "max": true, "last": true, "sum": true, "count": true,
}

var metricAggs = map[string]bool{
	"value": true, "increase": true, "p50": true, "p90": true, "p99": true,
	"mean": true, "min": true, "max": true, "count": true,
}

const (
	knownOps        = "<, <=, >, >=, ==, !="
	knownSeriesAggs = "count, last, max, mean, min, sum"
	knownMetricAggs = "count, increase, max, mean, min, p50, p90, p99, value"
	knownKinds      = `"threshold", "anomaly"`
)

// ParseRules decodes a rule document ({"rules": [...]} or a bare rule
// array) and validates it. Unknown fields are rejected so a typoed key
// fails loudly instead of silently disabling a rule.
func ParseRules(r io.Reader) ([]Rule, error) {
	raw, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("alert: reading rules: %w", err)
	}
	var rules []Rule
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	var doc RuleFile
	if err := dec.Decode(&doc); err == nil {
		rules = doc.Rules
	} else {
		dec = json.NewDecoder(bytes.NewReader(raw))
		dec.DisallowUnknownFields()
		if err2 := dec.Decode(&rules); err2 != nil {
			return nil, fmt.Errorf("alert: parsing rules: %w", err)
		}
	}
	if err := Validate(rules); err != nil {
		return nil, err
	}
	return rules, nil
}

// LoadRules reads and validates a rule file from disk.
func LoadRules(path string) ([]Rule, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("alert: %w", err)
	}
	defer f.Close()
	return ParseRules(f)
}

// Validate checks a rule set. Errors are deterministic and name the
// first offender in declaration order, in the style of
// internal/policy.Validate.
func Validate(rules []Rule) error {
	if len(rules) == 0 {
		return fmt.Errorf("alert: no rules")
	}
	seen := map[string]bool{}
	for i, r := range rules {
		fail := func(format string, args ...any) error {
			prefix := fmt.Sprintf("alert: rule %d (%q): ", i, r.Name)
			if r.Name == "" {
				prefix = fmt.Sprintf("alert: rule %d: ", i)
			}
			return fmt.Errorf(prefix+format, args...)
		}
		if r.Name == "" {
			return fail("missing name")
		}
		if seen[r.Name] {
			return fail("duplicate rule name")
		}
		seen[r.Name] = true
		if r.For < 0 {
			return fail("negative for %d", r.For)
		}
		e := r.Expr
		if (e.Series == "") == (e.Metric == "") {
			return fail("need exactly one of expr.series or expr.metric")
		}
		switch e.Kind {
		case "", KindThreshold:
			if !validOps[e.Op] {
				if e.Op == "" {
					return fail("missing expr.op (known: %s)", knownOps)
				}
				return fail("unknown expr.op %q (known: %s)", e.Op, knownOps)
			}
			if e.Sigma != 0 || e.BaselineWindows != 0 {
				return fail("expr.sigma/expr.baseline_windows apply to anomaly rules only")
			}
			if e.Series != "" {
				agg := e.Agg
				if agg == "" {
					agg = "mean"
				}
				if !seriesAggs[agg] {
					return fail("unknown series aggregator %q (known: %s)", e.Agg, knownSeriesAggs)
				}
				if e.Per != "" {
					return fail("expr.per applies to metric rules only")
				}
			} else {
				agg := e.Agg
				if agg == "" {
					agg = "value"
				}
				if !metricAggs[agg] {
					return fail("unknown metric aggregator %q (known: %s)", e.Agg, knownMetricAggs)
				}
				if e.Per != "" && agg != "increase" {
					return fail(`expr.per needs agg "increase"`)
				}
				if e.Window != 0 {
					return fail("expr.window applies to series rules only")
				}
			}
		case KindAnomaly:
			if e.Series == "" {
				return fail("anomaly rules need expr.series")
			}
			if e.Sigma <= 0 {
				return fail("anomaly rules need expr.sigma > 0 (got %v)", e.Sigma)
			}
			if e.BaselineWindows < 2 {
				return fail("anomaly rules need expr.baseline_windows >= 2 (got %d)", e.BaselineWindows)
			}
			if e.Op != "" || e.Agg != "" {
				return fail("anomaly rules compare z-scores; drop expr.op/expr.agg")
			}
		default:
			return fail("unknown expr.kind %q (known: %s)", e.Kind, knownKinds)
		}
		if e.When != nil {
			if e.When.Metric == "" {
				return fail("when.metric missing")
			}
			if !validOps[e.When.Op] {
				return fail("unknown when.op %q (known: %s)", e.When.Op, knownOps)
			}
		}
	}
	return nil
}

// DefaultRules is the ruleset `serve` loads when no -alert-rules file is
// given: simulation liveness, a PVT hit-rate floor, an IPC anomaly
// detector, SSE event-drop growth and request-path SLOs for the run
// endpoint.
func DefaultRules() []Rule {
	return []Rule{
		{
			// No window closed across three evaluation intervals while at
			// least one run reports itself simulating: the simulation is
			// wedged. Registry-backed, so live-monitor only.
			Name: "sim-liveness",
			Expr: Expr{
				Metric: "events.window-close", Agg: "increase",
				Op: "==", Threshold: 0,
				When: &Guard{Metric: "progress.simulating", Op: ">", Threshold: 0},
			},
			For:    3,
			Labels: map[string]string{"severity": "critical"},
		},
		{
			// The PVT should settle well above a coin flip once phases
			// recur; a sustained sub-0.5 mean hit rate means the working
			// set outruns the table.
			Name: "pvt-hit-floor",
			Expr: Expr{
				Series: "pvt.hit", Agg: "mean", Window: 64,
				Op: "<", Threshold: 0.5,
			},
			For:    2,
			Labels: map[string]string{"severity": "warning"},
		},
		{
			// IPC four sigma away from its rolling baseline for two
			// consecutive boundaries.
			Name: "ipc-anomaly",
			Expr: Expr{
				Kind: KindAnomaly, Series: "window.ipc",
				Sigma: 4, BaselineWindows: 256,
			},
			For:    2,
			Labels: map[string]string{"severity": "info"},
		},
		{
			// Any growth in dropped SSE events between evaluations means
			// a subscriber is falling behind.
			Name: "event-drops",
			Expr: Expr{
				Metric: "serve.events.dropped", Agg: "increase",
				Op: ">", Threshold: 0,
			},
			Labels: map[string]string{"severity": "warning"},
		},
		{
			// Run-endpoint error-rate SLO: more than 10% of requests in
			// an interval erroring.
			Name: "api-run-error-slo",
			Expr: Expr{
				Metric: "http.errors.api.run", Per: "http.requests.api.run",
				Agg: "increase", Op: ">", Threshold: 0.1,
			},
			For:    2,
			Labels: map[string]string{"severity": "critical", "slo": "errors"},
		},
		{
			// Run-endpoint latency SLO on the estimated p99.
			Name: "api-run-p99-slo",
			Expr: Expr{
				Metric: "http.seconds.api.run", Agg: "p99",
				Op: ">", Threshold: 120,
			},
			For:    2,
			Labels: map[string]string{"severity": "warning", "slo": "latency"},
		},
	}
}
