package alert

import (
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"powerchop/internal/obs"
	"powerchop/internal/obs/tsdb"
)

// appendSeries appends vals to one series at windows 1..len(vals), with
// a synthetic cycle of 100 per window.
func appendSeries(s *tsdb.Store, name string, vals ...float64) {
	for i, v := range vals {
		w := uint64(i + 1)
		s.Append(name, w, float64(w)*100, v)
	}
}

// sliceTracer collects emitted events for assertions.
type sliceTracer struct {
	mu     sync.Mutex
	events []obs.Event
}

func (tr *sliceTracer) Emit(e obs.Event) {
	tr.mu.Lock()
	tr.events = append(tr.events, e)
	tr.mu.Unlock()
}

// transitionKeys compresses transitions to "state@window" for compact
// table expectations.
func transitionKeys(trs []Transition) []string {
	var out []string
	for _, tr := range trs {
		out = append(out, tr.State+"@"+itoa(tr.Window))
	}
	return out
}

func itoa(v uint64) string {
	if v == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}

// TestSeriesThresholdLifecycle drives a trailing-mean rule through
// fire and resolve across stride boundaries: quiet, loud, quiet again.
func TestSeriesThresholdLifecycle(t *testing.T) {
	store := tsdb.NewStore(tsdb.DefaultConfig())
	vals := make([]float64, 12)
	for i := 4; i < 8; i++ {
		vals[i] = 100 // windows 5..8
	}
	appendSeries(store, "s", vals...)

	ev, err := New(Config{
		Rules: []Rule{{Name: "hi", Expr: Expr{
			Series: "s", Agg: "mean", Window: 4, Op: ">", Threshold: 10,
		}}},
		Store: store,
		Every: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	ev.Eval()
	got := transitionKeys(ev.Transitions())
	want := []string{"firing@8", "resolved@12"}
	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Fatalf("transitions = %v, want %v", got, want)
	}
	if ev.FiredTotal() != 1 {
		t.Fatalf("FiredTotal = %d", ev.FiredTotal())
	}
	snap := ev.Snapshot()
	if snap.LastWindow != 12 || snap.Rules[0].State != StateInactive {
		t.Fatalf("snapshot = %+v", snap)
	}
	if snap.Rules[0].Value != 0 || !snap.Rules[0].Evaluated {
		t.Fatalf("rule status = %+v", snap.Rules[0])
	}
	// The firing transition carries the evaluated aggregate and the
	// boundary's cycle, but no wall-clock time (see the Transition doc).
	trs := ev.Transitions()
	if trs[0].Value != 100 || trs[0].Threshold != 10 || trs[0].Cycle != 800 {
		t.Fatalf("firing transition = %+v", trs[0])
	}
}

// TestSeriesAggregators pins each tsdb-side aggregator against a known
// range: windows 1..4 hold 1, 2, 3, 4.
func TestSeriesAggregators(t *testing.T) {
	cases := []struct {
		agg  string
		want float64
	}{
		{"mean", 2.5}, {"min", 1}, {"max", 4}, {"last", 4}, {"sum", 10}, {"count", 4},
	}
	for _, tc := range cases {
		t.Run(tc.agg, func(t *testing.T) {
			store := tsdb.NewStore(tsdb.DefaultConfig())
			appendSeries(store, "s", 1, 2, 3, 4)
			ev, err := New(Config{
				Rules: []Rule{{Name: "r", Expr: Expr{
					Series: "s", Agg: tc.agg, Window: 4, Op: "==", Threshold: tc.want,
				}}},
				Store: store,
				Every: 4,
			})
			if err != nil {
				t.Fatal(err)
			}
			ev.Eval()
			trs := ev.Transitions()
			if len(trs) != 1 || trs[0].State != StateFiring || trs[0].Value != tc.want {
				t.Fatalf("agg %s: transitions = %+v, want firing at %v", tc.agg, trs, tc.want)
			}
		})
	}
}

// TestStateMachine exercises step directly: For damping, the
// single-pending guarantee under flapping, and episode reset.
func TestStateMachine(t *testing.T) {
	rs := &ruleState{rule: Rule{Name: "r", For: 3}, state: StateInactive}
	seq := []struct {
		cond bool
		emit string // emitted transition state, "" for none
	}{
		{true, StatePending}, // episode opens
		{true, ""},           // holds 2 of 3
		{false, ""},          // lapses silently
		{true, ""},           // flap: pending again, deduped
		{true, ""},
		{true, StateFiring},    // holds reach For
		{true, ""},             // stays firing silently
		{false, StateResolved}, // clears
	}
	for i, s := range seq {
		tr := rs.step(s.cond, 1, 0, uint64(i+1), 0, 0)
		got := ""
		if tr != nil {
			got = tr.State
		}
		if got != s.emit {
			t.Fatalf("step %d (cond=%v): emitted %q, want %q", i, s.cond, got, s.emit)
		}
	}
	// A fresh episode after resolve emits pending again.
	if tr := rs.step(true, 1, 0, 9, 0, 0); tr == nil || tr.State != StatePending {
		t.Fatalf("post-resolve step = %+v, want pending", tr)
	}

	// For 0 and 1 both fire immediately, no pending.
	for _, f := range []int{0, 1} {
		rs := &ruleState{rule: Rule{Name: "r", For: f}, state: StateInactive}
		if tr := rs.step(true, 1, 0, 1, 0, 0); tr == nil || tr.State != StateFiring {
			t.Fatalf("For=%d first true step = %+v, want firing", f, tr)
		}
		if tr := rs.step(false, 1, 0, 2, 0, 0); tr == nil || tr.State != StateResolved {
			t.Fatalf("For=%d resolve step = %+v", f, tr)
		}
	}
}

// TestAnomalyRule spikes a flat series and checks the z-score fire and
// the resolve once the spike joins the baseline. The flat baseline has
// zero variance, exercising the documented sigma+1 escape.
func TestAnomalyRule(t *testing.T) {
	store := tsdb.NewStore(tsdb.DefaultConfig())
	vals := make([]float64, 22)
	for i := range vals {
		vals[i] = 1
	}
	vals[20] = 100 // window 21 spikes
	appendSeries(store, "a", vals...)

	ev, err := New(Config{
		Rules: []Rule{{Name: "spike", Expr: Expr{
			Kind: KindAnomaly, Series: "a", Sigma: 3, BaselineWindows: 8,
		}}},
		Store: store,
		Every: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	ev.Eval()
	got := transitionKeys(ev.Transitions())
	want := []string{"firing@21", "resolved@22"}
	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Fatalf("transitions = %v, want %v", got, want)
	}
	// Zero-variance baseline, off-mean value: z is pinned to sigma+1.
	if trs := ev.Transitions(); trs[0].Value != 4 || trs[0].Threshold != 3 {
		t.Fatalf("firing transition = %+v, want value 4 (sigma+1) threshold 3", trs[0])
	}
}

// TestMetricIncrease covers the increase aggregator: the priming tick
// never fires, deltas do, and a flat counter resolves.
func TestMetricIncrease(t *testing.T) {
	reg := obs.NewRegistry()
	c := reg.Counter("c")
	ev, err := New(Config{
		Rules: []Rule{{Name: "growth", Expr: Expr{
			Metric: "c", Agg: "increase", Op: ">", Threshold: 0,
		}}},
		Metrics: reg.Snapshot,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Add(100)
	ev.Eval() // priming: the pre-existing 100 must not fire
	if n := len(ev.Transitions()); n != 0 {
		t.Fatalf("priming tick emitted %d transitions", n)
	}
	c.Add(5)
	ev.Eval()
	ev.Eval() // flat: resolves
	got := ev.Transitions()
	if len(got) != 2 || got[0].State != StateFiring || got[1].State != StateResolved {
		t.Fatalf("transitions = %+v", got)
	}
	if got[0].Value != 5 || got[0].Tick != 2 || got[0].Window != 0 {
		t.Fatalf("firing transition = %+v", got[0])
	}
}

// TestMetricIncreaseRatio covers the Per form (error-rate SLO shape):
// the ratio of deltas over one interval.
func TestMetricIncreaseRatio(t *testing.T) {
	reg := obs.NewRegistry()
	errs, reqs := reg.Counter("e"), reg.Counter("q")
	ev, err := New(Config{
		Rules: []Rule{{Name: "err-rate", Expr: Expr{
			Metric: "e", Per: "q", Agg: "increase", Op: ">", Threshold: 0.5,
		}}},
		Metrics: reg.Snapshot,
	})
	if err != nil {
		t.Fatal(err)
	}
	ev.Eval() // prime
	errs.Add(1)
	reqs.Add(10)
	ev.Eval() // 0.1: under
	errs.Add(6)
	reqs.Add(10)
	ev.Eval() // 0.6: over
	got := ev.Transitions()
	if len(got) != 1 || got[0].State != StateFiring || got[0].Value != 0.6 {
		t.Fatalf("transitions = %+v", got)
	}
	// No new requests: the ratio is undefined and must not flap the rule.
	errs.Add(1)
	ev.Eval()
	if got := ev.Transitions(); len(got) != 2 || got[1].State != StateResolved {
		t.Fatalf("zero-denominator transitions = %+v", got)
	}
}

// TestMetricGuard checks the when clause: the rule only evaluates while
// the guard metric satisfies its comparison.
func TestMetricGuard(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("c").Add(5)
	g := reg.Gauge("g")
	ev, err := New(Config{
		Rules: []Rule{{Name: "guarded", Expr: Expr{
			Metric: "c", Op: ">", Threshold: 0,
			When: &Guard{Metric: "g", Op: ">", Threshold: 0},
		}}},
		Metrics: reg.Snapshot,
	})
	if err != nil {
		t.Fatal(err)
	}
	ev.Eval()
	if n := len(ev.Transitions()); n != 0 {
		t.Fatalf("guard down but %d transitions", n)
	}
	g.Set(1)
	ev.Eval()
	got := ev.Transitions()
	if len(got) != 1 || got[0].State != StateFiring {
		t.Fatalf("transitions = %+v", got)
	}
}

// TestMetricQuantiles checks histogram aggregators against a registry
// histogram, p99 included — the latency-SLO shape.
func TestMetricQuantiles(t *testing.T) {
	reg := obs.NewRegistry()
	h := reg.Histogram("h", 0.1, 1, 10, 100)
	for i := 0; i < 90; i++ {
		h.Observe(0.01)
	}
	for i := 0; i < 10; i++ {
		h.Observe(50)
	}
	ev, err := New(Config{
		Rules: []Rule{
			{Name: "p99", Expr: Expr{Metric: "h", Agg: "p99", Op: ">", Threshold: 1}},
			{Name: "p50", Expr: Expr{Metric: "h", Agg: "p50", Op: ">", Threshold: 1}},
			{Name: "n", Expr: Expr{Metric: "h", Agg: "count", Op: "==", Threshold: 100}},
		},
		Metrics: reg.Snapshot,
	})
	if err != nil {
		t.Fatal(err)
	}
	ev.Eval()
	states := map[string]string{}
	for _, st := range ev.Snapshot().Rules {
		states[st.Name] = st.State
	}
	if states["p99"] != StateFiring || states["p50"] != StateInactive || states["n"] != StateFiring {
		t.Fatalf("states = %v", states)
	}
}

// TestCatchUpEquivalence is the determinism contract: an evaluator
// ticked after every single append produces exactly the transitions of
// one evaluated once at the end — the schedule is a function of the
// data, not of the ticker.
func TestCatchUpEquivalence(t *testing.T) {
	store := tsdb.NewStore(tsdb.DefaultConfig())
	rules := []Rule{
		{Name: "mean", Expr: Expr{Series: "s", Agg: "mean", Window: 8, Op: ">", Threshold: 5}, For: 2},
		{Name: "spike", Expr: Expr{Kind: KindAnomaly, Series: "s", Sigma: 3, BaselineWindows: 16}},
	}
	eager, err := New(Config{Rules: rules, Store: store, Every: 4})
	if err != nil {
		t.Fatal(err)
	}
	for w := uint64(1); w <= 200; w++ {
		v := float64(w % 11)
		if w%67 == 0 {
			v = 1000
		}
		store.Append("s", w, float64(w)*100, v)
		eager.Eval()
	}
	lazy, err := New(Config{Rules: rules, Store: store, Every: 4})
	if err != nil {
		t.Fatal(err)
	}
	lazy.Eval()

	a, b := eager.Transitions(), lazy.Transitions()
	if len(a) == 0 {
		t.Fatal("no transitions — the fixture exercises nothing")
	}
	if len(a) != len(b) {
		t.Fatalf("eager %d transitions, lazy %d", len(a), len(b))
	}
	for i := range a {
		if !reflect.DeepEqual(a[i], b[i]) {
			t.Fatalf("transition %d: eager %+v, lazy %+v", i, a[i], b[i])
		}
	}
}

// TestEmitFanout checks a transition reaches the sink as a KindAlert
// event and bumps the registry instruments.
func TestEmitFanout(t *testing.T) {
	store := tsdb.NewStore(tsdb.DefaultConfig())
	appendSeries(store, "s", 10, 10, 10, 10)
	sink := &sliceTracer{}
	reg := obs.NewRegistry()
	ev, err := New(Config{
		Rules: []Rule{{Name: "hot", Expr: Expr{Series: "s", Op: ">", Threshold: 1},
			Labels: map[string]string{"severity": "test"}}},
		Store:    store,
		Every:    4,
		Sink:     sink,
		Registry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	ev.Eval()
	if len(sink.events) != 1 {
		t.Fatalf("sink got %d events", len(sink.events))
	}
	e := sink.events[0]
	if e.Kind != obs.KindAlert || e.Unit != "hot" || e.Detail != StateFiring ||
		e.Window != 4 || e.Value != 10 || e.Prev != 1 {
		t.Fatalf("sink event = %+v", e)
	}
	snap := reg.Snapshot()
	if v, _ := snapValue(snap, "alerts.transitions"); v != 1 {
		t.Fatalf("alerts.transitions = %v", v)
	}
	if v, _ := snap.Gauge("alerts.firing"); v != 1 {
		t.Fatalf("alerts.firing = %v", v)
	}
}

// TestTransitionHistoryBound checks the retained history is bounded
// and evictions are counted, not silently lost.
func TestTransitionHistoryBound(t *testing.T) {
	reg := obs.NewRegistry()
	c := reg.Counter("c")
	ev, err := New(Config{
		Rules: []Rule{{Name: "r", Expr: Expr{
			Metric: "c", Agg: "increase", Op: ">", Threshold: 0,
		}}},
		Metrics:        reg.Snapshot,
		MaxTransitions: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		c.Add(1)
		ev.Eval() // fires every other tick after priming
		ev.Eval() // resolves
	}
	snap := ev.Snapshot()
	if len(snap.Transitions) != 4 {
		t.Fatalf("history length = %d, want 4", len(snap.Transitions))
	}
	if snap.Dropped == 0 {
		t.Fatal("evictions not counted")
	}
}

// TestStartStop checks the ticker lifecycle: stop is idempotent and
// performs the final catch-up pass, so boundaries reached after the
// last tick still transition.
func TestStartStop(t *testing.T) {
	store := tsdb.NewStore(tsdb.DefaultConfig())
	ev, err := New(Config{
		Rules: []Rule{{Name: "r", Expr: Expr{Series: "s", Op: ">", Threshold: 1}}},
		Store: store,
		Every: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	stop := ev.Start(time.Hour) // the ticker never fires in this test
	appendSeries(store, "s", 10, 10, 10, 10)
	stop()
	stop() // idempotent
	if got := transitionKeys(ev.Transitions()); strings.Join(got, " ") != "firing@4" {
		t.Fatalf("transitions after stop = %v", got)
	}
}
