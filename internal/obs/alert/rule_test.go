package alert

import (
	"encoding/json"
	"strings"
	"testing"
)

// okRule is a minimal valid rule for mutation-based validation tests.
func okRule() Rule {
	return Rule{Name: "r", Expr: Expr{Series: "s", Op: ">", Threshold: 1}}
}

// TestValidateErrors pins the exact validation messages, golden-style
// like the policy registry's Validate tests: each broken rule set fails
// with a deterministic first-offender error.
func TestValidateErrors(t *testing.T) {
	mut := func(f func(*Rule)) []Rule {
		r := okRule()
		f(&r)
		return []Rule{r}
	}
	cases := []struct {
		name  string
		rules []Rule
		want  string
	}{
		{"empty set", nil, "alert: no rules"},
		{"missing name", mut(func(r *Rule) { r.Name = "" }),
			"alert: rule 0: missing name"},
		{"duplicate name", []Rule{okRule(), okRule()},
			`alert: rule 1 ("r"): duplicate rule name`},
		{"negative for", mut(func(r *Rule) { r.For = -1 }),
			`alert: rule 0 ("r"): negative for -1`},
		{"both sources", mut(func(r *Rule) { r.Expr.Metric = "m" }),
			`alert: rule 0 ("r"): need exactly one of expr.series or expr.metric`},
		{"no source", mut(func(r *Rule) { r.Expr.Series = "" }),
			`alert: rule 0 ("r"): need exactly one of expr.series or expr.metric`},
		{"missing op", mut(func(r *Rule) { r.Expr.Op = "" }),
			`alert: rule 0 ("r"): missing expr.op (known: <, <=, >, >=, ==, !=)`},
		{"unknown op", mut(func(r *Rule) { r.Expr.Op = "=~" }),
			`alert: rule 0 ("r"): unknown expr.op "=~" (known: <, <=, >, >=, ==, !=)`},
		{"sigma on threshold", mut(func(r *Rule) { r.Expr.Sigma = 2 }),
			`alert: rule 0 ("r"): expr.sigma/expr.baseline_windows apply to anomaly rules only`},
		{"unknown series agg", mut(func(r *Rule) { r.Expr.Agg = "p99" }),
			`alert: rule 0 ("r"): unknown series aggregator "p99" (known: count, last, max, mean, min, sum)`},
		{"per on series", mut(func(r *Rule) { r.Expr.Per = "q" }),
			`alert: rule 0 ("r"): expr.per applies to metric rules only`},
		{"unknown metric agg", mut(func(r *Rule) {
			r.Expr.Series, r.Expr.Metric, r.Expr.Agg = "", "m", "last"
		}), `alert: rule 0 ("r"): unknown metric aggregator "last" (known: count, increase, max, mean, min, p50, p90, p99, value)`},
		{"per without increase", mut(func(r *Rule) {
			r.Expr.Series, r.Expr.Metric, r.Expr.Per = "", "m", "q"
		}), `alert: rule 0 ("r"): expr.per needs agg "increase"`},
		{"window on metric", mut(func(r *Rule) {
			r.Expr.Series, r.Expr.Metric, r.Expr.Window = "", "m", 8
		}), `alert: rule 0 ("r"): expr.window applies to series rules only`},
		{"anomaly without series", mut(func(r *Rule) {
			r.Expr = Expr{Kind: KindAnomaly, Metric: "m", Sigma: 3, BaselineWindows: 8}
		}), `alert: rule 0 ("r"): anomaly rules need expr.series`},
		{"anomaly sigma", mut(func(r *Rule) {
			r.Expr = Expr{Kind: KindAnomaly, Series: "s", BaselineWindows: 8}
		}), `alert: rule 0 ("r"): anomaly rules need expr.sigma > 0 (got 0)`},
		{"anomaly baseline", mut(func(r *Rule) {
			r.Expr = Expr{Kind: KindAnomaly, Series: "s", Sigma: 3, BaselineWindows: 1}
		}), `alert: rule 0 ("r"): anomaly rules need expr.baseline_windows >= 2 (got 1)`},
		{"anomaly with op", mut(func(r *Rule) {
			r.Expr = Expr{Kind: KindAnomaly, Series: "s", Sigma: 3, BaselineWindows: 8, Op: ">"}
		}), `alert: rule 0 ("r"): anomaly rules compare z-scores; drop expr.op/expr.agg`},
		{"unknown kind", mut(func(r *Rule) { r.Expr.Kind = "rate" }),
			`alert: rule 0 ("r"): unknown expr.kind "rate" (known: "threshold", "anomaly")`},
		{"guard missing metric", mut(func(r *Rule) { r.Expr.When = &Guard{Op: ">"} }),
			`alert: rule 0 ("r"): when.metric missing`},
		{"guard bad op", mut(func(r *Rule) { r.Expr.When = &Guard{Metric: "g", Op: "~"} }),
			`alert: rule 0 ("r"): unknown when.op "~" (known: <, <=, >, >=, ==, !=)`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := Validate(tc.rules)
			if err == nil {
				t.Fatalf("Validate(%+v) = nil, want %q", tc.rules, tc.want)
			}
			if err.Error() != tc.want {
				t.Fatalf("Validate error = %q, want %q", err, tc.want)
			}
		})
	}
}

// TestValidateAccepts covers valid shapes, including defaults left to
// normalization (empty agg) and the explicit threshold kind.
func TestValidateAccepts(t *testing.T) {
	rules := []Rule{
		{Name: "defaults", Expr: Expr{Series: "s", Op: "<", Threshold: 1}},
		{Name: "explicit", Expr: Expr{Kind: KindThreshold, Series: "s", Agg: "max", Window: 16, Op: ">=", Threshold: 2}, For: 3},
		{Name: "metric", Expr: Expr{Metric: "m", Agg: "increase", Per: "q", Op: ">", Threshold: 0.1}},
		{Name: "quantile", Expr: Expr{Metric: "h", Agg: "p99", Op: ">", Threshold: 5}},
		{Name: "anomaly", Expr: Expr{Kind: KindAnomaly, Series: "s", Sigma: 3, BaselineWindows: 64}},
		{Name: "guarded", Expr: Expr{Metric: "m", Op: ">", Threshold: 0,
			When: &Guard{Metric: "g", Op: ">", Threshold: 0}}},
	}
	if err := Validate(rules); err != nil {
		t.Fatalf("Validate() = %v", err)
	}
}

// TestParseRules covers both accepted document shapes and the loud
// rejection of unknown fields.
func TestParseRules(t *testing.T) {
	doc := `{"rules": [{"name": "a", "expr": {"series": "s", "op": ">", "threshold": 1}}]}`
	rules, err := ParseRules(strings.NewReader(doc))
	if err != nil || len(rules) != 1 || rules[0].Name != "a" {
		t.Fatalf("doc form: %v, %+v", err, rules)
	}

	bare := `[{"name": "a", "expr": {"series": "s", "op": ">", "threshold": 1}}]`
	rules, err = ParseRules(strings.NewReader(bare))
	if err != nil || len(rules) != 1 {
		t.Fatalf("bare array: %v, %+v", err, rules)
	}

	if _, err := ParseRules(strings.NewReader(
		`{"rules": [{"name": "a", "expr": {"serie": "typo", "op": ">", "threshold": 1}}]}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
	if _, err := ParseRules(strings.NewReader(`{nope`)); err == nil {
		t.Fatal("malformed JSON accepted")
	}
	if _, err := ParseRules(strings.NewReader(`{"rules": []}`)); err == nil ||
		err.Error() != "alert: no rules" {
		t.Fatalf("empty document error = %v", err)
	}
}

// TestDefaultRules checks the shipped ruleset validates and survives a
// JSON round trip through the same parser that loads user rule files —
// so `powerchop alerts rules > f.json` is always loadable.
func TestDefaultRules(t *testing.T) {
	rules := DefaultRules()
	if err := Validate(rules); err != nil {
		t.Fatalf("DefaultRules invalid: %v", err)
	}
	raw, err := json.Marshal(RuleFile{Rules: rules})
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseRules(strings.NewReader(string(raw)))
	if err != nil {
		t.Fatalf("round trip: %v", err)
	}
	if len(back) != len(rules) {
		t.Fatalf("round trip kept %d of %d rules", len(back), len(rules))
	}
}
