package alert

import (
	"bytes"
	"encoding/json"
	"net/http"
	"sync"
	"time"

	"powerchop/internal/obs"
)

// Webhook delivers transitions to an HTTP endpoint as JSON POSTs, one
// request per transition, from a single background goroutine. Delivery
// is best-effort with bounded retry/backoff: alerting must never be
// able to stall the evaluator, so Enqueue drops (and counts) when the
// queue is full or the webhook is closed.
type Webhook struct {
	url     string
	client  *http.Client
	tries   int
	backoff time.Duration

	mu     sync.Mutex
	closed bool
	queue  chan Transition
	wg     sync.WaitGroup

	sent, failed, dropped *obs.Counter
}

// WebhookConfig tunes delivery; zero values take defaults.
type WebhookConfig struct {
	// Tries is the delivery attempts per transition (default 3) and
	// Backoff the initial retry delay, doubled per attempt (default
	// 250ms).
	Tries   int
	Backoff time.Duration
	// Timeout bounds each POST (default 10s).
	Timeout time.Duration
	// Queue is the buffered queue depth (default 256).
	Queue int
	// Registry, when set, hosts delivery counters
	// (alerts.webhook.{sent,failed,dropped}).
	Registry *obs.Registry
}

// NewWebhook builds a webhook deliverer and starts its goroutine.
func NewWebhook(url string, cfg WebhookConfig) *Webhook {
	if cfg.Tries == 0 {
		cfg.Tries = 3
	}
	if cfg.Backoff == 0 {
		cfg.Backoff = 250 * time.Millisecond
	}
	if cfg.Timeout == 0 {
		cfg.Timeout = 10 * time.Second
	}
	if cfg.Queue == 0 {
		cfg.Queue = 256
	}
	w := &Webhook{
		url:     url,
		client:  &http.Client{Timeout: cfg.Timeout},
		tries:   cfg.Tries,
		backoff: cfg.Backoff,
		queue:   make(chan Transition, cfg.Queue),
	}
	if reg := cfg.Registry; reg != nil {
		w.sent = reg.Counter("alerts.webhook.sent")
		w.failed = reg.Counter("alerts.webhook.failed")
		w.dropped = reg.Counter("alerts.webhook.dropped")
	}
	w.wg.Add(1)
	go w.loop()
	return w
}

// Enqueue queues one transition for delivery, dropping when the queue
// is full or the webhook closed.
func (w *Webhook) Enqueue(tr Transition) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		w.drop()
		return
	}
	select {
	case w.queue <- tr:
	default:
		w.drop()
	}
}

func (w *Webhook) drop() {
	if w.dropped != nil {
		w.dropped.Add(1)
	}
}

// Close drains the queue, delivers what remains and stops the
// goroutine. Idempotent.
func (w *Webhook) Close() {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return
	}
	w.closed = true
	close(w.queue)
	w.mu.Unlock()
	w.wg.Wait()
}

func (w *Webhook) loop() {
	defer w.wg.Done()
	for tr := range w.queue {
		w.post(tr)
	}
}

// post attempts one delivery with exponential backoff. Any 2xx status
// counts as delivered.
func (w *Webhook) post(tr Transition) {
	body, err := json.Marshal(tr)
	if err != nil {
		if w.failed != nil {
			w.failed.Add(1)
		}
		return
	}
	delay := w.backoff
	for attempt := 0; attempt < w.tries; attempt++ {
		if attempt > 0 {
			time.Sleep(delay)
			delay *= 2
		}
		resp, err := w.client.Post(w.url, "application/json", bytes.NewReader(body))
		if err != nil {
			continue
		}
		resp.Body.Close()
		if resp.StatusCode >= 200 && resp.StatusCode < 300 {
			if w.sent != nil {
				w.sent.Add(1)
			}
			return
		}
	}
	if w.failed != nil {
		w.failed.Add(1)
	}
}
