package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"powerchop/internal/obs"
)

// stubAlerts is a canned AlertSource.
type stubAlerts struct {
	body   string
	firing int
}

func (s *stubAlerts) AlertsJSON() ([]byte, error) { return []byte(s.body), nil }
func (s *stubAlerts) FiringCount() int            { return s.firing }

// TestAlertsAPILifecycle checks /api/alerts answers 404 until a source
// is installed, serves its snapshot afterwards, and detaches cleanly.
func TestAlertsAPILifecycle(t *testing.T) {
	m, url := testMonitor(t)
	body, resp := get(t, url+"/api/alerts")
	if resp.StatusCode != http.StatusNotFound || !strings.Contains(body, "no alert evaluator attached") {
		t.Fatalf("detached /api/alerts: %d %q", resp.StatusCode, body)
	}

	m.SetAlerts(&stubAlerts{body: `{"rules": [], "firing": 2}`, firing: 2})
	body, resp = get(t, url+"/api/alerts")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("attached /api/alerts: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Errorf("content-type %q", ct)
	}
	var doc struct {
		Firing int `json:"firing"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil || doc.Firing != 2 {
		t.Fatalf("snapshot: %v %q", err, body)
	}

	m.SetAlerts(nil)
	if _, resp := get(t, url+"/api/alerts"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("re-detached /api/alerts: %d", resp.StatusCode)
	}
}

// TestAlertsStreamFiltersKinds checks /alerts forwards only KindAlert
// events from the hub, ignoring the simulation traffic interleaved
// with them.
func TestAlertsStreamFiltersKinds(t *testing.T) {
	m, url := testMonitor(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	lines, closeBody := streamLines(t, ctx, url+"/alerts?format=ndjson")
	defer closeBody()

	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		for {
			select {
			case <-done:
				return
			default:
				m.Hub().Emit(obs.Event{Kind: obs.KindWindowClose, Window: 9})
				m.Hub().Emit(obs.Event{
					Kind: obs.KindAlert, Unit: "pvt-hit-floor", Detail: "firing",
					Window: 64, Value: 0.4, Prev: 0.5,
				})
			}
		}
	}()
	defer func() { close(done); <-finished }()

	line := waitLine(t, lines, "an alert transition", func(s string) bool {
		return strings.Contains(s, `"kind"`)
	})
	var e struct {
		Kind   string  `json:"kind"`
		Unit   string  `json:"unit"`
		Detail string  `json:"detail"`
		Window uint64  `json:"window"`
		Value  float64 `json:"value"`
		Prev   float64 `json:"prev"`
	}
	if err := json.Unmarshal([]byte(line), &e); err != nil {
		t.Fatalf("alert line not JSON: %v (%q)", err, line)
	}
	if e.Kind != "alert" || e.Unit != "pvt-hit-floor" || e.Detail != "firing" ||
		e.Window != 64 || e.Value != 0.4 || e.Prev != 0.5 {
		t.Fatalf("alert event = %+v", e)
	}
}

// TestProgressCarriesAlertBadge checks /progress exposes the firing
// count and the board cross-links alongside the run board.
func TestProgressCarriesAlertBadge(t *testing.T) {
	m, url := testMonitor(t)
	m.SetAlerts(&stubAlerts{body: `{}`, firing: 3})
	body, _ := get(t, url+"/progress")
	var doc struct {
		AlertsFiring int      `json:"alerts_firing"`
		Boards       []string `json:"boards"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("/progress not JSON: %v\n%s", err, body)
	}
	if doc.AlertsFiring != 3 {
		t.Fatalf("alerts_firing = %d", doc.AlertsFiring)
	}
	if len(doc.Boards) == 0 || doc.Boards[0] != "/dash" {
		t.Fatalf("boards = %v", doc.Boards)
	}
}

// TestRunsBoardFooter checks the /runs footer: latency quantiles from
// the request histograms, the alerts badge and the cross-links — on
// both the empty and populated paths.
func TestRunsBoardFooter(t *testing.T) {
	m, url := testMonitor(t)
	m.SetAlerts(&stubAlerts{firing: 1})
	// Request histograms appear once a route has been served; hit the
	// instrumented progress route first.
	get(t, url+"/progress")
	body, _ := get(t, url+"/runs")
	for _, want := range []string{
		"(no runs recorded)",
		"route latency quantiles:",
		"progress",
		"p99",
		"alerts firing: 1 (/api/alerts)",
		"boards: /dash /progress /runs",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/runs footer missing %q:\n%s", want, body)
		}
	}
}

// TestMetricsAPI checks the JSON twin of /metrics: every registry
// instrument with estimated quantiles on histograms, and empty arrays
// (never null) on an idle registry section.
func TestMetricsAPI(t *testing.T) {
	_, url := testMonitor(t)
	body, resp := get(t, url+"/api/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/api/metrics: %d", resp.StatusCode)
	}
	var doc struct {
		Counters []struct {
			Name  string `json:"name"`
			Value uint64 `json:"value"`
		} `json:"counters"`
		Gauges     []json.RawMessage `json:"gauges"`
		Histograms []struct {
			Name  string  `json:"name"`
			Count uint64  `json:"count"`
			P50   float64 `json:"p50"`
			P99   float64 `json:"p99"`
		} `json:"histograms"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("/api/metrics not JSON: %v\n%s", err, body)
	}
	if doc.Gauges == nil {
		t.Fatal("gauges serialized as null, want []")
	}
	found := false
	for _, c := range doc.Counters {
		if c.Name == "events.total" && c.Value == 42 {
			found = true
		}
	}
	if !found {
		t.Fatalf("events.total missing from %s", body)
	}
	var h *struct {
		Name  string  `json:"name"`
		Count uint64  `json:"count"`
		P50   float64 `json:"p50"`
		P99   float64 `json:"p99"`
	}
	for i := range doc.Histograms {
		if doc.Histograms[i].Name == "window.insns" {
			h = &doc.Histograms[i]
		}
	}
	// The golden histogram holds 5, 10, 50, 1000, 2500: the p99 estimate
	// must sit in the top (overflow) bucket, far above the p50 estimate.
	if h == nil || h.Count != 5 || h.P99 <= h.P50 || h.P99 < 1000 {
		t.Fatalf("window.insns histogram = %+v", h)
	}
}

// TestDashIncludesAlertsPanel pins the dashboard wiring: the alerts
// table, the firing badge and the board cross-links ship in the HTML.
func TestDashIncludesAlertsPanel(t *testing.T) {
	m, url := testMonitor(t)
	m.SetTelemetry(telemetryStore())
	body, resp := get(t, url+"/dash")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/dash: %d", resp.StatusCode)
	}
	for _, want := range []string{
		`id="alerts"`, `id="alertbadge"`, "/api/alerts", "refreshAlerts",
		`href="/runs"`, `href="/progress"`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/dash missing %q", want)
		}
	}
}

// TestPromConformanceWithAlertInstruments checks the evaluator's and
// board's extra gauges keep the Prometheus exposition conformant.
func TestPromConformanceWithAlertInstruments(t *testing.T) {
	reg := goldenRegistry()
	reg.Counter("alerts.evals").Add(3)
	reg.Gauge("alerts.firing").Set(1)
	m := NewMonitor(reg)
	defer m.Shutdown(context.Background())
	srv := httptest.NewServer(m.Handler())
	defer srv.Close()
	body, _ := get(t, srv.URL+"/metrics")
	if err := CheckExposition([]byte(body)); err != nil {
		t.Fatalf("exposition fails conformance: %v\n%s", err, body)
	}
	for _, want := range []string{"alerts_firing 1", "alerts_evals 3", "progress_simulating 0"} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}
