package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"powerchop/internal/obs"
	"powerchop/internal/obs/runlog"
)

// captureTracer records emitted events; safe for concurrent use since
// request spans emit from handler goroutines.
type captureTracer struct {
	mu     sync.Mutex
	events []obs.Event
}

func (c *captureTracer) Emit(e obs.Event) {
	c.mu.Lock()
	c.events = append(c.events, e)
	c.mu.Unlock()
}

func (c *captureTracer) snapshot() []obs.Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]obs.Event(nil), c.events...)
}

// TestMiddlewareRequestID checks the full correlation chain: a
// client-supplied X-Request-Id is echoed on the response, recorded in
// the structured access log, and attached to the root "request" span —
// all three carrying the same ID.
func TestMiddlewareRequestID(t *testing.T) {
	m := NewMonitor(nil)
	defer m.Shutdown(context.Background())
	var logBuf bytes.Buffer
	m.SetAccessLog(slog.New(slog.NewJSONHandler(&logBuf, nil)))
	spans := &captureTracer{}
	m.SetSpanSink(spans)
	srv := httptest.NewServer(m.Handler())
	defer srv.Close()

	req, err := http.NewRequest("GET", srv.URL+"/healthz", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(RequestIDHeader, "corr-1234")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get(RequestIDHeader); got != "corr-1234" {
		t.Fatalf("request ID not echoed: %q", got)
	}

	// Access log line carries the same request ID and a span ID.
	var line struct {
		Msg       string  `json:"msg"`
		Method    string  `json:"method"`
		Path      string  `json:"path"`
		Status    int     `json:"status"`
		RequestID string  `json:"request_id"`
		SpanID    uint64  `json:"span_id"`
		Duration  float64 `json:"duration"`
	}
	if err := json.Unmarshal(logBuf.Bytes(), &line); err != nil {
		t.Fatalf("access log not JSON: %v (%q)", err, logBuf.String())
	}
	if line.Msg != "request" || line.Method != "GET" || line.Path != "/healthz" || line.Status != 200 {
		t.Fatalf("access log line = %+v", line)
	}
	if line.RequestID != "corr-1234" {
		t.Fatalf("access log request_id = %q", line.RequestID)
	}

	// The root span carries the same request ID and the access log's
	// span ID, and it closed with a duration.
	var begin, end *obs.Event
	for _, e := range spans.snapshot() {
		e := e
		switch e.Kind {
		case obs.KindSpanBegin:
			begin = &e
		case obs.KindSpanEnd:
			end = &e
		}
	}
	if begin == nil || end == nil {
		t.Fatal("request span did not begin and end")
	}
	if begin.Unit != "request" || !strings.Contains(begin.Detail, "req=corr-1234") {
		t.Fatalf("root span begin = %+v", begin)
	}
	if !strings.Contains(begin.Detail, "route=healthz") {
		t.Fatalf("root span missing route attr: %q", begin.Detail)
	}
	if uint64(begin.Count) != line.SpanID {
		t.Fatalf("span ID mismatch: span %v, access log %d", begin.Count, line.SpanID)
	}
	if end.Count != begin.Count {
		t.Fatalf("span end ID %v != begin ID %v", end.Count, begin.Count)
	}
}

// TestMiddlewareGeneratedRequestID checks a request without an ID gets
// a fresh hex one.
func TestMiddlewareGeneratedRequestID(t *testing.T) {
	m := NewMonitor(nil)
	defer m.Shutdown(context.Background())
	srv := httptest.NewServer(m.Handler())
	defer srv.Close()

	_, resp := get(t, srv.URL+"/healthz")
	id := resp.Header.Get(RequestIDHeader)
	if !regexp.MustCompile(`^[0-9a-f]{16}$`).MatchString(id) {
		t.Fatalf("generated request ID %q not 16 hex chars", id)
	}
	_, resp2 := get(t, srv.URL+"/healthz")
	if resp2.Header.Get(RequestIDHeader) == id {
		t.Fatal("two requests got the same generated ID")
	}
}

// TestMiddlewareREDMetrics checks every endpoint's request counter and
// latency histogram appear on /metrics, pre-registered at mount time and
// incremented per hit, and the exposition stays conformant.
func TestMiddlewareREDMetrics(t *testing.T) {
	m := NewMonitor(nil)
	defer m.Shutdown(context.Background())
	srv := httptest.NewServer(m.Handler())
	defer srv.Close()

	get(t, srv.URL+"/progress")
	get(t, srv.URL+"/healthz")
	body, _ := get(t, srv.URL+"/metrics")
	if err := CheckExposition([]byte(body)); err != nil {
		t.Fatalf("/metrics fails conformance: %v\n%s", err, body)
	}
	for _, want := range []string{
		"http_requests_progress 1",
		"http_requests_healthz 1",
		"http_requests_metrics 1", // in-flight scrape counted before snapshot
		"http_errors_progress 0",
		"http_seconds_progress_count 1",
		"http_requests_api_runs 0", // registered at mount, untouched
		"serve_events_dropped 0",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	samples := 0
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, "serve_events_dropped ") {
			samples++
		}
	}
	if samples != 1 {
		t.Errorf("serve_events_dropped has %d samples, want exactly 1:\n%s", samples, body)
	}
}

// TestMiddlewarePanicRecovery checks a panicking handler turns into a
// 500 response, an error-counter increment and an Error access-log line
// instead of tearing down the connection.
func TestMiddlewarePanicRecovery(t *testing.T) {
	m := NewMonitor(nil)
	defer m.Shutdown(context.Background())
	var logBuf bytes.Buffer
	m.SetAccessLog(slog.New(slog.NewJSONHandler(&logBuf, nil)))
	m.Mount("GET /boom", func(http.ResponseWriter, *http.Request) {
		panic("kaboom")
	})
	srv := httptest.NewServer(m.Handler())
	defer srv.Close()

	_, resp := get(t, srv.URL+"/boom")
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panicking handler returned %d, want 500", resp.StatusCode)
	}
	if resp.Header.Get(RequestIDHeader) == "" {
		t.Error("panic response lost its request ID")
	}
	body, _ := get(t, srv.URL+"/metrics")
	for _, want := range []string{"http_requests_boom 1", "http_errors_boom 1"} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q after panic", want)
		}
	}
	var line struct {
		Level string `json:"level"`
		Msg   string `json:"msg"`
	}
	if err := json.Unmarshal([]byte(strings.SplitN(logBuf.String(), "\n", 2)[0]), &line); err != nil {
		t.Fatalf("access log not JSON: %v", err)
	}
	if line.Level != "ERROR" || line.Msg != "request panicked" {
		t.Fatalf("panic access log line = %+v", line)
	}
}

// TestHealthProbes checks /healthz always answers 200 while /readyz
// tracks the serve lifecycle: 503 before Start, 200 while serving, 503
// again once Shutdown begins draining.
func TestHealthProbes(t *testing.T) {
	m := NewMonitor(nil)
	srv := httptest.NewServer(m.Handler())
	defer srv.Close()

	body, resp := get(t, srv.URL+"/healthz")
	if resp.StatusCode != http.StatusOK || !strings.Contains(body, "ok") {
		t.Fatalf("healthz: %d %q", resp.StatusCode, body)
	}
	_, resp = get(t, srv.URL+"/readyz")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz before Start = %d, want 503", resp.StatusCode)
	}

	if err := m.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	_, resp = get(t, srv.URL+"/readyz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz while serving = %d, want 200", resp.StatusCode)
	}

	if err := m.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	body, resp = get(t, srv.URL+"/readyz")
	if resp.StatusCode != http.StatusServiceUnavailable || !strings.Contains(body, "draining") {
		t.Fatalf("readyz after Shutdown = %d %q, want 503 draining", resp.StatusCode, body)
	}
	_, resp = get(t, srv.URL+"/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz after Shutdown = %d, want 200", resp.StatusCode)
	}
}

// TestRunsEndpoints checks /api/runs and the /runs board over an
// in-memory history: filtering, pagination, the persistence flag and the
// human-readable table.
func TestRunsEndpoints(t *testing.T) {
	m := NewMonitor(nil)
	defer m.Shutdown(context.Background())
	store := runlog.Memory()
	base := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	for i, r := range []runlog.Record{
		{Kind: "run", Name: "namd", DurationMS: 120, CacheHits: 2, CacheMisses: 1},
		{Kind: "figure", Name: "fig12", DurationMS: 4500},
		{Kind: "run", Name: "gobmk", Error: "boom"},
	} {
		r.Time = base.Add(time.Duration(i) * time.Minute)
		if err := store.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	m.SetRunLog(store)
	srv := httptest.NewServer(m.Handler())
	defer srv.Close()

	body, resp := get(t, srv.URL+"/api/runs")
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Errorf("content-type %q", ct)
	}
	var doc runsResponse
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("/api/runs not JSON: %v\n%s", err, body)
	}
	if doc.Count != 3 || doc.Persistent {
		t.Fatalf("runs doc: count=%d persistent=%v", doc.Count, doc.Persistent)
	}
	if doc.Runs[0].Name != "gobmk" || doc.Runs[0].Outcome != "error" {
		t.Fatalf("newest-first ordering broken: %+v", doc.Runs[0])
	}

	body, _ = get(t, srv.URL+"/api/runs?kind=run&outcome=ok")
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Count != 1 || doc.Runs[0].Name != "namd" {
		t.Fatalf("filtered runs: %+v", doc)
	}
	body, _ = get(t, srv.URL+"/api/runs?limit=1&offset=1")
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Count != 1 || doc.Runs[0].Name != "fig12" {
		t.Fatalf("paginated runs: %+v", doc)
	}

	body, resp = get(t, srv.URL+"/runs")
	if !strings.HasPrefix(resp.Header.Get("Content-Type"), "text/plain") {
		t.Errorf("board content-type %q", resp.Header.Get("Content-Type"))
	}
	for _, want := range []string{"namd", "fig12", "error: boom", "2/3", "in-memory history"} {
		if !strings.Contains(body, want) {
			t.Errorf("/runs board missing %q:\n%s", want, body)
		}
	}

	// No store installed → empty history, not an error.
	m.SetRunLog(nil)
	body, resp = get(t, srv.URL+"/api/runs")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/api/runs without store = %d", resp.StatusCode)
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil || doc.Count != 0 {
		t.Fatalf("empty history doc: %v %+v", err, doc)
	}
}

// TestStalledClientDropMetric (satellite S1) checks a stalled SSE
// client's dropped events surface as the registered serve_events_dropped
// counter on /metrics, not just the hub's internal tally.
func TestStalledClientDropMetric(t *testing.T) {
	m := NewMonitor(nil)
	defer m.Shutdown(context.Background())
	srv := httptest.NewServer(m.Handler())
	defer srv.Close()

	// A one-slot subscriber whose body is never read: the handler blocks
	// on the unflushed connection while emits overflow the buffer.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, "GET", srv.URL+"/events?buffer=1", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	waitFor(t, "stalled subscriber", func() bool { return m.Hub().Subscribers() == 1 })

	for m.Hub().Dropped() == 0 {
		for i := 0; i < 100; i++ {
			m.Hub().Emit(obs.Event{Kind: obs.KindTranslate})
		}
	}

	body, _ := get(t, srv.URL+"/metrics")
	val := metricValue(t, body, "serve_events_dropped")
	if val <= 0 {
		t.Fatalf("serve_events_dropped = %v after stalled client, want > 0:\n%s", val, body)
	}
	if err := CheckExposition([]byte(body)); err != nil {
		t.Fatalf("/metrics fails conformance with drops: %v", err)
	}
}

// metricValue extracts a sample value from a text exposition.
func metricValue(t *testing.T, body, name string) float64 {
	t.Helper()
	for _, line := range strings.Split(body, "\n") {
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			v, err := strconv.ParseFloat(rest, 64)
			if err != nil {
				t.Fatalf("metric %s value %q: %v", name, rest, err)
			}
			return v
		}
	}
	t.Fatalf("metric %s not found:\n%s", name, body)
	return 0
}

// TestShutdownStreamGoroutineLeak (satellite S2) checks draining the
// monitor releases every streaming handler and its keepalive ticker: the
// goroutine count returns to its pre-stream baseline after Shutdown.
func TestShutdownStreamGoroutineLeak(t *testing.T) {
	baseline := runtime.NumGoroutine()

	m := NewMonitor(nil)
	if err := m.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	url := fmt.Sprintf("http://%s", m.Addr())
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	for _, path := range []string{"/events", "/decisions", "/events?format=ndjson"} {
		lines, closeBody := streamLines(t, ctx, url+path)
		defer closeBody()
		go func() {
			for range lines {
			}
		}()
	}
	waitFor(t, "stream subscriptions", func() bool { return m.Hub().Subscribers() == 3 })

	sctx, scancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer scancel()
	if err := m.Shutdown(sctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	waitFor(t, "subscriber detach", func() bool { return m.Hub().Subscribers() == 0 })

	// Handler goroutines, keepalive tickers and client readers must all
	// wind down; allow slack for the HTTP client's idle pool.
	waitFor(t, "goroutines to drain", func() bool {
		runtime.GC()
		return runtime.NumGoroutine() <= baseline+3
	})
}
