package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"

	"powerchop/internal/obs/tsdb"
)

// SetTelemetry installs the time-series store behind GET /api/series,
// GET /api/query and /dash. A nil store makes all three answer 404
// again. The store is read-only from here: the monitor only queries.
func (m *Monitor) SetTelemetry(ts *tsdb.Store) {
	m.mu.Lock()
	m.telemetry = ts
	m.mu.Unlock()
}

// Telemetry returns the installed store (nil when none).
func (m *Monitor) Telemetry() *tsdb.Store {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.telemetry
}

// handleSeries answers GET /api/series: every series with its sample
// count and per-level occupancy, for discovery before /api/query.
func (m *Monitor) handleSeries(w http.ResponseWriter, _ *http.Request) {
	ts := m.Telemetry()
	if ts == nil {
		http.Error(w, "no telemetry store attached", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(struct {
		Series []tsdb.SeriesInfo `json:"series"`
	}{Series: ts.Info()})
}

// handleQuery answers GET /api/query range queries:
//
//	series      series name (required; see /api/series)
//	from, to    window range, inclusive (0/absent = unbounded)
//	from_cycle, to_cycle  cycle range (floats; 0/absent = unbounded)
//	step        desired windows per point; the coarsest level whose
//	            bucket width fits answers (absent = raw)
//	agg         mean (default), min, max, last, sum or count
func (m *Monitor) handleQuery(w http.ResponseWriter, r *http.Request) {
	ts := m.Telemetry()
	if ts == nil {
		http.Error(w, "no telemetry store attached", http.StatusNotFound)
		return
	}
	q := tsdb.Query{Series: r.URL.Query().Get("series"), Agg: r.URL.Query().Get("agg")}
	if q.Series == "" {
		http.Error(w, "missing series parameter (see /api/series)", http.StatusBadRequest)
		return
	}
	bad := func(name, val string) {
		http.Error(w, fmt.Sprintf("bad %s parameter %q", name, val), http.StatusBadRequest)
	}
	for name, dst := range map[string]*uint64{"from": &q.From, "to": &q.To, "step": &q.Step} {
		if s := r.URL.Query().Get(name); s != "" {
			v, err := strconv.ParseUint(s, 10, 64)
			if err != nil {
				bad(name, s)
				return
			}
			*dst = v
		}
	}
	for name, dst := range map[string]*float64{"from_cycle": &q.FromCycle, "to_cycle": &q.ToCycle} {
		if s := r.URL.Query().Get(name); s != "" {
			v, err := strconv.ParseFloat(s, 64)
			if err != nil {
				bad(name, s)
				return
			}
			*dst = v
		}
	}
	res, err := ts.Query(q)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(res)
}

// handleDash serves the live telemetry dashboard: a self-contained HTML
// page that discovers series via /api/series, draws an SVG sparkline per
// series from /api/query, and refreshes when the /events SSE stream
// reports window closes (with a slow fallback poll while idle).
func (m *Monitor) handleDash(w http.ResponseWriter, _ *http.Request) {
	if m.Telemetry() == nil {
		http.Error(w, "no telemetry store attached", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	w.Write([]byte(dashHTML))
}

// dashHTML is the dashboard page. No external assets: the monitor stays
// usable on an air-gapped host.
const dashHTML = `<!doctype html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>powerchop telemetry</title>
<style>
  body { font: 13px/1.5 ui-monospace, SFMono-Regular, Menlo, monospace;
         background: #101418; color: #d8dee4; margin: 1.5em; }
  h1 { font-size: 15px; }
  h1 .live { color: #7ac77a; }
  table { border-collapse: collapse; }
  td, th { padding: 2px 12px 2px 0; text-align: left; white-space: nowrap; }
  th { color: #8b949e; font-weight: normal; border-bottom: 1px solid #30363d; }
  td.num { font-variant-numeric: tabular-nums; }
  svg { vertical-align: middle; }
  polyline { fill: none; stroke: #58a6ff; stroke-width: 1.2; }
  .note { color: #8b949e; }
  .badge { background: #da3633; color: #fff; border-radius: 9px;
           padding: 0 7px; font-size: 12px; }
  td.firing { color: #ff7b72; } td.pending { color: #d29922; }
  td.inactive { color: #7ac77a; }
</style>
</head>
<body>
<h1>powerchop telemetry <span id="state" class="live">&#9679;</span>
<span id="alertbadge" class="badge" style="display:none"></span></h1>
<p class="note">per-window series from the embedded tsdb; sparklines show the
newest raw windows. <a href="/api/series" style="color:#58a6ff">/api/series</a>
&middot; query with /api/query?series=NAME&amp;step=N&amp;agg=mean</p>
<p class="note">boards: <a href="/runs" style="color:#58a6ff">/runs</a>
&middot; <a href="/progress" style="color:#58a6ff">/progress</a>
&middot; <a href="/api/alerts" style="color:#58a6ff">/api/alerts</a>
&middot; <a href="/api/metrics" style="color:#58a6ff">/api/metrics</a></p>
<h1>alerts</h1>
<table id="alerts">
<thead><tr><th>rule</th><th>state</th><th>source</th><th>value</th><th>threshold</th><th>labels</th></tr></thead>
<tbody><tr><td colspan=6 class=note>(loading)</td></tr></tbody>
</table>
<table id="tbl">
<thead><tr><th>series</th><th>samples</th><th>last</th><th>min</th><th>max</th><th>trend</th></tr></thead>
<tbody></tbody>
</table>
<script>
"use strict";
const POINTS = 160;          // sparkline width in raw windows
const MIN_REFRESH_MS = 500;  // coalesce SSE bursts
const IDLE_POLL_MS = 5000;   // fallback when the event stream is quiet
let dirty = true, refreshing = false;

function spark(values, w, h) {
  if (!values.length) return "";
  let lo = Math.min(...values), hi = Math.max(...values);
  if (hi === lo) { hi = lo + 1; }
  const pts = values.map((v, i) => {
    const x = values.length === 1 ? 0 : i / (values.length - 1) * (w - 2) + 1;
    const y = h - 2 - (v - lo) / (hi - lo) * (h - 4) + 1;
    return x.toFixed(1) + "," + y.toFixed(1);
  }).join(" ");
  return '<svg width="' + w + '" height="' + h + '"><polyline points="' + pts + '"/></svg>';
}

function fmt(v) {
  if (v === undefined || v === null) return "-";
  return Math.abs(v) >= 1000 ? v.toLocaleString("en-US", {maximumFractionDigits: 0})
                             : +v.toPrecision(4) + "";
}

async function refresh() {
  if (refreshing) { dirty = true; return; }
  refreshing = true; dirty = false;
  try {
    const info = await (await fetch("/api/series")).json();
    const rows = [];
    for (const s of info.series || []) {
      const last = s.levels && s.levels[0] ? s.levels[0].end : 0;
      const from = last > POINTS ? last - POINTS + 1 : 0;
      const q = await (await fetch("/api/query?series=" + encodeURIComponent(s.name) +
                                   (from ? "&from=" + from : "") + "&agg=last")).json();
      const vals = (q.points || []).map(p => p.value);
      const tail = vals.length ? vals[vals.length - 1] : undefined;
      rows.push("<tr><td>" + s.name + "</td><td class=num>" + s.samples +
                "</td><td class=num>" + fmt(tail) +
                "</td><td class=num>" + fmt(vals.length ? Math.min(...vals) : undefined) +
                "</td><td class=num>" + fmt(vals.length ? Math.max(...vals) : undefined) +
                "</td><td>" + spark(vals, 320, 28) + "</td></tr>");
    }
    document.querySelector("#tbl tbody").innerHTML =
      rows.join("") || '<tr><td colspan=6 class=note>(no samples yet - trigger a run, e.g. /api/run?bench=gobmk)</td></tr>';
  } finally {
    refreshing = false;
    if (dirty) setTimeout(refresh, MIN_REFRESH_MS);
  }
}

async function refreshAlerts() {
  const badge = document.getElementById("alertbadge");
  const tbody = document.querySelector("#alerts tbody");
  try {
    const resp = await fetch("/api/alerts");
    if (resp.status === 404) {
      tbody.innerHTML = '<tr><td colspan=6 class=note>(no alert evaluator attached)</td></tr>';
      badge.style.display = "none";
      return;
    }
    const snap = await resp.json();
    const rows = (snap.rules || []).map(r => {
      const labels = Object.entries(r.labels || {}).map(([k, v]) => k + "=" + v).join(" ");
      return "<tr><td>" + r.name + "</td><td class=" + r.state + ">" + r.state +
             "</td><td>" + r.source + "</td><td class=num>" +
             (r.evaluated ? fmt(r.value) : "-") +
             "</td><td class=num>" + fmt(r.threshold) + "</td><td>" + labels + "</td></tr>";
    });
    tbody.innerHTML = rows.join("") || '<tr><td colspan=6 class=note>(no rules loaded)</td></tr>';
    if (snap.firing > 0) {
      badge.textContent = snap.firing + " firing";
      badge.style.display = "";
    } else {
      badge.style.display = "none";
    }
  } catch (_) {}
}

const es = new EventSource("/events");
es.onmessage = ev => {
  try {
    const e = JSON.parse(ev.data);
    if (e.kind === "window-close" || e.kind === "run-end") {
      if (!refreshing) setTimeout(refresh, MIN_REFRESH_MS);
      else dirty = true;
    }
    if (e.kind === "alert") setTimeout(refreshAlerts, 100);
  } catch (_) {}
};
es.onerror = () => { document.getElementById("state").style.color = "#d29922"; };
es.onopen = () => { document.getElementById("state").style.color = "#7ac77a"; };

refresh();
refreshAlerts();
setInterval(() => { refresh(); refreshAlerts(); }, IDLE_POLL_MS);
</script>
</body>
</html>
`
