package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"

	"powerchop/internal/obs/runlog"
	"powerchop/internal/textplot"
)

// maxRunsPage caps one /api/runs response; clients page with
// offset/limit for more.
const maxRunsPage = 500

// runsResponse is the GET /api/runs document.
type runsResponse struct {
	// Runs is the matching history, newest first.
	Runs []runlog.Record `json:"runs"`
	// Count is len(Runs); Corrupt the journal lines skipped as
	// unparsable; Persistent whether the history survives restarts.
	Count      int  `json:"count"`
	Corrupt    int  `json:"corrupt,omitempty"`
	Persistent bool `json:"persistent"`
}

// runsFilter parses the shared query parameters of /api/runs and /runs.
func runsFilter(r *http.Request) runlog.Filter {
	q := r.URL.Query()
	f := runlog.Filter{
		Kind:    q.Get("kind"),
		Name:    q.Get("name"),
		Outcome: q.Get("outcome"),
		Limit:   maxRunsPage,
	}
	if n, err := strconv.Atoi(q.Get("limit")); err == nil && n > 0 && n < maxRunsPage {
		f.Limit = n
	}
	if n, err := strconv.Atoi(q.Get("offset")); err == nil && n > 0 {
		f.Offset = n
	}
	return f
}

// handleRunsAPI serves the persistent run history as JSON, filterable
// by ?kind=, ?name= and ?outcome=, paginated with ?limit= and ?offset=.
func (m *Monitor) handleRunsAPI(w http.ResponseWriter, r *http.Request) {
	store := m.RunLog()
	recs, corrupt, err := store.List(runsFilter(r))
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	if recs == nil {
		recs = []runlog.Record{}
	}
	resp := runsResponse{
		Runs:       recs,
		Count:      len(recs),
		Corrupt:    corrupt,
		Persistent: store.Persistent(),
	}
	b, err := json.MarshalIndent(resp, "", "  ")
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.Write(append(b, '\n'))
}

// handleRunsBoard renders the run history as a plain-text table, the
// human-facing twin of /api/runs (same filters).
func (m *Monitor) handleRunsBoard(w http.ResponseWriter, r *http.Request) {
	store := m.RunLog()
	recs, corrupt, err := store.List(runsFilter(r))
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if len(recs) == 0 {
		fmt.Fprintln(w, "(no runs recorded)")
		m.runsFooter(w)
		return
	}
	rows := make([][]string, 0, len(recs))
	for _, rec := range recs {
		cache := ""
		if rec.CacheHits+rec.CacheMisses > 0 {
			cache = fmt.Sprintf("%d/%d", rec.CacheHits, rec.CacheHits+rec.CacheMisses)
		}
		outcome := rec.Outcome
		if rec.Error != "" {
			outcome += ": " + rec.Error
		}
		rows = append(rows, []string{
			rec.Time.Format("2006-01-02 15:04:05"),
			rec.Kind,
			rec.Name,
			fmt.Sprintf("%.0fms", rec.DurationMS),
			cache,
			outcome,
		})
	}
	fmt.Fprint(w, textplot.Table(
		[]string{"time", "kind", "name", "duration", "cache", "outcome"}, rows))
	if corrupt > 0 {
		fmt.Fprintf(w, "(%d corrupt journal lines skipped)\n", corrupt)
	}
	if !store.Persistent() {
		fmt.Fprintln(w, "(in-memory history: start serve with -cache to persist)")
	}
	m.runsFooter(w)
}

// runsFooter closes the /runs board with the route-latency quantile
// summary, the alerts badge and the board cross-links.
func (m *Monitor) runsFooter(w http.ResponseWriter) {
	if lines := routeQuantiles(m.reg.Snapshot()); len(lines) > 0 {
		fmt.Fprintln(w, "route latency quantiles:")
		for _, l := range lines {
			fmt.Fprintln(w, l)
		}
	}
	fmt.Fprintf(w, "alerts firing: %d (/api/alerts)\n", m.alertsFiring())
	fmt.Fprintln(w, "boards: /dash /progress /runs")
}
