package serve

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"powerchop/internal/obs"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// goldenRegistry builds the fixed registry behind testdata/metrics.golden.
func goldenRegistry() *obs.Registry {
	reg := obs.NewRegistry()
	reg.Counter("events.total").Add(42)
	reg.Counter("events.pvt-hit").Add(7)
	h := reg.Histogram("window.insns", 10, 100, 1000)
	for _, v := range []float64{5, 10, 50, 1000, 2500} {
		h.Observe(v)
	}
	return reg
}

// TestWriteMetricsGolden pins the exact exposition bytes: counter lines,
// cumulative histogram buckets, the +Inf bucket equal to _count, and
// dotted/dashed names sanitized to underscores.
func TestWriteMetricsGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteMetrics(&buf, goldenRegistry().Snapshot()); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "metrics.golden")
	if *updateGolden {
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("exposition differs from golden (rerun with -update to accept):\n--- got ---\n%s--- want ---\n%s", buf.Bytes(), want)
	}
	if err := CheckExposition(buf.Bytes()); err != nil {
		t.Errorf("golden exposition fails conformance: %v", err)
	}
}

func TestCheckExpositionAccepts(t *testing.T) {
	good := `# A free-form comment.
# TYPE up gauge
up 1
# TYPE http_requests_total counter
http_requests_total{method="get",code="200"} 1027 1395066363000
http_requests_total{method="post"} 3
# TYPE lat histogram
lat_bucket{le="0.1"} 2
lat_bucket{le="+Inf"} 5
lat_sum 12.5
lat_count 5
`
	if err := CheckExposition([]byte(good)); err != nil {
		t.Fatalf("valid exposition rejected: %v", err)
	}
	if err := CheckExposition(nil); err != nil {
		t.Fatalf("empty exposition rejected: %v", err)
	}
}

func TestCheckExpositionRejects(t *testing.T) {
	cases := map[string]string{
		"no trailing newline": "# TYPE a counter\na 1",
		"sample without TYPE": "a 1\n",
		"TYPE after samples":  "# TYPE a counter\na 1\n# TYPE a counter\n",
		"illegal name":        "# TYPE 9a counter\n9a 1\n",
		"unknown type":        "# TYPE a widget\na 1\n",
		"bad value":           "# TYPE a counter\na one\n",
		"duplicate sample":    "# TYPE a counter\na 1\na 2\n",
		"duplicate label":     "# TYPE a counter\na{x=\"1\",x=\"2\"} 1\n",
		"reserved label":      "# TYPE a counter\na{__x=\"1\"} 1\n",
		"missing +Inf bucket": "# TYPE h histogram\nh_bucket{le=\"1\"} 2\nh_sum 1\nh_count 2\n",
		"+Inf != count":       "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 2\n",
		"missing _sum":        "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 2\nh_count 2\n",
		"non-cumulative buckets": "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\n" +
			"h_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 5\n",
	}
	for name, body := range cases {
		if err := CheckExposition([]byte(body)); err == nil {
			t.Errorf("%s: accepted:\n%s", name, body)
		}
	}
}

// TestWriteMetricsConcurrent scrapes while instruments are being updated;
// run with -race this pins the snapshot isolation of the exposition path.
func TestWriteMetricsConcurrent(t *testing.T) {
	reg := obs.NewRegistry()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				reg.Counter("spin.count").Inc()
				reg.Histogram("spin.lat", 1, 10, 100).Observe(float64(i % 200))
			}
		}()
	}
	for i := 0; i < 50; i++ {
		var buf bytes.Buffer
		if err := WriteMetrics(&buf, reg.Snapshot()); err != nil {
			t.Fatal(err)
		}
		if err := CheckExposition(buf.Bytes()); err != nil {
			t.Fatalf("scrape %d nonconformant: %v\n%s", i, err, buf.String())
		}
	}
	close(stop)
	wg.Wait()
}

// TestWriteMetricsGauges pins the gauge family exposition and checks the
// process-health gauges come out conformant under their conventional
// Prometheus names.
func TestWriteMetricsGauges(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("events.total").Add(3)
	reg.Gauge("pool.depth").Set(2.5)
	obs.RegisterProcessMetrics(reg)
	var buf bytes.Buffer
	if err := WriteMetrics(&buf, reg.Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE pool_depth gauge\n",
		"pool_depth 2.5\n",
		"# TYPE go_goroutines gauge\n",
		"# TYPE go_gomaxprocs gauge\n",
		"# TYPE go_memstats_heap_alloc_bytes gauge\n",
		"# TYPE go_gc_pause_total_seconds gauge\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if err := CheckExposition(buf.Bytes()); err != nil {
		t.Fatalf("gauge exposition fails conformance: %v\n%s", err, out)
	}
}

func TestFormatFloat(t *testing.T) {
	var buf bytes.Buffer
	reg := obs.NewRegistry()
	reg.Histogram("frac", 0.25, 0.5).Observe(0.3)
	if err := WriteMetrics(&buf, reg.Snapshot()); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`le="0.25"`, `le="0.5"`, "frac_sum 0.3"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("exposition missing %q:\n%s", want, buf.String())
		}
	}
}
