package serve

import (
	"sync"
	"sync/atomic"

	"powerchop/internal/obs"
)

// Hub is a bounded fan-out obs.Tracer: every emitted event is offered to
// each subscriber's buffered channel, and a subscriber that cannot keep
// up loses events (counted, never blocking the simulation). Emit never
// blocks and takes no locks on the hot path — the subscriber list is a
// copy-on-write slice behind an atomic pointer.
//
// Subscriber channels are never closed: closing would race with a
// concurrent Emit. A reader detaches with Sub.Close and stops reading;
// events already buffered simply become garbage.
type Hub struct {
	subs    atomic.Pointer[[]*Sub]
	mu      sync.Mutex // serializes Subscribe/Close rewrites
	dropped atomic.Uint64
}

// DefaultSubBuffer is the per-subscriber channel capacity used when
// Subscribe is called with a non-positive buffer size.
const DefaultSubBuffer = 1024

// NewHub returns an empty hub.
func NewHub() *Hub {
	h := &Hub{}
	h.subs.Store(&[]*Sub{})
	return h
}

// Sub is one subscription to a Hub's event stream.
type Sub struct {
	hub     *Hub
	ch      chan obs.Event
	dropped atomic.Uint64
	closed  atomic.Bool
}

// Emit implements obs.Tracer. Events are offered to every live
// subscriber; a full subscriber buffer drops the event for that
// subscriber and increments both its and the hub's drop counters.
func (h *Hub) Emit(e obs.Event) {
	for _, s := range *h.subs.Load() {
		select {
		case s.ch <- e:
		default:
			s.dropped.Add(1)
			h.dropped.Add(1)
		}
	}
}

// Subscribe registers a new subscriber whose channel buffers up to buf
// events (DefaultSubBuffer when buf <= 0).
func (h *Hub) Subscribe(buf int) *Sub {
	if buf <= 0 {
		buf = DefaultSubBuffer
	}
	s := &Sub{hub: h, ch: make(chan obs.Event, buf)}
	h.mu.Lock()
	defer h.mu.Unlock()
	old := *h.subs.Load()
	next := make([]*Sub, len(old), len(old)+1)
	copy(next, old)
	next = append(next, s)
	h.subs.Store(&next)
	return s
}

// Events returns the subscription's receive channel. It is never closed;
// callers must also select on their own cancellation signal.
func (s *Sub) Events() <-chan obs.Event { return s.ch }

// Dropped returns how many events this subscriber has lost to a full
// buffer.
func (s *Sub) Dropped() uint64 { return s.dropped.Load() }

// Close detaches the subscription from the hub. The channel is left open
// (and may still hold buffered events); Close is idempotent.
func (s *Sub) Close() {
	if s.closed.Swap(true) {
		return
	}
	h := s.hub
	h.mu.Lock()
	defer h.mu.Unlock()
	old := *h.subs.Load()
	next := make([]*Sub, 0, len(old))
	for _, o := range old {
		if o != s {
			next = append(next, o)
		}
	}
	h.subs.Store(&next)
}

// Dropped returns the total events dropped across all subscribers since
// the hub was created (including subscribers since closed).
func (h *Hub) Dropped() uint64 { return h.dropped.Load() }

// Subscribers returns the current number of live subscriptions.
func (h *Hub) Subscribers() int { return len(*h.subs.Load()) }
