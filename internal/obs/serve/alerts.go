package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strings"

	"powerchop/internal/obs"
)

// AlertSource supplies the alert snapshot behind GET /api/alerts and
// the firing count shown as a badge on every board. alert.Evaluator
// implements it.
type AlertSource interface {
	AlertsJSON() ([]byte, error)
	FiringCount() int
}

// SetAlerts installs the source behind GET /api/alerts and the boards'
// firing badges. A nil source makes the snapshot answer 404 again; the
// /alerts live stream works either way (it is fed by KindAlert events
// on the hub, not by the source).
func (m *Monitor) SetAlerts(src AlertSource) {
	m.mu.Lock()
	m.alerts = src
	m.mu.Unlock()
}

// alertsFiring reports the installed source's firing count (0 when no
// source is installed).
func (m *Monitor) alertsFiring() int {
	m.mu.Lock()
	src := m.alerts
	m.mu.Unlock()
	if src == nil {
		return 0
	}
	return src.FiringCount()
}

// handleAlertsStream streams alert transitions live: the /events loop
// filtered down to KindAlert. SSE framing by default, ?format=ndjson
// for NDJSON.
func (m *Monitor) handleAlertsStream(w http.ResponseWriter, r *http.Request) {
	m.streamEvents(w, r, func(e obs.Event) bool { return e.Kind == obs.KindAlert })
}

// handleAlertsAPI serves the evaluator's full snapshot: rules, states,
// transition history.
func (m *Monitor) handleAlertsAPI(w http.ResponseWriter, _ *http.Request) {
	m.mu.Lock()
	src := m.alerts
	m.mu.Unlock()
	if src == nil {
		http.Error(w, "no alert evaluator attached", http.StatusNotFound)
		return
	}
	b, err := src.AlertsJSON()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.Write(append(b, '\n'))
}

// metricJSON mirrors the registry snapshot for /api/metrics, with
// estimated quantiles on every histogram.
type metricsDoc struct {
	Counters   []counterJSON `json:"counters"`
	Gauges     []gaugeJSON   `json:"gauges"`
	Histograms []histJSON    `json:"histograms"`
}

type counterJSON struct {
	Name  string `json:"name"`
	Value uint64 `json:"value"`
}

type gaugeJSON struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

type histJSON struct {
	Name  string  `json:"name"`
	Count uint64  `json:"count"`
	Sum   float64 `json:"sum"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
}

// handleMetricsAPI is the JSON twin of /metrics: the full registry
// snapshot with estimated p50/p90/p99 for every registered histogram
// (the text exposition carries only the raw buckets).
func (m *Monitor) handleMetricsAPI(w http.ResponseWriter, _ *http.Request) {
	snap := m.reg.Snapshot()
	doc := metricsDoc{
		Counters:   []counterJSON{},
		Gauges:     []gaugeJSON{},
		Histograms: []histJSON{},
	}
	for _, c := range snap.Counters {
		doc.Counters = append(doc.Counters, counterJSON{Name: c.Name, Value: c.Value})
	}
	for _, g := range snap.Gauges {
		doc.Gauges = append(doc.Gauges, gaugeJSON{Name: g.Name, Value: g.Value})
	}
	for _, h := range snap.Histograms {
		doc.Histograms = append(doc.Histograms, histJSON{
			Name: h.Name, Count: h.Count, Sum: h.Sum, Min: h.Min, Max: h.Max,
			Mean: h.Mean(),
			P50:  h.Quantile(0.50), P90: h.Quantile(0.90), P99: h.Quantile(0.99),
		})
	}
	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.Write(append(b, '\n'))
}

// routeQuantiles summarizes the request-latency histograms
// (http.seconds.<route>) for the /runs board footer: one line per
// route with estimated p50/p90/p99, sorted by route.
func routeQuantiles(snap *obs.Snapshot) []string {
	var lines []string
	for _, h := range snap.Histograms {
		route, ok := strings.CutPrefix(h.Name, "http.seconds.")
		if !ok || h.Count == 0 {
			continue
		}
		lines = append(lines, fmt.Sprintf("  %-20s p50 %.4gs  p90 %.4gs  p99 %.4gs  (n=%d)",
			route, h.Quantile(0.50), h.Quantile(0.90), h.Quantile(0.99), h.Count))
	}
	sort.Strings(lines)
	return lines
}
