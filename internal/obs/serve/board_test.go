package serve

import (
	"encoding/json"
	"testing"
	"time"
)

func TestBoardLifecycle(t *testing.T) {
	b := NewBoard()
	clock := time.Unix(1000, 0)
	b.now = func() time.Time { return clock }

	b.Update(RunUpdate{Benchmark: "mcf", Kind: "powerchop", State: StateQueued, Total: 5000})
	b.Update(RunUpdate{Benchmark: "mcf", Kind: "powerchop", State: StateSimulating})
	clock = clock.Add(2 * time.Second)
	b.Update(RunUpdate{Benchmark: "mcf", Kind: "powerchop", State: StateSimulating,
		Cycles: 1e6, Translations: 2500})
	b.Update(RunUpdate{Benchmark: "astar", Kind: "full-power", State: StateQueued})

	snap := b.Snapshot()
	if len(snap.Runs) != 2 {
		t.Fatalf("runs = %d", len(snap.Runs))
	}
	// Sorted by benchmark: astar first.
	if snap.Runs[0].Benchmark != "astar" || snap.Runs[1].Benchmark != "mcf" {
		t.Fatalf("sort order: %+v", snap.Runs)
	}
	mcf := snap.Runs[1]
	// Partial update must not wipe the translation budget.
	if mcf.Total != 5000 || mcf.Translations != 2500 || mcf.Cycles != 1e6 {
		t.Errorf("mcf progress = %+v", mcf)
	}
	if mcf.ElapsedSeconds != 2 {
		t.Errorf("live elapsed = %v, want 2", mcf.ElapsedSeconds)
	}
	if snap.Counts[StateQueued] != 1 || snap.Counts[StateSimulating] != 1 {
		t.Errorf("counts = %v", snap.Counts)
	}

	clock = clock.Add(1 * time.Second)
	b.Update(RunUpdate{Benchmark: "mcf", Kind: "powerchop", State: StateDone,
		Cycles: 2e6, Translations: 5000, Elapsed: 3 * time.Second})
	clock = clock.Add(time.Hour) // done rows keep their final elapsed
	snap = b.Snapshot()
	mcf = snap.Runs[1]
	if mcf.State != StateDone || mcf.ElapsedSeconds != 3 {
		t.Errorf("done row = %+v", mcf)
	}

	b.Update(RunUpdate{Benchmark: "astar", Kind: "full-power", State: StateError, Err: "boom"})
	snap = b.Snapshot()
	if snap.Runs[0].State != StateError || snap.Runs[0].Err != "boom" {
		t.Errorf("error row = %+v", snap.Runs[0])
	}
	if snap.Counts[StateDone] != 1 || snap.Counts[StateError] != 1 {
		t.Errorf("final counts = %v", snap.Counts)
	}
}

// TestBoardSharedBenchmarkCollision covers partial-update merging when
// several runs share a benchmark name: runs of different kinds must keep
// independent rows (no cross-contamination of progress numbers), while a
// re-run of the same (benchmark, kind) pair merges into its row.
func TestBoardSharedBenchmarkCollision(t *testing.T) {
	b := NewBoard()
	clock := time.Unix(2000, 0)
	b.now = func() time.Time { return clock }

	// Three kinds of the same benchmark, interleaved, as Compare produces.
	b.Update(RunUpdate{Benchmark: "namd", Kind: "full-power", State: StateSimulating, Total: 1000})
	b.Update(RunUpdate{Benchmark: "namd", Kind: "powerchop", State: StateSimulating, Total: 2000})
	b.Update(RunUpdate{Benchmark: "namd", Kind: "full-power", State: StateSimulating, Cycles: 5e5, Translations: 400})
	b.Update(RunUpdate{Benchmark: "namd", Kind: "powerchop", State: StateSimulating, Cycles: 1e5, Translations: 100})
	b.Update(RunUpdate{Benchmark: "namd", Kind: "min-power", State: StateQueued})

	snap := b.Snapshot()
	if len(snap.Runs) != 3 {
		t.Fatalf("runs = %d, want 3 distinct rows for one benchmark", len(snap.Runs))
	}
	byKind := map[string]RunStatus{}
	for _, r := range snap.Runs {
		if r.Benchmark != "namd" {
			t.Fatalf("unexpected benchmark %q", r.Benchmark)
		}
		byKind[r.Kind] = r
	}
	fp, pc := byKind["full-power"], byKind["powerchop"]
	// Each kind's partial updates merged only with its own row.
	if fp.Total != 1000 || fp.Cycles != 5e5 || fp.Translations != 400 {
		t.Errorf("full-power row contaminated: %+v", fp)
	}
	if pc.Total != 2000 || pc.Cycles != 1e5 || pc.Translations != 100 {
		t.Errorf("powerchop row contaminated: %+v", pc)
	}
	if byKind["min-power"].State != StateQueued {
		t.Errorf("min-power row = %+v", byKind["min-power"])
	}

	// A re-run of the same (benchmark, kind) merges into the existing
	// row: the bare state transition keeps the earlier numbers.
	clock = clock.Add(4 * time.Second)
	b.Update(RunUpdate{Benchmark: "namd", Kind: "powerchop", State: StateDone})
	snap = b.Snapshot()
	byKind = map[string]RunStatus{}
	for _, r := range snap.Runs {
		byKind[r.Kind] = r
	}
	pc = byKind["powerchop"]
	if pc.State != StateDone || pc.Cycles != 1e5 || pc.Total != 2000 {
		t.Errorf("done powerchop row lost progress: %+v", pc)
	}
	if pc.ElapsedSeconds != 4 {
		t.Errorf("elapsed = %v, want 4", pc.ElapsedSeconds)
	}
	// The sibling kinds are untouched by the completion.
	if byKind["full-power"].State != StateSimulating || byKind["full-power"].Cycles != 5e5 {
		t.Errorf("full-power row perturbed by sibling completion: %+v", byKind["full-power"])
	}
	if snap.Counts[StateDone] != 1 || snap.Counts[StateSimulating] != 1 || snap.Counts[StateQueued] != 1 {
		t.Errorf("counts = %v", snap.Counts)
	}
}

func TestBoardJSON(t *testing.T) {
	b := NewBoard()
	b.Update(RunUpdate{Benchmark: "mcf", Kind: "powerchop", State: StateQueued})
	raw, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Runs []struct {
			Benchmark string `json:"benchmark"`
			State     string `json:"state"`
		} `json:"runs"`
		Counts map[string]int `json:"counts"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Runs) != 1 || doc.Runs[0].State != StateQueued || doc.Counts[StateQueued] != 1 {
		t.Fatalf("json doc = %s", raw)
	}
}
