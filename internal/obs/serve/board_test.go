package serve

import (
	"encoding/json"
	"testing"
	"time"
)

func TestBoardLifecycle(t *testing.T) {
	b := NewBoard()
	clock := time.Unix(1000, 0)
	b.now = func() time.Time { return clock }

	b.Update(RunUpdate{Benchmark: "mcf", Kind: "powerchop", State: StateQueued, Total: 5000})
	b.Update(RunUpdate{Benchmark: "mcf", Kind: "powerchop", State: StateSimulating})
	clock = clock.Add(2 * time.Second)
	b.Update(RunUpdate{Benchmark: "mcf", Kind: "powerchop", State: StateSimulating,
		Cycles: 1e6, Translations: 2500})
	b.Update(RunUpdate{Benchmark: "astar", Kind: "full-power", State: StateQueued})

	snap := b.Snapshot()
	if len(snap.Runs) != 2 {
		t.Fatalf("runs = %d", len(snap.Runs))
	}
	// Sorted by benchmark: astar first.
	if snap.Runs[0].Benchmark != "astar" || snap.Runs[1].Benchmark != "mcf" {
		t.Fatalf("sort order: %+v", snap.Runs)
	}
	mcf := snap.Runs[1]
	// Partial update must not wipe the translation budget.
	if mcf.Total != 5000 || mcf.Translations != 2500 || mcf.Cycles != 1e6 {
		t.Errorf("mcf progress = %+v", mcf)
	}
	if mcf.ElapsedSeconds != 2 {
		t.Errorf("live elapsed = %v, want 2", mcf.ElapsedSeconds)
	}
	if snap.Counts[StateQueued] != 1 || snap.Counts[StateSimulating] != 1 {
		t.Errorf("counts = %v", snap.Counts)
	}

	clock = clock.Add(1 * time.Second)
	b.Update(RunUpdate{Benchmark: "mcf", Kind: "powerchop", State: StateDone,
		Cycles: 2e6, Translations: 5000, Elapsed: 3 * time.Second})
	clock = clock.Add(time.Hour) // done rows keep their final elapsed
	snap = b.Snapshot()
	mcf = snap.Runs[1]
	if mcf.State != StateDone || mcf.ElapsedSeconds != 3 {
		t.Errorf("done row = %+v", mcf)
	}

	b.Update(RunUpdate{Benchmark: "astar", Kind: "full-power", State: StateError, Err: "boom"})
	snap = b.Snapshot()
	if snap.Runs[0].State != StateError || snap.Runs[0].Err != "boom" {
		t.Errorf("error row = %+v", snap.Runs[0])
	}
	if snap.Counts[StateDone] != 1 || snap.Counts[StateError] != 1 {
		t.Errorf("final counts = %v", snap.Counts)
	}
}

func TestBoardJSON(t *testing.T) {
	b := NewBoard()
	b.Update(RunUpdate{Benchmark: "mcf", Kind: "powerchop", State: StateQueued})
	raw, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Runs []struct {
			Benchmark string `json:"benchmark"`
			State     string `json:"state"`
		} `json:"runs"`
		Counts map[string]int `json:"counts"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Runs) != 1 || doc.Runs[0].State != StateQueued || doc.Counts[StateQueued] != 1 {
		t.Fatalf("json doc = %s", raw)
	}
}
