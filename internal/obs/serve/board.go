package serve

import (
	"encoding/json"
	"sort"
	"sync"
	"time"
)

// Run states reported on the progress board. They mirror the runner's
// lifecycle: a run is queued when registered, simulating once it holds a
// worker slot, and done or error when it completes.
const (
	StateQueued     = "queued"
	StateSimulating = "simulating"
	StateDone       = "done"
	StateError      = "error"
)

// RunUpdate is one progress report about a (benchmark, kind) run. Updates
// are partial: zero-valued numeric fields leave the board's previous
// values in place, so a bare state transition does not erase the cycle
// counts reported earlier.
type RunUpdate struct {
	Benchmark    string        `json:"benchmark"`
	Kind         string        `json:"kind"`
	State        string        `json:"state"`
	Cycles       float64       `json:"cycles,omitempty"`
	Translations uint64        `json:"translations,omitempty"`
	Total        uint64        `json:"total,omitempty"` // translation budget for the run
	Elapsed      time.Duration `json:"-"`
	Err          string        `json:"error,omitempty"`
}

// boardRow is the board's retained state for one run.
type boardRow struct {
	RunUpdate
	started time.Time // wall clock at transition to simulating
	elapsed time.Duration
}

// Board aggregates RunUpdates into a point-in-time JSON snapshot served
// at /progress. Safe for concurrent use.
type Board struct {
	mu   sync.Mutex
	rows map[string]*boardRow
	now  func() time.Time // test seam
}

// NewBoard returns an empty board.
func NewBoard() *Board {
	return &Board{rows: make(map[string]*boardRow), now: time.Now}
}

// Update merges one progress report into the board.
func (b *Board) Update(u RunUpdate) {
	key := u.Benchmark + "/" + u.Kind
	b.mu.Lock()
	defer b.mu.Unlock()
	row := b.rows[key]
	if row == nil {
		row = &boardRow{}
		b.rows[key] = row
	}
	prev := row.RunUpdate
	row.RunUpdate = u
	// Partial update: keep earlier progress numbers over zero values.
	if u.Cycles == 0 {
		row.Cycles = prev.Cycles
	}
	if u.Translations == 0 {
		row.Translations = prev.Translations
	}
	if u.Total == 0 {
		row.Total = prev.Total
	}
	switch u.State {
	case StateSimulating:
		if row.started.IsZero() {
			row.started = b.now()
		}
	case StateDone, StateError:
		if u.Elapsed > 0 {
			row.elapsed = u.Elapsed
		} else if !row.started.IsZero() {
			row.elapsed = b.now().Sub(row.started)
		}
	}
}

// RunStatus is one row of a progress snapshot.
type RunStatus struct {
	RunUpdate
	ElapsedSeconds float64 `json:"elapsed_seconds,omitempty"`
}

// ProgressSnapshot is the JSON document served at /progress.
type ProgressSnapshot struct {
	Runs   []RunStatus    `json:"runs"`
	Counts map[string]int `json:"counts"`
}

// Snapshot returns the board's current state, sorted by benchmark then
// kind, with per-state totals. In-flight runs report live elapsed time.
func (b *Board) Snapshot() ProgressSnapshot {
	b.mu.Lock()
	defer b.mu.Unlock()
	snap := ProgressSnapshot{Counts: make(map[string]int)}
	for _, row := range b.rows {
		st := RunStatus{RunUpdate: row.RunUpdate}
		switch {
		case row.elapsed > 0:
			st.ElapsedSeconds = row.elapsed.Seconds()
		case row.State == StateSimulating && !row.started.IsZero():
			st.ElapsedSeconds = b.now().Sub(row.started).Seconds()
		}
		snap.Runs = append(snap.Runs, st)
		snap.Counts[row.State]++
	}
	sort.Slice(snap.Runs, func(i, j int) bool {
		if snap.Runs[i].Benchmark != snap.Runs[j].Benchmark {
			return snap.Runs[i].Benchmark < snap.Runs[j].Benchmark
		}
		return snap.Runs[i].Kind < snap.Runs[j].Kind
	})
	return snap
}

// MarshalJSON renders the current snapshot.
func (b *Board) MarshalJSON() ([]byte, error) {
	return json.Marshal(b.Snapshot())
}
