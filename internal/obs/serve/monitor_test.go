package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"powerchop/internal/obs"
)

func testMonitor(t *testing.T) (*Monitor, string) {
	t.Helper()
	m := NewMonitor(goldenRegistry())
	srv := httptest.NewServer(m.Handler())
	t.Cleanup(srv.Close)
	t.Cleanup(func() { m.Shutdown(context.Background()) })
	return m, srv.URL
}

func get(t *testing.T, url string) (string, *http.Response) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body), resp
}

func TestMonitorMetrics(t *testing.T) {
	_, url := testMonitor(t)
	body, resp := get(t, url+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("content-type %q", ct)
	}
	if err := CheckExposition([]byte(body)); err != nil {
		t.Fatalf("/metrics fails conformance: %v\n%s", err, body)
	}
	for _, want := range []string{"events_total 42", "window_insns_bucket{le=\"+Inf\"} 5",
		"serve_events_dropped 0", "serve_event_subscribers 0"} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}
}

func TestMonitorProgress(t *testing.T) {
	m, url := testMonitor(t)
	m.Board().Update(RunUpdate{Benchmark: "mcf", Kind: "powerchop", State: StateSimulating})
	body, resp := get(t, url+"/progress")
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Errorf("content-type %q", ct)
	}
	var doc ProgressSnapshot
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("/progress not JSON: %v\n%s", err, body)
	}
	if len(doc.Runs) != 1 || doc.Runs[0].State != StateSimulating {
		t.Fatalf("progress doc: %+v", doc)
	}
}

func TestMonitorIndexAndPprof(t *testing.T) {
	_, url := testMonitor(t)
	body, resp := get(t, url+"/")
	if resp.StatusCode != http.StatusOK || !strings.Contains(body, "/metrics") {
		t.Fatalf("index: %d %q", resp.StatusCode, body)
	}
	body, resp = get(t, url+"/debug/pprof/")
	if resp.StatusCode != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Fatalf("pprof index: %d", resp.StatusCode)
	}
	_, resp = get(t, url+"/debug/pprof/cmdline")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof cmdline: %d", resp.StatusCode)
	}
}

// streamLines GETs url and sends each received line on the returned
// channel until the body closes.
func streamLines(t *testing.T, ctx context.Context, url string) (<-chan string, func()) {
	t.Helper()
	req, err := http.NewRequestWithContext(ctx, "GET", url, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	lines := make(chan string, 64)
	go func() {
		defer close(lines)
		defer resp.Body.Close()
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			lines <- sc.Text()
		}
	}()
	return lines, func() { resp.Body.Close() }
}

// waitLine receives lines until one satisfies pred, failing on timeout or
// stream end.
func waitLine(t *testing.T, lines <-chan string, what string, pred func(string) bool) string {
	t.Helper()
	deadline := time.After(5 * time.Second)
	for {
		select {
		case line, ok := <-lines:
			if !ok {
				t.Fatalf("stream ended before %s", what)
			}
			if pred(line) {
				return line
			}
		case <-deadline:
			t.Fatalf("timed out waiting for %s", what)
		}
	}
}

// emitUntil keeps emitting e until stop is closed, so a streaming client
// racing with subscription setup still observes events.
func emitUntil(m *Monitor, e obs.Event) (stop func()) {
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		for {
			select {
			case <-done:
				return
			default:
				m.Hub().Emit(e)
				time.Sleep(time.Millisecond)
			}
		}
	}()
	return func() { close(done); <-finished }
}

func TestMonitorEventsSSE(t *testing.T) {
	m, url := testMonitor(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	lines, closeBody := streamLines(t, ctx, url+"/events")
	defer closeBody()

	stop := emitUntil(m, obs.Event{Kind: obs.KindPVTHit, Cycle: 42, Window: 7})
	line := waitLine(t, lines, "an SSE data frame", func(s string) bool {
		return strings.HasPrefix(s, "data: ")
	})
	stop()
	var e struct {
		Kind   string  `json:"kind"`
		Cycle  float64 `json:"cycle"`
		Window uint64  `json:"window"`
	}
	if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &e); err != nil {
		t.Fatalf("SSE payload not JSON: %v (%q)", err, line)
	}
	if e.Kind != "pvt-hit" || e.Cycle != 42 || e.Window != 7 {
		t.Fatalf("SSE event = %+v", e)
	}

	// Client cancel ends the stream and detaches the subscriber.
	cancel()
	for range lines {
	}
	waitFor(t, "subscriber detach", func() bool { return m.Hub().Subscribers() == 0 })
}

func TestMonitorEventsNDJSON(t *testing.T) {
	m, url := testMonitor(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	lines, closeBody := streamLines(t, ctx, url+"/events?format=ndjson")
	defer closeBody()

	stop := emitUntil(m, obs.Event{Kind: obs.KindGate, Unit: "VPU"})
	defer stop()
	line := waitLine(t, lines, "an NDJSON event", func(s string) bool {
		return strings.Contains(s, `"kind"`)
	})
	var e struct {
		Kind string `json:"kind"`
		Unit string `json:"unit"`
	}
	if err := json.Unmarshal([]byte(line), &e); err != nil {
		t.Fatalf("NDJSON line not JSON: %v (%q)", err, line)
	}
	if e.Kind != "gate" || e.Unit != "VPU" {
		t.Fatalf("NDJSON event = %+v", e)
	}
}

// TestMonitorEventsDropReporting forces a tiny subscriber buffer, floods
// it, and checks the in-band drop report shows up.
func TestMonitorEventsDropReporting(t *testing.T) {
	m, url := testMonitor(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	lines, closeBody := streamLines(t, ctx, url+"/events?format=ndjson&buffer=1")
	defer closeBody()

	// Flood in bursts so the one-slot buffer is full on most emits.
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		for {
			select {
			case <-done:
				return
			default:
				for i := 0; i < 100; i++ {
					m.Hub().Emit(obs.Event{Kind: obs.KindTranslate})
				}
				time.Sleep(time.Millisecond)
			}
		}
	}()
	defer func() { close(done); <-finished }()
	waitLine(t, lines, "a drop report", func(s string) bool {
		return strings.Contains(s, `"dropped"`) && !strings.Contains(s, `"kind"`)
	})
	if m.Hub().Dropped() == 0 {
		t.Error("hub recorded no drops despite in-band report")
	}
}

// TestMonitorShutdownUnblocksStreams starts a real listener, attaches a
// streaming client, and checks Shutdown completes promptly even though
// the stream would otherwise run forever.
func TestMonitorShutdownUnblocksStreams(t *testing.T) {
	m := NewMonitor(nil)
	if err := m.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	addr := m.Addr()
	if addr == "" {
		t.Fatal("no bound address")
	}
	url := fmt.Sprintf("http://%s/events", addr)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	lines, closeBody := streamLines(t, ctx, url)
	defer closeBody()
	waitFor(t, "stream subscription", func() bool { return m.Hub().Subscribers() == 1 })

	sctx, scancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer scancel()
	if err := m.Shutdown(sctx); err != nil {
		t.Fatalf("shutdown did not complete: %v", err)
	}
	for range lines { // stream must terminate
	}
	if err := m.Shutdown(context.Background()); err != nil {
		t.Fatalf("second shutdown: %v", err)
	}
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}
