package serve

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"

	"powerchop/internal/obs"
)

// formatFloat renders a float the way the Prometheus text format expects:
// shortest round-trippable decimal, with +Inf/-Inf/NaN spelled out.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteMetrics renders a registry snapshot in the Prometheus text
// exposition format (version 0.0.4): every counter as a `counter`
// family, every gauge as a `gauge` family, and every histogram as a
// `histogram` family with cumulative `_bucket{le=...}` series, a closing
// `le="+Inf"` bucket, `_sum` and `_count`. Registry names are converted
// with obs.PromName (the registry guarantees at registration time that
// the conversion is legal and collision-free).
func WriteMetrics(w io.Writer, s *obs.Snapshot) error {
	bw := bufio.NewWriter(w)
	for _, c := range s.Counters {
		name := obs.PromName(c.Name)
		fmt.Fprintf(bw, "# HELP %s powerchop counter %s\n", name, c.Name)
		fmt.Fprintf(bw, "# TYPE %s counter\n", name)
		fmt.Fprintf(bw, "%s %d\n", name, c.Value)
	}
	for _, g := range s.Gauges {
		name := obs.PromName(g.Name)
		fmt.Fprintf(bw, "# HELP %s powerchop gauge %s\n", name, g.Name)
		fmt.Fprintf(bw, "# TYPE %s gauge\n", name)
		fmt.Fprintf(bw, "%s %s\n", name, formatFloat(g.Value))
	}
	for _, h := range s.Histograms {
		name := obs.PromName(h.Name)
		fmt.Fprintf(bw, "# HELP %s powerchop histogram %s\n", name, h.Name)
		fmt.Fprintf(bw, "# TYPE %s histogram\n", name)
		cum := uint64(0)
		for i, bound := range h.Bounds {
			cum += h.Counts[i]
			fmt.Fprintf(bw, "%s_bucket{le=%q} %d\n", name, formatFloat(bound), cum)
		}
		fmt.Fprintf(bw, "%s_bucket{le=\"+Inf\"} %d\n", name, h.Count)
		fmt.Fprintf(bw, "%s_sum %s\n", name, formatFloat(h.Sum))
		fmt.Fprintf(bw, "%s_count %d\n", name, h.Count)
	}
	return bw.Flush()
}

// promSample is one parsed sample line of an exposition.
type promSample struct {
	name   string
	labels map[string]string
	value  float64
	line   int
}

// CheckExposition is a Prometheus text-format (0.0.4) conformance check,
// used by tests and by `powerchop serve` self-checks. It verifies:
//
//   - every line is a comment, a `# HELP`/`# TYPE` header, or a
//     well-formed sample (`name{labels} value [timestamp]`);
//   - metric and label names match the Prometheus grammar;
//   - every sample belongs to a family with a declared TYPE, declared
//     at most once and before its samples;
//   - no duplicate samples (same name and label set);
//   - histogram families have non-decreasing cumulative buckets, a
//     `+Inf` bucket, and `_count` equal to the `+Inf` bucket;
//   - the exposition ends with a newline.
func CheckExposition(data []byte) error {
	if len(data) == 0 {
		return nil
	}
	if data[len(data)-1] != '\n' {
		return fmt.Errorf("prom: exposition does not end with a newline")
	}
	types := map[string]string{} // family → TYPE
	sampled := map[string]bool{} // family → samples seen
	seen := map[string]int{}     // name+labels → line (duplicate check)
	var samples []promSample
	for i, line := range strings.Split(strings.TrimSuffix(string(data), "\n"), "\n") {
		n := i + 1
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			kind, name, err := parsePromHeader(line)
			if err != nil {
				return fmt.Errorf("prom: line %d: %w", n, err)
			}
			if kind == "TYPE" {
				if _, dup := types[name]; dup {
					return fmt.Errorf("prom: line %d: duplicate TYPE for %s", n, name)
				}
				if sampled[name] {
					return fmt.Errorf("prom: line %d: TYPE for %s after its samples", n, name)
				}
				types[name] = strings.Fields(line)[3]
			}
			continue
		}
		s, err := parsePromSample(line)
		if err != nil {
			return fmt.Errorf("prom: line %d: %w", n, err)
		}
		s.line = n
		fam := promFamily(s.name, types)
		if _, ok := types[fam]; !ok {
			return fmt.Errorf("prom: line %d: sample %s has no TYPE declaration", n, s.name)
		}
		sampled[fam] = true
		key := s.name + "{" + canonicalLabels(s.labels) + "}"
		if prev, dup := seen[key]; dup {
			return fmt.Errorf("prom: line %d: duplicate sample %s (first at line %d)", n, key, prev)
		}
		seen[key] = n
		samples = append(samples, s)
	}
	return checkPromHistograms(samples, types)
}

// canonicalLabels renders a label map in sorted order, for duplicate
// detection.
func canonicalLabels(labels map[string]string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = k + "=" + labels[k]
	}
	return strings.Join(parts, ",")
}

// parsePromHeader validates a comment line and returns ("HELP"|"TYPE"|"",
// metric name) for header comments.
func parsePromHeader(line string) (kind, name string, err error) {
	fields := strings.Fields(line)
	if len(fields) < 2 || (fields[1] != "HELP" && fields[1] != "TYPE") {
		return "", "", nil // free-form comment
	}
	if len(fields) < 4 {
		return "", "", fmt.Errorf("malformed %s line %q", fields[1], line)
	}
	if !validPromName(fields[2]) {
		return "", "", fmt.Errorf("%s for illegal metric name %q", fields[1], fields[2])
	}
	if fields[1] == "TYPE" {
		switch fields[3] {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			return "", "", fmt.Errorf("unknown TYPE %q", fields[3])
		}
	}
	return fields[1], fields[2], nil
}

// parsePromSample parses `name{labels} value [timestamp]`.
func parsePromSample(line string) (promSample, error) {
	s := promSample{labels: map[string]string{}}
	rest := line
	brace := strings.IndexByte(rest, '{')
	var nameEnd int
	if brace >= 0 && brace < strings.IndexByte(rest+" ", ' ') {
		nameEnd = brace
	} else {
		nameEnd = strings.IndexByte(rest, ' ')
		if nameEnd < 0 {
			return s, fmt.Errorf("no value in sample %q", line)
		}
	}
	s.name = rest[:nameEnd]
	if !validPromName(s.name) {
		return s, fmt.Errorf("illegal metric name %q", s.name)
	}
	rest = rest[nameEnd:]
	if strings.HasPrefix(rest, "{") {
		end := strings.IndexByte(rest, '}')
		if end < 0 {
			return s, fmt.Errorf("unterminated label set in %q", line)
		}
		if err := parsePromLabels(rest[1:end], s.labels); err != nil {
			return s, err
		}
		rest = rest[end+1:]
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return s, fmt.Errorf("want `value [timestamp]` after name, got %q", rest)
	}
	v, err := parsePromValue(fields[0])
	if err != nil {
		return s, err
	}
	s.value = v
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return s, fmt.Errorf("bad timestamp %q", fields[1])
		}
	}
	return s, nil
}

// parsePromValue accepts Go float syntax plus the spec's +Inf/-Inf/NaN.
func parsePromValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("bad sample value %q", s)
	}
	return v, nil
}

// parsePromLabels parses `k1="v1",k2="v2"` into dst.
func parsePromLabels(s string, dst map[string]string) error {
	for s != "" {
		eq := strings.IndexByte(s, '=')
		if eq < 0 {
			return fmt.Errorf("label without '=' in %q", s)
		}
		key := s[:eq]
		if !validPromLabelName(key) {
			return fmt.Errorf("illegal label name %q", key)
		}
		s = s[eq+1:]
		if !strings.HasPrefix(s, `"`) {
			return fmt.Errorf("unquoted label value for %q", key)
		}
		// Find the closing quote, honouring backslash escapes.
		i := 1
		for ; i < len(s); i++ {
			if s[i] == '\\' {
				i++
				continue
			}
			if s[i] == '"' {
				break
			}
		}
		if i >= len(s) {
			return fmt.Errorf("unterminated label value for %q", key)
		}
		if _, dup := dst[key]; dup {
			return fmt.Errorf("duplicate label %q", key)
		}
		dst[key] = s[1:i]
		s = s[i+1:]
		s = strings.TrimPrefix(s, ",")
	}
	return nil
}

// validPromName reports whether s is a legal metric name.
func validPromName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case i > 0 && c >= '0' && c <= '9':
		default:
			return false
		}
	}
	return true
}

// validPromLabelName reports whether s is a legal label name.
func validPromLabelName(s string) bool {
	if s == "" || strings.HasPrefix(s, "__") {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		case i > 0 && c >= '0' && c <= '9':
		default:
			return false
		}
	}
	return true
}

// promFamily maps a sample name to its metric family: histogram series
// carry _bucket/_sum/_count suffixes over the declared family name.
func promFamily(name string, types map[string]string) string {
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suffix)
		if base != name {
			if t, ok := types[base]; ok && (t == "histogram" || t == "summary") {
				return base
			}
		}
	}
	return name
}

// checkPromHistograms verifies the bucket invariants of every histogram
// family present in the sample set.
func checkPromHistograms(samples []promSample, types map[string]string) error {
	type histAgg struct {
		buckets map[float64]float64 // le → cumulative count
		count   float64
		hasCnt  bool
		hasSum  bool
	}
	hists := map[string]*histAgg{}
	for name, typ := range types {
		if typ == "histogram" {
			hists[name] = &histAgg{buckets: map[float64]float64{}}
		}
	}
	for _, s := range samples {
		fam := promFamily(s.name, types)
		h, ok := hists[fam]
		if !ok {
			continue
		}
		switch {
		case strings.HasSuffix(s.name, "_bucket"):
			leStr, ok := s.labels["le"]
			if !ok {
				return fmt.Errorf("prom: line %d: histogram bucket %s without le label", s.line, s.name)
			}
			le, err := parsePromValue(leStr)
			if err != nil {
				return fmt.Errorf("prom: line %d: bad le %q", s.line, leStr)
			}
			h.buckets[le] = s.value
		case strings.HasSuffix(s.name, "_count"):
			h.count, h.hasCnt = s.value, true
		case strings.HasSuffix(s.name, "_sum"):
			h.hasSum = true
		}
	}
	for name, h := range hists {
		if len(h.buckets) == 0 && !h.hasCnt && !h.hasSum {
			continue // declared but not sampled
		}
		inf, ok := h.buckets[math.Inf(1)]
		if !ok {
			return fmt.Errorf("prom: histogram %s has no +Inf bucket", name)
		}
		if !h.hasCnt || !h.hasSum {
			return fmt.Errorf("prom: histogram %s missing _sum or _count", name)
		}
		if inf != h.count {
			return fmt.Errorf("prom: histogram %s: +Inf bucket %v != count %v", name, inf, h.count)
		}
		les := make([]float64, 0, len(h.buckets))
		for le := range h.buckets {
			les = append(les, le)
		}
		sort.Float64s(les)
		prev := -math.MaxFloat64
		prevCum := -1.0
		for _, le := range les {
			if h.buckets[le] < prevCum {
				return fmt.Errorf("prom: histogram %s: bucket le=%v count %v below le=%v count %v (not cumulative)",
					name, le, h.buckets[le], prev, prevCum)
			}
			prev, prevCum = le, h.buckets[le]
		}
	}
	return nil
}
