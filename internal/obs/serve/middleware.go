package serve

import (
	"fmt"
	"log/slog"
	"net/http"
	"strings"
	"time"

	"powerchop/internal/obs"
	"powerchop/internal/obs/span"
)

// redMetrics is one route's RED instrument set: request count, error
// count (status >= 500, including recovered panics) and a latency
// histogram in seconds. Instruments register at mount time, so every
// endpoint appears on /metrics from the first scrape, not the first hit.
type redMetrics struct {
	requests *obs.Counter
	errors   *obs.Counter
	seconds  *obs.Histogram
}

// latencyBounds buckets request latency (seconds): sub-millisecond
// metric scrapes through multi-minute figure renders.
var latencyBounds = []float64{0.001, 0.005, 0.025, 0.1, 0.5, 2, 10, 60, 300}

// newREDMetrics registers a route's instruments in the registry.
func newREDMetrics(reg *obs.Registry, route string) redMetrics {
	return redMetrics{
		requests: reg.Counter("http.requests." + route),
		errors:   reg.Counter("http.errors." + route),
		seconds:  reg.Histogram("http.seconds."+route, latencyBounds...),
	}
}

// routeName converts a mux pattern to a metric-name segment:
// "GET /api/runs" → "api.runs", "GET /{$}" → "index",
// "GET /debug/pprof/" → "debug.pprof".
func routeName(pattern string) string {
	p := pattern
	if i := strings.IndexByte(p, '/'); i > 0 {
		p = p[i:] // drop the method prefix
	}
	p = strings.Trim(p, "/")
	if p == "" || p == "{$}" {
		return "index"
	}
	p = strings.ReplaceAll(p, "/", ".")
	p = strings.ReplaceAll(p, "{", "")
	p = strings.ReplaceAll(p, "}", "")
	p = strings.ReplaceAll(p, "$", "")
	return strings.Trim(p, ".")
}

// RequestIDHeader is the request-correlation header: honored when the
// client supplies it, generated otherwise, always echoed on the
// response and recorded in the access log and the request's root span.
const RequestIDHeader = "X-Request-Id"

// responseRecorder captures the status code and body size flowing
// through a handler. It forwards Flush so streaming handlers (SSE,
// NDJSON) keep working behind the middleware.
type responseRecorder struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (r *responseRecorder) WriteHeader(code int) {
	if r.status == 0 {
		r.status = code
	}
	r.ResponseWriter.WriteHeader(code)
}

func (r *responseRecorder) Write(b []byte) (int, error) {
	if r.status == 0 {
		r.status = http.StatusOK
	}
	n, err := r.ResponseWriter.Write(b)
	r.bytes += int64(n)
	return n, err
}

// Flush implements http.Flusher when the underlying writer does.
func (r *responseRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		if r.status == 0 {
			r.status = http.StatusOK
		}
		f.Flush()
	}
}

// handle mounts a handler wrapped in the monitor's request middleware:
// request-ID generation/echo, a root "request" span, RED metrics, panic
// recovery and structured access logging.
func (m *Monitor) handle(pattern string, h http.HandlerFunc) {
	m.mux.Handle(pattern, m.instrument(routeName(pattern), h))
}

// instrument wraps h in the request middleware under the given route
// label. It is exported to the serve subcommand through Monitor.Mount.
func (m *Monitor) instrument(route string, h http.Handler) http.Handler {
	red := newREDMetrics(m.reg, route)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		reqID := r.Header.Get(RequestIDHeader)
		if reqID == "" {
			reqID = span.NewRequestID()
		}
		w.Header().Set(RequestIDHeader, reqID)
		rec := &responseRecorder{ResponseWriter: w}
		ctx, sp := span.Root(r.Context(), m.spanSink(), "request", reqID,
			"route="+route, "method="+r.Method)
		red.requests.Inc()

		panicked := false
		defer func() {
			if v := recover(); v != nil {
				panicked = true
				if rec.status == 0 {
					http.Error(rec, "internal server error", http.StatusInternalServerError)
				}
				sp.EndErr(fmt.Errorf("panic: %v", v))
			} else {
				sp.End()
			}
			status := rec.status
			if status == 0 {
				status = http.StatusOK
			}
			if status >= 500 {
				red.errors.Inc()
			}
			elapsed := time.Since(start)
			red.seconds.Observe(elapsed.Seconds())
			if log := m.accessLog(); log != nil {
				attrs := []any{
					slog.String("method", r.Method),
					slog.String("path", r.URL.Path),
					slog.Int("status", status),
					slog.Int64("bytes", rec.bytes),
					slog.Duration("duration", elapsed),
					slog.String("request_id", reqID),
					slog.Uint64("span_id", sp.ID()),
					slog.String("remote", r.RemoteAddr),
				}
				if panicked {
					log.Error("request panicked", attrs...)
				} else {
					log.Info("request", attrs...)
				}
			}
		}()
		h.ServeHTTP(rec, r.WithContext(ctx))
	})
}

// Mount registers an external handler on the monitor's mux wrapped in
// the same request middleware as the built-in endpoints, so mounted
// API routes get request IDs, access logs, panic recovery and RED
// metrics for free. pattern follows http.ServeMux syntax.
func (m *Monitor) Mount(pattern string, h http.HandlerFunc) {
	m.handle(pattern, h)
}

// SetAccessLog installs a structured access logger; every request logs
// one line at Info (Error for recovered panics) carrying method, path,
// status, size, duration, request ID and root span ID. A nil logger
// (the default) disables access logging.
func (m *Monitor) SetAccessLog(l *slog.Logger) {
	if l == nil {
		m.access.Store((*slog.Logger)(nil))
		return
	}
	m.access.Store(l)
}

// accessLog returns the installed logger or nil.
func (m *Monitor) accessLog() *slog.Logger {
	l, _ := m.access.Load().(*slog.Logger)
	return l
}

// tracerBox wraps a Tracer so atomic.Value sees one concrete type
// whatever implementation hides behind the interface.
type tracerBox struct{ t obs.Tracer }

// SetSpanSink routes request spans to t instead of the monitor's own
// hub (the default): the serve subcommand points it at the combined
// sink so spans reach JSONL recorders alongside live subscribers.
func (m *Monitor) SetSpanSink(t obs.Tracer) {
	m.spans.Store(tracerBox{t})
}

// spanSink returns the tracer request spans emit to.
func (m *Monitor) spanSink() obs.Tracer {
	if b, ok := m.spans.Load().(tracerBox); ok && b.t != nil {
		return b.t
	}
	return m.hub
}
