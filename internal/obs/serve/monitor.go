// Package serve is the live monitoring layer over the obs subsystem: an
// HTTP server exposing registry metrics in the Prometheus text format,
// runner progress as JSON, the raw event stream as SSE or NDJSON, and
// the standard pprof handlers — all on one mux. It is deliberately
// read-only with respect to the simulation: metrics are snapshotted,
// progress is reported through callbacks, and events reach clients via a
// bounded fan-out that drops rather than blocks.
package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"powerchop/internal/obs"
	"powerchop/internal/obs/runlog"
	"powerchop/internal/obs/tsdb"
)

// Monitor bundles the monitoring endpoints:
//
//	GET /metrics    Prometheus text exposition of the registry
//	GET /progress   JSON snapshot of per-run progress
//	GET /events     live event stream (SSE; ?format=ndjson for NDJSON)
//	GET /decisions  decision-event stream; ?format=json for the audit trail
//	GET /alerts     alert-transition stream (SSE/NDJSON)
//	GET /api/alerts alert snapshot (404 until SetAlerts)
//	GET /api/metrics registry snapshot with histogram quantiles (JSON)
//	GET /api/series telemetry series discovery (404 until SetTelemetry)
//	GET /api/query  telemetry range queries over the attached tsdb store
//	GET /dash       live telemetry dashboard (HTML + SSE sparklines)
//	GET /api/runs   persistent run history (filterable, paginated JSON)
//	GET /runs       run-history board (plain text)
//	GET /healthz    liveness probe (always 200 while the process serves)
//	GET /readyz     readiness probe (503 until Start, and again once
//	                Shutdown begins draining)
//	GET /debug/pprof/...  standard profiling handlers
//
// Every endpoint — built-in or mounted via Mount — runs behind the
// request middleware: X-Request-Id generation/echo, a root "request"
// span, RED metrics in the registry, panic recovery, and structured
// access logging (see middleware.go).
type Monitor struct {
	mux   *http.ServeMux
	reg   *obs.Registry
	hub   *Hub
	board *Board

	ready   atomic.Bool
	access  atomic.Value // *slog.Logger
	spans   atomic.Value // tracerBox
	hubDrop *obs.Counter // registry mirror of hub.Dropped()

	mu        sync.Mutex
	srv       *http.Server
	ln        net.Listener
	done      chan struct{}
	decisions DecisionSource
	runs      *runlog.Store
	telemetry *tsdb.Store
	alerts    AlertSource
}

// DecisionSource supplies the decision-provenance snapshot behind
// GET /decisions?format=json. audit.Auditor implements it.
type DecisionSource interface {
	DecisionsJSON() ([]byte, error)
}

// NewMonitor builds a monitor over the given registry. A nil registry
// gets a private one, so the HTTP-layer metrics (RED instruments, the
// hub's drop counter) always have somewhere to live and /metrics is
// never empty.
func NewMonitor(reg *obs.Registry) *Monitor {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	m := &Monitor{
		mux:   http.NewServeMux(),
		reg:   reg,
		hub:   NewHub(),
		board: NewBoard(),
		done:  make(chan struct{}),
	}
	m.hubDrop = reg.Counter("serve.events.dropped")
	// Process health gauges live wherever a monitor scrapes: every
	// /metrics page carries them next to the simulation counters.
	obs.RegisterProcessMetrics(reg)
	// The default alert ruleset's liveness guard watches this: how many
	// runs the board currently reports simulating.
	reg.GaugeFunc("progress.simulating", func() float64 {
		return float64(m.board.Snapshot().Counts[StateSimulating])
	})
	m.handle("GET /metrics", m.handleMetrics)
	m.handle("GET /progress", m.handleProgress)
	m.handle("GET /events", m.handleEvents)
	m.handle("GET /decisions", m.handleDecisions)
	m.handle("GET /alerts", m.handleAlertsStream)
	m.handle("GET /api/alerts", m.handleAlertsAPI)
	m.handle("GET /api/metrics", m.handleMetricsAPI)
	m.handle("GET /api/series", m.handleSeries)
	m.handle("GET /api/query", m.handleQuery)
	m.handle("GET /dash", m.handleDash)
	m.handle("GET /api/runs", m.handleRunsAPI)
	m.handle("GET /runs", m.handleRunsBoard)
	m.handle("GET /healthz", m.handleHealthz)
	m.handle("GET /readyz", m.handleReadyz)
	m.handle("GET /debug/pprof/", pprof.Index)
	m.handle("GET /debug/pprof/cmdline", pprof.Cmdline)
	m.handle("GET /debug/pprof/profile", pprof.Profile)
	m.handle("GET /debug/pprof/symbol", pprof.Symbol)
	m.handle("GET /debug/pprof/trace", pprof.Trace)
	m.handle("GET /{$}", m.handleIndex)
	return m
}

// Hub returns the monitor's event fan-out; attach it to a simulation as
// an obs.Tracer (typically via obs.Multi next to a Collector).
func (m *Monitor) Hub() *Hub { return m.hub }

// Board returns the monitor's progress board; feed it RunUpdates from
// runner progress callbacks.
func (m *Monitor) Board() *Board { return m.board }

// Mux exposes the underlying mux so callers can mount extra endpoints
// (the serve subcommand adds its /api tree here).
func (m *Monitor) Mux() *http.ServeMux { return m.mux }

// SetDecisions installs the source behind GET /decisions?format=json.
// A nil source makes the snapshot form answer 404 again; the live stream
// works either way.
func (m *Monitor) SetDecisions(src DecisionSource) {
	m.mu.Lock()
	m.decisions = src
	m.mu.Unlock()
}

// Handler returns the monitor as an http.Handler, for use without Start.
func (m *Monitor) Handler() http.Handler { return m.mux }

// SetRunLog installs the persistent run-history store behind
// GET /api/runs and /runs. A nil store makes both answer an empty
// history.
func (m *Monitor) SetRunLog(s *runlog.Store) {
	m.mu.Lock()
	m.runs = s
	m.mu.Unlock()
}

// RunLog returns the installed run-history store (nil when none).
func (m *Monitor) RunLog() *runlog.Store {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.runs
}

func (m *Monitor) handleIndex(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, `powerchop monitor
  /metrics    Prometheus text exposition
  /progress   per-run progress (JSON)
  /events     live event stream (SSE; ?format=ndjson for NDJSON)
  /decisions  decision events only (SSE/NDJSON; ?format=json for audit trail)
  /alerts     alert-transition stream (SSE; ?format=ndjson for NDJSON)
  /api/alerts alert rules, states and transition history (JSON)
  /api/metrics registry snapshot with histogram quantiles (JSON)
  /api/series telemetry series discovery (JSON)
  /api/query  telemetry range query (?series=&from=&to=&step=&agg=)
  /dash       live telemetry dashboard (HTML)
  /api/runs   run history (JSON; ?kind=&name=&outcome=&limit=&offset=)
  /runs       run-history board (text)
  /healthz    liveness probe
  /readyz     readiness probe
  /debug/pprof/  profiling
`)
}

func (m *Monitor) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	// Reconcile the registered drop counter with the hub's atomic before
	// snapshotting, so the scrape sees the current total under its
	// canonical registry name (serve_events_dropped). Under m.mu so two
	// concurrent scrapes cannot double-apply the same delta.
	m.mu.Lock()
	if d := m.hub.Dropped(); d > m.hubDrop.Value() {
		m.hubDrop.Add(d - m.hubDrop.Value())
	}
	m.mu.Unlock()
	WriteMetrics(w, m.reg.Snapshot())
	// Subscriber count is a gauge, which the registry doesn't model;
	// exposed manually alongside.
	fmt.Fprintf(w, "# TYPE serve_event_subscribers gauge\nserve_event_subscribers %d\n", m.hub.Subscribers())
}

func (m *Monitor) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (m *Monitor) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if !m.ready.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	fmt.Fprintln(w, "ready")
}

// boardLinks cross-links the human-facing boards; every board and the
// /progress document carry them so each surface points at the others.
var boardLinks = []string{"/dash", "/runs", "/progress", "/api/alerts"}

func (m *Monitor) handleProgress(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	doc := struct {
		ProgressSnapshot
		AlertsFiring int      `json:"alerts_firing"`
		Boards       []string `json:"boards"`
	}{m.board.Snapshot(), m.alertsFiring(), boardLinks}
	b, err := json.Marshal(doc)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Write(append(b, '\n'))
}

// streamKeepalive is the idle keepalive period of the event streams: a
// comment frame (SSE) or blank line (NDJSON) flushed when no event has
// arrived, so proxies don't reap quiet connections and slow clients
// learn about drops promptly. The ticker lives for the handler's
// lifetime and is stopped on every exit path — client disconnect or
// monitor shutdown — so draining the monitor leaks nothing.
const streamKeepalive = 15 * time.Second

// streamEvents is the shared live-stream loop behind /events and
// /decisions: SSE framing by default, NDJSON with ?format=ndjson, an
// optional ?buffer= subscriber depth, in-band drop reporting, and a
// keepalive tick while idle. filter, when non-nil, selects which events
// reach the client. The stream ends when the client disconnects or the
// monitor shuts down.
func (m *Monitor) streamEvents(w http.ResponseWriter, r *http.Request, filter func(obs.Event) bool) {
	ndjson := r.URL.Query().Get("format") == "ndjson"
	buf := 0
	if s := r.URL.Query().Get("buffer"); s != "" {
		if n, err := strconv.Atoi(s); err == nil {
			buf = n
		}
	}
	flusher, _ := w.(http.Flusher)
	if ndjson {
		w.Header().Set("Content-Type", "application/x-ndjson")
	} else {
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
	}
	w.WriteHeader(http.StatusOK)
	if flusher != nil {
		flusher.Flush()
	}

	sub := m.hub.Subscribe(buf)
	defer sub.Close()
	keepalive := time.NewTicker(streamKeepalive)
	defer keepalive.Stop()
	var reported uint64
	reportDrops := func() bool {
		d := sub.Dropped()
		if d == reported {
			return false
		}
		reported = d
		if ndjson {
			fmt.Fprintf(w, "{\"dropped\":%d}\n", d)
		} else {
			fmt.Fprintf(w, ": dropped=%d\n\n", d)
		}
		return true
	}
	for {
		select {
		case e := <-sub.Events():
			if filter != nil && !filter(e) {
				continue
			}
			b, err := obs.MarshalEvent(e)
			if err != nil {
				continue
			}
			if ndjson {
				w.Write(append(b, '\n'))
			} else {
				fmt.Fprintf(w, "data: %s\n\n", b)
			}
			reportDrops()
			if flusher != nil {
				flusher.Flush()
			}
		case <-keepalive.C:
			if !reportDrops() {
				if ndjson {
					fmt.Fprint(w, "\n")
				} else {
					fmt.Fprint(w, ": keepalive\n\n")
				}
			}
			if flusher != nil {
				flusher.Flush()
			}
		case <-r.Context().Done():
			return
		case <-m.done:
			return
		}
	}
}

// handleEvents streams the live event feed. The default framing is
// server-sent events (`data: <json>\n\n`); `?format=ndjson` switches to
// one JSON object per line. Events a slow client misses are dropped by
// the hub; the running drop count is reported in-band (an SSE comment,
// or a `{"dropped":n}` NDJSON line). The stream ends when the client
// disconnects or the monitor shuts down.
func (m *Monitor) handleEvents(w http.ResponseWriter, r *http.Request) {
	m.streamEvents(w, r, nil)
}

// handleDecisions serves decision provenance two ways. With
// ?format=json it returns the installed DecisionSource's full audit
// trail as one JSON document (404 when no source is installed). The
// default is a live stream like /events — SSE framing, ?format=ndjson
// for NDJSON, same drop reporting — filtered down to decision-path
// events (PVT hits/misses/evictions, CDE invocations, scores,
// registrations, profiling).
func (m *Monitor) handleDecisions(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("format") == "json" {
		m.mu.Lock()
		src := m.decisions
		m.mu.Unlock()
		if src == nil {
			http.Error(w, "no decision source attached", http.StatusNotFound)
			return
		}
		b, err := src.DecisionsJSON()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		w.Write(append(b, '\n'))
		return
	}
	m.streamEvents(w, r, func(e obs.Event) bool { return obs.IsDecisionKind(e.Kind) })
}

// Start listens on addr (":0" picks a free port) and serves in the
// background until Shutdown. The readiness probe flips to 200 once the
// listener is accepting.
func (m *Monitor) Start(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	m.mu.Lock()
	m.ln = ln
	m.srv = &http.Server{Handler: m.mux, ReadHeaderTimeout: 5 * time.Second}
	srv := m.srv
	m.mu.Unlock()
	m.ready.Store(true)
	go srv.Serve(ln)
	return nil
}

// Addr returns the bound listen address ("" before Start).
func (m *Monitor) Addr() string {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.ln == nil {
		return ""
	}
	return m.ln.Addr().String()
}

// Shutdown drains the monitor gracefully: the readiness probe flips to
// 503 first (so load balancers stop routing), then every active event
// stream is released — each handler returns, closing its subscription
// and stopping its keepalive ticker — and finally the server itself
// shuts down. Safe to call more than once and without a prior Start.
func (m *Monitor) Shutdown(ctx context.Context) error {
	m.ready.Store(false)
	m.mu.Lock()
	select {
	case <-m.done:
	default:
		close(m.done) // release streaming handlers first, or Shutdown hangs
	}
	srv := m.srv
	m.srv = nil
	m.mu.Unlock()
	if srv == nil {
		return nil
	}
	return srv.Shutdown(ctx)
}
