// Package serve is the live monitoring layer over the obs subsystem: an
// HTTP server exposing registry metrics in the Prometheus text format,
// runner progress as JSON, the raw event stream as SSE or NDJSON, and
// the standard pprof handlers — all on one mux. It is deliberately
// read-only with respect to the simulation: metrics are snapshotted,
// progress is reported through callbacks, and events reach clients via a
// bounded fan-out that drops rather than blocks.
package serve

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync"
	"time"

	"powerchop/internal/obs"
)

// Monitor bundles the monitoring endpoints:
//
//	GET /metrics    Prometheus text exposition of the registry
//	GET /progress   JSON snapshot of per-run progress
//	GET /events     live event stream (SSE; ?format=ndjson for NDJSON)
//	GET /decisions  decision-event stream; ?format=json for the audit trail
//	GET /debug/pprof/...  standard profiling handlers
type Monitor struct {
	mux   *http.ServeMux
	reg   *obs.Registry
	hub   *Hub
	board *Board

	mu        sync.Mutex
	srv       *http.Server
	ln        net.Listener
	done      chan struct{}
	decisions DecisionSource
}

// DecisionSource supplies the decision-provenance snapshot behind
// GET /decisions?format=json. audit.Auditor implements it.
type DecisionSource interface {
	DecisionsJSON() ([]byte, error)
}

// NewMonitor builds a monitor over the given registry (nil is allowed;
// /metrics then serves only the hub's own stats).
func NewMonitor(reg *obs.Registry) *Monitor {
	m := &Monitor{
		mux:   http.NewServeMux(),
		reg:   reg,
		hub:   NewHub(),
		board: NewBoard(),
		done:  make(chan struct{}),
	}
	m.mux.HandleFunc("GET /metrics", m.handleMetrics)
	m.mux.HandleFunc("GET /progress", m.handleProgress)
	m.mux.HandleFunc("GET /events", m.handleEvents)
	m.mux.HandleFunc("GET /decisions", m.handleDecisions)
	m.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	m.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	m.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	m.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	m.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	m.mux.HandleFunc("GET /{$}", m.handleIndex)
	return m
}

// Hub returns the monitor's event fan-out; attach it to a simulation as
// an obs.Tracer (typically via obs.Multi next to a Collector).
func (m *Monitor) Hub() *Hub { return m.hub }

// Board returns the monitor's progress board; feed it RunUpdates from
// runner progress callbacks.
func (m *Monitor) Board() *Board { return m.board }

// Mux exposes the underlying mux so callers can mount extra endpoints
// (the serve subcommand adds its /api tree here).
func (m *Monitor) Mux() *http.ServeMux { return m.mux }

// SetDecisions installs the source behind GET /decisions?format=json.
// A nil source makes the snapshot form answer 404 again; the live stream
// works either way.
func (m *Monitor) SetDecisions(src DecisionSource) {
	m.mu.Lock()
	m.decisions = src
	m.mu.Unlock()
}

// Handler returns the monitor as an http.Handler, for use without Start.
func (m *Monitor) Handler() http.Handler { return m.mux }

func (m *Monitor) handleIndex(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, `powerchop monitor
  /metrics    Prometheus text exposition
  /progress   per-run progress (JSON)
  /events     live event stream (SSE; ?format=ndjson for NDJSON)
  /decisions  decision events only (SSE/NDJSON; ?format=json for audit trail)
  /debug/pprof/  profiling
`)
}

func (m *Monitor) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	snap := &obs.Snapshot{}
	if m.reg != nil {
		snap = m.reg.Snapshot()
	}
	WriteMetrics(w, snap)
	// The hub's own health, outside any registry.
	fmt.Fprintf(w, "# TYPE serve_events_dropped counter\nserve_events_dropped %d\n", m.hub.Dropped())
	fmt.Fprintf(w, "# TYPE serve_event_subscribers gauge\nserve_event_subscribers %d\n", m.hub.Subscribers())
}

func (m *Monitor) handleProgress(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	b, err := m.board.MarshalJSON()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Write(append(b, '\n'))
}

// handleEvents streams the live event feed. The default framing is
// server-sent events (`data: <json>\n\n`); `?format=ndjson` switches to
// one JSON object per line. Events a slow client misses are dropped by
// the hub; the running drop count is reported in-band (an SSE comment,
// or a `{"dropped":n}` NDJSON line). The stream ends when the client
// disconnects or the monitor shuts down.
func (m *Monitor) handleEvents(w http.ResponseWriter, r *http.Request) {
	ndjson := r.URL.Query().Get("format") == "ndjson"
	buf := 0
	if s := r.URL.Query().Get("buffer"); s != "" {
		if n, err := strconv.Atoi(s); err == nil {
			buf = n
		}
	}
	flusher, _ := w.(http.Flusher)
	if ndjson {
		w.Header().Set("Content-Type", "application/x-ndjson")
	} else {
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
	}
	w.WriteHeader(http.StatusOK)
	if flusher != nil {
		flusher.Flush()
	}

	sub := m.hub.Subscribe(buf)
	defer sub.Close()
	var reported uint64
	for {
		select {
		case e := <-sub.Events():
			b, err := obs.MarshalEvent(e)
			if err != nil {
				continue
			}
			if ndjson {
				w.Write(append(b, '\n'))
			} else {
				fmt.Fprintf(w, "data: %s\n\n", b)
			}
			if d := sub.Dropped(); d != reported {
				reported = d
				if ndjson {
					fmt.Fprintf(w, "{\"dropped\":%d}\n", d)
				} else {
					fmt.Fprintf(w, ": dropped=%d\n\n", d)
				}
			}
			if flusher != nil {
				flusher.Flush()
			}
		case <-r.Context().Done():
			return
		case <-m.done:
			return
		}
	}
}

// handleDecisions serves decision provenance two ways. With
// ?format=json it returns the installed DecisionSource's full audit
// trail as one JSON document (404 when no source is installed). The
// default is a live stream like /events — SSE framing, ?format=ndjson
// for NDJSON, same drop reporting — filtered down to decision-path
// events (PVT hits/misses/evictions, CDE invocations, scores,
// registrations, profiling).
func (m *Monitor) handleDecisions(w http.ResponseWriter, r *http.Request) {
	format := r.URL.Query().Get("format")
	if format == "json" {
		m.mu.Lock()
		src := m.decisions
		m.mu.Unlock()
		if src == nil {
			http.Error(w, "no decision source attached", http.StatusNotFound)
			return
		}
		b, err := src.DecisionsJSON()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		w.Write(append(b, '\n'))
		return
	}

	ndjson := format == "ndjson"
	buf := 0
	if s := r.URL.Query().Get("buffer"); s != "" {
		if n, err := strconv.Atoi(s); err == nil {
			buf = n
		}
	}
	flusher, _ := w.(http.Flusher)
	if ndjson {
		w.Header().Set("Content-Type", "application/x-ndjson")
	} else {
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
	}
	w.WriteHeader(http.StatusOK)
	if flusher != nil {
		flusher.Flush()
	}

	sub := m.hub.Subscribe(buf)
	defer sub.Close()
	var reported uint64
	for {
		select {
		case e := <-sub.Events():
			if !obs.IsDecisionKind(e.Kind) {
				continue
			}
			b, err := obs.MarshalEvent(e)
			if err != nil {
				continue
			}
			if ndjson {
				w.Write(append(b, '\n'))
			} else {
				fmt.Fprintf(w, "data: %s\n\n", b)
			}
			if d := sub.Dropped(); d != reported {
				reported = d
				if ndjson {
					fmt.Fprintf(w, "{\"dropped\":%d}\n", d)
				} else {
					fmt.Fprintf(w, ": dropped=%d\n\n", d)
				}
			}
			if flusher != nil {
				flusher.Flush()
			}
		case <-r.Context().Done():
			return
		case <-m.done:
			return
		}
	}
}

// Start listens on addr (":0" picks a free port) and serves in the
// background until Shutdown.
func (m *Monitor) Start(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	m.mu.Lock()
	m.ln = ln
	m.srv = &http.Server{Handler: m.mux, ReadHeaderTimeout: 5 * time.Second}
	srv := m.srv
	m.mu.Unlock()
	go srv.Serve(ln)
	return nil
}

// Addr returns the bound listen address ("" before Start).
func (m *Monitor) Addr() string {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.ln == nil {
		return ""
	}
	return m.ln.Addr().String()
}

// Shutdown unblocks all event streams and gracefully stops the server.
// Safe to call more than once and without a prior Start.
func (m *Monitor) Shutdown(ctx context.Context) error {
	m.mu.Lock()
	select {
	case <-m.done:
	default:
		close(m.done) // release streaming handlers first, or Shutdown hangs
	}
	srv := m.srv
	m.srv = nil
	m.mu.Unlock()
	if srv == nil {
		return nil
	}
	return srv.Shutdown(ctx)
}
