package serve

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"powerchop/internal/obs/tsdb"
)

// telemetryStore builds a store with two short series.
func telemetryStore() *tsdb.Store {
	ts := tsdb.NewStore(tsdb.Config{Levels: []tsdb.LevelSpec{
		{Bucket: 1, Retain: 16},
		{Bucket: 4, Retain: 8},
	}})
	for w := uint64(1); w <= 8; w++ {
		ts.Append("window.insns", w, float64(w*1000), float64(w*100))
		ts.Append("unit.frac.VPU", w, float64(w*1000), 0.05)
	}
	return ts
}

func TestTelemetryRoutesDetached(t *testing.T) {
	_, url := testMonitor(t)
	for _, path := range []string{"/api/series", "/api/query?series=x", "/dash"} {
		if _, resp := get(t, url+path); resp.StatusCode != http.StatusNotFound {
			t.Errorf("%s without a store: status %d, want 404", path, resp.StatusCode)
		}
	}
}

func TestTelemetrySeries(t *testing.T) {
	m, url := testMonitor(t)
	m.SetTelemetry(telemetryStore())
	body, resp := get(t, url+"/api/series")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out struct {
		Series []tsdb.SeriesInfo `json:"series"`
	}
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Series) != 2 || out.Series[0].Name != "unit.frac.VPU" || out.Series[1].Name != "window.insns" {
		t.Fatalf("series: %+v", out.Series)
	}
	if out.Series[1].Samples != 8 || out.Series[1].Levels[0].End != 8 {
		t.Fatalf("window.insns info: %+v", out.Series[1])
	}
	// Detaching flips the route back to 404.
	m.SetTelemetry(nil)
	if _, resp := get(t, url+"/api/series"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("after detach: status %d, want 404", resp.StatusCode)
	}
}

func TestTelemetryQuery(t *testing.T) {
	m, url := testMonitor(t)
	m.SetTelemetry(telemetryStore())

	body, resp := get(t, url+"/api/query?series=window.insns&from=3&to=5")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var res tsdb.Result
	if err := json.Unmarshal([]byte(body), &res); err != nil {
		t.Fatal(err)
	}
	if res.Bucket != 1 || res.Agg != "mean" || len(res.Points) != 3 {
		t.Fatalf("result: %+v", res)
	}
	if res.Points[0].Window != 3 || res.Points[0].Value != 300 {
		t.Fatalf("first point: %+v", res.Points[0])
	}

	// A step picks the coarser level and honours the aggregator.
	body, _ = get(t, url+"/api/query?series=window.insns&step=4&agg=max")
	if err := json.Unmarshal([]byte(body), &res); err != nil {
		t.Fatal(err)
	}
	if res.Bucket != 4 || len(res.Points) != 2 || res.Points[1].Value != 800 {
		t.Fatalf("stepped result: %+v", res)
	}

	// Bad requests answer 400 with a usable message.
	for _, q := range []string{
		"", "series=nope", "series=window.insns&agg=median",
		"series=window.insns&from=abc", "series=window.insns&from_cycle=x",
	} {
		if _, resp := get(t, url+"/api/query?"+q); resp.StatusCode != http.StatusBadRequest {
			t.Errorf("query %q: status %d, want 400", q, resp.StatusCode)
		}
	}
}

func TestTelemetryDash(t *testing.T) {
	m, url := testMonitor(t)
	m.SetTelemetry(telemetryStore())
	body, resp := get(t, url+"/dash")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/html") {
		t.Errorf("content-type %q", ct)
	}
	for _, want := range []string{"powerchop telemetry", "/api/series", "EventSource(\"/events\")"} {
		if !strings.Contains(body, want) {
			t.Errorf("/dash missing %q", want)
		}
	}
}

// TestTelemetryRouteMetrics checks the new routes run through the shared
// middleware: a query request shows up in the RED instruments.
func TestTelemetryRouteMetrics(t *testing.T) {
	m, url := testMonitor(t)
	m.SetTelemetry(telemetryStore())
	get(t, url+"/api/query?series=window.insns")
	body, _ := get(t, url+"/metrics")
	if !strings.Contains(body, "http_requests_api_query 1") {
		t.Fatalf("/metrics missing RED counter for /api/query:\n%s", body)
	}
}
