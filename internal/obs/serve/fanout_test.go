package serve

import (
	"sync"
	"testing"

	"powerchop/internal/obs"
)

func TestHubFastClientLossless(t *testing.T) {
	h := NewHub()
	sub := h.Subscribe(16)
	defer sub.Close()
	for i := 0; i < 10; i++ {
		h.Emit(obs.Event{Kind: obs.KindGate, Count: uint64(i)})
	}
	for i := 0; i < 10; i++ {
		e := <-sub.Events()
		if e.Count != uint64(i) {
			t.Fatalf("event %d arrived as %d (reordered or lost)", i, e.Count)
		}
	}
	if sub.Dropped() != 0 || h.Dropped() != 0 {
		t.Fatalf("drops on an unfilled buffer: sub=%d hub=%d", sub.Dropped(), h.Dropped())
	}
}

// TestHubSlowClientDrops fills a small buffer and checks overflow is
// counted on both the subscriber and the hub, without Emit ever blocking.
func TestHubSlowClientDrops(t *testing.T) {
	h := NewHub()
	slow := h.Subscribe(4)
	defer slow.Close()
	fast := h.Subscribe(64)
	defer fast.Close()
	for i := 0; i < 20; i++ {
		h.Emit(obs.Event{Kind: obs.KindTranslate})
	}
	if got := slow.Dropped(); got != 16 {
		t.Errorf("slow subscriber dropped %d, want 16", got)
	}
	if got := fast.Dropped(); got != 0 {
		t.Errorf("fast subscriber dropped %d, want 0", got)
	}
	if got := h.Dropped(); got != 16 {
		t.Errorf("hub dropped %d, want 16", got)
	}
	// The slow subscriber still holds its first 4 events.
	for i := 0; i < 4; i++ {
		<-slow.Events()
	}
	select {
	case e := <-slow.Events():
		t.Fatalf("unexpected extra buffered event %+v", e)
	default:
	}
}

func TestHubCloseDetaches(t *testing.T) {
	h := NewHub()
	a := h.Subscribe(4)
	b := h.Subscribe(4)
	if h.Subscribers() != 2 {
		t.Fatalf("subscribers = %d", h.Subscribers())
	}
	a.Close()
	a.Close() // idempotent
	if h.Subscribers() != 1 {
		t.Fatalf("subscribers after close = %d", h.Subscribers())
	}
	h.Emit(obs.Event{Kind: obs.KindGate})
	select {
	case e := <-a.Events():
		t.Fatalf("closed subscriber received %+v", e)
	default:
	}
	if e := <-b.Events(); e.Kind != obs.KindGate {
		t.Fatalf("live subscriber got %+v", e)
	}
	if a.Dropped() != 0 {
		t.Fatalf("closed subscriber charged %d drops", a.Dropped())
	}
}

func TestHubDefaultBuffer(t *testing.T) {
	h := NewHub()
	sub := h.Subscribe(0)
	defer sub.Close()
	if cap(sub.ch) != DefaultSubBuffer {
		t.Fatalf("default buffer = %d, want %d", cap(sub.ch), DefaultSubBuffer)
	}
}

// TestHubConcurrent hammers Emit, Subscribe and Close together; with
// -race this pins the copy-on-write subscriber list.
func TestHubConcurrent(t *testing.T) {
	h := NewHub()
	stop := make(chan struct{})
	emitterDone := make(chan struct{})
	go func() {
		defer close(emitterDone)
		for {
			select {
			case <-stop:
				return
			default:
				h.Emit(obs.Event{Kind: obs.KindPVTHit})
			}
		}
	}()
	var subs sync.WaitGroup
	for g := 0; g < 4; g++ {
		subs.Add(1)
		go func() {
			defer subs.Done()
			for i := 0; i < 100; i++ {
				s := h.Subscribe(2)
				<-s.Events()
				s.Close()
			}
		}()
	}
	subs.Wait()
	close(stop)
	<-emitterDone
	if h.Subscribers() != 0 {
		t.Fatalf("leaked %d subscribers", h.Subscribers())
	}
}
