package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// wireEvent is the JSONL representation of an Event. Every field uses
// omitempty: a missing field decodes back to the Go zero value, so the
// round trip is lossless while keeping lines compact.
type wireEvent struct {
	Kind   string   `json:"kind"`
	Cycle  float64  `json:"cycle,omitempty"`
	Window uint64   `json:"window,omitempty"`
	Unit   string   `json:"unit,omitempty"`
	Detail string   `json:"detail,omitempty"`
	Sig    []uint32 `json:"sig,omitempty"`
	Policy uint8    `json:"policy,omitempty"`
	Prev   float64  `json:"prev,omitempty"`
	Next   float64  `json:"next,omitempty"`
	Stall  float64  `json:"stall,omitempty"`
	Value  float64  `json:"value,omitempty"`
	Count  uint64   `json:"count,omitempty"`
}

// wireOf converts an Event to its wire form. sig, when non-nil, is used
// as the backing array for the signature slice (callers reusing scratch
// space); a nil sig allocates.
func wireOf(e Event, sig []uint32) wireEvent {
	we := wireEvent{
		Kind:   e.Kind.String(),
		Cycle:  e.Cycle,
		Window: e.Window,
		Unit:   e.Unit,
		Detail: e.Detail,
		Policy: e.Policy,
		Prev:   e.Prev,
		Next:   e.Next,
		Stall:  e.Stall,
		Value:  e.Value,
		Count:  e.Count,
	}
	if e.SigN > 0 {
		n := int(e.SigN)
		if n > MaxSigIDs {
			n = MaxSigIDs
		}
		if sig == nil {
			sig = make([]uint32, n)
		}
		copy(sig[:n], e.SigIDs[:n])
		we.Sig = sig[:n]
	}
	return we
}

// MarshalEvent renders one event as a single JSON object (no trailing
// newline) in the same wire format JSONL streams and ReadJSONL parses.
// It is the building block for network event feeds (SSE/NDJSON).
func MarshalEvent(e Event) ([]byte, error) {
	return json.Marshal(wireOf(e, nil))
}

// JSONL is a Tracer that streams events to a writer, one JSON object per
// line. Writes are buffered; call Flush before reading the destination.
// JSONL is safe for concurrent use.
type JSONL struct {
	mu      sync.Mutex
	bw      *bufio.Writer
	enc     *json.Encoder
	sig     [MaxSigIDs]uint32 // scratch backing for wireEvent.Sig
	events  uint64
	lastErr error
}

// NewJSONL returns a JSONL tracer writing to w.
func NewJSONL(w io.Writer) *JSONL {
	bw := bufio.NewWriter(w)
	return &JSONL{bw: bw, enc: json.NewEncoder(bw)}
}

// Emit implements Tracer. Encoding errors are sticky and reported by
// Flush; emission never panics or blocks the simulation on sink errors.
func (j *JSONL) Emit(e Event) {
	j.mu.Lock()
	defer j.mu.Unlock()
	we := wireOf(e, j.sig[:])
	if err := j.enc.Encode(we); err != nil && j.lastErr == nil {
		j.lastErr = err
	}
	j.events++
}

// Events returns the number of events emitted so far.
func (j *JSONL) Events() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.events
}

// Flush drains the buffer to the underlying writer and returns the first
// error encountered by Emit or the flush itself.
func (j *JSONL) Flush() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.bw.Flush(); err != nil && j.lastErr == nil {
		j.lastErr = err
	}
	return j.lastErr
}

// ReadJSONL parses a JSONL event stream back into events. Blank lines are
// skipped; a malformed line fails with its line number.
func ReadJSONL(r io.Reader) ([]Event, error) {
	var out []Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var we wireEvent
		if err := json.Unmarshal(raw, &we); err != nil {
			return nil, fmt.Errorf("obs: trace line %d: %w", line, err)
		}
		kind, err := KindFromString(we.Kind)
		if err != nil {
			return nil, fmt.Errorf("obs: trace line %d: %w", line, err)
		}
		e := Event{
			Kind:   kind,
			Cycle:  we.Cycle,
			Window: we.Window,
			Unit:   we.Unit,
			Detail: we.Detail,
			Policy: we.Policy,
			Prev:   we.Prev,
			Next:   we.Next,
			Stall:  we.Stall,
			Value:  we.Value,
			Count:  we.Count,
		}
		if len(we.Sig) > MaxSigIDs {
			return nil, fmt.Errorf("obs: trace line %d: signature wider than %d", line, MaxSigIDs)
		}
		copy(e.SigIDs[:], we.Sig)
		e.SigN = uint8(len(we.Sig))
		out = append(out, e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("obs: reading trace: %w", err)
	}
	return out, nil
}

// Ring is a fixed-capacity in-memory Tracer that keeps the most recent
// events, built for tests and post-mortem inspection. It is safe for
// concurrent use.
type Ring struct {
	mu    sync.Mutex
	buf   []Event
	next  int
	full  bool
	total uint64
}

// NewRing returns a ring buffer holding the last n events (n >= 1).
func NewRing(n int) *Ring {
	if n < 1 {
		panic(fmt.Sprintf("obs: ring capacity %d", n))
	}
	return &Ring{buf: make([]Event, n)}
}

// Emit implements Tracer.
func (r *Ring) Emit(e Event) {
	r.mu.Lock()
	r.buf[r.next] = e
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
	r.total++
	r.mu.Unlock()
}

// Len returns the number of events currently held.
func (r *Ring) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.full {
		return len(r.buf)
	}
	return r.next
}

// Total returns the number of events ever emitted (held or overwritten).
func (r *Ring) Total() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Events returns the held events, oldest first, as a copy.
func (r *Ring) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.full {
		return append([]Event(nil), r.buf[:r.next]...)
	}
	out := make([]Event, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// Reset empties the ring and zeroes the total.
func (r *Ring) Reset() {
	r.mu.Lock()
	r.next, r.full, r.total = 0, false, 0
	r.mu.Unlock()
}
