package obs

import (
	"strings"
	"testing"
)

func sigEvent(kind Kind, id uint32) Event {
	var e Event
	e.Kind = kind
	e.SigIDs[0] = id
	e.SigN = 1
	return e
}

func TestSummarize(t *testing.T) {
	var events []Event
	// Phase A: two windows, one miss + invoke + register, then a hit.
	a := sigEvent(KindWindowClose, 0xA)
	a.Count = 30000
	events = append(events, a, a)
	events = append(events, sigEvent(KindPVTMiss, 0xA))
	inv := sigEvent(KindCDEInvoke, 0xA)
	inv.Value = 10000
	events = append(events, inv)
	reg := sigEvent(KindCDERegister, 0xA)
	reg.Policy = 0xF
	reg.Detail = "computed"
	events = append(events, reg)
	hit := sigEvent(KindPVTHit, 0xA)
	hit.Policy = 0xF
	events = append(events, hit)
	// Phase B: one window, evicted once.
	b := sigEvent(KindWindowClose, 0xB)
	b.Count = 5000
	events = append(events, b, sigEvent(KindPVTEvict, 0xB))
	// Global events.
	events = append(events,
		Event{Kind: KindGate, Unit: "VPU", Cycle: 900, Stall: 530},
		Event{Kind: KindGate, Unit: "MLC", Cycle: 1000, Stall: 50},
		Event{Kind: KindTranslate, Count: 0x40},
	)

	s := Summarize(events)
	if s.Events != uint64(len(events)) || s.Windows != 3 || s.Translations != 1 {
		t.Fatalf("summary tallies: %+v", s)
	}
	if s.EndCycle != 1000 || s.GateStalls != 580 || s.CDECycles != 10000 {
		t.Fatalf("summary cycles: %+v", s)
	}
	if s.GateSwitches["VPU"] != 1 || s.GateSwitches["MLC"] != 1 {
		t.Fatalf("gate switches: %+v", s.GateSwitches)
	}
	if len(s.Phases) != 2 {
		t.Fatalf("phases: %+v", s.Phases)
	}
	pa := s.Phases[0] // most windows first
	if pa.Sig != "<ta>" || pa.Windows != 2 || pa.Insns != 60000 {
		t.Fatalf("phase A row: %+v", pa)
	}
	if pa.PVTHits != 1 || pa.PVTMisses != 1 || pa.CDEInvokes != 1 || pa.Registrations != 1 {
		t.Fatalf("phase A counters: %+v", pa)
	}
	if !pa.HasPolicy || pa.LastPolicy != 0xF {
		t.Fatalf("phase A policy: %+v", pa)
	}
	if s.Phases[1].Evictions != 1 {
		t.Fatalf("phase B row: %+v", s.Phases[1])
	}

	rendered := s.Render(0)
	for _, want := range []string{"<ta>", "<tb>", "VPU=1", "phase", "1111"} {
		if !strings.Contains(rendered, want) {
			t.Fatalf("render missing %q:\n%s", want, rendered)
		}
	}
	capped := s.Render(1)
	if !strings.Contains(capped, "+1 more phases") {
		t.Fatalf("capped render:\n%s", capped)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.Events != 0 || len(s.Phases) != 0 {
		t.Fatalf("empty summary: %+v", s)
	}
	if s.Render(10) == "" {
		t.Fatal("empty render")
	}
}
