package obs

import (
	"sync"
	"testing"
)

func TestRingBasics(t *testing.T) {
	r := NewRing(3)
	if r.Len() != 0 || r.Total() != 0 {
		t.Fatal("fresh ring not empty")
	}
	r.Emit(Event{Count: 1})
	r.Emit(Event{Count: 2})
	if r.Len() != 2 {
		t.Fatalf("len = %d", r.Len())
	}
	ev := r.Events()
	if len(ev) != 2 || ev[0].Count != 1 || ev[1].Count != 2 {
		t.Fatalf("events = %+v", ev)
	}
}

func TestRingWraps(t *testing.T) {
	r := NewRing(3)
	for i := 1; i <= 5; i++ {
		r.Emit(Event{Count: uint64(i)})
	}
	if r.Len() != 3 || r.Total() != 5 {
		t.Fatalf("len=%d total=%d", r.Len(), r.Total())
	}
	ev := r.Events()
	for i, want := range []uint64{3, 4, 5} {
		if ev[i].Count != want {
			t.Fatalf("wrapped order: %+v", ev)
		}
	}
	r.Reset()
	if r.Len() != 0 || r.Total() != 0 || len(r.Events()) != 0 {
		t.Fatal("reset did not clear the ring")
	}
}

func TestRingCapacityValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero capacity accepted")
		}
	}()
	NewRing(0)
}

// TestRingConcurrent exercises the ring from many goroutines; run with
// -race to verify write safety.
func TestRingConcurrent(t *testing.T) {
	r := NewRing(64)
	const goroutines, each = 8, 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				r.Emit(Event{Kind: KindGate, Count: uint64(g*each + i)})
				if i%100 == 0 {
					r.Events() // concurrent reads too
					r.Len()
				}
			}
		}()
	}
	wg.Wait()
	if r.Total() != goroutines*each {
		t.Fatalf("total = %d", r.Total())
	}
	if r.Len() != 64 {
		t.Fatalf("len = %d", r.Len())
	}
}
