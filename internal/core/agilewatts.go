package core

import (
	"fmt"

	"powerchop/internal/pvt"
)

// AgileWattsConfig parameterizes the hierarchical idle-state manager.
type AgileWattsConfig struct {
	// VPUIdleRatio is the SIMD-instruction fraction at or below which a
	// window counts as VPU-idle.
	VPUIdleRatio float64
	// BPUIdleRatio is the misprediction rate at or below which a window
	// counts as BPU-idle (a well-predicted stream doesn't need the large
	// predictor).
	BPUIdleRatio float64
	// MLCIdleRatio is the L2-hits-per-instruction fraction at or below
	// which a window counts as MLC-idle.
	MLCIdleRatio float64
	// ShallowAfter and DeepAfter are the consecutive-idle-window counts
	// that promote a unit into its shallow and deep states.
	ShallowAfter int
	DeepAfter    int
	// VPUShallow/VPUDeep and BPUShallow/BPUDeep describe the two gated
	// states per unit. The MLC's hierarchy is the existing three-state
	// way gating (all → half → one).
	VPUShallow, VPUDeep IdleState
	BPUShallow, BPUDeep IdleState
}

// DefaultAgileWattsConfig returns the default state ladder. The deep VPU
// state is the classic full gate (register-file save/restore priced by
// the design's SaveRestoreCycles on top of these extras); the shallow
// states are clock-gate-like — most leakage retained, transitions nearly
// free.
func DefaultAgileWattsConfig() AgileWattsConfig {
	return AgileWattsConfig{
		VPUIdleRatio: 0.001,
		BPUIdleRatio: 0.005,
		MLCIdleRatio: 0.005,
		ShallowAfter: 2,
		DeepAfter:    8,
		VPUShallow:   IdleState{PowerFrac: 0.3, EntryCycles: 10, ExitCycles: 20},
		VPUDeep:      IdleState{PowerFrac: 0, EntryCycles: 500, ExitCycles: 500},
		BPUShallow:   IdleState{PowerFrac: 0.4, EntryCycles: 5, ExitCycles: 10},
		BPUDeep:      IdleState{PowerFrac: 0.1, EntryCycles: 20, ExitCycles: 20},
	}
}

// AgileWatts is a hierarchical idle-state manager in the style of
// AgileWatts: instead of a single gated state per unit, each unit
// descends a ladder of idle states — shallow states are cheap to enter
// and leave but retain much of the unit's leakage, deep states cut
// power hard but charge expensive transitions. A unit is promoted one
// rung after a configured number of consecutive idle windows and woken
// (to full power, resetting its counter) by the first active window, so
// bursty workloads pay only shallow transition costs while long idle
// stretches reach the deep states' savings.
type AgileWatts struct {
	cfg AgileWattsConfig

	vpuIdle int
	bpuIdle int
	mlcIdle int
}

// NewAgileWatts builds the manager.
func NewAgileWatts(cfg AgileWattsConfig) (*AgileWatts, error) {
	for _, r := range []float64{cfg.VPUIdleRatio, cfg.BPUIdleRatio, cfg.MLCIdleRatio} {
		if r < 0 || r > 1 {
			return nil, fmt.Errorf("core: agilewatts idle ratio %v", r)
		}
	}
	if cfg.ShallowAfter < 1 || cfg.DeepAfter < cfg.ShallowAfter {
		return nil, fmt.Errorf("core: agilewatts promotion ladder shallow=%d deep=%d",
			cfg.ShallowAfter, cfg.DeepAfter)
	}
	for _, st := range []IdleState{cfg.VPUShallow, cfg.VPUDeep, cfg.BPUShallow, cfg.BPUDeep} {
		if st.PowerFrac < 0 || st.PowerFrac > 1 || st.EntryCycles < 0 || st.ExitCycles < 0 {
			return nil, fmt.Errorf("core: agilewatts idle state %+v", st)
		}
	}
	return &AgileWatts{cfg: cfg}, nil
}

// Name implements Manager.
func (a *AgileWatts) Name() string { return "agilewatts" }

// Boot implements Manager: fully powered, counters at zero.
func (a *AgileWatts) Boot() Directive { return Directive{Policy: pvt.FullOn} }

// WindowEnd implements Manager: classify the window per unit, advance
// or reset each idle counter, and emit the ladder rung each unit has
// earned.
func (a *AgileWatts) WindowEnd(r WindowReport) Directive {
	p := r.Profile
	insns := float64(p.TotalInsns)
	if insns <= 0 {
		// Nothing retired (pure interpretation): not evidence of
		// idleness, hold every counter where it is.
		return a.directive()
	}

	if float64(p.SIMDInsns)/insns <= a.cfg.VPUIdleRatio {
		a.vpuIdle++
	} else {
		a.vpuIdle = 0
	}

	mispredRate := 0.0
	if p.Branches > 0 {
		mispredRate = float64(p.Mispredicts) / float64(p.Branches)
	}
	if mispredRate <= a.cfg.BPUIdleRatio {
		a.bpuIdle++
	} else {
		a.bpuIdle = 0
	}

	if float64(p.L2Hits)/insns <= a.cfg.MLCIdleRatio {
		a.mlcIdle++
	} else {
		a.mlcIdle = 0
	}

	return a.directive()
}

// directive maps the three idle counters onto a policy plus idle-state
// descriptors. The descriptors point at the config's own structs —
// stable for the run, no per-window allocation.
func (a *AgileWatts) directive() Directive {
	d := Directive{Policy: pvt.FullOn}
	switch {
	case a.vpuIdle >= a.cfg.DeepAfter:
		d.Policy.VPUOn = false
		d.VPUIdle = &a.cfg.VPUDeep
	case a.vpuIdle >= a.cfg.ShallowAfter:
		d.Policy.VPUOn = false
		d.VPUIdle = &a.cfg.VPUShallow
	}
	switch {
	case a.bpuIdle >= a.cfg.DeepAfter:
		d.Policy.BPUOn = false
		d.BPUIdle = &a.cfg.BPUDeep
	case a.bpuIdle >= a.cfg.ShallowAfter:
		d.Policy.BPUOn = false
		d.BPUIdle = &a.cfg.BPUShallow
	}
	switch {
	case a.mlcIdle >= a.cfg.DeepAfter:
		d.Policy.MLC = pvt.MLCOne
	case a.mlcIdle >= a.cfg.ShallowAfter:
		d.Policy.MLC = pvt.MLCHalf
	}
	return d
}
