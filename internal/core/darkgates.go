package core

import (
	"fmt"

	"powerchop/internal/obs"
	"powerchop/internal/pvt"
)

// DarkGatesConfig parameterizes the DarkGates-style bypass manager.
//
// The defaults price transitions and leakage at the server design point
// (internal/arch): a VPU round trip costs the gate stall plus the
// register-file save and restore (2×530 cycles), and the per-unit
// leakage watts follow Table I's area shares of the 6 W core budget.
// The break-even test is a ratio of unit leakage to total leakage, so
// the same defaults remain directionally right on the mobile core.
type DarkGatesConfig struct {
	// Inner is the wrapped PowerChop configuration producing the
	// candidate gating decisions.
	Inner Config
	// HorizonWindows is the predicted gating horizon: how many windows
	// (of EWMA-smoothed recent length) a unit is expected to stay gated
	// once gated. Larger horizons amortize transition costs over more
	// leakage savings and approve more gating.
	HorizonWindows float64
	// Margin scales the required savings: gating is approved only when
	// predicted leakage savings exceed Margin × predicted stall cost.
	// Above 1 the manager is conservative, below 1 permissive.
	Margin float64
	// TripVPU/TripBPU/TripMLC are the round-trip stall cycles (gate off
	// now, wake later) a gating decision commits the core to.
	TripVPU, TripBPU, TripMLC float64
	// LeakVPUW/LeakBPUW/LeakMLCW and TotalLeakW price the trade: a
	// stall cycle burns TotalLeakW while a gated unit saves its own
	// leakage share.
	LeakVPUW, LeakBPUW, LeakMLCW float64
	TotalLeakW                   float64
	// MLCWays sizes the way-gating power fractions.
	MLCWays int
	// OffFracBPU is the gated BPU's retained power fraction (the small
	// predictor stays on).
	OffFracBPU float64
	// GatedLeakFrac is the leakage fraction a fully gated circuit still
	// draws through its sleep transistors (power.GatedLeakageFrac).
	GatedLeakFrac float64
}

// DefaultDarkGatesConfig returns the server-priced default.
func DefaultDarkGatesConfig() DarkGatesConfig {
	return DarkGatesConfig{
		Inner:          DefaultConfig(),
		HorizonWindows: 8,
		Margin:         1,
		TripVPU:        2 * (30 + 500),
		TripBPU:        2 * 20,
		TripMLC:        2 * 50,
		LeakVPUW:       1.20,
		LeakBPUW:       0.24,
		LeakMLCW:       2.10,
		TotalLeakW:     6.00,
		MLCWays:        8,
		OffFracBPU:     0.1,
		GatedLeakFrac:  0.05,
	}
}

// DarkGates is a hybrid power-gating manager in the style of DarkGates:
// it runs PowerChop's phase-driven policy underneath, but before
// enacting a decision that would gate a unit deeper it asks whether the
// gating is predicted to pay for itself — the leakage saved over the
// expected gating horizon must exceed the whole-core cost of stalling
// through the round-trip transitions. Decisions that fail the
// break-even test are bypassed: the unit keeps its current state.
// Wake-ups are never bypassed, so CDE profiling windows (which need the
// full measurement configuration) are unaffected.
type DarkGates struct {
	cfg   DarkGatesConfig
	inner *PowerChop

	// ewmaWindowCycles smooths the observed window length; lastCycle
	// marks the previous window boundary.
	ewmaWindowCycles float64
	lastCycle        float64

	bypasses uint64
}

// NewDarkGates builds the manager.
func NewDarkGates(cfg DarkGatesConfig) (*DarkGates, error) {
	if cfg.HorizonWindows <= 0 {
		return nil, fmt.Errorf("core: darkgates horizon %v", cfg.HorizonWindows)
	}
	if cfg.Margin <= 0 {
		return nil, fmt.Errorf("core: darkgates margin %v", cfg.Margin)
	}
	if cfg.TotalLeakW <= 0 || cfg.LeakVPUW < 0 || cfg.LeakBPUW < 0 || cfg.LeakMLCW < 0 {
		return nil, fmt.Errorf("core: darkgates leakage budget")
	}
	if cfg.MLCWays < 1 {
		return nil, fmt.Errorf("core: darkgates MLC ways %d", cfg.MLCWays)
	}
	inner, err := NewPowerChop(cfg.Inner)
	if err != nil {
		return nil, err
	}
	return &DarkGates{cfg: cfg, inner: inner}, nil
}

// Name implements Manager.
func (d *DarkGates) Name() string { return "darkgates" }

// Boot implements Manager.
func (d *DarkGates) Boot() Directive { return d.inner.Boot() }

// Unwrap exposes the inner PowerChop (PVT/CDE reporting).
func (d *DarkGates) Unwrap() *PowerChop { return d.inner }

// Bypasses returns how many per-unit gating decisions were bypassed.
func (d *DarkGates) Bypasses() uint64 { return d.bypasses }

// SetTracer threads the tracer into the wrapped PowerChop.
func (d *DarkGates) SetTracer(t obs.Tracer) { d.inner.SetTracer(t) }

// WindowEnd implements Manager: run the inner policy, then veto any
// deeper-gating decision whose predicted savings fall short.
func (d *DarkGates) WindowEnd(r WindowReport) Directive {
	// EWMA of window length (alpha 1/4) predicts the gating horizon.
	delta := r.Cycle - d.lastCycle
	d.lastCycle = r.Cycle
	if delta > 0 {
		if d.ewmaWindowCycles == 0 {
			d.ewmaWindowCycles = delta
		} else {
			d.ewmaWindowCycles += (delta - d.ewmaWindowCycles) / 4
		}
	}

	out := d.inner.WindowEnd(r)
	horizon := d.ewmaWindowCycles * d.cfg.HorizonWindows
	if horizon <= 0 {
		return out
	}
	cur := r.Profile.Current
	out.Policy = d.filter(cur, out.Policy, horizon)
	return out
}

// filter applies the break-even test unit by unit, returning the policy
// actually enacted. Only transitions to a lower power fraction are
// candidates for bypass.
func (d *DarkGates) filter(cur, want pvt.Policy, horizon float64) pvt.Policy {
	c := d.cfg
	if !want.VPUOn && cur.VPUOn &&
		!d.approve(c.LeakVPUW, 1, 0, c.TripVPU, horizon) {
		want.VPUOn = true
		d.bypasses++
	}
	if !want.BPUOn && cur.BPUOn &&
		!d.approve(c.LeakBPUW, 1, c.OffFracBPU, c.TripBPU, horizon) {
		want.BPUOn = true
		d.bypasses++
	}
	curFrac := cur.MLC.PowerFrac(c.MLCWays)
	wantFrac := want.MLC.PowerFrac(c.MLCWays)
	if wantFrac < curFrac &&
		!d.approve(c.LeakMLCW, curFrac, wantFrac, c.TripMLC, horizon) {
		want.MLC = cur.MLC
		d.bypasses++
	}
	return want
}

// approve prices one unit's proposed deepening from power fraction
// fromFrac to toFrac: predicted leakage energy saved over the horizon
// (discounted by the sleep-transistor residue) must exceed Margin times
// the whole-core leakage burned while stalled through the round trip.
// Both sides share a 1/ClockHz factor, so the comparison stays in
// cycle·watt units.
func (d *DarkGates) approve(leakW, fromFrac, toFrac, tripCycles, horizon float64) bool {
	saved := leakW * (fromFrac - toFrac) * (1 - d.cfg.GatedLeakFrac) * horizon
	cost := d.cfg.TotalLeakW * tripCycles
	return saved > d.cfg.Margin*cost
}
