package core

import (
	"testing"

	"powerchop/internal/cde"
	"powerchop/internal/phase"
	"powerchop/internal/pvt"
)

func sig(id uint32) phase.Signature {
	var s phase.Signature
	s.IDs[0] = id
	s.N = 1
	return s
}

func fullProfile() cde.WindowProfile {
	return cde.WindowProfile{
		TotalInsns:     10000,
		Branches:       500,
		LargeBPUActive: true,
		MLCFullyOn:     true,
		VPUOn:          true,
		Warm:           true,
	}
}

func TestStaticManagers(t *testing.T) {
	on := AlwaysOn()
	if on.Name() != "full-power" {
		t.Error("name")
	}
	if d := on.Boot(); d.Policy != pvt.FullOn || d.CDEInvoked || d.VPUTimeout != 0 {
		t.Fatalf("boot directive = %+v", d)
	}
	if d := on.WindowEnd(WindowReport{}); d.Policy != pvt.FullOn {
		t.Fatalf("window directive = %+v", d)
	}

	min := MinPower()
	if d := min.Boot(); d.Policy != pvt.MinPower {
		t.Fatalf("min-power boot = %+v", d)
	}
}

func TestTimeoutVPU(t *testing.T) {
	m, err := NewTimeoutVPU(DefaultTimeoutCycles)
	if err != nil {
		t.Fatal(err)
	}
	if m.Name() != "timeout-vpu" {
		t.Error("name")
	}
	d := m.Boot()
	if d.VPUTimeout != 20000 || !d.Policy.VPUOn {
		t.Fatalf("boot = %+v", d)
	}
	d = m.WindowEnd(WindowReport{})
	if d.VPUTimeout != 20000 {
		t.Fatalf("window = %+v", d)
	}
	if _, err := NewTimeoutVPU(0); err == nil {
		t.Fatal("zero timeout accepted")
	}
}

func TestPowerChopBootsFullPower(t *testing.T) {
	m := MustPowerChop(DefaultConfig())
	if m.Name() != "powerchop" {
		t.Error("name")
	}
	if d := m.Boot(); d.Policy != pvt.FullOn {
		t.Fatalf("boot = %+v", d)
	}
}

func TestPowerChopMissProfilesThenHits(t *testing.T) {
	m := MustPowerChop(DefaultConfig())
	// First sighting: miss, CDE invoked, measurement window A requested
	// (full power with the large predictor).
	d := m.WindowEnd(WindowReport{Signature: sig(1), Profile: fullProfile()})
	if !d.CDEInvoked {
		t.Fatal("first window did not invoke the CDE")
	}
	if d.Policy != pvt.FullOn {
		t.Fatalf("window A config = %v, want full power", d.Policy)
	}
	// Window A consumed; window B requested with the small predictor.
	d = m.WindowEnd(WindowReport{Signature: sig(1), Profile: fullProfile()})
	if !d.CDEInvoked {
		t.Fatal("second window did not invoke the CDE")
	}
	if d.Policy.BPUOn {
		t.Fatal("profiling window B should run the small predictor")
	}
	// Window B completes the profile; a policy registers.
	profB := fullProfile()
	profB.LargeBPUActive = false
	d = m.WindowEnd(WindowReport{Signature: sig(1), Profile: profB})
	if !d.CDEInvoked {
		t.Fatal("third window did not invoke the CDE")
	}
	// Vector-free, hit-free, equal-mispredict phase: everything gates.
	if d.Policy.VPUOn || d.Policy.BPUOn || d.Policy.MLC != pvt.MLCOne {
		t.Fatalf("policy = %v", d.Policy)
	}
	// Recurrence: pure PVT hit, no CDE.
	d = m.WindowEnd(WindowReport{Signature: sig(1), Profile: fullProfile()})
	if d.CDEInvoked {
		t.Fatal("PVT hit invoked the CDE")
	}
	if d.Policy.VPUOn {
		t.Fatalf("hit policy = %v", d.Policy)
	}
	if m.Hits() != 1 || m.Misses() != 3 {
		t.Fatalf("hits/misses = %d/%d", m.Hits(), m.Misses())
	}
}

func TestPowerChopEmptySignatureKeepsPolicy(t *testing.T) {
	m := MustPowerChop(DefaultConfig())
	// Establish a gated policy (discovery, window A, window B).
	m.WindowEnd(WindowReport{Signature: sig(1), Profile: fullProfile()})
	m.WindowEnd(WindowReport{Signature: sig(1), Profile: fullProfile()})
	profB := fullProfile()
	profB.LargeBPUActive = false
	d1 := m.WindowEnd(WindowReport{Signature: sig(1), Profile: profB})
	// An empty-signature window keeps the current policy without CDE.
	d2 := m.WindowEnd(WindowReport{})
	if d2.CDEInvoked {
		t.Fatal("empty signature invoked the CDE")
	}
	if d2.Policy != d1.Policy {
		t.Fatalf("policy changed: %v -> %v", d1.Policy, d2.Policy)
	}
}

func TestPowerChopVPUOnlyManagement(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Managed = cde.Managed{VPU: true}
	m := MustPowerChop(cfg)
	prof := fullProfile()
	prof.SIMDInsns = 2000                                       // 20% SIMD: critical
	m.WindowEnd(WindowReport{Signature: sig(1), Profile: prof}) // discovery
	d := m.WindowEnd(WindowReport{Signature: sig(1), Profile: prof})
	if d.Policy != pvt.FullOn {
		t.Fatalf("VPU-critical policy = %v", d.Policy)
	}
	prof2 := fullProfile()                                       // no SIMD
	m.WindowEnd(WindowReport{Signature: sig(2), Profile: prof2}) // discovery
	d = m.WindowEnd(WindowReport{Signature: sig(2), Profile: prof2})
	if d.Policy.VPUOn {
		t.Fatal("vector-free phase kept VPU on")
	}
	if !d.Policy.BPUOn || d.Policy.MLC != pvt.MLCAll {
		t.Fatal("unmanaged units were touched")
	}
}

func TestPowerChopDefaultsPVTEntries(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PVTEntries = 0
	m := MustPowerChop(cfg)
	if m.PVT().Len() != pvt.DefaultEntries {
		t.Fatalf("PVT size = %d", m.PVT().Len())
	}
}

func TestNewPowerChopBadThresholds(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Thresholds.VPU = -1
	if _, err := NewPowerChop(cfg); err == nil {
		t.Fatal("bad thresholds accepted")
	}
}

func TestMustPowerChopPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustPowerChop did not panic on bad config")
		}
	}()
	cfg := DefaultConfig()
	cfg.Thresholds.VPU = 9
	MustPowerChop(cfg)
}

func TestPowerChopCapacityMissReRegisters(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PVTEntries = 4
	cfg.Managed = cde.Managed{VPU: true}
	m := MustPowerChop(cfg)
	// Characterize 6 phases through a 4-entry PVT.
	for i := uint32(0); i < 6; i++ {
		m.WindowEnd(WindowReport{Signature: sig(i), Profile: fullProfile()}) // discovery
		m.WindowEnd(WindowReport{Signature: sig(i), Profile: fullProfile()}) // measurement
	}
	// Find an evicted phase and revisit it: CDE invoked (capacity miss),
	// no re-profiling.
	var victim phase.Signature
	found := false
	for i := uint32(0); i < 6; i++ {
		if !m.PVT().Contains(sig(i)) {
			victim, found = sig(i), true
			break
		}
	}
	if !found {
		t.Fatal("no eviction from 4-entry PVT after 6 phases")
	}
	before := m.Engine().Stats().PhasesProfiled
	d := m.WindowEnd(WindowReport{Signature: victim, Profile: fullProfile()})
	if !d.CDEInvoked {
		t.Fatal("capacity miss did not invoke the CDE")
	}
	if m.Engine().Stats().PhasesProfiled != before {
		t.Fatal("capacity miss re-profiled")
	}
	if !m.PVT().Contains(victim) {
		t.Fatal("phase not re-registered")
	}
}
