// Package core contains PowerChop itself — the manager that wires phase
// signatures (HTB), the policy vector table (PVT) and the Criticality
// Decision Engine (CDE) into the simulated core — together with the
// baseline power managers the paper compares against: an always-on
// full-power core, a minimally-powered core, and the hardware-only
// idle-timeout VPU gating scheme of Section V-E.
//
// A manager is consulted by the timing simulator at every execution-window
// boundary (Figure 4's flow: the HTB reports the window's phase signature,
// the PVT is looked up, hits apply the stored gating policy, misses invoke
// the CDE). The manager returns a Directive: the gating policy for the
// next window plus flags describing how the policy is enacted.
package core

import (
	"fmt"

	"powerchop/internal/cde"
	"powerchop/internal/obs"
	"powerchop/internal/phase"
	"powerchop/internal/pvt"
)

// WindowReport carries one completed execution window's observations from
// the simulator to the manager.
type WindowReport struct {
	// Signature is the window's phase signature from the HTB.
	Signature phase.Signature
	// Profile holds the window's performance-monitor readings.
	Profile cde.WindowProfile
	// Cycle is the simulated cycle at the window boundary.
	Cycle float64
}

// IdleState describes one hierarchical gated state for a unit: the
// fraction of the unit left powered while resident, and the extra stall
// cycles (beyond the unit's base gate-switch stall) charged on entry
// and exit. Shallow states retain state — cheap to enter and leave but
// leaky; deep states cut power further at the price of expensive
// transitions (the VPU's register-file save/restore).
type IdleState struct {
	// PowerFrac is the fraction of the unit's circuits left powered.
	PowerFrac float64
	// EntryCycles and ExitCycles are the extra transition stalls.
	EntryCycles float64
	// ExitCycles is charged when waking from this state.
	ExitCycles float64
}

// Directive is a manager's instruction to the core for the next window.
type Directive struct {
	// Policy is the gating policy to apply.
	Policy pvt.Policy
	// CDEInvoked is true when the decision required a software CDE
	// invocation (a PVT-miss interrupt); the simulator charges its cost.
	CDEInvoked bool
	// VPUTimeout, when positive, selects timeout semantics for the VPU
	// instead of phase-based gating: the simulator gates the VPU off
	// after this many idle cycles and wakes it (with full gating
	// penalties) on the next vector operation. Policy.VPUOn is then the
	// boot state only.
	VPUTimeout float64
	// VPUIdle and BPUIdle, when non-nil, select hierarchical idle-state
	// semantics for a gated unit: Policy's off bit sends the unit to the
	// described state instead of the classic fully-gated one. Managers
	// promote a unit shallow→deep by returning a deeper descriptor in a
	// later window. Nil keeps the classic single-level gating, whose
	// simulation path is untouched. (The MLC's hierarchy is the existing
	// three-state way gating carried in Policy.MLC.)
	VPUIdle *IdleState
	BPUIdle *IdleState
}

// Manager decides unit power states at window granularity.
type Manager interface {
	// Name identifies the manager in reports.
	Name() string
	// Boot returns the initial directive before any window completes.
	Boot() Directive
	// WindowEnd is called at each execution-window boundary with the
	// completed window's report.
	WindowEnd(r WindowReport) Directive
}

// Static is a manager that holds one fixed policy forever: the paper's
// full-power and minimally-powered configurations.
type Static struct {
	ManagerName string
	Policy      pvt.Policy
}

// AlwaysOn returns the full-power baseline manager.
func AlwaysOn() *Static { return &Static{ManagerName: "full-power", Policy: pvt.FullOn} }

// MinPower returns the minimally-powered baseline manager: VPU off
// (scalar-emulated), small BPU, 1-way MLC for the entire run.
func MinPower() *Static { return &Static{ManagerName: "min-power", Policy: pvt.MinPower} }

// Name implements Manager.
func (s *Static) Name() string { return s.ManagerName }

// Boot implements Manager.
func (s *Static) Boot() Directive { return Directive{Policy: s.Policy} }

// WindowEnd implements Manager.
func (s *Static) WindowEnd(WindowReport) Directive { return Directive{Policy: s.Policy} }

// TimeoutVPU is the hardware-only baseline of Section V-E: the VPU is
// power gated after a fixed number of idle cycles and woken on demand by
// the next vector operation; the BPU and MLC stay fully powered (timeouts
// are ill-suited to those always-active units).
type TimeoutVPU struct {
	// IdleCycles is the timeout period (the paper settles on 20K cycles
	// after sweeping 100–100K).
	IdleCycles float64
}

// DefaultTimeoutCycles is the paper's chosen timeout period.
const DefaultTimeoutCycles = 20000

// NewTimeoutVPU returns the timeout baseline with the given period.
func NewTimeoutVPU(idleCycles float64) (*TimeoutVPU, error) {
	if idleCycles <= 0 {
		return nil, fmt.Errorf("core: timeout period %v", idleCycles)
	}
	return &TimeoutVPU{IdleCycles: idleCycles}, nil
}

// Name implements Manager.
func (t *TimeoutVPU) Name() string { return "timeout-vpu" }

// Boot implements Manager.
func (t *TimeoutVPU) Boot() Directive {
	return Directive{Policy: pvt.FullOn, VPUTimeout: t.IdleCycles}
}

// WindowEnd implements Manager.
func (t *TimeoutVPU) WindowEnd(WindowReport) Directive {
	return Directive{Policy: pvt.FullOn, VPUTimeout: t.IdleCycles}
}

// Config parameterizes the PowerChop manager.
type Config struct {
	// PVTEntries is the policy vector table size (paper: 16).
	PVTEntries int
	// Replacement is the PVT eviction policy (default tree-PLRU, the
	// paper's "approximate LRU").
	Replacement pvt.Replacement
	// Thresholds are the CDE criticality cut-offs.
	Thresholds cde.Thresholds
	// Managed selects which units PowerChop controls; unmanaged units
	// stay fully powered (the paper's per-unit isolation studies).
	Managed cde.Managed
}

// DefaultConfig returns the paper's PowerChop configuration managing all
// three units.
func DefaultConfig() Config {
	return Config{
		PVTEntries: pvt.DefaultEntries,
		Thresholds: cde.DefaultThresholds(),
		Managed:    cde.ManageAll(),
	}
}

// EnergyMinimizerConfig returns the paper's suggested aggressive variant
// (Section V-A): higher criticality thresholds that trade more slowdown
// for deeper gating, targeting energy rather than power-at-iso-performance.
func EnergyMinimizerConfig() Config {
	cfg := DefaultConfig()
	cfg.Thresholds = cde.AggressiveThresholds()
	return cfg
}

// PowerChop is the paper's manager: phase-triggered unit-level power
// gating driven by PVT lookups and CDE criticality analysis.
type PowerChop struct {
	table   *pvt.Table
	engine  *cde.Engine
	current pvt.Policy

	hits   uint64
	misses uint64
}

// NewPowerChop builds the manager.
func NewPowerChop(cfg Config) (*PowerChop, error) {
	if cfg.PVTEntries <= 0 {
		cfg.PVTEntries = pvt.DefaultEntries
	}
	table := pvt.NewWithReplacement(cfg.PVTEntries, cfg.Replacement)
	engine, err := cde.New(table, cfg.Thresholds, cfg.Managed)
	if err != nil {
		return nil, err
	}
	return &PowerChop{table: table, engine: engine, current: pvt.FullOn}, nil
}

// MustPowerChop is a helper for tests and examples.
func MustPowerChop(cfg Config) *PowerChop {
	m, err := NewPowerChop(cfg)
	if err != nil {
		panic(err)
	}
	return m
}

// Name implements Manager.
func (m *PowerChop) Name() string { return "powerchop" }

// Boot implements Manager. The core boots fully powered; gating decisions
// begin at the first window boundary.
func (m *PowerChop) Boot() Directive { return Directive{Policy: pvt.FullOn} }

// WindowEnd implements Manager: the Figure 4 runtime flow.
func (m *PowerChop) WindowEnd(r WindowReport) Directive {
	if r.Signature.Zero() {
		// No translations executed (pure interpretation): keep the
		// current policy.
		return Directive{Policy: m.current}
	}
	if policy, hit := m.table.Lookup(r.Signature); hit {
		// PVT hit: the gating decisions are applied directly in
		// hardware, no software involvement.
		m.hits++
		m.current = policy
		return Directive{Policy: policy}
	}
	// PVT miss: interrupt into the CDE.
	m.misses++
	action := m.engine.HandleMiss(r.Signature, r.Profile)
	m.current = action.Policy
	return Directive{Policy: action.Policy, CDEInvoked: true}
}

// SetTracer threads an event tracer into the manager's PVT and CDE so
// lookup, eviction, scoring and registration events reach the simulator's
// sink. The simulator calls this when tracing is enabled; managers are
// per-run, so the tracer's lifetime matches the run's.
func (m *PowerChop) SetTracer(t obs.Tracer) {
	m.table.SetTracer(t)
	m.engine.SetTracer(t)
}

// PVT exposes the manager's policy vector table (reporting).
func (m *PowerChop) PVT() *pvt.Table { return m.table }

// Engine exposes the manager's CDE (reporting).
func (m *PowerChop) Engine() *cde.Engine { return m.engine }

// Hits returns the number of PVT hits observed at window boundaries.
func (m *PowerChop) Hits() uint64 { return m.hits }

// Misses returns the number of PVT misses (CDE invocations).
func (m *PowerChop) Misses() uint64 { return m.misses }
