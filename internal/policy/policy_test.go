package policy

import (
	"strings"
	"testing"

	"powerchop/internal/core"
)

func testSpec() Spec {
	return Spec{
		Name:        "test-spec",
		Description: "spec for schema tests",
		Params: []Param{
			{Name: "alpha", Description: "first", Default: 0.5, Min: 0, Max: 1},
			{Name: "beta", Description: "second", Default: 10, Min: 1, Max: 100},
		},
		Build: func(p Params) (core.Manager, error) { return core.AlwaysOn(), nil },
	}
}

func TestDefaults(t *testing.T) {
	d := testSpec().Defaults()
	if len(d) != 2 || d["alpha"] != 0.5 || d["beta"] != 10 {
		t.Fatalf("Defaults() = %v", d)
	}
}

func TestValidate(t *testing.T) {
	s := testSpec()
	if err := s.Validate(nil); err != nil {
		t.Fatalf("nil params: %v", err)
	}
	if err := s.Validate(Params{"alpha": 0, "beta": 100}); err != nil {
		t.Fatalf("bounds are inclusive: %v", err)
	}
	err := s.Validate(Params{"gamma": 1})
	if err == nil || !strings.Contains(err.Error(), `unknown parameter "gamma"`) {
		t.Fatalf("unknown param: %v", err)
	}
	if !strings.Contains(err.Error(), "alpha") || !strings.Contains(err.Error(), "beta") {
		t.Fatalf("unknown-param error does not list known names: %v", err)
	}
	err = s.Validate(Params{"alpha": 1.5})
	if err == nil || !strings.Contains(err.Error(), "out of [0, 1]") {
		t.Fatalf("out-of-bounds: %v", err)
	}
	if err := s.Validate(Params{"beta": 0.5}); err == nil {
		t.Fatal("below-min accepted")
	}
}

// TestValidateErrorDeterministic pins that the reported offender is the
// lexically first bad key, not map-iteration-order dependent.
func TestValidateErrorDeterministic(t *testing.T) {
	s := testSpec()
	for i := 0; i < 20; i++ {
		err := s.Validate(Params{"zeta": 1, "gamma": 1, "delta": 1})
		if err == nil || !strings.Contains(err.Error(), `"delta"`) {
			t.Fatalf("iteration %d: want lexically-first key delta, got %v", i, err)
		}
	}
}

func TestResolveOverlaysDefaults(t *testing.T) {
	s := testSpec()
	r, err := s.Resolve(Params{"beta": 42})
	if err != nil {
		t.Fatal(err)
	}
	if r["alpha"] != 0.5 || r["beta"] != 42 {
		t.Fatalf("Resolve = %v", r)
	}
	if _, err := s.Resolve(Params{"beta": 0}); err == nil {
		t.Fatal("Resolve accepted out-of-bounds value")
	}
}

func TestFingerprint(t *testing.T) {
	s := testSpec()
	fp, err := s.Fingerprint(nil)
	if err != nil {
		t.Fatal(err)
	}
	if want := "test-spec{alpha=0.5,beta=10}"; fp != want {
		t.Fatalf("Fingerprint(nil) = %q, want %q", fp, want)
	}
	// Spelling out a default must not change the identity.
	explicit, err := s.Fingerprint(Params{"alpha": 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if explicit != fp {
		t.Fatalf("explicit default changed fingerprint: %q vs %q", explicit, fp)
	}
	other, err := s.Fingerprint(Params{"alpha": 0.25})
	if err != nil {
		t.Fatal(err)
	}
	if other == fp {
		t.Fatal("distinct params share a fingerprint")
	}
	if _, err := s.Fingerprint(Params{"nope": 1}); err == nil {
		t.Fatal("Fingerprint accepted unknown parameter")
	}
}

func TestRegisterPanics(t *testing.T) {
	cases := []struct {
		name string
		spec Spec
	}{
		{"empty name", Spec{Build: testSpec().Build}},
		{"nil build", Spec{Name: "x"}},
		{"unnamed param", Spec{Name: "x", Build: testSpec().Build,
			Params: []Param{{Description: "d"}}}},
		{"duplicate param", Spec{Name: "x", Build: testSpec().Build,
			Params: []Param{{Name: "a", Max: 1}, {Name: "a", Max: 1}}}},
		{"default below min", Spec{Name: "x", Build: testSpec().Build,
			Params: []Param{{Name: "a", Default: 0, Min: 1, Max: 2}}}},
		{"min above max", Spec{Name: "x", Build: testSpec().Build,
			Params: []Param{{Name: "a", Default: 1.5, Min: 2, Max: 1}}}},
		{"duplicate name", Spec{Name: "powerchop", Build: testSpec().Build}},
	}
	for _, tc := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: Register did not panic", tc.name)
				}
			}()
			Register(tc.spec)
		}()
	}
}

func TestBuiltinsRegistered(t *testing.T) {
	want := []string{"agilewatts", "darkgates", "energy-min", "full-power", "min-power", "powerchop", "timeout"}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Names() = %v, want %v", got, want)
		}
	}
	for _, name := range want {
		s, ok := Lookup(name)
		if !ok {
			t.Fatalf("Lookup(%q) missed", name)
		}
		m, err := s.Manager(nil)
		if err != nil {
			t.Fatalf("%s: Manager(nil): %v", name, err)
		}
		if m == nil {
			t.Fatalf("%s: nil manager", name)
		}
		// Each call must produce a fresh stateful instance.
		m2, err := s.Manager(nil)
		if err != nil {
			t.Fatal(err)
		}
		if m == m2 {
			t.Fatalf("%s: Build returned a shared manager instance", name)
		}
	}
}
